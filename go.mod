module drqos

go 1.22
