package markov

import (
	"math"
	"testing"
	"testing/quick"

	"drqos/internal/linalg"
	"drqos/internal/rng"
)

func TestWithRestartNoDynamics(t *testing.T) {
	// Q = 0: the stationary distribution of the restart chain is exactly
	// the birth distribution.
	q := linalg.NewMatrix(4, 4)
	c, err := NewChain(q)
	if err != nil {
		t.Fatal(err)
	}
	beta := []float64{0.1, 0.2, 0.3, 0.4}
	rc, err := c.WithRestart(beta, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	pi, err := rc.SteadyState()
	if err != nil {
		t.Fatal(err)
	}
	assertDistEq(t, pi, beta, 1e-9)
}

func TestWithRestartHighDeathRateDominates(t *testing.T) {
	// With δ far above the chain's own rates, π → β.
	c := birthDeath(t, 5, 0.001, 0.002)
	beta := []float64{0, 0, 0, 0, 1}
	rc, err := c.WithRestart(beta, 10)
	if err != nil {
		t.Fatal(err)
	}
	pi, err := rc.SteadyState()
	if err != nil {
		t.Fatal(err)
	}
	if pi[4] < 0.99 {
		t.Fatalf("high delta should pin mass at birth state: %v", pi)
	}
}

func TestWithRestartLowDeathRateVanishes(t *testing.T) {
	// With δ far below the chain's own rates, π → the chain's own
	// stationary distribution.
	c := birthDeath(t, 5, 1, 2)
	want, err := c.SteadyState()
	if err != nil {
		t.Fatal(err)
	}
	beta := []float64{0, 0, 0, 0, 1}
	rc, err := c.WithRestart(beta, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	pi, err := rc.SteadyState()
	if err != nil {
		t.Fatal(err)
	}
	assertDistEq(t, pi, want, 1e-5)
}

func TestWithRestartValidation(t *testing.T) {
	c := birthDeath(t, 3, 1, 1)
	if _, err := c.WithRestart([]float64{1, 0}, 0.1); err == nil {
		t.Fatal("wrong length accepted")
	}
	if _, err := c.WithRestart([]float64{1, 0, 0}, -0.1); err == nil {
		t.Fatal("negative delta accepted")
	}
	if _, err := c.WithRestart([]float64{0.5, 0.2, 0.1}, 0.1); err == nil {
		t.Fatal("non-normalized beta accepted")
	}
	if _, err := c.WithRestart([]float64{2, -1, 0}, 0.1); err == nil {
		t.Fatal("negative beta accepted")
	}
}

func TestWithRestartIsValidGenerator(t *testing.T) {
	c := birthDeath(t, 4, 1, 3)
	rc, err := c.WithRestart([]float64{0.25, 0.25, 0.25, 0.25}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// Row sums of the restart generator are zero (NewChain would verify;
	// here we check directly on a copy).
	g := rc.Generator()
	for i := 0; i < g.Rows(); i++ {
		var sum float64
		for j := 0; j < g.Cols(); j++ {
			sum += g.At(i, j)
		}
		if math.Abs(sum) > 1e-12 {
			t.Fatalf("row %d sums to %v", i, sum)
		}
	}
}

func TestSteadyStateFromReducible(t *testing.T) {
	// Two absorbing components: the limit depends on the start vector.
	q := linalg.NewMatrix(4, 4)
	q.Set(0, 1, 1)
	q.Set(0, 0, -1) // 0 → 1 (absorbing)
	q.Set(3, 2, 1)
	q.Set(3, 3, -1) // 3 → 2 (absorbing)
	c, err := NewChain(q)
	if err != nil {
		t.Fatal(err)
	}
	fromLeft, err := c.SteadyStateFrom([]float64{1, 0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	assertDistEq(t, fromLeft, []float64{0, 1, 0, 0}, 1e-9)
	fromRight, err := c.SteadyStateFrom([]float64{0, 0, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	assertDistEq(t, fromRight, []float64{0, 0, 1, 0}, 1e-9)
}

func TestSteadyStateFromIrreducibleIgnoresP0(t *testing.T) {
	c := birthDeath(t, 5, 1, 2)
	want, err := c.SteadyStateGTH()
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.SteadyStateFrom([]float64{0, 0, 0, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	assertDistEq(t, got, want, 1e-9)
}

func TestSteadyStateFromWrongLength(t *testing.T) {
	// Reducible chain (so GTH fails and p0 is consulted) with a wrong p0.
	q := linalg.NewMatrix(2, 2)
	q.Set(0, 1, 1)
	q.Set(0, 0, -1)
	c, err := NewChain(q)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.SteadyStateFrom([]float64{1}); err == nil {
		t.Fatal("wrong length accepted")
	}
}

func TestBuildGeneralMatchesManual(t *testing.T) {
	n := 3
	jump := [][]float64{
		{0, 0.5, 0.25},
		{0.3, 0, 0.3},
		{1, 0, 0},
	}
	c, err := BuildGeneral(n, []Term{{Name: "x", Rate: 2, Weight: 0.5, Jump: jump}})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Rate(0, 1); math.Abs(got-2*0.5*0.5) > 1e-15 {
		t.Fatalf("rate(0,1) = %v", got)
	}
	if got := c.Rate(2, 0); math.Abs(got-2*0.5*1) > 1e-15 {
		t.Fatalf("rate(2,0) = %v", got)
	}
	// Two terms accumulate.
	c2, err := BuildGeneral(n, []Term{
		{Name: "x", Rate: 2, Weight: 0.5, Jump: jump},
		{Name: "y", Rate: 1, Weight: 1, Jump: jump},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := c2.Rate(0, 1); math.Abs(got-(2*0.5*0.5+1*1*0.5)) > 1e-15 {
		t.Fatalf("accumulated rate = %v", got)
	}
}

func TestBuildGeneralValidation(t *testing.T) {
	good := [][]float64{{0, 1}, {1, 0}}
	cases := []struct {
		name  string
		n     int
		terms []Term
	}{
		{"n too small", 1, nil},
		{"negative rate", 2, []Term{{Rate: -1, Weight: 1, Jump: good}}},
		{"weight above 1", 2, []Term{{Rate: 1, Weight: 2, Jump: good}}},
		{"wrong rows", 2, []Term{{Rate: 1, Weight: 1, Jump: good[:1]}}},
		{"wrong cols", 2, []Term{{Rate: 1, Weight: 1, Jump: [][]float64{{0}, {1, 0}}}}},
		{"entry above 1", 2, []Term{{Rate: 1, Weight: 1, Jump: [][]float64{{0, 2}, {1, 0}}}}},
		{"row above 1", 3, []Term{{Rate: 1, Weight: 1, Jump: [][]float64{{0, 0.7, 0.7}, {0, 0, 0}, {0, 0, 0}}}}},
	}
	for _, tc := range cases {
		if _, err := BuildGeneral(tc.n, tc.terms); err == nil {
			t.Fatalf("%s accepted", tc.name)
		}
	}
	// Empty terms are fine: a transition-free chain.
	c, err := BuildGeneral(3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if c.N() != 3 {
		t.Fatalf("n = %d", c.N())
	}
}

// Property: for random chains and birth distributions, the restart chain's
// stationary distribution is a valid distribution and moves from β toward
// the chain's own stationary distribution as δ decreases.
func TestQuickRestartInterpolates(t *testing.T) {
	f := func(seed uint64) bool {
		src := rng.New(seed)
		n := 3 + src.Intn(5)
		q := linalg.NewMatrix(n, n)
		for i := 0; i < n; i++ {
			var out float64
			for j := 0; j < n; j++ {
				if i != j {
					r := 0.1 + src.Float64()
					q.Set(i, j, r)
					out += r
				}
			}
			q.Set(i, i, -out)
		}
		c, err := NewChain(q)
		if err != nil {
			return false
		}
		beta := make([]float64, n)
		beta[src.Intn(n)] = 1
		for _, delta := range []float64{1e-6, 1, 1e6} {
			rc, err := c.WithRestart(beta, delta)
			if err != nil {
				return false
			}
			pi, err := rc.SteadyState()
			if err != nil {
				return false
			}
			var sum float64
			for _, v := range pi {
				if v < -1e-12 {
					return false
				}
				sum += v
			}
			if math.Abs(sum-1) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
