package markov

import (
	"fmt"

	"drqos/internal/linalg"
)

// Term is one event stream contributing to an empirical generator: the
// stream fires at Rate; a given channel is affected with probability
// Weight; and an affected channel in state i jumps to state j with
// probability Jump[i][j] (any direction; rows may sum to <1, the remainder
// being "no change").
type Term struct {
	// Name labels the stream in error messages ("arrival-direct", ...).
	Name string
	// Rate is the stream's event rate (λ, μ or γ).
	Rate float64
	// Weight is the per-channel involvement probability (Pf or Ps).
	Weight float64
	// Jump is the full conditional jump matrix, including the movement
	// probability (diagonal entries are ignored).
	Jump [][]float64
}

// BuildGeneral assembles a chain from empirical event streams without the
// paper's triangular restriction: rate(i→j) = Σ_terms Rate·Weight·Jump[i][j].
// It is the "extended" model used to quantify how much accuracy the paper's
// downward-A/upward-B,T structure gives away (see EXPERIMENTS.md).
func BuildGeneral(n int, terms []Term) (*Chain, error) {
	if n < 2 {
		return nil, fmt.Errorf("%w: N=%d, need >=2", ErrInvalidParams, n)
	}
	q := linalg.NewMatrix(n, n)
	for _, t := range terms {
		if t.Rate < 0 || t.Weight < 0 || t.Weight > 1 {
			return nil, fmt.Errorf("%w: term %q rate=%v weight=%v", ErrInvalidParams, t.Name, t.Rate, t.Weight)
		}
		if len(t.Jump) != n {
			return nil, fmt.Errorf("%w: term %q jump has %d rows, want %d", ErrInvalidParams, t.Name, len(t.Jump), n)
		}
		for i, row := range t.Jump {
			if len(row) != n {
				return nil, fmt.Errorf("%w: term %q row %d has %d cols", ErrInvalidParams, t.Name, i, len(row))
			}
			var sum float64
			for j, v := range row {
				if v < 0 || v > 1 {
					return nil, fmt.Errorf("%w: term %q jump[%d][%d]=%v", ErrInvalidParams, t.Name, i, j, v)
				}
				if i != j {
					sum += v
					q.Add(i, j, t.Rate*t.Weight*v)
				}
			}
			if sum > 1+1e-9 {
				return nil, fmt.Errorf("%w: term %q row %d sums to %v > 1", ErrInvalidParams, t.Name, i, sum)
			}
		}
	}
	for i := 0; i < n; i++ {
		var out float64
		for j := 0; j < n; j++ {
			if i != j {
				out += q.At(i, j)
			}
		}
		q.Set(i, i, -out)
	}
	return &Chain{q: q}, nil
}
