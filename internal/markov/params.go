// Package markov implements the paper's analytic model (§3.2): a
// continuous-time Markov chain over the N bandwidth states of one primary
// channel, with transition rates assembled from the measured probabilities
// Pf, Ps and the conditional jump matrices A (downward: arrivals and
// failures), B (upward: indirectly chained arrivals) and T (upward:
// terminations). It provides steady-state solvers (GTH state reduction and
// a dense LU solve) and a transient solver (uniformization), replacing the
// SHARPE package [15] the paper used.
package markov

import (
	"errors"
	"fmt"
)

// ErrInvalidParams reports a malformed model parameterization.
var ErrInvalidParams = errors.New("markov: invalid parameters")

// Params holds everything needed to build the §3.2 generator matrix.
type Params struct {
	// N is the number of bandwidth states (5 or 9 in the paper).
	N int
	// Lambda is the DR-connection request arrival rate λ.
	Lambda float64
	// Mu is the DR-connection termination rate μ (the paper assumes λ=μ
	// for steady state, but the model does not require it).
	Mu float64
	// Gamma is the link failure rate γ.
	Gamma float64
	// Pf is the probability that a channel shares at least one link with
	// the newly-arrived (or terminating) channel.
	Pf float64
	// Ps is the probability that a channel is indirectly chained with the
	// newly-arrived channel.
	Ps float64
	// A[i][j] is the downward jump distribution (i > j): the probability a
	// directly chained channel in state i lands in state j after an
	// arrival or backup activation.
	A [][]float64
	// B[i][j] is the upward jump distribution (i < j) for indirectly
	// chained channels at arrivals.
	B [][]float64
	// T[i][j] is the upward jump distribution (i < j) at terminations of
	// link-sharing channels.
	T [][]float64
}

// Validate checks dimensions, ranges and the directionality constraints
// (A strictly lower-triangular, B and T strictly upper-triangular, rows
// summing to ≤1; sub-stochastic rows are allowed because the complement is
// the no-change probability).
func (p *Params) Validate() error {
	if p.N < 2 {
		return fmt.Errorf("%w: N=%d, need >=2", ErrInvalidParams, p.N)
	}
	if p.Lambda < 0 || p.Mu < 0 || p.Gamma < 0 {
		return fmt.Errorf("%w: negative rate (λ=%v μ=%v γ=%v)", ErrInvalidParams, p.Lambda, p.Mu, p.Gamma)
	}
	if p.Pf < 0 || p.Pf > 1 || p.Ps < 0 || p.Ps > 1 {
		return fmt.Errorf("%w: Pf=%v Ps=%v outside [0,1]", ErrInvalidParams, p.Pf, p.Ps)
	}
	check := func(name string, m [][]float64, lower bool) error {
		if len(m) != p.N {
			return fmt.Errorf("%w: %s has %d rows, want %d", ErrInvalidParams, name, len(m), p.N)
		}
		for i, row := range m {
			if len(row) != p.N {
				return fmt.Errorf("%w: %s row %d has %d cols, want %d", ErrInvalidParams, name, i, len(row), p.N)
			}
			var sum float64
			for j, v := range row {
				if v < 0 || v > 1 {
					return fmt.Errorf("%w: %s[%d][%d]=%v outside [0,1]", ErrInvalidParams, name, i, j, v)
				}
				if v > 0 {
					if lower && j >= i {
						return fmt.Errorf("%w: %s[%d][%d]=%v must be strictly below the diagonal", ErrInvalidParams, name, i, j, v)
					}
					if !lower && j <= i {
						return fmt.Errorf("%w: %s[%d][%d]=%v must be strictly above the diagonal", ErrInvalidParams, name, i, j, v)
					}
				}
				sum += v
			}
			if sum > 1+1e-9 {
				return fmt.Errorf("%w: %s row %d sums to %v > 1", ErrInvalidParams, name, i, sum)
			}
		}
		return nil
	}
	if err := check("A", p.A, true); err != nil {
		return err
	}
	if err := check("B", p.B, false); err != nil {
		return err
	}
	return check("T", p.T, false)
}

// ZeroJumpMatrices returns empty (all-zero) A, B, T matrices of size n,
// convenient for building Params incrementally.
func ZeroJumpMatrices(n int) (a, b, t [][]float64) {
	mk := func() [][]float64 {
		m := make([][]float64, n)
		for i := range m {
			m[i] = make([]float64, n)
		}
		return m
	}
	return mk(), mk(), mk()
}
