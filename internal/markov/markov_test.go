package markov

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"drqos/internal/linalg"
	"drqos/internal/qos"
	"drqos/internal/rng"
)

// birthDeath builds an M/M/1/K-style chain with birth rate a and death
// rate b on n states; its stationary distribution is geometric with ratio
// a/b, a classic closed-form cross-check.
func birthDeath(t *testing.T, n int, a, b float64) *Chain {
	t.Helper()
	q := linalg.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		var out float64
		if i+1 < n {
			q.Set(i, i+1, a)
			out += a
		}
		if i > 0 {
			q.Set(i, i-1, b)
			out += b
		}
		q.Set(i, i, -out)
	}
	c, err := NewChain(q)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func geometricPi(n int, rho float64) []float64 {
	pi := make([]float64, n)
	var sum float64
	for i := range pi {
		pi[i] = math.Pow(rho, float64(i))
		sum += pi[i]
	}
	for i := range pi {
		pi[i] /= sum
	}
	return pi
}

func assertDistEq(t *testing.T, got, want []float64, tol float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("lengths %d vs %d", len(got), len(want))
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > tol {
			t.Fatalf("pi[%d] = %v, want %v (full: %v vs %v)", i, got[i], want[i], got, want)
		}
	}
}

func TestNewChainValidation(t *testing.T) {
	if _, err := NewChain(linalg.NewMatrix(2, 3)); err == nil {
		t.Fatal("non-square accepted")
	}
	q := linalg.NewMatrix(2, 2)
	q.Set(0, 1, -1)
	q.Set(0, 0, 1)
	if _, err := NewChain(q); err == nil {
		t.Fatal("negative off-diagonal accepted")
	}
	q2 := linalg.NewMatrix(2, 2)
	q2.Set(0, 1, 1) // row sums to 1, not 0
	if _, err := NewChain(q2); err == nil {
		t.Fatal("non-zero row sum accepted")
	}
}

func TestSteadyStateTwoState(t *testing.T) {
	// q01 = 2, q10 = 3 → π = (0.6, 0.4).
	q := linalg.NewMatrix(2, 2)
	q.Set(0, 1, 2)
	q.Set(0, 0, -2)
	q.Set(1, 0, 3)
	q.Set(1, 1, -3)
	c, err := NewChain(q)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.6, 0.4}
	for name, solve := range map[string]func() ([]float64, error){
		"gth":   c.SteadyStateGTH,
		"lu":    c.SteadyStateLU,
		"power": func() ([]float64, error) { return c.SteadyStatePower(1e-13, 1000000) },
		"auto":  c.SteadyState,
	} {
		pi, err := solve()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		assertDistEq(t, pi, want, 1e-9)
	}
}

func TestSteadyStateBirthDeathAllSolversAgree(t *testing.T) {
	for _, tc := range []struct {
		n    int
		a, b float64
	}{
		{5, 1, 2},
		{9, 0.001, 0.001},
		{9, 3, 1},
		{20, 0.7, 1.1},
	} {
		c := birthDeath(t, tc.n, tc.a, tc.b)
		want := geometricPi(tc.n, tc.a/tc.b)
		gth, err := c.SteadyStateGTH()
		if err != nil {
			t.Fatal(err)
		}
		assertDistEq(t, gth, want, 1e-9)
		lu, err := c.SteadyStateLU()
		if err != nil {
			t.Fatal(err)
		}
		assertDistEq(t, lu, want, 1e-9)
		pow, err := c.SteadyStatePower(1e-13, 5_000_000)
		if err != nil {
			t.Fatal(err)
		}
		assertDistEq(t, pow, want, 1e-6)
	}
}

func TestSteadyStateStiffRates(t *testing.T) {
	// Rates spanning many orders of magnitude (like λ=0.001 vs γ=1e-7)
	// must not break GTH.
	q := linalg.NewMatrix(3, 3)
	q.Set(0, 1, 1e-7)
	q.Set(1, 0, 1e-3)
	q.Set(1, 2, 1e-7)
	q.Set(2, 1, 1e-3)
	for i := 0; i < 3; i++ {
		var out float64
		for j := 0; j < 3; j++ {
			if i != j {
				out += q.At(i, j)
			}
		}
		q.Set(i, i, -out)
	}
	c, err := NewChain(q)
	if err != nil {
		t.Fatal(err)
	}
	pi, err := c.SteadyStateGTH()
	if err != nil {
		t.Fatal(err)
	}
	// Detailed balance: π1/π0 = 1e-7/1e-3 = 1e-4.
	if r := pi[1] / pi[0]; math.Abs(r-1e-4) > 1e-9 {
		t.Fatalf("ratio = %v", r)
	}
	lu, err := c.SteadyStateLU()
	if err != nil {
		t.Fatal(err)
	}
	assertDistEq(t, lu, pi, 1e-12)
}

func TestSteadyStateReducibleFallsBack(t *testing.T) {
	// State 1 is absorbing: GTH must fail, SteadyState falls back to the
	// power method, which converges to mass on state 1.
	q := linalg.NewMatrix(2, 2)
	q.Set(0, 1, 1)
	q.Set(0, 0, -1)
	c, err := NewChain(q)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.SteadyStateGTH(); !errors.Is(err, ErrNotSolvable) {
		t.Fatalf("GTH on reducible chain: %v", err)
	}
	pi, err := c.SteadyState()
	if err != nil {
		t.Fatal(err)
	}
	assertDistEq(t, pi, []float64{0, 1}, 1e-9)
}

func TestSteadyStateNoTransitions(t *testing.T) {
	q := linalg.NewMatrix(3, 3)
	c, err := NewChain(q)
	if err != nil {
		t.Fatal(err)
	}
	pi, err := c.SteadyState()
	if err != nil {
		t.Fatal(err)
	}
	assertDistEq(t, pi, []float64{1.0 / 3, 1.0 / 3, 1.0 / 3}, 1e-12)
}

func TestBuildMatchesPaperStructure(t *testing.T) {
	// Figure 1's 5-state chain: downward rates Pf·A·(λ+γ), upward
	// Ps·B·λ + Pf·T·μ.
	n := 5
	a, b, tm := ZeroJumpMatrices(n)
	a[3][0] = 0.5
	a[3][1] = 0.5
	b[0][2] = 1
	tm[1][3] = 1
	p := Params{
		N: n, Lambda: 0.001, Mu: 0.001, Gamma: 0.0001,
		Pf: 0.4, Ps: 0.3, A: a, B: b, T: tm,
	}
	c, err := Build(p)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := c.Rate(3, 0), 0.4*0.5*(0.001+0.0001); math.Abs(got-want) > 1e-15 {
		t.Fatalf("downward rate = %v, want %v", got, want)
	}
	if got, want := c.Rate(0, 2), 0.3*1*0.001; math.Abs(got-want) > 1e-15 {
		t.Fatalf("indirect upward rate = %v, want %v", got, want)
	}
	if got, want := c.Rate(1, 3), 0.4*1*0.001; math.Abs(got-want) > 1e-15 {
		t.Fatalf("termination upward rate = %v, want %v", got, want)
	}
	// Diagonal closes each row.
	g := c.Generator()
	for i := 0; i < n; i++ {
		var sum float64
		for j := 0; j < n; j++ {
			sum += g.At(i, j)
		}
		if math.Abs(sum) > 1e-15 {
			t.Fatalf("row %d sums to %v", i, sum)
		}
	}
}

func TestParamsValidate(t *testing.T) {
	n := 3
	mkOK := func() Params {
		a, b, tm := ZeroJumpMatrices(n)
		a[2][0] = 1
		b[0][2] = 1
		tm[0][1] = 1
		return Params{N: n, Lambda: 1, Mu: 1, Gamma: 0, Pf: 0.5, Ps: 0.5, A: a, B: b, T: tm}
	}
	if err := func() error { p := mkOK(); return p.Validate() }(); err != nil {
		t.Fatal(err)
	}
	cases := []func(*Params){
		func(p *Params) { p.N = 1 },
		func(p *Params) { p.Lambda = -1 },
		func(p *Params) { p.Pf = 1.5 },
		func(p *Params) { p.Ps = -0.1 },
		func(p *Params) { p.A[0][2] = 0.5 },                  // A above diagonal
		func(p *Params) { p.B[2][0] = 0.5 },                  // B below diagonal
		func(p *Params) { p.T[1][1] = 0.5 },                  // T on diagonal
		func(p *Params) { p.A[2][0] = 2 },                    // out of range
		func(p *Params) { p.A = p.A[:2] },                    // wrong rows
		func(p *Params) { p.B[0] = p.B[0][:1] },              // wrong cols
		func(p *Params) { p.T[0][1] = 0.7; p.T[0][2] = 0.7 }, // row > 1
	}
	for i, mutate := range cases {
		p := mkOK()
		mutate(&p)
		if err := p.Validate(); !errors.Is(err, ErrInvalidParams) {
			t.Fatalf("case %d: err = %v", i, err)
		}
	}
}

func TestMeanBandwidth(t *testing.T) {
	spec := qos.ElasticSpec{Min: 100, Max: 300, Increment: 100, Utility: 1}
	mean, err := MeanBandwidth([]float64{0.5, 0, 0.5}, spec)
	if err != nil {
		t.Fatal(err)
	}
	if mean != 200 {
		t.Fatalf("mean = %v", mean)
	}
	if _, err := MeanBandwidth([]float64{1}, spec); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestTransientConvergesToSteadyState(t *testing.T) {
	c := birthDeath(t, 5, 1, 2)
	p0 := []float64{1, 0, 0, 0, 0}
	pi, err := c.SteadyState()
	if err != nil {
		t.Fatal(err)
	}
	long, err := c.Transient(p0, 1000, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	assertDistEq(t, long, pi, 1e-6)
}

func TestTransientShortTime(t *testing.T) {
	c := birthDeath(t, 3, 1, 1)
	p0 := []float64{1, 0, 0}
	at0, err := c.Transient(p0, 0, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	assertDistEq(t, at0, p0, 1e-12)
	// For tiny t, mass leaks at rate ~q01·t.
	eps, err := c.Transient(p0, 1e-4, 1e-14)
	if err != nil {
		t.Fatal(err)
	}
	if eps[1] < 0.9e-4 || eps[1] > 1.1e-4 {
		t.Fatalf("first-order mass = %v, want ~1e-4", eps[1])
	}
}

func TestTransientValidation(t *testing.T) {
	c := birthDeath(t, 3, 1, 1)
	if _, err := c.Transient([]float64{1, 0}, 1, 0); err == nil {
		t.Fatal("wrong length accepted")
	}
	if _, err := c.Transient([]float64{0.5, 0.2, 0.1}, 1, 0); err == nil {
		t.Fatal("non-normalized accepted")
	}
	if _, err := c.Transient([]float64{1, 0, 0}, -1, 0); err == nil {
		t.Fatal("negative time accepted")
	}
	if _, err := c.Transient([]float64{2, -1, 0}, 1, 0); err == nil {
		t.Fatal("negative probability accepted")
	}
}

// Property: for random irreducible birth-death-like chains, GTH and LU
// agree and π·Q ≈ 0.
func TestQuickSolversAgree(t *testing.T) {
	f := func(seed uint64) bool {
		src := rng.New(seed)
		n := 2 + src.Intn(10)
		q := linalg.NewMatrix(n, n)
		for i := 0; i < n; i++ {
			var out float64
			for j := 0; j < n; j++ {
				if i == j {
					continue
				}
				// Dense random rates keep the chain irreducible.
				r := 0.01 + src.Float64()
				q.Set(i, j, r)
				out += r
			}
			q.Set(i, i, -out)
		}
		c, err := NewChain(q)
		if err != nil {
			return false
		}
		gth, err := c.SteadyStateGTH()
		if err != nil {
			return false
		}
		lu, err := c.SteadyStateLU()
		if err != nil {
			return false
		}
		for i := range gth {
			if math.Abs(gth[i]-lu[i]) > 1e-8 {
				return false
			}
		}
		// πQ ≈ 0.
		res, err := c.Generator().VecMat(gth)
		if err != nil {
			return false
		}
		return linalg.NormInf(res) < 1e-10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: Build + SteadyState yields a valid distribution for random
// sub-stochastic jump matrices whenever the chain is solvable.
func TestQuickBuildSolvable(t *testing.T) {
	f := func(seed uint64) bool {
		src := rng.New(seed)
		n := 3 + src.Intn(7)
		a, b, tm := ZeroJumpMatrices(n)
		// Dense downward and upward structure keeps irreducibility.
		for i := 1; i < n; i++ {
			a[i][i-1] = 1 // always possible to fall one state
		}
		for i := 0; i < n-1; i++ {
			b[i][i+1] = 0.5
			tm[i][n-1] = 0.5 // terminations jump to the top
		}
		p := Params{
			N: n, Lambda: 0.001, Mu: 0.001, Gamma: 1e-6,
			Pf: 0.1 + 0.8*src.Float64(), Ps: 0.1 + 0.8*src.Float64(),
			A: a, B: b, T: tm,
		}
		c, err := Build(p)
		if err != nil {
			return false
		}
		pi, err := c.SteadyState()
		if err != nil {
			return false
		}
		var sum float64
		for _, v := range pi {
			if v < -1e-12 {
				return false
			}
			sum += v
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMarkovSolve(b *testing.B) {
	// Fig 1-scale chain (9 states) solved with GTH, as the experiment
	// harness does for every data point.
	n := 9
	a, bm, tm := ZeroJumpMatrices(n)
	for i := 1; i < n; i++ {
		a[i][0] = 0.6
		a[i][i-1] = 0.4
		if i > 1 {
			a[i][0] = 0.5
			a[i][i-1] = 0.3
			a[i][1] = 0.2
		}
	}
	for i := 0; i < n-1; i++ {
		bm[i][i+1] = 0.7
		bm[i][n-1] = 0.3
		tm[i][i+1] = 1
	}
	p := Params{N: n, Lambda: 0.001, Mu: 0.001, Gamma: 0, Pf: 0.3, Ps: 0.4, A: a, B: bm, T: tm}
	c, err := Build(p)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.SteadyStateGTH(); err != nil {
			b.Fatal(err)
		}
	}
}
