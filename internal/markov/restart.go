package markov

import (
	"fmt"
	"math"
)

// WithRestart returns the finite-lifetime extension of the chain: the
// tagged channel dies at rate delta (per-channel termination rate μ/N̄) and
// is immediately replaced by a fresh channel whose level is drawn from the
// birth distribution beta (the post-establishment level distribution the
// simulator measures). The generator becomes
//
//	Q' = Q + delta · (𝟙·βᵀ − I)
//
// whose stationary distribution is the lifetime-averaged level distribution
// of a channel population — well-defined even when Q has no transitions at
// all (then π = β exactly, matching the empty-network limit where every
// channel just sits where it was admitted).
//
// The paper's §3.2 model omits birth and death of the tagged channel; this
// extension quantifies what that omission costs (see EXPERIMENTS.md).
func (c *Chain) WithRestart(beta []float64, delta float64) (*Chain, error) {
	n := c.N()
	if len(beta) != n {
		return nil, fmt.Errorf("%w: birth distribution over %d states, chain has %d", ErrInvalidParams, len(beta), n)
	}
	if delta < 0 {
		return nil, fmt.Errorf("%w: negative restart rate %v", ErrInvalidParams, delta)
	}
	var sum float64
	for _, v := range beta {
		if v < 0 {
			return nil, fmt.Errorf("%w: negative birth probability %v", ErrInvalidParams, v)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		return nil, fmt.Errorf("%w: birth distribution sums to %v", ErrInvalidParams, sum)
	}
	q := c.q.Clone()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			q.Add(i, j, delta*beta[j])
		}
		q.Add(i, i, -delta)
	}
	return &Chain{q: q}, nil
}

// SteadyStateFrom computes the stationary distribution, preferring GTH and
// falling back to power iteration started from p0 rather than from the
// uniform vector. For reducible chains the result is the limiting
// distribution reachable from p0, which is the physically meaningful answer
// when p0 is the channel birth distribution.
func (c *Chain) SteadyStateFrom(p0 []float64) ([]float64, error) {
	if pi, err := c.SteadyStateGTH(); err == nil {
		return pi, nil
	}
	n := c.N()
	if len(p0) != n {
		return nil, fmt.Errorf("%w: initial distribution over %d states, chain has %d", ErrInvalidParams, len(p0), n)
	}
	pi := make([]float64, n)
	copy(pi, p0)
	lam := 0.0
	for i := 0; i < n; i++ {
		if r := -c.q.At(i, i); r > lam {
			lam = r
		}
	}
	if lam == 0 {
		return pi, nil // no dynamics: the birth distribution persists
	}
	lam *= 1.05
	next := make([]float64, n)
	for iter := 0; iter < 1_000_000; iter++ {
		copy(next, pi)
		for i := 0; i < n; i++ {
			if pi[i] == 0 {
				continue
			}
			for j := 0; j < n; j++ {
				next[j] += pi[i] * c.q.At(i, j) / lam
			}
		}
		var diff, sum float64
		for j := 0; j < n; j++ {
			diff += math.Abs(next[j] - pi[j])
			sum += next[j]
		}
		for j := 0; j < n; j++ {
			pi[j] = next[j] / sum
		}
		if diff < 1e-12 {
			return pi, nil
		}
	}
	return nil, fmt.Errorf("%w: power iteration from p0 did not converge", ErrNotSolvable)
}
