package markov

import (
	"fmt"
	"math"
)

// Transient computes the state distribution at time t starting from the
// initial distribution p0, using uniformization (Jensen's method): with
// Λ ≥ max exit rate and P = I + Q/Λ,
//
//	π(t) = Σ_{k≥0} e^{-Λt} (Λt)^k / k! · p0·P^k
//
// The series is truncated when the accumulated Poisson mass exceeds
// 1 − tol. This is the standard transient engine in SHARPE-class tools.
func (c *Chain) Transient(p0 []float64, t, tol float64) ([]float64, error) {
	n := c.N()
	if len(p0) != n {
		return nil, fmt.Errorf("markov: initial distribution over %d states, chain has %d", len(p0), n)
	}
	if t < 0 {
		return nil, fmt.Errorf("markov: negative time %v", t)
	}
	if tol <= 0 {
		tol = 1e-12
	}
	var sum float64
	for _, v := range p0 {
		if v < 0 {
			return nil, fmt.Errorf("markov: negative initial probability %v", v)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		return nil, fmt.Errorf("markov: initial distribution sums to %v", sum)
	}

	lam := 0.0
	for i := 0; i < n; i++ {
		if r := -c.q.At(i, i); r > lam {
			lam = r
		}
	}
	out := make([]float64, n)
	if lam == 0 || t == 0 {
		copy(out, p0)
		return out, nil
	}

	// v_k = p0·P^k computed iteratively; Poisson weights computed in a
	// numerically safe recurrence starting from the log term.
	vk := make([]float64, n)
	copy(vk, p0)
	lt := lam * t
	// weight_0 = e^{-Λt}; handle large Λt by working in log space until
	// the weights become representable.
	logW := -lt
	accumulated := 0.0
	next := make([]float64, n)
	for k := 0; ; k++ {
		w := math.Exp(logW)
		if w > 0 {
			for j := 0; j < n; j++ {
				out[j] += w * vk[j]
			}
			accumulated += w
			if 1-accumulated < tol {
				break
			}
		}
		if k > int(lt)+200+20*int(math.Sqrt(lt)) {
			// Far beyond the Poisson bulk: whatever mass remains is below
			// numeric resolution.
			break
		}
		// vk = vk · P where P = I + Q/Λ.
		for j := 0; j < n; j++ {
			next[j] = vk[j]
		}
		for i := 0; i < n; i++ {
			if vk[i] == 0 {
				continue
			}
			for j := 0; j < n; j++ {
				next[j] += vk[i] * c.q.At(i, j) / lam
			}
		}
		copy(vk, next)
		logW += math.Log(lt) - math.Log(float64(k+1))
	}
	// Normalize away truncation residue.
	var total float64
	for _, v := range out {
		total += v
	}
	if total > 0 {
		for j := range out {
			out[j] /= total
		}
	}
	return out, nil
}
