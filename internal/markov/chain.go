package markov

import (
	"errors"
	"fmt"
	"math"

	"drqos/internal/linalg"
	"drqos/internal/qos"
)

// ErrNotSolvable reports a chain whose steady state could not be computed.
var ErrNotSolvable = errors.New("markov: chain not solvable")

// Chain is a finite continuous-time Markov chain given by its generator
// matrix Q (off-diagonal entries are non-negative rates; rows sum to zero).
type Chain struct {
	q *linalg.Matrix
}

// NewChain wraps a generator matrix after validating its structure.
func NewChain(q *linalg.Matrix) (*Chain, error) {
	if q.Rows() != q.Cols() {
		return nil, fmt.Errorf("markov: generator %dx%d not square", q.Rows(), q.Cols())
	}
	for i := 0; i < q.Rows(); i++ {
		var sum float64
		for j := 0; j < q.Cols(); j++ {
			v := q.At(i, j)
			if i != j && v < 0 {
				return nil, fmt.Errorf("markov: negative rate q[%d][%d]=%v", i, j, v)
			}
			sum += v
		}
		if math.Abs(sum) > 1e-9*math.Max(1, q.MaxAbs()) {
			return nil, fmt.Errorf("markov: row %d of generator sums to %v, want 0", i, sum)
		}
	}
	return &Chain{q: q}, nil
}

// Build assembles the §3.2 generator from the paper's transition rules:
//
//	rate(i→j) = Pf·A[i][j]·(λ+γ)            for i > j (arrivals & failures)
//	rate(i→j) = Ps·B[i][j]·λ + Pf·T[i][j]·μ  for i < j (indirect chaining &
//	                                          terminations)
func Build(p Params) (*Chain, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	q := linalg.NewMatrix(p.N, p.N)
	for i := 0; i < p.N; i++ {
		var out float64
		for j := 0; j < p.N; j++ {
			if i == j {
				continue
			}
			var r float64
			if i > j {
				r = p.Pf * p.A[i][j] * (p.Lambda + p.Gamma)
			} else {
				r = p.Ps*p.B[i][j]*p.Lambda + p.Pf*p.T[i][j]*p.Mu
			}
			if r > 0 {
				q.Set(i, j, r)
				out += r
			}
		}
		q.Set(i, i, -out)
	}
	return &Chain{q: q}, nil
}

// N returns the number of states.
func (c *Chain) N() int { return c.q.Rows() }

// Generator returns a copy of the generator matrix.
func (c *Chain) Generator() *linalg.Matrix { return c.q.Clone() }

// Rate returns the transition rate from state i to state j.
func (c *Chain) Rate(i, j int) float64 { return c.q.At(i, j) }

// SteadyState returns the stationary distribution π with πQ = 0, Σπ = 1.
// It first tries the numerically stable GTH state-reduction algorithm; if
// the chain is reducible (GTH hits a zero pivot), it falls back to the
// uniformized power iteration, which converges to the stationary
// distribution reachable from the uniform initial vector.
func (c *Chain) SteadyState() ([]float64, error) {
	if pi, err := c.SteadyStateGTH(); err == nil {
		return pi, nil
	}
	return c.SteadyStatePower(1e-12, 1_000_000)
}

// SteadyStateGTH implements the Grassmann-Taksar-Heyman state-reduction
// algorithm (the subtraction-free method SHARPE-class tools use): states
// are censored from last to first, then the stationary vector is recovered
// by forward substitution. It requires an irreducible chain.
func (c *Chain) SteadyStateGTH() ([]float64, error) {
	n := c.N()
	a := c.q.Clone()
	for k := n - 1; k >= 1; k-- {
		var s float64
		for j := 0; j < k; j++ {
			s += a.At(k, j)
		}
		if s <= 0 {
			return nil, fmt.Errorf("%w: state %d cannot reach lower-indexed states (reducible chain)", ErrNotSolvable, k)
		}
		// Scale column k, then fold state k's behaviour into the rest.
		for i := 0; i < k; i++ {
			a.Set(i, k, a.At(i, k)/s)
		}
		for i := 0; i < k; i++ {
			f := a.At(i, k)
			if f == 0 {
				continue
			}
			for j := 0; j < k; j++ {
				if i == j {
					continue
				}
				a.Add(i, j, f*a.At(k, j))
			}
		}
	}
	pi := make([]float64, n)
	pi[0] = 1
	for k := 1; k < n; k++ {
		var s float64
		for i := 0; i < k; i++ {
			s += pi[i] * a.At(i, k)
		}
		pi[k] = s
	}
	var total float64
	for _, v := range pi {
		total += v
	}
	for i := range pi {
		pi[i] /= total
	}
	return pi, nil
}

// SteadyStatePower computes the stationary distribution via uniformization:
// P = I + Q/Λ with Λ slightly above the largest exit rate, then power
// iteration from the uniform vector until the change is below tol.
func (c *Chain) SteadyStatePower(tol float64, maxIter int) ([]float64, error) {
	n := c.N()
	lam := 0.0
	for i := 0; i < n; i++ {
		if r := -c.q.At(i, i); r > lam {
			lam = r
		}
	}
	if lam == 0 {
		// No transitions at all: every distribution is stationary; return
		// uniform (all states equally likely is the only unbiased answer).
		pi := make([]float64, n)
		for i := range pi {
			pi[i] = 1 / float64(n)
		}
		return pi, nil
	}
	lam *= 1.05 // strict aperiodicity margin
	pi := make([]float64, n)
	for i := range pi {
		pi[i] = 1 / float64(n)
	}
	next := make([]float64, n)
	for iter := 0; iter < maxIter; iter++ {
		for j := 0; j < n; j++ {
			next[j] = pi[j]
		}
		// next = pi * (I + Q/lam)
		for i := 0; i < n; i++ {
			if pi[i] == 0 {
				continue
			}
			for j := 0; j < n; j++ {
				next[j] += pi[i] * c.q.At(i, j) / lam
			}
		}
		var diff, sum float64
		for j := 0; j < n; j++ {
			diff += math.Abs(next[j] - pi[j])
			sum += next[j]
		}
		// Renormalize against accumulated fp drift.
		for j := 0; j < n; j++ {
			pi[j] = next[j] / sum
		}
		if diff < tol {
			return pi, nil
		}
	}
	return nil, fmt.Errorf("%w: power iteration did not converge in %d iterations", ErrNotSolvable, maxIter)
}

// SteadyStateLU solves the stationary equations with a dense LU factorization:
// replace the last equation of QᵀX = 0 by the normalization Σπ = 1.
func (c *Chain) SteadyStateLU() ([]float64, error) {
	n := c.N()
	a := c.q.Transpose()
	for j := 0; j < n; j++ {
		a.Set(n-1, j, 1)
	}
	b := make([]float64, n)
	b[n-1] = 1
	pi, err := linalg.SolveLinear(a, b)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrNotSolvable, err)
	}
	for i, v := range pi {
		if v < -1e-9 {
			return nil, fmt.Errorf("%w: negative stationary probability π[%d]=%v", ErrNotSolvable, i, v)
		}
		if v < 0 {
			pi[i] = 0
		}
	}
	return pi, nil
}

// MeanBandwidth returns E[B] = Σ π_i · (Bmin + i·Δ) in Kb/s — the paper's
// "average bandwidth reserved for each primary channel".
func MeanBandwidth(pi []float64, spec qos.ElasticSpec) (float64, error) {
	if len(pi) != spec.States() {
		return 0, fmt.Errorf("markov: distribution over %d states, spec has %d", len(pi), spec.States())
	}
	var mean float64
	for i, p := range pi {
		mean += p * float64(spec.Bandwidth(i))
	}
	return mean, nil
}
