package markov_test

import (
	"fmt"

	"drqos/internal/markov"
	"drqos/internal/qos"
)

// Example builds the paper's Figure-1-style chain from hand-written
// parameters and reports the mean reserved bandwidth.
func Example() {
	n := 5
	a, b, t := markov.ZeroJumpMatrices(n)
	for i := 1; i < n; i++ {
		a[i][i-1] = 0.5 // arrivals push one level down half the time
	}
	for i := 0; i < n-1; i++ {
		b[i][i+1] = 0.25 // indirect chaining pulls up occasionally
		t[i][n-1] = 0.5  // terminations free enough room to reach the top
	}
	chain, err := markov.Build(markov.Params{
		N: n, Lambda: 0.001, Mu: 0.001, Gamma: 0,
		Pf: 0.04, Ps: 0.3, A: a, B: b, T: t,
	})
	if err != nil {
		panic(err)
	}
	pi, err := chain.SteadyState()
	if err != nil {
		panic(err)
	}
	spec := qos.ElasticSpec{Min: 100, Max: 500, Increment: 100, Utility: 1}
	mean, err := markov.MeanBandwidth(pi, spec)
	if err != nil {
		panic(err)
	}
	fmt.Printf("mean reserved bandwidth: %.0f Kbps\n", mean)
	// Output:
	// mean reserved bandwidth: 475 Kbps
}
