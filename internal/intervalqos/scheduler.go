package intervalqos

import (
	"fmt"
	"sort"
)

// Scheduler is a link manager that applies interval QoS under congestion:
// every tick each registered stream offers one packet, the link can carry
// at most Capacity of them, and the scheduler selectively skips packets of
// streams that can afford it (§2.2). Mandatory packets (streams that can no
// longer skip) are sent first; remaining slots go to the streams closest to
// violation (smallest DBP distance), which is the standard (m,k)-firm
// scheduling heuristic.
type Scheduler struct {
	capacity int
	streams  []*Stream
}

// NewScheduler returns a link scheduler carrying at most capacity packets
// per tick.
func NewScheduler(capacity int) (*Scheduler, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("intervalqos: non-positive capacity %d", capacity)
	}
	return &Scheduler{capacity: capacity}, nil
}

// Add registers a stream and returns its index.
func (ls *Scheduler) Add(s *Stream) int {
	ls.streams = append(ls.streams, s)
	return len(ls.streams) - 1
}

// Streams returns the registered streams.
func (ls *Scheduler) Streams() []*Stream { return ls.streams }

// TickResult reports one scheduling round.
type TickResult struct {
	// Sent and Skipped list stream indices.
	Sent, Skipped []int
	// Overload reports that mandatory packets alone exceeded capacity, so
	// some contract was necessarily put at risk.
	Overload bool
}

// Tick schedules one round: every stream offers a packet; at most Capacity
// are delivered.
func (ls *Scheduler) Tick() TickResult {
	type offer struct {
		idx       int
		mandatory bool
		distance  int
	}
	offers := make([]offer, len(ls.streams))
	for i, s := range ls.streams {
		offers[i] = offer{idx: i, mandatory: !s.CanSkip(), distance: s.Distance()}
	}
	// Mandatory first, then ascending distance (closest to violation
	// first), then index for determinism.
	sort.SliceStable(offers, func(a, b int) bool {
		oa, ob := offers[a], offers[b]
		if oa.mandatory != ob.mandatory {
			return oa.mandatory
		}
		if oa.distance != ob.distance {
			return oa.distance < ob.distance
		}
		return oa.idx < ob.idx
	})
	var res TickResult
	mandatoryCount := 0
	for _, o := range offers {
		if o.mandatory {
			mandatoryCount++
		}
	}
	res.Overload = mandatoryCount > ls.capacity
	for rank, o := range offers {
		if rank < ls.capacity {
			ls.streams[o.idx].Deliver()
			res.Sent = append(res.Sent, o.idx)
		} else {
			ls.streams[o.idx].Skip()
			res.Skipped = append(res.Skipped, o.idx)
		}
	}
	sort.Ints(res.Sent)
	sort.Ints(res.Skipped)
	return res
}

// Violations sums contract violations across streams.
func (ls *Scheduler) Violations() int64 {
	var v int64
	for _, s := range ls.streams {
		_, _, viol := s.Counts()
		v += viol
	}
	return v
}
