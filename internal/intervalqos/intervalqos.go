// Package intervalqos implements the paper's second elastic-QoS model
// (§2.2): interval QoS, "expressed in the form of k-out-of-M within a fixed
// time interval, meaning that at least k but less than or equal to M
// packets should arrive within a fixed time interval. The link manager can
// selectively ignore a packet as long as it can satisfy the minimum
// k-out-of-M requirement."
//
// The implementation follows the (m,k)-firm stream literature the paper
// cites (skip-over [12], skips for aperiodic responsiveness [13]): each
// stream tracks the delivery outcomes of its last M packets; a packet may
// be skipped when every window still meets the k-of-M floor; and streams
// competing for a congested link are ordered by distance-based priority
// (DBP) — the number of consecutive future misses a stream can still
// absorb before violating its contract.
//
// The range-QoS model (package qos) governs channel ESTABLISHMENT; this
// package governs RUN-TIME packet management on a link, exactly the split
// the paper describes.
package intervalqos

import (
	"errors"
	"fmt"
)

// ErrInvalidSpec reports a malformed k-out-of-M specification.
var ErrInvalidSpec = errors.New("intervalqos: invalid spec")

// Spec is a k-out-of-M interval QoS contract: at least K of any M
// consecutive packets must be delivered.
type Spec struct {
	K, M int
}

// Validate checks 1 ≤ K ≤ M.
func (s Spec) Validate() error {
	if s.K < 1 || s.M < s.K {
		return fmt.Errorf("%w: %d-out-of-%d", ErrInvalidSpec, s.K, s.M)
	}
	return nil
}

// SkipBudget returns M−K, the number of packets skippable per window.
func (s Spec) SkipBudget() int { return s.M - s.K }

// Stream tracks one channel's delivery history against its contract.
type Stream struct {
	spec Spec
	// history holds the outcomes of the last M packets as a ring buffer;
	// true = delivered.
	history []bool
	head    int
	filled  int

	delivered int64
	skipped   int64
	violated  int64
}

// NewStream returns a stream with an empty (all-delivered) history, the
// customary optimistic initialization of (m,k)-firm analysis.
func NewStream(spec Spec) (*Stream, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return &Stream{
		spec:    spec,
		history: make([]bool, spec.M),
	}, nil
}

// Spec returns the stream's contract.
func (s *Stream) Spec() Spec { return s.spec }

// deliveredInWindow counts delivered packets among the last n outcomes
// (n ≤ filled).
func (s *Stream) deliveredInWindow(n int) int {
	count := 0
	for i := 0; i < n; i++ {
		idx := (s.head - 1 - i + len(s.history) + len(s.history)) % len(s.history)
		if s.history[idx] {
			count++
		}
	}
	return count
}

// CanSkip reports whether skipping the NEXT packet keeps the contract: the
// window consisting of the last M−1 outcomes plus the skip must still
// contain at least K deliveries. Before the history fills, missing slots
// count as delivered (the stream starts with a clean record).
func (s *Stream) CanSkip() bool {
	m := s.spec.M
	window := m - 1
	n := window
	if s.filled < n {
		n = s.filled
	}
	delivered := s.deliveredInWindow(n) + (window - n) // unfilled ⇒ clean
	return delivered >= s.spec.K
}

// Distance returns the DBP distance to failure: the number of consecutive
// future misses the stream can absorb while still meeting K-of-M in every
// window. A freshly initialized stream has distance M−K+1; a stream at its
// floor has distance 1; a violated window reports 0.
func (s *Stream) Distance() int {
	m := s.spec.M
	// Simulate consecutive misses until some window of M outcomes drops
	// below K. With j misses appended, the most recent window contains the
	// j misses plus the last M−j recorded outcomes.
	for j := 0; j <= m; j++ {
		n := m - j
		if n < 0 {
			n = 0
		}
		avail := n
		if s.filled < avail {
			avail = s.filled
		}
		delivered := s.deliveredInWindow(avail) + (n - avail)
		if delivered < s.spec.K {
			return j
		}
	}
	return m + 1 // K = 0 would be here; Validate excludes it
}

// record appends one outcome.
func (s *Stream) record(deliveredOutcome bool) {
	s.history[s.head] = deliveredOutcome
	s.head = (s.head + 1) % len(s.history)
	if s.filled < len(s.history) {
		s.filled++
	}
	if deliveredOutcome {
		s.delivered++
		return
	}
	s.skipped++
	// A violation occurs when the full window drops below K.
	if s.filled == len(s.history) && s.deliveredInWindow(len(s.history)) < s.spec.K {
		s.violated++
	}
}

// Deliver records a delivered packet.
func (s *Stream) Deliver() { s.record(true) }

// Skip records a skipped packet.
func (s *Stream) Skip() { s.record(false) }

// Counts returns the cumulative delivered, skipped and violation counts.
func (s *Stream) Counts() (delivered, skipped, violations int64) {
	return s.delivered, s.skipped, s.violated
}
