package intervalqos

import (
	"testing"
	"testing/quick"

	"drqos/internal/rng"
)

func mustStream(t *testing.T, k, m int) *Stream {
	t.Helper()
	s, err := NewStream(Spec{K: k, M: m})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSpecValidate(t *testing.T) {
	for _, bad := range []Spec{{0, 5}, {6, 5}, {-1, 3}, {1, 0}} {
		if err := bad.Validate(); err == nil {
			t.Fatalf("spec %+v accepted", bad)
		}
	}
	ok := Spec{K: 3, M: 5}
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
	if ok.SkipBudget() != 2 {
		t.Fatalf("budget = %d", ok.SkipBudget())
	}
}

func TestFreshStreamCanSkipBudget(t *testing.T) {
	// 3-of-5: a fresh stream may skip twice in a row, not three times.
	s := mustStream(t, 3, 5)
	if !s.CanSkip() {
		t.Fatal("fresh stream cannot skip")
	}
	s.Skip()
	if !s.CanSkip() {
		t.Fatal("second skip refused")
	}
	s.Skip()
	if s.CanSkip() {
		t.Fatal("third consecutive skip allowed — would violate 3-of-5")
	}
}

func TestDeliveriesRestoreSkipBudget(t *testing.T) {
	s := mustStream(t, 3, 5)
	s.Skip()
	s.Skip()
	// Window (newest first): X X . . . — must deliver now.
	for i := 0; i < 3; i++ {
		if s.CanSkip() {
			t.Fatalf("skip allowed with exhausted budget (i=%d)", i)
		}
		s.Deliver()
	}
	// Window: D D D X X — the skips are about to age out.
	if !s.CanSkip() {
		t.Fatal("skip refused after oldest miss aged out of the window")
	}
}

func TestDistance(t *testing.T) {
	s := mustStream(t, 3, 5)
	// Fresh: can absorb M−K = 2 misses, fails on the 3rd → distance 3.
	if d := s.Distance(); d != 3 {
		t.Fatalf("fresh distance = %d, want 3", d)
	}
	s.Skip()
	if d := s.Distance(); d != 2 {
		t.Fatalf("after one skip distance = %d, want 2", d)
	}
	s.Skip()
	if d := s.Distance(); d != 1 {
		t.Fatalf("after two skips distance = %d, want 1", d)
	}
	s.Deliver()
	if d := s.Distance(); d != 1 {
		// Window newest-first: D X X . . → one more miss makes the
		// window (miss D X X .) = 1 delivered + clean slot... still a
		// 5-window with 2 delivered + 1 clean = 3 ≥ 3: wait, compute:
		// outcomes recorded: X X D (filled 3). One appended miss: window
		// = miss, D, X, X + 1 clean = delivered 2 (D + clean) < 3 → fails
		// → distance 1.
		t.Fatalf("distance = %d, want 1", d)
	}
}

func TestViolationCounting(t *testing.T) {
	s := mustStream(t, 2, 3)
	s.Skip()
	s.Skip() // window not yet full: no violation recorded
	s.Skip() // full window 0-of-3 < 2 → violation
	_, skipped, viol := s.Counts()
	if skipped != 3 {
		t.Fatalf("skipped = %d", skipped)
	}
	if viol != 1 {
		t.Fatalf("violations = %d, want 1", viol)
	}
	s.Deliver()
	s.Skip() // window D X X? newest-first: X D X → 1 delivered < 2 → violation
	_, _, viol = s.Counts()
	if viol != 2 {
		t.Fatalf("violations = %d, want 2", viol)
	}
}

func TestSchedulerRespectsContractsWhenFeasible(t *testing.T) {
	// 3 streams of 1-of-2 on a capacity-2 link: aggregate mandatory rate
	// 1.5 ≤ 2, so a correct scheduler never violates any contract.
	ls, err := NewScheduler(2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		ls.Add(mustStream(t, 1, 2))
	}
	for tick := 0; tick < 1000; tick++ {
		res := ls.Tick()
		if len(res.Sent) != 2 || len(res.Skipped) != 1 {
			t.Fatalf("tick %d: sent %v skipped %v", tick, res.Sent, res.Skipped)
		}
		if res.Overload {
			t.Fatalf("tick %d: spurious overload", tick)
		}
	}
	if v := ls.Violations(); v != 0 {
		t.Fatalf("violations = %d on a feasible workload", v)
	}
	// Every stream keeps delivering (no starvation), and the per-tick skip
	// lands on SOME stream each round. Note the deterministic index
	// tiebreak means the lowest-indexed stream may never be skipped at
	// all; that is fine as long as no contract breaks.
	var totalSkipped int64
	for i, s := range ls.Streams() {
		delivered, skipped, _ := s.Counts()
		if delivered == 0 {
			t.Fatalf("stream %d starved: delivered %d skipped %d", i, delivered, skipped)
		}
		totalSkipped += skipped
	}
	if totalSkipped != 1000 {
		t.Fatalf("total skipped = %d, want one per tick", totalSkipped)
	}
}

func TestSchedulerOverload(t *testing.T) {
	// 3 streams of 1-of-1 (no skips allowed) on a capacity-2 link: some
	// contract must break, and Overload must be reported.
	ls, err := NewScheduler(2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		ls.Add(mustStream(t, 1, 1))
	}
	sawOverload := false
	for tick := 0; tick < 10; tick++ {
		if ls.Tick().Overload {
			sawOverload = true
		}
	}
	if !sawOverload {
		t.Fatal("overload never reported")
	}
	if ls.Violations() == 0 {
		t.Fatal("violations impossible to avoid yet none recorded")
	}
}

func TestSchedulerValidation(t *testing.T) {
	if _, err := NewScheduler(0); err == nil {
		t.Fatal("zero capacity accepted")
	}
}

func TestSchedulerPrefersClosestToViolation(t *testing.T) {
	ls, err := NewScheduler(1)
	if err != nil {
		t.Fatal(err)
	}
	relaxed := mustStream(t, 1, 4) // big skip budget
	tight := mustStream(t, 3, 4)   // small skip budget
	ls.Add(relaxed)
	ls.Add(tight)
	for tick := 0; tick < 400; tick++ {
		ls.Tick()
	}
	if v := ls.Violations(); v != 0 {
		t.Fatalf("violations = %d; capacity 1 suffices for 1/4 + 3/4", v)
	}
	dTight, _, _ := tight.Counts()
	dRelaxed, _, _ := relaxed.Counts()
	if dTight <= dRelaxed {
		t.Fatalf("tight contract should receive more slots: %d vs %d", dTight, dRelaxed)
	}
}

// Property: a single stream that skips exactly when CanSkip allows never
// records a violation, for random k-of-M contracts and random skip urges.
func TestQuickGreedySkipperNeverViolates(t *testing.T) {
	f := func(seed uint64, kRaw, mRaw uint8) bool {
		m := int(mRaw%8) + 1
		k := int(kRaw)%m + 1
		s, err := NewStream(Spec{K: k, M: m})
		if err != nil {
			return false
		}
		src := rng.New(seed)
		for i := 0; i < 300; i++ {
			if src.Bernoulli(0.6) && s.CanSkip() {
				s.Skip()
			} else {
				s.Deliver()
			}
		}
		_, _, viol := s.Counts()
		return viol == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Distance is always in [0, M−K+1] and decreases by at most 1
// per skip.
func TestQuickDistanceBounds(t *testing.T) {
	f := func(seed uint64, kRaw, mRaw uint8) bool {
		m := int(mRaw%8) + 1
		k := int(kRaw)%m + 1
		s, err := NewStream(Spec{K: k, M: m})
		if err != nil {
			return false
		}
		src := rng.New(seed)
		prev := s.Distance()
		if prev != m-k+1 {
			return false
		}
		for i := 0; i < 200; i++ {
			if src.Bernoulli(0.5) {
				s.Skip()
				d := s.Distance()
				if d < 0 || d > m-k+1 || d < prev-1 {
					return false
				}
				prev = d
			} else {
				s.Deliver()
				prev = s.Distance()
				if prev < 0 || prev > m-k+1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSchedulerTick(b *testing.B) {
	ls, err := NewScheduler(8)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		s, err := NewStream(Spec{K: 3, M: 5})
		if err != nil {
			b.Fatal(err)
		}
		ls.Add(s)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ls.Tick()
	}
}
