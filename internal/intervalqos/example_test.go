package intervalqos_test

import (
	"fmt"

	"drqos/internal/intervalqos"
)

// Example shows the k-out-of-M contract from §2.2: a 2-of-3 stream may
// lose one packet per window, and the link manager checks CanSkip before
// ignoring one.
func Example() {
	s, err := intervalqos.NewStream(intervalqos.Spec{K: 2, M: 3})
	if err != nil {
		panic(err)
	}
	fmt.Println("fresh stream may skip:", s.CanSkip())
	s.Skip()
	fmt.Println("after one skip, may skip again:", s.CanSkip())
	s.Deliver()
	s.Deliver()
	fmt.Println("after two deliveries, may skip:", s.CanSkip())
	_, _, violations := s.Counts()
	fmt.Println("violations:", violations)
	// Output:
	// fresh stream may skip: true
	// after one skip, may skip again: false
	// after two deliveries, may skip: true
	// violations: 0
}
