// Package core is the public façade of the reproduction: it couples
// topology generation, the connection-level simulator and the analytic
// Markov models into one pipeline, so that a caller can reproduce any of
// the paper's data points with a few lines:
//
//	sys, _ := core.NewSystem(core.Options{Seed: 1, InitialConns: 3000})
//	ev, _ := sys.Evaluate()
//	fmt.Println(ev.Sim.AvgBandwidth, ev.PaperModel.MeanBandwidth)
//
// It also exposes the single-value QoS baselines (fixed-minimum and
// fixed-maximum requests) used to quantify the paper's motivating claim
// that elastic QoS "can accept substantially more DR-connections and
// improve the utilization of resources".
package core

import (
	"fmt"
	"io"
	"math"

	"drqos/internal/manager"
	"drqos/internal/markov"
	"drqos/internal/qos"
	"drqos/internal/rng"
	"drqos/internal/sim"
	"drqos/internal/topology"
)

// Paper-matched Waxman parameters: α is quoted in §4; β is calibrated so a
// 100-node instance has ≈177 physical links = 354 directed edges, matching
// the paper's reported edge count, average degree 3.48 and diameter ≈8
// (see DESIGN.md on the GT-ITM substitution).
const (
	PaperAlpha = 0.33
	PaperBeta  = 0.1176
)

// PaperCapacity is the per-direction link bandwidth used throughout §4.
const PaperCapacity qos.Kbps = 10000

// PaperRates returns the §4 event rates: λ = μ = 0.001, γ = 0.
func PaperRates() (lambda, mu, gamma float64) { return 0.001, 0.001, 0 }

// TopologyKind selects the generative model.
type TopologyKind int

// Topology kinds: Waxman random graphs ("Random" in Table 1) and
// transit-stub internetworks ("Tier").
const (
	TopologyWaxman TopologyKind = iota + 1
	TopologyTransitStub
)

// Options parameterizes a System. The zero value of most fields selects the
// paper's setting.
type Options struct {
	// Seed drives topology generation and the simulation.
	Seed uint64
	// Kind selects the topology model (default Waxman).
	Kind TopologyKind
	// Nodes is the network size (default 100).
	Nodes int
	// Alpha/Beta are the Waxman parameters (default paper-matched).
	Alpha, Beta float64
	// ConstantDensity grows the Waxman domain with √(Nodes/100) at a fixed
	// distance-decay scale, keeping node density and per-node degree
	// constant as the network grows (Figure 3's regime: edge count grows
	// ~linearly, not quadratically, with nodes).
	ConstantDensity bool
	// Capacity is the per-direction link bandwidth (default 10 Mb/s).
	Capacity qos.Kbps
	// Spec is the elastic QoS of every connection (default 100..500/Δ50).
	Spec qos.ElasticSpec
	// Lambda/Mu/Gamma are the event rates (default 0.001/0.001/0).
	Lambda, Mu, Gamma float64
	// RepairRate is the link repair rate when Gamma > 0 (default 0.01).
	RepairRate float64
	// Policy distributes extras (default coefficient scheme).
	Policy qos.Policy
	// RequireBackup rejects unprotectable connections (default true, the
	// paper's dependability QoS).
	NoRequireBackup bool
	// DisableBackupMultiplexing turns off spare sharing between backups
	// (the §2.1.2 overbooking ablation).
	DisableBackupMultiplexing bool
	// SequentialRouting replaces bounded flooding with the §2.1.1
	// sequential shortest-route search (checked one by one).
	SequentialRouting bool
	// ReactiveRecovery disables backups and re-establishes failed
	// connections from scratch (the restoration baseline of §2.1.2).
	ReactiveRecovery bool
	// InitialConns / ChurnEvents / WarmupEvents shape the run (defaults
	// 3000 / 2000 / 400).
	InitialConns, ChurnEvents, WarmupEvents int
	// Trace, when non-nil, receives the simulator's JSONL event trace.
	Trace io.Writer
}

func (o Options) withDefaults() Options {
	if o.Kind == 0 {
		o.Kind = TopologyWaxman
	}
	if o.Nodes == 0 {
		o.Nodes = 100
	}
	if o.Alpha == 0 {
		o.Alpha = PaperAlpha
	}
	if o.Beta == 0 {
		o.Beta = PaperBeta
	}
	if o.Capacity == 0 {
		o.Capacity = PaperCapacity
	}
	if o.Spec == (qos.ElasticSpec{}) {
		o.Spec = qos.DefaultSpec()
	}
	if o.Lambda == 0 && o.Mu == 0 {
		// Default λ and μ only: a caller-specified γ must survive.
		l, m, _ := PaperRates()
		o.Lambda, o.Mu = l, m
	}
	if o.Gamma > 0 && o.RepairRate == 0 {
		o.RepairRate = 0.01
	}
	if o.InitialConns == 0 {
		o.InitialConns = 3000
	}
	if o.ChurnEvents == 0 {
		o.ChurnEvents = 2000
	}
	if o.WarmupEvents == 0 {
		o.WarmupEvents = 400
	}
	return o
}

// routeSelection maps the boolean option onto the manager enum.
func (o Options) routeSelection() manager.RouteSelection {
	if o.SequentialRouting {
		return manager.RouteSequential
	}
	return manager.RouteFlood
}

// System is a ready-to-run reproduction pipeline.
type System struct {
	opts    Options
	graph   *topology.Graph
	metrics topology.Metrics
}

// NewSystem generates the topology and prepares a System.
func NewSystem(opts Options) (*System, error) {
	o := opts.withDefaults()
	src := rng.New(o.Seed)
	var g *topology.Graph
	var err error
	switch o.Kind {
	case TopologyWaxman:
		wc := topology.WaxmanConfig{
			Nodes: o.Nodes, Alpha: o.Alpha, Beta: o.Beta, EnsureConnected: true,
		}
		if o.ConstantDensity {
			wc.Side = math.Sqrt(float64(o.Nodes) / 100)
			wc.FixedDecay = true
		}
		g, err = topology.Waxman(wc, src)
	case TopologyTransitStub:
		cfg := topology.DefaultTransitStub()
		g, err = topology.TransitStub(cfg, src)
	default:
		return nil, fmt.Errorf("core: unknown topology kind %d", o.Kind)
	}
	if err != nil {
		return nil, err
	}
	return &System{opts: o, graph: g, metrics: topology.ComputeMetrics(g)}, nil
}

// Graph returns the generated topology.
func (s *System) Graph() *topology.Graph { return s.graph }

// Metrics returns the structural summary of the topology.
func (s *System) Metrics() topology.Metrics { return s.metrics }

// Options returns the resolved options.
func (s *System) Options() Options { return s.opts }

// ModelResult is one analytic model's output.
type ModelResult struct {
	// MeanBandwidth is E[B] in Kb/s.
	MeanBandwidth float64
	// Pi is the stationary distribution over bandwidth states.
	Pi []float64
}

// Evaluation bundles one simulation run with every analytic estimate.
type Evaluation struct {
	// Sim is the detailed simulation result (ground truth).
	Sim *sim.Result
	// PaperModel solves the §3.2 chain exactly as published: triangular
	// A/B/T, rates Pf·A·(λ+γ) down and Ps·B·λ + Pf·T·μ up.
	PaperModel ModelResult
	// RestartModel adds the finite-lifetime extension (birth distribution
	// + death rate μ/N̄); see markov.Chain.WithRestart.
	RestartModel ModelResult
	// GeneralModel additionally keeps the jump directions the triangular
	// structure discards (markov.BuildGeneral).
	GeneralModel ModelResult
	// IdealBandwidth is the paper's reference line BW·Edges/(NChan·hops),
	// unclamped, with Edges counting directed edges as in Figure 2.
	IdealBandwidth float64
}

// Evaluate runs the simulation and solves all three analytic models.
func (s *System) Evaluate() (*Evaluation, error) {
	o := s.opts
	simCfg := sim.Config{
		Seed: o.Seed,
		Spec: o.Spec,
		Manager: manager.Config{
			Capacity:                  o.Capacity,
			Policy:                    o.Policy,
			RequireBackup:             !o.NoRequireBackup && !o.ReactiveRecovery,
			DisableBackupMultiplexing: o.DisableBackupMultiplexing,
			RouteSelection:            o.routeSelection(),
			ReactiveRecovery:          o.ReactiveRecovery,
		},
		Lambda:       o.Lambda,
		Mu:           o.Mu,
		Gamma:        o.Gamma,
		RepairRate:   o.RepairRate,
		InitialConns: o.InitialConns,
		ChurnEvents:  o.ChurnEvents,
		WarmupEvents: o.WarmupEvents,
		Trace:        o.Trace,
	}
	run, err := sim.New(s.graph, simCfg)
	if err != nil {
		return nil, err
	}
	res, err := run.Run()
	if err != nil {
		return nil, err
	}
	ev := &Evaluation{Sim: res}
	ev.IdealBandwidth = sim.IdealAverageBandwidthUnclamped(
		o.Capacity, s.graph.NumDirLinks(), res.AliveAtEnd, res.AvgHops)

	delta := 0.0
	if res.AvgAlive > 0 {
		delta = res.EffectiveMu / res.AvgAlive
	}

	paper, err := solveModel(func() (*markov.Chain, error) {
		return markov.Build(res.Params)
	}, res.BirthDist, 0, o.Spec)
	if err != nil {
		return nil, fmt.Errorf("core: paper model: %w", err)
	}
	ev.PaperModel = paper

	restart, err := solveModel(func() (*markov.Chain, error) {
		return markov.Build(res.Params)
	}, res.BirthDist, delta, o.Spec)
	if err != nil {
		return nil, fmt.Errorf("core: restart model: %w", err)
	}
	ev.RestartModel = restart

	general, err := solveModel(func() (*markov.Chain, error) {
		return markov.BuildGeneral(o.Spec.States(), res.GeneralTerms)
	}, res.BirthDist, delta, o.Spec)
	if err != nil {
		return nil, fmt.Errorf("core: general model: %w", err)
	}
	ev.GeneralModel = general
	return ev, nil
}

// solveModel builds a chain, optionally applies the restart extension, and
// returns the mean bandwidth under its stationary distribution.
func solveModel(build func() (*markov.Chain, error), birth []float64, delta float64, spec qos.ElasticSpec) (ModelResult, error) {
	chain, err := build()
	if err != nil {
		return ModelResult{}, err
	}
	if delta > 0 {
		chain, err = chain.WithRestart(birth, delta)
		if err != nil {
			return ModelResult{}, err
		}
	}
	pi, err := chain.SteadyStateFrom(birth)
	if err != nil {
		return ModelResult{}, err
	}
	mean, err := markov.MeanBandwidth(pi, spec)
	if err != nil {
		return ModelResult{}, err
	}
	return ModelResult{MeanBandwidth: mean, Pi: pi}, nil
}

// FixedSpec returns a single-value QoS specification (Min = Max = bw), the
// baseline model the paper contrasts elastic QoS against (§1, §2.2).
func FixedSpec(bw qos.Kbps) qos.ElasticSpec {
	return qos.ElasticSpec{Min: bw, Max: bw, Increment: bw, Utility: 1}
}

// BaselineComparison contrasts elastic QoS against the single-value
// baselines on identical topologies and workloads (Ablation A in
// DESIGN.md).
type BaselineComparison struct {
	// Elastic / FixedMin / FixedMax are the per-scheme outcomes.
	Elastic, FixedMin, FixedMax SchemeOutcome
}

// SchemeOutcome summarizes one admission scheme's run.
type SchemeOutcome struct {
	// Scheme names the QoS model ("elastic", "fixed-min", "fixed-max").
	Scheme string
	// AcceptanceRatio is established / offered.
	AcceptanceRatio float64
	// AvgBandwidth is the measured average reserved bandwidth (Kb/s).
	AvgBandwidth float64
	// AliveAtEnd is the final population.
	AliveAtEnd int
	// UtilizationProxy is AliveAtEnd · AvgBandwidth, a throughput-style
	// comparison number across schemes.
	UtilizationProxy float64
}

// CompareBaselines runs the same workload under elastic QoS, fixed-minimum
// and fixed-maximum single-value QoS. All three use identical topologies
// and arrival sequences (same seed).
func (s *System) CompareBaselines() (*BaselineComparison, error) {
	o := s.opts
	runOne := func(scheme string, spec qos.ElasticSpec) (SchemeOutcome, error) {
		cfg := sim.Config{
			Seed: o.Seed,
			Spec: spec,
			Manager: manager.Config{
				Capacity:                  o.Capacity,
				Policy:                    o.Policy,
				RequireBackup:             !o.NoRequireBackup && !o.ReactiveRecovery,
				DisableBackupMultiplexing: o.DisableBackupMultiplexing,
				RouteSelection:            o.routeSelection(),
				ReactiveRecovery:          o.ReactiveRecovery,
			},
			Lambda:       o.Lambda,
			Mu:           o.Mu,
			Gamma:        o.Gamma,
			RepairRate:   o.RepairRate,
			InitialConns: o.InitialConns,
			ChurnEvents:  o.ChurnEvents,
			WarmupEvents: o.WarmupEvents,
		}
		run, err := sim.New(s.graph, cfg)
		if err != nil {
			return SchemeOutcome{}, err
		}
		res, err := run.Run()
		if err != nil {
			return SchemeOutcome{}, err
		}
		ratio := 0.0
		if res.Offered > 0 {
			ratio = float64(res.Established) / float64(res.Offered)
		}
		return SchemeOutcome{
			Scheme:           scheme,
			AcceptanceRatio:  ratio,
			AvgBandwidth:     res.AvgBandwidth,
			AliveAtEnd:       res.AliveAtEnd,
			UtilizationProxy: float64(res.AliveAtEnd) * res.AvgBandwidth,
		}, nil
	}
	elastic, err := runOne("elastic", o.Spec)
	if err != nil {
		return nil, err
	}
	fixedMin, err := runOne("fixed-min", FixedSpec(o.Spec.Min))
	if err != nil {
		return nil, err
	}
	fixedMax, err := runOne("fixed-max", FixedSpec(o.Spec.Max))
	if err != nil {
		return nil, err
	}
	return &BaselineComparison{Elastic: elastic, FixedMin: fixedMin, FixedMax: fixedMax}, nil
}
