package core

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"

	"drqos/internal/qos"
)

// smallOpts keeps unit-test runs fast: a light load on the default
// 100-node paper topology.
func smallOpts(seed uint64) Options {
	return Options{
		Seed:         seed,
		InitialConns: 300,
		ChurnEvents:  400,
		WarmupEvents: 100,
	}
}

func TestNewSystemDefaults(t *testing.T) {
	sys, err := NewSystem(Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	o := sys.Options()
	if o.Nodes != 100 || o.Alpha != PaperAlpha || o.Beta != PaperBeta {
		t.Fatalf("defaults: %+v", o)
	}
	if o.Capacity != PaperCapacity {
		t.Fatalf("capacity %v", o.Capacity)
	}
	m := sys.Metrics()
	if m.Nodes != 100 || !m.Connected {
		t.Fatalf("metrics %+v", m)
	}
	// Paper-matched scale: ≈177 physical links (354 directed).
	if m.Edges < 140 || m.Edges > 220 {
		t.Fatalf("edges = %d, expected ≈177", m.Edges)
	}
}

func TestNewSystemTransitStub(t *testing.T) {
	sys, err := NewSystem(Options{Seed: 2, Kind: TopologyTransitStub})
	if err != nil {
		t.Fatal(err)
	}
	if sys.Metrics().Nodes != 100 {
		t.Fatalf("tier nodes = %d", sys.Metrics().Nodes)
	}
}

func TestNewSystemUnknownKind(t *testing.T) {
	if _, err := NewSystem(Options{Seed: 1, Kind: TopologyKind(99)}); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestEvaluatePipeline(t *testing.T) {
	sys, err := NewSystem(smallOpts(7))
	if err != nil {
		t.Fatal(err)
	}
	ev, err := sys.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	if ev.Sim.Established == 0 {
		t.Fatal("nothing simulated")
	}
	for name, m := range map[string]ModelResult{
		"paper":   ev.PaperModel,
		"restart": ev.RestartModel,
		"general": ev.GeneralModel,
	} {
		if m.MeanBandwidth < 100 || m.MeanBandwidth > 500 {
			t.Fatalf("%s mean %v outside elastic range", name, m.MeanBandwidth)
		}
		var sum float64
		for _, p := range m.Pi {
			if p < -1e-12 {
				t.Fatalf("%s has negative probability", name)
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("%s pi sums to %v", name, sum)
		}
	}
	// At this light load everything should sit near Bmax and all models
	// should agree with the simulation within a few percent.
	if rel := math.Abs(ev.RestartModel.MeanBandwidth-ev.Sim.AvgBandwidth) / ev.Sim.AvgBandwidth; rel > 0.1 {
		t.Fatalf("restart model off by %v (sim %v, model %v)",
			rel, ev.Sim.AvgBandwidth, ev.RestartModel.MeanBandwidth)
	}
	if ev.IdealBandwidth <= 0 {
		t.Fatalf("ideal = %v", ev.IdealBandwidth)
	}
}

func TestEvaluateDeterministic(t *testing.T) {
	run := func() *Evaluation {
		sys, err := NewSystem(smallOpts(11))
		if err != nil {
			t.Fatal(err)
		}
		ev, err := sys.Evaluate()
		if err != nil {
			t.Fatal(err)
		}
		return ev
	}
	a, b := run(), run()
	if a.Sim.AvgBandwidth != b.Sim.AvgBandwidth ||
		a.PaperModel.MeanBandwidth != b.PaperModel.MeanBandwidth ||
		a.RestartModel.MeanBandwidth != b.RestartModel.MeanBandwidth {
		t.Fatal("Evaluate is nondeterministic")
	}
}

func TestFixedSpec(t *testing.T) {
	s := FixedSpec(100)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.States() != 1 {
		t.Fatalf("states = %d", s.States())
	}
	if s.Bandwidth(0) != 100 {
		t.Fatalf("bw = %v", s.Bandwidth(0))
	}
}

func TestCompareBaselines(t *testing.T) {
	opts := smallOpts(13)
	opts.InitialConns = 2500 // load high enough that fixed-max rejects
	sys, err := NewSystem(opts)
	if err != nil {
		t.Fatal(err)
	}
	cmp, err := sys.CompareBaselines()
	if err != nil {
		t.Fatal(err)
	}
	// The paper's motivating claims (§1):
	// 1. Fixed-max requests get rejected far more often.
	if cmp.FixedMax.AcceptanceRatio >= cmp.Elastic.AcceptanceRatio {
		t.Fatalf("fixed-max acceptance %v should be below elastic %v",
			cmp.FixedMax.AcceptanceRatio, cmp.Elastic.AcceptanceRatio)
	}
	// 2. Fixed-min leaves utilization on the table: its average bandwidth
	// is pinned at the minimum while elastic grows beyond it.
	if math.Abs(cmp.FixedMin.AvgBandwidth-100) > 1e-6 {
		t.Fatalf("fixed-min avg bandwidth %v, want Bmin", cmp.FixedMin.AvgBandwidth)
	}
	if cmp.Elastic.AvgBandwidth <= cmp.FixedMin.AvgBandwidth {
		t.Fatalf("elastic %v should beat fixed-min %v",
			cmp.Elastic.AvgBandwidth, cmp.FixedMin.AvgBandwidth)
	}
	// 3. Elastic admits as many connections as fixed-min (same minima).
	if cmp.Elastic.AcceptanceRatio < 0.95*cmp.FixedMin.AcceptanceRatio {
		t.Fatalf("elastic acceptance %v far below fixed-min %v",
			cmp.Elastic.AcceptanceRatio, cmp.FixedMin.AcceptanceRatio)
	}
	if cmp.Elastic.Scheme != "elastic" || cmp.FixedMin.Scheme != "fixed-min" || cmp.FixedMax.Scheme != "fixed-max" {
		t.Fatal("scheme labels wrong")
	}
}

func TestPaperRates(t *testing.T) {
	l, m, g := PaperRates()
	if l != 0.001 || m != 0.001 || g != 0 {
		t.Fatalf("rates %v %v %v", l, m, g)
	}
}

func TestEvaluateWithFailures(t *testing.T) {
	opts := smallOpts(17)
	opts.Gamma = 0.0005
	sys, err := NewSystem(opts)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := sys.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	if ev.Sim.Failures == 0 {
		t.Fatal("no failures with gamma > 0")
	}
	if opts.withDefaults().RepairRate != 0.01 {
		t.Fatal("repair default not applied")
	}
	_ = qos.DefaultSpec()
}

func TestTracePlumbing(t *testing.T) {
	var buf bytes.Buffer
	opts := smallOpts(19)
	opts.InitialConns = 50
	opts.ChurnEvents = 60
	opts.WarmupEvents = 10
	opts.Trace = &buf
	sys, err := NewSystem(opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Evaluate(); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("trace writer received nothing")
	}
	// Every line is valid JSON.
	for i, line := range bytes.Split(bytes.TrimSpace(buf.Bytes()), []byte("\n")) {
		var v map[string]interface{}
		if err := json.Unmarshal(line, &v); err != nil {
			t.Fatalf("trace line %d: %v", i, err)
		}
	}
}
