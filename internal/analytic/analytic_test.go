package analytic

import (
	"math"
	"testing"
	"testing/quick"

	"drqos/internal/manager"
	"drqos/internal/qos"
	"drqos/internal/rng"
	"drqos/internal/sim"
	"drqos/internal/topology"
)

func TestValidation(t *testing.T) {
	if _, err := Pf(0, 3); err == nil {
		t.Fatal("zero links accepted")
	}
	if _, err := Pf(100, 0); err == nil {
		t.Fatal("zero hops accepted")
	}
	if _, err := Pf(100, 200); err == nil {
		t.Fatal("hops beyond links accepted")
	}
	if _, err := Ps(100, 3, -1); err == nil {
		t.Fatal("negative channels accepted")
	}
	if _, err := CoveredFraction(100, 3, -1); err == nil {
		t.Fatal("negative routes accepted")
	}
}

func TestNoOverlapExactSmallCase(t *testing.T) {
	// L=4 links, h=1: two single-link routes collide with prob 1/4.
	p, err := NoOverlapProb(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-0.75) > 1e-12 {
		t.Fatalf("no-overlap = %v, want 0.75", p)
	}
	// L=4, h=2: C(2,2)/C(4,2) = 1/6 chance of no overlap.
	p, err = NoOverlapProb(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-1.0/6.0) > 1e-9 {
		t.Fatalf("no-overlap = %v, want 1/6", p)
	}
	// Routes longer than half the links must always collide.
	p, err = NoOverlapProb(4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if p != 0 {
		t.Fatalf("no-overlap = %v, want 0", p)
	}
}

func TestPfFirstOrderAgreement(t *testing.T) {
	// For h² ≪ L the exact expression approaches h²/L.
	exact, err := Pf(10000, 3)
	if err != nil {
		t.Fatal(err)
	}
	approx := IdealPfSmallRoute(10000, 3)
	if math.Abs(exact-approx)/approx > 0.05 {
		t.Fatalf("exact %v vs first-order %v", exact, approx)
	}
}

func TestMonotonicity(t *testing.T) {
	// Pf grows with hops, shrinks with links.
	p1, _ := Pf(354, 3)
	p2, _ := Pf(354, 5)
	if p2 <= p1 {
		t.Fatalf("Pf not increasing in hops: %v vs %v", p1, p2)
	}
	p3, _ := Pf(1000, 3)
	if p3 >= p1 {
		t.Fatalf("Pf not decreasing in links: %v vs %v", p1, p3)
	}
	// Ps grows with population.
	s1, _ := Ps(354, 3.6, 500)
	s2, _ := Ps(354, 3.6, 3000)
	if s2 <= s1 {
		t.Fatalf("Ps not increasing in channels: %v vs %v", s1, s2)
	}
}

func TestQuickProbabilitiesInRange(t *testing.T) {
	f := func(linksRaw uint16, hopsRaw, chanRaw uint8) bool {
		links := int(linksRaw%2000) + 10
		hops := 1 + float64(hopsRaw%8)
		channels := int(chanRaw) * 20
		pf, err := Pf(links, hops)
		if err != nil {
			return true // rejected domain is fine
		}
		ps, err := Ps(links, hops, channels)
		if err != nil {
			return false
		}
		return pf >= 0 && pf <= 1 && ps >= 0 && ps <= 1 && pf+ps <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestAgainstMeasured compares the mean-field estimates with the
// simulator's measured Pf and Ps on the paper-matched topology. The point
// of this test is calibrated honesty: Pf is predicted well (within 40%),
// Ps only to the right order of magnitude — the residual being the link
// popularity heterogeneity the paper names.
func TestAgainstMeasured(t *testing.T) {
	g, err := topology.Waxman(topology.WaxmanConfig{
		Nodes: 100, Alpha: 0.33, Beta: 0.1176, EnsureConnected: true,
	}, rng.New(61))
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.Config{
		Seed: 62,
		Spec: qos.DefaultSpec(),
		Manager: manager.Config{
			Capacity:      10000,
			RequireBackup: true,
		},
		Lambda:       0.001,
		Mu:           0.001,
		InitialConns: 1000,
		ChurnEvents:  800,
		WarmupEvents: 200,
	}
	s, err := sim.New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	pfPred, err := Pf(g.NumDirLinks(), res.AvgHops)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(pfPred-res.Params.Pf) / res.Params.Pf; rel > 0.4 {
		t.Fatalf("Pf prediction %v vs measured %v (rel %v)", pfPred, res.Params.Pf, rel)
	}
	psPred, err := Ps(g.NumDirLinks(), res.AvgHops, res.AliveAtEnd)
	if err != nil {
		t.Fatal(err)
	}
	ratio := psPred / res.Params.Ps
	if ratio < 0.2 || ratio > 5 {
		t.Fatalf("Ps prediction %v vs measured %v (ratio %v)", psPred, res.Params.Ps, ratio)
	}
}
