// Package analytic provides closed-form mean-field approximations for the
// topology-dependent model parameters the paper obtains from simulation
// (§3.3). The paper argues that on irregular networks these probabilities
// are "almost impossible to parameterize analytically"; the uniform-route
// approximation below shows how far simple combinatorics actually get on
// Waxman-class random graphs (quite far for Pf; order-of-magnitude for Ps —
// see the comparison tests), and where the residual error comes from
// (non-uniform link popularity: leaf links carry fewer routes than core
// links, the very heterogeneity the paper names).
//
// Model: a route is an unordered set of h directed links drawn uniformly
// from the L directed links of the network, independently per channel.
package analytic

import (
	"fmt"
	"math"
)

// validate checks the common parameter domain.
func validate(directedLinks int, avgHops float64) error {
	if directedLinks < 1 {
		return fmt.Errorf("analytic: non-positive link count %d", directedLinks)
	}
	if avgHops <= 0 || avgHops > float64(directedLinks) {
		return fmt.Errorf("analytic: avg hops %v outside (0,%d]", avgHops, directedLinks)
	}
	return nil
}

// NoOverlapProb returns the probability that two independent uniform
// routes of h directed links (out of L) share no link:
//
//	Π_{i=0}^{h-1} (L−h−i)/(L−i)
//
// evaluated continuously in h via lgamma so fractional average hop counts
// work.
func NoOverlapProb(directedLinks int, avgHops float64) (float64, error) {
	if err := validate(directedLinks, avgHops); err != nil {
		return 0, err
	}
	l := float64(directedLinks)
	h := avgHops
	if 2*h > l {
		return 0, nil // routes longer than half the network always collide
	}
	// Π (L−h−i)/(L−i) for i in [0,h) = Γ(L−h+1)Γ(L−h+1)/(Γ(L−2h+1)Γ(L+1)).
	lg := func(x float64) float64 {
		v, _ := math.Lgamma(x)
		return v
	}
	logP := 2*lg(l-h+1) - lg(l-2*h+1) - lg(l+1)
	return math.Exp(logP), nil
}

// Pf estimates the paper's link-sharing probability: the chance that an
// existing channel shares at least one directed link with a newly arrived
// channel.
func Pf(directedLinks int, avgHops float64) (float64, error) {
	p, err := NoOverlapProb(directedLinks, avgHops)
	if err != nil {
		return 0, err
	}
	return 1 - p, nil
}

// CoveredFraction estimates the fraction of directed links touched by n
// independent uniform routes of h links each: 1 − (1 − h/L)^n.
func CoveredFraction(directedLinks int, avgHops float64, n float64) (float64, error) {
	if err := validate(directedLinks, avgHops); err != nil {
		return 0, err
	}
	if n < 0 {
		return 0, fmt.Errorf("analytic: negative route count %v", n)
	}
	perRoute := avgHops / float64(directedLinks)
	if perRoute > 1 {
		perRoute = 1
	}
	return 1 - math.Pow(1-perRoute, n), nil
}

// Ps estimates the paper's indirect-chaining probability: the chance that
// an existing channel avoids the new route but touches the union of the
// directly chained channels' routes. channels is the alive population N.
//
// Derivation: the expected directly-chained population is D = Pf·N; their
// routes cover a fraction c of the network's links; a channel disjoint
// from the new route is indirectly chained if any of its ~h links falls in
// that coverage: Ps ≈ (1 − Pf) · (1 − (1 − c)^h).
func Ps(directedLinks int, avgHops float64, channels int) (float64, error) {
	if channels < 0 {
		return 0, fmt.Errorf("analytic: negative channel count %d", channels)
	}
	pf, err := Pf(directedLinks, avgHops)
	if err != nil {
		return 0, err
	}
	direct := pf * float64(channels)
	c, err := CoveredFraction(directedLinks, avgHops, direct)
	if err != nil {
		return 0, err
	}
	touch := 1 - math.Pow(1-c, avgHops)
	return (1 - pf) * touch, nil
}

// IdealPfSmallRoute is the first-order approximation h²/L, handy for
// back-of-the-envelope sizing (Pf ≈ hops² / directed links).
func IdealPfSmallRoute(directedLinks int, avgHops float64) float64 {
	return avgHops * avgHops / float64(directedLinks)
}
