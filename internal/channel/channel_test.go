package channel

import (
	"errors"
	"testing"

	"drqos/internal/qos"
	"drqos/internal/routing"
	"drqos/internal/topology"
)

func path(nodes ...topology.NodeID) routing.Path {
	links := make([]topology.LinkID, 0, len(nodes)-1)
	for i := 0; i < len(nodes)-1; i++ {
		links = append(links, topology.LinkID(int(nodes[i])*100+int(nodes[i+1])))
	}
	return routing.Path{Nodes: nodes, Links: links}
}

func newConn(t *testing.T) *Conn {
	t.Helper()
	c := New(1, 0, 2, qos.DefaultSpec(), path(0, 1, 2))
	if c.State() != StateActive {
		t.Fatalf("new conn state %v", c.State())
	}
	return c
}

func TestNewConnDefaults(t *testing.T) {
	c := newConn(t)
	if c.Level != 0 {
		t.Fatalf("level = %d, want 0 (minimum)", c.Level)
	}
	if c.Bandwidth() != 100 {
		t.Fatalf("bandwidth = %v, want Bmin", c.Bandwidth())
	}
	if c.HasBackup {
		t.Fatal("backup attached at birth")
	}
	if !c.Alive() {
		t.Fatal("not alive")
	}
}

func TestAttachDetachBackup(t *testing.T) {
	c := newConn(t)
	b := path(0, 3, 2)
	if err := c.AttachBackup(b, 0); err != nil {
		t.Fatal(err)
	}
	if !c.HasBackup || c.SharedWithPrimary != 0 {
		t.Fatal("attach did not register")
	}
	if err := c.AttachBackup(b, 0); !errors.Is(err, ErrBadTransition) {
		t.Fatalf("double attach: %v", err)
	}
	if err := c.DetachBackup(); err != nil {
		t.Fatal(err)
	}
	if c.HasBackup {
		t.Fatal("detach did not clear")
	}
	if err := c.DetachBackup(); !errors.Is(err, ErrBadTransition) {
		t.Fatalf("double detach: %v", err)
	}
}

func TestFailOver(t *testing.T) {
	c := newConn(t)
	backup := path(0, 3, 4, 2)
	if err := c.AttachBackup(backup, 0); err != nil {
		t.Fatal(err)
	}
	c.Level = 4 // pretend the primary had grown
	if err := c.FailOver(); err != nil {
		t.Fatal(err)
	}
	if c.State() != StateFailedOver {
		t.Fatalf("state = %v", c.State())
	}
	if !c.Primary.Equal(backup) {
		t.Fatal("primary is not the old backup")
	}
	if c.HasBackup {
		t.Fatal("backup still attached after failover")
	}
	if c.Level != 0 {
		t.Fatalf("level = %d, activated backups run at minimum", c.Level)
	}
	if !c.Alive() {
		t.Fatal("failed-over connection should be alive")
	}
}

func TestFailOverWithoutBackup(t *testing.T) {
	c := newConn(t)
	if err := c.FailOver(); !errors.Is(err, ErrBadTransition) {
		t.Fatalf("err = %v", err)
	}
}

func TestFailOverTwice(t *testing.T) {
	c := newConn(t)
	if err := c.AttachBackup(path(0, 3, 2), 0); err != nil {
		t.Fatal(err)
	}
	if err := c.FailOver(); err != nil {
		t.Fatal(err)
	}
	// A second failover without a fresh backup is illegal...
	if err := c.FailOver(); !errors.Is(err, ErrBadTransition) {
		t.Fatalf("second failover: %v", err)
	}
	// ...but legal once the connection has been re-protected.
	if err := c.AttachBackup(path(0, 5, 2), 0); err != nil {
		t.Fatal(err)
	}
	if err := c.FailOver(); err != nil {
		t.Fatalf("re-protected failover: %v", err)
	}
	if c.State() != StateFailedOver {
		t.Fatalf("state = %v", c.State())
	}
}

func TestCloseAndDrop(t *testing.T) {
	c := newConn(t)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if c.State() != StateClosed || c.Alive() {
		t.Fatal("close failed")
	}
	if err := c.Close(); !errors.Is(err, ErrBadTransition) {
		t.Fatalf("double close: %v", err)
	}
	if err := c.Drop(); !errors.Is(err, ErrBadTransition) {
		t.Fatalf("drop after close: %v", err)
	}

	d := newConn(t)
	if err := d.Drop(); err != nil {
		t.Fatal(err)
	}
	if d.State() != StateDropped || d.Alive() {
		t.Fatal("drop failed")
	}
}

func TestUsesLink(t *testing.T) {
	c := newConn(t)
	if !c.UsesLink(c.Primary.Links[0]) {
		t.Fatal("UsesLink false negative")
	}
	if c.UsesLink(topology.LinkID(99999)) {
		t.Fatal("UsesLink false positive")
	}
	if c.BackupUsesLink(topology.LinkID(1)) {
		t.Fatal("BackupUsesLink without backup")
	}
	b := path(0, 3, 2)
	if err := c.AttachBackup(b, 0); err != nil {
		t.Fatal(err)
	}
	if !c.BackupUsesLink(b.Links[0]) {
		t.Fatal("BackupUsesLink false negative")
	}
}

func TestSharesLinkWith(t *testing.T) {
	a := New(1, 0, 2, qos.DefaultSpec(), path(0, 1, 2))
	b := New(2, 1, 2, qos.DefaultSpec(), path(1, 2))
	c := New(3, 5, 6, qos.DefaultSpec(), path(5, 6))
	if !a.SharesLinkWith(b) {
		// a uses link 1->2 encoded as 102, b uses 102 as well.
		t.Fatal("shared link not detected")
	}
	if a.SharesLinkWith(c) {
		t.Fatal("phantom shared link")
	}
}

func TestStateString(t *testing.T) {
	cases := map[State]string{
		StateActive:     "active",
		StateFailedOver: "failed-over",
		StateClosed:     "closed",
		StateDropped:    "dropped",
		State(99):       "state(99)",
	}
	for s, want := range cases {
		if s.String() != want {
			t.Fatalf("%d.String() = %q, want %q", int(s), s.String(), want)
		}
	}
}
