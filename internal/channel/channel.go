// Package channel defines the dependable real-time (DR-) connection
// abstraction from §2.1: a unidirectional real-time channel pair consisting
// of one primary channel carrying traffic and one passive, (maximally)
// link-disjoint backup channel reserved for fast failure recovery [1].
package channel

import (
	"errors"
	"fmt"

	"drqos/internal/qos"
	"drqos/internal/routing"
	"drqos/internal/topology"
)

// ConnID identifies a DR-connection for its lifetime. IDs are assigned
// densely by the network manager in establishment order.
type ConnID int64

// State is the lifecycle state of a DR-connection.
type State int

// DR-connection lifecycle: established connections are Active; when the
// primary's route fails, the backup is activated and the connection becomes
// FailedOver (running on what used to be the backup); Closed connections
// have released all resources. Dropped marks connections that lost their
// primary while having no usable backup.
const (
	StateActive State = iota + 1
	StateFailedOver
	StateClosed
	StateDropped
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case StateActive:
		return "active"
	case StateFailedOver:
		return "failed-over"
	case StateClosed:
		return "closed"
	case StateDropped:
		return "dropped"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// ErrBadTransition reports an illegal lifecycle transition.
var ErrBadTransition = errors.New("channel: illegal state transition")

// Conn is one DR-connection. All mutation goes through the network manager;
// the struct itself only guards its lifecycle.
type Conn struct {
	ID   ConnID
	Src  topology.NodeID
	Dst  topology.NodeID
	Spec qos.ElasticSpec

	// Primary is the route currently carrying traffic. After failover it
	// is the activated ex-backup route.
	Primary routing.Path
	// Backup is the passive protection route; empty after failover if no
	// replacement backup could be found.
	Backup routing.Path
	// HasBackup reports whether Backup is currently established.
	HasBackup bool
	// SharedWithPrimary is the number of links the backup shares with the
	// primary (0 when totally link-disjoint; >0 when only maximal
	// disjointness was achievable, footnote 1).
	SharedWithPrimary int

	// Level is the current bandwidth state index: reserved bandwidth is
	// Spec.Bandwidth(Level) (§3.2's S_i).
	Level int

	state State
}

// New returns an Active connection at its minimum bandwidth level. The
// caller (the manager) has already validated spec and routes.
func New(id ConnID, src, dst topology.NodeID, spec qos.ElasticSpec, primary routing.Path) *Conn {
	return &Conn{
		ID:      id,
		Src:     src,
		Dst:     dst,
		Spec:    spec,
		Primary: primary,
		state:   StateActive,
	}
}

// RestoreConn rebuilds an alive connection from durable state (a journal
// snapshot): same shape as New but with the level and the Active/FailedOver
// distinction preserved. Backups are re-attached separately via
// AttachBackup, exactly as the manager does during normal operation.
func RestoreConn(id ConnID, src, dst topology.NodeID, spec qos.ElasticSpec, primary routing.Path, level int, failedOver bool) *Conn {
	st := StateActive
	if failedOver {
		st = StateFailedOver
	}
	return &Conn{
		ID:      id,
		Src:     src,
		Dst:     dst,
		Spec:    spec,
		Primary: primary,
		Level:   level,
		state:   st,
	}
}

// State returns the lifecycle state.
func (c *Conn) State() State { return c.state }

// Alive reports whether the connection still holds resources.
func (c *Conn) Alive() bool { return c.state == StateActive || c.state == StateFailedOver }

// Bandwidth returns the currently reserved bandwidth of the primary.
func (c *Conn) Bandwidth() qos.Kbps { return c.Spec.Bandwidth(c.Level) }

// FailOver switches the connection onto its backup route after a primary
// failure: the backup becomes the primary at the minimum level (§3.1 —
// backups are activated with only their minimum reservation). A connection
// that already failed over and was re-protected with a fresh backup may
// fail over again.
func (c *Conn) FailOver() error {
	if !c.Alive() {
		return fmt.Errorf("%w: FailOver from %v", ErrBadTransition, c.state)
	}
	if !c.HasBackup {
		return fmt.Errorf("%w: FailOver without a backup", ErrBadTransition)
	}
	c.Primary = c.Backup
	c.Backup = routing.Path{}
	c.HasBackup = false
	c.SharedWithPrimary = 0
	c.Level = 0
	c.state = StateFailedOver
	return nil
}

// Drop marks the connection as having lost service (no usable backup when
// its primary failed, or its backup failed after failover).
func (c *Conn) Drop() error {
	if !c.Alive() {
		return fmt.Errorf("%w: Drop from %v", ErrBadTransition, c.state)
	}
	c.state = StateDropped
	return nil
}

// Close marks normal termination.
func (c *Conn) Close() error {
	if !c.Alive() {
		return fmt.Errorf("%w: Close from %v", ErrBadTransition, c.state)
	}
	c.state = StateClosed
	return nil
}

// AttachBackup installs a (replacement) backup route.
func (c *Conn) AttachBackup(p routing.Path, sharedWithPrimary int) error {
	if !c.Alive() {
		return fmt.Errorf("%w: AttachBackup on %v connection", ErrBadTransition, c.state)
	}
	if c.HasBackup {
		return fmt.Errorf("%w: backup already attached", ErrBadTransition)
	}
	c.Backup = p
	c.HasBackup = true
	c.SharedWithPrimary = sharedWithPrimary
	return nil
}

// DetachBackup removes the backup route (e.g. when the backup's own route
// failed and must be re-established elsewhere).
func (c *Conn) DetachBackup() error {
	if !c.HasBackup {
		return fmt.Errorf("%w: no backup attached", ErrBadTransition)
	}
	c.Backup = routing.Path{}
	c.HasBackup = false
	c.SharedWithPrimary = 0
	return nil
}

// UsesLink reports whether the primary route traverses link l.
func (c *Conn) UsesLink(l topology.LinkID) bool {
	for _, pl := range c.Primary.Links {
		if pl == l {
			return true
		}
	}
	return false
}

// BackupUsesLink reports whether the backup route traverses link l.
func (c *Conn) BackupUsesLink(l topology.LinkID) bool {
	if !c.HasBackup {
		return false
	}
	for _, bl := range c.Backup.Links {
		if bl == l {
			return true
		}
	}
	return false
}

// SharesLinkWith reports whether the two connections' primary routes share
// at least one link — the paper's "directly chained" relation that drives
// the Pf probability.
func (c *Conn) SharesLinkWith(o *Conn) bool {
	return c.Primary.SharedLinks(o.Primary) > 0
}
