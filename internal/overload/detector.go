package overload

import (
	"sync"
	"time"
)

// DetectorConfig tunes the sustained-delay detector, CoDel-style
// (Nichols & Jacobson, "Controlling Queue Delay", ACM Queue 2012): a queue
// is overloaded not when delay spikes — bursts are fine — but when delay
// stays above a target for a full interval without a single good sample.
type DetectorConfig struct {
	// Target is the acceptable standing queueing delay. Delays below it are
	// "good" samples and clear any pending episode. Zero selects the
	// default (100ms); negative disables the detector entirely.
	Target time.Duration
	// Interval is how long delay must stay above Target, with no good
	// sample, before the overloaded state latches (default 1s).
	Interval time.Duration
}

func (c DetectorConfig) withDefaults() DetectorConfig {
	if c.Target == 0 {
		c.Target = 100 * time.Millisecond
	}
	if c.Interval <= 0 {
		c.Interval = time.Second
	}
	return c
}

// Detector tracks a stream of queueing-delay observations and latches an
// "overloaded" flag once delay has exceeded the target for a sustained
// interval. A single below-target observation clears the flag — queue
// drained, service restored. It is safe for concurrent use: one goroutine
// observes (the actor loop), many read.
type Detector struct {
	cfg DetectorConfig
	now func() time.Time // injectable clock for tests

	mu          sync.Mutex
	firstAbove  time.Time // zero when the last sample was below target
	lastObserve time.Time
	overloaded  bool
	since       time.Time // when the current episode latched
	episodes    int64     // times the flag flipped on

	// predicted is the model-driven input: the forecast control plane
	// latches it when the solved steady-state distribution predicts
	// saturation, BEFORE queue delay builds up. It is a separate latch from
	// the reactive one — the idle self-clear in Overloaded never touches
	// it; only SetPredicted(false) (the next solve predicting headroom, or
	// the forecast going stale) releases it.
	predicted         bool
	predictedEpisodes int64
}

// NewDetector builds a detector; nowFn may be nil (defaults to time.Now).
func NewDetector(cfg DetectorConfig, nowFn func() time.Time) *Detector {
	if nowFn == nil {
		nowFn = time.Now
	}
	if cfg.Target >= 0 {
		cfg = cfg.withDefaults()
	}
	return &Detector{cfg: cfg, now: nowFn}
}

// Disabled reports whether the detector is configured off (Target < 0).
func (d *Detector) Disabled() bool { return d.cfg.Target < 0 }

// Config returns the effective (defaults-applied) configuration.
func (d *Detector) Config() DetectorConfig { return d.cfg }

// Observe feeds one queueing-delay sample and returns the overloaded state
// plus whether this sample flipped it.
func (d *Detector) Observe(delay time.Duration) (overloaded, changed bool) {
	if d.Disabled() {
		return false, false
	}
	now := d.now()
	d.mu.Lock()
	defer d.mu.Unlock()
	d.lastObserve = now
	if delay < d.cfg.Target {
		d.firstAbove = time.Time{}
		if d.overloaded {
			d.overloaded = false
			return false, true
		}
		return false, false
	}
	if d.firstAbove.IsZero() {
		d.firstAbove = now
	}
	if !d.overloaded && now.Sub(d.firstAbove) >= d.cfg.Interval {
		d.overloaded = true
		d.since = now
		d.episodes++
		return true, true
	}
	return d.overloaded, false
}

// Overloaded reports the latched state. queueDepth is the caller's current
// backlog: when the flag is latched but the queue has fully drained and no
// sample has arrived for a whole interval, the overload is over — there is
// simply no traffic left to observe it with — so the flag self-clears.
// Without this, a burst that ends in silence would leave the server
// refusing work forever.
func (d *Detector) Overloaded(queueDepth int) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.Disabled() {
		// Target < 0 turns the reactive detector off; the predictive latch
		// is a separate, explicitly-enabled mechanism and still counts.
		return d.predicted
	}
	if d.overloaded && queueDepth == 0 && d.now().Sub(d.lastObserve) >= d.cfg.Interval {
		d.overloaded = false
		d.firstAbove = time.Time{}
	}
	return d.overloaded || d.predicted
}

// SetPredicted latches (or clears) the model-predicted overload input and
// reports whether the call changed it. Unlike the reactive latch it has no
// idle self-clear: the forecaster that set it owns clearing it — on the
// next solve predicting headroom, or when its forecast goes stale.
func (d *Detector) SetPredicted(on bool) (changed bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if on == d.predicted {
		return false
	}
	d.predicted = on
	if on {
		d.predictedEpisodes++
	}
	return true
}

// Predicted reports the model-predicted overload latch.
func (d *Detector) Predicted() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.predicted
}

// PredictedEpisodes returns how many times the predictive latch has fired.
func (d *Detector) PredictedEpisodes() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.predictedEpisodes
}

// Episodes returns how many times the overloaded flag has latched.
func (d *Detector) Episodes() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.episodes
}

// Force sets the latched state directly — an operator/test escape hatch
// (drills, readiness-probe tests). Forcing on counts as an episode.
func (d *Detector) Force(overloaded bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if overloaded && !d.overloaded {
		d.episodes++
		d.since = d.now()
	}
	d.overloaded = overloaded
	d.firstAbove = time.Time{}
	if overloaded {
		// Pin the observation clock so the idle self-clear in Overloaded
		// does not immediately undo a forced latch.
		d.lastObserve = d.now()
	}
}

// RetryAfter is the hint handed to shed clients: one interval, rounded up
// to a whole second (the Retry-After header carries integer seconds).
func (d *Detector) RetryAfter() time.Duration {
	iv := d.cfg.Interval
	if iv <= 0 {
		iv = time.Second
	}
	secs := (iv + time.Second - 1) / time.Second
	if secs < 1 {
		secs = 1
	}
	return secs * time.Second
}
