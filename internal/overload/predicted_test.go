package overload

import (
	"testing"
	"time"
)

// TestDetectorPredictedLatch: the model-driven input latches and releases
// independently of the reactive CoDel latch, ORs into Overloaded, and is
// immune to the idle self-clear.
func TestDetectorPredictedLatch(t *testing.T) {
	clk := newFakeClock()
	d := NewDetector(DetectorConfig{Target: 100 * time.Millisecond, Interval: time.Second}, clk.now)

	if d.Overloaded(0) {
		t.Fatal("fresh detector must not be overloaded")
	}
	if !d.SetPredicted(true) {
		t.Fatal("first SetPredicted(true) must report a change")
	}
	if d.SetPredicted(true) {
		t.Fatal("repeated SetPredicted(true) must be a no-op")
	}
	if !d.Predicted() || !d.Overloaded(0) {
		t.Fatal("predictive latch must make the detector overloaded")
	}
	if got := d.PredictedEpisodes(); got != 1 {
		t.Fatalf("predicted episodes = %d, want 1", got)
	}
	if got := d.Episodes(); got != 0 {
		t.Fatalf("reactive episodes = %d, want 0 (predictive latch is separate)", got)
	}

	// The idle self-clear (empty queue, no samples for an interval) must
	// not release the predictive latch — only its owner clears it.
	clk.advance(10 * time.Second)
	if !d.Overloaded(0) {
		t.Fatal("idle self-clear must not touch the predictive latch")
	}

	if !d.SetPredicted(false) {
		t.Fatal("SetPredicted(false) must report a change")
	}
	if d.Predicted() || d.Overloaded(0) {
		t.Fatal("cleared predictive latch must release the overload")
	}
	d.SetPredicted(true)
	d.SetPredicted(false)
	if got := d.PredictedEpisodes(); got != 2 {
		t.Fatalf("predicted episodes = %d, want 2", got)
	}
}

// TestDetectorPredictedWithReactive: both latches engaged — clearing one
// leaves the other holding the overload.
func TestDetectorPredictedWithReactive(t *testing.T) {
	clk := newFakeClock()
	d := NewDetector(DetectorConfig{Target: 100 * time.Millisecond, Interval: time.Second}, clk.now)

	// Latch the reactive detector: sustained above-target delay.
	d.Observe(time.Second)
	clk.advance(2 * time.Second)
	if over, _ := d.Observe(time.Second); !over {
		t.Fatal("sustained delay must latch the reactive detector")
	}
	d.SetPredicted(true)

	// Reactive clears on a good sample; the predictive latch holds.
	d.Observe(time.Millisecond)
	if !d.Overloaded(1) {
		t.Fatal("predictive latch must hold after the reactive latch clears")
	}
	d.SetPredicted(false)
	if d.Overloaded(1) {
		t.Fatal("both latches clear → not overloaded")
	}
}

// TestDetectorPredictedWhileDisabled: Target < 0 turns the reactive
// detector off, but the explicitly-driven predictive latch still counts.
func TestDetectorPredictedWhileDisabled(t *testing.T) {
	d := NewDetector(DetectorConfig{Target: -1}, nil)
	if !d.Disabled() {
		t.Fatal("negative target must disable the reactive detector")
	}
	if d.Overloaded(100) {
		t.Fatal("disabled detector without predictive input must report healthy")
	}
	d.SetPredicted(true)
	if !d.Overloaded(100) {
		t.Fatal("predictive latch must count even with the reactive detector disabled")
	}
	d.SetPredicted(false)
	if d.Overloaded(100) {
		t.Fatal("cleared predictive latch must release the overload")
	}
}
