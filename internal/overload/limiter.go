// Package overload implements the admission daemon's overload control
// primitives: a per-client token-bucket rate limiter (one hot client must
// not starve the rest) and a CoDel-style sustained-queue-delay detector
// that drives the server's "overloaded" state, where new capacity-consuming
// work is shed with a retry hint while reads and capacity-freeing work stay
// live. Both are stdlib-only and clock-injectable for deterministic tests.
//
// The design applies the paper's elastic-QoS discipline to the server's own
// request stream: when resources (here, actor-loop service time) run out,
// degrade service gracefully and predictably instead of letting the queue
// collapse for everyone.
package overload

import (
	"sort"
	"sync"
	"time"
)

// Limiter is a per-key token-bucket rate limiter. Each key (client) owns a
// bucket holding up to Burst tokens that refills at Rate tokens per second;
// a request spends one token or is refused with a retry hint. Safe for
// concurrent use.
type Limiter struct {
	rate  float64 // tokens per second
	burst float64 // bucket capacity

	mu      sync.Mutex
	buckets map[string]*bucket
	sweeps  int // Allow calls since the last idle-bucket sweep
}

type bucket struct {
	tokens float64
	last   time.Time
}

// maxIdleBuckets bounds the client map: once it grows past this, Allow
// sweeps out buckets that have refilled to capacity (idle long enough that
// forgetting them is indistinguishable from keeping them). If every bucket
// is still mid-refill — an attacker rotating X-Client-ID faster than the
// refill window — the sweep falls back to evicting the least-recently-used
// buckets down to half capacity, so the map is a hard bound, not a hint.
const maxIdleBuckets = 4096

// NewLimiter returns a limiter granting rate requests/second with bursts of
// up to burst. A rate <= 0 disables limiting (Allow always succeeds);
// burst <= 0 defaults to rate (1-second burst window) with a floor of 1.
func NewLimiter(rate, burst float64) *Limiter {
	if burst <= 0 {
		burst = rate
	}
	if burst < 1 {
		burst = 1
	}
	return &Limiter{rate: rate, burst: burst, buckets: make(map[string]*bucket)}
}

// Allow spends one token from key's bucket at time now. When the bucket is
// empty it reports false and how long the caller should wait before the
// next token is available — the Retry-After hint.
func (l *Limiter) Allow(key string, now time.Time) (ok bool, retryAfter time.Duration) {
	if l == nil || l.rate <= 0 {
		return true, 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	b := l.buckets[key]
	if b == nil {
		l.maybeSweep(now)
		b = &bucket{tokens: l.burst, last: now}
		l.buckets[key] = b
	} else {
		b.tokens += now.Sub(b.last).Seconds() * l.rate
		if b.tokens > l.burst {
			b.tokens = l.burst
		}
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	// Time until the bucket holds one full token again.
	return false, time.Duration((1 - b.tokens) / l.rate * float64(time.Second))
}

// Clients returns the number of tracked buckets (for stats).
func (l *Limiter) Clients() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.buckets)
}

// maybeSweep drops fully-refilled (idle) buckets once the map is large,
// then — if that freed nothing because every key is fresh (rotating
// client IDs) — evicts the least-recently-seen buckets down to half
// capacity. Evicting a live bucket only forgets how many tokens that
// client already spent; a rotating client gains nothing because each new
// ID starts a fresh bucket anyway. Called with l.mu held, before
// inserting a new bucket.
func (l *Limiter) maybeSweep(now time.Time) {
	if len(l.buckets) < maxIdleBuckets {
		return
	}
	l.sweeps++
	for k, b := range l.buckets {
		if b.tokens+now.Sub(b.last).Seconds()*l.rate >= l.burst {
			delete(l.buckets, k)
		}
	}
	if len(l.buckets) < maxIdleBuckets {
		return
	}
	// Hard bound: order by last-seen and keep only the newest half.
	type entry struct {
		key  string
		last time.Time
	}
	all := make([]entry, 0, len(l.buckets))
	for k, b := range l.buckets {
		all = append(all, entry{k, b.last})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].last.Before(all[j].last) })
	evict := len(all) - maxIdleBuckets/2
	for _, e := range all[:evict] {
		delete(l.buckets, e.key)
	}
}
