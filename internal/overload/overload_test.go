package overload

import (
	"fmt"
	"testing"
	"time"
)

// fakeClock is a manually-advanced clock for deterministic limiter and
// detector tests.
type fakeClock struct{ t time.Time }

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}
func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

// TestLimiterBurstAndRefill: a fresh client spends its whole burst, is then
// refused with a positive retry hint, and regains exactly the refilled
// number of tokens after waiting.
func TestLimiterBurstAndRefill(t *testing.T) {
	c := newFakeClock()
	l := NewLimiter(10, 5) // 10 tokens/s, burst 5

	for i := 0; i < 5; i++ {
		ok, _ := l.Allow("a", c.now())
		if !ok {
			t.Fatalf("burst request %d refused, want 5 allowed", i)
		}
	}
	ok, retry := l.Allow("a", c.now())
	if ok {
		t.Fatal("6th immediate request allowed, burst is 5")
	}
	if retry <= 0 || retry > 200*time.Millisecond {
		t.Fatalf("retry hint %v, want (0, 100ms] for rate 10/s", retry)
	}

	// 250ms at 10/s refills 2.5 tokens: exactly 2 more requests pass.
	c.advance(250 * time.Millisecond)
	for i := 0; i < 2; i++ {
		if ok, _ := l.Allow("a", c.now()); !ok {
			t.Fatalf("post-refill request %d refused, want 2 allowed", i)
		}
	}
	if ok, _ := l.Allow("a", c.now()); ok {
		t.Fatal("3rd post-refill request allowed, only 2.5 tokens refilled")
	}

	// Other clients have their own buckets.
	if ok, _ := l.Allow("b", c.now()); !ok {
		t.Fatal("fresh client refused while another is throttled")
	}

	// A full idle period restores the full burst, never more.
	c.advance(time.Hour)
	for i := 0; i < 5; i++ {
		if ok, _ := l.Allow("a", c.now()); !ok {
			t.Fatalf("request %d after long idle refused, want full burst back", i)
		}
	}
	if ok, _ := l.Allow("a", c.now()); ok {
		t.Fatal("burst exceeded after long idle: bucket must cap at burst")
	}
}

// TestLimiterDisabled: rate <= 0 always allows.
func TestLimiterDisabled(t *testing.T) {
	c := newFakeClock()
	l := NewLimiter(0, 0)
	for i := 0; i < 1000; i++ {
		if ok, _ := l.Allow("x", c.now()); !ok {
			t.Fatal("disabled limiter refused a request")
		}
	}
	var nilL *Limiter
	if ok, _ := nilL.Allow("x", c.now()); !ok {
		t.Fatal("nil limiter refused a request")
	}
}

// TestLimiterSweep: the client map stays bounded because idle (fully
// refilled) buckets are swept once the map grows large.
func TestLimiterSweep(t *testing.T) {
	c := newFakeClock()
	l := NewLimiter(100, 1)
	for i := 0; i < maxIdleBuckets; i++ {
		l.Allow(fmt.Sprintf("client-%d", i), c.now())
	}
	c.advance(time.Minute) // every bucket refills to capacity
	l.Allow("one-more", c.now())
	if n := l.Clients(); n > 2 {
		t.Fatalf("%d buckets retained after sweep, want <= 2", n)
	}
}

// TestLimiterChurnBounded: an attacker rotating X-Client-ID faster than the
// refill window used to grow the bucket map without bound, because the sweep
// only dropped fully-refilled buckets and a fresh bucket is never refilled.
// The map must now be a hard bound regardless of key churn.
func TestLimiterChurnBounded(t *testing.T) {
	c := newFakeClock()
	l := NewLimiter(1, 100) // slow refill: no bucket ever refills mid-test
	const churn = 10 * maxIdleBuckets
	for i := 0; i < churn; i++ {
		l.Allow(fmt.Sprintf("spoof-%d", i), c.now())
		c.advance(time.Millisecond) // fast rotation, far below refill time
	}
	if n := l.Clients(); n > maxIdleBuckets {
		t.Fatalf("%d buckets retained under %d-key churn, want <= %d",
			n, churn, maxIdleBuckets)
	}
	// Eviction must keep the newest buckets: a client throttled moments ago
	// stays throttled (its spent tokens are not forgotten by the sweep).
	hot := "hot-client"
	for i := 0; i < 100; i++ {
		l.Allow(hot, c.now())
	}
	if ok, _ := l.Allow(hot, c.now()); ok {
		t.Fatal("hot client allowed past its burst")
	}
	for i := 0; i < maxIdleBuckets/4; i++ {
		l.Allow(fmt.Sprintf("late-spoof-%d", i), c.now())
	}
	if ok, _ := l.Allow(hot, c.now()); ok {
		t.Fatal("hot client's bucket was evicted by churn below the sweep threshold")
	}
}

// TestDetectorLatchesAndClears walks the full state machine: below-target
// samples keep it healthy, sustained above-target delay latches overloaded
// after one interval, and a single good sample clears it.
func TestDetectorLatchesAndClears(t *testing.T) {
	c := newFakeClock()
	d := NewDetector(DetectorConfig{Target: 10 * time.Millisecond, Interval: 100 * time.Millisecond}, c.now)

	// Spikes shorter than the interval never latch.
	for i := 0; i < 3; i++ {
		if over, _ := d.Observe(50 * time.Millisecond); over {
			t.Fatal("latched before a full interval above target")
		}
		c.advance(30 * time.Millisecond)
	}
	if over, changed := d.Observe(time.Millisecond); over || changed {
		t.Fatal("good sample must keep state healthy, not flip anything")
	}

	// Sustained bad delay: latches once a full interval has passed.
	for i := 0; ; i++ {
		over, changed := d.Observe(40 * time.Millisecond)
		if over {
			if !changed {
				t.Fatal("latch must report changed=true")
			}
			break
		}
		if i > 20 {
			t.Fatal("never latched under sustained above-target delay")
		}
		c.advance(25 * time.Millisecond)
	}
	if !d.Overloaded(5) {
		t.Fatal("Overloaded() false right after latching with a backlog")
	}
	if d.Episodes() != 1 {
		t.Fatalf("episodes = %d, want 1", d.Episodes())
	}

	// One good sample clears.
	if over, changed := d.Observe(time.Millisecond); over || !changed {
		t.Fatalf("good sample: overloaded=%v changed=%v, want false/true", over, changed)
	}
	if d.Overloaded(0) {
		t.Fatal("still overloaded after a good sample")
	}
}

// TestDetectorIdleSelfClear: when the burst ends in silence (no samples at
// all), a drained queue plus one quiet interval clears the latch — readyz
// must not stay red forever on an idle server.
func TestDetectorIdleSelfClear(t *testing.T) {
	c := newFakeClock()
	d := NewDetector(DetectorConfig{Target: 10 * time.Millisecond, Interval: 100 * time.Millisecond}, c.now)
	d.Observe(50 * time.Millisecond)
	c.advance(150 * time.Millisecond)
	if over, _ := d.Observe(50 * time.Millisecond); !over {
		t.Fatal("failed to latch")
	}

	// Backlog still present: stays latched no matter how long.
	c.advance(time.Minute)
	if !d.Overloaded(3) {
		t.Fatal("cleared with a non-empty queue")
	}
	// Drained queue + a quiet interval: self-clears.
	if d.Overloaded(0) != false {
		t.Fatal("did not self-clear with empty queue after a quiet interval")
	}
	if d.Overloaded(0) {
		t.Fatal("flag re-latched without any observation")
	}
}

// TestDetectorForceAndDisabled covers the operator escape hatch and the
// Target<0 kill switch.
func TestDetectorForceAndDisabled(t *testing.T) {
	c := newFakeClock()
	d := NewDetector(DetectorConfig{Target: 10 * time.Millisecond, Interval: 100 * time.Millisecond}, c.now)
	d.Force(true)
	if !d.Overloaded(0) {
		t.Fatal("forced latch self-cleared immediately")
	}
	if d.Episodes() != 1 {
		t.Fatalf("forced latch episodes = %d, want 1", d.Episodes())
	}
	d.Force(false)
	if d.Overloaded(10) {
		t.Fatal("Force(false) did not clear")
	}
	if got := d.RetryAfter(); got != time.Second {
		t.Fatalf("RetryAfter = %v, want 1s (interval rounded up)", got)
	}

	off := NewDetector(DetectorConfig{Target: -1}, c.now)
	for i := 0; i < 100; i++ {
		if over, _ := off.Observe(time.Hour); over {
			t.Fatal("disabled detector latched")
		}
		c.advance(time.Second)
	}
	if off.Overloaded(100) {
		t.Fatal("disabled detector reports overloaded")
	}
}
