package network

import (
	"testing"

	"drqos/internal/channel"
	"drqos/internal/qos"
	"drqos/internal/rng"
	"drqos/internal/routing"
	"drqos/internal/topology"
)

// TestDebugSeed replays the quick-check scenario for one seed with verbose
// failure reporting. Kept as a regression test for the seed that first
// exposed an invariant break.
func TestDebugSeed(t *testing.T) {
	seed := uint64(0x876409b776027228)
	src := rng.New(seed)
	g, err := topology.Waxman(topology.WaxmanConfig{
		Nodes: 12, Alpha: 0.5, Beta: 0.4, EnsureConnected: true,
	}, src)
	if err != nil {
		t.Fatal(err)
	}
	n, err := New(g, 500)
	if err != nil {
		t.Fatal(err)
	}
	type live struct {
		route  routing.Path
		backup routing.Path
		hasB   bool
		grant  qos.Kbps
	}
	conns := map[channel.ConnID]*live{}
	nextID := channel.ConnID(1)
	for step := 0; step < 120; step++ {
		op := src.Intn(4)
		switch op {
		case 0:
			a := topology.NodeID(src.Intn(g.NumNodes()))
			b := topology.NodeID(src.Intn(g.NumNodes()))
			if a == b {
				continue
			}
			p, err := routing.ShortestHops(g, a, b, nil)
			if err != nil {
				continue
			}
			if n.ReservePrimary(nextID, p, 100) != nil {
				continue
			}
			c := &live{route: p, grant: 100}
			if bk, _, err := routing.BackupRoute(g, p, nil); err == nil {
				if n.ReserveBackup(nextID, bk, p.Links, 100) == nil {
					c.backup, c.hasB = bk, true
				}
			}
			conns[nextID] = c
			nextID++
		case 1:
			for id, c := range conns {
				ng := qos.Kbps(100 + 50*src.Intn(9))
				if n.AdjustPrimary(id, c.route, ng) == nil {
					c.grant = ng
				}
				break
			}
		case 2:
			for id, c := range conns {
				if err := n.ReleasePrimary(id, c.route); err != nil {
					t.Fatalf("step %d: release primary %d: %v", step, id, err)
				}
				if c.hasB {
					if err := n.ReleaseBackup(id, c.backup); err != nil {
						t.Fatalf("step %d: release backup %d: %v", step, id, err)
					}
				}
				delete(conns, id)
				break
			}
		case 3:
			for id, c := range conns {
				if !c.hasB {
					break
				}
				for _, d := range c.backup.DirLinks(g) {
					for _, pid := range n.PrimariesOn(d) {
						if pc, ok := conns[pid]; ok {
							if n.AdjustPrimary(pid, pc.route, 100) == nil {
								pc.grant = 100
							}
						}
					}
				}
				if err := n.ReleasePrimary(id, c.route); err != nil {
					t.Fatalf("step %d: pre-activation release %d: %v", step, id, err)
				}
				if err := n.ActivateBackup(id, c.backup); err != nil {
					if err := n.ReleaseBackup(id, c.backup); err != nil {
						t.Fatalf("step %d: cleanup backup %d: %v", step, id, err)
					}
					delete(conns, id)
					break
				}
				c.route = c.backup
				c.backup = routing.Path{}
				c.hasB = false
				c.grant = 100
				break
			}
		}
		if err := n.CheckInvariants(); err != nil {
			t.Fatalf("step %d (op %d): %v", step, op, err)
		}
	}
}
