// Package network tracks per-link resource state for DR-connections: primary
// reservations (which grow and shrink with elastic QoS), and the multiplexed
// spare pools reserved for passive backup channels (§2.1.2).
//
// Real-time channels are unidirectional virtual circuits [3], so every
// reservation lives on a DIRECTED link (topology.DirLinkID): the two
// directions of a physical link carry independent capacities, matching the
// paper's resource model (its "354 edges" on the 100-node network count
// directed edges). A physical failure takes out both directions.
//
// The accounting realizes three rules from the paper:
//
//  1. Backups reserve capacity but do not consume it: the spare pool on a
//     directed link is sized by the worst single-failure activation burst,
//     not the sum of all backups ("overbooking", §2.1.2).
//  2. Primaries may borrow the idle spare: grants are limited by physical
//     capacity only. On failure the spare is reclaimed by squeezing
//     primaries back to their minima (§3.1).
//  3. Admission is judged at minimum levels: a new primary fits on a link
//     iff Σ minima + spare + newMin ≤ capacity, because every elastic
//     primary can always be squeezed to its minimum.
package network

import (
	"errors"
	"fmt"
	"sort"

	"drqos/internal/channel"
	"drqos/internal/qos"
	"drqos/internal/routing"
	"drqos/internal/topology"
)

// ErrCapacity reports an admission or adjustment that would exceed link
// capacity.
var ErrCapacity = errors.New("network: insufficient capacity")

// ErrLinkFailed reports use of a failed link.
var ErrLinkFailed = errors.New("network: link is failed")

// ErrUnknownConn reports an operation on a connection that holds no
// reservation on the link.
var ErrUnknownConn = errors.New("network: unknown connection")

// backupReg records one backup channel registered on a directed link: its
// guaranteed activation bandwidth and the physical links of its primary
// route (the failures that would activate it).
type backupReg struct {
	min          qos.Kbps
	primaryLinks []topology.LinkID
}

// dirState is the resource ledger of one directed link.
type dirState struct {
	grants   map[channel.ConnID]qos.Kbps // current primary reservations
	mins     map[channel.ConnID]qos.Kbps // per-connection minima
	grantSum qos.Kbps
	minSum   qos.Kbps

	backups map[channel.ConnID]backupReg
	// conflict[f] is the bandwidth that must be freed on this directed
	// link when physical link f fails: the sum of minima of backups here
	// whose primary uses f.
	conflict map[topology.LinkID]qos.Kbps
	spare    qos.Kbps // cached max over conflict
}

func (ds *dirState) recomputeSpare(noMultiplex bool) {
	var m qos.Kbps
	if noMultiplex {
		for _, reg := range ds.backups {
			m += reg.min
		}
	} else {
		for _, v := range ds.conflict {
			if v > m {
				m = v
			}
		}
	}
	ds.spare = m
}

// Network is the resource ledger for an entire topology.
type Network struct {
	g        *topology.Graph
	capacity qos.Kbps
	dirs     []dirState
	failed   []bool // per physical link
	// noMultiplex disables backup multiplexing: the spare on a directed
	// link becomes the SUM of all backup minima instead of the worst
	// single-failure burst. Used by the multiplexing ablation.
	noMultiplex bool
}

// New builds a Network over g with a uniform per-direction link capacity,
// matching the paper's setting ("we assume that the bandwidth is the same
// for all links in a given network", 10 Mb/s).
func New(g *topology.Graph, capacity qos.Kbps) (*Network, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("network: non-positive capacity %v", capacity)
	}
	n := &Network{
		g:        g,
		capacity: capacity,
		dirs:     make([]dirState, g.NumDirLinks()),
		failed:   make([]bool, g.NumLinks()),
	}
	for i := range n.dirs {
		n.dirs[i] = dirState{
			grants:   make(map[channel.ConnID]qos.Kbps),
			mins:     make(map[channel.ConnID]qos.Kbps),
			backups:  make(map[channel.ConnID]backupReg),
			conflict: make(map[topology.LinkID]qos.Kbps),
		}
	}
	return n, nil
}

// Graph returns the underlying topology.
func (n *Network) Graph() *topology.Graph { return n.g }

// SetMultiplexing enables or disables backup multiplexing (enabled by
// default). It must be called before any backup is registered; flipping it
// with live backups would corrupt the cached spare values, so that case
// returns an error.
func (n *Network) SetMultiplexing(enabled bool) error {
	for i := range n.dirs {
		if len(n.dirs[i].backups) > 0 {
			return fmt.Errorf("network: cannot change multiplexing with %d backups on directed link %d",
				len(n.dirs[i].backups), i)
		}
	}
	n.noMultiplex = !enabled
	return nil
}

// Capacity returns the per-direction capacity (uniform across links).
func (n *Network) Capacity() qos.Kbps { return n.capacity }

// Failed reports whether physical link l is currently failed.
func (n *Network) Failed(l topology.LinkID) bool { return n.failed[l] }

// SetFailed marks physical link l failed or repaired. Resource reservations
// are not touched: the manager decides what to fail over and release.
func (n *Network) SetFailed(l topology.LinkID, failed bool) { n.failed[l] = failed }

// Spare returns the multiplexed backup spare currently required on directed
// link d.
func (n *Network) Spare(d topology.DirLinkID) qos.Kbps { return n.dirs[d].spare }

// GrantSum returns the total primary reservation on directed link d.
func (n *Network) GrantSum(d topology.DirLinkID) qos.Kbps { return n.dirs[d].grantSum }

// MinSum returns the total of primary minima on directed link d.
func (n *Network) MinSum(d topology.DirLinkID) qos.Kbps { return n.dirs[d].minSum }

// FreeForGrowth returns the bandwidth a primary on directed link d could
// still grow into right now: physical capacity minus current grants (idle
// backup spare is borrowable, rule 2).
func (n *Network) FreeForGrowth(d topology.DirLinkID) qos.Kbps {
	if n.failed[d.Link()] {
		return 0
	}
	return n.capacity - n.dirs[d].grantSum
}

// AdmissionHeadroom returns the bandwidth available to a NEW primary on
// directed link d under minimum-level admission (rule 3).
func (n *Network) AdmissionHeadroom(d topology.DirLinkID) qos.Kbps {
	if n.failed[d.Link()] {
		return 0
	}
	ds := &n.dirs[d]
	free := n.capacity - ds.minSum - ds.spare
	if free < 0 {
		return 0
	}
	return free
}

// Grant returns the current reservation of conn on directed link d, or 0.
func (n *Network) Grant(d topology.DirLinkID, id channel.ConnID) qos.Kbps {
	return n.dirs[d].grants[id]
}

// PrimariesOn returns the IDs of connections with a primary reservation on
// directed link d, in ascending ID order for determinism.
func (n *Network) PrimariesOn(d topology.DirLinkID) []channel.ConnID {
	ds := &n.dirs[d]
	out := make([]channel.ConnID, 0, len(ds.grants))
	for id := range ds.grants {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ForEachPrimaryOn calls fn for every connection with a primary reservation
// on directed link d, in UNSPECIFIED order. Callers that need determinism
// must accumulate into a set and sort; this avoids the per-call allocation
// and sort of PrimariesOn in hot paths.
func (n *Network) ForEachPrimaryOn(d topology.DirLinkID, fn func(channel.ConnID)) {
	for id := range n.dirs[d].grants {
		fn(id)
	}
}

// BackupsOn returns the IDs of connections with a backup registered on
// directed link d, in ascending ID order.
func (n *Network) BackupsOn(d topology.DirLinkID) []channel.ConnID {
	ds := &n.dirs[d]
	out := make([]channel.ConnID, 0, len(ds.backups))
	for id := range ds.backups {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// CanAdmitPrimary reports whether a new primary with the given minimum
// could be admitted along route under minimum-level admission.
func (n *Network) CanAdmitPrimary(route routing.Path, min qos.Kbps) bool {
	for _, d := range route.DirLinks(n.g) {
		if n.AdmissionHeadroom(d) < min {
			return false
		}
	}
	return true
}

// ReservePrimary reserves min bandwidth for conn id along route. Grants on
// every route link must currently leave room for min (the manager squeezes
// elastic channels first if necessary). The operation is atomic: on error
// nothing is reserved.
func (n *Network) ReservePrimary(id channel.ConnID, route routing.Path, min qos.Kbps) error {
	if min <= 0 {
		return fmt.Errorf("network: non-positive reservation %v", min)
	}
	dls := route.DirLinks(n.g)
	for _, d := range dls {
		ds := &n.dirs[d]
		if n.failed[d.Link()] {
			return fmt.Errorf("%w: link %d on route of conn %d", ErrLinkFailed, d.Link(), id)
		}
		if _, dup := ds.grants[id]; dup {
			return fmt.Errorf("network: conn %d already reserved on directed link %d", id, d)
		}
		if ds.grantSum+min > n.capacity {
			return fmt.Errorf("%w: directed link %d has %v granted of %v, cannot add %v",
				ErrCapacity, d, ds.grantSum, n.capacity, min)
		}
		if ds.minSum+ds.spare+min > n.capacity {
			return fmt.Errorf("%w: directed link %d minima %v + spare %v + new %v exceeds %v",
				ErrCapacity, d, ds.minSum, ds.spare, min, n.capacity)
		}
	}
	for _, d := range dls {
		ds := &n.dirs[d]
		ds.grants[id] = min
		ds.mins[id] = min
		ds.grantSum += min
		ds.minSum += min
	}
	return nil
}

// AdjustPrimary changes conn id's reservation to newGrant on every link of
// its route. newGrant must be at least the connection's minimum; growth must
// fit the physical capacity of every link. Atomic.
func (n *Network) AdjustPrimary(id channel.ConnID, route routing.Path, newGrant qos.Kbps) error {
	dls := route.DirLinks(n.g)
	for _, d := range dls {
		ds := &n.dirs[d]
		cur, ok := ds.grants[id]
		if !ok {
			return fmt.Errorf("%w: conn %d on directed link %d", ErrUnknownConn, id, d)
		}
		if newGrant < ds.mins[id] {
			return fmt.Errorf("network: grant %v below minimum %v for conn %d", newGrant, ds.mins[id], id)
		}
		if ds.grantSum-cur+newGrant > n.capacity {
			return fmt.Errorf("%w: directed link %d cannot grow conn %d from %v to %v",
				ErrCapacity, d, id, cur, newGrant)
		}
	}
	for _, d := range dls {
		ds := &n.dirs[d]
		cur := ds.grants[id]
		ds.grants[id] = newGrant
		ds.grantSum += newGrant - cur
	}
	return nil
}

// ReleasePrimary removes conn id's primary reservation along route.
func (n *Network) ReleasePrimary(id channel.ConnID, route routing.Path) error {
	dls := route.DirLinks(n.g)
	for _, d := range dls {
		if _, ok := n.dirs[d].grants[id]; !ok {
			return fmt.Errorf("%w: conn %d on directed link %d", ErrUnknownConn, id, d)
		}
	}
	for _, d := range dls {
		ds := &n.dirs[d]
		ds.grantSum -= ds.grants[id]
		ds.minSum -= ds.mins[id]
		delete(ds.grants, id)
		delete(ds.mins, id)
	}
	return nil
}

// CanAdmitBackup reports whether a backup with activation bandwidth min and
// the given physical primary links can be multiplexed onto every directed
// link of backupRoute without violating minimum-level admission (rule 1:
// the spare only grows where this backup conflicts with existing ones).
func (n *Network) CanAdmitBackup(backupRoute routing.Path, primaryLinks []topology.LinkID, min qos.Kbps) bool {
	for _, d := range backupRoute.DirLinks(n.g) {
		ds := &n.dirs[d]
		if n.failed[d.Link()] {
			return false
		}
		newSpare := ds.spare
		if n.noMultiplex {
			newSpare += min
		} else {
			for _, f := range primaryLinks {
				if c := ds.conflict[f] + min; c > newSpare {
					newSpare = c
				}
			}
		}
		if ds.minSum+newSpare > n.capacity {
			return false
		}
	}
	return true
}

// ReserveBackup registers a backup channel on every directed link of
// backupRoute. Atomic: on error nothing is registered.
func (n *Network) ReserveBackup(id channel.ConnID, backupRoute routing.Path, primaryLinks []topology.LinkID, min qos.Kbps) error {
	if min <= 0 {
		return fmt.Errorf("network: non-positive backup reservation %v", min)
	}
	if len(primaryLinks) == 0 {
		return fmt.Errorf("network: backup for conn %d has no primary links", id)
	}
	if !n.CanAdmitBackup(backupRoute, primaryLinks, min) {
		return fmt.Errorf("%w: backup of conn %d", ErrCapacity, id)
	}
	dls := backupRoute.DirLinks(n.g)
	for _, d := range dls {
		if _, dup := n.dirs[d].backups[id]; dup {
			return fmt.Errorf("network: backup of conn %d already on directed link %d", id, d)
		}
	}
	reg := backupReg{min: min, primaryLinks: append([]topology.LinkID(nil), primaryLinks...)}
	for _, d := range dls {
		ds := &n.dirs[d]
		ds.backups[id] = reg
		for _, f := range primaryLinks {
			ds.conflict[f] += min
		}
		if n.noMultiplex {
			ds.spare += min
			continue
		}
		for _, f := range primaryLinks {
			if ds.conflict[f] > ds.spare {
				ds.spare = ds.conflict[f]
			}
		}
	}
	return nil
}

// RestoreBackup registers a backup channel without re-running the rule-3
// admission check. It exists for one caller: rebuilding a ledger from a
// durable snapshot, where every registration was admitted in the original
// run but the minima+spare bound may legitimately not hold any more (the
// post-failover dependability deficit — see DependabilityDeficit). The
// rebuilt ledger is still validated wholesale by CheckInvariants.
func (n *Network) RestoreBackup(id channel.ConnID, backupRoute routing.Path, primaryLinks []topology.LinkID, min qos.Kbps) error {
	if min <= 0 {
		return fmt.Errorf("network: non-positive backup reservation %v", min)
	}
	if len(primaryLinks) == 0 {
		return fmt.Errorf("network: backup for conn %d has no primary links", id)
	}
	dls := backupRoute.DirLinks(n.g)
	for _, d := range dls {
		if _, dup := n.dirs[d].backups[id]; dup {
			return fmt.Errorf("network: backup of conn %d already on directed link %d", id, d)
		}
	}
	reg := backupReg{min: min, primaryLinks: append([]topology.LinkID(nil), primaryLinks...)}
	for _, d := range dls {
		ds := &n.dirs[d]
		ds.backups[id] = reg
		for _, f := range primaryLinks {
			ds.conflict[f] += min
		}
		ds.recomputeSpare(n.noMultiplex)
	}
	return nil
}

// ReleaseBackup removes conn id's backup registration along backupRoute.
func (n *Network) ReleaseBackup(id channel.ConnID, backupRoute routing.Path) error {
	dls := backupRoute.DirLinks(n.g)
	for _, d := range dls {
		if _, ok := n.dirs[d].backups[id]; !ok {
			return fmt.Errorf("%w: backup of conn %d on directed link %d", ErrUnknownConn, id, d)
		}
	}
	for _, d := range dls {
		ds := &n.dirs[d]
		reg := ds.backups[id]
		delete(ds.backups, id)
		for _, f := range reg.primaryLinks {
			ds.conflict[f] -= reg.min
			if ds.conflict[f] == 0 {
				delete(ds.conflict, f)
			}
		}
		ds.recomputeSpare(n.noMultiplex)
	}
	return nil
}

// ActivateBackup converts conn id's backup registration along backupRoute
// into a primary reservation at the registered minimum (the activated
// channel runs at Bmin, §3.1). The spare it occupied is released. The
// manager must already have squeezed primaries on these links so the
// minimum fits within physical capacity.
func (n *Network) ActivateBackup(id channel.ConnID, backupRoute routing.Path) error {
	dls := backupRoute.DirLinks(n.g)
	var min qos.Kbps
	for _, d := range dls {
		ds := &n.dirs[d]
		reg, ok := ds.backups[id]
		if !ok {
			return fmt.Errorf("%w: backup of conn %d on directed link %d", ErrUnknownConn, id, d)
		}
		min = reg.min
		if _, dup := ds.grants[id]; dup {
			return fmt.Errorf("network: conn %d already primary on directed link %d", id, d)
		}
	}
	// Feasibility against physical capacity, before mutating anything.
	for _, d := range dls {
		ds := &n.dirs[d]
		if ds.grantSum+min > n.capacity {
			return fmt.Errorf("%w: activating backup of conn %d on directed link %d (%v granted of %v)",
				ErrCapacity, id, d, ds.grantSum, n.capacity)
		}
	}
	if err := n.ReleaseBackup(id, backupRoute); err != nil {
		return err
	}
	for _, d := range dls {
		ds := &n.dirs[d]
		ds.grants[id] = min
		ds.mins[id] = min
		ds.grantSum += min
		ds.minSum += min
	}
	return nil
}

// CheckInvariants recomputes every cached quantity from first principles
// and verifies the conservation rules in DESIGN.md §6. It is O(links ×
// reservations) and intended for tests and debugging.
//
// The dependability reserve rule (minima + spare ≤ capacity) is NOT part of
// this check: it is guaranteed at admission time but transiently violated
// between a backup activation and the re-establishment of protection (the
// paper's single-failure assumption). Use DependabilityDeficit to inspect it.
func (n *Network) CheckInvariants() error {
	for di := range n.dirs {
		ds := &n.dirs[di]
		var grantSum, minSum qos.Kbps
		for id, g := range ds.grants {
			m, ok := ds.mins[id]
			if !ok {
				return fmt.Errorf("dir link %d: conn %d has grant but no min", di, id)
			}
			if g < m {
				return fmt.Errorf("dir link %d: conn %d grant %v below min %v", di, id, g, m)
			}
			grantSum += g
			minSum += m
		}
		if len(ds.grants) != len(ds.mins) {
			return fmt.Errorf("dir link %d: %d grants vs %d mins", di, len(ds.grants), len(ds.mins))
		}
		if grantSum != ds.grantSum {
			return fmt.Errorf("dir link %d: cached grantSum %v, actual %v", di, ds.grantSum, grantSum)
		}
		if minSum != ds.minSum {
			return fmt.Errorf("dir link %d: cached minSum %v, actual %v", di, ds.minSum, minSum)
		}
		if grantSum > n.capacity {
			return fmt.Errorf("dir link %d: grants %v exceed capacity %v", di, grantSum, n.capacity)
		}
		conflict := make(map[topology.LinkID]qos.Kbps)
		for _, reg := range ds.backups {
			for _, f := range reg.primaryLinks {
				conflict[f] += reg.min
			}
		}
		var spare qos.Kbps
		for f, v := range conflict {
			if ds.conflict[f] != v {
				return fmt.Errorf("dir link %d: conflict[%d] cached %v, actual %v", di, f, ds.conflict[f], v)
			}
			if !n.noMultiplex && v > spare {
				spare = v
			}
		}
		if n.noMultiplex {
			for _, reg := range ds.backups {
				spare += reg.min
			}
		}
		if len(conflict) != len(ds.conflict) {
			return fmt.Errorf("dir link %d: stale conflict entries", di)
		}
		if spare != ds.spare {
			return fmt.Errorf("dir link %d: cached spare %v, actual %v", di, ds.spare, spare)
		}
	}
	return nil
}

// DependabilityDeficit returns the directed links where the dependability
// reserve rule (Σ minima + spare ≤ capacity) currently does not hold. In
// the absence of failures and backup activations the slice is empty; after
// a failover it lists links whose backup coverage is degraded until
// protection is re-established.
func (n *Network) DependabilityDeficit() []topology.DirLinkID {
	var out []topology.DirLinkID
	for di := range n.dirs {
		ds := &n.dirs[di]
		if ds.minSum+ds.spare > n.capacity {
			out = append(out, topology.DirLinkID(di))
		}
	}
	return out
}
