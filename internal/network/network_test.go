package network

import (
	"errors"
	"sort"
	"testing"
	"testing/quick"

	"drqos/internal/channel"
	"drqos/internal/qos"
	"drqos/internal/rng"
	"drqos/internal/routing"
	"drqos/internal/topology"
)

// fixture: a 6-node graph with two disjoint 3-hop routes 0→5 plus a chord.
//
//	0 - 1 - 2 - 5
//	 \  |       |
//	  3 - 4 ----+
func testNet(t *testing.T, capacity qos.Kbps) (*Network, routing.Path, routing.Path) {
	t.Helper()
	g := topology.NewGraph(6)
	for i := 0; i < 6; i++ {
		g.AddNode(topology.Point{})
	}
	mustLink := func(a, b topology.NodeID) topology.LinkID {
		id, err := g.AddLink(a, b)
		if err != nil {
			t.Fatal(err)
		}
		return id
	}
	l01 := mustLink(0, 1)
	l12 := mustLink(1, 2)
	l25 := mustLink(2, 5)
	l03 := mustLink(0, 3)
	l34 := mustLink(3, 4)
	l45 := mustLink(4, 5)
	mustLink(1, 3)

	n, err := New(g, capacity)
	if err != nil {
		t.Fatal(err)
	}
	upper := routing.Path{Nodes: []topology.NodeID{0, 1, 2, 5}, Links: []topology.LinkID{l01, l12, l25}}
	lower := routing.Path{Nodes: []topology.NodeID{0, 3, 4, 5}, Links: []topology.LinkID{l03, l34, l45}}
	return n, upper, lower
}

func mustOK(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

func checkInv(t *testing.T, n *Network) {
	t.Helper()
	if err := n.CheckInvariants(); err != nil {
		t.Fatalf("invariant violated: %v", err)
	}
}

// fwd returns the forward (A→B) direction of a physical link; every fixture
// route in this file traverses its links forward.
func fwd(l topology.LinkID) topology.DirLinkID { return topology.DirLinkID(2 * l) }

func TestNewValidation(t *testing.T) {
	g := topology.NewGraph(2)
	g.AddNode(topology.Point{})
	g.AddNode(topology.Point{})
	if _, err := New(g, 0); err == nil {
		t.Fatal("zero capacity accepted")
	}
}

func TestReservePrimaryBasics(t *testing.T) {
	n, upper, _ := testNet(t, 10000)
	mustOK(t, n.ReservePrimary(1, upper, 100))
	for _, l := range upper.Links {
		if n.Grant(fwd(l), 1) != 100 {
			t.Fatalf("grant on link %d = %v", l, n.Grant(fwd(l), 1))
		}
		if n.GrantSum(fwd(l)) != 100 || n.MinSum(fwd(l)) != 100 {
			t.Fatalf("sums on link %d: %v/%v", l, n.GrantSum(fwd(l)), n.MinSum(fwd(l)))
		}
		// The reverse direction is untouched: channels are unidirectional.
		rev := topology.DirLinkID(2*l + 1)
		if n.GrantSum(rev) != 0 {
			t.Fatalf("reverse direction of link %d carries %v", l, n.GrantSum(rev))
		}
	}
	checkInv(t, n)
	// Duplicate reservation must fail atomically.
	if err := n.ReservePrimary(1, upper, 100); err == nil {
		t.Fatal("duplicate accepted")
	}
	checkInv(t, n)
}

func TestReservePrimaryCapacityLimit(t *testing.T) {
	n, upper, _ := testNet(t, 250)
	mustOK(t, n.ReservePrimary(1, upper, 100))
	mustOK(t, n.ReservePrimary(2, upper, 100))
	err := n.ReservePrimary(3, upper, 100)
	if !errors.Is(err, ErrCapacity) {
		t.Fatalf("err = %v, want ErrCapacity", err)
	}
	checkInv(t, n)
	if n.CanAdmitPrimary(upper, 100) {
		t.Fatal("CanAdmitPrimary disagrees with ReservePrimary")
	}
	if !n.CanAdmitPrimary(upper, 50) {
		t.Fatal("50Kbps should fit in the remaining headroom")
	}
}

func TestReservePrimaryRejectsNonPositive(t *testing.T) {
	n, upper, _ := testNet(t, 1000)
	if err := n.ReservePrimary(1, upper, 0); err == nil {
		t.Fatal("zero reservation accepted")
	}
}

func TestReservePrimaryOnFailedLink(t *testing.T) {
	n, upper, _ := testNet(t, 1000)
	n.SetFailed(upper.Links[1], true)
	if err := n.ReservePrimary(1, upper, 100); !errors.Is(err, ErrLinkFailed) {
		t.Fatalf("err = %v", err)
	}
	if n.AdmissionHeadroom(fwd(upper.Links[1])) != 0 {
		t.Fatal("failed link reports headroom")
	}
	if n.FreeForGrowth(fwd(upper.Links[1])) != 0 {
		t.Fatal("failed link reports growth room")
	}
}

func TestAdjustPrimaryGrowAndShrink(t *testing.T) {
	n, upper, _ := testNet(t, 1000)
	mustOK(t, n.ReservePrimary(1, upper, 100))
	mustOK(t, n.AdjustPrimary(1, upper, 500))
	for _, l := range upper.Links {
		if n.Grant(fwd(l), 1) != 500 {
			t.Fatalf("grow failed on link %d", l)
		}
		if n.MinSum(fwd(l)) != 100 {
			t.Fatalf("min changed on grow: %v", n.MinSum(fwd(l)))
		}
	}
	checkInv(t, n)
	mustOK(t, n.AdjustPrimary(1, upper, 100))
	checkInv(t, n)
	// Below minimum is rejected.
	if err := n.AdjustPrimary(1, upper, 50); err == nil {
		t.Fatal("grant below min accepted")
	}
	// Unknown conn.
	if err := n.AdjustPrimary(9, upper, 100); !errors.Is(err, ErrUnknownConn) {
		t.Fatalf("err = %v", err)
	}
}

func TestAdjustPrimaryCapacityCeiling(t *testing.T) {
	n, upper, _ := testNet(t, 1000)
	mustOK(t, n.ReservePrimary(1, upper, 100))
	mustOK(t, n.ReservePrimary(2, upper, 100))
	// 800 free; conn 1 can grow to 900 total? No: 100+900=1000 is fine.
	mustOK(t, n.AdjustPrimary(1, upper, 900))
	if err := n.AdjustPrimary(2, upper, 200); !errors.Is(err, ErrCapacity) {
		t.Fatalf("err = %v", err)
	}
	checkInv(t, n)
	if n.FreeForGrowth(fwd(upper.Links[0])) != 0 {
		t.Fatalf("free = %v", n.FreeForGrowth(fwd(upper.Links[0])))
	}
}

func TestReleasePrimary(t *testing.T) {
	n, upper, _ := testNet(t, 1000)
	mustOK(t, n.ReservePrimary(1, upper, 100))
	mustOK(t, n.AdjustPrimary(1, upper, 300))
	mustOK(t, n.ReleasePrimary(1, upper))
	for _, l := range upper.Links {
		if n.GrantSum(fwd(l)) != 0 || n.MinSum(fwd(l)) != 0 {
			t.Fatalf("release left residue on link %d", l)
		}
	}
	checkInv(t, n)
	if err := n.ReleasePrimary(1, upper); !errors.Is(err, ErrUnknownConn) {
		t.Fatalf("double release: %v", err)
	}
}

func TestBackupMultiplexingSharesSpare(t *testing.T) {
	n, upper, lower := testNet(t, 1000)
	// Two connections with DISJOINT primaries (upper vs lower route on
	// different node pairs is not possible here, so use two conns both
	// 0→5: conn 1 primary upper, conn 2 primary lower; both back up on the
	// other route. Their backups conflict pairwise on every link... so
	// instead give both conns the SAME primary-disjointness structure:
	// conn 1 primary upper / backup lower; conn 2 primary upper / backup
	// lower would conflict. For sharing, primaries must be disjoint:
	// conn 1 primary upper, backup lower; conn 2 primary lower, backup
	// upper. Backups then live on different routes. To observe
	// multiplexing on ONE link we need two backups on the same link whose
	// primaries are disjoint — conn 3 primary upper (disjoint from lower).
	mustOK(t, n.ReservePrimary(1, upper, 100))
	mustOK(t, n.ReserveBackup(1, lower, upper.Links, 100))
	checkInv(t, n)

	mustOK(t, n.ReservePrimary(2, lower, 100))
	mustOK(t, n.ReserveBackup(2, upper, lower.Links, 100))
	checkInv(t, n)

	// Backup of conn 3 (primary on upper) multiplexes with backup of conn
	// 1 (also primary on upper): they activate together on a shared-upper
	// failure, so spare on lower links must be 200 for upper failures.
	mustOK(t, n.ReservePrimary(3, upper, 100))
	mustOK(t, n.ReserveBackup(3, lower, upper.Links, 100))
	checkInv(t, n)
	for _, l := range lower.Links {
		if got := n.Spare(fwd(l)); got != 200 {
			t.Fatalf("spare on lower link %d = %v, want 200 (both upper-primary backups)", l, got)
		}
	}
}

func TestBackupMultiplexingDisjointPrimariesShare(t *testing.T) {
	// Two conns whose primaries are on DIFFERENT single links but whose
	// backups share a link: spare is max(min1, min2), not the sum.
	g := topology.NewGraph(4)
	for i := 0; i < 4; i++ {
		g.AddNode(topology.Point{})
	}
	lA, _ := g.AddLink(0, 1) // primary of conn 1
	lB, _ := g.AddLink(2, 3) // primary of conn 2
	lS, _ := g.AddLink(1, 2) // shared backup link
	l0, _ := g.AddLink(0, 2)
	l1, _ := g.AddLink(1, 3)
	n, err := New(g, 1000)
	if err != nil {
		t.Fatal(err)
	}
	p1 := routing.Path{Nodes: []topology.NodeID{0, 1}, Links: []topology.LinkID{lA}}
	p2 := routing.Path{Nodes: []topology.NodeID{2, 3}, Links: []topology.LinkID{lB}}
	b1 := routing.Path{Nodes: []topology.NodeID{0, 2, 1}, Links: []topology.LinkID{l0, lS}}
	b2 := routing.Path{Nodes: []topology.NodeID{2, 1, 3}, Links: []topology.LinkID{lS, l1}}
	mustOK(t, n.ReservePrimary(1, p1, 100))
	mustOK(t, n.ReservePrimary(2, p2, 100))
	mustOK(t, n.ReserveBackup(1, b1, p1.Links, 100))
	mustOK(t, n.ReserveBackup(2, b2, p2.Links, 100))
	checkInv(t, n)
	if got := n.Spare(n.Graph().DirID(lS, 2)); got != 100 {
		t.Fatalf("spare on shared backup link = %v, want 100 (multiplexed)", got)
	}
}

func TestBackupAdmissionBlocksConflictOverflow(t *testing.T) {
	// Capacity 250: one primary at min 100 leaves 150 for spare. Two
	// conflicting backups (same primary link) need 200 spare → rejected.
	g := topology.NewGraph(4)
	for i := 0; i < 4; i++ {
		g.AddNode(topology.Point{})
	}
	lP, _ := g.AddLink(0, 1)
	lQ, _ := g.AddLink(0, 2)
	lS, _ := g.AddLink(2, 1)
	n, err := New(g, 250)
	if err != nil {
		t.Fatal(err)
	}
	primary := routing.Path{Nodes: []topology.NodeID{0, 1}, Links: []topology.LinkID{lP}}
	backup := routing.Path{Nodes: []topology.NodeID{0, 2, 1}, Links: []topology.LinkID{lQ, lS}}
	mustOK(t, n.ReservePrimary(1, primary, 100))
	mustOK(t, n.ReservePrimary(2, primary, 100))
	mustOK(t, n.ReserveBackup(1, backup, primary.Links, 100))
	checkInv(t, n)
	// Backup 2 conflicts with backup 1 (same primary link lP): spare would
	// need to be 200 on lQ/lS, but capacity 250 minus... minSum on lQ is 0,
	// so 200 fits there; admission must consider each link. On lQ and lS
	// minSum=0, spare 200 ≤ 250 → actually admissible. Tighten by loading
	// lS with a primary first.
	short := routing.Path{Nodes: []topology.NodeID{2, 1}, Links: []topology.LinkID{lS}}
	mustOK(t, n.ReservePrimary(3, short, 100))
	if n.CanAdmitBackup(backup, primary.Links, 100) {
		t.Fatal("conflicting backup admitted beyond capacity")
	}
	if err := n.ReserveBackup(2, backup, primary.Links, 100); !errors.Is(err, ErrCapacity) {
		t.Fatalf("err = %v", err)
	}
	checkInv(t, n)
}

func TestReserveBackupValidation(t *testing.T) {
	n, upper, lower := testNet(t, 1000)
	mustOK(t, n.ReservePrimary(1, upper, 100))
	if err := n.ReserveBackup(1, lower, upper.Links, 0); err == nil {
		t.Fatal("zero backup min accepted")
	}
	if err := n.ReserveBackup(1, lower, nil, 100); err == nil {
		t.Fatal("backup without primary links accepted")
	}
	mustOK(t, n.ReserveBackup(1, lower, upper.Links, 100))
	if err := n.ReserveBackup(1, lower, upper.Links, 100); err == nil {
		t.Fatal("duplicate backup accepted")
	}
}

func TestReleaseBackupRestoresSpare(t *testing.T) {
	n, upper, lower := testNet(t, 1000)
	mustOK(t, n.ReservePrimary(1, upper, 100))
	mustOK(t, n.ReserveBackup(1, lower, upper.Links, 100))
	if n.Spare(fwd(lower.Links[0])) != 100 {
		t.Fatal("spare not registered")
	}
	mustOK(t, n.ReleaseBackup(1, lower))
	for _, l := range lower.Links {
		if n.Spare(fwd(l)) != 0 {
			t.Fatalf("spare left on link %d", l)
		}
	}
	checkInv(t, n)
	if err := n.ReleaseBackup(1, lower); !errors.Is(err, ErrUnknownConn) {
		t.Fatalf("double release: %v", err)
	}
}

func TestActivateBackup(t *testing.T) {
	n, upper, lower := testNet(t, 1000)
	mustOK(t, n.ReservePrimary(1, upper, 100))
	mustOK(t, n.ReserveBackup(1, lower, upper.Links, 100))
	// Primary link fails; manager releases the primary and activates.
	n.SetFailed(upper.Links[1], true)
	mustOK(t, n.ReleasePrimary(1, upper))
	mustOK(t, n.ActivateBackup(1, lower))
	for _, l := range lower.Links {
		if n.Grant(fwd(l), 1) != 100 {
			t.Fatalf("activated grant on link %d = %v", l, n.Grant(fwd(l), 1))
		}
		if n.Spare(fwd(l)) != 0 {
			t.Fatalf("spare not released on link %d", l)
		}
	}
	checkInv(t, n)
	if err := n.ActivateBackup(1, lower); !errors.Is(err, ErrUnknownConn) {
		t.Fatalf("double activation: %v", err)
	}
}

func TestActivateBackupCapacityBlocked(t *testing.T) {
	n, upper, lower := testNet(t, 200)
	mustOK(t, n.ReservePrimary(1, upper, 100))
	mustOK(t, n.ReserveBackup(1, lower, upper.Links, 100))
	// Fill the lower route's physical capacity with grown primaries.
	mustOK(t, n.ReservePrimary(2, lower, 100))
	mustOK(t, n.AdjustPrimary(2, lower, 200)) // borrows the spare
	checkInv(t, n)
	if err := n.ActivateBackup(1, lower); !errors.Is(err, ErrCapacity) {
		t.Fatalf("err = %v (manager must squeeze first)", err)
	}
	// After squeezing conn 2 back to its minimum, activation succeeds.
	mustOK(t, n.AdjustPrimary(2, lower, 100))
	mustOK(t, n.ActivateBackup(1, lower))
	checkInv(t, n)
}

func TestPrimariesAndBackupsOnSorted(t *testing.T) {
	n, upper, lower := testNet(t, 10000)
	for id := channel.ConnID(5); id >= 1; id-- {
		mustOK(t, n.ReservePrimary(id, upper, 100))
		mustOK(t, n.ReserveBackup(id, lower, upper.Links, 100))
	}
	prim := n.PrimariesOn(fwd(upper.Links[0]))
	if len(prim) != 5 {
		t.Fatalf("primaries = %v", prim)
	}
	for i := 1; i < len(prim); i++ {
		if prim[i-1] >= prim[i] {
			t.Fatalf("not sorted: %v", prim)
		}
	}
	backs := n.BackupsOn(fwd(lower.Links[0]))
	if len(backs) != 5 {
		t.Fatalf("backups = %v", backs)
	}
	for i := 1; i < len(backs); i++ {
		if backs[i-1] >= backs[i] {
			t.Fatalf("not sorted: %v", backs)
		}
	}
}

// Property: random sequences of reserve/adjust/release/backup operations
// never violate the ledger invariants, regardless of individual op failures.
func TestQuickLedgerInvariants(t *testing.T) {
	f := func(seed uint64) bool {
		src := rng.New(seed)
		g, err := topology.Waxman(topology.WaxmanConfig{
			Nodes: 12, Alpha: 0.5, Beta: 0.4, EnsureConnected: true,
		}, src)
		if err != nil {
			return false
		}
		n, err := New(g, 500)
		if err != nil {
			return false
		}
		type live struct {
			route  routing.Path
			backup routing.Path
			hasB   bool
			grant  qos.Kbps
		}
		conns := map[channel.ConnID]*live{}
		nextID := channel.ConnID(1)
		// pick returns a deterministic pseudo-random live connection.
		pick := func() (channel.ConnID, *live) {
			if len(conns) == 0 {
				return 0, nil
			}
			ids := make([]channel.ConnID, 0, len(conns))
			for id := range conns {
				ids = append(ids, id)
			}
			sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
			id := ids[src.Intn(len(ids))]
			return id, conns[id]
		}
		for step := 0; step < 120; step++ {
			switch src.Intn(4) {
			case 0: // establish
				a := topology.NodeID(src.Intn(g.NumNodes()))
				b := topology.NodeID(src.Intn(g.NumNodes()))
				if a == b {
					continue
				}
				p, err := routing.ShortestHops(g, a, b, nil)
				if err != nil {
					continue
				}
				if n.ReservePrimary(nextID, p, 100) != nil {
					continue
				}
				c := &live{route: p, grant: 100}
				if bk, _, err := routing.BackupRoute(g, p, nil); err == nil {
					if n.ReserveBackup(nextID, bk, p.Links, 100) == nil {
						c.backup, c.hasB = bk, true
					}
				}
				conns[nextID] = c
				nextID++
			case 1: // adjust someone
				if id, c := pick(); c != nil {
					ng := qos.Kbps(100 + 50*src.Intn(9))
					if n.AdjustPrimary(id, c.route, ng) == nil {
						c.grant = ng
					}
				}
			case 2: // terminate someone
				if id, c := pick(); c != nil {
					if n.ReleasePrimary(id, c.route) != nil {
						return false
					}
					if c.hasB && n.ReleaseBackup(id, c.backup) != nil {
						return false
					}
					delete(conns, id)
				}
			case 3: // activate someone's backup
				id, c := pick()
				if c == nil || !c.hasB {
					break
				}
				// Squeeze every primary on the backup's links to its
				// minimum, then activate.
				for _, d := range c.backup.DirLinks(g) {
					for _, pid := range n.PrimariesOn(d) {
						if pc, ok := conns[pid]; ok {
							if n.AdjustPrimary(pid, pc.route, 100) == nil {
								pc.grant = 100
							}
						}
					}
				}
				if n.ReleasePrimary(id, c.route) != nil {
					return false
				}
				if n.ActivateBackup(id, c.backup) != nil {
					// Physically impossible even after squeeze: the
					// conn is dropped.
					if n.ReleaseBackup(id, c.backup) != nil {
						return false
					}
					delete(conns, id)
					break
				}
				c.route = c.backup
				c.backup = routing.Path{}
				c.hasB = false
				c.grant = 100
			}
			if n.CheckInvariants() != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestSetMultiplexing(t *testing.T) {
	n, upper, lower := testNet(t, 1000)
	if err := n.SetMultiplexing(false); err != nil {
		t.Fatal(err)
	}
	mustOK(t, n.ReservePrimary(1, upper, 100))
	mustOK(t, n.ReservePrimary(2, lower, 100))
	mustOK(t, n.ReserveBackup(1, lower, upper.Links, 100))
	mustOK(t, n.ReserveBackup(2, upper, lower.Links, 100))
	checkInv(t, n)
	// Without multiplexing, a second upper-primary backup on lower links
	// ADDS spare instead of sharing it.
	mustOK(t, n.ReservePrimary(3, upper, 100))
	mustOK(t, n.ReserveBackup(3, lower, upper.Links, 100))
	checkInv(t, n)
	if got := n.Spare(fwd(lower.Links[0])); got != 200 {
		t.Fatalf("no-mux spare = %v, want 200 (sum)", got)
	}
	// Flipping the mode with live backups is refused.
	if err := n.SetMultiplexing(true); err == nil {
		t.Fatal("mode change with live backups accepted")
	}
	mustOK(t, n.ReleaseBackup(1, lower))
	mustOK(t, n.ReleaseBackup(2, upper))
	mustOK(t, n.ReleaseBackup(3, lower))
	if err := n.SetMultiplexing(true); err != nil {
		t.Fatal(err)
	}
}

func TestForEachPrimaryOn(t *testing.T) {
	n, upper, _ := testNet(t, 10000)
	mustOK(t, n.ReservePrimary(1, upper, 100))
	mustOK(t, n.ReservePrimary(2, upper, 100))
	seen := map[channel.ConnID]bool{}
	n.ForEachPrimaryOn(fwd(upper.Links[0]), func(id channel.ConnID) { seen[id] = true })
	if len(seen) != 2 || !seen[1] || !seen[2] {
		t.Fatalf("seen = %v", seen)
	}
}

func TestDependabilityDeficit(t *testing.T) {
	n, upper, lower := testNet(t, 300)
	mustOK(t, n.ReservePrimary(1, upper, 100))
	mustOK(t, n.ReserveBackup(1, lower, upper.Links, 100))
	mustOK(t, n.ReservePrimary(2, lower, 100))
	if d := n.DependabilityDeficit(); len(d) != 0 {
		t.Fatalf("quiescent deficit: %v", d)
	}
	// Activate conn 1's backup: its minimum joins lower's minSum while
	// conn 2... has no backup, so spare on lower drops to 0 — still no
	// deficit. Force one instead: register a second backup on lower whose
	// primary overlaps conn 1's, then activate conn 1.
	mustOK(t, n.ReservePrimary(3, upper, 100))
	mustOK(t, n.ReserveBackup(3, lower, upper.Links, 100))
	n.SetFailed(upper.Links[0], true)
	mustOK(t, n.ReleasePrimary(1, upper))
	mustOK(t, n.ActivateBackup(1, lower))
	// lower links: minSum = 100 (conn2) + 100 (activated conn1) = 200;
	// spare still 100 for conn3's backup → 300 = capacity: no deficit yet.
	if d := n.DependabilityDeficit(); len(d) != 0 {
		t.Fatalf("deficit too early: %v", d)
	}
	// One more primary fills the link past the reserve rule.
	n.SetFailed(upper.Links[0], false)
	if err := n.ReservePrimary(4, lower, 100); err == nil {
		t.Fatal("admission should refuse: minima+spare would exceed capacity")
	}
	// Bypass admission legitimately via activation: conn 3 fails over too.
	n.SetFailed(upper.Links[1], true)
	mustOK(t, n.ReleasePrimary(3, upper))
	// Squeeze not needed (everyone at min); activation must succeed
	// physically (300 capacity, 200 granted, +100 fits).
	mustOK(t, n.ActivateBackup(3, lower))
	// Now lower minSum=300=capacity with zero spare: no deficit. The rule
	// is about minSum+spare, so create spare pressure: register a backup
	// for conn 2 (primary lower) over upper... upper.Links[1] failed;
	// repair first.
	n.SetFailed(upper.Links[1], false)
	mustOK(t, n.ReserveBackup(2, upper, lower.Links, 100))
	// Upper links: minSum=0, spare=100 → fine. Lower unchanged. Verify the
	// ledger still internally consistent and deficit-free.
	checkInv(t, n)
	if d := n.DependabilityDeficit(); len(d) != 0 {
		t.Fatalf("unexpected deficit: %v", d)
	}
}

func TestDependabilityDeficitAfterActivation(t *testing.T) {
	n, upper, lower := testNet(t, 200)
	g := n.Graph()
	// A: primary upper, backup lower (whole route).
	mustOK(t, n.ReservePrimary(1, upper, 100))
	mustOK(t, n.ReserveBackup(1, lower, upper.Links, 100))
	// B: primary lower at its minimum.
	mustOK(t, n.ReservePrimary(2, lower, 100))
	// C: primary 1→3 (the chord, disjoint from A's primary so the backups
	// may multiplex), backup 1→0→3 crossing lower's first link.
	l01, _ := g.LinkBetween(0, 1)
	l13, _ := g.LinkBetween(1, 3)
	l03, _ := g.LinkBetween(0, 3)
	cPrimary := routing.Path{Nodes: []topology.NodeID{1, 3}, Links: []topology.LinkID{l13}}
	cBackup := routing.Path{Nodes: []topology.NodeID{1, 0, 3}, Links: []topology.LinkID{l01, l03}}
	mustOK(t, n.ReservePrimary(3, cPrimary, 100))
	mustOK(t, n.ReserveBackup(3, cBackup, cPrimary.Links, 100))
	if d := n.DependabilityDeficit(); len(d) != 0 {
		t.Fatalf("quiescent deficit: %v", d)
	}
	// Upper fails; A activates onto lower. On l03 (forward): minima are
	// now A(100)+B(100) = 200 = capacity, while C's backup still counts
	// 100 spare there → deficit until protection is re-planned.
	n.SetFailed(upper.Links[1], true)
	mustOK(t, n.ReleasePrimary(1, upper))
	mustOK(t, n.ActivateBackup(1, lower))
	checkInv(t, n) // ledger stays consistent even in deficit
	deficit := n.DependabilityDeficit()
	found := false
	for _, d := range deficit {
		if d.Link() == l03 {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected deficit on link %d, got %v", l03, deficit)
	}
}
