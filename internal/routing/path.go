// Package routing implements route selection for real-time channels: plain
// shortest-path searches, Yen's k-shortest paths, the distributed
// bounded-flooding discovery with bandwidth allowances that the paper's
// network manager uses (§2.1.1, §3.1), and link-disjoint backup-route
// selection (totally disjoint when possible, maximally disjoint otherwise,
// per the paper's footnote 1).
package routing

import (
	"errors"
	"fmt"
	"strings"

	"drqos/internal/topology"
)

// ErrNoRoute is returned when no feasible route exists.
var ErrNoRoute = errors.New("routing: no feasible route")

// Path is a loop-free route: n nodes joined by n-1 links.
type Path struct {
	Nodes []topology.NodeID
	Links []topology.LinkID
}

// Hops returns the number of links in the path.
func (p Path) Hops() int { return len(p.Links) }

// Src returns the first node; it panics on an empty path.
func (p Path) Src() topology.NodeID { return p.Nodes[0] }

// Dst returns the last node; it panics on an empty path.
func (p Path) Dst() topology.NodeID { return p.Nodes[len(p.Nodes)-1] }

// String renders the path as "0 -> 3 -> 7".
func (p Path) String() string {
	parts := make([]string, len(p.Nodes))
	for i, n := range p.Nodes {
		parts[i] = fmt.Sprintf("%d", n)
	}
	return strings.Join(parts, " -> ")
}

// Validate checks structural consistency against a graph: consecutive nodes
// joined by the listed links, no repeated nodes.
func (p Path) Validate(g *topology.Graph) error {
	if len(p.Nodes) == 0 {
		return errors.New("routing: empty path")
	}
	if len(p.Links) != len(p.Nodes)-1 {
		return fmt.Errorf("routing: %d nodes but %d links", len(p.Nodes), len(p.Links))
	}
	seen := make(map[topology.NodeID]bool, len(p.Nodes))
	for _, n := range p.Nodes {
		if n < 0 || int(n) >= g.NumNodes() {
			return fmt.Errorf("routing: node %d out of range", n)
		}
		if seen[n] {
			return fmt.Errorf("routing: node %d repeated", n)
		}
		seen[n] = true
	}
	for i, l := range p.Links {
		link := g.Link(l)
		a, b := p.Nodes[i], p.Nodes[i+1]
		if !(link.A == a && link.B == b || link.A == b && link.B == a) {
			return fmt.Errorf("routing: link %d does not join %d-%d", l, a, b)
		}
	}
	return nil
}

// SharedLinks returns how many links p and q have in common.
func (p Path) SharedLinks(q Path) int {
	if len(p.Links) == 0 || len(q.Links) == 0 {
		return 0
	}
	set := make(map[topology.LinkID]bool, len(p.Links))
	for _, l := range p.Links {
		set[l] = true
	}
	var n int
	for _, l := range q.Links {
		if set[l] {
			n++
		}
	}
	return n
}

// LinkDisjoint reports whether p and q share no links.
func (p Path) LinkDisjoint(q Path) bool { return p.SharedLinks(q) == 0 }

// Equal reports whether two paths traverse identical node sequences.
func (p Path) Equal(q Path) bool {
	if len(p.Nodes) != len(q.Nodes) {
		return false
	}
	for i, n := range p.Nodes {
		if q.Nodes[i] != n {
			return false
		}
	}
	return true
}

// Clone returns a deep copy of the path.
func (p Path) Clone() Path {
	c := Path{
		Nodes: make([]topology.NodeID, len(p.Nodes)),
		Links: make([]topology.LinkID, len(p.Links)),
	}
	copy(c.Nodes, p.Nodes)
	copy(c.Links, p.Links)
	return c
}

// DirLinks returns the directed link IDs the path traverses, in order.
// Bandwidth reservations are per direction; use this whenever querying the
// resource ledger.
func (p Path) DirLinks(g *topology.Graph) []topology.DirLinkID {
	out := make([]topology.DirLinkID, len(p.Links))
	for i, l := range p.Links {
		out[i] = g.DirID(l, p.Nodes[i])
	}
	return out
}

// LinkFilter reports whether a physical link may be used by a search. A nil
// LinkFilter admits every link. Filters are direction-agnostic because they
// express physical conditions (failure, disjointness).
type LinkFilter func(topology.LinkID) bool

// LinkWeight returns the cost of traversing a link. Weights must be
// positive.
type LinkWeight func(topology.LinkID) float64

// DirCost returns a direction-dependent value (e.g. residual bandwidth) for
// traversing link l starting at node from.
type DirCost func(l topology.LinkID, from topology.NodeID) float64
