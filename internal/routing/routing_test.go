package routing

import (
	"errors"
	"testing"
	"testing/quick"

	"drqos/internal/rng"
	"drqos/internal/topology"
)

// grid builds a w×h grid graph; node (x,y) has ID y*w+x.
func grid(t *testing.T, w, h int) *topology.Graph {
	t.Helper()
	g := topology.NewGraph(w * h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			g.AddNode(topology.Point{X: float64(x), Y: float64(y)})
		}
	}
	id := func(x, y int) topology.NodeID { return topology.NodeID(y*w + x) }
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x+1 < w {
				if _, err := g.AddLink(id(x, y), id(x+1, y)); err != nil {
					t.Fatal(err)
				}
			}
			if y+1 < h {
				if _, err := g.AddLink(id(x, y), id(x, y+1)); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	return g
}

// line builds a path graph 0-1-2-...-(n-1).
func line(t *testing.T, n int) *topology.Graph {
	t.Helper()
	g := topology.NewGraph(n)
	for i := 0; i < n; i++ {
		g.AddNode(topology.Point{})
	}
	for i := 0; i < n-1; i++ {
		if _, err := g.AddLink(topology.NodeID(i), topology.NodeID(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestShortestHopsGrid(t *testing.T) {
	g := grid(t, 4, 4)
	p, err := ShortestHops(g, 0, 15, nil)
	if err != nil {
		t.Fatal(err)
	}
	if p.Hops() != 6 {
		t.Fatalf("hops = %d, want 6", p.Hops())
	}
	if err := p.Validate(g); err != nil {
		t.Fatal(err)
	}
	if p.Src() != 0 || p.Dst() != 15 {
		t.Fatalf("endpoints %d->%d", p.Src(), p.Dst())
	}
}

func TestShortestHopsSameNode(t *testing.T) {
	g := grid(t, 2, 2)
	p, err := ShortestHops(g, 1, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if p.Hops() != 0 || p.Src() != 1 {
		t.Fatalf("self path: %v", p)
	}
}

func TestShortestHopsNoRoute(t *testing.T) {
	g := topology.NewGraph(2)
	g.AddNode(topology.Point{})
	g.AddNode(topology.Point{})
	_, err := ShortestHops(g, 0, 1, nil)
	if !errors.Is(err, ErrNoRoute) {
		t.Fatalf("err = %v, want ErrNoRoute", err)
	}
}

func TestShortestHopsFilter(t *testing.T) {
	g := line(t, 3)
	blocked, _ := g.LinkBetween(1, 2)
	_, err := ShortestHops(g, 0, 2, func(l topology.LinkID) bool { return l != blocked })
	if !errors.Is(err, ErrNoRoute) {
		t.Fatalf("filter ignored: %v", err)
	}
}

func TestShortestHopsBadEndpoint(t *testing.T) {
	g := line(t, 2)
	if _, err := ShortestHops(g, 0, 9, nil); !errors.Is(err, topology.ErrNoSuchNode) {
		t.Fatalf("err = %v", err)
	}
}

func TestDijkstraPrefersCheapRoute(t *testing.T) {
	// Triangle: 0-1 expensive direct, 0-2-1 cheap.
	g := topology.NewGraph(3)
	for i := 0; i < 3; i++ {
		g.AddNode(topology.Point{})
	}
	direct, _ := g.AddLink(0, 1)
	l02, _ := g.AddLink(0, 2)
	l21, _ := g.AddLink(2, 1)
	w := func(l topology.LinkID) float64 {
		if l == direct {
			return 10
		}
		return 1
	}
	p, err := Dijkstra(g, 0, 1, w, nil)
	if err != nil {
		t.Fatal(err)
	}
	if p.Hops() != 2 || p.Links[0] != l02 || p.Links[1] != l21 {
		t.Fatalf("path = %v", p)
	}
}

func TestDijkstraNilWeightIsHops(t *testing.T) {
	g := grid(t, 3, 3)
	p, err := Dijkstra(g, 0, 8, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if p.Hops() != 4 {
		t.Fatalf("hops = %d", p.Hops())
	}
}

func TestWidestPath(t *testing.T) {
	// 0-1 thin direct link, 0-2-1 wide detour.
	g := topology.NewGraph(3)
	for i := 0; i < 3; i++ {
		g.AddNode(topology.Point{})
	}
	thin, _ := g.AddLink(0, 1)
	g.AddLink(0, 2)
	g.AddLink(2, 1)
	capFn := func(l topology.LinkID) float64 {
		if l == thin {
			return 1
		}
		return 100
	}
	p, width, err := WidestPath(g, 0, 1, capFn, nil)
	if err != nil {
		t.Fatal(err)
	}
	if width != 100 || p.Hops() != 2 {
		t.Fatalf("width = %v, hops = %d", width, p.Hops())
	}
}

func TestPathHelpers(t *testing.T) {
	g := line(t, 4)
	p, err := ShortestHops(g, 0, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	q := p.Clone()
	q.Nodes[0] = 99 // must not affect p
	if p.Nodes[0] != 0 {
		t.Fatal("Clone is shallow")
	}
	if p.String() != "0 -> 1 -> 2 -> 3" {
		t.Fatalf("String = %q", p.String())
	}
	if !p.Equal(p.Clone()) {
		t.Fatal("Equal on identical failed")
	}
	sub, err := ShortestHops(g, 0, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if p.Equal(sub) {
		t.Fatal("Equal on different lengths")
	}
	if got := p.SharedLinks(sub); got != 2 {
		t.Fatalf("SharedLinks = %d", got)
	}
	if p.LinkDisjoint(sub) {
		t.Fatal("LinkDisjoint false positive")
	}
}

func TestPathValidateCatchesCorruption(t *testing.T) {
	g := line(t, 3)
	p, _ := ShortestHops(g, 0, 2, nil)
	bad := p.Clone()
	bad.Links[0], bad.Links[1] = bad.Links[1], bad.Links[0]
	if err := bad.Validate(g); err == nil {
		t.Fatal("swapped links accepted")
	}
	loop := Path{Nodes: []topology.NodeID{0, 1, 0}, Links: p.Links[:2]}
	if err := loop.Validate(g); err == nil {
		t.Fatal("repeated node accepted")
	}
	if err := (Path{}).Validate(g); err == nil {
		t.Fatal("empty path accepted")
	}
}

func TestBoundedFloodFindsShortest(t *testing.T) {
	g := grid(t, 4, 4)
	alw := func(topology.LinkID, topology.NodeID) float64 { return 10 }
	cands, err := BoundedFlood(g, 0, 15, alw, FloodConfig{HopBound: 8, MinBandwidth: 1})
	if err != nil {
		t.Fatal(err)
	}
	if cands[0].Path.Hops() != 6 {
		t.Fatalf("first candidate hops = %d, want 6", cands[0].Path.Hops())
	}
	for _, c := range cands {
		if err := c.Path.Validate(g); err != nil {
			t.Fatalf("invalid candidate %v: %v", c.Path, err)
		}
		if c.Allowance != 10 {
			t.Fatalf("allowance = %v", c.Allowance)
		}
	}
}

func TestBoundedFloodRespectsHopBound(t *testing.T) {
	g := line(t, 6) // 0..5, needs 5 hops
	alw := func(topology.LinkID, topology.NodeID) float64 { return 10 }
	if _, err := BoundedFlood(g, 0, 5, alw, FloodConfig{HopBound: 4, MinBandwidth: 1}); !errors.Is(err, ErrNoRoute) {
		t.Fatalf("hop bound ignored: %v", err)
	}
	cands, err := BoundedFlood(g, 0, 5, alw, FloodConfig{HopBound: 5, MinBandwidth: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 1 || cands[0].Path.Hops() != 5 {
		t.Fatalf("cands = %v", cands)
	}
}

func TestBoundedFloodRespectsMinBandwidth(t *testing.T) {
	// Two routes 0→3: short one through a starved link, long wide one.
	g := topology.NewGraph(5)
	for i := 0; i < 5; i++ {
		g.AddNode(topology.Point{})
	}
	l01, _ := g.AddLink(0, 1)
	g.AddLink(1, 3)
	g.AddLink(0, 2)
	g.AddLink(2, 4)
	g.AddLink(4, 3)
	alw := func(l topology.LinkID, _ topology.NodeID) float64 {
		if l == l01 {
			return 0.5 // below the minimum
		}
		return 10
	}
	cands, err := BoundedFlood(g, 0, 3, alw, FloodConfig{HopBound: 6, MinBandwidth: 1})
	if err != nil {
		t.Fatal(err)
	}
	if cands[0].Path.Hops() != 3 {
		t.Fatalf("should avoid starved link, got %v", cands[0].Path)
	}
}

func TestBoundedFloodParetoAllowances(t *testing.T) {
	// Short narrow route (2 hops, bw 2) vs long wide route (3 hops, bw 10):
	// both are non-dominated and should be reported.
	g := topology.NewGraph(5)
	for i := 0; i < 5; i++ {
		g.AddNode(topology.Point{})
	}
	n01, _ := g.AddLink(0, 1)
	n13, _ := g.AddLink(1, 3)
	g.AddLink(0, 2)
	g.AddLink(2, 4)
	g.AddLink(4, 3)
	alw := func(l topology.LinkID, _ topology.NodeID) float64 {
		if l == n01 || l == n13 {
			return 2
		}
		return 10
	}
	cands, err := BoundedFlood(g, 0, 3, alw, FloodConfig{HopBound: 5, MinBandwidth: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 2 {
		t.Fatalf("want 2 Pareto candidates, got %d: %v", len(cands), cands)
	}
	if cands[0].Path.Hops() != 2 || cands[0].Allowance != 2 {
		t.Fatalf("first = %+v", cands[0])
	}
	if cands[1].Path.Hops() != 3 || cands[1].Allowance != 10 {
		t.Fatalf("second = %+v", cands[1])
	}
}

func TestBoundedFloodMaxCandidates(t *testing.T) {
	g := grid(t, 3, 3)
	alw := func(topology.LinkID, topology.NodeID) float64 { return 10 }
	cands, err := BoundedFlood(g, 0, 8, alw, FloodConfig{HopBound: 8, MinBandwidth: 1, MaxCandidates: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 1 {
		t.Fatalf("cap ignored: %d", len(cands))
	}
}

func TestBoundedFloodValidation(t *testing.T) {
	g := grid(t, 2, 2)
	alw := func(topology.LinkID, topology.NodeID) float64 { return 10 }
	if _, err := BoundedFlood(g, 0, 0, alw, FloodConfig{HopBound: 3, MinBandwidth: 1}); err == nil {
		t.Fatal("src==dst accepted")
	}
	if _, err := BoundedFlood(g, 0, 1, alw, FloodConfig{HopBound: 0, MinBandwidth: 1}); err == nil {
		t.Fatal("zero hop bound accepted")
	}
}

func TestBackupRouteFullyDisjoint(t *testing.T) {
	// Two parallel 2-hop routes between 0 and 3.
	g := topology.NewGraph(4)
	for i := 0; i < 4; i++ {
		g.AddNode(topology.Point{})
	}
	g.AddLink(0, 1)
	g.AddLink(1, 3)
	g.AddLink(0, 2)
	g.AddLink(2, 3)
	primary, err := ShortestHops(g, 0, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	backup, shared, err := BackupRoute(g, primary, nil)
	if err != nil {
		t.Fatal(err)
	}
	if shared != 0 || !backup.LinkDisjoint(primary) {
		t.Fatalf("backup %v shares %d links with primary %v", backup, shared, primary)
	}
}

func TestBackupRouteMaximallyDisjoint(t *testing.T) {
	// A bridge link that every route must cross: 0-1 is a bridge, then two
	// parallel routes 1→3.
	g := topology.NewGraph(4)
	for i := 0; i < 4; i++ {
		g.AddNode(topology.Point{})
	}
	bridge, _ := g.AddLink(0, 1)
	g.AddLink(1, 3)
	g.AddLink(1, 2)
	g.AddLink(2, 3)
	primary, err := ShortestHops(g, 0, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	backup, shared, err := BackupRoute(g, primary, nil)
	if err != nil {
		t.Fatal(err)
	}
	if shared != 1 {
		t.Fatalf("shared = %d, want exactly the bridge", shared)
	}
	found := false
	for _, l := range backup.Links {
		if l == bridge {
			found = true
		}
	}
	if !found {
		t.Fatal("backup does not use the bridge but claims shared=1")
	}
}

func TestBackupRouteNoRoute(t *testing.T) {
	g := line(t, 3) // only one route exists and it IS the primary
	primary, _ := ShortestHops(g, 0, 2, nil)
	// With a filter banning everything there is no backup at all.
	_, _, err := BackupRoute(g, primary, func(topology.LinkID) bool { return false })
	if err == nil {
		t.Fatal("impossible backup accepted")
	}
}

func TestBackupRouteEmptyPrimary(t *testing.T) {
	g := line(t, 2)
	if _, _, err := BackupRoute(g, Path{Nodes: []topology.NodeID{0}}, nil); err == nil {
		t.Fatal("primary without links accepted")
	}
}

func TestMostDisjointCandidate(t *testing.T) {
	g := topology.NewGraph(4)
	for i := 0; i < 4; i++ {
		g.AddNode(topology.Point{})
	}
	g.AddLink(0, 1)
	g.AddLink(1, 3)
	g.AddLink(0, 2)
	g.AddLink(2, 3)
	alw := func(topology.LinkID, topology.NodeID) float64 { return 10 }
	cands, err := BoundedFlood(g, 0, 3, alw, FloodConfig{HopBound: 4, MinBandwidth: 1})
	if err != nil {
		t.Fatal(err)
	}
	primary := cands[0].Path
	backup, err := MostDisjointCandidate(primary, cands)
	if err != nil {
		t.Fatal(err)
	}
	if !backup.Path.LinkDisjoint(primary) {
		t.Fatalf("backup %v not disjoint from %v", backup.Path, primary)
	}
	if _, err := MostDisjointCandidate(primary, cands[:1]); !errors.Is(err, ErrNoRoute) {
		t.Fatalf("single-candidate case: %v", err)
	}
}

func TestKShortest(t *testing.T) {
	g := grid(t, 3, 3)
	paths, err := KShortest(g, 0, 8, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no paths")
	}
	prevHops := 0
	seen := map[string]bool{}
	for _, p := range paths {
		if err := p.Validate(g); err != nil {
			t.Fatalf("invalid path %v: %v", p, err)
		}
		if p.Hops() < prevHops {
			t.Fatal("paths not in increasing hop order")
		}
		prevHops = p.Hops()
		if seen[p.String()] {
			t.Fatalf("duplicate path %v", p)
		}
		seen[p.String()] = true
	}
	// A 3x3 grid has 6 distinct 4-hop monotone routes 0→8.
	if len(paths) != 5 {
		t.Fatalf("got %d paths, want 5", len(paths))
	}
	for _, p := range paths {
		if p.Hops() != 4 {
			t.Fatalf("path %v has %d hops, want 4", p, p.Hops())
		}
	}
}

func TestKShortestExhaustsRoutes(t *testing.T) {
	g := line(t, 3) // exactly one route
	paths, err := KShortest(g, 0, 2, 10, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 1 {
		t.Fatalf("line graph yielded %d paths", len(paths))
	}
	if _, err := KShortest(g, 0, 2, 0, nil); err == nil {
		t.Fatal("k=0 accepted")
	}
}

// Property: on random connected graphs, flooding's best candidate matches
// BFS hop count, and every candidate validates and stays within the bound.
func TestQuickFloodAgreesWithBFS(t *testing.T) {
	f := func(seed uint64) bool {
		src := rng.New(seed)
		g, err := topology.Waxman(topology.WaxmanConfig{
			Nodes: 25, Alpha: 0.4, Beta: 0.3, EnsureConnected: true,
		}, src)
		if err != nil {
			return false
		}
		a := topology.NodeID(src.Intn(g.NumNodes()))
		b := topology.NodeID(src.Intn(g.NumNodes()))
		if a == b {
			return true
		}
		alw := func(topology.LinkID, topology.NodeID) float64 { return 10 }
		const bound = 12
		cands, err := BoundedFlood(g, a, b, alw, FloodConfig{HopBound: bound, MinBandwidth: 1})
		bfs, bfsErr := ShortestHops(g, a, b, nil)
		if bfsErr != nil || bfs.Hops() > bound {
			return errors.Is(err, ErrNoRoute)
		}
		if err != nil {
			return false
		}
		if cands[0].Path.Hops() != bfs.Hops() {
			return false
		}
		for _, c := range cands {
			if c.Path.Validate(g) != nil || c.Path.Hops() > bound {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: BackupRoute output always validates and is disjoint whenever a
// disjoint route exists (checked against exhaustive removal).
func TestQuickBackupValidates(t *testing.T) {
	f := func(seed uint64) bool {
		src := rng.New(seed)
		g, err := topology.Waxman(topology.WaxmanConfig{
			Nodes: 20, Alpha: 0.4, Beta: 0.3, EnsureConnected: true,
		}, src)
		if err != nil {
			return false
		}
		a := topology.NodeID(src.Intn(g.NumNodes()))
		b := topology.NodeID(src.Intn(g.NumNodes()))
		if a == b {
			return true
		}
		primary, err := ShortestHops(g, a, b, nil)
		if err != nil {
			return false
		}
		backup, shared, err := BackupRoute(g, primary, nil)
		if err != nil {
			return true // fine for pathological graphs
		}
		if backup.Validate(g) != nil {
			return false
		}
		return shared == backup.SharedLinks(primary)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBoundedFlood100(b *testing.B) {
	src := rng.New(1)
	g, err := topology.Waxman(topology.WaxmanConfig{
		Nodes: 100, Alpha: 0.33, Beta: 0.12, EnsureConnected: true,
	}, src)
	if err != nil {
		b.Fatal(err)
	}
	alw := func(topology.LinkID, topology.NodeID) float64 { return 10 }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = BoundedFlood(g, 0, topology.NodeID(g.NumNodes()-1), alw,
			FloodConfig{HopBound: 12, MinBandwidth: 1})
	}
}

func TestPathDirLinks(t *testing.T) {
	g := line(t, 4)
	fwd, err := ShortestHops(g, 0, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	rev, err := ShortestHops(g, 3, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	df := fwd.DirLinks(g)
	dr := rev.DirLinks(g)
	if len(df) != 3 || len(dr) != 3 {
		t.Fatalf("dir link counts %d/%d", len(df), len(dr))
	}
	// Same physical links, strictly opposite directions.
	for i := range df {
		if df[i].Link() != dr[len(dr)-1-i].Link() {
			t.Fatal("physical links disagree")
		}
		if df[i] == dr[len(dr)-1-i] {
			t.Fatal("opposite traversals produced the same directed id")
		}
	}
}
