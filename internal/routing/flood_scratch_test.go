package routing

import (
	"errors"
	"reflect"
	"testing"

	"drqos/internal/rng"
	"drqos/internal/topology"
)

// randomWaxman generates a connected Waxman graph for the property tests.
func randomWaxman(t testing.TB, nodes int, seed uint64) *topology.Graph {
	t.Helper()
	g, err := topology.Waxman(topology.WaxmanConfig{
		Nodes: nodes, Alpha: 0.6, Beta: 0.35, EnsureConnected: true,
	}, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// randomAllowance builds a deterministic per-directed-link residual
// bandwidth function with some links too thin to forward over.
func randomAllowance(g *topology.Graph, seed uint64) DirCost {
	src := rng.New(seed)
	res := make([]float64, g.NumDirLinks())
	for i := range res {
		res[i] = float64(src.Intn(1000)) // 0..999 Kbps, some below MinBandwidth
	}
	return func(l topology.LinkID, from topology.NodeID) float64 {
		return res[g.DirID(l, from)]
	}
}

// TestFloodScratchMatchesFresh is the scratch-reuse correctness property:
// one FloodScratch recycled across many floods — across different endpoint
// pairs, configs, AND different graphs — must return exactly what a fresh
// per-call allocation returns.
func TestFloodScratchMatchesFresh(t *testing.T) {
	scratch := NewFloodScratch()
	for trial := 0; trial < 30; trial++ {
		seed := uint64(trial + 1)
		nodes := 20 + (trial%4)*15 // cycle graph sizes to exercise resizing
		g := randomWaxman(t, nodes, seed)
		allowance := randomAllowance(g, seed*31)
		pick := rng.New(seed * 97)
		for pair := 0; pair < 8; pair++ {
			src := topology.NodeID(pick.Intn(g.NumNodes()))
			dst := topology.NodeID(pick.Intn(g.NumNodes()))
			if src == dst {
				continue
			}
			cfg := FloodConfig{
				HopBound:      2 + pick.Intn(10),
				MinBandwidth:  float64(pick.Intn(400)),
				MaxCandidates: pick.Intn(4), // 0 = uncapped
			}
			fresh, freshErr := BoundedFlood(g, src, dst, allowance, cfg)
			pooled, pooledErr := scratch.BoundedFlood(g, src, dst, allowance, cfg)
			if (freshErr == nil) != (pooledErr == nil) {
				t.Fatalf("trial %d pair %d: error mismatch: fresh=%v pooled=%v", trial, pair, freshErr, pooledErr)
			}
			if freshErr != nil {
				if freshErr.Error() != pooledErr.Error() {
					t.Fatalf("trial %d pair %d: different errors: %v vs %v", trial, pair, freshErr, pooledErr)
				}
				continue
			}
			if !reflect.DeepEqual(fresh, pooled) {
				t.Fatalf("trial %d pair %d (%d->%d, %+v): candidates diverge\nfresh:  %+v\npooled: %+v",
					trial, pair, src, dst, cfg, fresh, pooled)
			}
		}
	}
}

// TestFloodScratchResultsAreIndependent verifies the returned candidate
// paths do not alias scratch state: a later flood must not mutate an
// earlier flood's paths.
func TestFloodScratchResultsAreIndependent(t *testing.T) {
	g := randomWaxman(t, 40, 7)
	allowance := randomAllowance(g, 11)
	scratch := NewFloodScratch()
	cfg := FloodConfig{HopBound: 8, MinBandwidth: 1}
	first, err := scratch.BoundedFlood(g, 0, topology.NodeID(g.NumNodes()-1), allowance, cfg)
	if err != nil {
		t.Fatal(err)
	}
	snapshot := make([]Candidate, len(first))
	for i, c := range first {
		snapshot[i] = Candidate{Allowance: c.Allowance, Path: Path{
			Nodes: append([]topology.NodeID(nil), c.Path.Nodes...),
			Links: append([]topology.LinkID(nil), c.Path.Links...),
		}}
	}
	for i := 0; i < 20; i++ {
		src := topology.NodeID(i % g.NumNodes())
		dst := topology.NodeID((i*13 + 5) % g.NumNodes())
		if src == dst {
			continue
		}
		_, _ = scratch.BoundedFlood(g, src, dst, allowance, cfg)
	}
	if !reflect.DeepEqual(first, snapshot) {
		t.Fatal("later floods mutated earlier candidates")
	}
}

// BenchmarkBoundedFlood measures the flooding kernel on a paper-scale
// 100-node Waxman graph, comparing fresh per-call allocation against the
// pooled scratch the simulator uses. The interesting number is allocs/op.
func BenchmarkBoundedFlood(b *testing.B) {
	g := randomWaxman(b, 100, 3)
	allowance := randomAllowance(g, 5)
	cfg := FloodConfig{HopBound: 16, MinBandwidth: 100}
	pairs := make([][2]topology.NodeID, 64)
	pick := rng.New(9)
	for i := range pairs {
		src := topology.NodeID(pick.Intn(g.NumNodes()))
		dst := topology.NodeID(pick.Intn(g.NumNodes() - 1))
		if dst >= src {
			dst++
		}
		pairs[i] = [2]topology.NodeID{src, dst}
	}
	b.Run("fresh", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			p := pairs[i%len(pairs)]
			if _, err := BoundedFlood(g, p[0], p[1], allowance, cfg); err != nil && !errors.Is(err, ErrNoRoute) {
				b.Fatal(err)
			}
		}
	})
	b.Run("scratch", func(b *testing.B) {
		scratch := NewFloodScratch()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			p := pairs[i%len(pairs)]
			if _, err := scratch.BoundedFlood(g, p[0], p[1], allowance, cfg); err != nil && !errors.Is(err, ErrNoRoute) {
				b.Fatal(err)
			}
		}
	})
}
