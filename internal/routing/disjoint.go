package routing

import (
	"errors"
	"fmt"

	"drqos/internal/topology"
)

// BackupRoute finds a backup route for the given primary path: totally
// link-disjoint when one exists, otherwise maximally link-disjoint (the
// paper's footnote 1). filter restricts usable links (nil admits all); links
// of the primary are additionally admitted only in the maximally-disjoint
// fallback. It returns the route and the number of links shared with the
// primary.
func BackupRoute(g *topology.Graph, primary Path, filter LinkFilter) (Path, int, error) {
	if len(primary.Nodes) < 2 {
		return Path{}, 0, errors.New("routing: primary path has no links")
	}
	src, dst := primary.Src(), primary.Dst()
	onPrimary := make(map[topology.LinkID]bool, len(primary.Links))
	for _, l := range primary.Links {
		onPrimary[l] = true
	}
	disjointFilter := func(l topology.LinkID) bool {
		if onPrimary[l] {
			return false
		}
		return filter == nil || filter(l)
	}
	if p, err := ShortestHops(g, src, dst, disjointFilter); err == nil {
		return p, 0, nil
	} else if !errors.Is(err, ErrNoRoute) {
		return Path{}, 0, err
	}

	// No fully disjoint route: minimize shared links first, hops second, by
	// pricing a shared link above any loop-free detour.
	penalty := float64(g.NumNodes()) * 10
	weight := func(l topology.LinkID) float64 {
		if onPrimary[l] {
			return penalty
		}
		return 1
	}
	softFilter := func(l topology.LinkID) bool { return filter == nil || filter(l) }
	p, err := Dijkstra(g, src, dst, weight, softFilter)
	if err != nil {
		return Path{}, 0, fmt.Errorf("routing: no backup route %d -> %d: %w", src, dst, err)
	}
	shared := p.SharedLinks(primary)
	if shared == len(primary.Links) {
		// The "backup" covers every primary link (typically it IS the
		// primary): any primary failure also kills it, so it provides zero
		// protection and does not satisfy the dependability QoS.
		return Path{}, 0, fmt.Errorf("%w: only routes covering the whole primary remain", ErrNoRoute)
	}
	return p, shared, nil
}

// MostDisjointCandidate picks, from flooding candidates, the one sharing the
// fewest links with the primary (ties: fewer hops, then larger allowance).
// It skips candidates identical to the primary. It returns ErrNoRoute when
// no distinct candidate exists.
func MostDisjointCandidate(primary Path, cands []Candidate) (Candidate, error) {
	var best Candidate
	found := false
	bestShared := 0
	for _, c := range cands {
		if c.Path.Equal(primary) {
			continue
		}
		shared := c.Path.SharedLinks(primary)
		if !found {
			best, bestShared, found = c, shared, true
			continue
		}
		switch {
		case shared < bestShared:
			best, bestShared = c, shared
		case shared == bestShared && c.Path.Hops() < best.Path.Hops():
			best = c
		case shared == bestShared && c.Path.Hops() == best.Path.Hops() && c.Allowance > best.Allowance:
			best = c
		}
	}
	if !found {
		return Candidate{}, fmt.Errorf("%w: no backup candidate distinct from primary", ErrNoRoute)
	}
	return best, nil
}
