package routing

import (
	"fmt"
	"sort"

	"drqos/internal/topology"
)

// Candidate is one route discovered by bounded flooding, together with the
// bottleneck bandwidth allowance the request copy accumulated on its way to
// the destination (§3.1: "tries to forward it with its bandwidth allowance").
type Candidate struct {
	Path      Path
	Allowance float64
}

// FloodConfig parameterizes bounded-flooding route discovery [7].
type FloodConfig struct {
	// HopBound is the flooding bound: request copies exceeding it are
	// discarded (§3.1).
	HopBound int
	// MinBandwidth is the connection's minimum requirement; a node does not
	// forward a request over a link that cannot allocate it (§3.1).
	MinBandwidth float64
	// MaxCandidates caps the number of routes returned (the destination
	// stops waiting for more copies after this many useful arrivals).
	// Zero means no cap.
	MaxCandidates int
}

// label is the flooding state at one node: the best allowance seen for a
// given hop count, with back-pointers for route reconstruction.
type label struct {
	hops      int
	allowance float64
	prevNode  topology.NodeID
	prevLabel int // index into labels[prevNode]; -1 at the source
	link      topology.LinkID
}

// ref addresses one label during frontier expansion.
type ref struct {
	node topology.NodeID
	idx  int
}

// FloodScratch holds the per-simulation working state of BoundedFlood so
// that repeated establishments reuse one set of buffers instead of
// reallocating label tables and frontiers on every request. A scratch is
// NOT safe for concurrent use; give each goroutine (each simulation) its
// own. The zero value is ready to use.
//
// Reuse is transparent: only the returned Candidate paths are freshly
// allocated (callers retain them in connections), everything else is
// recycled across calls, including across calls on different graphs.
type FloodScratch struct {
	labels   [][]label
	touched  []topology.NodeID // nodes whose labels/best need resetting
	best     []float64         // best allowance of any label at the node; -1 = none
	frontier []ref
	next     []ref
	dstBest  map[topology.LinkID]float64 // per-entry-link best allowance at dst
}

// NewFloodScratch returns an empty scratch. Equivalent to new(FloodScratch).
func NewFloodScratch() *FloodScratch { return &FloodScratch{} }

// reset prepares the scratch for a graph with n nodes, clearing only the
// state the previous call dirtied.
func (s *FloodScratch) reset(n int) {
	if len(s.labels) != n {
		s.labels = make([][]label, n)
		s.best = make([]float64, n)
		for i := range s.best {
			s.best[i] = -1
		}
		s.touched = s.touched[:0]
	} else {
		for _, node := range s.touched {
			s.labels[node] = s.labels[node][:0]
			s.best[node] = -1
		}
		s.touched = s.touched[:0]
	}
	s.frontier = s.frontier[:0]
	s.next = s.next[:0]
	if s.dstBest == nil {
		s.dstBest = make(map[topology.LinkID]float64)
	} else {
		clear(s.dstBest)
	}
}

// BoundedFlood emulates the paper's distributed route discovery with a
// one-shot scratch; see FloodScratch.BoundedFlood for the reusable form the
// hot paths use.
func BoundedFlood(g *topology.Graph, src, dst topology.NodeID, allowance DirCost, cfg FloodConfig) ([]Candidate, error) {
	var s FloodScratch
	return s.BoundedFlood(g, src, dst, allowance, cfg)
}

// BoundedFlood emulates the paper's distributed route discovery: the request
// floods outward from src within HopBound hops; each copy carries the
// bottleneck of the residual bandwidths (allowance(link)) along its route;
// nodes discard copies that are dominated by an earlier copy (fewer-or-equal
// hops AND greater-or-equal allowance); the destination collects the
// surviving copies.
//
// The returned candidates are sorted by (hops asc, allowance desc), i.e. in
// the order request copies would plausibly arrive — the paper notes the
// first arrival "is likely to have traversed the shortest path" and becomes
// the primary route.
//
// Dominance bookkeeping: copies are expanded in hop order, so every label
// already recorded at a node has fewer-or-equal hops than an arriving copy;
// the per-node check therefore reduces to comparing against the best
// allowance seen at that node so far (best), an O(1) test instead of a scan
// over all labels. The destination is special: it collects copies arriving
// over different routes (§3.1, backup selection), so there a copy is only
// discarded against earlier copies that entered via the same link (dstBest).
func (s *FloodScratch) BoundedFlood(g *topology.Graph, src, dst topology.NodeID, allowance DirCost, cfg FloodConfig) ([]Candidate, error) {
	if err := checkEndpoints(g, src, dst); err != nil {
		return nil, err
	}
	if src == dst {
		return nil, fmt.Errorf("routing: flooding with src == dst (%d)", src)
	}
	if cfg.HopBound <= 0 {
		return nil, fmt.Errorf("routing: non-positive hop bound %d", cfg.HopBound)
	}
	s.reset(g.NumNodes())
	labels := s.labels
	labels[src] = append(labels[src], label{hops: 0, allowance: 1e300, prevNode: -1, prevLabel: -1, link: -1})
	s.best[src] = 1e300
	s.touched = append(s.touched, src)
	s.frontier = append(s.frontier, ref{node: src, idx: 0})

	for h := 0; h < cfg.HopBound && len(s.frontier) > 0; h++ {
		s.next = s.next[:0]
		for _, f := range s.frontier {
			cur := labels[f.node][f.idx]
			if cur.hops != h {
				continue
			}
			fNode, fIdx := f.node, f.idx
			g.ForEachNeighbor(f.node, func(peer topology.NodeID, link topology.LinkID) {
				if peer == cur.prevNode {
					return // never send a copy back where it came from
				}
				res := allowance(link, fNode)
				if res < cfg.MinBandwidth {
					return // not enough bandwidth to be allocated (§3.1)
				}
				alw := cur.allowance
				if res < alw {
					alw = res
				}
				// Dominance (§3.1): an earlier copy with a
				// greater-or-equal allowance wins (first arrival keeps
				// ties); all earlier copies have fewer-or-equal hops.
				if peer == dst {
					if prev, ok := s.dstBest[link]; ok && prev >= alw {
						return
					}
					s.dstBest[link] = alw
				} else if s.best[peer] >= alw {
					return
				}
				if len(labels[peer]) == 0 {
					s.touched = append(s.touched, peer)
				}
				labels[peer] = append(labels[peer], label{
					hops:      h + 1,
					allowance: alw,
					prevNode:  fNode,
					prevLabel: fIdx,
					link:      link,
				})
				if alw > s.best[peer] {
					s.best[peer] = alw
				}
				if peer != dst { // the destination does not forward
					s.next = append(s.next, ref{node: peer, idx: len(labels[peer]) - 1})
				}
			})
		}
		s.frontier, s.next = s.next, s.frontier
	}

	// Every surviving destination label is one arrived request copy.
	out := make([]Candidate, 0, len(labels[dst]))
	for i, l := range labels[dst] {
		out = append(out, Candidate{Path: rebuildLabelPath(labels, dst, i), Allowance: l.allowance})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%w: flooding %d -> %d within %d hops at %v bandwidth",
			ErrNoRoute, src, dst, cfg.HopBound, cfg.MinBandwidth)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Path.Hops() != out[j].Path.Hops() {
			return out[i].Path.Hops() < out[j].Path.Hops()
		}
		return out[i].Allowance > out[j].Allowance
	})
	if cfg.MaxCandidates > 0 && len(out) > cfg.MaxCandidates {
		out = out[:cfg.MaxCandidates]
	}
	return out, nil
}

// rebuildLabelPath materializes one destination label's route. The label's
// hop count is the path length, so both slices are allocated at their exact
// final size and filled back to front — no reversal pass, no intermediate
// reversed copies.
func rebuildLabelPath(labels [][]label, dst topology.NodeID, idx int) Path {
	hops := labels[dst][idx].hops
	p := Path{
		Nodes: make([]topology.NodeID, hops+1),
		Links: make([]topology.LinkID, hops),
	}
	node, i := dst, idx
	for k := hops; ; k-- {
		l := labels[node][i]
		p.Nodes[k] = node
		if l.prevNode < 0 {
			break
		}
		p.Links[k-1] = l.link
		node, i = l.prevNode, l.prevLabel
	}
	return p
}
