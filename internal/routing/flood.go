package routing

import (
	"fmt"
	"sort"

	"drqos/internal/topology"
)

// Candidate is one route discovered by bounded flooding, together with the
// bottleneck bandwidth allowance the request copy accumulated on its way to
// the destination (§3.1: "tries to forward it with its bandwidth allowance").
type Candidate struct {
	Path      Path
	Allowance float64
}

// FloodConfig parameterizes bounded-flooding route discovery [7].
type FloodConfig struct {
	// HopBound is the flooding bound: request copies exceeding it are
	// discarded (§3.1).
	HopBound int
	// MinBandwidth is the connection's minimum requirement; a node does not
	// forward a request over a link that cannot allocate it (§3.1).
	MinBandwidth float64
	// MaxCandidates caps the number of routes returned (the destination
	// stops waiting for more copies after this many useful arrivals).
	// Zero means no cap.
	MaxCandidates int
}

// label is the flooding state at one node: the best allowance seen for a
// given hop count, with back-pointers for route reconstruction.
type label struct {
	hops      int
	allowance float64
	prevNode  topology.NodeID
	prevLabel int // index into labels[prevNode]; -1 at the source
	link      topology.LinkID
}

// BoundedFlood emulates the paper's distributed route discovery: the request
// floods outward from src within HopBound hops; each copy carries the
// bottleneck of the residual bandwidths (allowance(link)) along its route;
// nodes discard copies that are dominated by an earlier copy (fewer-or-equal
// hops AND greater-or-equal allowance); the destination collects the
// surviving copies.
//
// The returned candidates are sorted by (hops asc, allowance desc), i.e. in
// the order request copies would plausibly arrive — the paper notes the
// first arrival "is likely to have traversed the shortest path" and becomes
// the primary route.
func BoundedFlood(g *topology.Graph, src, dst topology.NodeID, allowance DirCost, cfg FloodConfig) ([]Candidate, error) {
	if err := checkEndpoints(g, src, dst); err != nil {
		return nil, err
	}
	if src == dst {
		return nil, fmt.Errorf("routing: flooding with src == dst (%d)", src)
	}
	if cfg.HopBound <= 0 {
		return nil, fmt.Errorf("routing: non-positive hop bound %d", cfg.HopBound)
	}
	labels := make([][]label, g.NumNodes())
	labels[src] = []label{{hops: 0, allowance: 1e300, prevNode: -1, prevLabel: -1, link: -1}}

	type ref struct {
		node topology.NodeID
		idx  int
	}
	frontier := []ref{{node: src, idx: 0}}

	// At intermediate nodes a copy is discarded when an earlier copy was at
	// least as good (first arrival wins ties), which keeps the flood
	// tractable. The destination is special: it collects copies arriving
	// over different routes (§3.1, backup selection), so there a copy is
	// only discarded against earlier copies that entered via the same link.
	dominated := func(n topology.NodeID, hops int, alw float64, via topology.LinkID) bool {
		for _, l := range labels[n] {
			if n == dst && l.link != via {
				continue
			}
			if l.hops <= hops && l.allowance >= alw {
				return true
			}
		}
		return false
	}

	for h := 0; h < cfg.HopBound && len(frontier) > 0; h++ {
		var next []ref
		for _, f := range frontier {
			cur := labels[f.node][f.idx]
			if cur.hops != h {
				continue
			}
			fNode, fIdx := f.node, f.idx
			g.ForEachNeighbor(f.node, func(peer topology.NodeID, link topology.LinkID) {
				if peer == cur.prevNode {
					return // never send a copy back where it came from
				}
				res := allowance(link, fNode)
				if res < cfg.MinBandwidth {
					return // not enough bandwidth to be allocated (§3.1)
				}
				alw := cur.allowance
				if res < alw {
					alw = res
				}
				if dominated(peer, h+1, alw, link) {
					return // an earlier copy had a better allowance (§3.1)
				}
				labels[peer] = append(labels[peer], label{
					hops:      h + 1,
					allowance: alw,
					prevNode:  fNode,
					prevLabel: fIdx,
					link:      link,
				})
				if peer != dst { // the destination does not forward
					next = append(next, ref{node: peer, idx: len(labels[peer]) - 1})
				}
			})
		}
		frontier = next
	}

	// Every surviving destination label is one arrived request copy.
	var out []Candidate
	for i, l := range labels[dst] {
		p := rebuildLabelPath(labels, dst, i)
		out = append(out, Candidate{Path: p, Allowance: l.allowance})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%w: flooding %d -> %d within %d hops at %v bandwidth",
			ErrNoRoute, src, dst, cfg.HopBound, cfg.MinBandwidth)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Path.Hops() != out[j].Path.Hops() {
			return out[i].Path.Hops() < out[j].Path.Hops()
		}
		return out[i].Allowance > out[j].Allowance
	})
	if cfg.MaxCandidates > 0 && len(out) > cfg.MaxCandidates {
		out = out[:cfg.MaxCandidates]
	}
	return out, nil
}

func rebuildLabelPath(labels [][]label, dst topology.NodeID, idx int) Path {
	var revNodes []topology.NodeID
	var revLinks []topology.LinkID
	node, i := dst, idx
	for {
		l := labels[node][i]
		revNodes = append(revNodes, node)
		if l.prevNode < 0 {
			break
		}
		revLinks = append(revLinks, l.link)
		node, i = l.prevNode, l.prevLabel
	}
	p := Path{
		Nodes: make([]topology.NodeID, 0, len(revNodes)),
		Links: make([]topology.LinkID, 0, len(revLinks)),
	}
	for i := len(revNodes) - 1; i >= 0; i-- {
		p.Nodes = append(p.Nodes, revNodes[i])
	}
	for i := len(revLinks) - 1; i >= 0; i-- {
		p.Links = append(p.Links, revLinks[i])
	}
	return p
}
