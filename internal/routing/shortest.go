package routing

import (
	"container/heap"
	"fmt"

	"drqos/internal/topology"
)

// ShortestHops returns a minimum-hop path from src to dst using BFS over
// links admitted by filter (nil admits all). It returns ErrNoRoute when dst
// is unreachable.
func ShortestHops(g *topology.Graph, src, dst topology.NodeID, filter LinkFilter) (Path, error) {
	if err := checkEndpoints(g, src, dst); err != nil {
		return Path{}, err
	}
	if src == dst {
		return Path{Nodes: []topology.NodeID{src}}, nil
	}
	prevNode := make([]topology.NodeID, g.NumNodes())
	prevLink := make([]topology.LinkID, g.NumNodes())
	visited := make([]bool, g.NumNodes())
	visited[src] = true
	queue := []topology.NodeID{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		done := false
		g.ForEachNeighbor(u, func(peer topology.NodeID, link topology.LinkID) {
			if done || visited[peer] || (filter != nil && !filter(link)) {
				return
			}
			visited[peer] = true
			prevNode[peer] = u
			prevLink[peer] = link
			if peer == dst {
				done = true
				return
			}
			queue = append(queue, peer)
		})
		if done {
			return reconstruct(src, dst, prevNode, prevLink), nil
		}
	}
	return Path{}, fmt.Errorf("%w: %d -> %d", ErrNoRoute, src, dst)
}

func checkEndpoints(g *topology.Graph, src, dst topology.NodeID) error {
	if src < 0 || int(src) >= g.NumNodes() || dst < 0 || int(dst) >= g.NumNodes() {
		return fmt.Errorf("%w: endpoints %d, %d out of range", topology.ErrNoSuchNode, src, dst)
	}
	return nil
}

func reconstruct(src, dst topology.NodeID, prevNode []topology.NodeID, prevLink []topology.LinkID) Path {
	var revNodes []topology.NodeID
	var revLinks []topology.LinkID
	for at := dst; at != src; at = prevNode[at] {
		revNodes = append(revNodes, at)
		revLinks = append(revLinks, prevLink[at])
	}
	revNodes = append(revNodes, src)
	p := Path{
		Nodes: make([]topology.NodeID, 0, len(revNodes)),
		Links: make([]topology.LinkID, 0, len(revLinks)),
	}
	for i := len(revNodes) - 1; i >= 0; i-- {
		p.Nodes = append(p.Nodes, revNodes[i])
	}
	for i := len(revLinks) - 1; i >= 0; i-- {
		p.Links = append(p.Links, revLinks[i])
	}
	return p
}

// pqItem is a priority-queue entry for Dijkstra.
type pqItem struct {
	node topology.NodeID
	dist float64
}

type pq []pqItem

func (q pq) Len() int            { return len(q) }
func (q pq) Less(i, j int) bool  { return q[i].dist < q[j].dist }
func (q pq) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *pq) Push(x interface{}) { *q = append(*q, x.(pqItem)) }
func (q *pq) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// Dijkstra returns a minimum-weight path from src to dst. weight must return
// positive costs; filter (nil admits all) restricts usable links.
func Dijkstra(g *topology.Graph, src, dst topology.NodeID, weight LinkWeight, filter LinkFilter) (Path, error) {
	if err := checkEndpoints(g, src, dst); err != nil {
		return Path{}, err
	}
	if weight == nil {
		weight = func(topology.LinkID) float64 { return 1 }
	}
	if src == dst {
		return Path{Nodes: []topology.NodeID{src}}, nil
	}
	const unreached = -1.0
	dist := make([]float64, g.NumNodes())
	for i := range dist {
		dist[i] = unreached
	}
	prevNode := make([]topology.NodeID, g.NumNodes())
	prevLink := make([]topology.LinkID, g.NumNodes())
	settled := make([]bool, g.NumNodes())

	q := &pq{{node: src, dist: 0}}
	dist[src] = 0
	for q.Len() > 0 {
		it := heap.Pop(q).(pqItem)
		u := it.node
		if settled[u] {
			continue
		}
		settled[u] = true
		if u == dst {
			return reconstruct(src, dst, prevNode, prevLink), nil
		}
		g.ForEachNeighbor(u, func(peer topology.NodeID, link topology.LinkID) {
			if settled[peer] || (filter != nil && !filter(link)) {
				return
			}
			w := weight(link)
			if w <= 0 {
				panic(fmt.Sprintf("routing: non-positive weight %v on link %d", w, link))
			}
			nd := it.dist + w
			if dist[peer] == unreached || nd < dist[peer] {
				dist[peer] = nd
				prevNode[peer] = u
				prevLink[peer] = link
				heap.Push(q, pqItem{node: peer, dist: nd})
			}
		})
	}
	return Path{}, fmt.Errorf("%w: %d -> %d", ErrNoRoute, src, dst)
}

// WidestPath returns the path from src to dst maximizing the bottleneck
// value of capacity(link), breaking ties by hop count. It is used to find
// the route with the best bandwidth allowance.
func WidestPath(g *topology.Graph, src, dst topology.NodeID, capacity LinkWeight, filter LinkFilter) (Path, float64, error) {
	if err := checkEndpoints(g, src, dst); err != nil {
		return Path{}, 0, err
	}
	if src == dst {
		return Path{Nodes: []topology.NodeID{src}}, 0, nil
	}
	// Modified Dijkstra on (bottleneck desc, hops asc).
	width := make([]float64, g.NumNodes())
	hops := make([]int, g.NumNodes())
	prevNode := make([]topology.NodeID, g.NumNodes())
	prevLink := make([]topology.LinkID, g.NumNodes())
	settled := make([]bool, g.NumNodes())
	for i := range width {
		width[i] = -1
	}
	type wItem struct {
		node  topology.NodeID
		width float64
		hops  int
	}
	better := func(a, b wItem) bool {
		if a.width != b.width {
			return a.width > b.width
		}
		return a.hops < b.hops
	}
	// Simple O(V^2) selection keeps the code obvious; graphs are small.
	frontier := map[topology.NodeID]wItem{src: {node: src, width: 1e300, hops: 0}}
	width[src] = 1e300
	for len(frontier) > 0 {
		var best wItem
		first := true
		for _, it := range frontier {
			if first || better(it, best) {
				best, first = it, false
			}
		}
		delete(frontier, best.node)
		if settled[best.node] {
			continue
		}
		settled[best.node] = true
		if best.node == dst {
			return reconstruct(src, dst, prevNode, prevLink), best.width, nil
		}
		g.ForEachNeighbor(best.node, func(peer topology.NodeID, link topology.LinkID) {
			if settled[peer] || (filter != nil && !filter(link)) {
				return
			}
			c := capacity(link)
			if c <= 0 {
				return
			}
			w := best.width
			if c < w {
				w = c
			}
			cand := wItem{node: peer, width: w, hops: best.hops + 1}
			if width[peer] < 0 || better(cand, wItem{node: peer, width: width[peer], hops: hops[peer]}) {
				width[peer] = w
				hops[peer] = cand.hops
				prevNode[peer] = best.node
				prevLink[peer] = link
				frontier[peer] = cand
			}
		})
	}
	return Path{}, 0, fmt.Errorf("%w: %d -> %d", ErrNoRoute, src, dst)
}
