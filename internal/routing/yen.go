package routing

import (
	"errors"
	"fmt"
	"sort"

	"drqos/internal/topology"
)

// KShortest returns up to k loop-free minimum-hop paths from src to dst in
// increasing hop order (Yen's algorithm over the unit-weight metric). It is
// used by the sequential route-selection baseline (§2.1.1: "shortest routes
// are picked and checked first, sequentially one by one").
func KShortest(g *topology.Graph, src, dst topology.NodeID, k int, filter LinkFilter) ([]Path, error) {
	if k <= 0 {
		return nil, fmt.Errorf("routing: KShortest with k=%d", k)
	}
	first, err := ShortestHops(g, src, dst, filter)
	if err != nil {
		return nil, err
	}
	paths := []Path{first}
	var candidates []Path

	for len(paths) < k {
		prev := paths[len(paths)-1]
		// For each spur node on the previous path, search a deviation.
		for i := 0; i < len(prev.Nodes)-1; i++ {
			spur := prev.Nodes[i]
			rootNodes := prev.Nodes[:i+1]
			rootLinks := prev.Links[:i]

			banned := make(map[topology.LinkID]bool)
			for _, p := range paths {
				if sharesPrefix(p, rootNodes) && len(p.Links) > i {
					banned[p.Links[i]] = true
				}
			}
			rootSet := make(map[topology.NodeID]bool, i)
			for _, n := range rootNodes[:len(rootNodes)-1] {
				rootSet[n] = true
			}
			spurFilter := func(l topology.LinkID) bool {
				if banned[l] {
					return false
				}
				// Exclude links touching interior root nodes to keep the
				// whole path loop-free.
				lk := g.Link(l)
				if rootSet[lk.A] || rootSet[lk.B] {
					return false
				}
				return filter == nil || filter(l)
			}
			spurPath, err := ShortestHops(g, spur, dst, spurFilter)
			if errors.Is(err, ErrNoRoute) {
				continue
			}
			if err != nil {
				return nil, err
			}
			total := Path{
				Nodes: append(append([]topology.NodeID{}, rootNodes...), spurPath.Nodes[1:]...),
				Links: append(append([]topology.LinkID{}, rootLinks...), spurPath.Links...),
			}
			if containsPath(paths, total) || containsPath(candidates, total) {
				continue
			}
			candidates = append(candidates, total)
		}
		if len(candidates) == 0 {
			break
		}
		sort.Slice(candidates, func(a, b int) bool {
			return candidates[a].Hops() < candidates[b].Hops()
		})
		paths = append(paths, candidates[0])
		candidates = candidates[1:]
	}
	return paths, nil
}

func sharesPrefix(p Path, nodes []topology.NodeID) bool {
	if len(p.Nodes) < len(nodes) {
		return false
	}
	for i, n := range nodes {
		if p.Nodes[i] != n {
			return false
		}
	}
	return true
}

func containsPath(list []Path, p Path) bool {
	for _, q := range list {
		if q.Equal(p) {
			return true
		}
	}
	return false
}
