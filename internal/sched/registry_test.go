package sched

import (
	"errors"
	"testing"

	"drqos/internal/topology"
)

func route(dirs ...int) []topology.DirLinkID {
	out := make([]topology.DirLinkID, len(dirs))
	for i, d := range dirs {
		out[i] = topology.DirLinkID(d)
	}
	return out
}

func TestRegistryAdmitRoute(t *testing.T) {
	r, err := NewRegistry(10000)
	if err != nil {
		t.Fatal(err)
	}
	bound, err := r.AdmitRoute(route(0, 2, 4), videoFlow(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if bound <= 0 || bound > 1 {
		t.Fatalf("end-to-end bound %v", bound)
	}
	// A 3-hop route accumulates three per-link bounds.
	oneHop, err := r.AdmitRoute(route(6), videoFlow(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if oneHop >= bound {
		t.Fatalf("1-hop bound %v should be below 3-hop bound %v", oneHop, bound)
	}
	if len(r.Flows(0)) != 1 || len(r.Flows(6)) != 1 {
		t.Fatal("flows not registered")
	}
}

func TestRegistryBoundsGrowWithLoad(t *testing.T) {
	r, err := NewRegistry(10000)
	if err != nil {
		t.Fatal(err)
	}
	first, err := r.AdmitRoute(route(0), videoFlow(), 10)
	if err != nil {
		t.Fatal(err)
	}
	var last float64
	for i := 0; i < 15; i++ {
		last, err = r.AdmitRoute(route(0), videoFlow(), 10)
		if err != nil {
			t.Fatal(err)
		}
	}
	if last <= first {
		t.Fatalf("bound did not grow with load: %v -> %v", first, last)
	}
}

func TestRegistryRejectsTightEndToEnd(t *testing.T) {
	r, err := NewRegistry(10000)
	if err != nil {
		t.Fatal(err)
	}
	// A 5-hop route cannot fit an (effectively) sub-10ms end-to-end bound.
	if _, err := r.AdmitRoute(route(0, 1, 2, 3, 4), videoFlow(), 0.01); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v", err)
	}
	// Rejection is atomic: nothing was registered.
	for d := 0; d < 5; d++ {
		if len(r.Flows(topology.DirLinkID(d))) != 0 {
			t.Fatalf("partial admission left a flow on link %d", d)
		}
	}
}

func TestRegistryRejectsRateOverload(t *testing.T) {
	r, err := NewRegistry(1000)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.AdmitRoute(route(0), videoFlow(), 10); err != nil {
		t.Fatal(err)
	}
	if _, err := r.AdmitRoute(route(0), videoFlow(), 10); err != nil {
		t.Fatal(err)
	}
	// Third 500 Kb/s flow exceeds the 1 Mb/s link.
	if _, err := r.AdmitRoute(route(0), videoFlow(), 10); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v", err)
	}
}

func TestRegistryReleaseRoute(t *testing.T) {
	r, err := NewRegistry(10000)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.AdmitRoute(route(0, 1), videoFlow(), 10); err != nil {
		t.Fatal(err)
	}
	if err := r.ReleaseRoute(route(0, 1), videoFlow().Rate); err != nil {
		t.Fatal(err)
	}
	if len(r.Flows(0)) != 0 || len(r.Flows(1)) != 0 {
		t.Fatal("release left flows")
	}
	if err := r.ReleaseRoute(route(0), videoFlow().Rate); err == nil {
		t.Fatal("release of absent flow accepted")
	}
}

func TestRegistryVerifyNoMisses(t *testing.T) {
	r, err := NewRegistry(10000)
	if err != nil {
		t.Fatal(err)
	}
	// Load several routes sharing links, then verify every link's
	// worst-case trace meets its deadlines.
	for i := 0; i < 12; i++ {
		if _, err := r.AdmitRoute(route(i%3, 3+i%2), videoFlow(), 10); err != nil {
			t.Fatal(err)
		}
	}
	misses, err := r.Verify(3)
	if err != nil {
		t.Fatal(err)
	}
	if misses != 0 {
		t.Fatalf("admitted registry missed %d deadlines", misses)
	}
}

func TestRegistryValidation(t *testing.T) {
	if _, err := NewRegistry(0); err == nil {
		t.Fatal("zero capacity accepted")
	}
	r, _ := NewRegistry(1000)
	if _, err := r.AdmitRoute(nil, videoFlow(), 1); err == nil {
		t.Fatal("empty route accepted")
	}
	if _, err := r.AdmitRoute(route(0), videoFlow(), 0); err == nil {
		t.Fatal("zero bound accepted")
	}
	if _, err := r.AdmitRoute(route(0), FlowSpec{}, 1); err == nil {
		t.Fatal("invalid flow accepted")
	}
}
