package sched

import (
	"fmt"

	"drqos/internal/topology"
)

// Registry tracks the admitted packet-level flows of every directed link
// and composes per-link delay bounds into end-to-end guarantees: "to
// guarantee a given delivery deadline, the maximum network delay should be
// less than the difference between the issuance time and deadline of each
// packet" (§2.2) — the transformation between the deadline and bandwidth
// forms of performance QoS.
type Registry struct {
	capacity float64
	flows    map[topology.DirLinkID][]FlowSpec
}

// NewRegistry returns a registry for links of the given capacity (Kb/s).
func NewRegistry(capacity float64) (*Registry, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("sched: non-positive capacity %v", capacity)
	}
	return &Registry{
		capacity: capacity,
		flows:    make(map[topology.DirLinkID][]FlowSpec),
	}, nil
}

// Flows returns the admitted flows on directed link d.
func (r *Registry) Flows(d topology.DirLinkID) []FlowSpec {
	out := make([]FlowSpec, len(r.flows[d]))
	copy(out, r.flows[d])
	return out
}

// AdmitRoute admits one channel's flow on every directed link of its route,
// choosing per-link local deadlines: each link contributes its minimal
// feasible bound (plus 10% slack against later arrivals), and the sum is
// the channel's end-to-end delay bound. If the sum exceeds maxDelay, or any
// link is rate-saturated, nothing is admitted and ErrInfeasible is
// returned. On success it returns the end-to-end bound.
func (r *Registry) AdmitRoute(dirs []topology.DirLinkID, flow FlowSpec, maxDelay float64) (float64, error) {
	if err := flow.Validate(); err != nil {
		return 0, err
	}
	if maxDelay <= 0 {
		return 0, fmt.Errorf("sched: non-positive end-to-end bound %v", maxDelay)
	}
	if len(dirs) == 0 {
		return 0, fmt.Errorf("sched: empty route")
	}
	// First pass: find per-link minimal deadlines without mutating.
	locals := make([]float64, len(dirs))
	var total float64
	for i, d := range dirs {
		min, err := MinDeadline(r.flows[d], flow, r.capacity)
		if err != nil {
			return 0, fmt.Errorf("link %d: %w", d, err)
		}
		locals[i] = min * 1.1 // slack so later admissions do not sit on the edge
		total += locals[i]
	}
	if total > maxDelay {
		return 0, fmt.Errorf("%w: end-to-end bound %.4fs exceeds requested %.4fs",
			ErrInfeasible, total, maxDelay)
	}
	// Second pass: register with the chosen local deadlines.
	for i, d := range dirs {
		f := flow
		f.Deadline = locals[i]
		r.flows[d] = append(r.flows[d], f)
	}
	return total, nil
}

// ReleaseRoute removes the LAST admitted flow with the given rate from each
// listed link (flows are anonymous; channels release in reverse admission
// order in practice). It returns an error if a link has no matching flow.
func (r *Registry) ReleaseRoute(dirs []topology.DirLinkID, rate float64) error {
	for _, d := range dirs {
		fl := r.flows[d]
		idx := -1
		for i := len(fl) - 1; i >= 0; i-- {
			if fl[i].Rate == rate {
				idx = i
				break
			}
		}
		if idx < 0 {
			return fmt.Errorf("sched: no flow with rate %v on directed link %d", rate, d)
		}
		r.flows[d] = append(fl[:idx], fl[idx+1:]...)
	}
	return nil
}

// Verify replays every link's worst-case trace and reports the total number
// of deadline misses (0 for a correctly admitted registry).
func (r *Registry) Verify(horizon float64) (misses int, err error) {
	for d, flows := range r.flows {
		if len(flows) == 0 {
			continue
		}
		trace, err := GreedyTrace(flows, horizon)
		if err != nil {
			return 0, fmt.Errorf("link %d: %w", d, err)
		}
		res, err := Simulate(trace, r.capacity, horizon)
		if err != nil {
			return 0, fmt.Errorf("link %d: %w", d, err)
		}
		misses += res.Misses
	}
	return misses, nil
}
