package sched

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"drqos/internal/rng"
)

// videoFlow is the paper's 500 Kb/s high-quality stream with a modest
// burst and a 50 ms local delay bound.
func videoFlow() FlowSpec {
	return FlowSpec{Burst: 12, Rate: 500, MaxPacket: 12, Deadline: 0.05}
}

func TestFlowSpecValidate(t *testing.T) {
	ok := videoFlow()
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []FlowSpec{
		{Burst: 12, Rate: 0, MaxPacket: 12, Deadline: 0.05},
		{Burst: 4, Rate: 500, MaxPacket: 12, Deadline: 0.05},
		{Burst: 12, Rate: 500, MaxPacket: 0, Deadline: 0.05},
		{Burst: 12, Rate: 500, MaxPacket: 12, Deadline: 0},
	}
	for i, f := range bad {
		if err := f.Validate(); err == nil {
			t.Fatalf("bad flow %d accepted", i)
		}
	}
}

func TestCanAdmitRateBound(t *testing.T) {
	// 21 × 500 Kb/s on a 10 Mb/s link overloads by rate alone.
	flows := make([]FlowSpec, 21)
	for i := range flows {
		flows[i] = videoFlow()
	}
	if err := CanAdmit(flows, 10000); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v", err)
	}
	// 19 flows fit comfortably.
	if err := CanAdmit(flows[:19], 10000); err != nil {
		t.Fatal(err)
	}
}

func TestCanAdmitDeadlineBound(t *testing.T) {
	// Low rate but huge burst with a tight deadline: rate fits, demand
	// does not.
	tight := FlowSpec{Burst: 500, Rate: 100, MaxPacket: 12, Deadline: 0.01}
	if err := CanAdmit([]FlowSpec{tight}, 10000); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v (500Kb burst cannot drain in 10ms at 10Mb/s)", err)
	}
	relaxed := tight
	relaxed.Deadline = 0.1
	if err := CanAdmit([]FlowSpec{relaxed}, 10000); err != nil {
		t.Fatal(err)
	}
}

func TestCanAdmitValidatesInputs(t *testing.T) {
	if err := CanAdmit(nil, 0); err == nil {
		t.Fatal("zero capacity accepted")
	}
	if err := CanAdmit([]FlowSpec{{Rate: -1}}, 100); err == nil {
		t.Fatal("invalid flow accepted")
	}
}

func TestMinDeadline(t *testing.T) {
	existing := []FlowSpec{videoFlow(), videoFlow()}
	cand := FlowSpec{Burst: 100, Rate: 1000, MaxPacket: 12, Deadline: 1}
	d, err := MinDeadline(existing, cand, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if d <= 0 {
		t.Fatalf("deadline %v", d)
	}
	// The returned bound must itself be admissible, and 0.9× of it not.
	c := cand
	c.Deadline = d
	if err := CanAdmit(append(append([]FlowSpec{}, existing...), c), 10000); err != nil {
		t.Fatalf("returned deadline not admissible: %v", err)
	}
	c.Deadline = d * 0.5
	if err := CanAdmit(append(append([]FlowSpec{}, existing...), c), 10000); err == nil {
		t.Fatal("half the minimal deadline admissible — not minimal")
	}
	// Rate overload is reported as infeasible.
	hog := FlowSpec{Burst: 12, Rate: 20000, MaxPacket: 12, Deadline: 1}
	if _, err := MinDeadline(existing, hog, 10000); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v", err)
	}
}

func TestSimulateAdmittedSetMeetsDeadlines(t *testing.T) {
	// 18 video flows on a 10 Mb/s link pass the admission test; the
	// worst-case greedy trace must then meet every deadline.
	flows := make([]FlowSpec, 18)
	for i := range flows {
		flows[i] = videoFlow()
	}
	if err := CanAdmit(flows, 10000); err != nil {
		t.Fatal(err)
	}
	trace, err := GreedyTrace(flows, 5)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Simulate(trace, 10000, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Misses != 0 {
		t.Fatalf("admitted set missed %d deadlines (max lateness %v)", res.Misses, res.MaxLateness)
	}
	if res.Packets == 0 {
		t.Fatal("no packets simulated")
	}
	if res.Utilization <= 0 || res.Utilization > 1 {
		t.Fatalf("utilization %v", res.Utilization)
	}
}

func TestSimulateOverloadMissesDeadlines(t *testing.T) {
	// Rate-overloaded link must miss deadlines under the greedy trace.
	flows := make([]FlowSpec, 25)
	for i := range flows {
		flows[i] = videoFlow()
	}
	trace, err := GreedyTrace(flows, 5)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Simulate(trace, 10000, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Misses == 0 {
		t.Fatal("overloaded link missed nothing")
	}
	if res.MaxLateness <= 0 {
		t.Fatalf("max lateness %v on an overloaded link", res.MaxLateness)
	}
}

func TestSimulateValidation(t *testing.T) {
	if _, err := Simulate(nil, 0, 1); err == nil {
		t.Fatal("zero capacity accepted")
	}
	if _, err := Simulate(nil, 100, 0); err == nil {
		t.Fatal("zero horizon accepted")
	}
}

func TestSimulateEDFOrdering(t *testing.T) {
	// Two packets arrive together; the tighter deadline must go first.
	packets := []Packet{
		{Flow: 0, Arrival: 0, Deadline: 1.0, Size: 100},
		{Flow: 1, Arrival: 0, Deadline: 0.02, Size: 100},
	}
	res, err := Simulate(packets, 10000, 1)
	if err != nil {
		t.Fatal(err)
	}
	// 100Kb at 10Mb/s = 10ms each; EDF order meets both deadlines,
	// FIFO-by-flow order would miss flow 1's 20ms bound.
	if res.Misses != 0 {
		t.Fatalf("EDF missed %d (max lateness %v)", res.Misses, res.MaxLateness)
	}
}

func TestGreedyTraceShape(t *testing.T) {
	f := FlowSpec{Burst: 36, Rate: 120, MaxPacket: 12, Deadline: 0.1}
	trace, err := GreedyTrace([]FlowSpec{f}, 1)
	if err != nil {
		t.Fatal(err)
	}
	// 3 burst packets at t=0, then one every 0.1s through t=1.
	burst := 0
	for _, p := range trace {
		if p.Arrival == 0 {
			burst++
		}
		if p.Deadline < p.Arrival {
			t.Fatalf("deadline before arrival: %+v", p)
		}
	}
	if burst != 3 {
		t.Fatalf("burst packets = %d, want 3", burst)
	}
	if len(trace) != 3+10 {
		t.Fatalf("trace length = %d, want 13", len(trace))
	}
	if _, err := GreedyTrace([]FlowSpec{{Rate: -1}}, 1); err == nil {
		t.Fatal("invalid flow accepted")
	}
}

// Property: any randomly generated flow set that passes CanAdmit meets all
// deadlines in the worst-case simulation — the admission test is safe.
func TestQuickAdmissionIsSafe(t *testing.T) {
	f := func(seed uint64) bool {
		src := rng.New(seed)
		n := 1 + src.Intn(12)
		flows := make([]FlowSpec, n)
		for i := range flows {
			pkt := 4 + 12*src.Float64()
			flows[i] = FlowSpec{
				MaxPacket: pkt,
				Burst:     pkt * float64(1+src.Intn(4)),
				Rate:      100 + 400*src.Float64(),
				Deadline:  0.02 + 0.2*src.Float64(),
			}
		}
		if err := CanAdmit(flows, 10000); err != nil {
			return true // rejection is always safe
		}
		trace, err := GreedyTrace(flows, 3)
		if err != nil {
			return false
		}
		res, err := Simulate(trace, 10000, 3)
		if err != nil {
			return false
		}
		return res.Misses == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: utilization never exceeds 1 and lateness is finite.
func TestQuickSimulateSanity(t *testing.T) {
	f := func(seed uint64) bool {
		src := rng.New(seed)
		n := 1 + src.Intn(30)
		packets := make([]Packet, n)
		for i := range packets {
			packets[i] = Packet{
				Flow:     i % 4,
				Arrival:  src.Float64() * 2,
				Deadline: src.Float64() * 3,
				Size:     1 + src.Float64()*20,
			}
		}
		res, err := Simulate(packets, 5000, 3)
		if err != nil {
			return false
		}
		return res.Packets == n && res.Utilization <= 1+1e-9 && !math.IsInf(res.MaxLateness, 1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEDFSimulate(b *testing.B) {
	flows := make([]FlowSpec, 18)
	for i := range flows {
		flows[i] = videoFlow()
	}
	trace, err := GreedyTrace(flows, 5)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(trace, 10000, 5); err != nil {
			b.Fatal(err)
		}
	}
}
