// Package sched implements the run-time message-scheduling phase of a
// real-time channel (§2.1.1: "each link resource manager schedules messages
// belonging to different real-time channels to satisfy their respective
// timeliness requirements" [3]).
//
// Channels are modelled as (σ, ρ)-regulated sources — a token bucket with
// burst σ bits and sustained rate ρ Kb/s, the standard linear bounded
// arrival process of the real-time channel literature — each with a local
// delay bound d on the link. The link runs non-preemptive
// earliest-deadline-first. Admission uses the classical busy-period demand
// test evaluated at deadline epochs, with the non-preemption blocking term
// (one maximal packet of any other channel).
//
// This layer shows WHY the reservation ledger (package network) can treat
// "bandwidth" as the one fungible QoS currency: a channel reserving ρ Kb/s
// with bounded burstiness can be given a hard local delay bound, which
// composes into the end-to-end deadline the client contracted (§2, "one
// form of performance QoS can be transformed into another").
package sched

import (
	"errors"
	"fmt"
	"sort"
)

// ErrInfeasible reports an admission test failure.
var ErrInfeasible = errors.New("sched: delay bounds infeasible")

// FlowSpec describes one channel's traffic on a link.
type FlowSpec struct {
	// Burst is the token-bucket depth σ in kilobits.
	Burst float64
	// Rate is the sustained rate ρ in Kb/s.
	Rate float64
	// MaxPacket is the maximum packet size in kilobits.
	MaxPacket float64
	// Deadline is the local delay bound d in seconds.
	Deadline float64
}

// Validate checks the spec's domain.
func (f FlowSpec) Validate() error {
	switch {
	case f.Rate <= 0:
		return fmt.Errorf("sched: non-positive rate %v", f.Rate)
	case f.Burst < f.MaxPacket:
		return fmt.Errorf("sched: burst %v below max packet %v", f.Burst, f.MaxPacket)
	case f.MaxPacket <= 0:
		return fmt.Errorf("sched: non-positive packet size %v", f.MaxPacket)
	case f.Deadline <= 0:
		return fmt.Errorf("sched: non-positive deadline %v", f.Deadline)
	}
	return nil
}

// demand returns the maximum work (kilobits) with deadlines within an
// interval of length t that flow f can inject: σ + ρ·(t − d) for t ≥ d,
// else 0 — the standard (σ,ρ) demand-bound function.
func (f FlowSpec) demand(t float64) float64 {
	if t < f.Deadline {
		return 0
	}
	return f.Burst + f.Rate*(t-f.Deadline)
}

// CanAdmit checks whether the flow set is EDF-schedulable on a link of the
// given capacity (Kb/s): total rate must fit, and at every deadline epoch
// the demand bound plus the worst-case non-preemption blocking must not
// exceed the capacity's supply. It returns ErrInfeasible with the violated
// epoch when the test fails.
func CanAdmit(flows []FlowSpec, capacity float64) error {
	if capacity <= 0 {
		return fmt.Errorf("sched: non-positive capacity %v", capacity)
	}
	var totalRate, maxPacket float64
	for i, f := range flows {
		if err := f.Validate(); err != nil {
			return fmt.Errorf("flow %d: %w", i, err)
		}
		totalRate += f.Rate
		if f.MaxPacket > maxPacket {
			maxPacket = f.MaxPacket
		}
	}
	if totalRate > capacity {
		return fmt.Errorf("%w: total rate %v exceeds capacity %v", ErrInfeasible, totalRate, capacity)
	}
	// Demand test at each flow's deadline epoch and at the busy-period
	// bound. With Σρ ≤ C the demand-minus-supply gap is maximized at
	// deadline epochs, so checking them suffices.
	epochs := make([]float64, 0, len(flows))
	for _, f := range flows {
		epochs = append(epochs, f.Deadline)
	}
	sort.Float64s(epochs)
	for _, t := range epochs {
		var demand float64
		for _, f := range flows {
			demand += f.demand(t)
		}
		// Non-preemption: a just-started maximal packet of a longer-
		// deadline flow can block a shorter-deadline one.
		if demand+maxPacket > capacity*t {
			return fmt.Errorf("%w: demand %.3f + blocking %.3f exceeds supply %.3f at t=%v",
				ErrInfeasible, demand, maxPacket, capacity*t, t)
		}
	}
	return nil
}

// MinDeadline returns the smallest local delay bound that makes the flow
// set (with the candidate flow's deadline replaced) admissible, found by
// bisection. It returns ErrInfeasible if even a very large bound fails
// (rate overload).
func MinDeadline(existing []FlowSpec, candidate FlowSpec, capacity float64) (float64, error) {
	if err := candidate.Validate(); err != nil {
		return 0, err
	}
	try := func(d float64) bool {
		c := candidate
		c.Deadline = d
		return CanAdmit(append(append([]FlowSpec{}, existing...), c), capacity) == nil
	}
	hi := 1.0
	for ; hi < 1e6; hi *= 2 {
		if try(hi) {
			break
		}
	}
	if hi >= 1e6 {
		return 0, fmt.Errorf("%w: no deadline below 1e6s works", ErrInfeasible)
	}
	lo := 0.0
	for i := 0; i < 60; i++ {
		mid := (lo + hi) / 2
		if mid <= 0 {
			break
		}
		if try(mid) {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi, nil
}
