package sched

import (
	"container/heap"
	"fmt"
	"math"
	"sort"
)

// Packet is one message instance on the link.
type Packet struct {
	Flow     int
	Arrival  float64
	Deadline float64
	Size     float64 // kilobits
}

// packetHeap orders packets by absolute deadline (EDF), then arrival, then
// flow index for determinism.
type packetHeap []Packet

func (h packetHeap) Len() int { return len(h) }
func (h packetHeap) Less(i, j int) bool {
	if h[i].Deadline != h[j].Deadline {
		return h[i].Deadline < h[j].Deadline
	}
	if h[i].Arrival != h[j].Arrival {
		return h[i].Arrival < h[j].Arrival
	}
	return h[i].Flow < h[j].Flow
}
func (h packetHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *packetHeap) Push(x interface{}) { *h = append(*h, x.(Packet)) }
func (h *packetHeap) Pop() interface{} {
	old := *h
	n := len(old)
	p := old[n-1]
	*h = old[:n-1]
	return p
}

// SimResult summarizes a packet-level run.
type SimResult struct {
	// Packets is the number of packets transmitted.
	Packets int
	// Misses is the number of deadline misses.
	Misses int
	// MaxLateness is the worst completion−deadline over all packets
	// (negative when every deadline was met, with slack to spare).
	MaxLateness float64
	// Utilization is busy time / horizon.
	Utilization float64
}

// Simulate runs non-preemptive EDF over the given packet trace on a link
// of the given capacity (Kb/s) and reports deadline behaviour. The trace
// need not be sorted.
func Simulate(packets []Packet, capacity float64, horizon float64) (*SimResult, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("sched: non-positive capacity %v", capacity)
	}
	if horizon <= 0 {
		return nil, fmt.Errorf("sched: non-positive horizon %v", horizon)
	}
	// Sort arrivals ascending (stable order via heap fields).
	byArrival := append([]Packet{}, packets...)
	sortPackets(byArrival)

	res := &SimResult{MaxLateness: math.Inf(-1)}
	var ready packetHeap
	clock := 0.0
	busy := 0.0
	i := 0
	for i < len(byArrival) || ready.Len() > 0 {
		// Admit everything that has arrived by the clock.
		for i < len(byArrival) && byArrival[i].Arrival <= clock {
			heap.Push(&ready, byArrival[i])
			i++
		}
		if ready.Len() == 0 {
			if i >= len(byArrival) {
				break
			}
			clock = byArrival[i].Arrival
			continue
		}
		p := heap.Pop(&ready).(Packet)
		tx := p.Size / capacity
		clock += tx
		busy += tx
		lateness := clock - p.Deadline
		if lateness > res.MaxLateness {
			res.MaxLateness = lateness
		}
		if lateness > 1e-9 {
			res.Misses++
		}
		res.Packets++
	}
	if clock > horizon {
		horizon = clock
	}
	res.Utilization = busy / horizon
	return res, nil
}

func sortPackets(ps []Packet) {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].Arrival != ps[j].Arrival {
			return ps[i].Arrival < ps[j].Arrival
		}
		return ps[i].Flow < ps[j].Flow
	})
}

// GreedyTrace generates each flow's worst-case (σ,ρ) arrival pattern over
// the horizon: an initial back-to-back burst draining the bucket, then
// steady packets at rate ρ. Deadlines are arrival + flow deadline.
func GreedyTrace(flows []FlowSpec, horizon float64) ([]Packet, error) {
	var out []Packet
	for i, f := range flows {
		if err := f.Validate(); err != nil {
			return nil, fmt.Errorf("flow %d: %w", i, err)
		}
		// Burst: σ/maxPacket packets at t=0.
		nBurst := int(f.Burst / f.MaxPacket)
		for b := 0; b < nBurst; b++ {
			out = append(out, Packet{
				Flow: i, Arrival: 0, Deadline: f.Deadline, Size: f.MaxPacket,
			})
		}
		// Steady state: one max packet every MaxPacket/ρ seconds.
		period := f.MaxPacket / f.Rate
		for t := period; t <= horizon; t += period {
			out = append(out, Packet{
				Flow: i, Arrival: t, Deadline: t + f.Deadline, Size: f.MaxPacket,
			})
		}
	}
	return out, nil
}
