package manager

import (
	"testing"

	"drqos/internal/qos"
)

func TestAggregatesTrackLifecycle(t *testing.T) {
	m := mustMgr(t, diamond(t), Config{Capacity: 600})
	if m.AliveCount() != 0 || m.AverageBandwidth() != 0 {
		t.Fatal("zero state dirty")
	}
	r1, err := m.Establish(0, 5, qos.DefaultSpec())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := m.Establish(0, 5, qos.DefaultSpec())
	if err != nil {
		t.Fatal(err)
	}
	if m.AliveCount() != 2 {
		t.Fatalf("alive = %d", m.AliveCount())
	}
	if m.AliveIDAt(0) != r1.Conn.ID || m.AliveIDAt(1) != r2.Conn.ID {
		t.Fatal("AliveIDAt order wrong")
	}
	hist := m.LevelHistogram(nil)
	var total int
	for _, c := range hist {
		total += c
	}
	if total != 2 {
		t.Fatalf("histogram total = %d (%v)", total, hist)
	}
	want := (float64(r1.Conn.Bandwidth()) + float64(r2.Conn.Bandwidth())) / 2
	if got := m.AverageBandwidth(); got != want {
		t.Fatalf("avg = %v, want %v", got, want)
	}
	checkMgr(t, m) // aggregate cross-check is part of CheckInvariants

	if _, err := m.Terminate(r1.Conn.ID); err != nil {
		t.Fatal(err)
	}
	if m.AliveCount() != 1 || m.AliveIDAt(0) != r2.Conn.ID {
		t.Fatal("termination did not update alive list")
	}
	checkMgr(t, m)
}

func TestLevelHistogramReusesBuffer(t *testing.T) {
	m := mustMgr(t, diamond(t), Config{Capacity: 10000})
	if _, err := m.Establish(0, 5, qos.DefaultSpec()); err != nil {
		t.Fatal(err)
	}
	buf := make([]int, 0, 16)
	h1 := m.LevelHistogram(buf)
	h2 := m.LevelHistogram(h1)
	if &h1[0] != &h2[0] {
		t.Fatal("buffer not reused")
	}
}

func TestAggregatesAcrossFailure(t *testing.T) {
	m := mustMgr(t, diamond(t), Config{Capacity: 600, RequireBackup: true})
	rep, err := m.Establish(0, 5, qos.DefaultSpec())
	if err != nil {
		t.Fatal(err)
	}
	preAvg := m.AverageBandwidth()
	if preAvg != float64(rep.Conn.Bandwidth()) {
		t.Fatalf("avg %v vs conn %v", preAvg, rep.Conn.Bandwidth())
	}
	if _, err := m.FailLink(rep.Conn.Primary.Links[0]); err != nil {
		t.Fatal(err)
	}
	checkMgr(t, m)
	if m.AliveCount() != 1 {
		t.Fatalf("alive = %d after failover", m.AliveCount())
	}
	if got := m.AverageBandwidth(); got != float64(rep.Conn.Bandwidth()) {
		t.Fatalf("aggregate avg %v vs conn bandwidth %v", got, rep.Conn.Bandwidth())
	}
}
