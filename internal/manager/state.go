// Durable-state export and restore: the journal snapshot body is the
// manager's full replayable state — every alive connection with its routes
// and level, the failed-link set, the ID counter and the acceptance
// counters. Everything else the manager holds (the network ledger, the
// aggregates) is derived from these and rebuilt by Restore, then verified
// against first principles by CheckInvariants.
package manager

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"

	"drqos/internal/channel"
	"drqos/internal/qos"
	"drqos/internal/routing"
	"drqos/internal/topology"
)

// PathState is a serialized routing.Path.
type PathState struct {
	Nodes []int32
	Links []int32
}

func pathState(p routing.Path) PathState {
	ps := PathState{Nodes: make([]int32, len(p.Nodes)), Links: make([]int32, len(p.Links))}
	for i, n := range p.Nodes {
		ps.Nodes[i] = int32(n)
	}
	for i, l := range p.Links {
		ps.Links[i] = int32(l)
	}
	return ps
}

func (ps PathState) path() routing.Path {
	p := routing.Path{Nodes: make([]topology.NodeID, len(ps.Nodes)), Links: make([]topology.LinkID, len(ps.Links))}
	for i, n := range ps.Nodes {
		p.Nodes[i] = topology.NodeID(n)
	}
	for i, l := range ps.Links {
		p.Links[i] = topology.LinkID(l)
	}
	return p
}

// ConnState is the serializable state of one alive DR-connection.
type ConnState struct {
	ID                int64
	Src, Dst          int32
	Spec              qos.ElasticSpec
	Level             int32
	FailedOver        bool
	Primary           PathState
	HasBackup         bool
	Backup            PathState
	SharedWithPrimary int32
}

// State is the manager's full durable state. Conns are ordered by
// ascending ID; FailedLinks ascending.
type State struct {
	NextID      int64
	Requests    int64
	Rejects     int64
	FailedLinks []int32
	Conns       []ConnState
}

// ExportState captures the manager's current durable state. The manager is
// single-threaded, so the caller must hold the actor loop (the server
// exports inside a command).
func (m *Manager) ExportState() *State {
	st := &State{
		NextID:   int64(m.nextID),
		Requests: m.requests,
		Rejects:  m.rejects,
	}
	for l := 0; l < m.g.NumLinks(); l++ {
		if m.net.Failed(topology.LinkID(l)) {
			st.FailedLinks = append(st.FailedLinks, int32(l))
		}
	}
	for _, id := range m.alive {
		c := m.conns[id]
		cs := ConnState{
			ID:                int64(c.ID),
			Src:               int32(c.Src),
			Dst:               int32(c.Dst),
			Spec:              c.Spec,
			Level:             int32(c.Level),
			FailedOver:        c.State() == channel.StateFailedOver,
			Primary:           pathState(c.Primary),
			HasBackup:         c.HasBackup,
			SharedWithPrimary: int32(c.SharedWithPrimary),
		}
		if c.HasBackup {
			cs.Backup = pathState(c.Backup)
		}
		st.Conns = append(st.Conns, cs)
	}
	return st
}

// Config returns the manager's (defaults-applied) configuration, so the
// embedding service can rebuild an equivalent manager during recovery.
func (m *Manager) Config() Config { return m.cfg }

// Restore rebuilds a Manager from exported state: connections are
// re-reserved in ascending ID order at their minima, grown to their
// recorded levels, backups re-registered (bypassing re-admission — the
// original run admitted them; post-failover states may carry a
// dependability deficit that would fail a fresh check), and the failed-link
// set re-marked. The rebuilt manager passes a full CheckInvariants audit
// before being returned.
func Restore(g *topology.Graph, cfg Config, st *State) (*Manager, error) {
	m, err := New(g, cfg)
	if err != nil {
		return nil, err
	}
	var prev int64
	for i := range st.Conns {
		cs := &st.Conns[i]
		if cs.ID <= prev && i > 0 || cs.ID <= 0 {
			return nil, fmt.Errorf("manager: restore: conn IDs not ascending at index %d (id %d)", i, cs.ID)
		}
		prev = cs.ID
		if cs.ID >= st.NextID {
			return nil, fmt.Errorf("manager: restore: conn %d at or beyond NextID %d", cs.ID, st.NextID)
		}
		if err := cs.Spec.Validate(); err != nil {
			return nil, fmt.Errorf("manager: restore: conn %d: %w", cs.ID, err)
		}
		if cs.Level < 0 || int(cs.Level) >= cs.Spec.States() {
			return nil, fmt.Errorf("manager: restore: conn %d level %d outside [0,%d)", cs.ID, cs.Level, cs.Spec.States())
		}
		id := channel.ConnID(cs.ID)
		primary := cs.Primary.path()
		if err := primary.Validate(g); err != nil {
			return nil, fmt.Errorf("manager: restore: conn %d primary: %w", cs.ID, err)
		}
		if err := m.net.ReservePrimary(id, primary, cs.Spec.Min); err != nil {
			return nil, fmt.Errorf("manager: restore: conn %d primary reservation: %w", cs.ID, err)
		}
		if cs.Level > 0 {
			if err := m.net.AdjustPrimary(id, primary, cs.Spec.Bandwidth(int(cs.Level))); err != nil {
				return nil, fmt.Errorf("manager: restore: conn %d grow to level %d: %w", cs.ID, cs.Level, err)
			}
		}
		conn := channel.RestoreConn(id, topology.NodeID(cs.Src), topology.NodeID(cs.Dst),
			cs.Spec, primary, int(cs.Level), cs.FailedOver)
		if cs.HasBackup {
			backup := cs.Backup.path()
			if err := backup.Validate(g); err != nil {
				return nil, fmt.Errorf("manager: restore: conn %d backup: %w", cs.ID, err)
			}
			if err := m.net.RestoreBackup(id, backup, primary.Links, cs.Spec.Min); err != nil {
				return nil, fmt.Errorf("manager: restore: conn %d backup registration: %w", cs.ID, err)
			}
			if err := conn.AttachBackup(backup, int(cs.SharedWithPrimary)); err != nil {
				return nil, fmt.Errorf("manager: restore: conn %d: %w", cs.ID, err)
			}
		}
		m.conns[id] = conn
		if err := m.trackAdd(conn); err != nil {
			return nil, fmt.Errorf("manager: restore: conn %d: %w", cs.ID, err)
		}
	}
	for _, l := range st.FailedLinks {
		if l < 0 || int(l) >= g.NumLinks() {
			return nil, fmt.Errorf("manager: restore: failed link %d out of range", l)
		}
		m.net.SetFailed(topology.LinkID(l), true)
	}
	m.nextID = channel.ConnID(st.NextID)
	m.requests = st.Requests
	m.rejects = st.Rejects
	if err := m.CheckInvariants(); err != nil {
		return nil, fmt.Errorf("manager: restore: rebuilt state fails audit: %w", err)
	}
	return m, nil
}

// Binary state encoding. Deterministic: the same manager state always
// produces the same bytes, so Fingerprint doubles as a bit-identity check
// between two managers. Little-endian fixed-width fields throughout.

const (
	stateMagic   = 0x53515244 // "DRQS"
	stateVersion = 1
)

func appendPath(buf []byte, ps PathState) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(ps.Nodes)))
	for _, n := range ps.Nodes {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(n))
	}
	for _, l := range ps.Links {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(l))
	}
	return buf
}

// MarshalBinary encodes the state as the journal snapshot body.
func (st *State) MarshalBinary() []byte {
	buf := make([]byte, 0, 64+len(st.Conns)*96)
	buf = binary.LittleEndian.AppendUint32(buf, stateMagic)
	buf = binary.LittleEndian.AppendUint32(buf, stateVersion)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(st.NextID))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(st.Requests))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(st.Rejects))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(st.FailedLinks)))
	for _, l := range st.FailedLinks {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(l))
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(st.Conns)))
	for i := range st.Conns {
		cs := &st.Conns[i]
		buf = binary.LittleEndian.AppendUint64(buf, uint64(cs.ID))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(cs.Src))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(cs.Dst))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(cs.Spec.Min))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(cs.Spec.Max))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(cs.Spec.Increment))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(cs.Spec.Utility))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(cs.Level))
		var flags byte
		if cs.FailedOver {
			flags |= 1
		}
		if cs.HasBackup {
			flags |= 2
		}
		buf = append(buf, flags)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(cs.SharedWithPrimary))
		buf = appendPath(buf, cs.Primary)
		if cs.HasBackup {
			buf = appendPath(buf, cs.Backup)
		}
	}
	return buf
}

// stateReader is a cursor over an encoded state body with sticky errors.
type stateReader struct {
	data []byte
	off  int
	err  error
}

func (r *stateReader) u32() uint32 {
	if r.err != nil {
		return 0
	}
	if r.off+4 > len(r.data) {
		r.err = fmt.Errorf("manager: state body truncated at offset %d", r.off)
		return 0
	}
	v := binary.LittleEndian.Uint32(r.data[r.off:])
	r.off += 4
	return v
}

func (r *stateReader) u64() uint64 {
	if r.err != nil {
		return 0
	}
	if r.off+8 > len(r.data) {
		r.err = fmt.Errorf("manager: state body truncated at offset %d", r.off)
		return 0
	}
	v := binary.LittleEndian.Uint64(r.data[r.off:])
	r.off += 8
	return v
}

func (r *stateReader) byte() byte {
	if r.err != nil {
		return 0
	}
	if r.off >= len(r.data) {
		r.err = fmt.Errorf("manager: state body truncated at offset %d", r.off)
		return 0
	}
	b := r.data[r.off]
	r.off++
	return b
}

// maxStatePath bounds a decoded path length; real routes are dozens of
// hops at most, so anything larger is a corrupt or hostile body.
const maxStatePath = 1 << 16

func (r *stateReader) path() PathState {
	n := r.u32()
	if r.err == nil && n > maxStatePath {
		r.err = fmt.Errorf("manager: state body declares %d-node path", n)
	}
	if r.err != nil {
		return PathState{}
	}
	ps := PathState{Nodes: make([]int32, n)}
	if n > 0 {
		ps.Links = make([]int32, n-1)
	}
	for i := range ps.Nodes {
		ps.Nodes[i] = int32(r.u32())
	}
	for i := range ps.Links {
		ps.Links[i] = int32(r.u32())
	}
	return ps
}

// UnmarshalState decodes a snapshot body produced by MarshalBinary.
func UnmarshalState(body []byte) (*State, error) {
	r := &stateReader{data: body}
	if magic := r.u32(); r.err == nil && magic != stateMagic {
		return nil, fmt.Errorf("manager: state body magic %08x, want %08x", magic, stateMagic)
	}
	if v := r.u32(); r.err == nil && v != stateVersion {
		return nil, fmt.Errorf("manager: state body version %d, this build reads %d", v, stateVersion)
	}
	st := &State{
		NextID:   int64(r.u64()),
		Requests: int64(r.u64()),
		Rejects:  int64(r.u64()),
	}
	nFailed := r.u32()
	if r.err == nil && nFailed > maxStatePath {
		return nil, fmt.Errorf("manager: state body declares %d failed links", nFailed)
	}
	for i := uint32(0); i < nFailed && r.err == nil; i++ {
		st.FailedLinks = append(st.FailedLinks, int32(r.u32()))
	}
	nConns := r.u32()
	for i := uint32(0); i < nConns && r.err == nil; i++ {
		cs := ConnState{
			ID:  int64(r.u64()),
			Src: int32(r.u32()),
			Dst: int32(r.u32()),
			Spec: qos.ElasticSpec{
				Min:       qos.Kbps(r.u64()),
				Max:       qos.Kbps(r.u64()),
				Increment: qos.Kbps(r.u64()),
			},
		}
		cs.Spec.Utility = math.Float64frombits(r.u64())
		cs.Level = int32(r.u32())
		flags := r.byte()
		cs.FailedOver = flags&1 != 0
		cs.HasBackup = flags&2 != 0
		cs.SharedWithPrimary = int32(r.u32())
		cs.Primary = r.path()
		if cs.HasBackup {
			cs.Backup = r.path()
		}
		st.Conns = append(st.Conns, cs)
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.off != len(body) {
		return nil, fmt.Errorf("manager: state body has %d trailing bytes", len(body)-r.off)
	}
	return st, nil
}

// Fingerprint returns a hex digest of the canonical state encoding. Two
// managers with equal fingerprints hold bit-identical durable state: same
// alive set, routes, levels, failed links and counters.
func (st *State) Fingerprint() string {
	sum := sha256.Sum256(st.MarshalBinary())
	return hex.EncodeToString(sum[:])
}
