package manager

import (
	"fmt"

	"drqos/internal/channel"
	"drqos/internal/routing"
	"drqos/internal/topology"
)

// Terminate releases a DR-connection normally. The channels that shared
// links with it may grow into the freed capacity (§3.1: "the primary
// channels that have shared links with this terminating connection can now
// reserve more resources").
func (m *Manager) Terminate(id channel.ConnID) (rep *TerminationReport, err error) {
	defer tagViolation(&err, "terminate")
	c := m.conns[id]
	if c == nil || !c.Alive() {
		return nil, fmt.Errorf("manager: terminate unknown or dead conn %d", id)
	}
	affected := m.sharersOf(c)
	before := m.levelSnapshot(affected)

	region := m.resetRegion()
	for _, d := range c.Primary.DirLinks(m.g) {
		region[d] = true
	}
	if err := m.net.ReleasePrimary(id, c.Primary); err != nil {
		return nil, wrapViolation(err, "release primary of conn %d", id)
	}
	if c.HasBackup {
		if err := m.net.ReleaseBackup(id, c.Backup); err != nil {
			return nil, wrapViolation(err, "release backup of conn %d", id)
		}
	}
	if err := m.trackRemove(c); err != nil {
		return nil, err
	}
	if err := c.Close(); err != nil {
		return nil, wrapViolation(err, "close conn %d", id)
	}
	delete(m.conns, id)

	if err := m.redistribute(region); err != nil {
		return nil, err
	}
	return &TerminationReport{
		Affected: affected,
		Changes:  m.levelChanges(before),
	}, nil
}

// sharersOf lists alive connections (other than c) whose primary shares at
// least one link with c's primary.
func (m *Manager) sharersOf(c *channel.Conn) []channel.ConnID {
	set := make(map[channel.ConnID]bool)
	for _, d := range c.Primary.DirLinks(m.g) {
		for _, id := range m.net.PrimariesOn(d) {
			if id != c.ID {
				set[id] = true
			}
		}
	}
	return setToSorted(set)
}

// FailLink injects a failure of link l (§3.1): every DR-connection whose
// primary traverses l activates its backup; primaries sharing links with the
// activated backups retreat to their minima; remaining extras are then
// redistributed. Connections without a usable backup are dropped.
// Connections whose BACKUP traversed l lose protection and try to
// re-establish a backup elsewhere.
func (m *Manager) FailLink(l topology.LinkID) (rep *FailureReport, err error) {
	defer tagViolation(&err, "fail_link")
	if int(l) < 0 || int(l) >= m.g.NumLinks() {
		return nil, fmt.Errorf("manager: no such link %d", l)
	}
	if m.net.Failed(l) {
		return nil, fmt.Errorf("manager: link %d already failed", l)
	}
	m.net.SetFailed(l, true)

	// Classify the affected connections before mutating.
	var victims []*channel.Conn    // primary crosses l
	var backupLost []*channel.Conn // backup crosses l, primary intact
	for _, id := range m.AliveIDs() {
		c := m.conns[id]
		switch {
		case c.UsesLink(l):
			victims = append(victims, c)
		case c.BackupUsesLink(l):
			backupLost = append(backupLost, c)
		}
	}

	report := &FailureReport{}
	region := m.resetRegion()

	// The directed links where backups will activate: primaries there must
	// retreat first so the reclaimed spare is actually free (§3.1).
	victimSet := make(map[channel.ConnID]bool, len(victims))
	activationLinks := make(map[topology.DirLinkID]bool)
	for _, v := range victims {
		victimSet[v.ID] = true
		if v.HasBackup && !v.BackupUsesLink(l) {
			for _, bd := range v.Backup.DirLinks(m.g) {
				activationLinks[bd] = true
			}
		}
	}

	// The populations this failure can move: channels on the activation
	// links (to be squeezed, then possibly re-grown) and channels sharing
	// links with the victims' released primaries (they grow afterwards).
	// Victims themselves transition out of the chain.
	affectedSet := make(map[channel.ConnID]bool)
	for bd := range activationLinks {
		for _, id := range m.net.PrimariesOn(bd) {
			if !victimSet[id] {
				affectedSet[id] = true
			}
		}
	}
	for _, v := range victims {
		for _, pd := range v.Primary.DirLinks(m.g) {
			for _, id := range m.net.PrimariesOn(pd) {
				if !victimSet[id] {
					affectedSet[id] = true
				}
			}
		}
	}
	before := m.levelSnapshot(setToSorted(affectedSet))

	squeezedSet := make(map[channel.ConnID]bool)
	for bd := range activationLinks {
		for _, id := range m.net.PrimariesOn(bd) {
			if !victimSet[id] && !squeezedSet[id] {
				squeezedSet[id] = true
				if err := m.squeezeToMin(id); err != nil {
					return nil, err
				}
			}
		}
	}
	report.Squeezed = setToSorted(squeezedSet)

	// Fail the victims over (or drop them).
	for _, v := range victims {
		for _, pd := range v.Primary.DirLinks(m.g) {
			region[pd] = true
		}
		if err := m.net.ReleasePrimary(v.ID, v.Primary); err != nil {
			return nil, wrapViolation(err, "release failed primary of conn %d", v.ID)
		}
		usable := v.HasBackup && !v.BackupUsesLink(l)
		if usable {
			if err := m.net.ActivateBackup(v.ID, v.Backup); err == nil {
				oldLevel := v.Level
				if err := v.FailOver(); err != nil {
					return nil, wrapViolation(err, "fail over conn %d", v.ID)
				}
				if err := m.trackLevel(v, oldLevel, 0); err != nil {
					return nil, err
				}
				m.unprotected++ // the activated backup IS the primary now
				report.Activated = append(report.Activated, v.ID)
				continue
			}
			// Even after the squeeze the backup's minimum does not fit
			// (e.g. overlapping earlier failures): the connection drops.
			if err := m.net.ReleaseBackup(v.ID, v.Backup); err != nil {
				return nil, wrapViolation(err, "release unusable backup of conn %d", v.ID)
			}
			if err := v.DetachBackup(); err != nil {
				return nil, wrapViolation(err, "detach unusable backup of conn %d", v.ID)
			}
			m.unprotected++
		} else if v.HasBackup {
			// The backup crosses the failed link too.
			if err := m.net.ReleaseBackup(v.ID, v.Backup); err != nil {
				return nil, wrapViolation(err, "release dead backup of conn %d", v.ID)
			}
			if err := v.DetachBackup(); err != nil {
				return nil, wrapViolation(err, "detach dead backup of conn %d", v.ID)
			}
			m.unprotected++
		}
		if m.cfg.ReactiveRecovery {
			recovered, err := m.tryReestablish(v)
			if err != nil {
				return nil, err
			}
			if recovered {
				for _, pd := range v.Primary.DirLinks(m.g) {
					region[pd] = true
				}
				report.Recovered = append(report.Recovered, v.ID)
				continue
			}
		}
		if err := m.trackRemove(v); err != nil {
			return nil, err
		}
		if err := v.Drop(); err != nil {
			return nil, wrapViolation(err, "drop conn %d", v.ID)
		}
		delete(m.conns, v.ID)
		report.Dropped = append(report.Dropped, v.ID)
	}

	// Connections that only lost their backup: release the registration
	// and try to protect them again elsewhere.
	for _, c := range backupLost {
		if err := m.net.ReleaseBackup(c.ID, c.Backup); err != nil {
			return nil, wrapViolation(err, "release lost backup of conn %d", c.ID)
		}
		if err := c.DetachBackup(); err != nil {
			return nil, wrapViolation(err, "detach lost backup of conn %d", c.ID)
		}
		m.unprotected++
		report.BackupsLost = append(report.BackupsLost, c.ID)
		if _, err := m.tryReprotect(c); err != nil {
			return nil, err
		}
	}

	// Freshly failed-over connections run unprotected; try to establish a
	// replacement backup for them.
	for _, id := range report.Activated {
		if c := m.conns[id]; c != nil {
			if _, err := m.tryReprotect(c); err != nil {
				return nil, err
			}
		}
	}

	for bd := range activationLinks {
		region[bd] = true
	}
	if err := m.redistribute(region); err != nil {
		return nil, err
	}

	report.Changes = m.levelChanges(before)
	return report, nil
}

// RepairLink marks a failed link repaired and opportunistically re-protects
// connections that currently lack a backup. It returns how many backups
// were re-established. Connections do not fail back: the activated backup
// remains their primary route (the paper's scheme restores protection, not
// placement).
func (m *Manager) RepairLink(l topology.LinkID) (restored int, err error) {
	defer tagViolation(&err, "repair_link")
	if int(l) < 0 || int(l) >= m.g.NumLinks() {
		return 0, fmt.Errorf("manager: no such link %d", l)
	}
	if !m.net.Failed(l) {
		return 0, fmt.Errorf("manager: link %d is not failed", l)
	}
	m.net.SetFailed(l, false)
	for _, id := range m.AliveIDs() {
		c := m.conns[id]
		if c.HasBackup {
			continue
		}
		ok, err := m.tryReprotect(c)
		if err != nil {
			return restored, err
		}
		if ok {
			restored++
		}
	}
	return restored, nil
}

// tryReestablish attempts to rebuild a failed connection's primary from
// scratch (reactive-recovery mode): discover an admissible route avoiding
// failed links, reserve the minimum, and continue the same connection on
// the new route at its minimum level. The caller has already released the
// old primary. The bool reports success; the error reports corruption.
func (m *Manager) tryReestablish(c *channel.Conn) (bool, error) {
	cands, err := m.discoverRoutes(c.Src, c.Dst, c.Spec)
	if err != nil {
		return false, nil
	}
	newPrimary := cands[0].Path
	if err := m.net.ReservePrimary(c.ID, newPrimary, c.Spec.Min); err != nil {
		// The headroom seen by discovery may be borrowed as grants;
		// squeeze the route's primaries to their minima and retry once.
		var sqErr error
		for _, d := range newPrimary.DirLinks(m.g) {
			m.net.ForEachPrimaryOn(d, func(id channel.ConnID) {
				if sqErr == nil && id != c.ID {
					sqErr = m.squeezeToMin(id)
				}
			})
		}
		if sqErr != nil {
			return false, sqErr
		}
		if err := m.net.ReservePrimary(c.ID, newPrimary, c.Spec.Min); err != nil {
			return false, nil
		}
	}
	oldLevel := c.Level
	c.Primary = newPrimary
	if err := m.trackLevel(c, oldLevel, 0); err != nil {
		return false, err
	}
	c.Level = 0
	return true, nil
}

// tryReprotect attempts to establish a backup for an unprotected
// connection. Best-effort: the bool reports success; the error reports
// corruption.
func (m *Manager) tryReprotect(c *channel.Conn) (bool, error) {
	if c.HasBackup || !c.Alive() || m.cfg.ReactiveRecovery {
		return false, nil
	}
	filter := func(l topology.LinkID) bool { return !m.net.Failed(l) }
	p, shared, err := routing.BackupRoute(m.g, c.Primary, filter)
	if err != nil {
		return false, nil
	}
	if err := m.net.ReserveBackup(c.ID, p, c.Primary.Links, c.Spec.Min); err != nil {
		return false, nil
	}
	if err := c.AttachBackup(p, shared); err != nil {
		return false, wrapViolation(err, "attach reprotect backup for conn %d", c.ID)
	}
	m.unprotected--
	if m.unprotected < 0 {
		return false, violationf("negative unprotected count")
	}
	return true, nil
}

// Unprotected returns the IDs of alive connections lacking a backup.
func (m *Manager) Unprotected() []channel.ConnID {
	var out []channel.ConnID
	for _, id := range m.AliveIDs() {
		if !m.conns[id].HasBackup {
			out = append(out, id)
		}
	}
	return out
}
