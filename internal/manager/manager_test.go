package manager

import (
	"errors"
	"testing"
	"testing/quick"

	"drqos/internal/channel"
	"drqos/internal/qos"
	"drqos/internal/rng"
	"drqos/internal/topology"
)

// diamond builds the 6-node double-route fixture:
//
//	0 - 1 - 2 - 5
//	 \             |
//	  3 -- 4 -----+
//
// Two fully link-disjoint 3-hop routes 0→5.
func diamond(t *testing.T) *topology.Graph {
	t.Helper()
	g := topology.NewGraph(6)
	for i := 0; i < 6; i++ {
		g.AddNode(topology.Point{})
	}
	pairs := [][2]topology.NodeID{{0, 1}, {1, 2}, {2, 5}, {0, 3}, {3, 4}, {4, 5}}
	for _, p := range pairs {
		if _, err := g.AddLink(p[0], p[1]); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func mustMgr(t *testing.T, g *topology.Graph, cfg Config) *Manager {
	t.Helper()
	m, err := New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func checkMgr(t *testing.T, m *Manager) {
	t.Helper()
	if err := m.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(diamond(t), Config{Capacity: 0}); err == nil {
		t.Fatal("zero capacity accepted")
	}
}

func TestEstablishBasics(t *testing.T) {
	m := mustMgr(t, diamond(t), Config{Capacity: 10000, RequireBackup: true})
	rep, err := m.Establish(0, 5, qos.DefaultSpec())
	if err != nil {
		t.Fatal(err)
	}
	c := rep.Conn
	if c == nil {
		t.Fatal("no conn in report")
	}
	if c.Primary.Hops() != 3 {
		t.Fatalf("primary hops = %d", c.Primary.Hops())
	}
	if !c.HasBackup {
		t.Fatal("no backup established")
	}
	if !c.Backup.LinkDisjoint(c.Primary) {
		t.Fatalf("backup %v not disjoint from primary %v", c.Backup, c.Primary)
	}
	// Alone in an empty network, the connection grows to its maximum.
	if c.Bandwidth() != 500 {
		t.Fatalf("bandwidth = %v, want Bmax", c.Bandwidth())
	}
	// Its growth appears in the change list.
	if len(rep.Changes) != 1 || rep.Changes[0].ID != c.ID || rep.Changes[0].To != c.Spec.States()-1 {
		t.Fatalf("changes = %+v", rep.Changes)
	}
	if len(rep.DirectlyChained) != 0 || len(rep.IndirectlyChained) != 0 {
		t.Fatal("phantom chained channels")
	}
	checkMgr(t, m)
	if m.AliveCount() != 1 || m.Requests() != 1 || m.Rejects() != 0 {
		t.Fatalf("counters: alive=%d req=%d rej=%d", m.AliveCount(), m.Requests(), m.Rejects())
	}
}

func TestEstablishRejectsSrcEqDst(t *testing.T) {
	m := mustMgr(t, diamond(t), Config{Capacity: 1000})
	if _, err := m.Establish(2, 2, qos.DefaultSpec()); !errors.Is(err, ErrRejected) {
		t.Fatalf("err = %v", err)
	}
	if m.Rejects() != 1 {
		t.Fatal("reject not counted")
	}
}

func TestEstablishRejectsBadSpec(t *testing.T) {
	m := mustMgr(t, diamond(t), Config{Capacity: 1000})
	bad := qos.ElasticSpec{Min: 0, Max: 100, Increment: 50, Utility: 1}
	if _, err := m.Establish(0, 5, bad); !errors.Is(err, qos.ErrInvalidSpec) {
		t.Fatalf("err = %v", err)
	}
}

func TestArrivalSqueezesDirectlyChained(t *testing.T) {
	// Capacity fits two connections' maxima is false: 10000 would never
	// squeeze; use 600 so two conns at min (200) leave 400 for extras but
	// maxima (1000) exceed capacity.
	m := mustMgr(t, diamond(t), Config{Capacity: 600})
	r1, err := m.Establish(0, 5, qos.DefaultSpec())
	if err != nil {
		t.Fatal(err)
	}
	c1 := r1.Conn
	if c1.Bandwidth() != 500 {
		t.Fatalf("first conn bw = %v, want Bmax", c1.Bandwidth())
	}
	// Force the second connection onto the same (upper) route by filling
	// the lower route first — both routes exist, so instead check whatever
	// route it takes: if it shares links with c1, c1 must have been
	// squeezed and both re-grown fairly.
	r2, err := m.Establish(0, 5, qos.DefaultSpec())
	if err != nil {
		t.Fatal(err)
	}
	c2 := r2.Conn
	checkMgr(t, m)
	if c2.Primary.SharedLinks(c1.Primary) > 0 {
		// Same route: 600 capacity → 300 each (levels equalized by the
		// coefficient policy).
		if c1.Bandwidth() != 300 || c2.Bandwidth() != 300 {
			t.Fatalf("bandwidths %v/%v, want 300/300", c1.Bandwidth(), c2.Bandwidth())
		}
		if len(r2.DirectlyChained) != 1 || r2.DirectlyChained[0] != c1.ID {
			t.Fatalf("directly chained = %v", r2.DirectlyChained)
		}
	} else {
		// Disjoint routes (one per diamond side): both grow to max.
		if c1.Bandwidth() != 500 || c2.Bandwidth() != 500 {
			t.Fatalf("bandwidths %v/%v, want 500/500", c1.Bandwidth(), c2.Bandwidth())
		}
	}
}

func TestEstablishRejectsWhenFull(t *testing.T) {
	// Capacity for exactly two minima per link. Each admitted conn also
	// registers a 100 Kb/s backup spare on the opposite diamond route, so
	// exactly two DR-connections fit; further requests are rejected.
	m := mustMgr(t, diamond(t), Config{Capacity: 200, RequireBackup: false})
	admitted := 0
	for i := 0; i < 5; i++ {
		if _, err := m.Establish(0, 5, qos.DefaultSpec()); err == nil {
			admitted++
		}
	}
	if admitted != 2 {
		t.Fatalf("admitted = %d, want 2 (minima + multiplexed spare fill both routes)", admitted)
	}
	if m.Rejects() != 3 {
		t.Fatalf("rejects = %d", m.Rejects())
	}
	checkMgr(t, m)
}

func TestRequireBackupRejectsOnBridge(t *testing.T) {
	// A pure line has no disjoint or alternative routes at all: with
	// RequireBackup the request must be rejected and resources rolled
	// back.
	g := topology.NewGraph(3)
	for i := 0; i < 3; i++ {
		g.AddNode(topology.Point{})
	}
	g.AddLink(0, 1)
	g.AddLink(1, 2)
	m := mustMgr(t, g, Config{Capacity: 1000, RequireBackup: true})
	if _, err := m.Establish(0, 2, qos.DefaultSpec()); !errors.Is(err, ErrRejected) {
		t.Fatalf("err = %v", err)
	}
	checkMgr(t, m)
	if m.AliveCount() != 0 {
		t.Fatal("rejected conn left alive")
	}
	// Without the requirement, the same request is accepted unprotected.
	m2 := mustMgr(t, g, Config{Capacity: 1000, RequireBackup: false})
	rep, err := m2.Establish(0, 2, qos.DefaultSpec())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Conn.HasBackup {
		t.Fatal("line graph cannot host a backup")
	}
	if got := m2.Unprotected(); len(got) != 1 || got[0] != rep.Conn.ID {
		t.Fatalf("unprotected = %v", got)
	}
}

func TestTerminationGrowsSharers(t *testing.T) {
	m := mustMgr(t, diamond(t), Config{Capacity: 600})
	r1, _ := m.Establish(0, 5, qos.DefaultSpec())
	r2, _ := m.Establish(0, 5, qos.DefaultSpec())
	c1, c2 := r1.Conn, r2.Conn
	shared := c1.Primary.SharedLinks(c2.Primary) > 0
	rep, err := m.Terminate(c1.ID)
	if err != nil {
		t.Fatal(err)
	}
	checkMgr(t, m)
	if m.AliveCount() != 1 {
		t.Fatalf("alive = %d", m.AliveCount())
	}
	if m.Conn(c1.ID) != nil {
		t.Fatal("terminated conn still registered")
	}
	if shared {
		if len(rep.Affected) != 1 || rep.Affected[0] != c2.ID {
			t.Fatalf("affected = %v", rep.Affected)
		}
		// c2 grows back to max after its sharer left.
		if c2.Bandwidth() != 500 {
			t.Fatalf("survivor bw = %v", c2.Bandwidth())
		}
		if len(rep.Changes) != 1 || rep.Changes[0].ID != c2.ID || rep.Changes[0].From >= rep.Changes[0].To {
			t.Fatalf("changes = %+v", rep.Changes)
		}
	} else if len(rep.Affected) != 0 {
		t.Fatalf("affected = %v for disjoint routes", rep.Affected)
	}
	// Double termination fails.
	if _, err := m.Terminate(c1.ID); err == nil {
		t.Fatal("double terminate accepted")
	}
}

func TestFailLinkActivatesBackup(t *testing.T) {
	m := mustMgr(t, diamond(t), Config{Capacity: 10000, RequireBackup: true})
	rep, err := m.Establish(0, 5, qos.DefaultSpec())
	if err != nil {
		t.Fatal(err)
	}
	c := rep.Conn
	oldPrimary := c.Primary.Clone()
	oldBackup := c.Backup.Clone()
	fr, err := m.FailLink(oldPrimary.Links[1])
	if err != nil {
		t.Fatal(err)
	}
	checkMgr(t, m)
	if len(fr.Activated) != 1 || fr.Activated[0] != c.ID {
		t.Fatalf("activated = %v", fr.Activated)
	}
	if len(fr.Dropped) != 0 {
		t.Fatalf("dropped = %v", fr.Dropped)
	}
	if c.State() != channel.StateFailedOver {
		t.Fatalf("state = %v", c.State())
	}
	if !c.Primary.Equal(oldBackup) {
		t.Fatal("connection not running on old backup")
	}
	// On the diamond there is no third route, so re-protection must fail
	// (any backup would need the failed link).
	if c.HasBackup {
		t.Fatal("impossible re-protection succeeded")
	}
	// The failed-over connection grows again after redistribution: alone
	// on the lower route it reaches Bmax.
	if c.Bandwidth() != 500 {
		t.Fatalf("bw after failover = %v", c.Bandwidth())
	}
	_ = oldPrimary
}

func TestFailLinkDropsUnprotected(t *testing.T) {
	g := topology.NewGraph(3)
	for i := 0; i < 3; i++ {
		g.AddNode(topology.Point{})
	}
	l01, _ := g.AddLink(0, 1)
	g.AddLink(1, 2)
	m := mustMgr(t, g, Config{Capacity: 1000, RequireBackup: false})
	rep, err := m.Establish(0, 2, qos.DefaultSpec())
	if err != nil {
		t.Fatal(err)
	}
	fr, err := m.FailLink(l01)
	if err != nil {
		t.Fatal(err)
	}
	if len(fr.Dropped) != 1 || fr.Dropped[0] != rep.Conn.ID {
		t.Fatalf("dropped = %v", fr.Dropped)
	}
	if m.AliveCount() != 0 {
		t.Fatal("dropped conn still alive")
	}
	checkMgr(t, m)
}

func TestFailLinkSqueezesBackupLinkSharers(t *testing.T) {
	// conn A: primary upper, backup lower. conn B: primary lower only
	// (1-hop portions)... On the diamond both conns are 0→5 so B's primary
	// IS the lower route. A's activation forces B to retreat to Bmin
	// before redistribution.
	m := mustMgr(t, diamond(t), Config{Capacity: 600, RequireBackup: false})
	rA, err := m.Establish(0, 5, qos.DefaultSpec())
	if err != nil {
		t.Fatal(err)
	}
	rB, err := m.Establish(0, 5, qos.DefaultSpec())
	if err != nil {
		t.Fatal(err)
	}
	a, b := rA.Conn, rB.Conn
	if a.Primary.SharedLinks(b.Primary) != 0 {
		t.Skip("conns did not take disjoint routes; fixture assumption broken")
	}
	if !a.HasBackup {
		t.Fatal("conn A unprotected")
	}
	// Fail a link on A's primary: A activates onto B's route.
	fr, err := m.FailLink(a.Primary.Links[0])
	if err != nil {
		t.Fatal(err)
	}
	checkMgr(t, m)
	if len(fr.Activated) != 1 {
		t.Fatalf("activated = %v, dropped = %v", fr.Activated, fr.Dropped)
	}
	if len(fr.Squeezed) != 1 || fr.Squeezed[0] != b.ID {
		t.Fatalf("squeezed = %v, want [%d]", fr.Squeezed, b.ID)
	}
	// Both now share the 600-capacity route: 300 each after redistribution.
	if a.Bandwidth() != 300 || b.Bandwidth() != 300 {
		t.Fatalf("bw = %v/%v, want 300/300", a.Bandwidth(), b.Bandwidth())
	}
}

func TestFailLinkReleasesLostBackups(t *testing.T) {
	m := mustMgr(t, diamond(t), Config{Capacity: 10000, RequireBackup: true})
	rep, err := m.Establish(0, 5, qos.DefaultSpec())
	if err != nil {
		t.Fatal(err)
	}
	c := rep.Conn
	backupLink := c.Backup.Links[1]
	fr, err := m.FailLink(backupLink)
	if err != nil {
		t.Fatal(err)
	}
	checkMgr(t, m)
	if len(fr.BackupsLost) != 1 || fr.BackupsLost[0] != c.ID {
		t.Fatalf("backupsLost = %v", fr.BackupsLost)
	}
	if len(fr.Activated) != 0 || len(fr.Dropped) != 0 {
		t.Fatal("primary should be untouched")
	}
	if c.State() != channel.StateActive {
		t.Fatalf("state = %v", c.State())
	}
	// No alternative backup exists on the diamond while the link is down.
	if c.HasBackup {
		t.Fatal("re-protected through a failed link?")
	}
	// Repair restores protection.
	restored, err := m.RepairLink(backupLink)
	if err != nil {
		t.Fatal(err)
	}
	if restored != 1 || !c.HasBackup {
		t.Fatalf("restored = %d, hasBackup = %v", restored, c.HasBackup)
	}
	checkMgr(t, m)
}

func TestFailLinkValidation(t *testing.T) {
	m := mustMgr(t, diamond(t), Config{Capacity: 1000})
	if _, err := m.FailLink(topology.LinkID(99)); err == nil {
		t.Fatal("bad link accepted")
	}
	if _, err := m.FailLink(0); err != nil {
		t.Fatal(err)
	}
	if _, err := m.FailLink(0); err == nil {
		t.Fatal("double failure accepted")
	}
	if _, err := m.RepairLink(1); err == nil {
		t.Fatal("repairing healthy link accepted")
	}
	if _, err := m.RepairLink(topology.LinkID(99)); err == nil {
		t.Fatal("repairing bad link accepted")
	}
	if _, err := m.RepairLink(0); err != nil {
		t.Fatal(err)
	}
}

func TestIndirectChainingGrowsDisjointChannel(t *testing.T) {
	// Chain topology engineered so that:
	//   conn A: 0-1           (link La)
	//   conn B: 0-1-2         (La, Lb)  — shares La with A
	//   new C:  1-2           (Lb)      — direct with B, indirect with A
	// Capacity 600. Before C: A and B share La: A=300, B=300 (B also holds
	// 300 on Lb). After C arrives: B squeezes to 100, C reserves 100 on
	// Lb. Redistribution: on La, A can now grow into B's released extras;
	// A is indirectly chained to C.
	g := topology.NewGraph(3)
	for i := 0; i < 3; i++ {
		g.AddNode(topology.Point{})
	}
	g.AddLink(0, 1)
	g.AddLink(1, 2)
	m := mustMgr(t, g, Config{Capacity: 600, RequireBackup: false})
	rA, err := m.Establish(0, 1, qos.DefaultSpec())
	if err != nil {
		t.Fatal(err)
	}
	rB, err := m.Establish(0, 2, qos.DefaultSpec())
	if err != nil {
		t.Fatal(err)
	}
	a, b := rA.Conn, rB.Conn
	if a.Bandwidth() != 300 || b.Bandwidth() != 300 {
		t.Fatalf("pre: %v/%v, want 300/300", a.Bandwidth(), b.Bandwidth())
	}
	// C needs a 300 Kb/s minimum: squeezing B to 100 on both links and
	// pinning 300 on Lb caps B's regrowth, so B ends below 300 and A takes
	// over B's released share on La.
	cSpec := qos.ElasticSpec{Min: 300, Max: 500, Increment: 50, Utility: 1}
	rC, err := m.Establish(1, 2, cSpec)
	if err != nil {
		t.Fatal(err)
	}
	checkMgr(t, m)
	if len(rC.DirectlyChained) != 1 || rC.DirectlyChained[0] != b.ID {
		t.Fatalf("direct = %v", rC.DirectlyChained)
	}
	if len(rC.IndirectlyChained) != 1 || rC.IndirectlyChained[0] != a.ID {
		t.Fatalf("indirect = %v", rC.IndirectlyChained)
	}
	// A benefits from B's squeeze: it grows above 300 (upward transition,
	// the paper's B_ij case).
	if a.Bandwidth() <= 300 {
		t.Fatalf("indirectly chained channel did not grow: %v", a.Bandwidth())
	}
	var sawUp bool
	for _, ch := range rC.Changes {
		if ch.ID == a.ID && ch.To > ch.From {
			sawUp = true
		}
	}
	if !sawUp {
		t.Fatalf("no upward change recorded for indirectly chained conn: %+v", rC.Changes)
	}
}

func TestAverageBandwidth(t *testing.T) {
	m := mustMgr(t, diamond(t), Config{Capacity: 10000})
	if m.AverageBandwidth() != 0 {
		t.Fatal("empty network nonzero average")
	}
	r1, _ := m.Establish(0, 5, qos.DefaultSpec())
	r2, _ := m.Establish(0, 5, qos.DefaultSpec())
	want := (float64(r1.Conn.Bandwidth()) + float64(r2.Conn.Bandwidth())) / 2
	if got := m.AverageBandwidth(); got != want {
		t.Fatalf("avg = %v, want %v", got, want)
	}
}

func TestMaxUtilityPolicyMonopolizes(t *testing.T) {
	// Two conns on the same line, one with double utility: under the
	// max-utility scheme the high-utility channel takes every increment.
	g := topology.NewGraph(2)
	g.AddNode(topology.Point{})
	g.AddNode(topology.Point{})
	g.AddLink(0, 1)
	m := mustMgr(t, g, Config{Capacity: 700, RequireBackup: false, Policy: qos.MaxUtilityPolicy{}})
	lowSpec := qos.DefaultSpec()
	highSpec := qos.DefaultSpec()
	highSpec.Utility = 2
	rLow, err := m.Establish(0, 1, lowSpec)
	if err != nil {
		t.Fatal(err)
	}
	rHigh, err := m.Establish(0, 1, highSpec)
	if err != nil {
		t.Fatal(err)
	}
	checkMgr(t, m)
	// 700 total: both minima (200) + 500 extra → high gets 400 (to Bmax),
	// then low gets the remaining 100.
	if rHigh.Conn.Bandwidth() != 500 {
		t.Fatalf("high-utility bw = %v, want 500", rHigh.Conn.Bandwidth())
	}
	if rLow.Conn.Bandwidth() != 200 {
		t.Fatalf("low-utility bw = %v, want 200", rLow.Conn.Bandwidth())
	}
}

// Property: random workloads on random topologies never violate manager or
// ledger invariants, and every alive connection's level stays in range.
func TestQuickManagerInvariants(t *testing.T) {
	f := func(seed uint64) bool {
		src := rng.New(seed)
		g, err := topology.Waxman(topology.WaxmanConfig{
			Nodes: 20, Alpha: 0.4, Beta: 0.25, EnsureConnected: true,
		}, src)
		if err != nil {
			return false
		}
		m, err := New(g, Config{Capacity: 1000, RequireBackup: false})
		if err != nil {
			return false
		}
		var failed []topology.LinkID
		for step := 0; step < 80; step++ {
			switch src.Intn(5) {
			case 0, 1: // arrival (weighted)
				a := topology.NodeID(src.Intn(g.NumNodes()))
				b := topology.NodeID(src.Intn(g.NumNodes()))
				if a == b {
					continue
				}
				_, _ = m.Establish(a, b, qos.DefaultSpec())
			case 2: // termination
				ids := m.AliveIDs()
				if len(ids) == 0 {
					continue
				}
				if _, err := m.Terminate(ids[src.Intn(len(ids))]); err != nil {
					return false
				}
			case 3: // failure
				l := topology.LinkID(src.Intn(g.NumLinks()))
				if m.Network().Failed(l) {
					continue
				}
				if _, err := m.FailLink(l); err != nil {
					return false
				}
				failed = append(failed, l)
			case 4: // repair
				if len(failed) == 0 {
					continue
				}
				i := src.Intn(len(failed))
				if _, err := m.RepairLink(failed[i]); err != nil {
					return false
				}
				failed = append(failed[:i], failed[i+1:]...)
			}
			if m.CheckInvariants() != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestSequentialRouteSelection(t *testing.T) {
	m := mustMgr(t, diamond(t), Config{Capacity: 10000, RouteSelection: RouteSequential})
	rep, err := m.Establish(0, 5, qos.DefaultSpec())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Conn.Primary.Hops() != 3 {
		t.Fatalf("sequential primary hops = %d", rep.Conn.Primary.Hops())
	}
	if !rep.Conn.HasBackup {
		t.Fatal("sequential selection failed to protect")
	}
	checkMgr(t, m)
	// Fill the network: sequential selection must also reject cleanly.
	m2 := mustMgr(t, diamond(t), Config{Capacity: 100, RouteSelection: RouteSequential, RequireBackup: false})
	admitted := 0
	for i := 0; i < 4; i++ {
		if _, err := m2.Establish(0, 5, qos.DefaultSpec()); err == nil {
			admitted++
		}
	}
	if admitted == 0 || admitted == 4 {
		t.Fatalf("admitted = %d, want partial admission", admitted)
	}
	checkMgr(t, m2)
}

func TestUnknownRouteSelection(t *testing.T) {
	m := mustMgr(t, diamond(t), Config{Capacity: 1000, RouteSelection: RouteSelection(9)})
	if _, err := m.Establish(0, 5, qos.DefaultSpec()); err == nil {
		t.Fatal("unknown strategy accepted")
	}
}

func TestReactiveRecovery(t *testing.T) {
	m := mustMgr(t, diamond(t), Config{Capacity: 10000, ReactiveRecovery: true})
	rep, err := m.Establish(0, 5, qos.DefaultSpec())
	if err != nil {
		t.Fatal(err)
	}
	c := rep.Conn
	if c.HasBackup {
		t.Fatal("reactive mode reserved a backup")
	}
	oldPrimary := c.Primary.Clone()
	fr, err := m.FailLink(oldPrimary.Links[1])
	if err != nil {
		t.Fatal(err)
	}
	checkMgr(t, m)
	if len(fr.Recovered) != 1 || fr.Recovered[0] != c.ID {
		t.Fatalf("recovered = %v, dropped = %v", fr.Recovered, fr.Dropped)
	}
	if !c.Alive() || c.State() != channel.StateActive {
		t.Fatalf("state = %v", c.State())
	}
	if c.Primary.Equal(oldPrimary) {
		t.Fatal("primary unchanged after recovery")
	}
	for _, l := range c.Primary.Links {
		if m.Network().Failed(l) {
			t.Fatal("recovered route crosses the failed link")
		}
	}
	// The diamond's other route hosts the recovered connection; it regrows
	// via redistribution.
	if c.Bandwidth() != 500 {
		t.Fatalf("recovered bandwidth = %v", c.Bandwidth())
	}
}

func TestReactiveRecoveryFailsWhenNoRoute(t *testing.T) {
	// A line has no alternative route: reactive recovery must drop.
	g := topology.NewGraph(3)
	for i := 0; i < 3; i++ {
		g.AddNode(topology.Point{})
	}
	l01, _ := g.AddLink(0, 1)
	g.AddLink(1, 2)
	m := mustMgr(t, g, Config{Capacity: 1000, ReactiveRecovery: true})
	rep, err := m.Establish(0, 2, qos.DefaultSpec())
	if err != nil {
		t.Fatal(err)
	}
	fr, err := m.FailLink(l01)
	if err != nil {
		t.Fatal(err)
	}
	if len(fr.Dropped) != 1 || fr.Dropped[0] != rep.Conn.ID {
		t.Fatalf("dropped = %v, recovered = %v", fr.Dropped, fr.Recovered)
	}
	checkMgr(t, m)
}

func TestReactiveRecoverySqueezesForRoom(t *testing.T) {
	// Capacity 600: conn B occupies the lower route grown to 500; when
	// conn A's upper route fails, recovery must squeeze B to fit A's 100.
	m := mustMgr(t, diamond(t), Config{Capacity: 600, ReactiveRecovery: true})
	rA, err := m.Establish(0, 5, qos.DefaultSpec())
	if err != nil {
		t.Fatal(err)
	}
	rB, err := m.Establish(0, 5, qos.DefaultSpec())
	if err != nil {
		t.Fatal(err)
	}
	a, b := rA.Conn, rB.Conn
	if a.Primary.SharedLinks(b.Primary) != 0 {
		t.Skip("fixture took shared routes")
	}
	fr, err := m.FailLink(a.Primary.Links[0])
	if err != nil {
		t.Fatal(err)
	}
	checkMgr(t, m)
	if len(fr.Recovered) != 1 {
		t.Fatalf("recovered = %v dropped = %v", fr.Recovered, fr.Dropped)
	}
	// Both now share the surviving 600-capacity route.
	if a.Bandwidth()+b.Bandwidth() > 600 {
		t.Fatalf("overcommitted: %v + %v", a.Bandwidth(), b.Bandwidth())
	}
}
