// Package manager implements the paper's network manager for DR-connections
// with elastic QoS (§3.1): bounded-flooding route discovery, primary and
// link-disjoint backup establishment with backup multiplexing, minimum-level
// admission, and the run-time bandwidth adaptation rules — squeeze directly
// chained channels on arrival, redistribute extras by utility, grow channels
// on termination, and activate backups on link failure.
//
// Every public operation returns a report describing which channels changed
// bandwidth level and why; the simulator's parameter estimator consumes
// these reports to measure Pf, Ps and the A/B/T transition matrices (§3.3).
package manager

import (
	"errors"
	"fmt"
	"sort"

	"drqos/internal/channel"
	"drqos/internal/network"
	"drqos/internal/qos"
	"drqos/internal/routing"
	"drqos/internal/topology"
)

// ErrRejected reports that a DR-connection request was not admitted.
var ErrRejected = errors.New("manager: connection rejected")

// errNoProtection marks connections deliberately left without a backup
// (reactive-recovery mode).
var errNoProtection = errors.New("manager: protection disabled")

// Config parameterizes a Manager.
type Config struct {
	// Capacity is the uniform link bandwidth (the paper uses 10 Mb/s).
	Capacity qos.Kbps
	// HopBound bounds the flooding region (§3.1). Zero selects a default
	// of 2×diameter-ish 16 hops.
	HopBound int
	// MaxCandidates caps routes collected per request (0 = unlimited).
	MaxCandidates int
	// Policy distributes extra increments; nil selects the coefficient
	// (utility-proportional) scheme the paper's experiments use.
	Policy qos.Policy
	// RequireBackup rejects connections for which no backup channel can be
	// established (the dependability QoS is a hard, single-value
	// requirement in the paper, §2.2).
	RequireBackup bool
	// DisableBackupMultiplexing makes every backup reserve its own spare
	// instead of sharing it under the single-failure rule (the §2.1.2
	// "overbooking" ablation).
	DisableBackupMultiplexing bool
	// RouteSelection picks the §2.1.1 route-discovery strategy; the
	// default is the paper's bounded flooding.
	RouteSelection RouteSelection
	// ReactiveRecovery disables backup channels entirely and instead
	// attempts to re-establish a failed connection's primary from scratch
	// when a link fails — the restoration approach the paper's §2.1.2
	// argues against ("such channel re-establishment attempts can fail
	// because of resource shortage"). Implies no backups are reserved.
	ReactiveRecovery bool
}

// RouteSelection enumerates the §2.1.1 route-discovery strategies.
type RouteSelection int

// Route-discovery strategies: parallel bounded flooding (the paper's
// scheme) and the sequential baseline that checks shortest routes one by
// one "until a qualified one is found".
const (
	RouteFlood RouteSelection = iota
	RouteSequential
)

func (c *Config) withDefaults() Config {
	out := *c
	if out.HopBound <= 0 {
		out.HopBound = 16
	}
	if out.Policy == nil {
		out.Policy = qos.CoefficientPolicy{}
	}
	return out
}

// LevelChange records one channel's bandwidth-state jump during an event.
type LevelChange struct {
	ID   channel.ConnID
	From int
	To   int
}

// ArrivalReport describes the outcome of an Establish call.
type ArrivalReport struct {
	// Conn is the established connection (nil when rejected).
	Conn *channel.Conn
	// DirectlyChained lists pre-existing channels sharing ≥1 link with the
	// new primary (the Pf population).
	DirectlyChained []channel.ConnID
	// IndirectlyChained lists channels link-disjoint from the new primary
	// but sharing a link with a directly-chained channel (the Ps
	// population).
	IndirectlyChained []channel.ConnID
	// Changes lists every level change caused by the arrival, including
	// the new connection's own growth from its minimum.
	Changes []LevelChange
}

// TerminationReport describes the outcome of a Terminate call.
type TerminationReport struct {
	// Affected lists the channels that shared ≥1 link with the terminated
	// connection's primary.
	Affected []channel.ConnID
	// Changes lists the resulting level changes.
	Changes []LevelChange
}

// FailureReport describes the outcome of a FailLink call.
type FailureReport struct {
	// Activated lists connections that switched to their backups.
	Activated []channel.ConnID
	// Dropped lists connections that lost service.
	Dropped []channel.ConnID
	// Recovered lists connections re-established reactively after losing
	// their primary (ReactiveRecovery mode only).
	Recovered []channel.ConnID
	// BackupsLost lists connections whose backup (not primary) crossed the
	// failed link and was released.
	BackupsLost []channel.ConnID
	// Squeezed lists pre-existing channels that shared links with the
	// activated backups (the paper's retreat population).
	Squeezed []channel.ConnID
	// Changes lists the resulting level changes of surviving channels.
	Changes []LevelChange
}

// Manager owns the network ledger and every DR-connection.
type Manager struct {
	cfg    Config
	g      *topology.Graph
	net    *network.Network
	conns  map[channel.ConnID]*channel.Conn
	nextID channel.ConnID

	// Aggregates maintained incrementally so the simulator's per-event
	// sampling is O(1) instead of O(connections).
	alive       []channel.ConnID // sorted ascending
	bwSum       qos.Kbps         // Σ Bandwidth() over alive connections
	levelHist   []int            // alive connections per level index
	unprotected int              // alive connections without a backup

	// Counters for acceptance statistics.
	requests int64
	rejects  int64

	// Reusable working state for the hot per-event kernels. A Manager is
	// single-threaded (the server wraps it in an actor loop), so one set of
	// buffers per Manager suffices.
	flood routing.FloodScratch
	work  workBuffers
}

// workBuffers holds the redistribution scratch recycled across events: the
// candidate set and its sorted view, the growth heap's backing array, and
// the affected-region set. At most one region is live at a time (each event
// builds it, hands it to redistribute, and drops it), so a single map can
// back every regionOf call.
type workBuffers struct {
	candidates map[channel.ConnID]bool
	ids        []channel.ConnID
	heapItems  []growItem
	region     map[topology.DirLinkID]bool
}

// New builds a Manager over graph g.
func New(g *topology.Graph, cfg Config) (*Manager, error) {
	c := cfg.withDefaults()
	if c.Capacity <= 0 {
		return nil, fmt.Errorf("manager: non-positive capacity %v", c.Capacity)
	}
	net, err := network.New(g, c.Capacity)
	if err != nil {
		return nil, err
	}
	if c.DisableBackupMultiplexing {
		if err := net.SetMultiplexing(false); err != nil {
			return nil, err
		}
	}
	return &Manager{
		cfg:    c,
		g:      g,
		net:    net,
		conns:  make(map[channel.ConnID]*channel.Conn),
		nextID: 1,
	}, nil
}

// trackAdd registers a newly alive connection in the aggregates. IDs are
// assigned in increasing order, so appending keeps the alive list sorted.
func (m *Manager) trackAdd(c *channel.Conn) error {
	m.alive = append(m.alive, c.ID)
	m.bwSum += c.Bandwidth()
	if err := m.bumpHist(c.Level, +1); err != nil {
		return err
	}
	if !c.HasBackup {
		m.unprotected++
	}
	return nil
}

// trackRemove deregisters a dying connection (terminated or dropped).
func (m *Manager) trackRemove(c *channel.Conn) error {
	i := sort.Search(len(m.alive), func(i int) bool { return m.alive[i] >= c.ID })
	if i >= len(m.alive) || m.alive[i] != c.ID {
		return violationf("conn %d missing from alive list", c.ID)
	}
	m.alive = append(m.alive[:i], m.alive[i+1:]...)
	m.bwSum -= c.Bandwidth()
	if err := m.bumpHist(c.Level, -1); err != nil {
		return err
	}
	if !c.HasBackup {
		m.unprotected--
		if m.unprotected < 0 {
			return violationf("negative unprotected count")
		}
	}
	return nil
}

// trackLevel moves a connection between levels in the aggregates.
func (m *Manager) trackLevel(c *channel.Conn, oldLevel, newLevel int) error {
	if oldLevel == newLevel {
		return nil
	}
	m.bwSum += c.Spec.Bandwidth(newLevel) - c.Spec.Bandwidth(oldLevel)
	if err := m.bumpHist(oldLevel, -1); err != nil {
		return err
	}
	return m.bumpHist(newLevel, +1)
}

func (m *Manager) bumpHist(level, delta int) error {
	for len(m.levelHist) <= level {
		m.levelHist = append(m.levelHist, 0)
	}
	m.levelHist[level] += delta
	if m.levelHist[level] < 0 {
		return violationf("negative level histogram at %d", level)
	}
	return nil
}

// LevelHistogram copies the per-level alive-connection counts into dst
// (grown as needed) and returns it.
func (m *Manager) LevelHistogram(dst []int) []int {
	dst = dst[:0]
	dst = append(dst, m.levelHist...)
	return dst
}

// AliveIDAt returns the i-th alive connection ID in ascending order.
func (m *Manager) AliveIDAt(i int) channel.ConnID { return m.alive[i] }

// UnprotectedCount returns the number of alive connections without a
// backup channel, maintained in O(1).
func (m *Manager) UnprotectedCount() int { return m.unprotected }

// Network exposes the resource ledger (read-mostly; used by tests and
// metrics).
func (m *Manager) Network() *network.Network { return m.net }

// Graph returns the topology.
func (m *Manager) Graph() *topology.Graph { return m.g }

// Conn returns the connection with the given ID, or nil.
func (m *Manager) Conn(id channel.ConnID) *channel.Conn { return m.conns[id] }

// AliveIDs returns a copy of the alive connection IDs in ascending order.
func (m *Manager) AliveIDs() []channel.ConnID {
	out := make([]channel.ConnID, len(m.alive))
	copy(out, m.alive)
	return out
}

// AliveCount returns the number of alive connections.
func (m *Manager) AliveCount() int { return len(m.alive) }

// Requests returns how many Establish calls were made.
func (m *Manager) Requests() int64 { return m.requests }

// Rejects returns how many Establish calls were rejected.
func (m *Manager) Rejects() int64 { return m.rejects }

// AverageBandwidth returns the mean reserved bandwidth over alive primaries
// in Kb/s (the paper's headline metric), or 0 with no connections.
func (m *Manager) AverageBandwidth() float64 {
	if len(m.alive) == 0 {
		return 0
	}
	return float64(m.bwSum) / float64(len(m.alive))
}

// Establish admits a new DR-connection from src to dst with the given
// elastic spec, following §3.1: flood for candidate routes, reserve the
// primary at its minimum (squeezing directly chained channels to their
// minima), establish a (maximally) link-disjoint multiplexed backup, then
// redistribute extras by utility.
func (m *Manager) Establish(src, dst topology.NodeID, spec qos.ElasticSpec) (rep *ArrivalReport, err error) {
	defer tagViolation(&err, "establish")
	m.requests++
	if err := spec.Validate(); err != nil {
		m.rejects++
		return nil, err
	}
	if src == dst {
		m.rejects++
		return nil, fmt.Errorf("%w: src == dst (%d)", ErrRejected, src)
	}

	cands, err := m.discoverRoutes(src, dst, spec)
	if err != nil {
		m.rejects++
		return nil, fmt.Errorf("%w: %v", ErrRejected, err)
	}
	primary := cands[0].Path

	// Identify the chained populations BEFORE mutating anything.
	direct, indirect := m.chainedWith(primary)

	// Snapshot the populations this arrival can move.
	before := m.levelSnapshot(direct, indirect)

	// Squeeze every directly chained channel to its minimum (§3.2: "all
	// the existing primary channels that share at least one link with the
	// new channel should release their extra resources").
	for _, did := range direct {
		if err := m.squeezeToMin(did); err != nil {
			return nil, err
		}
	}

	id := m.nextID
	conn := channel.New(id, src, dst, spec, primary)
	if err := m.net.ReservePrimary(id, primary, spec.Min); err != nil {
		// Squeezing freed every elastic byte; a capacity error now means
		// the route genuinely cannot host the minimum. Re-grow what we
		// squeezed and reject.
		if rerr := m.redistribute(m.regionOf(direct)); rerr != nil {
			return nil, rerr
		}
		m.rejects++
		return nil, fmt.Errorf("%w: %v", ErrRejected, err)
	}

	// Backup selection: prefer a flooding candidate (these arrived as real
	// request copies), fall back to an explicit disjoint search. Reactive
	// recovery forgoes protection entirely (the restoration baseline).
	var backup routing.Path
	var shared int
	berr := errNoProtection
	if !m.cfg.ReactiveRecovery {
		backup, shared, berr = m.findBackup(conn, cands)
	}
	if berr == nil {
		if err := m.net.ReserveBackup(id, backup, primary.Links, spec.Min); err == nil {
			if err := conn.AttachBackup(backup, shared); err != nil {
				return nil, wrapViolation(err, "attach backup for conn %d", id)
			}
		} else {
			berr = err
		}
	}
	if berr != nil && m.cfg.RequireBackup {
		if err := m.net.ReleasePrimary(id, primary); err != nil {
			return nil, wrapViolation(err, "rollback primary of conn %d", id)
		}
		if rerr := m.redistribute(m.regionOf(direct)); rerr != nil {
			return nil, rerr
		}
		m.rejects++
		return nil, fmt.Errorf("%w: no backup channel: %v", ErrRejected, berr)
	}

	m.conns[id] = conn
	m.nextID++
	if err := m.trackAdd(conn); err != nil {
		return nil, err
	}

	// Redistribute the released extras plus whatever headroom remains.
	region := m.regionOf(direct)
	for _, d := range primary.DirLinks(m.g) {
		region[d] = true
	}
	if err := m.redistribute(region); err != nil {
		return nil, err
	}

	changes := m.levelChanges(before)
	// The new connection's own growth from its minimum is part of the
	// event (it is not in the snapshot because it did not exist yet).
	changes = append(changes, LevelChange{ID: id, From: 0, To: conn.Level})
	return &ArrivalReport{
		Conn:              conn,
		DirectlyChained:   direct,
		IndirectlyChained: indirect,
		Changes:           changes,
	}, nil
}

// discoverRoutes finds candidate routes that can admit a new connection at
// its minimum level, using the configured §2.1.1 strategy. The first
// candidate becomes the primary route.
func (m *Manager) discoverRoutes(src, dst topology.NodeID, spec qos.ElasticSpec) ([]routing.Candidate, error) {
	switch m.cfg.RouteSelection {
	case RouteFlood:
		// Parallel search: the per-link allowance is the minimum-level
		// admission headroom, so flooding only explores routes that could
		// actually admit the connection.
		allowance := func(l topology.LinkID, from topology.NodeID) float64 {
			return float64(m.net.AdmissionHeadroom(m.g.DirID(l, from)))
		}
		return m.flood.BoundedFlood(m.g, src, dst, allowance, routing.FloodConfig{
			HopBound:      m.cfg.HopBound,
			MinBandwidth:  float64(spec.Min),
			MaxCandidates: m.cfg.MaxCandidates,
		})
	case RouteSequential:
		// Sequential search: shortest routes are checked one by one until
		// a qualified one is found (§2.1.1). Admission tests run against
		// the ledger; routes that cannot host the minimum are skipped.
		k := m.cfg.MaxCandidates
		if k <= 0 {
			k = 8
		}
		filter := func(l topology.LinkID) bool { return !m.net.Failed(l) }
		paths, err := routing.KShortest(m.g, src, dst, k, filter)
		if err != nil {
			return nil, err
		}
		var cands []routing.Candidate
		for _, p := range paths {
			if p.Hops() > m.cfg.HopBound {
				continue
			}
			if !m.net.CanAdmitPrimary(p, spec.Min) {
				continue
			}
			// The allowance is the route's bottleneck admission headroom.
			alw := 1e300
			for _, d := range p.DirLinks(m.g) {
				if h := float64(m.net.AdmissionHeadroom(d)); h < alw {
					alw = h
				}
			}
			cands = append(cands, routing.Candidate{Path: p, Allowance: alw})
		}
		if len(cands) == 0 {
			return nil, fmt.Errorf("%w: no admissible route among %d shortest", routing.ErrNoRoute, len(paths))
		}
		return cands, nil
	default:
		return nil, fmt.Errorf("manager: unknown route selection %d", m.cfg.RouteSelection)
	}
}

// findBackup picks a backup route for conn: the most link-disjoint flooding
// candidate that passes multiplexed admission, else a dedicated search.
func (m *Manager) findBackup(conn *channel.Conn, cands []routing.Candidate) (routing.Path, int, error) {
	primary := conn.Primary
	// Try flooding candidates in most-disjoint-first order.
	type scored struct {
		path   routing.Path
		shared int
	}
	var options []scored
	for _, c := range cands {
		if c.Path.Equal(primary) {
			continue
		}
		shared := c.Path.SharedLinks(primary)
		if shared == len(primary.Links) {
			continue // covers the whole primary: zero protection value
		}
		options = append(options, scored{path: c.Path, shared: shared})
	}
	sort.SliceStable(options, func(i, j int) bool {
		if options[i].shared != options[j].shared {
			return options[i].shared < options[j].shared
		}
		return options[i].path.Hops() < options[j].path.Hops()
	})
	for _, o := range options {
		if m.net.CanAdmitBackup(o.path, primary.Links, conn.Spec.Min) {
			return o.path, o.shared, nil
		}
	}
	// Dedicated disjoint search over links that could host the backup.
	filter := func(l topology.LinkID) bool { return !m.net.Failed(l) }
	p, shared, err := routing.BackupRoute(m.g, primary, filter)
	if err != nil {
		return routing.Path{}, 0, err
	}
	if !m.net.CanAdmitBackup(p, primary.Links, conn.Spec.Min) {
		return routing.Path{}, 0, fmt.Errorf("%w: backup admission failed", network.ErrCapacity)
	}
	return p, shared, nil
}

// chainedWith classifies alive connections against a prospective route:
// directly chained (share ≥1 directed link, i.e. actually contending for
// the same capacity) and indirectly chained (share a directed link with a
// directly chained channel but not with the route itself).
func (m *Manager) chainedWith(route routing.Path) (direct, indirect []channel.ConnID) {
	routeDirs := route.DirLinks(m.g)
	onRoute := make(map[topology.DirLinkID]bool, len(routeDirs))
	for _, d := range routeDirs {
		onRoute[d] = true
	}
	directSet := make(map[channel.ConnID]bool)
	for _, d := range routeDirs {
		for _, id := range m.net.PrimariesOn(d) {
			directSet[id] = true
		}
	}
	// Directed links of directly chained channels that are off the new
	// route.
	offRoute := make(map[topology.DirLinkID]bool)
	for id := range directSet {
		c := m.conns[id]
		if c == nil {
			continue
		}
		for _, d := range c.Primary.DirLinks(m.g) {
			if !onRoute[d] {
				offRoute[d] = true
			}
		}
	}
	indirectSet := make(map[channel.ConnID]bool)
	for d := range offRoute {
		for _, id := range m.net.PrimariesOn(d) {
			if !directSet[id] {
				indirectSet[id] = true
			}
		}
	}
	direct = setToSorted(directSet)
	indirect = setToSorted(indirectSet)
	return direct, indirect
}

func setToSorted(s map[channel.ConnID]bool) []channel.ConnID {
	return sortedInto(make([]channel.ConnID, 0, len(s)), s)
}

// sortedInto appends the set's IDs to dst in ascending order and returns
// it; hot paths pass a recycled slice to avoid per-event allocation.
func sortedInto(dst []channel.ConnID, s map[channel.ConnID]bool) []channel.ConnID {
	for id := range s {
		dst = append(dst, id)
	}
	sort.Slice(dst, func(i, j int) bool { return dst[i] < dst[j] })
	return dst
}

// regionOf returns the set of directed links touched by the given
// connections' primary routes. The returned map is the Manager's reusable
// region buffer: it stays valid until the next regionOf call, which is
// enough for every caller (build region → redistribute → drop).
func (m *Manager) regionOf(ids []channel.ConnID) map[topology.DirLinkID]bool {
	region := m.resetRegion()
	for _, id := range ids {
		c := m.conns[id]
		if c == nil || !c.Alive() {
			continue
		}
		for _, d := range c.Primary.DirLinks(m.g) {
			region[d] = true
		}
	}
	return region
}

// resetRegion clears and returns the reusable region buffer.
func (m *Manager) resetRegion() map[topology.DirLinkID]bool {
	if m.work.region == nil {
		m.work.region = make(map[topology.DirLinkID]bool)
	}
	clear(m.work.region)
	return m.work.region
}

// squeezeToMin retreats a connection to its minimum level.
func (m *Manager) squeezeToMin(id channel.ConnID) error {
	c := m.conns[id]
	if c == nil || !c.Alive() || c.Level == 0 {
		return nil
	}
	if err := m.net.AdjustPrimary(id, c.Primary, c.Spec.Min); err != nil {
		// Shrinking to the registered minimum can never fail; a failure
		// here means ledger corruption.
		return wrapViolation(err, "squeeze of conn %d failed", id)
	}
	if err := m.trackLevel(c, c.Level, 0); err != nil {
		return err
	}
	c.Level = 0
	return nil
}

// levelSnapshot records the current level of the alive connections in the
// given ID sets (the populations an event can move). Scoping the snapshot
// keeps event handling O(affected), not O(all connections).
func (m *Manager) levelSnapshot(idSets ...[]channel.ConnID) map[channel.ConnID]int {
	snap := make(map[channel.ConnID]int)
	for _, ids := range idSets {
		for _, id := range ids {
			if c := m.conns[id]; c != nil && c.Alive() {
				snap[id] = c.Level
			}
		}
	}
	return snap
}

// levelChanges diffs the current levels of the snapshotted connections.
// Connections that died since the snapshot are omitted (their release is
// not a state transition of the §3.2 chain).
func (m *Manager) levelChanges(before map[channel.ConnID]int) []LevelChange {
	ids := make([]channel.ConnID, 0, len(before))
	for id := range before {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	var out []LevelChange
	for _, id := range ids {
		c := m.conns[id]
		if c == nil || !c.Alive() {
			continue
		}
		if from := before[id]; from != c.Level {
			out = append(out, LevelChange{ID: id, From: from, To: c.Level})
		}
	}
	return out
}

// CheckInvariants verifies the ledger and the manager-level consistency
// rules: every alive connection's grant on every primary link equals its
// level bandwidth, and dead connections hold no reservations. A failure is
// reported as an *InvariantViolation with Op "audit", so the server's
// degraded-mode detection treats discovered corruption exactly like
// corruption surfaced mid-event.
func (m *Manager) CheckInvariants() (err error) {
	defer tagViolation(&err, "audit")
	if err := m.net.CheckInvariants(); err != nil {
		return wrapViolation(err, "network ledger audit")
	}
	for id, c := range m.conns {
		if !c.Alive() {
			continue
		}
		want := c.Bandwidth()
		for _, d := range c.Primary.DirLinks(m.g) {
			if got := m.net.Grant(d, id); got != want {
				return violationf("conn %d grant on directed link %d is %v, level says %v",
					id, d, got, want)
			}
		}
		if c.Level < 0 || c.Level >= c.Spec.States() {
			return violationf("conn %d level %d outside [0,%d)", id, c.Level, c.Spec.States())
		}
	}
	// Aggregates agree with first-principles recomputation.
	var bwSum qos.Kbps
	var aliveCount int
	hist := make([]int, len(m.levelHist))
	for _, c := range m.conns {
		if !c.Alive() {
			continue
		}
		aliveCount++
		bwSum += c.Bandwidth()
		if c.Level < len(hist) {
			hist[c.Level]++
		} else {
			return violationf("level %d beyond histogram", c.Level)
		}
	}
	if aliveCount != len(m.alive) {
		return violationf("alive list has %d entries, actual %d", len(m.alive), aliveCount)
	}
	unprotected := 0
	for _, c := range m.conns {
		if c.Alive() && !c.HasBackup {
			unprotected++
		}
	}
	if unprotected != m.unprotected {
		return violationf("cached unprotected %d, actual %d", m.unprotected, unprotected)
	}
	if bwSum != m.bwSum {
		return violationf("cached bwSum %v, actual %v", m.bwSum, bwSum)
	}
	for i := range hist {
		if hist[i] != m.levelHist[i] {
			return violationf("levelHist[%d] cached %d, actual %d", i, m.levelHist[i], hist[i])
		}
	}
	for i := 1; i < len(m.alive); i++ {
		if m.alive[i-1] >= m.alive[i] {
			return violationf("alive list not sorted at %d", i)
		}
	}
	return nil
}
