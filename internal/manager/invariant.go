package manager

import (
	"errors"
	"fmt"
)

// InvariantViolation reports that one of the manager's internal consistency
// rules broke while applying an event. It signals a bug — ledger corruption,
// not a caller mistake — so the manager's state can no longer be trusted.
// The paper's whole point is *dependable* communication, so the embedding
// service must outlive its own bugs: instead of panicking, every event
// handler returns an InvariantViolation and the server degrades to
// read-only (see internal/server: ErrDegraded and the /v1/invariants
// endpoint) rather than dying and taking every admitted connection with it.
type InvariantViolation struct {
	// Op names the event being applied when the violation surfaced:
	// "establish", "terminate", "fail_link", "repair_link" or "audit".
	Op string
	// Detail describes the broken rule.
	Detail string
	// Err is the underlying cause, when one exists.
	Err error
}

func (v *InvariantViolation) Error() string {
	msg := "manager: invariant violation"
	if v.Op != "" {
		msg += " during " + v.Op
	}
	if v.Detail != "" {
		msg += ": " + v.Detail
	}
	if v.Err != nil {
		msg += ": " + v.Err.Error()
	}
	return msg
}

// Unwrap exposes the underlying cause to errors.Is / errors.As.
func (v *InvariantViolation) Unwrap() error { return v.Err }

// IsInvariantViolation reports whether err carries an InvariantViolation
// anywhere in its chain.
func IsInvariantViolation(err error) bool {
	var iv *InvariantViolation
	return errors.As(err, &iv)
}

// violationf builds a violation with a formatted detail string.
func violationf(format string, args ...any) *InvariantViolation {
	return &InvariantViolation{Detail: fmt.Sprintf(format, args...)}
}

// wrapViolation builds a violation around an underlying cause.
func wrapViolation(err error, format string, args ...any) *InvariantViolation {
	return &InvariantViolation{Detail: fmt.Sprintf(format, args...), Err: err}
}

// tagViolation stamps the event name onto a violation bubbling out of a
// public entry point, so reports say which operation corrupted the ledger.
// Use as `defer tagViolation(&err, "establish")` with a named return.
func tagViolation(err *error, op string) {
	var iv *InvariantViolation
	if *err != nil && errors.As(*err, &iv) && iv.Op == "" {
		iv.Op = op
	}
}

// CorruptAggregatesForTesting deliberately skews the cached bandwidth
// aggregate so the next CheckInvariants fails. It exists so fault-injection
// tests (internal/chaos, internal/server) can prove the audit and the
// server's degraded mode actually fire; never call it in production code.
func (m *Manager) CorruptAggregatesForTesting() { m.bwSum++ }
