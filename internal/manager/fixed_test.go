package manager

import (
	"errors"
	"testing"

	"drqos/internal/qos"
	"drqos/internal/routing"
	"drqos/internal/topology"
)

// fixedSpec is a rigid 200 Kbps reservation (one level, never grows).
func fixedSpec() qos.ElasticSpec {
	return qos.ElasticSpec{Min: 200, Max: 200, Increment: 200, Utility: 1}
}

// TestEstablishFixedBasics: a fixed connection pins the given path, has no
// backup, sits at level 0 forever, counts in aggregates, and releases via
// the ordinary Terminate — even with RequireBackup set (fixed connections
// bypass it by design).
func TestEstablishFixedBasics(t *testing.T) {
	m := mustMgr(t, diamond(t), Config{Capacity: 10000, RequireBackup: true})
	path := routing.Path{Nodes: []topology.NodeID{0, 1, 2}, Links: []topology.LinkID{0, 1}}
	rep, err := m.EstablishFixed(0, 2, fixedSpec(), path)
	if err != nil {
		t.Fatal(err)
	}
	c := rep.Conn
	if c.HasBackup {
		t.Error("fixed connection has a backup")
	}
	if c.Level != 0 || c.Bandwidth() != 200 {
		t.Errorf("level=%d bw=%d, want 0/200", c.Level, c.Bandwidth())
	}
	if m.AliveCount() != 1 || m.Requests() != 1 {
		t.Errorf("alive=%d requests=%d, want 1/1", m.AliveCount(), m.Requests())
	}
	checkMgr(t, m)

	// An elastic arrival on the shared links squeezes around it but the
	// fixed connection never moves off level 0.
	if _, err := m.Establish(0, 5, qos.DefaultSpec()); err != nil {
		t.Fatal(err)
	}
	if got := m.Conn(c.ID); got == nil || got.Level != 0 {
		t.Errorf("fixed conn level after elastic arrival: %+v", got)
	}
	checkMgr(t, m)

	if _, err := m.Terminate(c.ID); err != nil {
		t.Fatal(err)
	}
	if m.Conn(c.ID) != nil {
		t.Error("fixed conn alive after terminate")
	}
	checkMgr(t, m)
}

// TestEstablishFixedRejections: elastic specs, bad paths, mismatched
// endpoints and failed links are all rejected (and counted) without
// mutating state.
func TestEstablishFixedRejections(t *testing.T) {
	m := mustMgr(t, diamond(t), Config{Capacity: 1000})
	path := routing.Path{Nodes: []topology.NodeID{0, 1, 2}, Links: []topology.LinkID{0, 1}}

	if _, err := m.EstablishFixed(0, 2, qos.DefaultSpec(), path); !errors.Is(err, qos.ErrInvalidSpec) {
		t.Errorf("elastic spec: %v, want ErrInvalidSpec", err)
	}
	if _, err := m.EstablishFixed(0, 0, fixedSpec(), path); !errors.Is(err, ErrRejected) {
		t.Errorf("src==dst: %v, want ErrRejected", err)
	}
	if _, err := m.EstablishFixed(0, 5, fixedSpec(), path); !errors.Is(err, ErrRejected) {
		t.Errorf("path/endpoint mismatch: %v, want ErrRejected", err)
	}
	bad := routing.Path{Nodes: []topology.NodeID{0, 2}, Links: []topology.LinkID{0}}
	if _, err := m.EstablishFixed(0, 2, fixedSpec(), bad); !errors.Is(err, ErrRejected) {
		t.Errorf("invalid path: %v, want ErrRejected", err)
	}

	if _, err := m.FailLink(0); err != nil {
		t.Fatal(err)
	}
	if _, err := m.EstablishFixed(0, 2, fixedSpec(), path); !errors.Is(err, ErrRejected) {
		t.Errorf("failed link on path: %v, want ErrRejected", err)
	}
	if _, err := m.RepairLink(0); err != nil {
		t.Fatal(err)
	}

	// Capacity: a second rigid reservation that does not fit is rejected
	// and rolls back cleanly.
	if _, err := m.EstablishFixed(0, 2, fixedSpec(), path); err != nil {
		t.Fatal(err)
	}
	big := qos.ElasticSpec{Min: 900, Max: 900, Increment: 900, Utility: 1}
	if _, err := m.EstablishFixed(0, 2, big, path); !errors.Is(err, ErrRejected) {
		t.Errorf("over capacity: %v, want ErrRejected", err)
	}
	if m.AliveCount() != 1 {
		t.Errorf("alive=%d after rejected over-capacity fixed, want 1", m.AliveCount())
	}
	checkMgr(t, m)
}

// TestEstablishFixedStateRoundTrip: fixed connections survive
// ExportState/Restore bit-identically — the property the sharded plane's
// recovery leans on.
func TestEstablishFixedStateRoundTrip(t *testing.T) {
	g := diamond(t)
	m := mustMgr(t, g, Config{Capacity: 10000})
	path := routing.Path{Nodes: []topology.NodeID{0, 3, 4, 5}, Links: []topology.LinkID{3, 4, 5}}
	if _, err := m.EstablishFixed(0, 5, fixedSpec(), path); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Establish(0, 5, qos.DefaultSpec()); err != nil {
		t.Fatal(err)
	}
	st := m.ExportState()
	m2, err := Restore(g, m.Config(), st)
	if err != nil {
		t.Fatal(err)
	}
	checkMgr(t, m2)
	f1 := st.Fingerprint()
	f2 := m2.ExportState().Fingerprint()
	if f1 != f2 {
		t.Fatalf("fingerprint changed across restore: %s != %s", f1, f2)
	}
}
