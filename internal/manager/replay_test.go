package manager

import (
	"testing"

	"drqos/internal/qos"
	"drqos/internal/rng"
	"drqos/internal/topology"
)

// replaySeed reruns the quick-check workload for one seed with verbose
// failure reporting; used to diagnose and pin down regressions.
func replaySeed(t *testing.T, seed uint64) {
	t.Helper()
	src := rng.New(seed)
	g, err := topology.Waxman(topology.WaxmanConfig{
		Nodes: 20, Alpha: 0.4, Beta: 0.25, EnsureConnected: true,
	}, src)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(g, Config{Capacity: 1000, RequireBackup: false})
	if err != nil {
		t.Fatal(err)
	}
	var failed []topology.LinkID
	for step := 0; step < 80; step++ {
		op := src.Intn(5)
		switch op {
		case 0, 1:
			a := topology.NodeID(src.Intn(g.NumNodes()))
			b := topology.NodeID(src.Intn(g.NumNodes()))
			if a == b {
				continue
			}
			_, _ = m.Establish(a, b, qos.DefaultSpec())
		case 2:
			ids := m.AliveIDs()
			if len(ids) == 0 {
				continue
			}
			if _, err := m.Terminate(ids[src.Intn(len(ids))]); err != nil {
				t.Fatalf("step %d: terminate: %v", step, err)
			}
		case 3:
			l := topology.LinkID(src.Intn(g.NumLinks()))
			if m.Network().Failed(l) {
				continue
			}
			if _, err := m.FailLink(l); err != nil {
				t.Fatalf("step %d: fail link %d: %v", step, l, err)
			}
			failed = append(failed, l)
		case 4:
			if len(failed) == 0 {
				continue
			}
			i := src.Intn(len(failed))
			if _, err := m.RepairLink(failed[i]); err != nil {
				t.Fatalf("step %d: repair link %d: %v", step, failed[i], err)
			}
			failed = append(failed[:i], failed[i+1:]...)
		}
		if err := m.CheckInvariants(); err != nil {
			t.Fatalf("step %d (op %d): %v", step, op, err)
		}
	}
}

func TestReplayRegressionSeeds(t *testing.T) {
	for _, seed := range []uint64{0x5ce7897d7f01b72a, 0x82a2114c69edf045} {
		replaySeed(t, seed)
	}
}
