package manager

import (
	"testing"

	"drqos/internal/channel"
	"drqos/internal/qos"
	"drqos/internal/rng"
	"drqos/internal/topology"
)

// benchSetup builds a paper-scale network and endpoint stream for the
// admission hot path the server leans on. Establish/Terminate dominate
// drserverd's command loop, so these benchmarks are the scaling baseline.
func benchSetup(b *testing.B) (*Manager, []topology.NodeID, qos.ElasticSpec) {
	b.Helper()
	src := rng.New(11)
	g, err := topology.Waxman(topology.WaxmanConfig{
		Nodes: 100, Alpha: 0.33, Beta: 0.1176, EnsureConnected: true,
	}, src)
	if err != nil {
		b.Fatal(err)
	}
	m, err := New(g, Config{Capacity: 10000})
	if err != nil {
		b.Fatal(err)
	}
	n := g.NumNodes()
	pairs := make([]topology.NodeID, 4096)
	for i := range pairs {
		pairs[i] = topology.NodeID(src.Intn(n))
	}
	return m, pairs, qos.DefaultSpec()
}

func BenchmarkManagerEstablish(b *testing.B) {
	m, pairs, spec := benchSetup(b)
	var alive []channel.ConnID
	pi := 0
	next := func() (topology.NodeID, topology.NodeID) {
		a := pairs[pi%len(pairs)]
		c := pairs[(pi+1)%len(pairs)]
		pi += 2
		if a == c {
			c = (c + 1) % topology.NodeID(m.Graph().NumNodes())
		}
		return a, c
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		srcN, dstN := next()
		rep, err := m.Establish(srcN, dstN, spec)
		if err == nil {
			alive = append(alive, rep.Conn.ID)
		}
		// Keep the network in a steady churn regime instead of driving it
		// to saturation (where every call short-circuits to a reject).
		if len(alive) > 1500 {
			b.StopTimer()
			for _, id := range alive[:750] {
				if _, err := m.Terminate(id); err != nil {
					b.Fatal(err)
				}
			}
			alive = alive[750:]
			b.StartTimer()
		}
	}
	b.StopTimer()
	if err := m.CheckInvariants(); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkManagerTerminate(b *testing.B) {
	m, pairs, spec := benchSetup(b)
	var alive []channel.ConnID
	pi := 0
	refill := func() {
		for len(alive) < 1500 {
			a := pairs[pi%len(pairs)]
			c := pairs[(pi+1)%len(pairs)]
			pi += 2
			if a == c {
				c = (c + 1) % topology.NodeID(m.Graph().NumNodes())
			}
			if rep, err := m.Establish(a, c, spec); err == nil {
				alive = append(alive, rep.Conn.ID)
			}
		}
	}
	refill()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(alive) == 0 {
			b.StopTimer()
			refill()
			b.StartTimer()
		}
		id := alive[len(alive)-1]
		alive = alive[:len(alive)-1]
		if _, err := m.Terminate(id); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if err := m.CheckInvariants(); err != nil {
		b.Fatal(err)
	}
}
