package manager

import (
	"fmt"

	"drqos/internal/channel"
	"drqos/internal/qos"
	"drqos/internal/routing"
	"drqos/internal/topology"
)

// EstablishFixed admits a rigid (Min == Max) connection pinned to an
// explicit primary path, with no backup. It exists for the sharded
// admission plane: a cross-shard two-phase reservation pins each shard's
// local sub-path here during prepare, so the reservation is an ordinary
// connection — it squeezes chained elastics, counts in every aggregate,
// round-trips through ExportState/Restore unchanged, and releases via
// Terminate on abort. Because Min == Max the connection has a single
// level: it never grows in redistribution and squeezeToMin is a no-op.
// Backup protection for a cross-shard connection is a coordinator concern
// (each sub-path alone cannot be link-disjoint with the whole), so unlike
// Establish this deliberately bypasses Config.RequireBackup.
func (m *Manager) EstablishFixed(src, dst topology.NodeID, spec qos.ElasticSpec, primary routing.Path) (rep *ArrivalReport, err error) {
	defer tagViolation(&err, "establish_fixed")
	m.requests++
	if err := spec.Validate(); err != nil {
		m.rejects++
		return nil, err
	}
	if spec.Min != spec.Max {
		m.rejects++
		return nil, fmt.Errorf("%w: fixed connection requires min == max (got %d != %d)", qos.ErrInvalidSpec, spec.Min, spec.Max)
	}
	if src == dst {
		m.rejects++
		return nil, fmt.Errorf("%w: src == dst (%d)", ErrRejected, src)
	}
	if err := primary.Validate(m.g); err != nil {
		m.rejects++
		return nil, fmt.Errorf("%w: bad fixed path: %v", ErrRejected, err)
	}
	if primary.Src() != src || primary.Dst() != dst {
		m.rejects++
		return nil, fmt.Errorf("%w: fixed path runs %d->%d, want %d->%d",
			ErrRejected, primary.Src(), primary.Dst(), src, dst)
	}
	for _, l := range primary.Links {
		if m.net.Failed(l) {
			m.rejects++
			return nil, fmt.Errorf("%w: fixed path crosses failed link %d", ErrRejected, l)
		}
	}

	direct, indirect := m.chainedWith(primary)
	before := m.levelSnapshot(direct, indirect)
	for _, did := range direct {
		if err := m.squeezeToMin(did); err != nil {
			return nil, err
		}
	}

	id := m.nextID
	conn := channel.New(id, src, dst, spec, primary)
	if err := m.net.ReservePrimary(id, primary, spec.Min); err != nil {
		if rerr := m.redistribute(m.regionOf(direct)); rerr != nil {
			return nil, rerr
		}
		m.rejects++
		return nil, fmt.Errorf("%w: %v", ErrRejected, err)
	}

	m.conns[id] = conn
	m.nextID++
	if err := m.trackAdd(conn); err != nil {
		return nil, err
	}

	region := m.regionOf(direct)
	for _, d := range primary.DirLinks(m.g) {
		region[d] = true
	}
	if err := m.redistribute(region); err != nil {
		return nil, err
	}

	changes := m.levelChanges(before)
	changes = append(changes, LevelChange{ID: id, From: 0, To: conn.Level})
	return &ArrivalReport{
		Conn:              conn,
		DirectlyChained:   direct,
		IndirectlyChained: indirect,
		Changes:           changes,
	}, nil
}
