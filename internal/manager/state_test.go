package manager

import (
	"strings"
	"testing"

	"drqos/internal/qos"
	"drqos/internal/rng"
	"drqos/internal/topology"
)

// busyManager drives a manager through arrivals, terminations and a link
// failure so the exported state exercises levels, failover and failed links.
func busyManager(t *testing.T) *Manager {
	t.Helper()
	g, err := topology.Waxman(topology.WaxmanConfig{
		Nodes: 16, Alpha: 0.33, Beta: 0.25, EnsureConnected: true,
	}, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	m := mustMgr(t, g, Config{Capacity: 2000})
	r := rng.New(7)
	for i := 0; i < 30; i++ {
		src := topology.NodeID(r.Intn(g.NumNodes()))
		dst := topology.NodeID(r.Intn(g.NumNodes()))
		if src == dst {
			continue
		}
		m.Establish(src, dst, qos.DefaultSpec())
	}
	ids := m.AliveIDs()
	for i, id := range ids {
		if i%5 == 0 {
			if _, err := m.Terminate(id); err != nil {
				t.Fatal(err)
			}
		}
	}
	if m.AliveCount() == 0 {
		t.Fatal("fixture produced no alive connections")
	}
	// Fail a link that carries at least one primary so failover state and
	// failed-link marking both appear in the export.
	c := m.Conn(m.AliveIDAt(0))
	if _, err := m.FailLink(c.Primary.Links[0]); err != nil {
		t.Fatal(err)
	}
	checkMgr(t, m)
	return m
}

func TestStateRoundtrip(t *testing.T) {
	m := busyManager(t)
	st := m.ExportState()

	body := st.MarshalBinary()
	st2, err := UnmarshalState(body)
	if err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if st.Fingerprint() != st2.Fingerprint() {
		t.Fatal("marshal/unmarshal changed the fingerprint")
	}

	m2, err := Restore(m.Graph(), m.Config(), st2)
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	checkMgr(t, m2)
	if got, want := m2.ExportState().Fingerprint(), st.Fingerprint(); got != want {
		t.Fatalf("restored fingerprint %s, want %s", got, want)
	}
	if m2.AliveCount() != m.AliveCount() {
		t.Fatalf("alive %d, want %d", m2.AliveCount(), m.AliveCount())
	}
	if m2.Requests() != m.Requests() || m2.Rejects() != m.Rejects() {
		t.Fatal("counters not restored")
	}
	for _, id := range m.AliveIDs() {
		a, b := m.Conn(id), m2.Conn(id)
		if b == nil {
			t.Fatalf("conn %d missing after restore", id)
		}
		if a.Level != b.Level || a.State() != b.State() || a.HasBackup != b.HasBackup {
			t.Fatalf("conn %d: level/state/backup mismatch", id)
		}
		if !a.Primary.Equal(b.Primary) {
			t.Fatalf("conn %d primary differs", id)
		}
		if a.HasBackup && !a.Backup.Equal(b.Backup) {
			t.Fatalf("conn %d backup differs", id)
		}
	}
	// The restored manager keeps working: same next event applies cleanly.
	if _, err := m2.Establish(0, topology.NodeID(m2.Graph().NumNodes()-1), qos.DefaultSpec()); err != nil && err != ErrRejected && !strings.Contains(err.Error(), "rejected") {
		t.Fatalf("restored manager cannot establish: %v", err)
	}
	checkMgr(t, m2)
}

func TestUnmarshalStateRejectsDamage(t *testing.T) {
	st := busyManager(t).ExportState()
	body := st.MarshalBinary()

	if _, err := UnmarshalState(body[:len(body)-3]); err == nil {
		t.Fatal("truncated body accepted")
	}
	if _, err := UnmarshalState(append(append([]byte{}, body...), 0)); err == nil {
		t.Fatal("trailing garbage accepted")
	}
	bad := append([]byte{}, body...)
	bad[0] ^= 0xff
	if _, err := UnmarshalState(bad); err == nil {
		t.Fatal("wrong magic accepted")
	}
}

func TestRestoreRejectsInconsistentState(t *testing.T) {
	m := busyManager(t)
	st := m.ExportState()

	over := *st
	over.Conns = append([]ConnState{}, st.Conns...)
	over.Conns[0].Level = 1 << 20
	if _, err := Restore(m.Graph(), m.Config(), &over); err == nil {
		t.Fatal("absurd level accepted")
	}

	dup := *st
	dup.Conns = append([]ConnState{}, st.Conns...)
	dup.Conns[1].ID = dup.Conns[0].ID
	if _, err := Restore(m.Graph(), m.Config(), &dup); err == nil {
		t.Fatal("duplicate conn ID accepted")
	}

	beyond := *st
	beyond.NextID = st.Conns[len(st.Conns)-1].ID
	if _, err := Restore(m.Graph(), m.Config(), &beyond); err == nil {
		t.Fatal("NextID below live IDs accepted")
	}
}
