package manager

import (
	"container/heap"

	"drqos/internal/channel"
	"drqos/internal/qos"
	"drqos/internal/topology"
)

// growHeap orders growth candidates by the configured policy. Entries carry
// the key fields they were pushed with; a popped entry whose key is stale
// (the connection grew since the push) is re-pushed with fresh keys.
type growHeap struct {
	policy qos.Policy
	items  []growItem
}

type growItem struct {
	conn *channel.Conn
	key  qos.GrowthCandidate
}

func (h *growHeap) Len() int { return len(h.items) }
func (h *growHeap) Less(i, j int) bool {
	return h.policy.Less(h.items[i].key, h.items[j].key)
}
func (h *growHeap) Swap(i, j int)      { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *growHeap) Push(x interface{}) { h.items = append(h.items, x.(growItem)) }
func (h *growHeap) Pop() interface{} {
	old := h.items
	n := len(old)
	it := old[n-1]
	h.items = old[:n-1]
	return it
}

func keyOf(c *channel.Conn) qos.GrowthCandidate {
	return qos.GrowthCandidate{
		Utility:         c.Spec.Utility,
		ExtraIncrements: c.Level,
		Order:           int64(c.ID),
	}
}

// redistribute performs the incremental, utility-weighted water-filling of
// §3.2: while any channel touching the affected region can grow by one
// increment on every link of its route, the configured policy picks the
// next recipient.
//
// Correctness of the lazy pruning: capacity only DECREASES while increments
// are granted, so a channel observed unable to grow can be dropped
// permanently, and a popped entry with a stale key only needs re-queueing.
// The region is the set of directed links where capacity changed (new
// route, released route, activated backup links); channels with no link in
// the region were maximal before the event and stay maximal, so they are
// never candidates.
// The candidate set, its sorted view, and the heap's backing array are the
// Manager's reusable work buffers: redistribute runs once per event with no
// reentrancy, so recycling them is safe and keeps the per-event allocation
// count flat.
func (m *Manager) redistribute(region map[topology.DirLinkID]bool) error {
	if len(region) == 0 {
		return nil
	}
	if m.work.candidates == nil {
		m.work.candidates = make(map[channel.ConnID]bool)
	}
	candidateIDs := m.work.candidates
	clear(candidateIDs)
	for d := range region {
		m.net.ForEachPrimaryOn(d, func(id channel.ConnID) {
			candidateIDs[id] = true
		})
	}
	m.work.ids = sortedInto(m.work.ids[:0], candidateIDs)
	h := &growHeap{policy: m.cfg.Policy, items: m.work.heapItems[:0]}
	for _, id := range m.work.ids {
		c := m.conns[id]
		if c == nil || !c.Alive() {
			continue
		}
		if c.Level < c.Spec.States()-1 && m.canGrow(c) {
			h.items = append(h.items, growItem{conn: c, key: keyOf(c)})
		}
	}
	heap.Init(h)
	defer func() { m.work.heapItems = h.items[:0] }()

	for h.Len() > 0 {
		it := heap.Pop(h).(growItem)
		c := it.conn
		if it.key.ExtraIncrements != c.Level {
			// Stale entry: the connection grew since this key was pushed.
			heap.Push(h, growItem{conn: c, key: keyOf(c)})
			continue
		}
		if !m.canGrow(c) {
			continue // capacity only shrinks: permanently ineligible
		}
		newBW := c.Spec.Bandwidth(c.Level + 1)
		if err := m.net.AdjustPrimary(c.ID, c.Primary, newBW); err != nil {
			// canGrow verified room on every link; failure is corruption.
			return wrapViolation(err, "redistribute grow conn %d", c.ID)
		}
		if err := m.trackLevel(c, c.Level, c.Level+1); err != nil {
			return err
		}
		c.Level++
		if c.Level < c.Spec.States()-1 {
			heap.Push(h, growItem{conn: c, key: keyOf(c)})
		}
	}
	return nil
}

// canGrow reports whether every directed link of c's primary has room for
// one more increment and the level ceiling is not reached.
func (m *Manager) canGrow(c *channel.Conn) bool {
	if c.Level >= c.Spec.States()-1 {
		return false
	}
	inc := c.Spec.Increment
	for i, l := range c.Primary.Links {
		d := m.g.DirID(l, c.Primary.Nodes[i])
		if m.net.FreeForGrowth(d) < inc {
			return false
		}
	}
	return true
}
