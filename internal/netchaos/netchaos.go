// Package netchaos is a deterministic, in-process flaky network: a seeded
// fault-injection layer that sits between cluster members (the replica
// stream's HTTP client, the shard coordinator's phase calls) and injects
// delay, drop, duplication and full or asymmetric partitions per
// (src,dst) pair.
//
// The model is message-level and direction-aware:
//
//   - DropRequest: the request never reaches dst. The caller observes what
//     a real partition produces — silence — so a dropped message stalls
//     until the caller's context deadline fires. Nothing happens on the
//     far side.
//   - DropResponse: the request IS delivered and its side effects happen,
//     but the reply is lost. The caller observes the same silence while
//     the far side has already done the work — the half-open case that
//     flushes out non-idempotent retries and split-brain acks.
//   - Duplicate: the request is delivered twice (at-least-once delivery).
//   - DelayMin/DelayMax: per-message latency, uniformly jittered. Because
//     concurrent messages draw independent delays, jitter doubles as
//     reordering.
//
// A symmetric partition between A and B is DropRequest=1 on both
// directions; an asymmetric one sets it on a single direction. All
// randomness comes from one seeded internal/rng source, so a chaos episode
// replays the same fault pattern for the same seed and request order.
//
// Two integration surfaces:
//
//   - Transport(src, dst, base) wraps an http.RoundTripper — plug it into
//     an http.Client to make every request from src to dst traverse the
//     flaky network (the replica follower's stream/snapshot fetches).
//   - Do(ctx, src, dst, call) wraps an in-process call the same way — the
//     shard coordinator's prepare/commit/abort phases use it via the
//     coordinator's Invoke hook.
//
// Episode timelines are scriptable: a []Step applied by Play flips rules
// at offsets from its start, so a whole partition-heal-partition scenario
// is one reproducible literal.
package netchaos

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"drqos/internal/rng"
)

// Rule is the fault profile of one directed (src,dst) pair. The zero Rule
// passes traffic through untouched.
type Rule struct {
	// DropRequest is the probability the request never reaches dst; the
	// caller stalls until its context deadline (silence, like a real
	// partition).
	DropRequest float64
	// DropResponse is the probability the request is delivered — side
	// effects happen on dst — but the reply is lost; the caller stalls and
	// then fails exactly as for DropRequest, without learning the outcome.
	DropResponse float64
	// Duplicate is the probability the request is delivered twice.
	Duplicate float64
	// DelayMin/DelayMax bound the per-message latency, uniformly jittered
	// within the range (also the reordering knob for concurrent messages).
	DelayMin, DelayMax time.Duration
}

// Step is one scripted timeline entry: at offset At from Play's start,
// install Rule on the directed pair — or clear it when Rule is nil. The
// pair "*","*" with a nil Rule heals the whole network.
type Step struct {
	At       time.Duration
	Src, Dst string
	Rule     *Rule
}

// Network is the fault plane. One Network is shared by every transport and
// hook of an episode so a single seed governs all decisions.
type Network struct {
	mu    sync.Mutex
	src   *rng.Source
	rules map[[2]string]Rule

	// Counters for assertions: messages dropped per directed pair.
	dropped map[[2]string]int
}

// New builds a quiet network (no rules, everything passes) seeded for
// reproducible fault decisions.
func New(seed uint64) *Network {
	return &Network{
		src:     rng.New(seed),
		rules:   make(map[[2]string]Rule),
		dropped: make(map[[2]string]int),
	}
}

// SetRule installs (replaces) the fault profile of the directed pair.
func (nw *Network) SetRule(src, dst string, r Rule) {
	nw.mu.Lock()
	nw.rules[[2]string{src, dst}] = r
	nw.mu.Unlock()
}

// ClearRule removes the directed pair's profile (traffic passes again).
func (nw *Network) ClearRule(src, dst string) {
	nw.mu.Lock()
	delete(nw.rules, [2]string{src, dst})
	nw.mu.Unlock()
}

// Partition cuts both directions between a and b (full partition).
func (nw *Network) Partition(a, b string) {
	nw.SetRule(a, b, Rule{DropRequest: 1})
	nw.SetRule(b, a, Rule{DropRequest: 1})
}

// PartitionOneWay cuts requests from src to dst only — the asymmetric
// case. Traffic from dst to src is untouched.
func (nw *Network) PartitionOneWay(src, dst string) {
	nw.SetRule(src, dst, Rule{DropRequest: 1})
}

// Heal clears every rule.
func (nw *Network) Heal() {
	nw.mu.Lock()
	nw.rules = make(map[[2]string]Rule)
	nw.mu.Unlock()
}

// Dropped returns how many messages were dropped on the directed pair
// (request and response drops both count).
func (nw *Network) Dropped(src, dst string) int {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	return nw.dropped[[2]string{src, dst}]
}

// decision is one message's sampled fate.
type decision struct {
	delay        time.Duration
	dropRequest  bool
	dropResponse bool
	duplicate    bool
}

// plan samples one message's fate under the pair's current rule. All
// randomness is consumed here, under the lock, in message order.
func (nw *Network) plan(src, dst string) decision {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	r, ok := nw.rules[[2]string{src, dst}]
	if !ok {
		return decision{}
	}
	var d decision
	if r.DelayMax > r.DelayMin {
		d.delay = r.DelayMin + time.Duration(nw.src.Float64()*float64(r.DelayMax-r.DelayMin))
	} else {
		d.delay = r.DelayMin
	}
	if r.DropRequest > 0 && nw.src.Float64() < r.DropRequest {
		d.dropRequest = true
	} else if r.DropResponse > 0 && nw.src.Float64() < r.DropResponse {
		d.dropResponse = true
	} else if r.Duplicate > 0 && nw.src.Float64() < r.Duplicate {
		d.duplicate = true
	}
	if d.dropRequest || d.dropResponse {
		nw.dropped[[2]string{src, dst}]++
	}
	return d
}

// stall blocks like a lost message: until the context deadline when there
// is one, or a bounded fallback so deadline-free callers cannot wedge.
func stall(ctx context.Context, src, dst string) error {
	if _, ok := ctx.Deadline(); ok {
		<-ctx.Done()
		return fmt.Errorf("netchaos: message %s->%s dropped: %w", src, dst, ctx.Err())
	}
	select {
	case <-ctx.Done():
		return fmt.Errorf("netchaos: message %s->%s dropped: %w", src, dst, ctx.Err())
	case <-time.After(2 * time.Second):
		return fmt.Errorf("netchaos: message %s->%s dropped (no deadline on caller)", src, dst)
	}
}

// sleep waits d or until ctx dies.
func sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Do routes one in-process call through the flaky network: delay first,
// then either silence (request dropped — call never runs), delivery
// (possibly twice), or delivery whose outcome is discarded (response
// dropped — the caller fails without learning the side effects happened).
func (nw *Network) Do(ctx context.Context, src, dst string, call func(ctx context.Context) error) error {
	d := nw.plan(src, dst)
	if err := sleep(ctx, d.delay); err != nil {
		return err
	}
	if d.dropRequest {
		return stall(ctx, src, dst)
	}
	err := call(ctx)
	if d.duplicate {
		// Second delivery of the same request: side effects may run twice.
		_ = call(ctx)
	}
	if d.dropResponse {
		return stall(ctx, src, dst)
	}
	return err
}

// Transport wraps base (nil means http.DefaultTransport) so every request
// through it traverses the flaky network as one src->dst message.
func (nw *Network) Transport(src, dst string, base http.RoundTripper) http.RoundTripper {
	if base == nil {
		base = http.DefaultTransport
	}
	return &transport{nw: nw, src: src, dst: dst, base: base}
}

type transport struct {
	nw       *Network
	src, dst string
	base     http.RoundTripper
}

func (t *transport) RoundTrip(req *http.Request) (*http.Response, error) {
	ctx := req.Context()
	d := t.nw.plan(t.src, t.dst)
	if err := sleep(ctx, d.delay); err != nil {
		return nil, err
	}
	if d.dropRequest {
		return nil, stall(ctx, t.src, t.dst)
	}
	resp, err := t.base.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	if d.duplicate && (req.Body == nil || req.GetBody != nil) {
		// Deliver the request a second time; the duplicate's response is
		// discarded (the network delivered twice, the client asked once).
		if dup, derr := cloneRequest(req); derr == nil {
			if r2, rerr := t.base.RoundTrip(dup); rerr == nil {
				_, _ = io.Copy(io.Discard, r2.Body)
				r2.Body.Close()
			}
		}
	}
	if d.dropResponse {
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return nil, stall(ctx, t.src, t.dst)
	}
	return resp, nil
}

// cloneRequest rebuilds a re-sendable copy of req (body via GetBody).
func cloneRequest(req *http.Request) (*http.Request, error) {
	dup := req.Clone(req.Context())
	if req.Body != nil {
		if req.GetBody == nil {
			return nil, errors.New("netchaos: request body not replayable")
		}
		body, err := req.GetBody()
		if err != nil {
			return nil, err
		}
		dup.Body = body
	}
	return dup, nil
}

// Play applies a scripted timeline: each step fires at its offset from the
// call's start (steps are sorted by At first). Play blocks until the last
// step fired or ctx died; run it in a goroutine to drive a live episode.
func (nw *Network) Play(ctx context.Context, script []Step) error {
	steps := append([]Step(nil), script...)
	sort.SliceStable(steps, func(i, j int) bool { return steps[i].At < steps[j].At })
	start := time.Now()
	for _, st := range steps {
		if err := sleep(ctx, st.At-time.Since(start)); err != nil {
			return err
		}
		switch {
		case st.Rule != nil:
			nw.SetRule(st.Src, st.Dst, *st.Rule)
		case st.Src == "*" && st.Dst == "*":
			nw.Heal()
		default:
			nw.ClearRule(st.Src, st.Dst)
		}
	}
	return nil
}
