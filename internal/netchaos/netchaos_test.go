package netchaos

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestQuietNetworkPassesThrough: no rules, no interference.
func TestQuietNetworkPassesThrough(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		io.WriteString(w, "ok")
	}))
	defer srv.Close()

	nw := New(1)
	client := &http.Client{Transport: nw.Transport("a", "b", nil)}
	resp, err := client.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "ok" || hits.Load() != 1 {
		t.Fatalf("body=%q hits=%d", body, hits.Load())
	}
}

// TestDropRequestStallsUntilDeadline: a request-dropped message is silence —
// the server never sees it and the caller fails at its context deadline.
func TestDropRequestStallsUntilDeadline(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
	}))
	defer srv.Close()

	nw := New(2)
	nw.PartitionOneWay("a", "b")
	client := &http.Client{Transport: nw.Transport("a", "b", nil)}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL, nil)
	start := time.Now()
	_, err := client.Do(req)
	if err == nil {
		t.Fatal("partitioned request succeeded")
	}
	if d := time.Since(start); d < 40*time.Millisecond {
		t.Fatalf("failed after %s, want ~deadline (silence, not fast refusal)", d)
	}
	if hits.Load() != 0 {
		t.Fatalf("server saw %d requests across a request-drop partition", hits.Load())
	}
	if nw.Dropped("a", "b") != 1 {
		t.Fatalf("dropped count = %d, want 1", nw.Dropped("a", "b"))
	}
}

// TestDropResponseDeliversButFails: the half-open case — side effects
// happen on the far side, the caller still sees a failure.
func TestDropResponseDeliversButFails(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
	}))
	defer srv.Close()

	nw := New(3)
	nw.SetRule("a", "b", Rule{DropResponse: 1})
	client := &http.Client{Transport: nw.Transport("a", "b", nil)}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL, nil)
	if _, err := client.Do(req); err == nil {
		t.Fatal("response-dropped request reported success")
	}
	if hits.Load() != 1 {
		t.Fatalf("server saw %d requests, want 1 (request leg delivers)", hits.Load())
	}
}

// TestDuplicateDeliversTwice: at-least-once delivery — the far side runs
// the request twice while the caller sees one success.
func TestDuplicateDeliversTwice(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		b, _ := io.ReadAll(r.Body)
		if string(b) == "payload" {
			hits.Add(1)
		}
	}))
	defer srv.Close()

	nw := New(4)
	nw.SetRule("a", "b", Rule{Duplicate: 1})
	client := &http.Client{Transport: nw.Transport("a", "b", nil)}
	resp, err := client.Post(srv.URL, "text/plain", strings.NewReader("payload"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if hits.Load() != 2 {
		t.Fatalf("server saw %d deliveries, want 2", hits.Load())
	}
}

// TestDoRoutesInProcessCalls: the coordinator-side hook honors the same
// rules — partitioned calls never run, response drops run but fail.
func TestDoRoutesInProcessCalls(t *testing.T) {
	nw := New(5)
	var ran atomic.Int64
	call := func(ctx context.Context) error { ran.Add(1); return nil }

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if err := nw.Do(ctx, "coord", "shard-1", call); err != nil {
		t.Fatalf("quiet Do failed: %v", err)
	}
	if ran.Load() != 1 {
		t.Fatalf("call ran %d times, want 1", ran.Load())
	}

	nw.PartitionOneWay("coord", "shard-1")
	if err := nw.Do(ctx, "coord", "shard-1", call); err == nil {
		t.Fatal("partitioned Do succeeded")
	}
	if ran.Load() != 1 {
		t.Fatal("partitioned call still ran")
	}

	nw.Heal()
	nw.SetRule("coord", "shard-1", Rule{DropResponse: 1})
	ctx2, cancel2 := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel2()
	if err := nw.Do(ctx2, "coord", "shard-1", call); err == nil {
		t.Fatal("response-dropped Do succeeded")
	}
	if ran.Load() != 2 {
		t.Fatalf("response-dropped call ran %d times total, want 2 (it delivers)", ran.Load())
	}
}

// TestSeedDeterminism: the same seed and message order yield the same
// drop pattern.
func TestSeedDeterminism(t *testing.T) {
	pattern := func(seed uint64) []bool {
		nw := New(seed)
		nw.SetRule("a", "b", Rule{DropRequest: 0.5})
		out := make([]bool, 64)
		for i := range out {
			out[i] = nw.plan("a", "b").dropRequest
		}
		return out
	}
	a, b := pattern(42), pattern(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d differs across identical seeds", i)
		}
	}
	c := pattern(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 42 and 43 produced identical 64-message patterns")
	}
}

// TestDelayJitterWithinBounds: delays land inside [DelayMin, DelayMax].
func TestDelayJitterWithinBounds(t *testing.T) {
	nw := New(6)
	nw.SetRule("a", "b", Rule{DelayMin: 2 * time.Millisecond, DelayMax: 9 * time.Millisecond})
	for i := 0; i < 32; i++ {
		d := nw.plan("a", "b")
		if d.delay < 2*time.Millisecond || d.delay > 9*time.Millisecond {
			t.Fatalf("delay %s outside [2ms,9ms]", d.delay)
		}
	}
}

// TestScriptPlayback: Play flips rules at offsets and heals on the
// wildcard step.
func TestScriptPlayback(t *testing.T) {
	nw := New(7)
	err := nw.Play(context.Background(), []Step{
		{At: 0, Src: "a", Dst: "b", Rule: &Rule{DropRequest: 1}},
		{At: 10 * time.Millisecond, Src: "b", Dst: "a", Rule: &Rule{DropRequest: 1}},
		{At: 20 * time.Millisecond, Src: "*", Dst: "*"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if d := nw.plan("a", "b"); d.dropRequest {
		t.Fatal("rule survived the heal step")
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err = nw.Play(ctx, []Step{{At: time.Hour, Src: "a", Dst: "b", Rule: &Rule{}}})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Play returned %v", err)
	}
}
