// Package replica is the network half of primary/backup replication: it
// streams a primary's write-ahead journal to warm standbys and turns a
// standby into the new primary in under a second when the primary dies.
//
// One Node serves both sides of the protocol, because every node can play
// both roles across its lifetime (a promoted standby immediately starts
// shipping to the next standby; a demoted ex-primary starts following):
//
//   - Shipper (always mounted): GET /v1/replica/stream long-polls the
//     journal from a requested sequence number and answers CRC-framed
//     records — the exact on-disk frame bytes — plus fingerprint verify
//     points taken from published epochs. GET /v1/replica/snapshot serves
//     a bootstrap image for standbys that are too far behind (compacted
//     history) or diverged. The stream poll doubles as the replication
//     acknowledgment: a poll with from=N confirms every record below N is
//     durably applied on the follower, which drives the semi-synchronous
//     WaitReplicated hook gating the primary's client acknowledgments.
//
//   - Follower (Run): a continuous replay loop that fetches from the
//     primary, applies each batch through server.ApplyReplicated (journal
//     append under the primary's numbering + live manager replay +
//     fingerprint cross-check), re-bootstraps from a snapshot when the
//     primary's history was compacted past its tip or diverged from it,
//     and health-checks the primary as a side effect of polling: after
//     FailoverTimeout of failed fetches it promotes the local server.
//
// Fencing rides the term number: every stream response and poll carries
// one. A poll bearing a higher term demotes a stale primary before it can
// serve another record; a response bearing a lower term is refused by the
// follower. The term itself is journaled (KindTerm) so it survives crashes
// on both sides.
package replica

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"drqos/internal/journal"
	"drqos/internal/server"
)

// Config tunes a replication node.
type Config struct {
	// Self is the advertised base URL of this node (e.g.
	// "http://10.0.0.2:8080"), handed to peers for redirects. Optional.
	Self string
	// PrimaryURL is the base URL of the primary to follow. Empty for a
	// node booting as primary.
	PrimaryURL string
	// FailoverTimeout promotes the follower after this long without a
	// successful fetch from the primary (0 disables automatic failover —
	// promotion then only happens via POST /v1/admin/promote).
	FailoverTimeout time.Duration
	// PollWait is the shipper's long-poll window and the follower's poll
	// pacing (default 1s, capped to FailoverTimeout/4 when failover is on
	// so detection is never starved by an open poll).
	PollWait time.Duration
	// BatchMax caps records per stream response (default 512).
	BatchMax int
	// SyncActiveWindow is how recently a standby must have polled for the
	// primary to keep gating client acknowledgments on replication
	// (default 3s). Past it the primary falls back to asynchronous
	// replication instead of stalling clients behind a dead standby.
	SyncActiveWindow time.Duration
	// SyncTimeout bounds how long one acknowledgment waits for the standby
	// to confirm fetch before falling back to asynchronous (default 5s).
	// With a lease (below) the fallback is gone: the timeout refuses the
	// acknowledgment instead.
	SyncTimeout time.Duration
	// Lease enables lease-based primary fencing (0 disables). Once a
	// standby has polled, the primary holds an acknowledgment lease it
	// renews on every standby poll; when no poll arrives within Lease, the
	// primary fences itself — mutations answer 503 and the semi-sync
	// fallback to asynchronous acks is disabled — so across any partition
	// at most one node acknowledges writes. The invariant that makes this
	// safe is Lease < FailoverTimeout with both sides configured alike:
	// before promoting, a standby additionally quiesces its polls for
	// Lease + PollWait, guaranteeing the old primary's lease has expired
	// by the instant the standby starts acking (even when the partition is
	// asymmetric and the primary kept receiving the standby's polls).
	Lease time.Duration
	// SnapshotTimeout bounds one bootstrap snapshot fetch (default 30s).
	SnapshotTimeout time.Duration
	// Transport, when non-nil, replaces the follower HTTP client's
	// transport — the netchaos injection point.
	Transport http.RoundTripper
	// Logf receives replication lifecycle events (promotion, demotion,
	// divergence, bootstrap). Nil discards them.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.PollWait <= 0 {
		c.PollWait = time.Second
	}
	if c.FailoverTimeout > 0 && c.PollWait > c.FailoverTimeout/4 {
		c.PollWait = c.FailoverTimeout / 4
	}
	if c.PollWait <= 0 {
		c.PollWait = 50 * time.Millisecond
	}
	// A leased primary must see a poll every Lease; pacing the follower at
	// a third of that keeps one delayed poll from expiring the lease.
	if c.Lease > 0 && c.PollWait > c.Lease/3 {
		c.PollWait = c.Lease / 3
		if c.PollWait < 5*time.Millisecond {
			c.PollWait = 5 * time.Millisecond
		}
	}
	if c.BatchMax <= 0 {
		c.BatchMax = 512
	}
	if c.SnapshotTimeout <= 0 {
		c.SnapshotTimeout = 30 * time.Second
	}
	if c.SyncActiveWindow <= 0 {
		c.SyncActiveWindow = 3 * time.Second
	}
	if c.SyncTimeout <= 0 {
		c.SyncTimeout = 5 * time.Second
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// Node binds a server and its journal into the replication protocol.
type Node struct {
	srv *server.Server
	jnl *journal.Journal
	cfg Config

	client *http.Client

	mu sync.Mutex
	// Shipper-side acknowledgment state: the highest sequence a standby
	// confirmed (by polling past it), when it last polled, and a broadcast
	// channel replaced on every poll so WaitReplicated wakes immediately.
	replicatedSeq uint64
	lastPoll      time.Time
	pollSignal    chan struct{}
	// Lease state: granted latches once any standby polls (an unpaired
	// primary acks asynchronously — there is nobody to lose writes to) and
	// resets on every role transition so a re-promoted node is not fenced
	// by its previous life's poll history. lostLogged dedups the fence log
	// line across the many acks that observe the same expiry.
	leaseGranted bool
	lostLogged   bool
	// Follower-side progress, served into the stats block.
	primaryURL     string
	applied        uint64
	primaryDurable uint64
	lastFetch      time.Time
	diverged       bool
	divergedReason string

	stop     chan struct{}
	stopOnce sync.Once
	done     chan struct{}
}

// NewNode builds a replication node over srv and its journal. The node is
// passive until its Handler is mounted (shipper side) and Run is started
// (follower side).
func NewNode(srv *server.Server, jnl *journal.Journal, cfg Config) *Node {
	cfg = cfg.withDefaults()
	return &Node{
		srv:        srv,
		jnl:        jnl,
		cfg:        cfg,
		client:     &http.Client{Timeout: cfg.PollWait + 5*time.Second, Transport: cfg.Transport},
		pollSignal: make(chan struct{}),
		primaryURL: cfg.PrimaryURL,
		stop:       make(chan struct{}),
		done:       make(chan struct{}),
	}
}

// Stop halts the follower loop (if running). Safe to call multiple times.
func (n *Node) Stop() {
	n.stopOnce.Do(func() { close(n.stop) })
}

// logf forwards to the configured logger (never nil after withDefaults).
func (n *Node) logf(format string, args ...any) { n.cfg.Logf(format, args...) }

// PrimaryURL returns the primary this node currently follows ("" once it
// is the primary itself).
func (n *Node) PrimaryURL() string {
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.srv.IsFollower() {
		return ""
	}
	return n.primaryURL
}

// StatsBlock supplies the follower/shipper detail of the stats replica
// block; the server fills role/term/promotions itself.
func (n *Node) StatsBlock() *server.ReplicaStats {
	n.mu.Lock()
	defer n.mu.Unlock()
	rs := &server.ReplicaStats{
		Diverged: n.diverged,
	}
	if n.srv.IsFollower() {
		rs.PrimaryURL = n.primaryURL
		rs.AppliedSeq = n.applied
		if n.primaryDurable > n.applied {
			rs.LagSeq = int64(n.primaryDurable - n.applied)
		}
		if !n.lastFetch.IsZero() {
			rs.LagSeconds = time.Since(n.lastFetch).Seconds()
		}
	} else {
		rs.ReplicatedSeq = n.replicatedSeq
		if time.Since(n.lastPoll) <= n.cfg.SyncActiveWindow {
			rs.Followers = 1
		}
		rs.LeaseEnabled = n.cfg.Lease > 0
		rs.LeaseLost = n.leaseLostLocked()
	}
	return rs
}

// leaseLostLocked reports whether the standby-granted acknowledgment
// lease has lapsed. Callers hold n.mu.
func (n *Node) leaseLostLocked() bool {
	return n.cfg.Lease > 0 && n.leaseGranted && time.Since(n.lastPoll) > n.cfg.Lease
}

// LeaseLost reports whether this node is a fenced primary: lease fencing
// is on, a standby once granted the lease, and no poll renewed it within
// the lease window. A fenced primary refuses mutations but keeps its role;
// it resumes acking the moment a standby polls again.
func (n *Node) LeaseLost() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return !n.srv.IsFollower() && n.leaseLostLocked()
}

// resetLease clears lease state on a role transition — a freshly promoted
// (or re-promoted) primary starts unleased and acks asynchronously until
// a standby's first poll grants it a new lease.
func (n *Node) resetLease() {
	n.mu.Lock()
	n.leaseGranted = false
	n.lostLogged = false
	n.mu.Unlock()
}

// notePoll records a standby's poll: from confirms everything below it.
func (n *Node) notePoll(confirmed uint64) {
	n.mu.Lock()
	if confirmed > n.replicatedSeq {
		n.replicatedSeq = confirmed
	}
	n.lastPoll = time.Now()
	regained := n.lostLogged
	n.leaseGranted = true
	n.lostLogged = false
	close(n.pollSignal)
	n.pollSignal = make(chan struct{})
	n.mu.Unlock()
	if regained {
		n.logf("replica: lease regained (standby polling resumed); acknowledging mutations again")
	}
}

// WaitReplicated implements the server's semi-synchronous hook: block
// until a standby's poll confirmed seq, the standby goes quiet (fall back
// to asynchronous — a dead standby must not take client traffic down with
// it), the sync timeout expires, or ctx dies.
//
// With lease fencing on and a lease granted, the asynchronous fallbacks
// are closed off: an expired lease or a sync timeout refuses the
// acknowledgment with server.ErrFenced instead of silently acking a write
// the standby — which may be promoting itself on the other side of a
// partition — will never have.
func (n *Node) WaitReplicated(ctx context.Context, seq uint64) error {
	deadline := time.Now().Add(n.cfg.SyncTimeout)
	wake := 100 * time.Millisecond
	if n.cfg.Lease > 0 && n.cfg.Lease/4 < wake {
		wake = n.cfg.Lease / 4
		if wake < time.Millisecond {
			wake = time.Millisecond
		}
	}
	for {
		n.mu.Lock()
		confirmed := n.replicatedSeq >= seq
		active := !n.lastPoll.IsZero() && time.Since(n.lastPoll) <= n.cfg.SyncActiveWindow
		leased := n.cfg.Lease > 0 && n.leaseGranted
		lost := n.leaseLostLocked()
		logFence := lost && !n.lostLogged
		if logFence {
			n.lostLogged = true
		}
		signal := n.pollSignal
		n.mu.Unlock()
		if logFence {
			n.logf("replica: lease lost (no standby poll within %s); fencing acknowledgments", n.cfg.Lease)
		}
		if confirmed {
			return nil
		}
		if leased {
			if lost {
				return fmt.Errorf("%w: no standby poll within the %s lease", server.ErrFenced, n.cfg.Lease)
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("%w: standby did not confirm seq %d within %s", server.ErrFenced, seq, n.cfg.SyncTimeout)
			}
		} else if !active || time.Now().After(deadline) {
			return nil
		}
		select {
		case <-signal:
		case <-time.After(wake):
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// isMutation reports whether a request would originate a mutation — the
// requests a follower redirects to the primary. Admin and replication
// endpoints are exempt: promote/recover must target the node itself, and
// the stream is how a follower serves its own standbys.
func isMutation(r *http.Request) bool {
	if r.Method == http.MethodGet || r.Method == http.MethodHead {
		return false
	}
	if !strings.HasPrefix(r.URL.Path, "/v1/") {
		return false
	}
	if strings.HasPrefix(r.URL.Path, "/v1/admin/") || strings.HasPrefix(r.URL.Path, "/v1/replica/") {
		return false
	}
	return true
}

// FrontHandler wraps the server's API handler with the replication front:
// replication endpoints are mounted under /v1/replica/, promotion goes
// through the split-brain interlock, and mutations are steered by role —
// a follower that knows its primary answers 307 to it (clients that
// follow redirects keep working through a failover without
// re-configuration; the server's own ErrNotPrimary guard backstops
// clients that ignore the redirect), and a lease-fenced primary answers
// 503 with Retry-After before the request can reach the actor loop.
func (n *Node) FrontHandler(api http.Handler) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/replica/stream", n.handleStream)
	mux.HandleFunc("GET /v1/replica/snapshot", n.handleSnapshot)
	mux.HandleFunc("POST /v1/admin/promote", n.handlePromote)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if isMutation(r) {
			if n.srv.IsFollower() {
				if primary := n.PrimaryURL(); primary != "" {
					http.Redirect(w, r, strings.TrimSuffix(primary, "/")+r.URL.RequestURI(), http.StatusTemporaryRedirect)
					return
				}
			} else if n.LeaseLost() {
				writeFenced(w, fmt.Sprintf("replication lease lost: no standby poll within %s; mutations fenced", n.cfg.Lease))
				return
			}
		}
		api.ServeHTTP(w, r)
	})
	return mux
}

// writeFenced answers a refused mutation on a fenced primary: 503 with a
// Retry-After hint, mirroring the server's shed-response shape.
func writeFenced(w http.ResponseWriter, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Retry-After", "1")
	w.WriteHeader(http.StatusServiceUnavailable)
	_ = json.NewEncoder(w).Encode(map[string]any{"error": msg, "retry_after_seconds": 1})
}

// handlePromote is the manual-promotion interlock. A plain promote is
// refused with 409 while the current primary still looks alive — a recent
// successful fetch within the lease window, or a live answer to a direct
// health probe — because promoting next to a healthy primary is exactly
// the split-brain the lease exists to prevent. {"force":true} overrides
// the interlock for operators who know the probe path is lying (e.g. the
// operator can reach the primary but the standby cannot).
func (n *Node) handlePromote(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Force bool `json:"force"`
	}
	if r.Body != nil {
		_ = json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req)
	}
	if n.srv.IsFollower() && !req.Force {
		if reason, alive := n.primaryAlive(r.Context()); alive {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusConflict)
			_ = json.NewEncoder(w).Encode(map[string]any{
				"error":  "primary still alive: " + reason + `; pass {"force":true} to promote anyway`,
				"reason": reason,
			})
			return
		}
	}
	term, err := n.srv.Promote(r.Context())
	if err != nil {
		status := http.StatusInternalServerError
		switch {
		case errors.Is(err, server.ErrConflict):
			status = http.StatusConflict
		case errors.Is(err, server.ErrDegraded):
			status = http.StatusServiceUnavailable
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		_ = json.NewEncoder(w).Encode(map[string]any{"error": err.Error()})
		return
	}
	n.resetLease()
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(map[string]any{"promoted": true, "term": term, "role": "primary"})
}

// primaryAlive reports whether the primary this follower tracks still
// answers: first by the follower's own recent fetch history (cheap, no
// network), then by a short direct probe of the primary's /healthz.
func (n *Node) primaryAlive(ctx context.Context) (reason string, alive bool) {
	window := n.cfg.Lease
	if window <= 0 {
		window = n.cfg.FailoverTimeout
	}
	if window <= 0 {
		window = time.Second
	}
	n.mu.Lock()
	last := n.lastFetch
	primary := n.primaryURL
	n.mu.Unlock()
	if !last.IsZero() && time.Since(last) <= window {
		return fmt.Sprintf("fetched from it %s ago", time.Since(last).Round(time.Millisecond)), true
	}
	if primary == "" {
		return "", false
	}
	probe := window / 2
	if probe < 100*time.Millisecond {
		probe = 100 * time.Millisecond
	}
	if probe > time.Second {
		probe = time.Second
	}
	pctx, cancel := context.WithTimeout(ctx, probe)
	defer cancel()
	req, err := http.NewRequestWithContext(pctx, http.MethodGet, strings.TrimSuffix(primary, "/")+"/healthz", nil)
	if err != nil {
		return "", false
	}
	resp, err := n.client.Do(req)
	if err != nil {
		return "", false
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		return "it answered a health probe just now", true
	}
	return "", false
}
