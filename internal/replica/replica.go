// Package replica is the network half of primary/backup replication: it
// streams a primary's write-ahead journal to warm standbys and turns a
// standby into the new primary in under a second when the primary dies.
//
// One Node serves both sides of the protocol, because every node can play
// both roles across its lifetime (a promoted standby immediately starts
// shipping to the next standby; a demoted ex-primary starts following):
//
//   - Shipper (always mounted): GET /v1/replica/stream long-polls the
//     journal from a requested sequence number and answers CRC-framed
//     records — the exact on-disk frame bytes — plus fingerprint verify
//     points taken from published epochs. GET /v1/replica/snapshot serves
//     a bootstrap image for standbys that are too far behind (compacted
//     history) or diverged. The stream poll doubles as the replication
//     acknowledgment: a poll with from=N confirms every record below N is
//     durably applied on the follower, which drives the semi-synchronous
//     WaitReplicated hook gating the primary's client acknowledgments.
//
//   - Follower (Run): a continuous replay loop that fetches from the
//     primary, applies each batch through server.ApplyReplicated (journal
//     append under the primary's numbering + live manager replay +
//     fingerprint cross-check), re-bootstraps from a snapshot when the
//     primary's history was compacted past its tip or diverged from it,
//     and health-checks the primary as a side effect of polling: after
//     FailoverTimeout of failed fetches it promotes the local server.
//
// Fencing rides the term number: every stream response and poll carries
// one. A poll bearing a higher term demotes a stale primary before it can
// serve another record; a response bearing a lower term is refused by the
// follower. The term itself is journaled (KindTerm) so it survives crashes
// on both sides.
package replica

import (
	"context"
	"net/http"
	"strings"
	"sync"
	"time"

	"drqos/internal/journal"
	"drqos/internal/server"
)

// Config tunes a replication node.
type Config struct {
	// Self is the advertised base URL of this node (e.g.
	// "http://10.0.0.2:8080"), handed to peers for redirects. Optional.
	Self string
	// PrimaryURL is the base URL of the primary to follow. Empty for a
	// node booting as primary.
	PrimaryURL string
	// FailoverTimeout promotes the follower after this long without a
	// successful fetch from the primary (0 disables automatic failover —
	// promotion then only happens via POST /v1/admin/promote).
	FailoverTimeout time.Duration
	// PollWait is the shipper's long-poll window and the follower's poll
	// pacing (default 1s, capped to FailoverTimeout/4 when failover is on
	// so detection is never starved by an open poll).
	PollWait time.Duration
	// BatchMax caps records per stream response (default 512).
	BatchMax int
	// SyncActiveWindow is how recently a standby must have polled for the
	// primary to keep gating client acknowledgments on replication
	// (default 3s). Past it the primary falls back to asynchronous
	// replication instead of stalling clients behind a dead standby.
	SyncActiveWindow time.Duration
	// SyncTimeout bounds how long one acknowledgment waits for the standby
	// to confirm fetch before falling back to asynchronous (default 5s).
	SyncTimeout time.Duration
	// Logf receives replication lifecycle events (promotion, demotion,
	// divergence, bootstrap). Nil discards them.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.PollWait <= 0 {
		c.PollWait = time.Second
	}
	if c.FailoverTimeout > 0 && c.PollWait > c.FailoverTimeout/4 {
		c.PollWait = c.FailoverTimeout / 4
	}
	if c.PollWait <= 0 {
		c.PollWait = 50 * time.Millisecond
	}
	if c.BatchMax <= 0 {
		c.BatchMax = 512
	}
	if c.SyncActiveWindow <= 0 {
		c.SyncActiveWindow = 3 * time.Second
	}
	if c.SyncTimeout <= 0 {
		c.SyncTimeout = 5 * time.Second
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// Node binds a server and its journal into the replication protocol.
type Node struct {
	srv *server.Server
	jnl *journal.Journal
	cfg Config

	client *http.Client

	mu sync.Mutex
	// Shipper-side acknowledgment state: the highest sequence a standby
	// confirmed (by polling past it), when it last polled, and a broadcast
	// channel replaced on every poll so WaitReplicated wakes immediately.
	replicatedSeq uint64
	lastPoll      time.Time
	pollSignal    chan struct{}
	// Follower-side progress, served into the stats block.
	primaryURL     string
	applied        uint64
	primaryDurable uint64
	lastFetch      time.Time
	diverged       bool
	divergedReason string

	stop     chan struct{}
	stopOnce sync.Once
	done     chan struct{}
}

// NewNode builds a replication node over srv and its journal. The node is
// passive until its Handler is mounted (shipper side) and Run is started
// (follower side).
func NewNode(srv *server.Server, jnl *journal.Journal, cfg Config) *Node {
	cfg = cfg.withDefaults()
	return &Node{
		srv:        srv,
		jnl:        jnl,
		cfg:        cfg,
		client:     &http.Client{Timeout: cfg.PollWait + 5*time.Second},
		pollSignal: make(chan struct{}),
		primaryURL: cfg.PrimaryURL,
		stop:       make(chan struct{}),
		done:       make(chan struct{}),
	}
}

// Stop halts the follower loop (if running). Safe to call multiple times.
func (n *Node) Stop() {
	n.stopOnce.Do(func() { close(n.stop) })
}

// logf forwards to the configured logger (never nil after withDefaults).
func (n *Node) logf(format string, args ...any) { n.cfg.Logf(format, args...) }

// PrimaryURL returns the primary this node currently follows ("" once it
// is the primary itself).
func (n *Node) PrimaryURL() string {
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.srv.IsFollower() {
		return ""
	}
	return n.primaryURL
}

// StatsBlock supplies the follower/shipper detail of the stats replica
// block; the server fills role/term/promotions itself.
func (n *Node) StatsBlock() *server.ReplicaStats {
	n.mu.Lock()
	defer n.mu.Unlock()
	rs := &server.ReplicaStats{
		Diverged: n.diverged,
	}
	if n.srv.IsFollower() {
		rs.PrimaryURL = n.primaryURL
		rs.AppliedSeq = n.applied
		if n.primaryDurable > n.applied {
			rs.LagSeq = int64(n.primaryDurable - n.applied)
		}
		if !n.lastFetch.IsZero() {
			rs.LagSeconds = time.Since(n.lastFetch).Seconds()
		}
	} else {
		rs.ReplicatedSeq = n.replicatedSeq
		if time.Since(n.lastPoll) <= n.cfg.SyncActiveWindow {
			rs.Followers = 1
		}
	}
	return rs
}

// notePoll records a standby's poll: from confirms everything below it.
func (n *Node) notePoll(confirmed uint64) {
	n.mu.Lock()
	if confirmed > n.replicatedSeq {
		n.replicatedSeq = confirmed
	}
	n.lastPoll = time.Now()
	close(n.pollSignal)
	n.pollSignal = make(chan struct{})
	n.mu.Unlock()
}

// WaitReplicated implements the server's semi-synchronous hook: block
// until a standby's poll confirmed seq, the standby goes quiet (fall back
// to asynchronous — a dead standby must not take client traffic down with
// it), the sync timeout expires, or ctx dies.
func (n *Node) WaitReplicated(ctx context.Context, seq uint64) error {
	deadline := time.Now().Add(n.cfg.SyncTimeout)
	for {
		n.mu.Lock()
		confirmed := n.replicatedSeq >= seq
		active := !n.lastPoll.IsZero() && time.Since(n.lastPoll) <= n.cfg.SyncActiveWindow
		signal := n.pollSignal
		n.mu.Unlock()
		if confirmed || !active || time.Now().After(deadline) {
			return nil
		}
		select {
		case <-signal:
		case <-time.After(100 * time.Millisecond):
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// isMutation reports whether a request would originate a mutation — the
// requests a follower redirects to the primary. Admin and replication
// endpoints are exempt: promote/recover must target the node itself, and
// the stream is how a follower serves its own standbys.
func isMutation(r *http.Request) bool {
	if r.Method == http.MethodGet || r.Method == http.MethodHead {
		return false
	}
	if !strings.HasPrefix(r.URL.Path, "/v1/") {
		return false
	}
	if strings.HasPrefix(r.URL.Path, "/v1/admin/") || strings.HasPrefix(r.URL.Path, "/v1/replica/") {
		return false
	}
	return true
}

// FrontHandler wraps the server's API handler with the replication front:
// replication endpoints are mounted under /v1/replica/, and while this
// node is a follower that knows its primary, mutations answer 307 to the
// primary (clients that follow redirects keep working through a failover
// without re-configuration; the server's own ErrNotPrimary guard backstops
// clients that ignore the redirect).
func (n *Node) FrontHandler(api http.Handler) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/replica/stream", n.handleStream)
	mux.HandleFunc("GET /v1/replica/snapshot", n.handleSnapshot)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if isMutation(r) && n.srv.IsFollower() {
			if primary := n.PrimaryURL(); primary != "" {
				http.Redirect(w, r, strings.TrimSuffix(primary, "/")+r.URL.RequestURI(), http.StatusTemporaryRedirect)
				return
			}
		}
		api.ServeHTTP(w, r)
	})
	return mux
}
