package replica_test

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"drqos/internal/journal"
	"drqos/internal/manager"
	"drqos/internal/qos"
	"drqos/internal/replica"
	"drqos/internal/rng"
	"drqos/internal/server"
	"drqos/internal/topology"
)

func testGraph(t *testing.T) *topology.Graph {
	t.Helper()
	g, err := topology.Waxman(topology.WaxmanConfig{
		Nodes: 40, Alpha: 0.33, Beta: 0.25, EnsureConnected: true,
	}, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// testNode is one in-process cluster member: server + journal + replication
// node + HTTP front.
type testNode struct {
	srv  *server.Server
	jnl  *journal.Journal
	node *replica.Node
	http *httptest.Server
}

func (tn *testNode) close(t *testing.T) {
	t.Helper()
	tn.node.Stop()
	tn.http.Close()
	_ = tn.srv.Shutdown(context.Background())
	_ = tn.jnl.Close()
}

// bootNode builds a cluster member. primaryURL=="" boots a primary;
// otherwise a follower of that URL.
func bootNode(t *testing.T, g *topology.Graph, primaryURL string, cfg replica.Config) *testNode {
	t.Helper()
	jnl, rec, err := journal.Open(t.TempDir(), journal.Options{FsyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rec.LastSeq != 0 {
		t.Fatalf("fresh dir recovered seq %d", rec.LastSeq)
	}
	return bootNodeOnJournal(t, g, jnl, rec, primaryURL, cfg)
}

// bootNodeOnJournal builds a member over an already-opened journal,
// rebuilding the manager from its recovered contents — the rejoin path.
func bootNodeOnJournal(t *testing.T, g *topology.Graph, jnl *journal.Journal, rec *journal.Recovered, primaryURL string, cfg replica.Config) *testNode {
	t.Helper()
	mgr, err := server.Rebuild(g, manager.Config{Capacity: 10000}, rec)
	if err != nil {
		t.Fatal(err)
	}
	tn := &testNode{jnl: jnl}
	opt := server.Options{
		Journal:  jnl,
		Follower: primaryURL != "",
		Term:     rec.Term,
		// Manual snapshots only: the stream tests want full journal replay.
		SnapshotEvery: -1,
	}
	opt.WaitReplicated = func(ctx context.Context, seq uint64) error {
		return tn.node.WaitReplicated(ctx, seq)
	}
	opt.ReplicaStats = func() *server.ReplicaStats { return tn.node.StatsBlock() }
	srv, err := server.NewFromManager(g, mgr, opt)
	if err != nil {
		t.Fatal(err)
	}
	tn.srv = srv
	cfg.PrimaryURL = primaryURL
	cfg.Logf = t.Logf
	tn.node = replica.NewNode(srv, jnl, cfg)
	tn.http = httptest.NewServer(tn.node.FrontHandler(server.NewHandler(srv)))
	return tn
}

func establishSome(t *testing.T, s *server.Server, n int) int {
	t.Helper()
	ctx := context.Background()
	nodes := s.Graph().NumNodes()
	r := rng.New(7)
	made := 0
	for made < n {
		src := topology.NodeID(r.Intn(nodes))
		dst := topology.NodeID(r.Intn(nodes))
		if src == dst {
			continue
		}
		if _, err := s.Establish(ctx, src, dst, qos.DefaultSpec()); err == nil {
			made++
		} else if !errors.Is(err, manager.ErrRejected) {
			t.Fatal(err)
		}
	}
	return made
}

func waitFor(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestStreamReplicationLockstep: a follower replays the primary's journal
// into a live manager and lands on a bit-identical state fingerprint.
func TestStreamReplicationLockstep(t *testing.T) {
	g := testGraph(t)
	ctx := context.Background()
	primary := bootNode(t, g, "", replica.Config{PollWait: 20 * time.Millisecond})
	defer primary.close(t)
	follower := bootNode(t, g, primary.http.URL, replica.Config{PollWait: 20 * time.Millisecond})
	defer follower.close(t)
	go func() { _ = follower.node.Run(context.Background()) }()

	establishSome(t, primary.srv, 30)
	if _, err := primary.srv.FailLink(ctx, 0); err != nil && !errors.Is(err, server.ErrConflict) {
		t.Fatal(err)
	}

	tip := primary.jnl.LastSeq()
	waitFor(t, 5*time.Second, "follower to reach primary tip", func() bool {
		return follower.jnl.LastSeq() >= tip
	})

	pfp, err := primary.srv.StateFingerprint(ctx)
	if err != nil {
		t.Fatal(err)
	}
	ffp, err := follower.srv.StateFingerprint(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if pfp != ffp {
		t.Fatalf("fingerprint divergence: primary %s follower %s", pfp, ffp)
	}
	if follower.srv.Role() != "follower" || primary.srv.Role() != "primary" {
		t.Fatalf("roles: primary=%s follower=%s", primary.srv.Role(), follower.srv.Role())
	}

	// The follower refuses to originate mutations.
	if _, err := follower.srv.Establish(ctx, 0, 1, qos.DefaultSpec()); !errors.Is(err, server.ErrNotPrimary) {
		t.Fatalf("follower Establish err = %v, want ErrNotPrimary", err)
	}

	// The primary's stats report an active follower; the follower's report
	// its primary and applied progress.
	pst, err := primary.srv.Snapshot(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if pst.Replica == nil || pst.Replica.Role != "primary" {
		t.Fatalf("primary replica block: %+v", pst.Replica)
	}
	waitFor(t, 3*time.Second, "primary to see an active follower", func() bool {
		st, err := primary.srv.Snapshot(ctx)
		return err == nil && st.Replica.Followers == 1
	})
	fst, err := follower.srv.Snapshot(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if fst.Replica == nil || fst.Replica.Role != "follower" || fst.Replica.PrimaryURL != primary.http.URL {
		t.Fatalf("follower replica block: %+v", fst.Replica)
	}
	if fst.Replica.AppliedSeq < tip {
		t.Fatalf("follower applied %d < primary tip %d", fst.Replica.AppliedSeq, tip)
	}
}

// TestSemiSyncAckGating: with an active follower, the primary's mutation
// acknowledgments wait for the follower's poll to confirm replication.
func TestSemiSyncAckGating(t *testing.T) {
	g := testGraph(t)
	primary := bootNode(t, g, "", replica.Config{PollWait: 20 * time.Millisecond, SyncActiveWindow: time.Second})
	defer primary.close(t)
	follower := bootNode(t, g, primary.http.URL, replica.Config{PollWait: 20 * time.Millisecond})
	defer follower.close(t)
	go func() { _ = follower.node.Run(context.Background()) }()

	// Prime: wait until the follower has polled at least once so the
	// standby registers as active.
	waitFor(t, 3*time.Second, "follower first poll", func() bool {
		return primary.node.StatsBlock().Followers == 1
	})
	establishSome(t, primary.srv, 10)
	// Every acked establish must already be replicated: the ack waited on
	// the follower's confirming poll (or the sync fallback, which the tight
	// poll cadence makes vanishingly unlikely here). Confirmed seq lagging
	// the journal by more than the in-flight poll window would mean acks
	// outran replication.
	tip := primary.jnl.LastSeq()
	waitFor(t, 2*time.Second, "replication confirmation to reach tip", func() bool {
		return primary.node.StatsBlock().ReplicatedSeq >= tip
	})
}

// TestFailoverPromotion: killing the primary mid-stream promotes the
// follower within its failover timeout, after which it serves mutations
// under a higher journaled term.
func TestFailoverPromotion(t *testing.T) {
	g := testGraph(t)
	ctx := context.Background()
	primary := bootNode(t, g, "", replica.Config{PollWait: 20 * time.Millisecond})
	follower := bootNode(t, g, primary.http.URL, replica.Config{
		PollWait:        20 * time.Millisecond,
		FailoverTimeout: 400 * time.Millisecond,
	})
	defer follower.close(t)
	runDone := make(chan error, 1)
	go func() { runDone <- follower.node.Run(context.Background()) }()

	establishSome(t, primary.srv, 20)
	tip := primary.jnl.LastSeq()
	waitFor(t, 5*time.Second, "follower to catch up before the kill", func() bool {
		return follower.jnl.LastSeq() >= tip
	})

	// Kill the primary.
	primary.http.CloseClientConnections()
	primary.http.Close()
	_ = primary.srv.Shutdown(ctx)
	_ = primary.jnl.Close()

	start := time.Now()
	waitFor(t, 3*time.Second, "follower to promote", func() bool {
		return follower.srv.Role() == "primary"
	})
	if d := time.Since(start); d > 1500*time.Millisecond {
		t.Fatalf("promotion took %s", d)
	}
	select {
	case err := <-runDone:
		if err != nil {
			t.Fatalf("Run returned %v after promotion", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Run did not exit after promotion")
	}
	if follower.srv.Term() != 1 {
		t.Fatalf("promoted term = %d, want 1", follower.srv.Term())
	}
	if follower.srv.Promotions() != 1 {
		t.Fatalf("promotions = %d, want 1", follower.srv.Promotions())
	}
	// The new primary serves mutations.
	if _, err := follower.srv.Establish(ctx, 0, 1, qos.DefaultSpec()); err != nil && !errors.Is(err, manager.ErrRejected) {
		t.Fatalf("new primary refuses mutations: %v", err)
	}
	// The journaled term survives a restart.
	dir := follower.jnl.Dir()
	follower.node.Stop()
	follower.http.Close()
	_ = follower.srv.Shutdown(ctx)
	_ = follower.jnl.Close()
	jnl2, rec, err := journal.Open(dir, journal.Options{FsyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer jnl2.Close()
	if rec.Term != 1 {
		t.Fatalf("recovered term = %d, want 1", rec.Term)
	}
	// Point the deferred close(t) at the restarted pieces.
	follower.jnl = jnl2
	follower.http = httptest.NewServer(http.NotFoundHandler())
	follower.srv, err = server.NewFromManager(g, mustRebuild(t, g, rec), server.Options{Journal: jnl2, Term: rec.Term})
	if err != nil {
		t.Fatal(err)
	}
	if follower.srv.Term() != 1 {
		t.Fatalf("restarted term = %d, want 1", follower.srv.Term())
	}
}

func mustRebuild(t *testing.T, g *topology.Graph, rec *journal.Recovered) *manager.Manager {
	t.Helper()
	m, err := server.Rebuild(g, manager.Config{Capacity: 10000}, rec)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestStaleTermPollDemotesPrimary: a poll carrying a higher term fences the
// polled node — it demotes before serving a record, the protocol's defense
// against a resurrected ex-primary serving stale mutations.
func TestStaleTermPollDemotesPrimary(t *testing.T) {
	g := testGraph(t)
	primary := bootNode(t, g, "", replica.Config{PollWait: 20 * time.Millisecond})
	defer primary.close(t)
	establishSome(t, primary.srv, 3)

	resp, err := http.Get(primary.http.URL + "/v1/replica/stream?from=1&term=7")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("stream with higher term answered %d: %s", resp.StatusCode, body)
	}
	if !primary.srv.IsFollower() || primary.srv.Term() != 7 {
		t.Fatalf("ex-primary role=%s term=%d after fencing poll, want follower/7",
			primary.srv.Role(), primary.srv.Term())
	}
	// Fenced: originating mutations now refuse.
	if _, err := primary.srv.Establish(context.Background(), 0, 1, qos.DefaultSpec()); !errors.Is(err, server.ErrNotPrimary) {
		t.Fatalf("fenced ex-primary Establish err = %v, want ErrNotPrimary", err)
	}
}

// TestDivergentFollowerRebootstraps: a follower whose local journal holds a
// record the primary never wrote is detected by the prev_crc probe and
// re-seeded from the primary's snapshot, converging on the primary's
// fingerprint instead of replaying on top of the fork.
func TestDivergentFollowerRebootstraps(t *testing.T) {
	g := testGraph(t)
	ctx := context.Background()
	primary := bootNode(t, g, "", replica.Config{PollWait: 20 * time.Millisecond})
	defer primary.close(t)
	establishSome(t, primary.srv, 10)

	// Build the divergent follower: a standalone primary that wrote its own
	// (different) history, then rejoins as a follower.
	loner := bootNode(t, g, "", replica.Config{PollWait: 20 * time.Millisecond})
	establishSome(t, loner.srv, 4)
	// establishSome is deterministic, so the loner's establishes mirror the
	// primary's first four records exactly; a link failure makes the tip a
	// record the primary never wrote.
	if _, err := loner.srv.FailLink(ctx, 0); err != nil && !errors.Is(err, server.ErrConflict) {
		t.Fatal(err)
	}
	dir := loner.jnl.Dir()
	loner.node.Stop()
	loner.http.Close()
	_ = loner.srv.Shutdown(ctx)
	_ = loner.jnl.Close()

	jnl, rec, err := journal.Open(dir, journal.Options{FsyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rec.LastSeq == 0 {
		t.Fatal("divergent history vanished")
	}
	follower := bootNodeOnJournal(t, g, jnl, rec, primary.http.URL, replica.Config{PollWait: 20 * time.Millisecond})
	defer follower.close(t)
	go func() { _ = follower.node.Run(context.Background()) }()

	tip := primary.jnl.LastSeq()
	waitFor(t, 5*time.Second, "divergent follower to re-bootstrap and catch up", func() bool {
		st := follower.node.StatsBlock()
		deg, _ := follower.srv.Degraded()
		return !st.Diverged && follower.jnl.LastSeq() >= tip && !deg
	})
	pfp, err := primary.srv.StateFingerprint(ctx)
	if err != nil {
		t.Fatal(err)
	}
	ffp, err := follower.srv.StateFingerprint(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if pfp != ffp {
		t.Fatalf("post-bootstrap divergence: primary %s follower %s", pfp, ffp)
	}
	// Bootstrap went through InstallSnapshot: the follower's journal starts
	// at a snapshot, not at seq 1.
	if follower.jnl.SnapshotSeq() == 0 {
		t.Fatal("follower journal has no installed snapshot after re-bootstrap")
	}
}

// TestCompactedStreamBootstraps: a fresh follower joining a primary whose
// history is already compacted into a snapshot bootstraps from the image
// rather than failing on the missing prefix.
func TestCompactedStreamBootstraps(t *testing.T) {
	g := testGraph(t)
	ctx := context.Background()
	primary := bootNode(t, g, "", replica.Config{PollWait: 20 * time.Millisecond})
	defer primary.close(t)
	establishSome(t, primary.srv, 10)
	// SnapshotNow compacts: WriteSnapshot deletes superseded segments.
	if err := primary.srv.SnapshotNow(ctx); err != nil {
		t.Fatal(err)
	}
	if primary.jnl.SnapshotSeq() == 0 {
		t.Fatal("SnapshotNow left no snapshot")
	}
	establishSome(t, primary.srv, 5)

	follower := bootNode(t, g, primary.http.URL, replica.Config{PollWait: 20 * time.Millisecond})
	defer follower.close(t)
	go func() { _ = follower.node.Run(context.Background()) }()

	tip := primary.jnl.LastSeq()
	waitFor(t, 5*time.Second, "fresh follower to bootstrap past compaction", func() bool {
		return follower.jnl.LastSeq() >= tip
	})
	pfp, _ := primary.srv.StateFingerprint(ctx)
	ffp, _ := follower.srv.StateFingerprint(ctx)
	if pfp != ffp {
		t.Fatalf("fingerprints differ after compacted bootstrap: %s vs %s", pfp, ffp)
	}
}

// TestFrontHandlerRedirectsMutations: the follower's HTTP front 307s
// mutations to the primary and serves reads itself; /readyz reports role.
func TestFrontHandlerRedirectsMutations(t *testing.T) {
	g := testGraph(t)
	primary := bootNode(t, g, "", replica.Config{PollWait: 20 * time.Millisecond})
	defer primary.close(t)
	follower := bootNode(t, g, primary.http.URL, replica.Config{PollWait: 20 * time.Millisecond})
	defer follower.close(t)

	noRedirect := &http.Client{CheckRedirect: func(*http.Request, []*http.Request) error {
		return http.ErrUseLastResponse
	}}
	resp, err := noRedirect.Post(follower.http.URL+"/v1/connections", "application/json",
		strings.NewReader(`{"src":0,"dst":1}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTemporaryRedirect {
		t.Fatalf("mutation on follower answered %d, want 307", resp.StatusCode)
	}
	loc := resp.Header.Get("Location")
	if !strings.HasPrefix(loc, primary.http.URL) {
		t.Fatalf("redirect location %q does not target primary %q", loc, primary.http.URL)
	}

	// A default client follows the redirect end-to-end.
	resp, err = http.Post(follower.http.URL+"/v1/connections", "application/json",
		strings.NewReader(`{"src":0,"dst":1}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusCreated {
		t.Fatalf("redirected establish answered %d: %s", resp.StatusCode, body)
	}

	// Reads are served locally; /readyz carries the role.
	resp, err = http.Get(follower.http.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	var ready map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&ready); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if ready["role"] != "follower" {
		t.Fatalf("/readyz role = %v, want follower", ready["role"])
	}
}
