// Shipper side: serving the journal stream and bootstrap snapshots.
package replica

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"drqos/internal/journal"
	"drqos/internal/server"
)

// streamEnvelope is one stream response. Frames holds the records in the
// journal's on-disk frame format (length + CRC-32C + payload), base64 in
// JSON — the standby appends exactly the checksummed bytes a journal would
// hold. Verify carries fingerprint checkpoints the follower must match as
// its applied prefix reaches them.
type streamEnvelope struct {
	Term       uint64               `json:"term"`
	DurableSeq uint64               `json:"durable_seq"`
	Verify     []server.VerifyPoint `json:"verify,omitempty"`
	Frames     []byte               `json:"frames,omitempty"`
}

// snapshotEnvelope is the bootstrap image: a snapshot header + body pair
// fit for journal.InstallSnapshot on the receiving side.
type snapshotEnvelope struct {
	Term   uint64                 `json:"term"`
	Header journal.SnapshotHeader `json:"header"`
	Body   []byte                 `json:"body"`
}

// streamError is the shipper's refusal envelope. Reason is machine-read by
// the follower: "compacted" (410) → bootstrap from the snapshot endpoint;
// "diverged" (409) → local history contradicts the primary's, bootstrap;
// "demoted" (503) → this node just stepped down, find the new primary.
type streamError struct {
	Error  string `json:"error"`
	Reason string `json:"reason"`
}

const (
	reasonCompacted = "compacted"
	reasonDiverged  = "diverged"
	reasonDemoted   = "demoted"
)

func writeStreamError(w http.ResponseWriter, code int, reason, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(streamError{Error: msg, Reason: reason})
}

// handleStream answers GET /v1/replica/stream?from=N[&term=T][&prev_crc=C]
// [&wait=ms]: long-poll for records with Seq >= from, bounded by the
// durable tip. A poll is also the standby's acknowledgment that everything
// below from is durably applied over there, and its term is the fencing
// probe — a higher term demotes this node before it serves a byte.
func (n *Node) handleStream(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	from, err := strconv.ParseUint(q.Get("from"), 10, 64)
	if err != nil || from == 0 {
		http.Error(w, "stream: from must be a positive sequence number", http.StatusBadRequest)
		return
	}
	pollerTerm, _ := strconv.ParseUint(q.Get("term"), 10, 64)
	if pollerTerm > n.srv.Term() {
		// The poller promoted past us: we are the stale side. Step down
		// first, answer "demoted" second — never serve under a dead term.
		n.logf("replica: demoting, peer polled with term %d > ours %d", pollerTerm, n.srv.Term())
		if err := n.srv.Demote(r.Context(), pollerTerm); err != nil {
			http.Error(w, "demote: "+err.Error(), http.StatusInternalServerError)
			return
		}
		n.resetLease()
		writeStreamError(w, http.StatusServiceUnavailable, reasonDemoted,
			fmt.Sprintf("stepped down under term %d", pollerTerm))
		return
	}

	if from <= n.jnl.SnapshotSeq() {
		writeStreamError(w, http.StatusGone, reasonCompacted,
			fmt.Sprintf("records below %d are compacted into a snapshot", n.jnl.SnapshotSeq()+1))
		return
	}
	// History-identity probe: the standby reports the CRC of its last
	// record; if ours at the same seq differs — or we do not even have that
	// seq — the histories forked and the standby must re-bootstrap.
	if prev := q.Get("prev_crc"); prev != "" && from > 1 {
		prevCRC, perr := strconv.ParseUint(prev, 10, 32)
		if perr != nil {
			http.Error(w, "stream: bad prev_crc", http.StatusBadRequest)
			return
		}
		switch evs, rerr := n.jnl.ReadFrom(from-1, 1); {
		case errors.Is(rerr, journal.ErrCompacted):
			// Compacted between the check above and here; indistinguishable
			// from the from<=snapSeq case.
			writeStreamError(w, http.StatusGone, reasonCompacted, "history compacted under the probe")
			return
		case rerr != nil:
			http.Error(w, rerr.Error(), http.StatusInternalServerError)
			return
		case len(evs) == 0:
			writeStreamError(w, http.StatusConflict, reasonDiverged,
				fmt.Sprintf("standby is at seq %d but primary's durable tip is %d — divergent suffix", from-1, n.jnl.DurableSeq()))
			return
		case journal.EventCRC(evs[0]) != uint32(prevCRC):
			writeStreamError(w, http.StatusConflict, reasonDiverged,
				fmt.Sprintf("record %d CRC mismatch: standby %08x, primary %08x", from-1, uint32(prevCRC), journal.EventCRC(evs[0])))
			return
		}
	}
	// The probe passed: everything below from is confirmed replicated.
	n.notePoll(from - 1)

	wait := n.cfg.PollWait
	if ms, werr := strconv.Atoi(q.Get("wait")); werr == nil && ms >= 0 {
		wait = time.Duration(ms) * time.Millisecond
		if wait > 30*time.Second {
			wait = 30 * time.Second
		}
	}
	deadline := time.Now().Add(wait)
	var evs []journal.Event
	for {
		evs, err = n.jnl.ReadFrom(from, n.cfg.BatchMax)
		if errors.Is(err, journal.ErrCompacted) {
			writeStreamError(w, http.StatusGone, reasonCompacted, "history compacted mid-poll")
			return
		}
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		if len(evs) > 0 || time.Now().After(deadline) || r.Context().Err() != nil {
			break
		}
		select {
		case <-time.After(5 * time.Millisecond):
		case <-r.Context().Done():
		}
	}

	env := streamEnvelope{
		Term:       n.srv.Term(),
		DurableSeq: n.jnl.DurableSeq(),
	}
	if len(evs) > 0 {
		env.Frames = journal.EncodeFrames(evs)
		last := evs[len(evs)-1].Seq
		// Verify points come from the published epoch: the fingerprint is
		// cached per epoch, so attaching it costs one map of hash-at-seq,
		// not a hash per poll. Only a point the batch actually reaches is
		// useful to the follower.
		if v := n.srv.View(); v != nil && v.JournalSeq >= from && v.JournalSeq <= last {
			env.Verify = []server.VerifyPoint{{Seq: v.JournalSeq, Fingerprint: v.Fingerprint()}}
		}
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(env)
}

// handleSnapshot answers GET /v1/replica/snapshot with the newest
// bootstrap image, writing one on demand when none exists yet.
func (n *Node) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	hdr, body, err := n.jnl.LatestSnapshot()
	if err == nil && hdr == nil {
		// Nothing compacted yet: materialize a snapshot so a diverged
		// standby can still be re-seeded from the primary's exact state.
		if serr := n.srv.SnapshotNow(r.Context()); serr != nil {
			http.Error(w, "snapshot: "+serr.Error(), http.StatusConflict)
			return
		}
		hdr, body, err = n.jnl.LatestSnapshot()
	}
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	if hdr == nil {
		http.Error(w, "snapshot: none available", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(snapshotEnvelope{Term: n.srv.Term(), Header: *hdr, Body: body})
}
