// Follower side: the continuous replay loop, snapshot re-bootstrap, and
// the failover controller that promotes after sustained primary failure.
package replica

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"drqos/internal/journal"
	"drqos/internal/rng"
	"drqos/internal/server"
)

// errBootstrap asks the loop to re-seed from a primary snapshot: the
// primary compacted past our tip, or our history diverged from its.
var errBootstrap = errors.New("replica: bootstrap required")

// errDemotedPrimary reports that the polled node stepped down; the cluster
// is between primaries and the poll should back off and retry.
var errDemotedPrimary = errors.New("replica: polled node is not primary")

// Run drives the follower until promotion, Stop, or ctx cancellation: poll
// the primary, apply what arrives, re-bootstrap when told to, and promote
// when the primary has been unreachable for FailoverTimeout. It returns
// nil after a successful promotion (the node is the primary now) and the
// terminal error otherwise.
func (n *Node) Run(ctx context.Context) error {
	defer close(n.done)
	lastSuccess := time.Now()
	backoff := 10 * time.Millisecond
	// Jitter desynchronizes retry storms when several standbys chase the
	// same dead primary; the seed only shapes sleep lengths, not behavior.
	jit := rng.New(0x9e3779b97f4a7c15)
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-n.stop:
			return nil
		default:
		}
		if !n.srv.IsFollower() {
			// Promoted out from under the loop (POST /v1/admin/promote).
			n.logf("replica: role is primary, follower loop exiting")
			return nil
		}

		err := n.fetchAndApply(ctx)
		switch {
		case err == nil:
			lastSuccess = time.Now()
			backoff = 10 * time.Millisecond
			continue
		case errors.Is(err, errBootstrap):
			n.logf("replica: re-bootstrapping from primary snapshot: %v", err)
			if berr := n.bootstrap(ctx); berr != nil {
				n.setDiverged(true, berr.Error())
				n.logf("replica: bootstrap failed: %v", berr)
			} else {
				n.setDiverged(false, "")
				lastSuccess = time.Now()
				backoff = 10 * time.Millisecond
				continue
			}
		case errors.Is(err, server.ErrDiverged):
			// ApplyReplicated latched the server degraded; a snapshot
			// re-seed is the only way back.
			n.setDiverged(true, err.Error())
			n.logf("replica: diverged: %v", err)
			if berr := n.bootstrap(ctx); berr == nil {
				n.setDiverged(false, "")
				lastSuccess = time.Now()
				continue
			}
		case errors.Is(err, server.ErrConflict):
			// The server's role flipped mid-apply; loop around and exit.
			continue
		case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
			if ctx.Err() != nil {
				return ctx.Err()
			}
		default:
			n.logf("replica: fetch from %s failed: %v", n.PrimaryURL(), err)
		}

		// The poll failed. Sustained failure is the failover signal.
		if n.cfg.FailoverTimeout > 0 && time.Since(lastSuccess) >= n.cfg.FailoverTimeout {
			// Quiesce before seizing the cluster: with lease fencing on,
			// stop polling for a full lease plus one poll interval so the
			// old primary's lease — which our own polls may still have been
			// renewing across an asymmetric partition — is guaranteed
			// expired before we start acknowledging writes.
			if q := n.cfg.Lease + n.cfg.PollWait; n.cfg.Lease > 0 {
				n.logf("replica: failover timeout reached; quiescing %s so the primary's lease expires before promotion", q)
				select {
				case <-time.After(q):
				case <-n.stop:
					return nil
				case <-ctx.Done():
					return ctx.Err()
				}
			}
			term, perr := n.srv.Promote(ctx)
			if perr == nil {
				n.resetLease()
				n.logf("replica: promoted to primary at term %d after %s without a primary",
					term, time.Since(lastSuccess).Round(time.Millisecond))
				return nil
			}
			if errors.Is(perr, server.ErrConflict) {
				return nil // someone promoted us concurrently
			}
			// A degraded (diverged) follower refuses promotion — keep
			// retrying the primary instead of seizing the cluster.
			n.logf("replica: promotion refused: %v", perr)
		}
		// Capped backoff with jitter on the upper half: sleep in
		// [backoff/2, backoff).
		sleep := backoff/2 + time.Duration(jit.Float64()*float64(backoff)/2)
		select {
		case <-time.After(sleep):
		case <-n.stop:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
		if backoff < 250*time.Millisecond {
			backoff *= 2
		}
	}
}

func (n *Node) setDiverged(d bool, reason string) {
	n.mu.Lock()
	n.diverged, n.divergedReason = d, reason
	n.mu.Unlock()
}

// prevCRC returns the CRC of the last local record, or ok=false when the
// tip sits inside a snapshot (nothing to probe with).
func (n *Node) prevCRC() (uint32, bool) {
	tip := n.jnl.LastSeq()
	if tip == 0 || tip <= n.jnl.SnapshotSeq() {
		return 0, false
	}
	evs, err := n.jnl.ReadFrom(tip, 1)
	if err != nil || len(evs) != 1 {
		return 0, false
	}
	return journal.EventCRC(evs[0]), true
}

// fetchAndApply performs one poll cycle: request records past the local
// tip (the request itself acknowledges everything at or below the tip),
// verify the response's term, and apply the batch.
func (n *Node) fetchAndApply(ctx context.Context) error {
	primary := n.PrimaryURL()
	if primary == "" {
		return errDemotedPrimary
	}
	from := n.jnl.LastSeq() + 1
	q := url.Values{}
	q.Set("from", strconv.FormatUint(from, 10))
	q.Set("term", strconv.FormatUint(n.srv.Term(), 10))
	q.Set("wait", strconv.Itoa(int(n.cfg.PollWait/time.Millisecond)))
	if crc, ok := n.prevCRC(); ok {
		q.Set("prev_crc", strconv.FormatUint(uint64(crc), 10))
	}
	// An explicit per-fetch deadline: a poll that hangs past the long-poll
	// window plus grace is indistinguishable from a dead primary, and the
	// failover clock must not be starved by one silently-dropped request.
	fctx, cancel := context.WithTimeout(ctx, n.fetchTimeout())
	defer cancel()
	req, err := http.NewRequestWithContext(fctx, http.MethodGet,
		strings.TrimSuffix(primary, "/")+"/v1/replica/stream?"+q.Encode(), nil)
	if err != nil {
		return err
	}
	resp, err := n.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return err
	}
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusGone:
		return fmt.Errorf("%w: %s", errBootstrap, strings.TrimSpace(string(body)))
	case http.StatusConflict:
		return fmt.Errorf("%w: %s", errBootstrap, strings.TrimSpace(string(body)))
	case http.StatusServiceUnavailable:
		return fmt.Errorf("%w: %s", errDemotedPrimary, strings.TrimSpace(string(body)))
	default:
		return fmt.Errorf("replica: stream answered %d: %s", resp.StatusCode, strings.TrimSpace(string(body)))
	}
	var env streamEnvelope
	if err := json.Unmarshal(body, &env); err != nil {
		return fmt.Errorf("replica: bad stream envelope: %v", err)
	}
	if env.Term < n.srv.Term() {
		// A stale ex-primary is answering; refuse its records. Fencing in
		// the other direction (it demoting) happens when it polls or when
		// our own term reaches it through an operator.
		return fmt.Errorf("replica: refused batch from stale term %d (local term %d)", env.Term, n.srv.Term())
	}

	n.mu.Lock()
	n.primaryDurable = env.DurableSeq
	n.lastFetch = time.Now()
	n.mu.Unlock()

	if len(env.Frames) == 0 {
		return nil // quiet poll: primary is alive, nothing new
	}
	evs, err := journal.DecodeFrames(env.Frames)
	if err != nil {
		return fmt.Errorf("replica: corrupt stream frames: %v", err)
	}
	applied, err := n.srv.ApplyReplicated(ctx, evs, env.Verify)
	if applied > 0 {
		n.mu.Lock()
		n.applied = applied
		n.mu.Unlock()
	}
	return err
}

// fetchTimeout bounds one stream poll: the long-poll window the request
// asks for, plus grace for transfer. With failover on, grace is half the
// failover timeout (floor 250ms) so a wedged poll can never push failure
// detection past ~1.5 timeouts.
func (n *Node) fetchTimeout() time.Duration {
	grace := 2 * time.Second
	if n.cfg.FailoverTimeout > 0 {
		grace = n.cfg.FailoverTimeout / 2
		if grace < 250*time.Millisecond {
			grace = 250 * time.Millisecond
		}
	}
	return n.cfg.PollWait + grace
}

// bootstrap re-seeds the whole node from the primary's snapshot: fetch the
// image, replace the local journal's contents with it (wiping any
// divergent suffix), and rebuild + swap the live manager from the fresh
// journal. This is the big hammer — it discards local history — which is
// exactly right when that history is compacted-away or contradicted.
func (n *Node) bootstrap(ctx context.Context) error {
	primary := n.PrimaryURL()
	if primary == "" {
		return errDemotedPrimary
	}
	bctx, cancel := context.WithTimeout(ctx, n.cfg.SnapshotTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(bctx, http.MethodGet,
		strings.TrimSuffix(primary, "/")+"/v1/replica/snapshot", nil)
	if err != nil {
		return err
	}
	resp, err := n.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 256<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("replica: snapshot answered %d: %s", resp.StatusCode, strings.TrimSpace(string(body)))
	}
	var env snapshotEnvelope
	if err := json.Unmarshal(body, &env); err != nil {
		return fmt.Errorf("replica: bad snapshot envelope: %v", err)
	}
	// The follower loop is the journal's only writer, so installing here is
	// append-quiescent by construction.
	if err := n.jnl.InstallSnapshot(env.Header, env.Body); err != nil {
		return fmt.Errorf("replica: install snapshot: %v", err)
	}
	if _, err := n.srv.Reseed(ctx); err != nil {
		return fmt.Errorf("replica: reseed from installed snapshot: %v", err)
	}
	n.mu.Lock()
	n.applied = env.Header.Seq
	n.mu.Unlock()
	n.logf("replica: bootstrapped from primary snapshot at seq %d (term %d)", env.Header.Seq, env.Term)
	return nil
}
