package replica_test

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"drqos/internal/manager"
	"drqos/internal/netchaos"
	"drqos/internal/qos"
	"drqos/internal/replica"
	"drqos/internal/server"
)

// leasePair boots a lease-fenced primary and a standby whose client routes
// through a netchaos transport, and waits until the standby's first poll
// grants the lease.
func leasePair(t *testing.T, net *netchaos.Network, lease, syncTO, failover time.Duration) (primary, standby *testNode, runDone chan error) {
	t.Helper()
	g := testGraph(t)
	primary = bootNode(t, g, "", replica.Config{
		PollWait: 20 * time.Millisecond, Lease: lease, SyncTimeout: syncTO,
	})
	t.Cleanup(func() { primary.close(t) })
	standby = bootNode(t, g, primary.http.URL, replica.Config{
		PollWait: 20 * time.Millisecond, Lease: lease, SyncTimeout: syncTO,
		FailoverTimeout: failover,
		Transport:       net.Transport("standby", "primary", nil),
	})
	t.Cleanup(func() { standby.close(t) })
	runDone = make(chan error, 1)
	go func() { runDone <- standby.node.Run(context.Background()) }()
	waitFor(t, 3*time.Second, "standby first poll to grant the lease", func() bool {
		return primary.node.StatsBlock().Followers == 1
	})
	return primary, standby, runDone
}

// TestLeaseFenceSymmetricPartition is the core split-brain guarantee: cut
// both directions of the replication link and the primary must refuse
// acknowledgments within one lease interval — it fences rather than
// falling back to async and acking writes the standby will never see.
func TestLeaseFenceSymmetricPartition(t *testing.T) {
	const lease = 200 * time.Millisecond
	net := netchaos.New(1)
	primary, _, _ := leasePair(t, net, lease, 2*time.Second, 0)
	establishSome(t, primary.srv, 5)

	net.Partition("standby", "primary")
	cut := time.Now()
	_, err := primary.srv.Establish(context.Background(), 0, 1, qos.DefaultSpec())
	fenced := time.Since(cut)
	if !errors.Is(err, server.ErrFenced) {
		t.Fatalf("partitioned primary Establish err = %v, want ErrFenced", err)
	}
	// "Within one lease interval": the lease was last renewed at most one
	// poll before the cut, so the fence lands by cut+lease plus the waiter's
	// wake-up granularity (lease/4).
	if fenced > lease+lease/2 {
		t.Fatalf("fence took %s after the cut, want within one %s lease interval", fenced, lease)
	}
	if !primary.node.LeaseLost() {
		t.Fatal("LeaseLost() = false on a partitioned primary")
	}
	st := primary.node.StatsBlock()
	if !st.LeaseEnabled || !st.LeaseLost {
		t.Fatalf("stats lease_enabled=%v lease_lost=%v, want true/true", st.LeaseEnabled, st.LeaseLost)
	}

	// The HTTP front sheds mutations instead of queueing them behind the
	// fence, and /readyz goes not-ready.
	resp, err := http.Post(primary.http.URL+"/v1/connections", "application/json",
		strings.NewReader(`{"src":0,"dst":1}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("fenced mutation answered %d (%s), want 503", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("fenced 503 carries no Retry-After")
	}
	resp, err = http.Get(primary.http.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("fenced /readyz answered %d, want 503", resp.StatusCode)
	}

	// Heal: the standby's polls resume and the lease is regained.
	net.Heal()
	waitFor(t, 3*time.Second, "lease to be regained after heal", func() bool {
		return !primary.node.LeaseLost()
	})
	if _, err := primary.srv.Establish(context.Background(), 0, 2, qos.DefaultSpec()); err != nil && !errors.Is(err, manager.ErrRejected) {
		t.Fatalf("healed primary Establish err = %v", err)
	}
}

// TestLeaseFenceAsymmetricRequestDrop cuts only the standby→primary
// request direction: the primary hears nothing (lease fence within one
// interval, as in the symmetric case) while the standby times out and
// promotes. The fence must land before the new primary's first ack —
// at most one side ever acknowledges.
func TestLeaseFenceAsymmetricRequestDrop(t *testing.T) {
	const lease = 150 * time.Millisecond
	net := netchaos.New(2)
	primary, standby, runDone := leasePair(t, net, lease, 400*time.Millisecond, 400*time.Millisecond)
	establishSome(t, primary.srv, 5)

	net.SetRule("standby", "primary", netchaos.Rule{DropRequest: 1})
	cut := time.Now()
	if _, err := primary.srv.Establish(context.Background(), 0, 1, qos.DefaultSpec()); !errors.Is(err, server.ErrFenced) {
		t.Fatalf("request-dropped primary Establish err = %v, want ErrFenced", err)
	}
	tFence := time.Now()
	if d := tFence.Sub(cut); d > lease+lease/2 {
		t.Fatalf("fence took %s, want within one %s lease interval", d, lease)
	}

	waitFor(t, 3*time.Second, "standby to promote", func() bool {
		return standby.srv.Role() == "primary"
	})
	select {
	case err := <-runDone:
		if err != nil {
			t.Fatalf("Run returned %v after promotion", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Run did not exit after promotion")
	}
	if _, err := standby.srv.Establish(context.Background(), 0, 1, qos.DefaultSpec()); err != nil && !errors.Is(err, manager.ErrRejected) {
		t.Fatalf("promoted standby Establish err = %v", err)
	}
	if !time.Now().After(tFence) {
		t.Fatal("new primary acked before the old one fenced")
	}
	// The old primary stays fenced even after the rules lift: nobody polls
	// it anymore.
	net.Heal()
	time.Sleep(2 * lease)
	if _, err := primary.srv.Establish(context.Background(), 0, 2, qos.DefaultSpec()); !errors.Is(err, server.ErrFenced) {
		t.Fatalf("abandoned ex-primary Establish err = %v, want ErrFenced", err)
	}
}

// TestLeaseFenceAsymmetricResponseDrop cuts only the primary→standby
// response direction: the standby's polls still arrive and renew the
// lease, so the lease alone cannot fence — the sync timeout must, by
// refusing the legacy fallback-to-async. The standby, hearing nothing,
// promotes after quiescing its polls long enough for the primary's lease
// to lapse.
func TestLeaseFenceAsymmetricResponseDrop(t *testing.T) {
	const (
		lease  = 150 * time.Millisecond
		syncTO = 300 * time.Millisecond
	)
	net := netchaos.New(3)
	primary, standby, runDone := leasePair(t, net, lease, syncTO, 400*time.Millisecond)
	establishSome(t, primary.srv, 5)

	net.SetRule("standby", "primary", netchaos.Rule{DropResponse: 1})
	// A long poll already in flight at the cut still carries the clean
	// rule, so its response (and the confirmation it triggers) can land —
	// that ack is safe, the standby really has the record. Let those
	// drain before measuring the fence.
	time.Sleep(60 * time.Millisecond)
	cut := time.Now()
	_, err := primary.srv.Establish(context.Background(), 0, 1, qos.DefaultSpec())
	if !errors.Is(err, server.ErrFenced) {
		t.Fatalf("response-dropped primary Establish err = %v, want ErrFenced (async fallback must be closed)", err)
	}
	if d := time.Since(cut); d > syncTO+250*time.Millisecond {
		t.Fatalf("sync-timeout fence took %s, bound %s", d, syncTO)
	}

	waitFor(t, 5*time.Second, "standby to promote", func() bool {
		return standby.srv.Role() == "primary"
	})
	select {
	case err := <-runDone:
		if err != nil {
			t.Fatalf("Run returned %v after promotion", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Run did not exit after promotion")
	}
	// Promotion only happened after the quiesce, so by now the old
	// primary's lease has lapsed (its poller is gone): both the sync
	// timeout and the lease fence it.
	waitFor(t, 2*time.Second, "old primary's lease to lapse", func() bool {
		return primary.node.LeaseLost()
	})
	if _, err := standby.srv.Establish(context.Background(), 0, 1, qos.DefaultSpec()); err != nil && !errors.Is(err, manager.ErrRejected) {
		t.Fatalf("promoted standby Establish err = %v", err)
	}
}

// TestPromoteInterlock exercises POST /v1/admin/promote: refused with 409
// while the primary is demonstrably alive, allowed once it is gone, and a
// no-op 409 on a node that is already primary.
func TestPromoteInterlock(t *testing.T) {
	g := testGraph(t)
	primary := bootNode(t, g, "", replica.Config{PollWait: 20 * time.Millisecond})
	follower := bootNode(t, g, primary.http.URL, replica.Config{
		PollWait: 20 * time.Millisecond,
		// A lease (but no FailoverTimeout) gives the interlock its
		// liveness window without racing an automatic promotion.
		Lease: 100 * time.Millisecond,
	})
	defer follower.close(t)
	go func() { _ = follower.node.Run(context.Background()) }()
	establishSome(t, primary.srv, 3)
	waitFor(t, 3*time.Second, "follower to start polling", func() bool {
		return primary.node.StatsBlock().Followers == 1
	})

	promote := func(url, body string) (int, map[string]any) {
		t.Helper()
		resp, err := http.Post(url+"/v1/admin/promote", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out map[string]any
		_ = json.NewDecoder(resp.Body).Decode(&out)
		return resp.StatusCode, out
	}

	// Interlock: the primary is alive (we just fetched from it), so a
	// plain promote refuses.
	code, out := promote(follower.http.URL, `{}`)
	if code != http.StatusConflict {
		t.Fatalf("promote with live primary answered %d (%v), want 409", code, out)
	}
	if msg, _ := out["error"].(string); !strings.Contains(msg, "force") {
		t.Fatalf("interlock error does not mention the force escape hatch: %v", out)
	}

	// Promoting a node that is already primary is a 409 conflict too.
	if code, out := promote(primary.http.URL, `{"force":true}`); code != http.StatusConflict {
		t.Fatalf("promote on the primary answered %d (%v), want 409", code, out)
	}

	// Kill the primary, let the liveness window lapse, and the same plain
	// promote succeeds.
	primary.close(t)
	waitFor(t, 5*time.Second, "manual promote to succeed after primary death", func() bool {
		code, _ := promote(follower.http.URL, `{}`)
		return code == http.StatusOK
	})
	if follower.srv.Role() != "primary" || follower.srv.Term() != 1 {
		t.Fatalf("after manual promote: role=%s term=%d, want primary/1", follower.srv.Role(), follower.srv.Term())
	}
	if _, err := follower.srv.Establish(context.Background(), 0, 1, qos.DefaultSpec()); err != nil && !errors.Is(err, manager.ErrRejected) {
		t.Fatalf("manually promoted node refuses mutations: %v", err)
	}
}
