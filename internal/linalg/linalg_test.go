package linalg

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"drqos/internal/rng"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestNewMatrixZeroed(t *testing.T) {
	m := NewMatrix(3, 4)
	if m.Rows() != 3 || m.Cols() != 4 {
		t.Fatalf("dims %dx%d", m.Rows(), m.Cols())
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			if m.At(i, j) != 0 {
				t.Fatalf("element (%d,%d) not zero", i, j)
			}
		}
	}
}

func TestNewMatrixPanicsOnBadDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewMatrix(0, 1) did not panic")
		}
	}()
	NewMatrix(0, 1)
}

func TestFromRows(t *testing.T) {
	m, err := FromRows([][]float64{{1, 2}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if m.At(0, 1) != 2 || m.At(1, 0) != 3 {
		t.Fatalf("wrong layout: %v", m)
	}
}

func TestFromRowsRagged(t *testing.T) {
	if _, err := FromRows([][]float64{{1, 2}, {3}}); !errors.Is(err, ErrShape) {
		t.Fatalf("ragged rows: err = %v, want ErrShape", err)
	}
	if _, err := FromRows(nil); !errors.Is(err, ErrShape) {
		t.Fatalf("nil rows: err = %v, want ErrShape", err)
	}
}

func TestIdentity(t *testing.T) {
	m := Identity(4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if m.At(i, j) != want {
				t.Fatalf("I(%d,%d) = %v", i, j, m.At(i, j))
			}
		}
	}
}

func TestSetAddClone(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Set(0, 0, 5)
	m.Add(0, 0, 2)
	c := m.Clone()
	m.Set(0, 0, 0)
	if c.At(0, 0) != 7 {
		t.Fatalf("clone not deep: %v", c.At(0, 0))
	}
}

func TestTranspose(t *testing.T) {
	m, _ := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	tr := m.Transpose()
	if tr.Rows() != 3 || tr.Cols() != 2 {
		t.Fatalf("transpose dims %dx%d", tr.Rows(), tr.Cols())
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if m.At(i, j) != tr.At(j, i) {
				t.Fatalf("transpose mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestMatMul(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	b, _ := FromRows([][]float64{{5, 6}, {7, 8}})
	p, err := MatMul(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]float64{{19, 22}, {43, 50}}
	for i := range want {
		for j := range want[i] {
			if p.At(i, j) != want[i][j] {
				t.Fatalf("product (%d,%d) = %v, want %v", i, j, p.At(i, j), want[i][j])
			}
		}
	}
}

func TestMatMulShapeError(t *testing.T) {
	a := NewMatrix(2, 3)
	b := NewMatrix(2, 3)
	if _, err := MatMul(a, b); !errors.Is(err, ErrShape) {
		t.Fatalf("err = %v, want ErrShape", err)
	}
}

func TestMatVec(t *testing.T) {
	m, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	y, err := m.MatVec([]float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if y[0] != 3 || y[1] != 7 {
		t.Fatalf("MatVec = %v", y)
	}
	if _, err := m.MatVec([]float64{1}); !errors.Is(err, ErrShape) {
		t.Fatalf("want ErrShape, got %v", err)
	}
}

func TestVecMat(t *testing.T) {
	m, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	y, err := m.VecMat([]float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if y[0] != 4 || y[1] != 6 {
		t.Fatalf("VecMat = %v", y)
	}
}

func TestSolveKnownSystem(t *testing.T) {
	a, _ := FromRows([][]float64{
		{2, 1, -1},
		{-3, -1, 2},
		{-2, 1, 2},
	})
	x, err := SolveLinear(a, []float64{8, -11, -3})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 3, -1}
	for i := range want {
		if !almostEq(x[i], want[i], 1e-10) {
			t.Fatalf("x = %v, want %v", x, want)
		}
	}
}

func TestSolveRequiresPivoting(t *testing.T) {
	// Zero in the (0,0) position forces a row swap.
	a, _ := FromRows([][]float64{
		{0, 1},
		{1, 0},
	})
	x, err := SolveLinear(a, []float64{3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(x[0], 4, 1e-12) || !almostEq(x[1], 3, 1e-12) {
		t.Fatalf("x = %v", x)
	}
}

func TestSolveSingular(t *testing.T) {
	a, _ := FromRows([][]float64{
		{1, 2},
		{2, 4},
	})
	if _, err := SolveLinear(a, []float64{1, 2}); !errors.Is(err, ErrSingular) {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
}

func TestSolveNonSquare(t *testing.T) {
	a := NewMatrix(2, 3)
	if _, err := Factorize(a); !errors.Is(err, ErrShape) {
		t.Fatalf("err = %v, want ErrShape", err)
	}
}

func TestDet(t *testing.T) {
	a, _ := FromRows([][]float64{
		{4, 3},
		{6, 3},
	})
	f, err := Factorize(a)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(f.Det(), -6, 1e-12) {
		t.Fatalf("det = %v, want -6", f.Det())
	}
}

func TestIdentitySolve(t *testing.T) {
	b := []float64{1, 2, 3, 4, 5}
	x, err := SolveLinear(Identity(5), b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range b {
		if x[i] != b[i] {
			t.Fatalf("identity solve changed rhs: %v", x)
		}
	}
}

// Property: for random well-conditioned matrices, A·solve(A, b) ≈ b.
func TestQuickSolveResidual(t *testing.T) {
	f := func(seed uint64) bool {
		src := rng.New(seed)
		n := 2 + src.Intn(8)
		a := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, src.Float64()*2-1)
			}
			// Diagonal dominance keeps the matrix comfortably nonsingular.
			a.Add(i, i, float64(n)+1)
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = src.Float64()*10 - 5
		}
		x, err := SolveLinear(a, b)
		if err != nil {
			return false
		}
		ax, err := a.MatVec(x)
		if err != nil {
			return false
		}
		for i := range b {
			if !almostEq(ax[i], b[i], 1e-8) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestNorms(t *testing.T) {
	x := []float64{-3, 4, -1}
	if Norm1(x) != 8 {
		t.Fatalf("Norm1 = %v", Norm1(x))
	}
	if NormInf(x) != 4 {
		t.Fatalf("NormInf = %v", NormInf(x))
	}
}

func TestDotAXPY(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{4, 5, 6}
	if Dot(a, b) != 32 {
		t.Fatalf("Dot = %v", Dot(a, b))
	}
	y := []float64{1, 1, 1}
	AXPY(2, a, y)
	want := []float64{3, 5, 7}
	for i := range want {
		if y[i] != want[i] {
			t.Fatalf("AXPY = %v", y)
		}
	}
}

func TestScaleMaxAbs(t *testing.T) {
	m, _ := FromRows([][]float64{{1, -5}, {2, 3}})
	m.Scale(2)
	if m.At(0, 1) != -10 {
		t.Fatalf("Scale: %v", m.At(0, 1))
	}
	if m.MaxAbs() != 10 {
		t.Fatalf("MaxAbs = %v", m.MaxAbs())
	}
}

func TestStringSmoke(t *testing.T) {
	if s := Identity(2).String(); len(s) == 0 {
		t.Fatal("String empty")
	}
}

func BenchmarkSolve16(b *testing.B) {
	src := rng.New(1)
	n := 16
	a := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			a.Set(i, j, src.Float64())
		}
		a.Add(i, i, float64(n))
	}
	rhs := make([]float64, n)
	for i := range rhs {
		rhs[i] = src.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SolveLinear(a, rhs); err != nil {
			b.Fatal(err)
		}
	}
}
