// Package linalg implements the small dense linear-algebra kernel needed by
// the Markov-chain solver: matrices, vectors, LU factorization with partial
// pivoting, and a handful of norms. It exists because the reproduction is
// stdlib-only; the feature set is deliberately limited to what the CTMC
// solvers in internal/markov require.
package linalg

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// ErrSingular is returned when a factorization or solve encounters a
// numerically singular matrix.
var ErrSingular = errors.New("linalg: matrix is singular")

// ErrShape is returned when operand dimensions are incompatible.
var ErrShape = errors.New("linalg: incompatible dimensions")

// Matrix is a dense, row-major matrix of float64.
type Matrix struct {
	rows, cols int
	data       []float64
}

// NewMatrix returns a zero-initialized r-by-c matrix. It panics if r or c is
// not positive, since a dimensionless matrix is always a programming error.
func NewMatrix(r, c int) *Matrix {
	if r <= 0 || c <= 0 {
		panic(fmt.Sprintf("linalg: NewMatrix(%d, %d) with non-positive dimension", r, c))
	}
	return &Matrix{rows: r, cols: c, data: make([]float64, r*c)}
}

// FromRows builds a matrix from a slice of equal-length rows.
func FromRows(rows [][]float64) (*Matrix, error) {
	if len(rows) == 0 || len(rows[0]) == 0 {
		return nil, fmt.Errorf("%w: empty row set", ErrShape)
	}
	m := NewMatrix(len(rows), len(rows[0]))
	for i, row := range rows {
		if len(row) != m.cols {
			return nil, fmt.Errorf("%w: row %d has %d entries, want %d", ErrShape, i, len(row), m.cols)
		}
		copy(m.data[i*m.cols:(i+1)*m.cols], row)
	}
	return m, nil
}

// Identity returns the n-by-n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) float64 { return m.data[i*m.cols+j] }

// Set assigns the element at row i, column j.
func (m *Matrix) Set(i, j int, v float64) { m.data[i*m.cols+j] = v }

// Add increments the element at row i, column j by v.
func (m *Matrix) Add(i, j int, v float64) { m.data[i*m.cols+j] += v }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.rows, m.cols)
	copy(c.data, m.data)
	return c
}

// Scale multiplies every element by s, in place, and returns m.
func (m *Matrix) Scale(s float64) *Matrix {
	for i := range m.data {
		m.data[i] *= s
	}
	return m
}

// Transpose returns a new transposed matrix.
func (m *Matrix) Transpose() *Matrix {
	t := NewMatrix(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}

// MatMul returns the product a·b.
func MatMul(a, b *Matrix) (*Matrix, error) {
	if a.cols != b.rows {
		return nil, fmt.Errorf("%w: (%dx%d)·(%dx%d)", ErrShape, a.rows, a.cols, b.rows, b.cols)
	}
	out := NewMatrix(a.rows, b.cols)
	for i := 0; i < a.rows; i++ {
		for k := 0; k < a.cols; k++ {
			aik := a.At(i, k)
			if aik == 0 {
				continue
			}
			for j := 0; j < b.cols; j++ {
				out.Add(i, j, aik*b.At(k, j))
			}
		}
	}
	return out, nil
}

// MatVec returns the product m·x.
func (m *Matrix) MatVec(x []float64) ([]float64, error) {
	if len(x) != m.cols {
		return nil, fmt.Errorf("%w: matrix %dx%d, vector %d", ErrShape, m.rows, m.cols, len(x))
	}
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		var s float64
		row := m.data[i*m.cols : (i+1)*m.cols]
		for j, v := range row {
			s += v * x[j]
		}
		out[i] = s
	}
	return out, nil
}

// VecMat returns the product xᵀ·m as a vector.
func (m *Matrix) VecMat(x []float64) ([]float64, error) {
	if len(x) != m.rows {
		return nil, fmt.Errorf("%w: vector %d, matrix %dx%d", ErrShape, len(x), m.rows, m.cols)
	}
	out := make([]float64, m.cols)
	for i, xi := range x {
		if xi == 0 {
			continue
		}
		row := m.data[i*m.cols : (i+1)*m.cols]
		for j, v := range row {
			out[j] += xi * v
		}
	}
	return out, nil
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	var b strings.Builder
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			if j > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%10.6g", m.At(i, j))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// MaxAbs returns the largest absolute element value.
func (m *Matrix) MaxAbs() float64 {
	var mx float64
	for _, v := range m.data {
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}
