package linalg

import (
	"fmt"
	"math"
)

// LU holds an LU factorization with partial pivoting: P·A = L·U, where L has
// a unit diagonal and is stored in the strict lower triangle of lu, and U in
// the upper triangle (including the diagonal).
type LU struct {
	lu    *Matrix
	pivot []int
	sign  int
}

// Factorize computes the LU factorization of a square matrix with partial
// pivoting. It returns ErrSingular if a pivot is exactly zero.
func Factorize(a *Matrix) (*LU, error) {
	if a.rows != a.cols {
		return nil, fmt.Errorf("%w: Factorize on %dx%d", ErrShape, a.rows, a.cols)
	}
	n := a.rows
	lu := a.Clone()
	pivot := make([]int, n)
	sign := 1

	for k := 0; k < n; k++ {
		// Select the pivot row: largest |value| in column k at or below row k.
		p := k
		max := math.Abs(lu.At(k, k))
		for i := k + 1; i < n; i++ {
			if v := math.Abs(lu.At(i, k)); v > max {
				max, p = v, i
			}
		}
		pivot[k] = p
		if max == 0 {
			return nil, fmt.Errorf("%w: zero pivot at column %d", ErrSingular, k)
		}
		if p != k {
			swapRows(lu, p, k)
			sign = -sign
		}
		pk := lu.At(k, k)
		for i := k + 1; i < n; i++ {
			f := lu.At(i, k) / pk
			lu.Set(i, k, f)
			if f == 0 {
				continue
			}
			for j := k + 1; j < n; j++ {
				lu.Add(i, j, -f*lu.At(k, j))
			}
		}
	}
	return &LU{lu: lu, pivot: pivot, sign: sign}, nil
}

func swapRows(m *Matrix, a, b int) {
	ra := m.data[a*m.cols : (a+1)*m.cols]
	rb := m.data[b*m.cols : (b+1)*m.cols]
	for i := range ra {
		ra[i], rb[i] = rb[i], ra[i]
	}
}

// Solve solves A·x = b using the factorization.
func (f *LU) Solve(b []float64) ([]float64, error) {
	n := f.lu.rows
	if len(b) != n {
		return nil, fmt.Errorf("%w: rhs length %d, want %d", ErrShape, len(b), n)
	}
	x := make([]float64, n)
	copy(x, b)
	// Apply the row permutation.
	for k := 0; k < n; k++ {
		if p := f.pivot[k]; p != k {
			x[k], x[p] = x[p], x[k]
		}
	}
	// Forward substitution with unit-diagonal L.
	for i := 1; i < n; i++ {
		var s float64
		for j := 0; j < i; j++ {
			s += f.lu.At(i, j) * x[j]
		}
		x[i] -= s
	}
	// Back substitution with U.
	for i := n - 1; i >= 0; i-- {
		var s float64
		for j := i + 1; j < n; j++ {
			s += f.lu.At(i, j) * x[j]
		}
		d := f.lu.At(i, i)
		if d == 0 {
			return nil, fmt.Errorf("%w: zero diagonal in U at %d", ErrSingular, i)
		}
		x[i] = (x[i] - s) / d
	}
	return x, nil
}

// Det returns the determinant from the factorization.
func (f *LU) Det() float64 {
	d := float64(f.sign)
	for i := 0; i < f.lu.rows; i++ {
		d *= f.lu.At(i, i)
	}
	return d
}

// SolveLinear is a convenience wrapper: factorize A and solve A·x = b.
func SolveLinear(a *Matrix, b []float64) ([]float64, error) {
	f, err := Factorize(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b)
}

// Norm1 returns the L1 norm of a vector.
func Norm1(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += math.Abs(v)
	}
	return s
}

// NormInf returns the max-abs norm of a vector.
func NormInf(x []float64) float64 {
	var m float64
	for _, v := range x {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// Dot returns the inner product of two equal-length vectors. It panics on a
// length mismatch, which is always a programming error in this codebase.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("linalg: Dot length mismatch %d vs %d", len(a), len(b)))
	}
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// AXPY computes y += alpha*x in place.
func AXPY(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("linalg: AXPY length mismatch %d vs %d", len(x), len(y)))
	}
	for i, v := range x {
		y[i] += alpha * v
	}
}
