package forecast

import (
	"fmt"
	"math"

	"drqos/internal/qos"
	"drqos/internal/sim"
)

// WhatIfRequest describes an admission counterfactual: "what does the
// steady-state distribution look like if I admit Count channels of this
// spec". A zero spec means the modeled spec; Count defaults to 1.
type WhatIfRequest struct {
	MinKbps       int64   `json:"min_kbps"`
	MaxKbps       int64   `json:"max_kbps"`
	IncrementKbps int64   `json:"increment_kbps"`
	Utility       float64 `json:"utility"`
	Count         int     `json:"count"`
}

func (r WhatIfRequest) spec(modeled qos.ElasticSpec) (qos.ElasticSpec, error) {
	if r.MinKbps == 0 && r.MaxKbps == 0 && r.IncrementKbps == 0 {
		return modeled, nil
	}
	s := qos.ElasticSpec{
		Min:       qos.Kbps(r.MinKbps),
		Max:       qos.Kbps(r.MaxKbps),
		Increment: qos.Kbps(r.IncrementKbps),
		Utility:   r.Utility,
	}
	if s.Increment == 0 {
		s.Increment = modeled.Increment
	}
	if err := s.Validate(); err != nil {
		return s, fmt.Errorf("forecast: what-if spec: %w", err)
	}
	return s, nil
}

// WhatIfResponse is the counterfactual answer: the re-solved steady-state
// distribution after the hypothetical admission, the resulting mean, and an
// admit recommendation, plus increment auto-tuning derived from the current
// solution.
type WhatIfResponse struct {
	// Count and the spec the counterfactual admitted.
	Count         int   `json:"count"`
	MinKbps       int64 `json:"min_kbps"`
	MaxKbps       int64 `json:"max_kbps"`
	IncrementKbps int64 `json:"increment_kbps"`

	// BaseMeanKbps is the current forecast's mean; MeanKbps the re-solved
	// mean after admission; DeltaMeanKbps their difference (≤ 0: admitting
	// load can only squeeze the standing population).
	BaseMeanKbps  float64 `json:"base_mean_kbps"`
	MeanKbps      float64 `json:"mean_kbps"`
	DeltaMeanKbps float64 `json:"delta_mean_kbps"`
	// Pi is the counterfactual steady-state distribution.
	Pi []float64 `json:"pi"`

	// Population scaling behind the counterfactual.
	AliveBefore float64 `json:"alive_before"`
	AliveAfter  float64 `json:"alive_after"`
	PfBefore    float64 `json:"pf_before"`
	PfAfter     float64 `json:"pf_after"`

	// IdealMeanKbps is the capacity-fair reference at the counterfactual
	// population (§4's "ideal" curve), 0 when the forecaster lacks
	// topology figures.
	IdealMeanKbps float64 `json:"ideal_mean_kbps,omitempty"`

	Headroom  float64 `json:"headroom"`
	Saturated bool    `json:"saturated"`
	Admit     bool    `json:"admit"`
	Reason    string  `json:"reason"`

	// Stale propagates the underlying forecast's staleness.
	Stale bool `json:"stale"`

	DeltaTuning *DeltaRecommendation `json:"delta_tuning,omitempty"`
}

// WhatIf answers an admission counterfactual against the current forecast.
//
// The counterfactual is a first-order population scaling, documented rather
// than exact: admitting n channels of relative weight w = reqMax/modelMax
// raises the standing population N̄ → N̄ + w·n, and the chaining
// probabilities Pf, Ps — which measure how much of the network a random
// channel touches — scale with the standing load ratio ρ = N̄'/N̄ (capped
// at 1). The per-channel death rate δ is population-invariant (exponential
// holding times), so the restart model is re-solved with the same birth
// distribution and δ but the scaled Pf', Ps'.
func (f *Forecaster) WhatIf(req WhatIfRequest) (*WhatIfResponse, error) {
	cur := f.Current()
	if cur == nil {
		return nil, ErrNoForecast
	}
	spec, err := req.spec(f.spec)
	if err != nil {
		return nil, err
	}
	count := req.Count
	if count <= 0 {
		count = 1
	}

	weight := 1.0
	if f.spec.Max > 0 {
		weight = float64(spec.Max) / float64(f.spec.Max)
	}
	s := cur.snap
	aliveAfter := s.avgAlive + weight*float64(count)
	rho := aliveAfter / s.avgAlive

	p := s.params
	p.Pf = math.Min(1, p.Pf*rho)
	p.Ps = math.Min(1, p.Ps*rho)

	sol, err := f.solve(snapshot{params: p, birth: s.birth, delta: s.delta})
	if err != nil {
		return nil, fmt.Errorf("forecast: what-if solve: %w", err)
	}

	headroom := 0.0
	if span := float64(f.spec.Max - f.spec.Min); span > 0 {
		headroom = (sol.mean - float64(f.spec.Min)) / span
	}
	saturated := headroom <= f.cfg.SaturationHeadroom
	resp := &WhatIfResponse{
		Count:         count,
		MinKbps:       int64(spec.Min),
		MaxKbps:       int64(spec.Max),
		IncrementKbps: int64(spec.Increment),
		BaseMeanKbps:  cur.MeanBandwidthKbps,
		MeanKbps:      sol.mean,
		DeltaMeanKbps: sol.mean - cur.MeanBandwidthKbps,
		Pi:            sol.pi,
		AliveBefore:   s.avgAlive,
		AliveAfter:    aliveAfter,
		PfBefore:      s.params.Pf,
		PfAfter:       p.Pf,
		Headroom:      headroom,
		Saturated:     saturated,
		Admit:         !saturated,
		Stale:         cur.Stale,
		DeltaTuning:   f.recommendDelta(cur),
	}
	if f.cfg.CapacityKbps > 0 && f.cfg.DirectedLinks > 0 && s.avgHops > 0 {
		resp.IdealMeanKbps = sim.IdealAverageBandwidth(
			f.cfg.CapacityKbps, f.cfg.DirectedLinks,
			int(math.Ceil(aliveAfter)), s.avgHops, f.spec)
	}
	if saturated {
		resp.Reason = fmt.Sprintf("predicted mean %.1f Kb/s leaves %.1f%% headroom (≤ %.1f%% saturation threshold)",
			sol.mean, 100*headroom, 100*f.cfg.SaturationHeadroom)
	} else {
		resp.Reason = fmt.Sprintf("predicted mean %.1f Kb/s keeps %.1f%% headroom", sol.mean, 100*headroom)
	}
	if cur.Stale {
		resp.Reason += " (forecast stale: " + cur.LastError + ")"
	}
	return resp, nil
}

// DeltaCandidate scores one coarser increment Δ' = k·Δ for the modeled
// bandwidth range.
type DeltaCandidate struct {
	IncrementKbps int64 `json:"increment_kbps"`
	States        int   `json:"states"`
	// MeanKbps is the steady-state mean re-quantized to the coarser grid
	// (each fine level floors to its bucket's bandwidth, the conservative
	// reading of a coarser reservation ladder).
	MeanKbps float64 `json:"mean_kbps"`
	// QuantLossKbps is the mean bandwidth given up to quantization versus
	// the current grid.
	QuantLossKbps float64 `json:"quant_loss_kbps"`
	// ChurnPerSec is the per-channel rate of adaptations that still cross
	// a bucket boundary at this granularity — the QoS re-signalling rate a
	// coarser Δ buys down.
	ChurnPerSec float64 `json:"churn_per_sec"`
}

// DeltaRecommendation is the increment auto-tuning result: every coarser
// grid that evenly divides the range, scored by signalling churn versus
// quantization loss.
type DeltaRecommendation struct {
	Candidates      []DeltaCandidate `json:"candidates"`
	RecommendedKbps int64            `json:"recommended_kbps"`
	Rationale       string           `json:"rationale"`
}

// quantLossTolerance is the fraction of the bandwidth range a recommended
// coarser increment may cost in quantized mean bandwidth.
const quantLossTolerance = 0.10

// recommendDelta scores the coarser increments against the current
// solution. The churn figure combines the solved distribution π with the
// base generator's transition rates: churn(k) = Σᵢ πᵢ Σⱼ q(i→j) over jumps
// whose endpoints land in different k-buckets — exactly the re-signalling
// rate a channel population would see if levels were renegotiated only at
// the coarser granularity.
func (f *Forecaster) recommendDelta(cur *Forecast) *DeltaRecommendation {
	if cur.base == nil {
		return nil
	}
	n := f.n
	span := float64(f.spec.Max - f.spec.Min)
	baseMean := cur.MeanBandwidthKbps
	rec := &DeltaRecommendation{}
	best := 0
	for k := 1; k <= n-1; k++ {
		if (n-1)%k != 0 {
			continue // Δ'=kΔ must evenly grid the range so Bmax stays reachable
		}
		var churn, mean float64
		for i := 0; i < n; i++ {
			mean += cur.Pi[i] * (float64(f.spec.Min) + float64((i/k)*k)*float64(f.spec.Increment))
			for j := 0; j < n; j++ {
				if i/k != j/k {
					churn += cur.Pi[i] * cur.base.Rate(i, j)
				}
			}
		}
		c := DeltaCandidate{
			IncrementKbps: int64(f.spec.Increment) * int64(k),
			States:        (n-1)/k + 1,
			MeanKbps:      mean,
			QuantLossKbps: baseMean - mean,
			ChurnPerSec:   churn,
		}
		rec.Candidates = append(rec.Candidates, c)
		if c.QuantLossKbps <= quantLossTolerance*span {
			best = len(rec.Candidates) - 1 // candidates are ordered by k: last tolerable = coarsest
		}
	}
	if len(rec.Candidates) == 0 {
		return nil
	}
	b := rec.Candidates[best]
	rec.RecommendedKbps = b.IncrementKbps
	cur0 := rec.Candidates[0]
	rec.Rationale = fmt.Sprintf(
		"Δ=%d Kb/s cuts per-channel re-signalling from %.3g/s to %.3g/s for %.1f Kb/s quantized mean loss (tolerance %.0f Kb/s)",
		b.IncrementKbps, cur0.ChurnPerSec, b.ChurnPerSec, b.QuantLossKbps, quantLossTolerance*span)
	return rec
}
