package forecast

import (
	"errors"
	"math"
	"testing"
)

func TestWhatIfBeforeFirstSolve(t *testing.T) {
	f, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WhatIf(WhatIfRequest{}); !errors.Is(err, ErrNoForecast) {
		t.Fatalf("error = %v, want ErrNoForecast", err)
	}
}

// TestWhatIfCounterfactual checks the admission counterfactual's first-order
// properties: admitting load can only squeeze the standing population, more
// load squeezes harder, and the populations/probabilities scale as
// documented.
func TestWhatIfCounterfactual(t *testing.T) {
	h := newHarness(t, Config{MinEvents: 10})
	h.churn(200)
	base, err := h.f.SolveNow()
	if err != nil {
		t.Fatal(err)
	}

	one, err := h.f.WhatIf(WhatIfRequest{})
	if err != nil {
		t.Fatal(err)
	}
	if one.Count != 1 || one.MinKbps != 100 || one.MaxKbps != 500 || one.IncrementKbps != 50 {
		t.Errorf("defaulted request: %+v", one)
	}
	if one.BaseMeanKbps != base.MeanBandwidthKbps {
		t.Errorf("base mean %g, forecast mean %g", one.BaseMeanKbps, base.MeanBandwidthKbps)
	}
	if got := one.AliveAfter - one.AliveBefore; math.Abs(got-1) > 1e-9 {
		t.Errorf("modeled-spec count=1 must add exactly one channel, added %g", got)
	}
	if one.PfAfter < one.PfBefore {
		t.Errorf("Pf must not shrink under added load: %g → %g", one.PfBefore, one.PfAfter)
	}
	if one.MeanKbps > one.BaseMeanKbps+1e-9 {
		t.Errorf("added load raised the mean: %g → %g", one.BaseMeanKbps, one.MeanKbps)
	}
	if math.Abs(one.DeltaMeanKbps-(one.MeanKbps-one.BaseMeanKbps)) > 1e-12 {
		t.Errorf("DeltaMeanKbps inconsistent: %+v", one)
	}
	var sum float64
	for _, p := range one.Pi {
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("counterfactual pi sums to %g", sum)
	}
	if one.IdealMeanKbps <= 0 {
		t.Errorf("ideal reference missing despite capacity+links config: %+v", one)
	}
	if one.Reason == "" {
		t.Error("reason must always be populated")
	}

	many, err := h.f.WhatIf(WhatIfRequest{Count: 500})
	if err != nil {
		t.Fatal(err)
	}
	if many.MeanKbps > one.MeanKbps+1e-9 {
		t.Errorf("500 channels predict more bandwidth than 1: %g > %g", many.MeanKbps, one.MeanKbps)
	}
	if math.Abs(many.AliveAfter-many.AliveBefore-500) > 1e-6 {
		t.Errorf("count=500 added %g channels", many.AliveAfter-many.AliveBefore)
	}

	// A half-weight spec adds half a channel-equivalent.
	half, err := h.f.WhatIf(WhatIfRequest{MinKbps: 100, MaxKbps: 250, IncrementKbps: 50})
	if err != nil {
		t.Fatal(err)
	}
	if got := half.AliveAfter - half.AliveBefore; math.Abs(got-0.5) > 1e-9 {
		t.Errorf("250/500-weight request must add 0.5 channel-equivalents, added %g", got)
	}

	if _, err := h.f.WhatIf(WhatIfRequest{MinKbps: 300, MaxKbps: 100, IncrementKbps: 50}); err == nil {
		t.Error("invalid counterfactual spec must be rejected")
	}
}

// TestDeltaTuningCandidates checks the increment auto-tuning: every coarser
// Δ that evenly grids the 100..500 range is scored, quantization loss grows
// and bucket-crossing churn shrinks as Δ coarsens, and the recommendation
// is a scored candidate within the loss tolerance.
func TestDeltaTuningCandidates(t *testing.T) {
	h := newHarness(t, Config{MinEvents: 10})
	h.churn(200)
	if _, err := h.f.SolveNow(); err != nil {
		t.Fatal(err)
	}
	resp, err := h.f.WhatIf(WhatIfRequest{})
	if err != nil {
		t.Fatal(err)
	}
	dt := resp.DeltaTuning
	if dt == nil {
		t.Fatal("delta tuning missing")
	}

	wantInc := []int64{50, 100, 200, 400}
	wantStates := []int{9, 5, 3, 2}
	if len(dt.Candidates) != len(wantInc) {
		t.Fatalf("candidates = %+v, want increments %v", dt.Candidates, wantInc)
	}
	for i, c := range dt.Candidates {
		if c.IncrementKbps != wantInc[i] || c.States != wantStates[i] {
			t.Errorf("candidate %d = Δ%d/%d states, want Δ%d/%d", i, c.IncrementKbps, c.States, wantInc[i], wantStates[i])
		}
	}
	if math.Abs(dt.Candidates[0].QuantLossKbps) > 1e-9 {
		t.Errorf("the current grid quantizes losslessly, got loss %g", dt.Candidates[0].QuantLossKbps)
	}
	for i := 1; i < len(dt.Candidates); i++ {
		if dt.Candidates[i].QuantLossKbps < dt.Candidates[i-1].QuantLossKbps-1e-9 {
			t.Errorf("quantization loss must grow with Δ: %+v", dt.Candidates)
		}
		if dt.Candidates[i].ChurnPerSec > dt.Candidates[i-1].ChurnPerSec+1e-9 {
			t.Errorf("bucket-crossing churn must shrink with Δ: %+v", dt.Candidates)
		}
	}

	found := false
	for _, c := range dt.Candidates {
		if c.IncrementKbps == dt.RecommendedKbps {
			found = true
			if c.QuantLossKbps > quantLossTolerance*400+1e-9 {
				t.Errorf("recommended Δ%d loses %g Kb/s, beyond tolerance", c.IncrementKbps, c.QuantLossKbps)
			}
		}
	}
	if !found {
		t.Errorf("recommended Δ%d is not a scored candidate", dt.RecommendedKbps)
	}
	if dt.Rationale == "" {
		t.Error("rationale must be populated")
	}
}
