package forecast

import (
	"errors"
	"math"
	"strings"
	"testing"
	"time"

	"drqos/internal/channel"
	"drqos/internal/estimator"
	"drqos/internal/manager"
	"drqos/internal/qos"
	"drqos/internal/rng"
	"drqos/internal/topology"
)

// harness drives a real manager and mirrors the server's actor-loop taps
// into both the forecaster under test and a reference estimator fed the
// identical event trace.
type harness struct {
	t   *testing.T
	m   *manager.Manager
	f   *Forecaster
	ref *estimator.Estimator
	src *rng.Source

	alive                        []channel.ConnID
	accepted, terminated, failed int64
}

func newHarness(t *testing.T, cfg Config) *harness {
	t.Helper()
	g, err := topology.Waxman(topology.WaxmanConfig{
		Nodes: 40, Alpha: 0.33, Beta: 0.25, EnsureConnected: true,
	}, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	m, err := manager.New(g, manager.Config{Capacity: 10000})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.CapacityKbps == 0 {
		cfg.CapacityKbps = 10000
	}
	if cfg.DirectedLinks == 0 {
		cfg.DirectedLinks = g.NumDirLinks()
	}
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return &harness{t: t, m: m, f: f, ref: estimator.New(f.n), src: rng.New(11)}
}

// churn runs n mixed operations — establishes, terminations and the
// occasional fail+repair — feeding every observable event through the
// forecaster's taps exactly as internal/server's actor loop does.
func (h *harness) churn(n int) {
	h.t.Helper()
	nodes := h.m.Graph().NumNodes()
	links := h.m.Graph().NumLinks()
	spec := qos.DefaultSpec()
	for i := 0; i < n; i++ {
		switch {
		case len(h.alive) > 0 && h.src.Float64() < 0.3:
			last := len(h.alive) - 1
			id := h.alive[last]
			h.alive = h.alive[:last]
			rep, err := h.m.Terminate(id)
			if err != nil {
				h.t.Fatalf("terminate %d: %v", id, err)
			}
			h.f.ObserveTermination(h.m, rep)
			h.ref.ObserveTermination(h.m, rep)
			h.terminated++
		case i > 0 && i%29 == 0:
			l := topology.LinkID(h.src.Intn(links))
			alivePrior := h.m.AliveCount()
			rep, err := h.m.FailLink(l)
			if err != nil {
				h.t.Fatalf("fail link %d: %v", l, err)
			}
			h.f.ObserveFailure(h.m, rep, alivePrior)
			h.ref.ObserveFailure(h.m, rep, alivePrior)
			h.failed++
			if _, err := h.m.RepairLink(l); err != nil {
				h.t.Fatalf("repair link %d: %v", l, err)
			}
			// The failure may have dropped connections; resync ownership.
			h.alive = h.m.AliveIDs()
		default:
			a, b := h.src.Intn(nodes), h.src.Intn(nodes)
			if a == b {
				b = (b + 1) % nodes
			}
			alivePrior := h.m.AliveCount()
			rep, err := h.m.Establish(topology.NodeID(a), topology.NodeID(b), spec)
			switch {
			case err == nil:
				h.f.ObserveArrival(h.m, rep, alivePrior)
				h.ref.ObserveArrival(h.m, rep, alivePrior)
				h.alive = append(h.alive, rep.Conn.ID)
				h.accepted++
			case errors.Is(err, manager.ErrRejected):
				h.f.ObserveReject()
			default:
				h.t.Fatalf("establish: %v", err)
			}
		}
	}
}

// TestForecastFromScriptedEvents checks that a forecast solved from the
// live tap agrees exactly with a reference estimator fed the same trace:
// same transition matrices, same chaining probabilities, rates consistent
// with the raw counts, and a proper distribution over the modeled grid.
func TestForecastFromScriptedEvents(t *testing.T) {
	h := newHarness(t, Config{MinEvents: 10})
	h.churn(200)

	fc, err := h.f.SolveNow()
	if err != nil {
		t.Fatal(err)
	}
	if fc == nil || fc.Stale {
		t.Fatalf("expected fresh forecast, got %+v", fc)
	}
	if fc.Accepted != h.accepted || fc.Terminated != h.terminated || fc.LinkFailures != h.failed {
		t.Errorf("counts: forecast (%d,%d,%d), harness (%d,%d,%d)",
			fc.Accepted, fc.Terminated, fc.LinkFailures, h.accepted, h.terminated, h.failed)
	}

	var sum float64
	for _, p := range fc.Pi {
		if p < -1e-12 {
			t.Errorf("negative pi mass %g", p)
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("pi sums to %g, want 1", sum)
	}
	if fc.MeanBandwidthKbps < float64(fc.MinKbps) || fc.MeanBandwidthKbps > float64(fc.MaxKbps) {
		t.Errorf("mean %g outside [%d,%d]", fc.MeanBandwidthKbps, fc.MinKbps, fc.MaxKbps)
	}

	// Rates are counts over the observation window.
	if got := fc.Lambda * fc.WindowSeconds; math.Abs(got-float64(h.accepted)) > 1e-6 {
		t.Errorf("lambda*window = %g, want %d", got, h.accepted)
	}
	if math.Abs(fc.Delta-fc.Mu/fc.AvgAlive) > 1e-12 {
		t.Errorf("delta %g != mu/avgAlive %g", fc.Delta, fc.Mu/fc.AvgAlive)
	}

	// Identical trace → identical estimated model.
	rp := h.ref.Params(fc.Lambda, fc.Mu, fc.Gamma)
	p := fc.snap.params
	if p.Pf != rp.Pf || p.Ps != rp.Ps {
		t.Errorf("Pf/Ps (%g,%g) differ from reference (%g,%g)", p.Pf, p.Ps, rp.Pf, rp.Ps)
	}
	for i := 0; i < p.N; i++ {
		for j := 0; j < p.N; j++ {
			if p.A[i][j] != rp.A[i][j] || p.B[i][j] != rp.B[i][j] || p.T[i][j] != rp.T[i][j] {
				t.Fatalf("transition matrices diverge from reference at (%d,%d)", i, j)
			}
		}
	}
}

func TestForecastInsufficientData(t *testing.T) {
	f, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	fc, err := f.SolveNow()
	if err == nil {
		t.Fatal("expected an error before any events")
	}
	if fc != nil || f.Current() != nil {
		t.Fatal("Current must stay nil before the first successful solve")
	}
	if !errors.Is(err, errNotReady) {
		t.Errorf("error = %v, want errNotReady", err)
	}
	// Warm-up is not a model failure: the reason is reported, but no solve
	// error is counted for an idle daemon.
	_, solveErrors, lastErr := f.Status()
	if solveErrors != 0 || lastErr == "" {
		t.Errorf("status after warm-up tick: errors=%d lastErr=%q", solveErrors, lastErr)
	}
}

func TestForecastStatesRegrid(t *testing.T) {
	f, err := New(Config{States: 5})
	if err != nil {
		t.Fatal(err)
	}
	if s := f.Spec(); s.States() != 5 || s.Increment != 100 {
		t.Errorf("re-grid to 5 states: got %d states, Δ=%v", s.States(), s.Increment)
	}
	if _, err := New(Config{States: 8}); err == nil {
		t.Error("8 states do not evenly grid 100..500 and must be rejected")
	}
}

// TestForecastSolveFailureFallback checks the staleness contract: a failed
// solve keeps serving the previous result marked stale, and the next good
// solve replaces it.
func TestForecastSolveFailureFallback(t *testing.T) {
	h := newHarness(t, Config{MinEvents: 10})
	h.churn(120)
	good, err := h.f.SolveNow()
	if err != nil {
		t.Fatal(err)
	}

	boom := errors.New("solver exploded")
	h.f.solveFn = func(snapshot) (*solved, error) { return nil, boom }
	fc, err := h.f.SolveNow()
	if !errors.Is(err, boom) {
		t.Fatalf("SolveNow error = %v, want injected failure", err)
	}
	if fc == nil || !fc.Stale {
		t.Fatalf("expected stale fallback, got %+v", fc)
	}
	if fc.Seq != good.Seq || fc.MeanBandwidthKbps != good.MeanBandwidthKbps {
		t.Errorf("stale fallback must re-publish the last good solution (seq %d vs %d)", fc.Seq, good.Seq)
	}
	if !strings.Contains(fc.LastError, "exploded") {
		t.Errorf("LastError = %q", fc.LastError)
	}
	if solves, solveErrors, lastErr := h.f.Status(); solves != 1 || solveErrors != 1 || lastErr == "" {
		t.Errorf("status = (%d,%d,%q)", solves, solveErrors, lastErr)
	}

	// Recovery: the next good solve clears staleness and the error.
	h.f.solveFn = h.f.solve
	fc2, err := h.f.SolveNow()
	if err != nil {
		t.Fatal(err)
	}
	if fc2.Stale || fc2.Seq != good.Seq+1 {
		t.Errorf("recovered forecast: stale=%v seq=%d (want fresh, seq %d)", fc2.Stale, fc2.Seq, good.Seq+1)
	}
	if _, _, lastErr := h.f.Status(); lastErr != "" {
		t.Errorf("lastErr not cleared after recovery: %q", lastErr)
	}
}

// TestForecastSolveTimeout checks the deadline path: an overrunning solve
// is abandoned, reported as ErrSolveTimeout, and falls back per the
// staleness contract.
func TestForecastSolveTimeout(t *testing.T) {
	h := newHarness(t, Config{MinEvents: 10, SolveTimeout: 20 * time.Millisecond})
	h.churn(120)

	slow := func(s snapshot) (*solved, error) {
		time.Sleep(300 * time.Millisecond)
		return h.f.solve(s)
	}
	h.f.solveFn = slow
	fc, err := h.f.SolveNow()
	if !errors.Is(err, ErrSolveTimeout) {
		t.Fatalf("error = %v, want ErrSolveTimeout", err)
	}
	if fc != nil || h.f.Current() != nil {
		t.Fatal("no prior good solve: Current must stay nil after a timeout")
	}

	h.f.solveFn = h.f.solve
	if _, err := h.f.SolveNow(); err != nil {
		t.Fatal(err)
	}
	h.f.solveFn = slow
	fc, err = h.f.SolveNow()
	if !errors.Is(err, ErrSolveTimeout) {
		t.Fatalf("error = %v, want ErrSolveTimeout", err)
	}
	if fc == nil || !fc.Stale {
		t.Fatalf("expected stale fallback after timeout, got %+v", fc)
	}
}

// TestForecastPredictiveLatch drives the model-predicted overload output
// through its full lifecycle: latch on predicted saturation, release on
// predicted headroom, and release when the forecast goes stale for longer
// than staleClearAfter solve intervals.
func TestForecastPredictiveLatch(t *testing.T) {
	var flips []bool
	h := newHarness(t, Config{
		MinEvents:    10,
		Predictive:   true,
		Interval:     20 * time.Millisecond,
		SolveTimeout: time.Second,
		OnPredict:    func(on bool) { flips = append(flips, on) },
	})
	h.churn(120)

	spec := h.f.Spec()
	point := func(mean float64) func(snapshot) (*solved, error) {
		return func(snapshot) (*solved, error) {
			pi := make([]float64, spec.States())
			pi[0] = 1
			return &solved{pi: pi, mean: mean}, nil
		}
	}

	h.f.solveFn = point(float64(spec.Min)) // zero headroom → saturated
	if _, err := h.f.SolveNow(); err != nil {
		t.Fatal(err)
	}
	if !h.f.Predicted() {
		t.Fatal("saturated solve must latch the predictive output")
	}
	h.f.solveFn = point(300) // 50% headroom
	if _, err := h.f.SolveNow(); err != nil {
		t.Fatal(err)
	}
	if h.f.Predicted() {
		t.Fatal("headroom solve must release the predictive latch")
	}

	// Stale within the window keeps the latch; stale past
	// staleClearAfter intervals releases it.
	h.f.solveFn = point(float64(spec.Min))
	h.f.SolveNow()
	h.f.solveFn = func(snapshot) (*solved, error) { return nil, errors.New("down") }
	h.f.SolveNow()
	if !h.f.Predicted() {
		t.Fatal("a freshly stale forecast must keep the predictive latch")
	}
	time.Sleep((staleClearAfter + 2) * 20 * time.Millisecond)
	h.f.SolveNow()
	if h.f.Predicted() {
		t.Fatal("a long-stale forecast must release the predictive latch")
	}

	want := []bool{true, false, true, false}
	if len(flips) != len(want) {
		t.Fatalf("OnPredict flips = %v, want %v", flips, want)
	}
	for i := range want {
		if flips[i] != want[i] {
			t.Fatalf("OnPredict flips = %v, want %v", flips, want)
		}
	}
}

// TestForecastStartStopLoop exercises the supervised goroutine: the ticker
// loop solves on its own, Stop is idempotent, and the last forecast stays
// readable after shutdown, including under concurrent observation.
func TestForecastStartStopLoop(t *testing.T) {
	h := newHarness(t, Config{MinEvents: 10, Interval: 5 * time.Millisecond})
	h.f.Start()
	h.churn(300) // feeds observations while the solve loop runs

	deadline := time.Now().Add(5 * time.Second)
	for h.f.Current() == nil && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if h.f.Current() == nil {
		t.Fatal("solve loop never published a forecast")
	}
	h.f.Stop()
	h.f.Stop() // idempotent
	if h.f.Current() == nil {
		t.Fatal("forecast must stay readable after Stop")
	}
}
