// Package forecast is the live analytic control plane: it promotes the
// paper's Markov model (internal/markov) from offline batch experiments to
// a continuously running online forecaster inside the admission daemon.
//
// The Forecaster taps the server's real event stream — every accepted
// arrival, termination and link failure, observed from the actor loop
// goroutine — into the shared parameter estimator (internal/estimator), and
// re-solves the steady-state bandwidth distribution on a configurable
// cadence in its own supervised goroutine, strictly off the actor hot path.
// The solve pipeline is the exact one internal/core's restart model uses:
//
//	markov.Build(params) → WithRestart(birthDist, μ/N̄) →
//	SteadyStateFrom(birthDist) → MeanBandwidth
//
// so a live daemon and the batch experiments disagree only by measurement
// noise, never by modeling choice.
//
// # Staleness and fallback contract
//
// Readers always get the last successfully solved forecast, lock-free. When
// a solve fails (degenerate parameters, solver error) or overruns its
// deadline, the previous result is re-published with Stale=true and
// LastError set — the forecast degrades to "old but consistent" rather than
// disappearing or blocking. Before the first successful solve Current()
// returns nil and the HTTP layer reports available:false with the reason.
//
// # Predictive overload
//
// With Config.Predictive set, each successful solve compares the predicted
// mean bandwidth position against the saturation threshold and drives
// OnPredict — which the server wires into the overload detector's
// SetPredicted latch, pre-latching shedding before the reactive CoDel
// detector sees queue delay. A forecast that goes stale for more than
// staleClearAfter solve intervals releases the predictive latch: an old
// model must not keep refusing work the reactive detector would accept.
package forecast

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"drqos/internal/estimator"
	"drqos/internal/manager"
	"drqos/internal/markov"
	"drqos/internal/qos"
	"drqos/internal/stats"
)

// ErrNoForecast reports that no solve has succeeded yet.
var ErrNoForecast = errors.New("forecast: no forecast available yet")

// ErrSolveTimeout reports a solve that overran its deadline.
var ErrSolveTimeout = errors.New("forecast: solve exceeded deadline")

// errNotReady marks warm-up conditions — too few events, no standing
// population yet. Before the first good solve these are "not yet", reported
// as the unavailability reason but not counted as solve errors (an idle
// daemon ticking along is not a failing model). After a good solve exists,
// the same conditions follow the normal stale-fallback path.
var errNotReady = errors.New("forecast: not ready")

// staleClearAfter is how many solve intervals a forecast may stay stale
// before the predictive overload latch (if engaged) is released.
const staleClearAfter = 3

// Config tunes the forecaster.
type Config struct {
	// Spec is the modeled elastic spec; zero value selects
	// qos.DefaultSpec() (100..500 Kb/s, Δ=50 → 9 states).
	Spec qos.ElasticSpec
	// States, when > 1, re-grids Spec's bandwidth range to this many
	// states (Increment = (Max-Min)/(States-1); must divide evenly).
	States int
	// Interval is the solve cadence (default 1s).
	Interval time.Duration
	// SolveTimeout bounds one solve; overruns fall back to the last good
	// forecast. Default: Interval, floored at 50ms.
	SolveTimeout time.Duration
	// MinEvents is how many observed events (accepted arrivals +
	// terminations + failures) must accumulate before the first solve
	// (default 20): solving an empty estimator yields a degenerate chain.
	MinEvents int
	// Predictive enables the model-driven overload input: OnPredict fires
	// when predicted saturation flips.
	Predictive bool
	// SaturationHeadroom is the normalized mean-bandwidth position
	// (mean-Bmin)/(Bmax-Bmin) at or below which the model predicts
	// saturation (default 0.05).
	SaturationHeadroom float64
	// CapacityKbps is the uniform link capacity, used by what-if
	// counterfactuals for the ideal-bandwidth reference (optional).
	CapacityKbps qos.Kbps
	// DirectedLinks is the topology's directed link count, used with
	// CapacityKbps for the ideal-bandwidth reference (optional).
	DirectedLinks int
	// OnPredict, when non-nil and Predictive is set, is called from the
	// solve goroutine each time the predicted-saturation state flips.
	OnPredict func(saturated bool)
	// OnSolve, when non-nil, is called from the solve goroutine after
	// every solve attempt with the published forecast (Stale=true after a
	// failed attempt with a prior good result, nil if none exists yet).
	OnSolve func(f *Forecast, err error)
}

func (c Config) withDefaults() (Config, error) {
	if c.Spec == (qos.ElasticSpec{}) {
		c.Spec = qos.DefaultSpec()
	}
	if c.States > 1 && c.States != c.Spec.States() {
		span := c.Spec.Max - c.Spec.Min
		inc := span / qos.Kbps(c.States-1)
		if inc <= 0 || inc*qos.Kbps(c.States-1) != span {
			return c, fmt.Errorf("forecast: %d states do not evenly grid the %v..%v range", c.States, c.Spec.Min, c.Spec.Max)
		}
		c.Spec.Increment = inc
	}
	if err := c.Spec.Validate(); err != nil {
		return c, fmt.Errorf("forecast: %w", err)
	}
	if c.Interval <= 0 {
		c.Interval = time.Second
	}
	if c.SolveTimeout <= 0 {
		c.SolveTimeout = c.Interval
		if c.SolveTimeout < 50*time.Millisecond {
			c.SolveTimeout = 50 * time.Millisecond
		}
	}
	if c.MinEvents <= 0 {
		c.MinEvents = 20
	}
	if c.SaturationHeadroom <= 0 {
		c.SaturationHeadroom = 0.05
	}
	return c, nil
}

// Forecast is one published model solution. All exported fields are
// immutable after publication; readers share the struct.
type Forecast struct {
	// Seq increments on every successful solve.
	Seq int64 `json:"seq"`
	// SolvedAt is when the solve that produced Pi finished. Staleness age
	// is measured from it.
	SolvedAt time.Time `json:"solved_at"`
	// SolveDurationSeconds is how long that solve took.
	SolveDurationSeconds float64 `json:"solve_duration_seconds"`
	// WindowSeconds is the observation window the parameters were
	// estimated over (since forecaster start).
	WindowSeconds float64 `json:"window_seconds"`

	// Modeled grid.
	States        int   `json:"states"`
	MinKbps       int64 `json:"min_kbps"`
	MaxKbps       int64 `json:"max_kbps"`
	IncrementKbps int64 `json:"increment_kbps"`

	// Solution: the steady-state distribution over bandwidth states of the
	// restart model, its mean, and the birth distribution it restarts
	// into.
	Pi                []float64 `json:"pi"`
	BirthDist         []float64 `json:"birth_dist"`
	MeanBandwidthKbps float64   `json:"mean_bandwidth_kbps"`

	// Live-estimated parameters (rates are per second of wall clock).
	Lambda     float64 `json:"lambda_per_sec"`
	Mu         float64 `json:"mu_per_sec"`
	Gamma      float64 `json:"gamma_per_sec"`
	Delta      float64 `json:"delta_per_sec"`
	Pf         float64 `json:"pf"`
	Ps         float64 `json:"ps"`
	PfFail     float64 `json:"pf_fail"`
	DiscardedA float64 `json:"discarded_a"`
	DiscardedB float64 `json:"discarded_b"`
	DiscardedT float64 `json:"discarded_t"`
	AvgAlive   float64 `json:"avg_alive"`
	AvgHops    float64 `json:"avg_hops"`

	// Raw event counts behind the estimate.
	Accepted           int64 `json:"accepted"`
	Rejected           int64 `json:"rejected"`
	Terminated         int64 `json:"terminated"`
	LinkFailures       int64 `json:"link_failures"`
	IgnoredTransitions int64 `json:"ignored_transitions"`

	// Saturation: Headroom is the normalized mean position
	// (mean-Bmin)/(Bmax-Bmin); Saturated reports it at or below the
	// configured threshold (with a non-trivial population).
	Headroom  float64 `json:"headroom"`
	Saturated bool    `json:"saturated"`

	// Staleness/fallback contract: Stale marks a republished older result
	// after a failed or timed-out solve; LastError is that failure.
	Stale     bool   `json:"stale"`
	LastError string `json:"last_error,omitempty"`

	// Solve-loop counters at publication time.
	Solves      int64 `json:"solves"`
	SolveErrors int64 `json:"solve_errors"`

	// Inputs kept for what-if counterfactuals (not serialized).
	snap snapshot
	base *markov.Chain
}

// snapshot is a consistent copy of the collector state, taken under the
// collector mutex and handed to the solver.
type snapshot struct {
	params   markov.Params
	birth    []float64
	delta    float64
	avgAlive float64
	avgHops  float64
	elapsed  float64
	lambda   float64
	mu       float64
	gamma    float64
	pf       float64
	ps       float64
	pfFail   float64
	da       float64
	db       float64
	dt       float64
	accepted int64
	rejected int64
	term     int64
	failed   int64
	ignored  int64
}

// solved is a successful solve's raw output.
type solved struct {
	base *markov.Chain
	pi   []float64
	mean float64
}

// Forecaster owns the live estimator and the solve loop.
type Forecaster struct {
	cfg   Config
	spec  qos.ElasticSpec
	n     int
	start time.Time

	// Collector state, fed from the server's actor loop, snapshotted by
	// the solver. The mutex is held only for counter updates and the
	// (cheap) parameter assembly — never across a solve.
	mu          sync.Mutex
	est         *estimator.Estimator
	accepted    int64
	rejected    int64
	terminated  int64
	failed      int64
	birthCounts []int64
	alive       stats.TimeWeighted
	hopsSum     int64
	hopsN       int64

	// Publication: lock-free reads of the latest forecast.
	cur         atomic.Pointer[Forecast]
	seq         atomic.Int64
	solves      atomic.Int64
	solveErrors atomic.Int64
	lastErrMu   sync.Mutex
	lastErr     string
	predicted   atomic.Bool

	// solveMu serializes solve attempts (ticker loop vs SolveNow).
	solveMu sync.Mutex
	// solveFn computes a snapshot's solution; tests swap it to inject
	// failures and deadline overruns.
	solveFn func(snapshot) (*solved, error)

	stopOnce sync.Once
	stopCh   chan struct{}
	done     chan struct{}
}

// New builds a forecaster. Call Start to begin the periodic solve loop;
// SolveNow works without it (tests, tools).
func New(cfg Config) (*Forecaster, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	f := &Forecaster{
		cfg:         cfg,
		spec:        cfg.Spec,
		n:           cfg.Spec.States(),
		start:       time.Now(),
		birthCounts: make([]int64, cfg.Spec.States()),
		stopCh:      make(chan struct{}),
		done:        make(chan struct{}),
	}
	f.est = estimator.New(f.n)
	f.solveFn = f.solve
	return f, nil
}

// Spec returns the modeled elastic spec (after any States re-gridding).
func (f *Forecaster) Spec() qos.ElasticSpec { return f.spec }

// Interval returns the effective solve cadence.
func (f *Forecaster) Interval() time.Duration { return f.cfg.Interval }

// Start launches the periodic solve loop. It must be called at most once.
func (f *Forecaster) Start() {
	go f.loop()
}

// Stop halts the solve loop. Safe to call multiple times; idempotent. The
// current forecast stays readable after Stop.
func (f *Forecaster) Stop() {
	f.stopOnce.Do(func() { close(f.stopCh) })
	<-f.done
}

func (f *Forecaster) loop() {
	defer close(f.done)
	t := time.NewTicker(f.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-f.stopCh:
			return
		case <-t.C:
			f.SolveNow()
		}
	}
}

// ObserveArrival folds one accepted arrival into the live estimate.
// alivePrior is the population before the arrival. Called from the actor
// loop goroutine only.
func (f *Forecaster) ObserveArrival(m *manager.Manager, rep *manager.ArrivalReport, alivePrior int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.est.ObserveArrival(m, rep, alivePrior)
	f.accepted++
	if rep.Conn != nil {
		lvl := rep.Conn.Level
		if lvl < 0 {
			lvl = 0
		}
		if lvl >= f.n {
			lvl = f.n - 1 // wider heterogeneous spec: clamp into the modeled grid
		}
		f.birthCounts[lvl]++
		f.hopsSum += int64(len(rep.Conn.Primary.Links))
		f.hopsN++
	}
	f.alive.Observe(time.Since(f.start).Seconds(), float64(m.AliveCount()))
}

// ObserveReject counts a capacity rejection (admission-control visibility
// only; rejected arrivals do not enter the effective λ, matching the batch
// pipeline's effective-rate convention).
func (f *Forecaster) ObserveReject() {
	f.mu.Lock()
	f.rejected++
	f.mu.Unlock()
}

// ObserveTermination folds one termination into the live estimate. Called
// from the actor loop goroutine only.
func (f *Forecaster) ObserveTermination(m *manager.Manager, rep *manager.TerminationReport) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.est.ObserveTermination(m, rep)
	f.terminated++
	f.alive.Observe(time.Since(f.start).Seconds(), float64(m.AliveCount()))
}

// ObserveFailure folds one link failure into the live estimate. alivePrior
// is the population before the failure. Called from the actor loop
// goroutine only.
func (f *Forecaster) ObserveFailure(m *manager.Manager, rep *manager.FailureReport, alivePrior int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.est.ObserveFailure(m, rep, alivePrior)
	f.failed++
	f.alive.Observe(time.Since(f.start).Seconds(), float64(m.AliveCount()))
}

// Current returns the latest published forecast, or nil before the first
// successful solve. The returned struct is shared and must not be mutated.
func (f *Forecaster) Current() *Forecast { return f.cur.Load() }

// Predicted reports the current model-predicted saturation latch.
func (f *Forecaster) Predicted() bool { return f.predicted.Load() }

// Status returns the solve-loop counters and the most recent solve error
// (empty after a successful solve).
func (f *Forecaster) Status() (solves, solveErrors int64, lastErr string) {
	f.lastErrMu.Lock()
	lastErr = f.lastErr
	f.lastErrMu.Unlock()
	return f.solves.Load(), f.solveErrors.Load(), lastErr
}

// snapshotLocked assembles a solver input from the collector state. It
// returns an error when too little has been observed to solve.
func (f *Forecaster) snapshot() (snapshot, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	var s snapshot
	events := f.accepted + f.terminated + f.failed
	if events < int64(f.cfg.MinEvents) {
		return s, fmt.Errorf("%w: %d events observed, need %d", errNotReady, events, f.cfg.MinEvents)
	}
	s.elapsed = time.Since(f.start).Seconds()
	if s.elapsed <= 0 {
		return s, fmt.Errorf("%w: zero observation window", errNotReady)
	}
	s.lambda = float64(f.accepted) / s.elapsed
	s.mu = float64(f.terminated) / s.elapsed
	s.gamma = float64(f.failed) / s.elapsed
	aliveCopy := f.alive
	aliveCopy.CloseAt(s.elapsed)
	s.avgAlive = aliveCopy.Mean()
	if s.avgAlive <= 0 {
		return s, fmt.Errorf("%w: no standing population observed", errNotReady)
	}
	var births int64
	s.birth = make([]float64, f.n)
	for i, c := range f.birthCounts {
		s.birth[i] = float64(c)
		births += c
	}
	if births == 0 {
		return s, fmt.Errorf("%w: no accepted arrivals observed", errNotReady)
	}
	for i := range s.birth {
		s.birth[i] /= float64(births)
	}
	// Per-channel death rate: aggregate termination rate spread over the
	// standing population — the restart model's δ, exactly as the batch
	// pipeline (internal/core, RestartModel) derives it.
	s.delta = s.mu / s.avgAlive
	s.params = f.est.Params(s.lambda, s.mu, s.gamma)
	s.pf, s.ps, s.pfFail = f.est.Pf(), f.est.Ps(), f.est.PfFail()
	s.da, s.db, s.dt = f.est.Discarded()
	if f.hopsN > 0 {
		s.avgHops = float64(f.hopsSum) / float64(f.hopsN)
	}
	s.accepted, s.rejected, s.term, s.failed = f.accepted, f.rejected, f.terminated, f.failed
	s.ignored = f.est.Ignored()
	return s, nil
}

// solve runs the batch pipeline's restart-model solve on one snapshot.
func (f *Forecaster) solve(s snapshot) (*solved, error) {
	base, err := markov.Build(s.params)
	if err != nil {
		return nil, err
	}
	restart, err := base.WithRestart(s.birth, s.delta)
	if err != nil {
		return nil, err
	}
	pi, err := restart.SteadyStateFrom(s.birth)
	if err != nil {
		return nil, err
	}
	mean, err := markov.MeanBandwidth(pi, f.spec)
	if err != nil {
		return nil, err
	}
	return &solved{base: base, pi: pi, mean: mean}, nil
}

// SolveNow runs one solve attempt synchronously and returns the published
// forecast (possibly a stale fallback) plus the attempt's error. The ticker
// loop calls it on every tick; tests and tools may call it directly.
func (f *Forecaster) SolveNow() (*Forecast, error) {
	f.solveMu.Lock()
	defer f.solveMu.Unlock()

	snap, err := f.snapshot()
	if err == nil {
		var sol *solved
		sol, err = f.solveWithDeadline(snap)
		if err == nil {
			f.publishGood(snap, sol)
		}
	}
	if err != nil {
		if errors.Is(err, errNotReady) && f.cur.Load() == nil {
			// Warm-up: report the reason without counting a solve error.
			f.lastErrMu.Lock()
			f.lastErr = err.Error()
			f.lastErrMu.Unlock()
		} else {
			f.publishFailure(err)
		}
	}
	cur := f.cur.Load()
	if f.cfg.OnSolve != nil {
		f.cfg.OnSolve(cur, err)
	}
	f.updatePredicted(cur)
	return cur, err
}

// solveWithDeadline runs solveFn in a helper goroutine and abandons it on
// deadline overrun (the goroutine finishes on its own; its result is
// discarded). The actor loop is never involved either way.
func (f *Forecaster) solveWithDeadline(s snapshot) (*solved, error) {
	type out struct {
		sol *solved
		err error
	}
	ch := make(chan out, 1)
	fn := f.solveFn // captured: the abandoned goroutine must not see later swaps
	go func() {
		sol, err := fn(s)
		ch <- out{sol, err}
	}()
	timer := time.NewTimer(f.cfg.SolveTimeout)
	defer timer.Stop()
	select {
	case o := <-ch:
		return o.sol, o.err
	case <-timer.C:
		return nil, fmt.Errorf("%w (%v)", ErrSolveTimeout, f.cfg.SolveTimeout)
	}
}

// publishGood swaps in a freshly solved forecast.
func (f *Forecaster) publishGood(s snapshot, sol *solved) {
	now := time.Now()
	f.solves.Add(1)
	headroom := 0.0
	if span := float64(f.spec.Max - f.spec.Min); span > 0 {
		headroom = (sol.mean - float64(f.spec.Min)) / span
	}
	fc := &Forecast{
		Seq:                f.seq.Add(1),
		SolvedAt:           now,
		WindowSeconds:      s.elapsed,
		States:             f.n,
		MinKbps:            int64(f.spec.Min),
		MaxKbps:            int64(f.spec.Max),
		IncrementKbps:      int64(f.spec.Increment),
		Pi:                 sol.pi,
		BirthDist:          s.birth,
		MeanBandwidthKbps:  sol.mean,
		Lambda:             s.lambda,
		Mu:                 s.mu,
		Gamma:              s.gamma,
		Delta:              s.delta,
		Pf:                 s.pf,
		Ps:                 s.ps,
		PfFail:             s.pfFail,
		DiscardedA:         s.da,
		DiscardedB:         s.db,
		DiscardedT:         s.dt,
		AvgAlive:           s.avgAlive,
		AvgHops:            s.avgHops,
		Accepted:           s.accepted,
		Rejected:           s.rejected,
		Terminated:         s.term,
		LinkFailures:       s.failed,
		IgnoredTransitions: s.ignored,
		Headroom:           headroom,
		Saturated:          headroom <= f.cfg.SaturationHeadroom && s.avgAlive >= 1,
		Solves:             f.solves.Load(),
		SolveErrors:        f.solveErrors.Load(),
		snap:               s,
		base:               sol.base,
	}
	fc.SolveDurationSeconds = time.Since(now).Seconds()
	f.lastErrMu.Lock()
	f.lastErr = ""
	f.lastErrMu.Unlock()
	f.cur.Store(fc)
}

// publishFailure implements the fallback contract: keep serving the last
// good forecast, marked stale, with the failure attached.
func (f *Forecaster) publishFailure(err error) {
	f.solveErrors.Add(1)
	f.lastErrMu.Lock()
	f.lastErr = err.Error()
	f.lastErrMu.Unlock()
	prev := f.cur.Load()
	if prev == nil {
		return // nothing to fall back to; Current stays nil
	}
	stale := *prev
	stale.Stale = true
	stale.LastError = err.Error()
	stale.SolveErrors = f.solveErrors.Load()
	f.cur.Store(&stale)
}

// updatePredicted drives the predictive-overload output: latched while the
// freshest solve predicts saturation, released when it predicts headroom or
// when the forecast has been stale longer than staleClearAfter intervals.
func (f *Forecaster) updatePredicted(cur *Forecast) {
	if !f.cfg.Predictive {
		return
	}
	want := false
	if cur != nil && cur.Saturated {
		tooStale := cur.Stale && time.Since(cur.SolvedAt) > staleClearAfter*f.cfg.Interval
		want = !tooStale
	}
	if f.predicted.Swap(want) != want && f.cfg.OnPredict != nil {
		f.cfg.OnPredict(want)
	}
}
