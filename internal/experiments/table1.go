package experiments

import (
	"fmt"
	"io"

	"drqos/internal/core"
	"drqos/internal/qos"
)

// Table1Row is one row of Table 1: average bandwidth under Markov chains
// with different numbers of states (Δ = 100 Kb/s → 5 states, Δ = 50 Kb/s →
// 9 states) on the Random (Waxman) and Tier (transit-stub) networks.
type Table1Row struct {
	// Channels is the number of connection requests loaded ("the number of
	// connections which have been tried to be set up" — the paper notes
	// most are rejected on the tier network).
	Channels int
	// Random5/Random9 are the analytic averages on the Waxman network.
	Random5, Random9 float64
	// RandomSim is the simulated average (9-state run) for reference.
	RandomSim float64
	// Tier5/Tier9 are the analytic averages on the transit-stub network.
	Tier5, Tier9 float64
	// TierSim is the simulated average (9-state run).
	TierSim float64
	// TierAlive is the accepted population on the tier network.
	TierAlive int
}

// Table1Result is the reproduced Table 1.
type Table1Result struct {
	Rows []Table1Row
}

// Table1 regenerates Table 1. For each (network, increment) cell it runs
// the simulation with the corresponding elastic spec, solves the measured
// chain, and reports the analytic mean — the quantity the paper tabulates.
func Table1(cfg Config) (*Table1Result, error) {
	cfg = cfg.withDefaults()
	spec5 := qos.ElasticSpec{Min: 100, Max: 500, Increment: 100, Utility: 1}
	spec9 := qos.DefaultSpec() // Δ = 50

	// Each row needs four independent (network, increment) runs; the sweep
	// is flattened to load×4 jobs so the pool fills every worker.
	type job struct {
		kind core.TopologyKind
		spec qos.ElasticSpec
		load int
		name string
	}
	type cell struct {
		analytic float64
		sim      float64
		alive    int
	}
	loads := cfg.loads()
	jobs := make([]job, 0, 4*len(loads))
	for _, load := range loads {
		jobs = append(jobs,
			job{kind: core.TopologyWaxman, spec: spec5, load: load, name: "random/5"},
			job{kind: core.TopologyWaxman, spec: spec9, load: load, name: "random/9"},
			job{kind: core.TopologyTransitStub, spec: spec5, load: load, name: "tier/5"},
			job{kind: core.TopologyTransitStub, spec: spec9, load: load, name: "tier/9"},
		)
	}
	cells, err := runPoints(cfg, jobs, func(j job) (cell, error) {
		ev, _, err := evaluateAt(cfg, core.Options{Kind: j.kind, Spec: j.spec}, j.load)
		if err != nil {
			return cell{}, fmt.Errorf("experiments: table1 %s at %d: %w", j.name, j.load, err)
		}
		return cell{
			analytic: ev.RestartModel.MeanBandwidth,
			sim:      ev.Sim.AvgBandwidth,
			alive:    ev.Sim.AliveAtEnd,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	out := &Table1Result{}
	for i, load := range loads {
		r5, r9, t5, t9 := cells[4*i], cells[4*i+1], cells[4*i+2], cells[4*i+3]
		out.Rows = append(out.Rows, Table1Row{
			Channels:  load,
			Random5:   r5.analytic,
			Random9:   r9.analytic,
			RandomSim: r9.sim,
			Tier5:     t5.analytic,
			Tier9:     t9.analytic,
			TierSim:   t9.sim,
			TierAlive: t9.alive,
		})
	}
	return out, nil
}

// Render writes the table.
func (r *Table1Result) Render(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "Table 1: average bandwidth (Kbps) of Markov chains with 5 vs 9 states"); err != nil {
		return err
	}
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			fmt.Sprintf("%d", row.Channels),
			fmt.Sprintf("%.1f", row.Random5),
			fmt.Sprintf("%.1f", row.Random9),
			fmt.Sprintf("%.1f", row.RandomSim),
			fmt.Sprintf("%.1f", row.Tier5),
			fmt.Sprintf("%.1f", row.Tier9),
			fmt.Sprintf("%.1f", row.TierSim),
			fmt.Sprintf("%d", row.TierAlive),
		})
	}
	return renderTable(w, []string{
		"channels", "random/5", "random/9", "random/sim", "tier/5", "tier/9", "tier/sim", "tier alive",
	}, rows)
}
