package experiments

import (
	"fmt"
	"io"

	"drqos/internal/core"
	"drqos/internal/manager"
	"drqos/internal/qos"
	"drqos/internal/sim"
)

// AblationARow contrasts elastic QoS with the single-value baselines at one
// load (the paper's §1 motivation: elastic accepts "substantially more"
// DR-connections than a high fixed request while utilizing resources far
// better than a minimal fixed request).
type AblationARow struct {
	Load int
	core.BaselineComparison
}

// AblationAResult is the elastic-vs-single-value comparison.
type AblationAResult struct {
	Rows []AblationARow
}

// AblationA runs the baseline comparison across loads.
func AblationA(cfg Config) (*AblationAResult, error) {
	cfg = cfg.withDefaults()
	events, warmup := cfg.churn()
	rows, err := runPoints(cfg, cfg.loads(), func(load int) (AblationARow, error) {
		sys, err := core.NewSystem(core.Options{
			Seed:         cfg.Seed,
			InitialConns: load,
			ChurnEvents:  events,
			WarmupEvents: warmup,
		})
		if err != nil {
			return AblationARow{}, err
		}
		cmp, err := sys.CompareBaselines()
		if err != nil {
			return AblationARow{}, fmt.Errorf("experiments: ablation A at load %d: %w", load, err)
		}
		return AblationARow{Load: load, BaselineComparison: *cmp}, nil
	})
	if err != nil {
		return nil, err
	}
	return &AblationAResult{Rows: rows}, nil
}

// Render writes the comparison.
func (r *AblationAResult) Render(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "Ablation A: elastic QoS vs single-value QoS baselines"); err != nil {
		return err
	}
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			fmt.Sprintf("%d", row.Load),
			fmt.Sprintf("%.3f", row.Elastic.AcceptanceRatio),
			fmt.Sprintf("%.1f", row.Elastic.AvgBandwidth),
			fmt.Sprintf("%.3f", row.FixedMin.AcceptanceRatio),
			fmt.Sprintf("%.1f", row.FixedMin.AvgBandwidth),
			fmt.Sprintf("%.3f", row.FixedMax.AcceptanceRatio),
			fmt.Sprintf("%.1f", row.FixedMax.AvgBandwidth),
		})
	}
	return renderTable(w, []string{
		"load", "elastic acc", "elastic bw", "fixmin acc", "fixmin bw", "fixmax acc", "fixmax bw",
	}, rows)
}

// AblationBRow compares the two range-QoS adaptation policies (§2.2) on a
// heterogeneous-utility workload.
type AblationBRow struct {
	Policy string
	// HighUtilAvg / LowUtilAvg are the average bandwidths of the
	// high-utility (2.0) and low-utility (1.0) halves of the population.
	HighUtilAvg, LowUtilAvg float64
	// OverallAvg is the population-wide average.
	OverallAvg float64
}

// AblationBResult is the adaptation-policy comparison.
type AblationBResult struct {
	Rows []AblationBRow
}

// AblationB loads a network with alternating utility-1 and utility-2
// connections under each policy and reports who got the extras: the
// max-utility scheme lets high-utility channels monopolize, the coefficient
// scheme shares proportionally (§2.2).
func AblationB(cfg Config) (*AblationBResult, error) {
	cfg = cfg.withDefaults()
	load := 3000
	if cfg.Scale == ScaleQuick {
		load = 1500
	}
	policies := []qos.Policy{qos.CoefficientPolicy{}, qos.MaxUtilityPolicy{}}
	rows, err := runPoints(cfg, policies, func(policy qos.Policy) (AblationBRow, error) {
		sys, err := core.NewSystem(core.Options{Seed: cfg.Seed, Policy: policy})
		if err != nil {
			return AblationBRow{}, err
		}
		mgr, err := manager.New(sys.Graph(), manager.Config{
			Capacity:      core.PaperCapacity,
			Policy:        policy,
			RequireBackup: true,
		})
		if err != nil {
			return AblationBRow{}, err
		}
		// Deterministic heterogeneous loading: alternate utilities.
		src := newPairSource(cfg.Seed, sys.Graph().NumNodes())
		lowSpec := qos.DefaultSpec()
		highSpec := qos.DefaultSpec()
		highSpec.Utility = 2
		for i := 0; i < load; i++ {
			spec := lowSpec
			if i%2 == 1 {
				spec = highSpec
			}
			a, b := src.next()
			_, _ = mgr.Establish(a, b, spec)
		}
		var hiSum, loSum float64
		var hiN, loN int
		for _, id := range mgr.AliveIDs() {
			c := mgr.Conn(id)
			if c.Spec.Utility > 1 {
				hiSum += float64(c.Bandwidth())
				hiN++
			} else {
				loSum += float64(c.Bandwidth())
				loN++
			}
		}
		row := AblationBRow{Policy: policy.Name(), OverallAvg: mgr.AverageBandwidth()}
		if hiN > 0 {
			row.HighUtilAvg = hiSum / float64(hiN)
		}
		if loN > 0 {
			row.LowUtilAvg = loSum / float64(loN)
		}
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	return &AblationBResult{Rows: rows}, nil
}

// Render writes the comparison.
func (r *AblationBResult) Render(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "Ablation B: max-utility vs coefficient adaptation (utilities 1 vs 2)"); err != nil {
		return err
	}
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Policy,
			fmt.Sprintf("%.1f", row.HighUtilAvg),
			fmt.Sprintf("%.1f", row.LowUtilAvg),
			fmt.Sprintf("%.1f", row.OverallAvg),
		})
	}
	return renderTable(w, []string{"policy", "high-util bw", "low-util bw", "overall bw"}, rows)
}

// AblationCRow compares backup multiplexing on/off at one load.
type AblationCRow struct {
	Load int
	// MuxAcceptance / NoMuxAcceptance are the acceptance ratios.
	MuxAcceptance, NoMuxAcceptance float64
	// MuxAvgBW / NoMuxAvgBW are the average primary bandwidths.
	MuxAvgBW, NoMuxAvgBW float64
	// MuxAlive / NoMuxAlive are the final populations.
	MuxAlive, NoMuxAlive int
}

// AblationCResult is the multiplexing ablation.
type AblationCResult struct {
	Rows []AblationCRow
}

// AblationC quantifies §2.1.2's claim that multiplexing backups
// ("overbooking") reduces the resources reserved for protection: without it
// every backup reserves its own spare and far fewer DR-connections fit.
func AblationC(cfg Config) (*AblationCResult, error) {
	cfg = cfg.withDefaults()
	events, warmup := cfg.churn()
	// Flattened to (load, multiplexing) jobs: the on/off arms of one row
	// are independent simulations and can run on different workers.
	type job struct {
		load    int
		disable bool
	}
	loads := cfg.loads()
	jobs := make([]job, 0, 2*len(loads))
	for _, load := range loads {
		jobs = append(jobs, job{load: load}, job{load: load, disable: true})
	}
	cells, err := runPoints(cfg, jobs, func(j job) (*sim.Result, error) {
		arm := "mux"
		if j.disable {
			arm = "no-mux"
		}
		sys, err := core.NewSystem(core.Options{
			Seed:                      cfg.Seed,
			InitialConns:              j.load,
			ChurnEvents:               events,
			WarmupEvents:              warmup,
			DisableBackupMultiplexing: j.disable,
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: ablation C %s at %d: %w", arm, j.load, err)
		}
		ev, err := sys.Evaluate()
		if err != nil {
			return nil, fmt.Errorf("experiments: ablation C %s at %d: %w", arm, j.load, err)
		}
		return ev.Sim, nil
	})
	if err != nil {
		return nil, err
	}
	ratio := func(r *sim.Result) float64 {
		if r.Offered == 0 {
			return 0
		}
		return float64(r.Established) / float64(r.Offered)
	}
	out := &AblationCResult{}
	for i, load := range loads {
		mux, noMux := cells[2*i], cells[2*i+1]
		out.Rows = append(out.Rows, AblationCRow{
			Load:            load,
			MuxAcceptance:   ratio(mux),
			NoMuxAcceptance: ratio(noMux),
			MuxAvgBW:        mux.AvgBandwidth,
			NoMuxAvgBW:      noMux.AvgBandwidth,
			MuxAlive:        mux.AliveAtEnd,
			NoMuxAlive:      noMux.AliveAtEnd,
		})
	}
	return out, nil
}

// Render writes the comparison.
func (r *AblationCResult) Render(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "Ablation C: backup multiplexing on vs off"); err != nil {
		return err
	}
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			fmt.Sprintf("%d", row.Load),
			fmt.Sprintf("%.3f", row.MuxAcceptance),
			fmt.Sprintf("%.3f", row.NoMuxAcceptance),
			fmt.Sprintf("%.1f", row.MuxAvgBW),
			fmt.Sprintf("%.1f", row.NoMuxAvgBW),
			fmt.Sprintf("%d", row.MuxAlive),
			fmt.Sprintf("%d", row.NoMuxAlive),
		})
	}
	return renderTable(w, []string{
		"load", "mux acc", "nomux acc", "mux bw", "nomux bw", "mux alive", "nomux alive",
	}, rows)
}
