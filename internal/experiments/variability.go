package experiments

import (
	"fmt"
	"io"

	"drqos/internal/core"
	"drqos/internal/stats"
)

// VariabilityResult reports how the headline comparison (simulated vs
// analytic average bandwidth) varies across independently generated
// topology instances and workloads. The paper reports single instances;
// this experiment quantifies how much instance luck matters.
type VariabilityResult struct {
	// Load is the per-replication offered load.
	Load int
	// Replications is the number of independent seeds.
	Replications int
	// Sim and Model summarize the per-replication averages.
	Sim, Model stats.Running
	// RelErr summarizes per-replication |model − sim|/sim.
	RelErr stats.Running
}

// Variability runs the mid-load Figure 2 point across several seeds.
func Variability(cfg Config) (*VariabilityResult, error) {
	cfg = cfg.withDefaults()
	reps := 5
	load := 3000
	if cfg.Scale == ScaleQuick {
		reps = 3
		load = 1500
	}
	out := &VariabilityResult{Load: load, Replications: reps}
	events, warmup := cfg.churn()
	reps0 := make([]int, reps)
	for r := range reps0 {
		reps0[r] = r
	}
	// The replications run in parallel; the streaming summaries are then
	// fed in replication order, keeping the floating-point accumulation
	// identical to the sequential path.
	type cell struct{ sim, model float64 }
	cells, err := runPoints(cfg, reps0, func(r int) (cell, error) {
		sys, err := core.NewSystem(core.Options{
			Seed:         cfg.Seed + uint64(r)*7919, // distinct prime-spaced seeds
			InitialConns: load,
			ChurnEvents:  events,
			WarmupEvents: warmup,
		})
		if err != nil {
			return cell{}, err
		}
		ev, err := sys.Evaluate()
		if err != nil {
			return cell{}, fmt.Errorf("experiments: variability rep %d: %w", r, err)
		}
		return cell{sim: ev.Sim.AvgBandwidth, model: ev.RestartModel.MeanBandwidth}, nil
	})
	if err != nil {
		return nil, err
	}
	for _, c := range cells {
		out.Sim.Observe(c.sim)
		out.Model.Observe(c.model)
		rel := c.model - c.sim
		if rel < 0 {
			rel = -rel
		}
		out.RelErr.Observe(rel / c.sim)
	}
	return out, nil
}

// Render writes the summary.
func (r *VariabilityResult) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "Variability: %d replications at load %d\n", r.Replications, r.Load); err != nil {
		return err
	}
	rows := [][]string{
		{"simulation", fmt.Sprintf("%.1f", r.Sim.Mean()), fmt.Sprintf("%.1f", r.Sim.StdDev()),
			fmt.Sprintf("%.1f", r.Sim.Min()), fmt.Sprintf("%.1f", r.Sim.Max())},
		{"markov model", fmt.Sprintf("%.1f", r.Model.Mean()), fmt.Sprintf("%.1f", r.Model.StdDev()),
			fmt.Sprintf("%.1f", r.Model.Min()), fmt.Sprintf("%.1f", r.Model.Max())},
		{"rel. error", fmt.Sprintf("%.3f", r.RelErr.Mean()), fmt.Sprintf("%.3f", r.RelErr.StdDev()),
			fmt.Sprintf("%.3f", r.RelErr.Min()), fmt.Sprintf("%.3f", r.RelErr.Max())},
	}
	return renderTable(w, []string{"series", "mean", "stddev", "min", "max"}, rows)
}
