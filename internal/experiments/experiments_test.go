package experiments

import (
	"bytes"
	"fmt"
	"os"
	"strings"
	"testing"
)

// All experiment tests run at ScaleQuick; the Full scale is exercised by
// the benchmark harness and cmd/experiments.

func TestFig2ShapeAndRender(t *testing.T) {
	res, err := Fig2(Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) < 3 {
		t.Fatalf("points = %d", len(res.Points))
	}
	// Monotone non-increasing simulated average (the paper's headline
	// trend), and the analytic curve within the elastic range.
	const eps = 1e-6 // time-weighted averaging leaves fp dust at the rails
	for i, p := range res.Points {
		if p.SimAvg < 100-eps || p.SimAvg > 500+eps {
			t.Fatalf("point %d: sim %v outside range", i, p.SimAvg)
		}
		if p.Analytic < 100-eps || p.Analytic > 500+eps {
			t.Fatalf("point %d: analytic %v outside range", i, p.Analytic)
		}
		if i > 0 && p.SimAvg > res.Points[i-1].SimAvg+10 {
			t.Fatalf("avg bandwidth increased with load: %+v", res.Points)
		}
	}
	first, last := res.Points[0], res.Points[len(res.Points)-1]
	if first.SimAvg-last.SimAvg < 50 {
		t.Fatalf("no visible load effect: first %v, last %v", first.SimAvg, last.SimAvg)
	}
	// At the lightest load the connection should get nearly Bmax.
	if first.SimAvg < 450 {
		t.Fatalf("light load average %v, want near Bmax", first.SimAvg)
	}
	// The ideal line sits above the simulation (it assumes perfect
	// utilization) once unclamped values are comparable.
	if last.Ideal < last.SimAvg*0.8 {
		t.Fatalf("ideal %v implausibly below sim %v", last.Ideal, last.SimAvg)
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Figure 2", "offered", "markov"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestTable1IncrementSizesAgree(t *testing.T) {
	res, err := Table1(Config{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("no rows")
	}
	for _, row := range res.Rows {
		// The paper's point: 5-state and 9-state chains give similar
		// averages. Allow 15% divergence at quick scale.
		if rel := relDiff(row.Random5, row.Random9); rel > 0.15 {
			t.Fatalf("random 5 vs 9 states diverge: %+v (rel %v)", row, rel)
		}
		// Tier accepts far fewer connections than offered at high loads.
		if row.Channels >= 1500 && row.TierAlive >= row.Channels {
			t.Fatalf("tier accepted everything at load %d: %+v", row.Channels, row)
		}
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Table 1") {
		t.Fatal("render missing title")
	}
}

func relDiff(a, b float64) float64 {
	if a == 0 && b == 0 {
		return 0
	}
	den := a
	if b > den {
		den = b
	}
	d := a - b
	if d < 0 {
		d = -d
	}
	return d / den
}

func TestFig3EdgesGrow(t *testing.T) {
	res, err := Fig3(Config{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) < 3 {
		t.Fatalf("points = %d", len(res.Points))
	}
	for i := 1; i < len(res.Points); i++ {
		if res.Points[i].Links <= res.Points[i-1].Links {
			t.Fatalf("edge count did not grow with nodes: %+v", res.Points)
		}
	}
	// More nodes with the same Waxman parameters → more capacity → higher
	// average bandwidth at fixed load (the paper's Fig 3 trend).
	first, last := res.Points[0], res.Points[len(res.Points)-1]
	if last.SimAvg < first.SimAvg {
		t.Fatalf("bandwidth fell with network size: %+v", res.Points)
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Figure 3") {
		t.Fatal("render missing title")
	}
}

func TestFig4FailureRatesFlat(t *testing.T) {
	res, err := Fig4(Config{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) < 3 {
		t.Fatalf("points = %d", len(res.Points))
	}
	// The paper's finding: γ ≪ λ, μ ⇒ no visible effect. Compare the
	// smallest and the second-largest gamma (the largest, 1e-2, is 10× the
	// arrival rate at quick scale and MAY show an effect; the paper's
	// range tops out at 1e-3 for the same reason).
	lowest := res.Points[0]
	mid := res.Points[len(res.Points)-2]
	if rel := relDiff(lowest.Avg2000, mid.Avg2000); rel > 0.15 {
		t.Fatalf("failure rate visibly changed bandwidth: %+v", res.Points)
	}
	// Failures were actually injected at the higher rates.
	if res.Points[len(res.Points)-1].Failures3000 == 0 {
		t.Fatal("no failures at the top rate")
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Figure 4") {
		t.Fatal("render missing title")
	}
}

func TestAblationA(t *testing.T) {
	res, err := AblationA(Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		if row.FixedMax.AcceptanceRatio > row.Elastic.AcceptanceRatio {
			t.Fatalf("fixed-max accepted more than elastic at load %d: %+v", row.Load, row)
		}
		if row.Elastic.AvgBandwidth < row.FixedMin.AvgBandwidth-1e-9 {
			t.Fatalf("elastic below fixed-min utilization at load %d", row.Load)
		}
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Ablation A") {
		t.Fatal("render missing title")
	}
}

func TestAblationB(t *testing.T) {
	res, err := AblationB(Config{Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	byName := map[string]AblationBRow{}
	for _, r := range res.Rows {
		byName[r.Policy] = r
	}
	maxu, ok1 := byName["max-utility"]
	coef, ok2 := byName["coefficient"]
	if !ok1 || !ok2 {
		t.Fatalf("missing policies: %+v", res.Rows)
	}
	// Under both policies high-utility channels do at least as well as
	// low-utility ones; under max-utility the gap is wider (monopolizing).
	if maxu.HighUtilAvg < maxu.LowUtilAvg {
		t.Fatalf("max-utility inverted: %+v", maxu)
	}
	if coef.HighUtilAvg < coef.LowUtilAvg-1e-9 {
		t.Fatalf("coefficient inverted: %+v", coef)
	}
	gapMaxU := maxu.HighUtilAvg - maxu.LowUtilAvg
	gapCoef := coef.HighUtilAvg - coef.LowUtilAvg
	if gapMaxU < gapCoef {
		t.Fatalf("max-utility gap %v should exceed coefficient gap %v", gapMaxU, gapCoef)
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Ablation B") {
		t.Fatal("render missing title")
	}
}

func TestAblationC(t *testing.T) {
	res, err := AblationC(Config{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	sawBenefit := false
	for _, row := range res.Rows {
		if row.NoMuxAcceptance > row.MuxAcceptance+1e-9 {
			t.Fatalf("disabling multiplexing improved acceptance at load %d: %+v", row.Load, row)
		}
		if row.MuxAcceptance > row.NoMuxAcceptance {
			sawBenefit = true
		}
	}
	if !sawBenefit {
		t.Fatalf("multiplexing showed no benefit at any load: %+v", res.Rows)
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Ablation C") {
		t.Fatal("render missing title")
	}
}

func TestAblationD(t *testing.T) {
	res, err := AblationD(Config{Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("no rows")
	}
	for _, row := range res.Rows {
		if row.FloodAcceptance <= 0 || row.SeqAcceptance <= 0 {
			t.Fatalf("zero acceptance: %+v", row)
		}
		// Flooding never does worse than the sequential baseline on
		// admission (it explores every route the sequential search does
		// and more).
		if row.SeqAcceptance > row.FloodAcceptance+0.02 {
			t.Fatalf("sequential beat flooding at load %d: %+v", row.Load, row)
		}
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Ablation D") {
		t.Fatal("render missing title")
	}
}

func TestCoverage(t *testing.T) {
	res, err := Coverage(Config{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) < 2 {
		t.Fatalf("points = %d", len(res.Points))
	}
	first, last := res.Points[0], res.Points[len(res.Points)-1]
	if last.Failures <= first.Failures {
		t.Fatalf("failure counts did not grow with gamma: %+v", res.Points)
	}
	// Note: exposure is NOT monotone in γ — at very high rates drops thin
	// the population, freeing capacity for instant re-protection — so we
	// only assert well-formedness and that failures actually hurt someone.
	var anyDrops bool
	for _, p := range res.Points {
		if p.UnprotectedFrac < 0 || p.UnprotectedFrac > 1 {
			t.Fatalf("fraction out of range: %+v", p)
		}
		if p.DroppedPerFailure > 0 {
			anyDrops = true
		}
	}
	if !anyDrops {
		t.Fatalf("no failure ever dropped a connection: %+v", res.Points)
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Coverage extension") {
		t.Fatal("render missing title")
	}
}

func TestWriteDatFiles(t *testing.T) {
	dir := t.TempDir()
	res, err := Fig3(Config{Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteDatFile(dir, "fig3", res); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(dir + "/fig3.dat")
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != len(res.Points)+1 {
		t.Fatalf("dat lines = %d, want %d", len(lines), len(res.Points)+1)
	}
	if !strings.HasPrefix(lines[0], "# nodes") {
		t.Fatalf("header = %q", lines[0])
	}
	// Every data line parses as numbers.
	for _, l := range lines[1:] {
		var nodes, links, alive int
		var sim, markov float64
		if _, err := fmt.Sscanf(l, "%d %d %d %f %f", &nodes, &links, &alive, &sim, &markov); err != nil {
			t.Fatalf("line %q: %v", l, err)
		}
	}
	if !strings.Contains(GnuplotScript(), "fig3.dat") {
		t.Fatal("gnuplot script does not reference fig3.dat")
	}
}

func TestVariability(t *testing.T) {
	res, err := Variability(Config{Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sim.N() != res.Replications || res.Model.N() != res.Replications {
		t.Fatalf("replication counts: %d/%d", res.Sim.N(), res.Model.N())
	}
	// Every replication's relative error stays within the band the
	// EXPERIMENTS.md claims for mid loads.
	if res.RelErr.Max() > 0.25 {
		t.Fatalf("a replication diverged: max rel err %v", res.RelErr.Max())
	}
	// Distinct topologies produce distinct results.
	if res.Sim.StdDev() == 0 {
		t.Fatal("replications are identical; seeds not independent")
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Variability") {
		t.Fatal("render missing title")
	}
}

func TestAblationE(t *testing.T) {
	res, err := AblationE(Config{Seed: 14})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) < 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	var reactiveEverRecovered, reactiveEverDropped bool
	for _, row := range res.Rows {
		if row.Failures == 0 {
			t.Fatalf("no failures at γ=%v", row.Gamma)
		}
		if row.ReactiveRecoveredPerFailure > 0 {
			reactiveEverRecovered = true
		}
		if row.ReactiveDropsPerFailure > 0 {
			reactiveEverDropped = true
		}
		// Reactive recovery pays in outage-time route discoveries: every
		// affected connection floods for a new route while its service is
		// down, whereas the backup scheme activates pre-reserved routes.
		if row.ReactiveRecoveredPerFailure+row.ReactiveDropsPerFailure <= 0 {
			t.Fatalf("reactive failures touched nobody at γ=%v: %+v", row.Gamma, row)
		}
		// Without spare reserved, reactive runs fatter in steady state —
		// the §1 capacity-vs-dependability tradeoff.
		if row.ReactiveAvgBW < row.BackupAvgBW-25 {
			t.Fatalf("reactive bw below backup bw at γ=%v: %+v", row.Gamma, row)
		}
	}
	if !reactiveEverRecovered {
		t.Fatal("reactive mode never recovered a connection")
	}
	// Resource shortage must bite somewhere in the sweep ("such channel
	// re-establishment attempts can fail", §2.1.2).
	if !reactiveEverDropped {
		t.Fatal("reactive restoration never failed — shortage never bit")
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Ablation E") {
		t.Fatal("render missing title")
	}
}
