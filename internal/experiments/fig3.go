package experiments

import (
	"fmt"
	"io"

	"drqos/internal/core"
)

// Fig3Point is one data point of Figure 3: average bandwidth as the number
// of nodes grows (Waxman parameters held fixed, 3000 loaded connections).
type Fig3Point struct {
	// Nodes is the network size.
	Nodes int
	// Links is the resulting physical link count (the paper overlays the
	// edge count, which "increases rapidly with the number of nodes when
	// the parameters of Waxman distribution remain unchanged").
	Links int
	// SimAvg and Analytic are the two lines of the figure.
	SimAvg, Analytic float64
	// Alive is the accepted population.
	Alive int
}

// Fig3Result is the full Figure 3 series.
type Fig3Result struct {
	Points []Fig3Point
	// LoadedConns is the per-point load (3000 in the paper).
	LoadedConns int
}

// Fig3 regenerates Figure 3. The sweep holds the Waxman parameters fixed
// while growing the network at constant node density, which reproduces the
// paper's sub-quadratic edge growth (its dotted overlay reaches ≈1600
// directed edges at 500 nodes, ≈4.5× the 100-node count).
func Fig3(cfg Config) (*Fig3Result, error) {
	cfg = cfg.withDefaults()
	nodeCounts := []int{100, 200, 300, 400, 500}
	load := 3000
	if cfg.Scale == ScaleQuick {
		nodeCounts = []int{100, 200, 300}
		load = 1500
	}
	points, err := runPoints(cfg, nodeCounts, func(n int) (Fig3Point, error) {
		ev, sys, err := evaluateAt(cfg, core.Options{Nodes: n, ConstantDensity: true}, load)
		if err != nil {
			return Fig3Point{}, fmt.Errorf("experiments: fig3 at %d nodes: %w", n, err)
		}
		return Fig3Point{
			Nodes:    n,
			Links:    sys.Metrics().Edges,
			SimAvg:   ev.Sim.AvgBandwidth,
			Analytic: ev.RestartModel.MeanBandwidth,
			Alive:    ev.Sim.AliveAtEnd,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return &Fig3Result{LoadedConns: load, Points: points}, nil
}

// Render writes the series as a table.
func (r *Fig3Result) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "Figure 3: average bandwidth vs number of nodes (%d loaded connections)\n", r.LoadedConns); err != nil {
		return err
	}
	rows := make([][]string, 0, len(r.Points))
	for _, p := range r.Points {
		rows = append(rows, []string{
			fmt.Sprintf("%d", p.Nodes),
			fmt.Sprintf("%d", p.Links),
			fmt.Sprintf("%d", p.Alive),
			fmt.Sprintf("%.1f", p.SimAvg),
			fmt.Sprintf("%.1f", p.Analytic),
		})
	}
	return renderTable(w, []string{"nodes", "links", "alive", "sim(Kbps)", "markov(Kbps)"}, rows)
}
