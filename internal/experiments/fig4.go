package experiments

import (
	"fmt"
	"io"

	"drqos/internal/core"
)

// Fig4Point is one data point of Figure 4: average bandwidth as the link
// failure rate γ varies (9-state chain, λ = μ = 0.001).
type Fig4Point struct {
	// Gamma is the link failure rate.
	Gamma float64
	// Avg2000 and Avg3000 are the average bandwidths with 2000 and 3000
	// loaded real-time channels (the figure's two lines).
	Avg2000, Avg3000 float64
	// Analytic2000/Analytic3000 are the paper-model Markov estimates.
	Analytic2000, Analytic3000 float64
	// General2000/General3000 are the general-model estimates, which use
	// the separately measured per-failure involvement probability instead
	// of reusing Pf for the γ term (see DESIGN.md refinement 5 and
	// EXPERIMENTS.md Figure 4).
	General2000, General3000 float64
	// Failures3000 counts injected failures in the 3000-channel run.
	Failures3000 int64
}

// Fig4Result is the full Figure 4 series.
type Fig4Result struct {
	Points []Fig4Point
}

// Fig4 regenerates Figure 4. The paper's finding: the failure rate has no
// visible effect on the average bandwidth "since the link failure rate is
// too small compared to the DR-connection request arrival and termination
// rates".
func Fig4(cfg Config) (*Fig4Result, error) {
	cfg = cfg.withDefaults()
	gammas := []float64{1e-7, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2}
	loads := []int{2000, 3000}
	if cfg.Scale == ScaleQuick {
		gammas = []float64{1e-6, 1e-4, 1e-2}
		loads = []int{1000, 2000}
	}
	// The sweep grid is flattened to (γ, load) jobs so the pool sees every
	// independent simulation at once, then reassembled per γ in order.
	type job struct {
		gamma float64
		load  int
	}
	type cell struct {
		sim, restart, general float64
		failures              int64
	}
	jobs := make([]job, 0, len(gammas)*len(loads))
	for _, g := range gammas {
		for _, load := range loads {
			jobs = append(jobs, job{gamma: g, load: load})
		}
	}
	cells, err := runPoints(cfg, jobs, func(j job) (cell, error) {
		ev, _, err := evaluateAt(cfg, core.Options{Gamma: j.gamma, RepairRate: 0.01}, j.load)
		if err != nil {
			return cell{}, fmt.Errorf("experiments: fig4 at γ=%v load=%d: %w", j.gamma, j.load, err)
		}
		return cell{
			sim:      ev.Sim.AvgBandwidth,
			restart:  ev.RestartModel.MeanBandwidth,
			general:  ev.GeneralModel.MeanBandwidth,
			failures: ev.Sim.Failures,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	out := &Fig4Result{}
	for gi, g := range gammas {
		a, b := cells[gi*len(loads)], cells[gi*len(loads)+1]
		out.Points = append(out.Points, Fig4Point{
			Gamma:        g,
			Avg2000:      a.sim,
			Analytic2000: a.restart,
			General2000:  a.general,
			Avg3000:      b.sim,
			Analytic3000: b.restart,
			General3000:  b.general,
			Failures3000: b.failures,
		})
	}
	return out, nil
}

// Render writes the series as a table.
func (r *Fig4Result) Render(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "Figure 4: average bandwidth vs link failure rate"); err != nil {
		return err
	}
	rows := make([][]string, 0, len(r.Points))
	for _, p := range r.Points {
		rows = append(rows, []string{
			fmt.Sprintf("%.0e", p.Gamma),
			fmt.Sprintf("%.1f", p.Avg2000),
			fmt.Sprintf("%.1f", p.Analytic2000),
			fmt.Sprintf("%.1f", p.General2000),
			fmt.Sprintf("%.1f", p.Avg3000),
			fmt.Sprintf("%.1f", p.Analytic3000),
			fmt.Sprintf("%.1f", p.General3000),
			fmt.Sprintf("%d", p.Failures3000),
		})
	}
	return renderTable(w, []string{
		"gamma", "simA", "markovA", "generalA", "simB", "markovB", "generalB", "failures@B",
	}, rows)
}
