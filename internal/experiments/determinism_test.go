package experiments

import (
	"bytes"
	"reflect"
	"testing"
)

// The parallel sweep runner must be invisible in the results: every data
// point derives its randomness from Config.Seed and its own sweep
// coordinates, so fanning points over any number of workers has to produce
// results bit-identical to the sequential (Workers=1) path. These tests run
// the two richest experiments at several worker counts and compare both the
// typed results and the rendered bytes. `go test -race` additionally checks
// the pool itself for data races.

func TestFig2DeterministicAcrossWorkers(t *testing.T) {
	base, err := Fig2(Config{Seed: 21, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	var baseRender bytes.Buffer
	if err := base.Render(&baseRender); err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		got, err := Fig2(Config{Seed: 21, Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(got, base) {
			t.Fatalf("workers=%d: Fig2Result differs from sequential:\n%+v\nvs\n%+v", workers, got, base)
		}
		var render bytes.Buffer
		if err := got.Render(&render); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(render.Bytes(), baseRender.Bytes()) {
			t.Fatalf("workers=%d: rendered bytes differ:\n%s\nvs\n%s", workers, render.String(), baseRender.String())
		}
	}
}

func TestTable1DeterministicAcrossWorkers(t *testing.T) {
	base, err := Table1(Config{Seed: 22, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	var baseRender bytes.Buffer
	if err := base.Render(&baseRender); err != nil {
		t.Fatal(err)
	}
	workerCounts := []int{8}
	if !testing.Short() {
		workerCounts = []int{2, 8}
	}
	for _, workers := range workerCounts {
		got, err := Table1(Config{Seed: 22, Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(got, base) {
			t.Fatalf("workers=%d: Table1Result differs from sequential:\n%+v\nvs\n%+v", workers, got, base)
		}
		var render bytes.Buffer
		if err := got.Render(&render); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(render.Bytes(), baseRender.Bytes()) {
			t.Fatalf("workers=%d: rendered bytes differ:\n%s\nvs\n%s", workers, render.String(), baseRender.String())
		}
	}
}
