package experiments

import (
	"fmt"
	"io"

	"drqos/internal/core"
)

// CoveragePoint is one data point of the coverage extension experiment
// (not in the paper): how dependability protection degrades as the link
// failure rate grows relative to the repair rate.
type CoveragePoint struct {
	// Gamma is the link failure rate; RepairRate is fixed at 0.01.
	Gamma float64
	// UnprotectedFrac is the time-weighted fraction of connections
	// running without a backup channel.
	UnprotectedFrac float64
	// DroppedPerFailure is the mean number of connections that lost
	// service per injected failure.
	DroppedPerFailure float64
	// Failures counts injected link failures during the run.
	Failures int64
	// AvgBandwidth is the surviving population's average reserved
	// bandwidth.
	AvgBandwidth float64
}

// CoverageResult is the protection-coverage sweep.
type CoverageResult struct {
	Points []CoveragePoint
}

// Coverage runs the protection-coverage extension: the paper guarantees
// every DR-connection one backup "even if component failures occur", but
// between a failover and re-protection a connection runs bare. This sweep
// quantifies that exposure window as γ grows toward the repair rate.
func Coverage(cfg Config) (*CoverageResult, error) {
	cfg = cfg.withDefaults()
	// The load sits near the admission knee: with spare capacity around,
	// re-protection succeeds instantly and exposure is ~0; near saturation
	// replacement backups are hard to admit and the exposure window opens.
	gammas := []float64{1e-5, 1e-4, 1e-3, 1e-2}
	load := 4000
	if cfg.Scale == ScaleQuick {
		gammas = []float64{1e-4, 1e-2}
		load = 2500
	}
	points, err := runPoints(cfg, gammas, func(g float64) (CoveragePoint, error) {
		ev, _, err := evaluateAt(cfg, core.Options{Gamma: g, RepairRate: 0.01}, load)
		if err != nil {
			return CoveragePoint{}, fmt.Errorf("experiments: coverage at γ=%v: %w", g, err)
		}
		p := CoveragePoint{
			Gamma:           g,
			UnprotectedFrac: ev.Sim.UnprotectedFrac,
			Failures:        ev.Sim.Failures,
			AvgBandwidth:    ev.Sim.AvgBandwidth,
		}
		if ev.Sim.Failures > 0 {
			p.DroppedPerFailure = float64(ev.Sim.Dropped) / float64(ev.Sim.Failures)
		}
		return p, nil
	})
	if err != nil {
		return nil, err
	}
	return &CoverageResult{Points: points}, nil
}

// Render writes the sweep as a table.
func (r *CoverageResult) Render(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "Coverage extension: protection exposure vs failure rate (repair rate 0.01)"); err != nil {
		return err
	}
	rows := make([][]string, 0, len(r.Points))
	for _, p := range r.Points {
		rows = append(rows, []string{
			fmt.Sprintf("%.0e", p.Gamma),
			fmt.Sprintf("%.4f", p.UnprotectedFrac),
			fmt.Sprintf("%.3f", p.DroppedPerFailure),
			fmt.Sprintf("%d", p.Failures),
			fmt.Sprintf("%.1f", p.AvgBandwidth),
		})
	}
	return renderTable(w, []string{
		"gamma", "unprotected frac", "dropped/failure", "failures", "avg bw",
	}, rows)
}
