package experiments

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// WriteDat emits the Figure 2 series as whitespace-separated numeric
// columns suitable for gnuplot.
func (r *Fig2Result) WriteDat(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "# offered alive sim simCI markov markov_restart ideal"); err != nil {
		return err
	}
	for _, p := range r.Points {
		if _, err := fmt.Fprintf(w, "%d %d %.3f %.3f %.3f %.3f %.3f\n",
			p.Offered, p.Alive, p.SimAvg, p.SimCI, p.Analytic, p.AnalyticRestart, p.Ideal); err != nil {
			return err
		}
	}
	return nil
}

// WriteDat emits the Table 1 rows as numeric columns.
func (r *Table1Result) WriteDat(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "# channels random5 random9 randomSim tier5 tier9 tierSim tierAlive"); err != nil {
		return err
	}
	for _, row := range r.Rows {
		if _, err := fmt.Fprintf(w, "%d %.3f %.3f %.3f %.3f %.3f %.3f %d\n",
			row.Channels, row.Random5, row.Random9, row.RandomSim,
			row.Tier5, row.Tier9, row.TierSim, row.TierAlive); err != nil {
			return err
		}
	}
	return nil
}

// WriteDat emits the Figure 3 series as numeric columns.
func (r *Fig3Result) WriteDat(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "# nodes links alive sim markov"); err != nil {
		return err
	}
	for _, p := range r.Points {
		if _, err := fmt.Fprintf(w, "%d %d %d %.3f %.3f\n",
			p.Nodes, p.Links, p.Alive, p.SimAvg, p.Analytic); err != nil {
			return err
		}
	}
	return nil
}

// WriteDat emits the Figure 4 series as numeric columns.
func (r *Fig4Result) WriteDat(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "# gamma simA markovA generalA simB markovB generalB failuresB"); err != nil {
		return err
	}
	for _, p := range r.Points {
		if _, err := fmt.Fprintf(w, "%.3e %.3f %.3f %.3f %.3f %.3f %.3f %d\n",
			p.Gamma, p.Avg2000, p.Analytic2000, p.General2000,
			p.Avg3000, p.Analytic3000, p.General3000, p.Failures3000); err != nil {
			return err
		}
	}
	return nil
}

// DatWriter is implemented by results that can emit gnuplot data files.
type DatWriter interface {
	WriteDat(io.Writer) error
}

// WriteDatFile writes one result's data file into dir as <name>.dat.
func WriteDatFile(dir, name string, r DatWriter) error {
	f, err := os.Create(filepath.Join(dir, name+".dat"))
	if err != nil {
		return err
	}
	defer f.Close()
	return r.WriteDat(f)
}

// GnuplotScript returns a plots.gp that renders the paper's four
// figures from the .dat files WriteDatFile produces.
func GnuplotScript() string {
	return `# Regenerates the paper's figures from the .dat files in this directory.
# Usage: gnuplot plots.gp     (produces fig2.png ... fig4.png)
set terminal pngcairo size 900,600
set grid

set output "fig2.png"
set title "Figure 2: average bandwidth vs number of DR-connections"
set xlabel "DR-connections offered"; set ylabel "bandwidth (Kbps)"
set yrange [0:550]
plot "fig2.dat" using 1:3:4 with yerrorlines title "simulation", \
     "fig2.dat" using 1:5 with linespoints title "Markov model", \
     "fig2.dat" using 1:7 with lines dashtype 2 title "ideal"

set output "fig3.png"
set title "Figure 3: average bandwidth vs number of nodes"
set xlabel "nodes"; set ylabel "bandwidth (Kbps)"
set y2label "links"; set y2tics
plot "fig3.dat" using 1:4 with linespoints title "simulation", \
     "fig3.dat" using 1:5 with linespoints title "Markov model", \
     "fig3.dat" using 1:2 axes x1y2 with lines dashtype 2 title "links"

set y2tics; unset y2label; unset y2tics
set output "fig4.png"
set title "Figure 4: average bandwidth vs link failure rate"
set xlabel "failure rate"; set ylabel "bandwidth (Kbps)"
set logscale x
set yrange [0:550]
plot "fig4.dat" using 1:2 with linespoints title "sim (load A)", \
     "fig4.dat" using 1:3 with linespoints title "Markov (load A)", \
     "fig4.dat" using 1:5 with linespoints title "sim (load B)", \
     "fig4.dat" using 1:6 with linespoints title "Markov (load B)"
unset logscale x

set output "table1.png"
set title "Table 1: 5-state vs 9-state chains"
set xlabel "channels"; set ylabel "bandwidth (Kbps)"
set yrange [0:550]
plot "table1.dat" using 1:2 with linespoints title "random, 5 states", \
     "table1.dat" using 1:3 with linespoints title "random, 9 states", \
     "table1.dat" using 1:5 with linespoints title "tier, 5 states", \
     "table1.dat" using 1:6 with linespoints title "tier, 9 states"
`
}
