package experiments

import (
	"fmt"
	"io"

	"drqos/internal/core"
)

// Fig2Point is one data point of Figure 2: average bandwidth of a
// DR-connection as the number of DR-connections grows (100-node Waxman
// network, λ = μ = 0.001, γ = 0, 9-state chain with Δ = 50 Kb/s).
type Fig2Point struct {
	// Offered is the number of connection requests loaded.
	Offered int
	// Alive is the resulting population.
	Alive int
	// SimAvg is the simulated average reserved bandwidth (the solid line).
	SimAvg float64
	// SimCI is the 95% batch-means half-width of SimAvg.
	SimCI float64
	// Analytic is the §3.2 Markov-chain estimate (the dashed × line).
	Analytic float64
	// AnalyticRestart is the finite-lifetime refinement of this
	// reproduction (not in the paper; see DESIGN.md).
	AnalyticRestart float64
	// Ideal is the dotted reference line BW·Edge/(NChan·avghop).
	Ideal float64
}

// Fig2Result is the full Figure 2 series.
type Fig2Result struct {
	Points []Fig2Point
	// Links is the generated instance's physical link count (the paper's
	// instance: 177 physical = 354 directed).
	Links int
	// AvgHops is the final mean route length.
	AvgHops float64
}

// Fig2 regenerates Figure 2. The load points run on cfg.Workers workers;
// each is an independent simulation of the same topology seed.
func Fig2(cfg Config) (*Fig2Result, error) {
	cfg = cfg.withDefaults()
	type cell struct {
		point   Fig2Point
		links   int
		avgHops float64
	}
	cells, err := runPoints(cfg, cfg.loads(), func(load int) (cell, error) {
		ev, sys, err := evaluateAt(cfg, core.Options{}, load)
		if err != nil {
			return cell{}, fmt.Errorf("experiments: fig2 at load %d: %w", load, err)
		}
		return cell{
			links:   sys.Metrics().Edges,
			avgHops: ev.Sim.AvgHops,
			point: Fig2Point{
				Offered:         load,
				Alive:           ev.Sim.AliveAtEnd,
				SimAvg:          ev.Sim.AvgBandwidth,
				SimCI:           ev.Sim.AvgBandwidthCI95,
				Analytic:        ev.PaperModel.MeanBandwidth,
				AnalyticRestart: ev.RestartModel.MeanBandwidth,
				Ideal:           ev.IdealBandwidth,
			},
		}, nil
	})
	if err != nil {
		return nil, err
	}
	out := &Fig2Result{}
	for _, c := range cells {
		out.Links = c.links
		out.AvgHops = c.avgHops
		out.Points = append(out.Points, c.point)
	}
	return out, nil
}

// Render writes the series as a table.
func (r *Fig2Result) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "Figure 2: average bandwidth vs number of DR-connections (%d links, avg %.2f hops)\n",
		r.Links, r.AvgHops); err != nil {
		return err
	}
	rows := make([][]string, 0, len(r.Points))
	for _, p := range r.Points {
		rows = append(rows, []string{
			fmt.Sprintf("%d", p.Offered),
			fmt.Sprintf("%d", p.Alive),
			fmt.Sprintf("%.1f ±%.1f", p.SimAvg, p.SimCI),
			fmt.Sprintf("%.1f", p.Analytic),
			fmt.Sprintf("%.1f", p.AnalyticRestart),
			fmt.Sprintf("%.0f", p.Ideal),
		})
	}
	return renderTable(w, []string{
		"offered", "alive", "sim(Kbps)", "markov(Kbps)", "markov+restart", "ideal",
	}, rows)
}
