// Package experiments reproduces every table and figure of the paper's
// evaluation section (§4), plus the ablations called out in DESIGN.md. Each
// experiment returns typed rows and can render itself as an aligned text
// table whose columns mirror what the paper plots.
//
// Scale presets: Full reproduces the paper's parameter ranges; Quick keeps
// the same shape at a fraction of the load so that `go test -bench` and CI
// runs finish in minutes.
package experiments

import (
	"context"
	"fmt"
	"io"
	"strings"
	"text/tabwriter"

	"drqos/internal/core"
	"drqos/internal/parallel"
	"drqos/internal/rng"
	"drqos/internal/topology"
)

// Scale selects the effort level of an experiment run.
type Scale int

// Scales: Quick for benchmarks and CI, Full for the paper's ranges.
const (
	ScaleQuick Scale = iota + 1
	ScaleFull
)

// Config carries the knobs shared by all experiments.
type Config struct {
	// Seed drives topology generation and the simulations.
	Seed uint64
	// Scale selects Quick or Full parameter ranges (default Quick).
	Scale Scale
	// Workers bounds how many sweep data points run concurrently. Every
	// point is seed-isolated (it derives all randomness from Seed and its
	// own sweep coordinates), so results are bit-identical for any worker
	// count. 0 selects GOMAXPROCS; 1 forces the sequential path.
	Workers int
}

func (c Config) withDefaults() Config {
	if c.Scale == 0 {
		c.Scale = ScaleQuick
	}
	if c.Seed == 0 {
		c.Seed = 2001 // the paper's year; any fixed value works
	}
	return c
}

// churn returns the per-point churn/warmup budget for the scale.
func (c Config) churn() (events, warmup int) {
	if c.Scale == ScaleFull {
		return 2000, 400
	}
	return 600, 150
}

// loads returns the offered-connection sweep for the scale.
func (c Config) loads() []int {
	if c.Scale == ScaleFull {
		return []int{500, 1000, 2000, 3000, 4000, 5000}
	}
	return []int{500, 1500, 3000}
}

// runPoints fans a sweep's data points out over the configured worker pool
// and returns the per-point results in sweep order. Each point builds its
// own System from cfg.Seed and its sweep coordinates, so the fan-out is
// deterministic: any Workers value (including 1, the sequential path)
// produces identical results, and the first error — by sweep order — wins.
func runPoints[P, R any](cfg Config, points []P, fn func(p P) (R, error)) ([]R, error) {
	return parallel.Map(context.Background(), points, cfg.Workers,
		func(_ context.Context, p P) (R, error) { return fn(p) })
}

// renderTable writes rows as an aligned table.
func renderTable(w io.Writer, header []string, rows [][]string) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	if _, err := fmt.Fprintln(tw, strings.Join(header, "\t")); err != nil {
		return err
	}
	underline := make([]string, len(header))
	for i, h := range header {
		underline[i] = strings.Repeat("-", len(h))
	}
	if _, err := fmt.Fprintln(tw, strings.Join(underline, "\t")); err != nil {
		return err
	}
	for _, r := range rows {
		if _, err := fmt.Fprintln(tw, strings.Join(r, "\t")); err != nil {
			return err
		}
	}
	return tw.Flush()
}

// pairSource deterministically draws distinct (src, dst) node pairs.
type pairSource struct {
	src   *rng.Source
	nodes int
}

func newPairSource(seed uint64, nodes int) *pairSource {
	return &pairSource{src: rng.New(seed), nodes: nodes}
}

func (p *pairSource) next() (topology.NodeID, topology.NodeID) {
	a := topology.NodeID(p.src.Intn(p.nodes))
	b := topology.NodeID(p.src.Intn(p.nodes - 1))
	if b >= a {
		b++
	}
	return a, b
}

// evaluateAt runs one data point on a fresh system with the given load.
func evaluateAt(cfg Config, opts core.Options, load int) (*core.Evaluation, *core.System, error) {
	events, warmup := cfg.churn()
	opts.Seed = cfg.Seed
	opts.InitialConns = load
	if opts.ChurnEvents == 0 {
		opts.ChurnEvents = events
	}
	if opts.WarmupEvents == 0 {
		opts.WarmupEvents = warmup
	}
	sys, err := core.NewSystem(opts)
	if err != nil {
		return nil, nil, err
	}
	ev, err := sys.Evaluate()
	if err != nil {
		return nil, nil, err
	}
	return ev, sys, nil
}
