package experiments

import (
	"fmt"
	"io"

	"drqos/internal/core"
)

// AblationDRow compares the §2.1.1 route-discovery strategies at one load.
type AblationDRow struct {
	Load int
	// FloodAcceptance / SeqAcceptance are the acceptance ratios.
	FloodAcceptance, SeqAcceptance float64
	// FloodAvgBW / SeqAvgBW are the average reserved bandwidths.
	FloodAvgBW, SeqAvgBW float64
	// FloodHops / SeqHops are the mean primary-route lengths.
	FloodHops, SeqHops float64
}

// AblationDResult is the route-discovery comparison.
type AblationDResult struct {
	Rows []AblationDRow
}

// AblationD contrasts bounded flooding (parallel search) with the
// sequential shortest-route baseline. The paper argues flooding finds
// qualified routes fast at the cost of request traffic; sequential search
// checks "shortest routes ... first, sequentially one by one" and can miss
// longer detours that still have capacity, so its acceptance drops earlier
// under load.
func AblationD(cfg Config) (*AblationDResult, error) {
	cfg = cfg.withDefaults()
	events, warmup := cfg.churn()
	// Flattened to (load, strategy) jobs so both arms of a row parallelize.
	type job struct {
		load       int
		sequential bool
	}
	type cell struct {
		acc, bw, hops float64
	}
	loads := cfg.loads()
	jobs := make([]job, 0, 2*len(loads))
	for _, load := range loads {
		jobs = append(jobs, job{load: load}, job{load: load, sequential: true})
	}
	cells, err := runPoints(cfg, jobs, func(j job) (cell, error) {
		arm := "flood"
		if j.sequential {
			arm = "sequential"
		}
		sys, err := core.NewSystem(core.Options{
			Seed:              cfg.Seed,
			InitialConns:      j.load,
			ChurnEvents:       events,
			WarmupEvents:      warmup,
			SequentialRouting: j.sequential,
		})
		if err != nil {
			return cell{}, fmt.Errorf("experiments: ablation D %s at %d: %w", arm, j.load, err)
		}
		ev, err := sys.Evaluate()
		if err != nil {
			return cell{}, fmt.Errorf("experiments: ablation D %s at %d: %w", arm, j.load, err)
		}
		r := ev.Sim
		c := cell{bw: r.AvgBandwidth, hops: r.AvgHops}
		if r.Offered > 0 {
			c.acc = float64(r.Established) / float64(r.Offered)
		}
		return c, nil
	})
	if err != nil {
		return nil, err
	}
	out := &AblationDResult{}
	for i, load := range loads {
		f, s := cells[2*i], cells[2*i+1]
		out.Rows = append(out.Rows, AblationDRow{
			Load:            load,
			FloodAcceptance: f.acc, SeqAcceptance: s.acc,
			FloodAvgBW: f.bw, SeqAvgBW: s.bw,
			FloodHops: f.hops, SeqHops: s.hops,
		})
	}
	return out, nil
}

// Render writes the comparison.
func (r *AblationDResult) Render(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "Ablation D: bounded flooding vs sequential route selection"); err != nil {
		return err
	}
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			fmt.Sprintf("%d", row.Load),
			fmt.Sprintf("%.3f", row.FloodAcceptance),
			fmt.Sprintf("%.3f", row.SeqAcceptance),
			fmt.Sprintf("%.1f", row.FloodAvgBW),
			fmt.Sprintf("%.1f", row.SeqAvgBW),
			fmt.Sprintf("%.2f", row.FloodHops),
			fmt.Sprintf("%.2f", row.SeqHops),
		})
	}
	return renderTable(w, []string{
		"load", "flood acc", "seq acc", "flood bw", "seq bw", "flood hops", "seq hops",
	}, rows)
}
