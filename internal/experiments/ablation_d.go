package experiments

import (
	"fmt"
	"io"

	"drqos/internal/core"
)

// AblationDRow compares the §2.1.1 route-discovery strategies at one load.
type AblationDRow struct {
	Load int
	// FloodAcceptance / SeqAcceptance are the acceptance ratios.
	FloodAcceptance, SeqAcceptance float64
	// FloodAvgBW / SeqAvgBW are the average reserved bandwidths.
	FloodAvgBW, SeqAvgBW float64
	// FloodHops / SeqHops are the mean primary-route lengths.
	FloodHops, SeqHops float64
}

// AblationDResult is the route-discovery comparison.
type AblationDResult struct {
	Rows []AblationDRow
}

// AblationD contrasts bounded flooding (parallel search) with the
// sequential shortest-route baseline. The paper argues flooding finds
// qualified routes fast at the cost of request traffic; sequential search
// checks "shortest routes ... first, sequentially one by one" and can miss
// longer detours that still have capacity, so its acceptance drops earlier
// under load.
func AblationD(cfg Config) (*AblationDResult, error) {
	cfg = cfg.withDefaults()
	events, warmup := cfg.churn()
	out := &AblationDResult{}
	for _, load := range cfg.loads() {
		run := func(sequential bool) (acc, bw, hops float64, err error) {
			sys, err := core.NewSystem(core.Options{
				Seed:              cfg.Seed,
				InitialConns:      load,
				ChurnEvents:       events,
				WarmupEvents:      warmup,
				SequentialRouting: sequential,
			})
			if err != nil {
				return 0, 0, 0, err
			}
			ev, err := sys.Evaluate()
			if err != nil {
				return 0, 0, 0, err
			}
			r := ev.Sim
			if r.Offered > 0 {
				acc = float64(r.Established) / float64(r.Offered)
			}
			return acc, r.AvgBandwidth, r.AvgHops, nil
		}
		fa, fb, fh, err := run(false)
		if err != nil {
			return nil, fmt.Errorf("experiments: ablation D flood at %d: %w", load, err)
		}
		sa, sb, sh, err := run(true)
		if err != nil {
			return nil, fmt.Errorf("experiments: ablation D sequential at %d: %w", load, err)
		}
		out.Rows = append(out.Rows, AblationDRow{
			Load:            load,
			FloodAcceptance: fa, SeqAcceptance: sa,
			FloodAvgBW: fb, SeqAvgBW: sb,
			FloodHops: fh, SeqHops: sh,
		})
	}
	return out, nil
}

// Render writes the comparison.
func (r *AblationDResult) Render(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "Ablation D: bounded flooding vs sequential route selection"); err != nil {
		return err
	}
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			fmt.Sprintf("%d", row.Load),
			fmt.Sprintf("%.3f", row.FloodAcceptance),
			fmt.Sprintf("%.3f", row.SeqAcceptance),
			fmt.Sprintf("%.1f", row.FloodAvgBW),
			fmt.Sprintf("%.1f", row.SeqAvgBW),
			fmt.Sprintf("%.2f", row.FloodHops),
			fmt.Sprintf("%.2f", row.SeqHops),
		})
	}
	return renderTable(w, []string{
		"load", "flood acc", "seq acc", "flood bw", "seq bw", "flood hops", "seq hops",
	}, rows)
}
