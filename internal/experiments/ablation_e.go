package experiments

import (
	"fmt"
	"io"

	"drqos/internal/core"
)

// AblationERow contrasts the backup-channel scheme with reactive
// restoration at one failure rate.
type AblationERow struct {
	// Gamma is the link failure rate (repair rate fixed at 0.01).
	Gamma float64
	// BackupDropsPerFailure / ReactiveDropsPerFailure are the mean
	// connections that lost service per failure under each scheme.
	BackupDropsPerFailure, ReactiveDropsPerFailure float64
	// ReactiveRecoveredPerFailure is the mean reactive re-establishment
	// successes per failure.
	ReactiveRecoveredPerFailure float64
	// BackupAvgBW / ReactiveAvgBW are the schemes' average bandwidths.
	BackupAvgBW, ReactiveAvgBW float64
	// Failures counts injected failures (same workload for both schemes).
	Failures int64
}

// AblationEResult is the recovery-scheme comparison.
type AblationEResult struct {
	Rows []AblationERow
	// Load is the offered connection count.
	Load int
}

// AblationE contrasts the backup-channel scheme with reactive restoration
// (§2.1.2). Both schemes see the same topology and workload; the backup
// scheme pre-reserves multiplexed spare, the reactive scheme scrambles for
// a new route after each failure.
//
// What the comparison can and cannot show at connection level: our
// reactive baseline re-establishes INSTANTLY and for free, so its drop
// rate is competitive and its average bandwidth is even higher (no spare
// reserved). The paper's argument for backups is the part this abstraction
// deliberately erases — restoration is "time-consuming" and contended. The
// proxy we report for that cost is ReactiveRecoveredPerFailure: every
// recovery is a full bounded-flooding route discovery executed DURING the
// outage (tens per failure), whereas backup activation needs none.
func AblationE(cfg Config) (*AblationEResult, error) {
	cfg = cfg.withDefaults()
	gammas := []float64{1e-4, 1e-3, 1e-2}
	load := 4000
	if cfg.Scale == ScaleQuick {
		gammas = []float64{1e-3, 1e-2}
		load = 2500
	}
	events, warmup := cfg.churn()
	// Flattened to (γ, scheme) jobs so both schemes at every rate run
	// concurrently.
	type job struct {
		gamma    float64
		reactive bool
	}
	type cell struct {
		drops, recovered, bw float64
		failures             int64
	}
	jobs := make([]job, 0, 2*len(gammas))
	for _, g := range gammas {
		jobs = append(jobs, job{gamma: g}, job{gamma: g, reactive: true})
	}
	cells, err := runPoints(cfg, jobs, func(j job) (cell, error) {
		arm := "backup"
		if j.reactive {
			arm = "reactive"
		}
		sys, err := core.NewSystem(core.Options{
			Seed:             cfg.Seed,
			Gamma:            j.gamma,
			RepairRate:       0.01,
			InitialConns:     load,
			ChurnEvents:      events,
			WarmupEvents:     warmup,
			ReactiveRecovery: j.reactive,
		})
		if err != nil {
			return cell{}, fmt.Errorf("experiments: ablation E %s at γ=%v: %w", arm, j.gamma, err)
		}
		ev, err := sys.Evaluate()
		if err != nil {
			return cell{}, fmt.Errorf("experiments: ablation E %s at γ=%v: %w", arm, j.gamma, err)
		}
		r := ev.Sim
		c := cell{bw: r.AvgBandwidth, failures: r.Failures}
		if r.Failures > 0 {
			c.drops = float64(r.Dropped) / float64(r.Failures)
			c.recovered = float64(r.Recovered) / float64(r.Failures)
		}
		return c, nil
	})
	if err != nil {
		return nil, err
	}
	out := &AblationEResult{Load: load}
	for i, g := range gammas {
		b, r := cells[2*i], cells[2*i+1]
		out.Rows = append(out.Rows, AblationERow{
			Gamma:                       g,
			BackupDropsPerFailure:       b.drops,
			ReactiveDropsPerFailure:     r.drops,
			ReactiveRecoveredPerFailure: r.recovered,
			BackupAvgBW:                 b.bw,
			ReactiveAvgBW:               r.bw,
			Failures:                    b.failures,
		})
	}
	return out, nil
}

// Render writes the comparison.
func (r *AblationEResult) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "Ablation E: backup channels vs reactive restoration (load %d)\n", r.Load); err != nil {
		return err
	}
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			fmt.Sprintf("%.0e", row.Gamma),
			fmt.Sprintf("%.2f", row.BackupDropsPerFailure),
			fmt.Sprintf("%.2f", row.ReactiveDropsPerFailure),
			fmt.Sprintf("%.2f", row.ReactiveRecoveredPerFailure),
			fmt.Sprintf("%.1f", row.BackupAvgBW),
			fmt.Sprintf("%.1f", row.ReactiveAvgBW),
			fmt.Sprintf("%d", row.Failures),
		})
	}
	return renderTable(w, []string{
		"gamma", "backup drops/fail", "reactive drops/fail", "reactive recov/fail",
		"backup bw", "reactive bw", "failures",
	}, rows)
}
