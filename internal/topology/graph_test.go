package topology

import (
	"errors"
	"testing"
	"testing/quick"

	"drqos/internal/rng"
)

// ring builds a cycle of n nodes for test fixtures.
func ring(t *testing.T, n int) *Graph {
	t.Helper()
	g := NewGraph(n)
	for i := 0; i < n; i++ {
		g.AddNode(Point{X: float64(i), Y: 0})
	}
	for i := 0; i < n; i++ {
		if _, err := g.AddLink(NodeID(i), NodeID((i+1)%n)); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestAddNodeAndLink(t *testing.T) {
	g := NewGraph(2)
	a := g.AddNode(Point{0, 0})
	b := g.AddNode(Point{1, 0})
	id, err := g.AddLink(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 2 || g.NumLinks() != 1 {
		t.Fatalf("counts %d/%d", g.NumNodes(), g.NumLinks())
	}
	if !g.HasLink(a, b) || !g.HasLink(b, a) {
		t.Fatal("link not symmetric")
	}
	l := g.Link(id)
	if l.Other(a) != b || l.Other(b) != a {
		t.Fatal("Other wrong")
	}
	if l.Other(NodeID(99)) != -1 {
		t.Fatal("Other on non-endpoint should be -1")
	}
}

func TestAddLinkRejectsSelfLoopAndDuplicate(t *testing.T) {
	g := NewGraph(2)
	a := g.AddNode(Point{})
	b := g.AddNode(Point{})
	if _, err := g.AddLink(a, a); err == nil {
		t.Fatal("self-loop accepted")
	}
	if _, err := g.AddLink(a, b); err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddLink(b, a); err == nil {
		t.Fatal("duplicate accepted")
	}
	if _, err := g.AddLink(a, NodeID(5)); !errors.Is(err, ErrNoSuchNode) {
		t.Fatalf("bad node: %v", err)
	}
}

func TestLinkBetween(t *testing.T) {
	g := ring(t, 4)
	id, ok := g.LinkBetween(0, 1)
	if !ok {
		t.Fatal("missing link 0-1")
	}
	l := g.Link(id)
	if !(l.A == 0 && l.B == 1 || l.A == 1 && l.B == 0) {
		t.Fatalf("wrong link %+v", l)
	}
	if _, ok := g.LinkBetween(0, 2); ok {
		t.Fatal("phantom link 0-2")
	}
}

func TestNeighborsAndDegree(t *testing.T) {
	g := ring(t, 5)
	if g.Degree(0) != 2 {
		t.Fatalf("degree = %d", g.Degree(0))
	}
	nbrs := g.Neighbors(0, nil)
	if len(nbrs) != 2 {
		t.Fatalf("neighbors = %v", nbrs)
	}
	links := g.IncidentLinks(0, nil)
	if len(links) != 2 {
		t.Fatalf("incident links = %v", links)
	}
	var visits int
	g.ForEachNeighbor(0, func(peer NodeID, link LinkID) { visits++ })
	if visits != 2 {
		t.Fatalf("ForEachNeighbor visits = %d", visits)
	}
}

func TestBFSDist(t *testing.T) {
	g := ring(t, 6)
	dist := g.BFSDist(0)
	want := []int{0, 1, 2, 3, 2, 1}
	for i, w := range want {
		if dist[i] != w {
			t.Fatalf("dist = %v, want %v", dist, want)
		}
	}
}

func TestConnectedAndComponents(t *testing.T) {
	g := NewGraph(4)
	for i := 0; i < 4; i++ {
		g.AddNode(Point{})
	}
	if g.Connected() {
		t.Fatal("edgeless graph of 4 reported connected")
	}
	if got := len(g.Components()); got != 4 {
		t.Fatalf("components = %d", got)
	}
	if _, err := g.AddLink(0, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddLink(2, 3); err != nil {
		t.Fatal(err)
	}
	comps := g.Components()
	if len(comps) != 2 {
		t.Fatalf("components = %d", len(comps))
	}
	if _, err := g.AddLink(1, 2); err != nil {
		t.Fatal(err)
	}
	if !g.Connected() {
		t.Fatal("chain not connected")
	}
}

func TestEmptyAndSingletonConnected(t *testing.T) {
	g := NewGraph(0)
	if !g.Connected() {
		t.Fatal("empty graph should be vacuously connected")
	}
	g.AddNode(Point{})
	if !g.Connected() {
		t.Fatal("singleton should be connected")
	}
}

func TestMetricsRing(t *testing.T) {
	g := ring(t, 6)
	m := ComputeMetrics(g)
	if m.Nodes != 6 || m.Edges != 6 {
		t.Fatalf("metrics %+v", m)
	}
	if m.AvgDegree != 2 {
		t.Fatalf("avg degree %v", m.AvgDegree)
	}
	if m.Diameter != 3 {
		t.Fatalf("diameter %d", m.Diameter)
	}
	if !m.Connected {
		t.Fatal("ring reported disconnected")
	}
	// Ring of 6: distances from any node are 1,2,3,2,1 → avg 1.8.
	if m.AvgHops < 1.79 || m.AvgHops > 1.81 {
		t.Fatalf("avg hops %v", m.AvgHops)
	}
}

func TestMetricsDisconnected(t *testing.T) {
	g := NewGraph(3)
	g.AddNode(Point{})
	g.AddNode(Point{})
	g.AddNode(Point{})
	if _, err := g.AddLink(0, 1); err != nil {
		t.Fatal(err)
	}
	m := ComputeMetrics(g)
	if m.Connected {
		t.Fatal("disconnected graph reported connected")
	}
}

func TestWaxmanDeterministic(t *testing.T) {
	cfg := WaxmanConfig{Nodes: 50, Alpha: 0.33, Beta: 0.15}
	g1, err := Waxman(cfg, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	g2, err := Waxman(cfg, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	if g1.NumLinks() != g2.NumLinks() {
		t.Fatalf("nondeterministic: %d vs %d links", g1.NumLinks(), g2.NumLinks())
	}
	for i, l := range g1.links {
		if g2.links[i] != l {
			t.Fatalf("link %d differs", i)
		}
	}
}

func TestWaxmanValidation(t *testing.T) {
	src := rng.New(1)
	cases := []WaxmanConfig{
		{Nodes: 1, Alpha: 0.3, Beta: 0.1},
		{Nodes: 10, Alpha: 0, Beta: 0.1},
		{Nodes: 10, Alpha: 1.5, Beta: 0.1},
		{Nodes: 10, Alpha: 0.3, Beta: 0},
	}
	for i, cfg := range cases {
		if _, err := Waxman(cfg, src); err == nil {
			t.Fatalf("case %d accepted: %+v", i, cfg)
		}
	}
}

func TestWaxmanEnsureConnected(t *testing.T) {
	// Sparse parameters frequently disconnect; EnsureConnected must repair.
	cfg := WaxmanConfig{Nodes: 80, Alpha: 0.2, Beta: 0.05, EnsureConnected: true}
	for seed := uint64(0); seed < 10; seed++ {
		g, err := Waxman(cfg, rng.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		if !g.Connected() {
			t.Fatalf("seed %d: not connected", seed)
		}
	}
}

func TestWaxmanEdgeCountScalesWithBeta(t *testing.T) {
	gSparse, err := Waxman(WaxmanConfig{Nodes: 60, Alpha: 0.33, Beta: 0.05}, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	gDense, err := Waxman(WaxmanConfig{Nodes: 60, Alpha: 0.33, Beta: 5}, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if gDense.NumLinks() <= gSparse.NumLinks() {
		t.Fatalf("beta scaling broken: %d <= %d", gDense.NumLinks(), gSparse.NumLinks())
	}
}

func TestCalibrateBetaHitsPaperInstance(t *testing.T) {
	// The paper's 100-node Waxman instance has 354 edges (avg degree 3.48).
	src := rng.New(2026)
	beta, err := CalibrateBeta(100, 0.33, 354, 3, src)
	if err != nil {
		t.Fatal(err)
	}
	g, err := Waxman(WaxmanConfig{Nodes: 100, Alpha: 0.33, Beta: beta, EnsureConnected: true}, rng.New(99))
	if err != nil {
		t.Fatal(err)
	}
	edges := g.NumLinks()
	if edges < 280 || edges > 440 {
		t.Fatalf("calibrated instance has %d edges, want ~354", edges)
	}
}

func TestCalibrateBetaRejectsBadTrials(t *testing.T) {
	if _, err := CalibrateBeta(10, 0.3, 20, 0, rng.New(1)); err == nil {
		t.Fatal("trials=0 accepted")
	}
}

func TestTransitStubShape(t *testing.T) {
	cfg := DefaultTransitStub()
	if cfg.TotalNodes() != 100 {
		t.Fatalf("default tier size = %d, want 100 (as in the paper)", cfg.TotalNodes())
	}
	g, err := TransitStub(cfg, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 100 {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
	if !g.Connected() {
		t.Fatal("transit-stub not connected")
	}
	var transit, stub int
	for i := 0; i < g.NumNodes(); i++ {
		switch g.Tag(NodeID(i)) {
		case "transit":
			transit++
		case "stub":
			stub++
		default:
			t.Fatalf("node %d untagged", i)
		}
	}
	if transit != 4 || stub != 96 {
		t.Fatalf("transit/stub = %d/%d", transit, stub)
	}
}

func TestTransitStubDeterministic(t *testing.T) {
	cfg := DefaultTransitStub()
	g1, err := TransitStub(cfg, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	g2, err := TransitStub(cfg, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	if g1.NumLinks() != g2.NumLinks() {
		t.Fatal("nondeterministic transit-stub")
	}
}

func TestTransitStubValidation(t *testing.T) {
	bad := []TransitStubConfig{
		{TransitNodes: 1, StubsPerTransit: 1, NodesPerStub: 1},
		{TransitNodes: 2, StubsPerTransit: 0, NodesPerStub: 1},
		{TransitNodes: 2, StubsPerTransit: 1, NodesPerStub: 0},
		{TransitNodes: 2, StubsPerTransit: 1, NodesPerStub: 1, TransitEdgeProb: 2},
		{TransitNodes: 2, StubsPerTransit: 1, NodesPerStub: 1, StubEdgeProb: -0.5},
	}
	for i, cfg := range bad {
		if _, err := TransitStub(cfg, rng.New(1)); err == nil {
			t.Fatalf("bad config %d accepted", i)
		}
	}
}

// Property: any generated Waxman graph with EnsureConnected is connected and
// link endpoints are always in range.
func TestQuickWaxmanWellFormed(t *testing.T) {
	f := func(seed uint64) bool {
		g, err := Waxman(WaxmanConfig{
			Nodes: 30, Alpha: 0.3, Beta: 0.1, EnsureConnected: true,
		}, rng.New(seed))
		if err != nil {
			return false
		}
		if !g.Connected() {
			return false
		}
		for _, l := range g.Links() {
			if l.A < 0 || int(l.A) >= g.NumNodes() || l.B < 0 || int(l.B) >= g.NumNodes() || l.A == l.B {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestDirLinkIDs(t *testing.T) {
	g := ring(t, 3)
	if g.NumDirLinks() != 2*g.NumLinks() {
		t.Fatalf("dir links = %d", g.NumDirLinks())
	}
	l := g.Link(0) // 0-1
	fwd := g.DirID(l.ID, l.A)
	rev := g.DirID(l.ID, l.B)
	if fwd == rev {
		t.Fatal("directions collide")
	}
	if fwd.Link() != l.ID || rev.Link() != l.ID {
		t.Fatal("Link() lost the physical id")
	}
	if !fwd.Forward() || rev.Forward() {
		t.Fatalf("orientation flags wrong: fwd=%v rev=%v", fwd.Forward(), rev.Forward())
	}
}

func TestDirIDPanicsOnNonEndpoint(t *testing.T) {
	g := ring(t, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	g.DirID(0, 2) // link 0 joins nodes 0-1; node 2 is not an endpoint
}

func TestWaxmanScaledDomain(t *testing.T) {
	// Constant-density scaling: 4× the nodes on a 2×2 domain with a fixed
	// decay scale gives roughly 4× the links of the unit-square instance,
	// not 16×.
	base, err := Waxman(WaxmanConfig{Nodes: 100, Alpha: 0.33, Beta: 0.1176, EnsureConnected: true}, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	big, err := Waxman(WaxmanConfig{
		Nodes: 400, Alpha: 0.33, Beta: 0.1176, Side: 2, FixedDecay: true, EnsureConnected: true,
	}, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(big.NumLinks()) / float64(base.NumLinks())
	if ratio < 2.5 || ratio > 7 {
		t.Fatalf("link growth %dx/%dx = %.1f, want ~4 (linear in nodes)", big.NumLinks(), base.NumLinks(), ratio)
	}
	if !big.Connected() {
		t.Fatal("scaled instance disconnected")
	}
}

func TestWaxmanNegativeSide(t *testing.T) {
	if _, err := Waxman(WaxmanConfig{Nodes: 10, Alpha: 0.3, Beta: 0.1, Side: -1}, rng.New(1)); err == nil {
		t.Fatal("negative side accepted")
	}
}
