package topology

// Metrics summarizes the structural properties the paper reports for its
// generated topologies (node/edge counts, average degree, diameter, average
// shortest-path hop count).
type Metrics struct {
	Nodes     int
	Edges     int
	AvgDegree float64
	Diameter  int
	AvgHops   float64
	Connected bool
}

// ComputeMetrics runs all-pairs BFS and returns the summary. For the graph
// sizes in the paper (≤500 nodes) the O(V·E) cost is negligible.
func ComputeMetrics(g *Graph) Metrics {
	m := Metrics{
		Nodes:     g.NumNodes(),
		Edges:     g.NumLinks(),
		Connected: true,
	}
	if m.Nodes > 0 {
		m.AvgDegree = 2 * float64(m.Edges) / float64(m.Nodes)
	}
	var totalHops, pairs int
	for s := 0; s < m.Nodes; s++ {
		dist := g.BFSDist(NodeID(s))
		for t, d := range dist {
			if t == s {
				continue
			}
			if d < 0 {
				m.Connected = false
				continue
			}
			totalHops += d
			pairs++
			if d > m.Diameter {
				m.Diameter = d
			}
		}
	}
	if pairs > 0 {
		m.AvgHops = float64(totalHops) / float64(pairs)
	}
	return m
}
