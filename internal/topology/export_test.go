package topology

import (
	"bytes"
	"strings"
	"testing"

	"drqos/internal/rng"
)

func TestJSONRoundTrip(t *testing.T) {
	g, err := Waxman(WaxmanConfig{Nodes: 30, Alpha: 0.33, Beta: 0.2, EnsureConnected: true}, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumNodes() != g.NumNodes() || g2.NumLinks() != g.NumLinks() {
		t.Fatalf("round trip changed shape: %d/%d vs %d/%d",
			g2.NumNodes(), g2.NumLinks(), g.NumNodes(), g.NumLinks())
	}
	for i := 0; i < g.NumLinks(); i++ {
		if g.Link(LinkID(i)) != g2.Link(LinkID(i)) {
			t.Fatalf("link %d differs", i)
		}
	}
	for i := 0; i < g.NumNodes(); i++ {
		if g.Pos(NodeID(i)) != g2.Pos(NodeID(i)) {
			t.Fatalf("node %d position differs", i)
		}
	}
}

func TestJSONPreservesTags(t *testing.T) {
	g, err := TransitStub(DefaultTransitStub(), rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < g.NumNodes(); i++ {
		if g.Tag(NodeID(i)) != g2.Tag(NodeID(i)) {
			t.Fatalf("tag lost on node %d", i)
		}
	}
}

func TestReadJSONRejectsGarbage(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage accepted")
	}
	// Non-dense node IDs.
	if _, err := ReadJSON(strings.NewReader(`{"nodes":[{"id":5}],"links":[]}`)); err == nil {
		t.Fatal("non-dense node IDs accepted")
	}
	// Link referencing a missing node.
	if _, err := ReadJSON(strings.NewReader(`{"nodes":[{"id":0}],"links":[{"id":0,"a":0,"b":9}]}`)); err == nil {
		t.Fatal("dangling link accepted")
	}
}

func TestWriteDOT(t *testing.T) {
	g := NewGraph(2)
	a := g.AddTaggedNode(Point{0, 0}, "transit")
	b := g.AddNode(Point{1, 1})
	if _, err := g.AddLink(a, b); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteDOT(&buf, g, ""); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"graph \"topology\"", "n0 -- n1", "color=red"} {
		if !strings.Contains(out, want) {
			t.Fatalf("DOT output missing %q:\n%s", want, out)
		}
	}
}
