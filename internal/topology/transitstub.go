package topology

import (
	"fmt"
	"math"

	"drqos/internal/rng"
)

// TransitStubConfig parameterizes a GT-ITM-style transit-stub ("tier")
// internetwork [14]: a small, well-connected transit core, with several stub
// domains hanging off each transit node. Traffic between stubs must cross
// transit links, which become the bandwidth bottleneck — the reason the
// paper's Table 1 notes that "most DR-connections are rejected due to the
// shortage of bandwidths in the transit-stub network".
type TransitStubConfig struct {
	// TransitNodes is the size of the transit core.
	TransitNodes int
	// TransitEdgeProb is the probability of an extra core edge beyond the
	// ring that guarantees core connectivity.
	TransitEdgeProb float64
	// StubsPerTransit is the number of stub domains attached to each
	// transit node.
	StubsPerTransit int
	// NodesPerStub is the number of nodes in each stub domain.
	NodesPerStub int
	// StubEdgeProb is the probability of an extra intra-stub edge beyond
	// the spanning tree that guarantees stub connectivity.
	StubEdgeProb float64
}

// DefaultTransitStub returns the configuration used for the paper's "Tier"
// experiments: 4 transit nodes, 3 stubs each, 8 nodes per stub = 100 nodes.
func DefaultTransitStub() TransitStubConfig {
	return TransitStubConfig{
		TransitNodes:    4,
		TransitEdgeProb: 0.5,
		StubsPerTransit: 3,
		NodesPerStub:    8,
		StubEdgeProb:    0.25,
	}
}

// Validate checks the configuration for structural sanity.
func (c TransitStubConfig) Validate() error {
	switch {
	case c.TransitNodes < 2:
		return fmt.Errorf("topology: transit core needs >=2 nodes, got %d", c.TransitNodes)
	case c.StubsPerTransit < 1:
		return fmt.Errorf("topology: need >=1 stub per transit node, got %d", c.StubsPerTransit)
	case c.NodesPerStub < 1:
		return fmt.Errorf("topology: need >=1 node per stub, got %d", c.NodesPerStub)
	case c.TransitEdgeProb < 0 || c.TransitEdgeProb > 1:
		return fmt.Errorf("topology: transit edge prob %v outside [0,1]", c.TransitEdgeProb)
	case c.StubEdgeProb < 0 || c.StubEdgeProb > 1:
		return fmt.Errorf("topology: stub edge prob %v outside [0,1]", c.StubEdgeProb)
	}
	return nil
}

// TotalNodes returns the number of nodes the configuration will generate.
func (c TransitStubConfig) TotalNodes() int {
	return c.TransitNodes * (1 + c.StubsPerTransit*c.NodesPerStub)
}

// TransitStub generates a transit-stub topology. Node tags are "transit" or
// "stub"; the graph is connected by construction.
func TransitStub(cfg TransitStubConfig, src *rng.Source) (*Graph, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	g := NewGraph(cfg.TotalNodes())

	// Transit core: nodes on a small circle in the centre of the unit
	// square, connected in a ring plus random chords.
	transit := make([]NodeID, cfg.TransitNodes)
	for i := range transit {
		frac := float64(i) / float64(cfg.TransitNodes)
		p := Point{X: 0.5 + 0.1*cos01(frac), Y: 0.5 + 0.1*sin01(frac)}
		transit[i] = g.AddTaggedNode(p, "transit")
	}
	for i := range transit {
		next := transit[(i+1)%len(transit)]
		if !g.HasLink(transit[i], next) {
			if _, err := g.AddLink(transit[i], next); err != nil {
				return nil, err
			}
		}
	}
	for i := 0; i < len(transit); i++ {
		for j := i + 2; j < len(transit); j++ {
			if g.HasLink(transit[i], transit[j]) {
				continue
			}
			if src.Bernoulli(cfg.TransitEdgeProb) {
				if _, err := g.AddLink(transit[i], transit[j]); err != nil {
					return nil, err
				}
			}
		}
	}

	// Stub domains: a random spanning tree plus extra random edges; the
	// first node of each stub is its gateway, linked to its transit node.
	for ti, tn := range transit {
		for s := 0; s < cfg.StubsPerTransit; s++ {
			stub := make([]NodeID, cfg.NodesPerStub)
			for k := range stub {
				p := Point{X: src.Float64(), Y: src.Float64()}
				stub[k] = g.AddTaggedNode(p, "stub")
			}
			// Random spanning tree: attach node k to a random earlier node.
			for k := 1; k < len(stub); k++ {
				parent := stub[src.Intn(k)]
				if _, err := g.AddLink(stub[k], parent); err != nil {
					return nil, err
				}
			}
			for i := 0; i < len(stub); i++ {
				for j := i + 1; j < len(stub); j++ {
					if g.HasLink(stub[i], stub[j]) {
						continue
					}
					if src.Bernoulli(cfg.StubEdgeProb) {
						if _, err := g.AddLink(stub[i], stub[j]); err != nil {
							return nil, err
						}
					}
				}
			}
			gateway := stub[0]
			if _, err := g.AddLink(tn, gateway); err != nil {
				return nil, err
			}
			_ = ti
		}
	}
	return g, nil
}

// cos01 and sin01 map a [0,1) fraction of a full turn to the unit circle.
func cos01(frac float64) float64 { return math.Cos(2 * math.Pi * frac) }
func sin01(frac float64) float64 { return math.Sin(2 * math.Pi * frac) }
