package topology

import (
	"encoding/json"
	"fmt"
	"io"
)

// jsonGraph is the serialized form of a Graph.
type jsonGraph struct {
	Nodes []jsonNode `json:"nodes"`
	Links []jsonLink `json:"links"`
}

type jsonNode struct {
	ID  int     `json:"id"`
	X   float64 `json:"x"`
	Y   float64 `json:"y"`
	Tag string  `json:"tag,omitempty"`
}

type jsonLink struct {
	ID int `json:"id"`
	A  int `json:"a"`
	B  int `json:"b"`
}

// WriteJSON serializes the graph as JSON.
func WriteJSON(w io.Writer, g *Graph) error {
	jg := jsonGraph{
		Nodes: make([]jsonNode, g.NumNodes()),
		Links: make([]jsonLink, g.NumLinks()),
	}
	for i := 0; i < g.NumNodes(); i++ {
		p := g.Pos(NodeID(i))
		jg.Nodes[i] = jsonNode{ID: i, X: p.X, Y: p.Y, Tag: g.Tag(NodeID(i))}
	}
	for i, l := range g.links {
		jg.Links[i] = jsonLink{ID: int(l.ID), A: int(l.A), B: int(l.B)}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(jg)
}

// ReadJSON deserializes a graph written by WriteJSON.
func ReadJSON(r io.Reader) (*Graph, error) {
	var jg jsonGraph
	if err := json.NewDecoder(r).Decode(&jg); err != nil {
		return nil, fmt.Errorf("topology: decoding graph: %w", err)
	}
	g := NewGraph(len(jg.Nodes))
	for i, n := range jg.Nodes {
		if n.ID != i {
			return nil, fmt.Errorf("topology: node IDs must be dense; got %d at index %d", n.ID, i)
		}
		g.AddTaggedNode(Point{X: n.X, Y: n.Y}, n.Tag)
	}
	for i, l := range jg.Links {
		if l.ID != i {
			return nil, fmt.Errorf("topology: link IDs must be dense; got %d at index %d", l.ID, i)
		}
		if _, err := g.AddLink(NodeID(l.A), NodeID(l.B)); err != nil {
			return nil, fmt.Errorf("topology: decoding link %d: %w", i, err)
		}
	}
	return g, nil
}

// WriteDOT renders the graph in Graphviz DOT format for visual inspection.
func WriteDOT(w io.Writer, g *Graph, name string) error {
	if name == "" {
		name = "topology"
	}
	if _, err := fmt.Fprintf(w, "graph %q {\n  node [shape=point];\n", name); err != nil {
		return err
	}
	for i := 0; i < g.NumNodes(); i++ {
		p := g.Pos(NodeID(i))
		color := "black"
		if g.Tag(NodeID(i)) == "transit" {
			color = "red"
		}
		if _, err := fmt.Fprintf(w, "  n%d [pos=\"%.4f,%.4f!\", color=%s];\n", i, p.X, p.Y, color); err != nil {
			return err
		}
	}
	for _, l := range g.links {
		if _, err := fmt.Fprintf(w, "  n%d -- n%d;\n", l.A, l.B); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}
