package topology

import (
	"fmt"
	"math"

	"drqos/internal/rng"
)

// WaxmanConfig parameterizes the Waxman random-graph model [16]: nodes are
// scattered uniformly in the unit square and each node pair (u,v) is joined
// with probability
//
//	P(u,v) = Alpha · exp(−d(u,v) / (Beta · L))
//
// where d is the Euclidean distance and L the maximum possible distance
// (√2 for the unit square).
//
// The paper quotes "α = 0.33 and β = 0" from GT-ITM, which is degenerate in
// the standard Waxman form (β = 0 makes every probability zero). We instead
// reproduce the *reported instance*: 100 nodes, 354 edges, average degree
// 3.48, diameter 8. CalibrateBeta searches for the β that hits a target edge
// count under a fixed α, which recovers a topology with the paper's
// structural statistics. This substitution is recorded in DESIGN.md.
type WaxmanConfig struct {
	Nodes int
	Alpha float64
	Beta  float64
	// Side is the edge length of the square node domain; zero means 1
	// (the unit square).
	Side float64
	// FixedDecay keeps the exponential's distance scale pinned to the
	// UNIT-square diagonal regardless of Side. Growing the domain at
	// constant node density (Side ∝ √Nodes) then keeps the per-node degree
	// roughly constant, so the edge count grows ~linearly with the node
	// count — the sub-quadratic growth visible in the paper's Figure 3
	// edge-count overlay (GT-ITM's "scale" parameter behaves this way).
	// Without FixedDecay the probability depends only on RELATIVE
	// distances and the edge count grows quadratically.
	FixedDecay bool
	// EnsureConnected patches disconnected components together with
	// shortest bridging edges so the routing layer always has a path.
	// GT-ITM's users (including the paper) discard or patch disconnected
	// instances; patching keeps generation deterministic.
	EnsureConnected bool
}

// Waxman generates a Waxman random graph. The source determines the layout
// and edge choices; identical configs and seeds give identical graphs.
func Waxman(cfg WaxmanConfig, src *rng.Source) (*Graph, error) {
	if cfg.Nodes < 2 {
		return nil, fmt.Errorf("topology: Waxman needs >=2 nodes, got %d", cfg.Nodes)
	}
	if cfg.Alpha <= 0 || cfg.Alpha > 1 {
		return nil, fmt.Errorf("topology: Waxman alpha %v outside (0,1]", cfg.Alpha)
	}
	if cfg.Beta <= 0 {
		return nil, fmt.Errorf("topology: Waxman beta %v must be positive (see CalibrateBeta)", cfg.Beta)
	}
	side := cfg.Side
	if side == 0 {
		side = 1
	}
	if side < 0 {
		return nil, fmt.Errorf("topology: negative domain side %v", side)
	}
	g := NewGraph(cfg.Nodes)
	for i := 0; i < cfg.Nodes; i++ {
		g.AddNode(Point{X: side * src.Float64(), Y: side * src.Float64()})
	}
	maxDist := math.Sqrt2 * side
	if cfg.FixedDecay {
		maxDist = math.Sqrt2
	}
	for a := 0; a < cfg.Nodes; a++ {
		for b := a + 1; b < cfg.Nodes; b++ {
			d := g.Pos(NodeID(a)).Dist(g.Pos(NodeID(b)))
			p := cfg.Alpha * math.Exp(-d/(cfg.Beta*maxDist))
			if src.Bernoulli(p) {
				if _, err := g.AddLink(NodeID(a), NodeID(b)); err != nil {
					return nil, err
				}
			}
		}
	}
	if cfg.EnsureConnected {
		connectComponents(g)
	}
	return g, nil
}

// connectComponents joins disconnected components by adding, for each
// non-primary component, the geometrically shortest edge to the primary one.
func connectComponents(g *Graph) {
	for {
		comps := g.Components()
		if len(comps) <= 1 {
			return
		}
		main := comps[0]
		for _, comp := range comps[1:] {
			bestA, bestB := main[0], comp[0]
			best := math.Inf(1)
			for _, a := range main {
				for _, b := range comp {
					if d := g.Pos(a).Dist(g.Pos(b)); d < best {
						best, bestA, bestB = d, a, b
					}
				}
			}
			// Duplicate links are impossible across components.
			if _, err := g.AddLink(bestA, bestB); err != nil {
				panic(fmt.Sprintf("topology: bridging edge failed: %v", err))
			}
		}
	}
}

// CalibrateBeta binary-searches the Waxman β that produces approximately
// targetEdges edges for the given node count and α, averaging over trials
// seeded from src. It returns the calibrated β.
func CalibrateBeta(nodes int, alpha float64, targetEdges, trials int, src *rng.Source) (float64, error) {
	if trials < 1 {
		return 0, fmt.Errorf("topology: CalibrateBeta needs >=1 trial")
	}
	avgEdges := func(beta float64, probe *rng.Source) (float64, error) {
		var total int
		for t := 0; t < trials; t++ {
			g, err := Waxman(WaxmanConfig{Nodes: nodes, Alpha: alpha, Beta: beta}, probe.Split())
			if err != nil {
				return 0, err
			}
			total += g.NumLinks()
		}
		return float64(total) / float64(trials), nil
	}
	lo, hi := 1e-4, 100.0
	// The probe stream is split once per evaluation so each β is judged on
	// fresh but deterministic instances.
	for iter := 0; iter < 60; iter++ {
		mid := math.Sqrt(lo * hi) // geometric bisection: β spans decades
		e, err := avgEdges(mid, src)
		if err != nil {
			return 0, err
		}
		if math.Abs(e-float64(targetEdges)) <= 0.01*float64(targetEdges)+1 {
			return mid, nil
		}
		if e < float64(targetEdges) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return math.Sqrt(lo * hi), nil
}
