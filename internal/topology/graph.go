// Package topology models point-to-point network topologies and provides
// the two generative models the paper draws from the GT-ITM package [14]:
// Waxman random graphs [16] and transit-stub ("tier") internetworks.
//
// Graphs are undirected; every physical link is a single Link with a stable
// LinkID, which is what the resource-management layer keys its reservations
// on. Node positions are kept because the Waxman model's edge probability
// depends on Euclidean distance.
package topology

import (
	"errors"
	"fmt"
	"math"
)

// NodeID identifies a node within one Graph (dense, 0-based).
type NodeID int

// LinkID identifies an undirected link within one Graph (dense, 0-based).
type LinkID int

// Point is a node position in the unit square.
type Point struct {
	X, Y float64
}

// Dist returns the Euclidean distance between two points.
func (p Point) Dist(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// DirLinkID identifies one direction of a physical link. A physical Link l
// has two directions: A→B (forward, 2·l) and B→A (reverse, 2·l+1).
// Real-time channels are unidirectional virtual circuits [3], so bandwidth
// is reserved per direction; a physical failure takes out both directions.
type DirLinkID int

// Link returns the physical link this direction belongs to.
func (d DirLinkID) Link() LinkID { return LinkID(d / 2) }

// Forward reports whether this is the A→B direction.
func (d DirLinkID) Forward() bool { return d%2 == 0 }

// Link is an undirected physical edge between two nodes, carrying one
// independent capacity in each direction.
type Link struct {
	ID   LinkID
	A, B NodeID
}

// Other returns the endpoint opposite n, or -1 if n is not an endpoint.
func (l Link) Other(n NodeID) NodeID {
	switch n {
	case l.A:
		return l.B
	case l.B:
		return l.A
	default:
		return -1
	}
}

// halfedge is one directed view of a link in the adjacency list.
type halfedge struct {
	peer NodeID
	link LinkID
}

// Graph is an undirected multigraph-free network topology. The zero value is
// an empty graph ready for use.
type Graph struct {
	coords []Point
	links  []Link
	adj    [][]halfedge
	// tags carries optional generator metadata (e.g. "transit"/"stub" role).
	tags []string
}

// ErrNoSuchNode reports an out-of-range node reference.
var ErrNoSuchNode = errors.New("topology: no such node")

// NewGraph returns an empty graph with capacity hints for n nodes.
func NewGraph(n int) *Graph {
	return &Graph{
		coords: make([]Point, 0, n),
		adj:    make([][]halfedge, 0, n),
		tags:   make([]string, 0, n),
	}
}

// AddNode appends a node at position p and returns its ID.
func (g *Graph) AddNode(p Point) NodeID {
	id := NodeID(len(g.adj))
	g.coords = append(g.coords, p)
	g.adj = append(g.adj, nil)
	g.tags = append(g.tags, "")
	return id
}

// AddTaggedNode appends a node with a generator role tag.
func (g *Graph) AddTaggedNode(p Point, tag string) NodeID {
	id := g.AddNode(p)
	g.tags[id] = tag
	return id
}

// Tag returns the role tag of node n (empty if untagged).
func (g *Graph) Tag(n NodeID) string { return g.tags[n] }

// NumNodes returns the node count.
func (g *Graph) NumNodes() int { return len(g.adj) }

// NumLinks returns the physical link count.
func (g *Graph) NumLinks() int { return len(g.links) }

// NumDirLinks returns the directed link count (2 per physical link).
func (g *Graph) NumDirLinks() int { return 2 * len(g.links) }

// DirID returns the directed link ID for traversing physical link l
// starting at node from. It panics if from is not an endpoint of l.
func (g *Graph) DirID(l LinkID, from NodeID) DirLinkID {
	link := g.links[l]
	switch from {
	case link.A:
		return DirLinkID(2 * l)
	case link.B:
		return DirLinkID(2*l + 1)
	default:
		panic(fmt.Sprintf("topology: node %d is not an endpoint of link %d (%d-%d)",
			from, l, link.A, link.B))
	}
}

// Pos returns the position of node n.
func (g *Graph) Pos(n NodeID) Point { return g.coords[n] }

// AddLink connects a and b and returns the new link's ID. Self-loops and
// duplicate links are rejected.
func (g *Graph) AddLink(a, b NodeID) (LinkID, error) {
	if int(a) >= len(g.adj) || int(b) >= len(g.adj) || a < 0 || b < 0 {
		return -1, fmt.Errorf("%w: link %d-%d in graph of %d nodes", ErrNoSuchNode, a, b, len(g.adj))
	}
	if a == b {
		return -1, fmt.Errorf("topology: self-loop on node %d", a)
	}
	if g.HasLink(a, b) {
		return -1, fmt.Errorf("topology: duplicate link %d-%d", a, b)
	}
	id := LinkID(len(g.links))
	g.links = append(g.links, Link{ID: id, A: a, B: b})
	g.adj[a] = append(g.adj[a], halfedge{peer: b, link: id})
	g.adj[b] = append(g.adj[b], halfedge{peer: a, link: id})
	return id, nil
}

// HasLink reports whether a and b are directly connected.
func (g *Graph) HasLink(a, b NodeID) bool {
	if int(a) >= len(g.adj) || a < 0 {
		return false
	}
	for _, h := range g.adj[a] {
		if h.peer == b {
			return true
		}
	}
	return false
}

// LinkBetween returns the link joining a and b, if any.
func (g *Graph) LinkBetween(a, b NodeID) (LinkID, bool) {
	if int(a) >= len(g.adj) || a < 0 {
		return -1, false
	}
	for _, h := range g.adj[a] {
		if h.peer == b {
			return h.link, true
		}
	}
	return -1, false
}

// Link returns the link with the given ID.
func (g *Graph) Link(id LinkID) Link { return g.links[id] }

// Links returns a copy of the link list.
func (g *Graph) Links() []Link {
	out := make([]Link, len(g.links))
	copy(out, g.links)
	return out
}

// Degree returns the number of links incident to n.
func (g *Graph) Degree(n NodeID) int { return len(g.adj[n]) }

// Neighbors appends the neighbors of n to dst and returns it. Passing a
// reusable dst avoids per-call allocation in hot paths.
func (g *Graph) Neighbors(n NodeID, dst []NodeID) []NodeID {
	for _, h := range g.adj[n] {
		dst = append(dst, h.peer)
	}
	return dst
}

// IncidentLinks appends the link IDs incident to n to dst and returns it.
func (g *Graph) IncidentLinks(n NodeID, dst []LinkID) []LinkID {
	for _, h := range g.adj[n] {
		dst = append(dst, h.link)
	}
	return dst
}

// ForEachNeighbor calls fn for every (peer, link) of node n.
func (g *Graph) ForEachNeighbor(n NodeID, fn func(peer NodeID, link LinkID)) {
	for _, h := range g.adj[n] {
		fn(h.peer, h.link)
	}
}

// BFSDist computes hop distances from src to every node; unreachable nodes
// get -1.
func (g *Graph) BFSDist(src NodeID) []int {
	dist := make([]int, g.NumNodes())
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []NodeID{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, h := range g.adj[u] {
			if dist[h.peer] < 0 {
				dist[h.peer] = dist[u] + 1
				queue = append(queue, h.peer)
			}
		}
	}
	return dist
}

// Connected reports whether the graph is connected (true for graphs with
// fewer than two nodes).
func (g *Graph) Connected() bool {
	if g.NumNodes() < 2 {
		return true
	}
	dist := g.BFSDist(0)
	for _, d := range dist {
		if d < 0 {
			return false
		}
	}
	return true
}

// Components returns the node sets of the connected components.
func (g *Graph) Components() [][]NodeID {
	seen := make([]bool, g.NumNodes())
	var comps [][]NodeID
	for s := 0; s < g.NumNodes(); s++ {
		if seen[s] {
			continue
		}
		var comp []NodeID
		queue := []NodeID{NodeID(s)}
		seen[s] = true
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			comp = append(comp, u)
			for _, h := range g.adj[u] {
				if !seen[h.peer] {
					seen[h.peer] = true
					queue = append(queue, h.peer)
				}
			}
		}
		comps = append(comps, comp)
	}
	return comps
}
