// Package modelio serializes measured model parameters so that simulation
// (cmd/drsim) and analysis (cmd/drmarkov) can run as separate steps, the
// same split the paper describes in §3.3: obtain Pf, Ps and the jump
// matrices from the simulator, then feed them to the chain solver.
package modelio

import (
	"encoding/json"
	"fmt"
	"io"

	"drqos/internal/markov"
	"drqos/internal/qos"
)

// Document is the on-disk parameter bundle.
type Document struct {
	// Params are the paper-model parameters (rates, Pf/Ps, A/B/T).
	Params markov.Params `json:"params"`
	// BirthDist is the post-establishment level distribution β.
	BirthDist []float64 `json:"birth_dist"`
	// Delta is the per-channel death rate μ/N̄ for the restart extension.
	Delta float64 `json:"delta"`
	// Spec reconstructs the bandwidth levels.
	SpecMin       qos.Kbps `json:"spec_min"`
	SpecMax       qos.Kbps `json:"spec_max"`
	SpecIncrement qos.Kbps `json:"spec_increment"`
}

// Spec returns the elastic spec encoded in the document.
func (d *Document) Spec() qos.ElasticSpec {
	return qos.ElasticSpec{Min: d.SpecMin, Max: d.SpecMax, Increment: d.SpecIncrement, Utility: 1}
}

// Validate checks internal consistency.
func (d *Document) Validate() error {
	spec := d.Spec()
	if err := spec.Validate(); err != nil {
		return err
	}
	if err := d.Params.Validate(); err != nil {
		return err
	}
	if d.Params.N != spec.States() {
		return fmt.Errorf("modelio: params over %d states but spec has %d", d.Params.N, spec.States())
	}
	if len(d.BirthDist) != 0 && len(d.BirthDist) != d.Params.N {
		return fmt.Errorf("modelio: birth distribution over %d states, params have %d",
			len(d.BirthDist), d.Params.N)
	}
	if d.Delta < 0 {
		return fmt.Errorf("modelio: negative delta %v", d.Delta)
	}
	return nil
}

// Write serializes the document as indented JSON.
func Write(w io.Writer, d *Document) error {
	if err := d.Validate(); err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}

// Read deserializes and validates a document.
func Read(r io.Reader) (*Document, error) {
	var d Document
	if err := json.NewDecoder(r).Decode(&d); err != nil {
		return nil, fmt.Errorf("modelio: decoding: %w", err)
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return &d, nil
}
