package modelio

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"testing"

	"drqos/internal/markov"
	"drqos/internal/qos"
)

func validDoc() *Document {
	a, b, tm := markov.ZeroJumpMatrices(5)
	a[2][0] = 0.5
	b[0][3] = 0.25
	tm[1][4] = 1
	return &Document{
		Params: markov.Params{
			N: 5, Lambda: 0.001, Mu: 0.001, Gamma: 0,
			Pf: 0.04, Ps: 0.3, A: a, B: b, T: tm,
		},
		BirthDist:     []float64{0, 0, 0, 0.5, 0.5},
		Delta:         1e-6,
		SpecMin:       100,
		SpecMax:       500,
		SpecIncrement: 100,
	}
}

func TestRoundTrip(t *testing.T) {
	doc := validDoc()
	var buf bytes.Buffer
	if err := Write(&buf, doc); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, doc) {
		t.Fatalf("round trip changed document:\n%+v\nvs\n%+v", got, doc)
	}
}

func TestSpecReconstruction(t *testing.T) {
	doc := validDoc()
	spec := doc.Spec()
	if spec.Min != 100 || spec.Max != 500 || spec.Increment != 100 {
		t.Fatalf("spec %+v", spec)
	}
	if spec.States() != doc.Params.N {
		t.Fatal("state count mismatch")
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Document)
	}{
		{"bad spec", func(d *Document) { d.SpecMin = 0 }},
		{"state mismatch", func(d *Document) { d.SpecIncrement = 50 }},
		{"bad params", func(d *Document) { d.Params.Pf = 2 }},
		{"birth length", func(d *Document) { d.BirthDist = []float64{1} }},
		{"negative delta", func(d *Document) { d.Delta = -1 }},
	}
	for _, tc := range cases {
		doc := validDoc()
		tc.mutate(doc)
		if err := doc.Validate(); err == nil {
			t.Fatalf("%s accepted", tc.name)
		}
		var buf bytes.Buffer
		if err := Write(&buf, doc); err == nil {
			t.Fatalf("%s written", tc.name)
		}
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := Read(strings.NewReader(`{"params":{"N":1}}`)); err == nil {
		t.Fatal("invalid params accepted")
	}
}

func TestSolveFromDocument(t *testing.T) {
	// The document carries everything needed to rebuild and solve the
	// chain — the cross-tool contract.
	doc := validDoc()
	chain, err := markov.Build(doc.Params)
	if err != nil {
		t.Fatal(err)
	}
	rchain, err := chain.WithRestart(doc.BirthDist, doc.Delta)
	if err != nil {
		t.Fatal(err)
	}
	pi, err := rchain.SteadyStateFrom(doc.BirthDist)
	if err != nil {
		t.Fatal(err)
	}
	mean, err := markov.MeanBandwidth(pi, doc.Spec())
	if err != nil {
		t.Fatal(err)
	}
	if mean < float64(qos.Kbps(100)) || mean > float64(qos.Kbps(500)) || math.IsNaN(mean) {
		t.Fatalf("mean = %v", mean)
	}
}
