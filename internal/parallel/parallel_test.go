package parallel

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"
	"time"
)

func square(_ context.Context, i int) (int, error) { return i * i, nil }

func TestRunPointsOrderIndependentOfWorkers(t *testing.T) {
	want := make([]int, 100)
	for i := range want {
		want[i] = i * i
	}
	for _, workers := range []int{0, 1, 2, 3, 8, 64, 1000} {
		got, err := RunPoints(context.Background(), len(want), workers, square)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: results out of order: %v", workers, got)
		}
	}
}

func TestRunPointsZeroAndNegative(t *testing.T) {
	got, err := RunPoints(context.Background(), 0, 4, square)
	if err != nil || len(got) != 0 {
		t.Fatalf("n=0: got %v, %v", got, err)
	}
	if _, err := RunPoints(context.Background(), -1, 4, square); err == nil {
		t.Fatal("n=-1: expected error")
	}
	if _, err := RunPoints[int](context.Background(), 3, 4, nil); err == nil {
		t.Fatal("nil fn: expected error")
	}
}

func TestRunPointsLowestIndexError(t *testing.T) {
	// Several points fail; the reported error must be the lowest-indexed
	// failing point regardless of scheduling.
	fail := map[int]bool{7: true, 3: true, 9: true}
	for _, workers := range []int{1, 2, 8} {
		_, err := RunPoints(context.Background(), 12, workers, func(_ context.Context, i int) (int, error) {
			if fail[i] {
				return 0, fmt.Errorf("point %d failed", i)
			}
			return i, nil
		})
		if err == nil {
			t.Fatalf("workers=%d: expected error", workers)
		}
		// Indices are claimed in ascending order and claimed points run to
		// completion, so point 3 always executes (it is claimed before any
		// later point can cancel the pool) and is the lowest-indexed
		// failure for every worker count.
		if err.Error() != "point 3 failed" {
			t.Fatalf("workers=%d: want lowest-index error, got %q", workers, err)
		}
	}
}

func TestRunPointsCancelStopsClaiming(t *testing.T) {
	var ran atomic.Int64
	_, err := RunPoints(context.Background(), 1000, 2, func(_ context.Context, i int) (int, error) {
		ran.Add(1)
		if i == 0 {
			return 0, errors.New("boom")
		}
		time.Sleep(time.Millisecond) // bound the other worker's throughput
		return i, nil
	})
	if err == nil || err.Error() != "boom" {
		t.Fatalf("err = %v", err)
	}
	if n := ran.Load(); n > 100 {
		t.Fatalf("cancellation did not stop the pool: %d points ran", n)
	}
}

func TestRunPointsParentContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunPoints(ctx, 5, 2, square); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if _, err := RunPoints(ctx, 5, 1, square); !errors.Is(err, context.Canceled) {
		t.Fatalf("sequential err = %v, want context.Canceled", err)
	}
}

func TestRunPointsPropagatesCancelToFn(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := RunPoints(ctx, 4, 4, func(ctx context.Context, i int) (int, error) {
		<-ctx.Done()
		return 0, ctx.Err()
	})
	if err == nil {
		t.Fatal("expected error")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("pool hung for %v", elapsed)
	}
}

func TestMap(t *testing.T) {
	in := []string{"a", "bb", "ccc"}
	got, err := Map(context.Background(), in, 2, func(_ context.Context, s string) (int, error) {
		return len(s), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []int{1, 2, 3}) {
		t.Fatalf("got %v", got)
	}
}
