// Package parallel provides the deterministic worker-pool primitives the
// experiment pipeline fans out with. Every sweep the repo reproduces
// (figures, tables, ablations) evaluates seed-isolated data points — each
// point derives all of its randomness from its own inputs — so the points
// can run on any number of workers and still assemble into results that are
// bit-identical to a sequential run: RunPoints claims indices in order,
// stores each result at its input index, and reports the error of the
// lowest-indexed failing point.
package parallel

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// RunPoints evaluates fn(ctx, i) for every i in [0, n) using at most
// workers goroutines and returns the results in input order.
//
// workers <= 0 selects runtime.GOMAXPROCS(0); workers == 1 runs fn inline
// on the calling goroutine with no pool at all. The result slice is
// identical for every worker count, because result i is always stored at
// index i and fn must derive everything from its inputs.
//
// On the first error the shared context is cancelled (errgroup-style) so
// in-flight points can bail early, the pool drains, and the error of the
// lowest-indexed failing point is returned — which makes the reported
// error deterministic too, since indices are claimed in ascending order.
// Points never started due to cancellation are not counted as failures.
func RunPoints[T any](ctx context.Context, n, workers int, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	if n < 0 {
		return nil, fmt.Errorf("parallel: negative point count %d", n)
	}
	if fn == nil {
		return nil, fmt.Errorf("parallel: nil point function")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	results := make([]T, n)
	if n == 0 {
		return results, ctx.Err()
	}

	if workers <= 1 {
		// Inline fast path: same semantics, no goroutines. The first error
		// is by construction the lowest-indexed one.
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			res, err := fn(ctx, i)
			if err != nil {
				return nil, err
			}
			results[i] = res
		}
		return results, nil
	}

	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if cctx.Err() != nil {
					return // cancelled: leave unclaimed points unrun
				}
				res, err := fn(cctx, i)
				if err != nil {
					errs[i] = err
					cancel()
					return
				}
				results[i] = res
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	// All claimed points succeeded; if the parent context died before the
	// pool finished claiming everything, some results are zero values.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return results, nil
}

// Map runs fn over every element of points with RunPoints semantics:
// bounded workers, input-order results, lowest-index first error.
func Map[P, R any](ctx context.Context, points []P, workers int, fn func(ctx context.Context, p P) (R, error)) ([]R, error) {
	return RunPoints(ctx, len(points), workers, func(ctx context.Context, i int) (R, error) {
		return fn(ctx, points[i])
	})
}
