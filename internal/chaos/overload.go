package chaos

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"drqos/internal/channel"
	"drqos/internal/forecast"
	"drqos/internal/manager"
	"drqos/internal/overload"
	"drqos/internal/qos"
	"drqos/internal/rng"
	"drqos/internal/server"
	"drqos/internal/topology"
)

// OverloadConfig seeds one overload episode: the server's service rate is
// capped with an artificial per-command delay, callers carry deadlines
// shorter than the backlog they create, and the episode asserts the
// overload control plane's whole contract under that pressure.
type OverloadConfig struct {
	Seed     uint64
	Nodes    int    // Waxman topology size (default 24)
	TopoSeed uint64 // default: derived from Seed
	Manager  manager.Config

	// Workers is the number of concurrent client goroutines (default 8).
	Workers int
	// Ops is the number of operations each worker attempts (default 150).
	Ops int
	// QueueDepth is the consuming lane's buffer (default 32).
	QueueDepth int
	// ExecDelay caps the actor's service rate (default 2ms/command), so
	// the closed-loop workers reliably outrun it.
	ExecDelay time.Duration
	// Deadline is each establish call's context timeout (default 4ms —
	// twice the service time, far less than the backlog's sojourn time, so
	// most queued establishes expire before the loop reaches them).
	Deadline time.Duration
	// Target and Interval configure the delay detector (defaults 1ms/5ms —
	// tight, so the latch engages deterministically on any real backlog).
	Target, Interval time.Duration

	// DisableForecast turns off the live forecaster that otherwise runs
	// (with a fast solve cadence) through the episode, to pin down a
	// failure to the overload plane alone. The default-on forecaster is
	// part of the contract: its reads must stay live while the consuming
	// lane drowns, and its solve loop must never wedge the actor loop.
	DisableForecast bool
}

func (c OverloadConfig) withDefaults() OverloadConfig {
	if c.Nodes <= 0 {
		c.Nodes = 24
	}
	if c.TopoSeed == 0 {
		c.TopoSeed = c.Seed + 0x9e3779b97f4a7c15
	}
	if c.Manager.Capacity <= 0 {
		c.Manager.Capacity = 10_000
	}
	if c.Workers <= 0 {
		c.Workers = 8
	}
	if c.Ops <= 0 {
		c.Ops = 150
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 32
	}
	if c.ExecDelay <= 0 {
		c.ExecDelay = 2 * time.Millisecond
	}
	if c.Deadline <= 0 {
		c.Deadline = 4 * time.Millisecond
	}
	if c.Target <= 0 {
		c.Target = time.Millisecond
	}
	if c.Interval <= 0 {
		c.Interval = 5 * time.Millisecond
	}
	return c
}

// OverloadResult summarizes what one episode observed.
type OverloadResult struct {
	EstablishOK      int64 // establishes answered with an admitted connection
	EstablishExpired int64 // establish calls whose deadline died first
	Terminated       int64 // terminations completed (freeing lane, under load)
	ShedExpired      int64
	ShedCanceled     int64
	Episodes         int64 // overload latch engagements
	RecoveredIn      time.Duration

	ForecastReads  int64 // lock-free forecast reads completed during the burst
	ForecastSolves int64 // solve-loop sequence number reached by episode end
}

// RunOverload drives one seeded overload episode and asserts the graceful-
// degradation contract:
//
//   - the server never wedges: every call is answered within its own
//     deadline, and the whole episode completes under a watchdog;
//   - it sheds: expired commands are dropped unexecuted, and the overload
//     state latches at least once while the backlog is sustained;
//   - terminations (freeing lane) keep completing while establishes queue;
//   - it recovers: once the burst stops, the overloaded state clears, the
//     queue drains, the final audit is clean, and the server never entered
//     degraded mode.
//
// Like RunServer, interleavings are scheduler-dependent; this episode type
// exists for the race detector and the overload state machine, not for
// replayable traces.
func RunOverload(cfg OverloadConfig) (OverloadResult, error) {
	cfg = cfg.withDefaults()
	var res OverloadResult
	g, err := topology.Waxman(topology.WaxmanConfig{
		Nodes: cfg.Nodes, Alpha: 0.33, Beta: 0.25, EnsureConnected: true,
	}, rng.New(cfg.TopoSeed))
	if err != nil {
		return res, fmt.Errorf("chaos: topology: %w", err)
	}
	opts := server.Options{
		QueueDepth: cfg.QueueDepth,
		ExecDelay:  cfg.ExecDelay,
		Overload:   overload.DetectorConfig{Target: cfg.Target, Interval: cfg.Interval},
	}
	if !cfg.DisableForecast {
		// A fast cadence so the solve loop runs many times inside the
		// episode, maximizing its chances to interfere with the actor loop
		// if it ever could.
		opts.Forecast = &forecast.Config{Interval: 10 * time.Millisecond, MinEvents: 10}
	}
	srv, err := server.New(g, cfg.Manager, opts)
	if err != nil {
		return res, fmt.Errorf("chaos: server: %w", err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}()

	var (
		okN, expiredN, termN atomic.Int64
		firstMu              sync.Mutex
		first                error
	)
	report := func(err error) {
		firstMu.Lock()
		if first == nil {
			first = err
		}
		firstMu.Unlock()
	}

	// Forecast liveness probe: hammer the lock-free read path for the whole
	// burst. Every read completes (it cannot block by construction — the
	// race detector is what makes this loop interesting), and the highest
	// sequence number observed proves the solve loop kept making progress
	// while the consuming lane was drowning.
	var (
		fcReads  atomic.Int64
		fcMaxSeq atomic.Int64
		stopPoll = make(chan struct{})
		pollDone = make(chan struct{})
	)
	if fc := srv.Forecaster(); fc != nil {
		go func() {
			defer close(pollDone)
			for {
				select {
				case <-stopPoll:
					return
				default:
				}
				if cur := fc.Current(); cur != nil && cur.Seq > fcMaxSeq.Load() {
					fcMaxSeq.Store(cur.Seq)
				}
				fcReads.Add(1)
				time.Sleep(500 * time.Microsecond)
			}
		}()
	} else {
		close(pollDone)
	}
	defer func() {
		select {
		case <-stopPoll:
		default:
			close(stopPoll)
		}
		<-pollDone
	}()

	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			src := rng.New(cfg.Seed ^ (uint64(w)+1)*0xbf58476d1ce4e5b9)
			var mine []channel.ConnID
			for op := 0; op < cfg.Ops; op++ {
				if src.Float64() < 0.2 && len(mine) > 0 {
					// Terminations ride the freeing lane: they must keep
					// completing while the consuming lane is drowning. A
					// generous deadline doubles as the wedge detector — if
					// even freeing work can't finish in 10s, the loop is
					// stuck and the episode fails.
					i := src.Intn(len(mine))
					ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
					_, err := srv.Terminate(ctx, mine[i])
					cancel()
					if err != nil && !errors.Is(err, server.ErrNotFound) {
						report(fmt.Errorf("chaos: worker %d op %d: terminate under overload: %w", w, op, err))
						return
					}
					termN.Add(1)
					mine[i] = mine[len(mine)-1]
					mine = mine[:len(mine)-1]
					continue
				}
				a := src.Intn(cfg.Nodes)
				b := src.Intn(cfg.Nodes - 1)
				if b >= a {
					b++
				}
				ctx, cancel := context.WithTimeout(context.Background(), cfg.Deadline)
				rep, err := srv.Establish(ctx, topology.NodeID(a), topology.NodeID(b), qos.DefaultSpec())
				cancel()
				switch {
				case err == nil:
					okN.Add(1)
					mine = append(mine, rep.Conn.ID)
				case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
					expiredN.Add(1)
				case errors.Is(err, manager.ErrRejected):
					// capacity rejection: serviced, just refused
				default:
					report(fmt.Errorf("chaos: worker %d op %d: establish: %w", w, op, err))
					return
				}
			}
		}(w)
	}

	// Watchdog: the burst is deadline-bounded per call, so the whole
	// episode must complete in bounded time — a hang here IS the bug this
	// harness exists to catch.
	doneCh := make(chan struct{})
	go func() { wg.Wait(); close(doneCh) }()
	select {
	case <-doneCh:
	case <-time.After(2 * time.Minute):
		return res, errors.New("chaos: overload episode wedged: workers still blocked after 2m of deadline-bounded calls")
	}
	if first != nil {
		return res, first
	}

	// Recovery: with the burst over, the backlog drains (bounded by
	// QueueDepth x ExecDelay) and the latch must clear on its own.
	recT0 := time.Now()
	deadline := recT0.Add(30 * time.Second)
	for srv.Overloaded() || srv.QueueDepth() > 0 {
		if time.Now().After(deadline) {
			return res, fmt.Errorf("chaos: overload state never cleared: overloaded=%v queue=%d",
				srv.Overloaded(), srv.QueueDepth())
		}
		time.Sleep(time.Millisecond)
	}
	res.RecoveredIn = time.Since(recT0)

	close(stopPoll)
	<-pollDone

	res.EstablishOK = okN.Load()
	res.EstablishExpired = expiredN.Load()
	res.Terminated = termN.Load()
	res.ShedExpired, res.ShedCanceled = srv.Sheds()
	res.Episodes = srv.OverloadEpisodes()
	res.ForecastReads = fcReads.Load()
	res.ForecastSolves = fcMaxSeq.Load()

	// Forecast liveness: the control plane must have kept serving reads
	// through the episode, and — once enough events were admitted to feed
	// the estimator — kept solving too.
	if fc := srv.Forecaster(); fc != nil {
		if res.ForecastReads == 0 {
			return res, errors.New("chaos: forecast probe completed zero reads during the episode")
		}
		if res.EstablishOK+res.Terminated >= 10 && res.ForecastSolves == 0 {
			// The solve loop had events and tens of intervals; silence
			// means it wedged behind the overloaded actor loop.
			return res, fmt.Errorf("chaos: forecaster never solved during the episode (%d events observed)",
				res.EstablishOK+res.Terminated)
		}
	}

	// The pressure must have been real: deadlines died, commands were
	// shed unexecuted, and the latch engaged.
	if res.EstablishExpired == 0 {
		return res, errors.New("chaos: no establish deadline ever expired — the episode applied no real pressure")
	}
	if res.ShedExpired+res.ShedCanceled == 0 {
		return res, errors.New("chaos: expired callers but zero shed commands — the loop executed work nobody was waiting for")
	}
	if res.Episodes == 0 {
		return res, errors.New("chaos: sustained backlog never latched the overload state")
	}

	// Steady state: audit clean, never degraded.
	if err := srv.CheckInvariants(context.Background()); err != nil {
		return res, fmt.Errorf("chaos: final audit after overload: %w", err)
	}
	if deg, reason := srv.Degraded(); deg {
		return res, fmt.Errorf("chaos: server degraded under overload (must shed, not corrupt): %s", reason)
	}
	return res, nil
}
