// Sharded-plane chaos: kill one region shard in the middle of a
// cross-shard two-phase establish, prove the survivors abort cleanly (no
// leaked reservations), then restart the whole deployment from disk and
// prove boot reconciliation replays every shard — victim included — to a
// state consistent with the acknowledged prefix: survivors bit-identical
// to the state they served live, the orphaned prepare aborted, committed
// cross-shard connections intact, and the plane accepting new work.
package chaos

import (
	"context"
	"errors"
	"fmt"
	"reflect"

	"drqos/internal/journal"
	"drqos/internal/manager"
	"drqos/internal/qos"
	"drqos/internal/rng"
	"drqos/internal/server"
	"drqos/internal/shard"
	"drqos/internal/topology"
)

// ShardCrashConfig seeds one mid-2PC shard-kill episode. Dir must name an
// empty or absent directory; the episode owns it.
type ShardCrashConfig struct {
	Seed     uint64
	TopoSeed uint64
	Shards   int // default 4 (the tier topology's region count)
	// Establishes is the acknowledged mixed load driven before the doomed
	// transaction (default 24).
	Establishes int
	Manager     manager.Config
	Dir         string
}

// ShardCrashResult summarizes a clean episode.
type ShardCrashResult struct {
	Shards      int
	Victim      int
	Established int   // acknowledged pre-crash connections (intra + cross)
	CrossAlive  int64 // committed cross-shard transactions before the kill
	// Fingerprint digests every shard's replayed state, in shard order.
	Fingerprints []string
}

type shardPopulation struct {
	Alive       int
	Unprotected int
	Hist        []int
}

func shardPopulations(ctx context.Context, c *shard.Coordinator) ([]shardPopulation, error) {
	out := make([]shardPopulation, c.NumShards())
	for i := range out {
		st, err := c.Shard(i).Snapshot(ctx)
		if err != nil {
			return nil, err
		}
		hist := st.LevelHistogram
		for len(hist) > 0 && hist[len(hist)-1] == 0 {
			hist = hist[:len(hist)-1]
		}
		if len(hist) == 0 {
			hist = nil
		}
		out[i] = shardPopulation{Alive: st.Alive, Unprotected: st.Unprotected, Hist: hist}
	}
	return out, nil
}

func shardFingerprints(ctx context.Context, c *shard.Coordinator) ([]string, error) {
	out := make([]string, c.NumShards())
	for i := range out {
		fp, err := c.Shard(i).StateFingerprint(ctx)
		if err != nil {
			return nil, err
		}
		out[i] = fp
	}
	return out, nil
}

// RunShardCrash runs one episode and returns an error describing the first
// dependability violation it finds, or the result of a clean run.
func RunShardCrash(cfg ShardCrashConfig) (*ShardCrashResult, error) {
	if cfg.Dir == "" {
		return nil, errors.New("chaos: ShardCrashConfig.Dir is required")
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 4
	}
	if cfg.Establishes <= 0 {
		cfg.Establishes = 24
	}
	if cfg.Manager.Capacity == 0 {
		cfg.Manager.Capacity = 10000
	}
	g, err := topology.TransitStub(topology.DefaultTransitStub(), rng.New(cfg.TopoSeed))
	if err != nil {
		return nil, err
	}
	opt := shard.Options{
		Shards:  cfg.Shards,
		Dir:     cfg.Dir,
		Manager: cfg.Manager,
		Journal: journal.Options{FsyncEvery: -1},
	}
	c, err := shard.New(g, opt)
	if err != nil {
		return nil, err
	}
	ctx := context.Background()
	res := &ShardCrashResult{Shards: cfg.Shards}

	// Acknowledged mixed load: random pairs, some intra- and some
	// cross-shard, with a sprinkling of terminations.
	src := rng.New(cfg.Seed)
	var ids []int64
	for len(ids) < cfg.Establishes {
		a := topology.NodeID(src.Intn(g.NumNodes()))
		b := topology.NodeID(src.Intn(g.NumNodes()))
		if a == b {
			continue
		}
		er, err := c.Establish(ctx, a, b, qos.DefaultSpec())
		if err != nil {
			if errors.Is(err, manager.ErrRejected) || errors.Is(err, shard.ErrNoRoute) {
				continue
			}
			c.Shutdown(ctx)
			return nil, fmt.Errorf("chaos: seed establish %d→%d: %w", a, b, err)
		}
		ids = append(ids, er.ID)
		if len(ids)%5 == 0 {
			victimID := ids[src.Intn(len(ids))]
			if err := c.Terminate(ctx, victimID); err != nil && !errors.Is(err, server.ErrNotFound) {
				c.Shutdown(ctx)
				return nil, fmt.Errorf("chaos: seed terminate %d: %w", victimID, err)
			}
		}
	}
	res.Established = len(ids)
	_, res.CrossAlive, _ = c.CrossStats()

	beforePop, err := shardPopulations(ctx, c)
	if err != nil {
		c.Shutdown(ctx)
		return nil, err
	}

	// Find a guaranteed cross-shard pair (stub nodes in different shards)
	// and kill the first participant right after its prepare is durable.
	var cs, cd topology.NodeID = -1, -1
	for n := 0; n < g.NumNodes() && cd == -1; n++ {
		if g.Tag(topology.NodeID(n)) != "stub" {
			continue
		}
		if cs == -1 {
			cs = topology.NodeID(n)
		} else if c.Plan().NodeShard[n] != c.Plan().NodeShard[cs] {
			cd = topology.NodeID(n)
		}
	}
	victim := -1
	c.SetTestHookAfterPrepare(func(s int, txn uint64) error {
		if victim != -1 {
			return nil
		}
		victim = s
		if err := c.Shard(s).Shutdown(context.Background()); err != nil {
			return fmt.Errorf("victim shutdown: %w", err)
		}
		return fmt.Errorf("chaos: shard %d killed mid-2PC", s)
	})
	if _, err := c.Establish(ctx, cs, cd, qos.DefaultSpec()); err == nil {
		c.Shutdown(ctx)
		return nil, errors.New("chaos: doomed cross establish succeeded despite shard kill")
	}
	if victim == -1 {
		c.Shutdown(ctx)
		return nil, errors.New("chaos: kill hook never fired")
	}
	res.Victim = victim

	// Survivors must have aborted cleanly: same populations as before the
	// doomed transaction. Their live fingerprints are the replay baseline.
	liveFPs := make([]string, c.NumShards())
	for i := 0; i < c.NumShards(); i++ {
		if i == victim {
			continue
		}
		fp, err := c.Shard(i).StateFingerprint(ctx)
		if err != nil {
			c.Shutdown(ctx)
			return nil, err
		}
		liveFPs[i] = fp
		st, err := c.Shard(i).Snapshot(ctx)
		if err != nil {
			c.Shutdown(ctx)
			return nil, err
		}
		if st.Alive != beforePop[i].Alive {
			c.Shutdown(ctx)
			return nil, fmt.Errorf("chaos: surviving shard %d holds %d connections after abort, want %d",
				i, st.Alive, beforePop[i].Alive)
		}
	}

	// Crash the rest of the deployment and restart from disk.
	if err := c.Shutdown(ctx); err != nil {
		return nil, fmt.Errorf("chaos: shutdown: %w", err)
	}
	c, err = shard.New(g, opt)
	if err != nil {
		return nil, fmt.Errorf("chaos: restart: %w", err)
	}
	defer c.Shutdown(ctx)

	afterFPs, err := shardFingerprints(ctx, c)
	if err != nil {
		return nil, err
	}
	for i := 0; i < c.NumShards(); i++ {
		if i != victim && afterFPs[i] != liveFPs[i] {
			return nil, fmt.Errorf("chaos: surviving shard %d replayed to a different state than it served live", i)
		}
	}
	afterPop, err := shardPopulations(ctx, c)
	if err != nil {
		return nil, err
	}
	if !reflect.DeepEqual(beforePop, afterPop) {
		return nil, fmt.Errorf("chaos: replayed populations diverged from acknowledged prefix: before %+v after %+v",
			beforePop, afterPop)
	}
	// The restored plane must still admit work, intra and cross.
	if _, err := c.Establish(ctx, cs, cd, qos.DefaultSpec()); err != nil {
		return nil, fmt.Errorf("chaos: post-recovery cross establish: %w", err)
	}
	res.Fingerprints = afterFPs
	return res, nil
}
