package chaos

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"drqos/internal/channel"
	"drqos/internal/manager"
	"drqos/internal/qos"
	"drqos/internal/rng"
	"drqos/internal/server"
	"drqos/internal/topology"
)

// ServerConfig seeds one concurrent episode against server.Server. Zero
// fields select defaults, mirroring Config.
type ServerConfig struct {
	Seed     uint64
	Nodes    int    // Waxman topology size (default 24)
	TopoSeed uint64 // default: derived from Seed
	Manager  manager.Config
	Spec     qos.ElasticSpec

	// Workers is the number of concurrent client goroutines (default 8).
	Workers int
	// Ops is the number of operations each worker attempts (default 100).
	Ops int
	// QueueDepth is the server's command-queue depth (default 16 — shallow
	// on purpose, so enqueue contention and submit-time cancellation paths
	// are actually exercised).
	QueueDepth int
	// ShutdownAfter, when > 0, fires server.Shutdown from a controller
	// goroutine once that many operations have completed across all
	// workers — mid-burst, so workers race the closing queue.
	ShutdownAfter int64
}

func (c ServerConfig) withDefaults() ServerConfig {
	if c.Nodes <= 0 {
		c.Nodes = 24
	}
	if c.TopoSeed == 0 {
		c.TopoSeed = c.Seed + 0x9e3779b97f4a7c15
	}
	if c.Manager.Capacity <= 0 {
		c.Manager.Capacity = 10_000
	}
	if c.Spec == (qos.ElasticSpec{}) {
		c.Spec = qos.DefaultSpec()
	}
	if c.Workers <= 0 {
		c.Workers = 8
	}
	if c.Ops <= 0 {
		c.Ops = 100
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16
	}
	return c
}

// RunServer drives a concurrent op mix (establish / terminate / fail /
// repair / snapshot / audit) against a fresh server.Server from
// cfg.Workers goroutines. Expected coordination errors — rejections,
// not-found, conflicts, and ErrServerClosed once the mid-burst Shutdown
// fires — are tolerated; anything else (in particular ErrDegraded: no
// fault is injected, so the server must never degrade) fails the episode.
// A final audit runs after the burst unless the server was shut down.
//
// Unlike Run, concurrent interleavings are scheduler-dependent, so traces
// are not replayable; this half of the harness exists for the race
// detector and the shutdown/degraded state machines, while Run/Replay/
// Shrink own deterministic ledger auditing.
func RunServer(cfg ServerConfig) error {
	cfg = cfg.withDefaults()
	g, err := topology.Waxman(topology.WaxmanConfig{
		Nodes: cfg.Nodes, Alpha: 0.33, Beta: 0.25, EnsureConnected: true,
	}, rng.New(cfg.TopoSeed))
	if err != nil {
		return fmt.Errorf("chaos: topology: %w", err)
	}
	srv, err := server.New(g, cfg.Manager, server.Options{QueueDepth: cfg.QueueDepth})
	if err != nil {
		return fmt.Errorf("chaos: server: %w", err)
	}
	shutdownStarted := make(chan struct{})
	var closeOnce sync.Once
	shutdown := func() {
		closeOnce.Do(func() { close(shutdownStarted) })
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}
	// Always drain the loop on exit so no goroutine leaks into the caller.
	defer shutdown()

	var (
		done    atomic.Int64
		firstMu sync.Mutex
		first   error
	)
	report := func(err error) {
		firstMu.Lock()
		if first == nil {
			first = err
		}
		firstMu.Unlock()
	}
	tolerable := func(err error) bool {
		return err == nil ||
			errors.Is(err, manager.ErrRejected) ||
			errors.Is(err, server.ErrNotFound) ||
			errors.Is(err, server.ErrConflict) ||
			errors.Is(err, server.ErrServerClosed) ||
			errors.Is(err, context.DeadlineExceeded) ||
			errors.Is(err, context.Canceled)
	}

	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			src := rng.New(cfg.Seed ^ (uint64(w)+1)*0xbf58476d1ce4e5b9)
			var mine []channel.ConnID // connections this worker admitted
			ctx := context.Background()
			for op := 0; op < cfg.Ops; op++ {
				var err error
				switch draw := src.Float64(); {
				case draw < 0.45:
					var rep *manager.ArrivalReport
					a := src.Intn(cfg.Nodes)
					b := src.Intn(cfg.Nodes - 1)
					if b >= a {
						b++
					}
					rep, err = srv.Establish(ctx, topology.NodeID(a), topology.NodeID(b), cfg.Spec)
					if err == nil {
						mine = append(mine, rep.Conn.ID)
					}
				case draw < 0.70 && len(mine) > 0:
					i := src.Intn(len(mine))
					_, err = srv.Terminate(ctx, mine[i])
					mine[i] = mine[len(mine)-1]
					mine = mine[:len(mine)-1]
				case draw < 0.80:
					_, err = srv.FailLink(ctx, topology.LinkID(src.Intn(g.NumLinks())))
				case draw < 0.88:
					_, err = srv.RepairLink(ctx, topology.LinkID(src.Intn(g.NumLinks())))
				case draw < 0.95:
					_, err = srv.Snapshot(ctx)
				default:
					err = srv.CheckInvariants(ctx)
				}
				if !tolerable(err) {
					report(fmt.Errorf("chaos: worker %d op %d: %w", w, op, err))
					return
				}
				done.Add(1)
				if errors.Is(err, server.ErrServerClosed) {
					return
				}
			}
		}(w)
	}

	if cfg.ShutdownAfter > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for done.Load() < cfg.ShutdownAfter {
				time.Sleep(time.Millisecond)
			}
			shutdown()
		}()
	}
	wg.Wait()

	if first != nil {
		return first
	}
	// Post-burst audit, unless Shutdown already closed the loop.
	select {
	case <-shutdownStarted:
	default:
		if err := srv.CheckInvariants(context.Background()); err != nil {
			return fmt.Errorf("chaos: final audit: %w", err)
		}
		if deg, reason := srv.Degraded(); deg {
			return fmt.Errorf("chaos: server degraded without injected fault: %s", reason)
		}
	}
	return nil
}
