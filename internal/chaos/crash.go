// Crash-restart chaos: the durability analogue of the panic-free episodes
// in chaos.go. An episode drives a journaled event stream, "kills" the
// process at a configured point (the journal is abandoned without Close,
// optionally with torn garbage appended, exactly what a mid-write crash
// leaves), restarts from disk via server.Rebuild, and asserts the replayed
// manager is bit-identical to the never-crashed reference — same alive set,
// same per-link reservations, same level histogram, same counters. The
// episode then keeps driving BOTH managers through the remaining events to
// prove the restored one is fully functional, not just statically equal.
package chaos

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"drqos/internal/channel"
	"drqos/internal/journal"
	"drqos/internal/manager"
	"drqos/internal/qos"
	"drqos/internal/rng"
	"drqos/internal/server"
	"drqos/internal/topology"
)

// CrashConfig seeds one crash-restart episode. Zero values select the same
// defaults as Config; Dir must name an empty (or absent) directory.
type CrashConfig struct {
	Seed     uint64
	Events   int
	Nodes    int
	TopoSeed uint64
	Manager  manager.Config
	Spec     qos.ElasticSpec

	// Dir is the journal data directory (required; the episode owns it).
	Dir string
	// CrashAfter is how many events run before the crash (default
	// Events/2; the rest run after the restart against both managers).
	CrashAfter int
	// SnapshotEvery is the journal snapshot cadence in journaled events
	// (default 16; negative disables snapshots so replay covers the full
	// log).
	SnapshotEvery int
	// TornTailBytes, when positive, appends that much partial-frame garbage
	// to the active segment after the crash — the torn record a mid-write
	// power cut leaves. Recovery must discard it silently.
	TornTailBytes int
	// FsyncEvery is the journal fsync policy (default -1: a process crash
	// keeps the page cache, and episodes should not grind the disk).
	FsyncEvery int
	// GroupCommit opens the journal in group-commit mode and makes the
	// crash land inside the commit window: after the acknowledged prefix, a
	// burst of UnackedWindow appends is framed into the active segment but
	// the "power dies" before the batch fsync completes — the segment is
	// truncated back to its pre-burst size. Recovery must see exactly the
	// acknowledged prefix; the unacknowledged burst is legitimately lost.
	GroupCommit bool
	// UnackedWindow is the number of in-flight, never-acknowledged appends
	// lost in the crash when GroupCommit is set (default 6).
	UnackedWindow int
}

// CrashResult summarizes a clean episode.
type CrashResult struct {
	// Generated counts events drawn; Journaled counts those that passed
	// pre-validation and were written to the log.
	Generated, Journaled int
	// SnapshotSeq is the newest durable snapshot at restart (0 = replay
	// covered the whole log).
	SnapshotSeq uint64
	// TornBytes is what recovery discarded from the tail.
	TornBytes int64
	// UnackedLost counts group-commit-window appends that were framed but
	// never acknowledged and so legitimately vanished in the crash.
	UnackedLost int
	// Fingerprint is the common state digest of reference and restored
	// managers at the end of the episode.
	Fingerprint string
}

// journalable pre-validates ev against m exactly like the admission server
// does before journaling: no-op terminates/faults/repairs are skipped (the
// server answers 404/409 without touching the journal), so every journaled
// record is strictly replayable.
func journalable(m *manager.Manager, ev Event, spec qos.ElasticSpec) (journal.Event, bool) {
	switch ev.Kind {
	case KindEstablish:
		return journal.Event{
			Kind: journal.KindEstablish,
			Src:  int32(ev.Src), Dst: int32(ev.Dst),
			MinKbps: int64(spec.Min), MaxKbps: int64(spec.Max),
			IncKbps: int64(spec.Increment), Utility: spec.Utility,
		}, true
	case KindTerminate:
		if c := m.Conn(channel.ConnID(ev.Conn)); c == nil || !c.Alive() {
			return journal.Event{}, false
		}
		return journal.Event{Kind: journal.KindTerminate, Conn: ev.Conn}, true
	case KindFailLink:
		if ev.Link < 0 || ev.Link >= m.Graph().NumLinks() || m.Network().Failed(topology.LinkID(ev.Link)) {
			return journal.Event{}, false
		}
		return journal.Event{Kind: journal.KindFailLink, Link: int32(ev.Link)}, true
	case KindRepairLink:
		if ev.Link < 0 || ev.Link >= m.Graph().NumLinks() || !m.Network().Failed(topology.LinkID(ev.Link)) {
			return journal.Event{}, false
		}
		return journal.Event{Kind: journal.KindRepairLink, Link: int32(ev.Link)}, true
	default:
		return journal.Event{}, false
	}
}

// snapshotNow mirrors the server's snapshot write: exported state body plus
// the aggregate cross-check header.
func snapshotNow(jnl *journal.Journal, m *manager.Manager) error {
	st := m.ExportState()
	hdr := journal.SnapshotHeader{
		Alive:          m.AliveCount(),
		Unprotected:    m.UnprotectedCount(),
		LevelHistogram: m.LevelHistogram(nil),
		Requests:       m.Requests(),
		Rejects:        m.Rejects(),
	}
	for _, l := range st.FailedLinks {
		hdr.FailedLinks = append(hdr.FailedLinks, int(l))
	}
	return jnl.WriteSnapshot(hdr, st.MarshalBinary())
}

// activeSegment resolves the newest wal segment (zero-padded names sort
// lexically) and its current size.
func activeSegment(dir string) (string, int64, error) {
	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil || len(segs) == 0 {
		return "", 0, fmt.Errorf("chaos: no active wal segment (%v)", err)
	}
	last := segs[len(segs)-1]
	fi, err := os.Stat(last)
	if err != nil {
		return "", 0, err
	}
	return last, fi.Size(), nil
}

// tearTail appends a partial frame to the newest wal segment: a plausible
// length prefix whose payload never finished writing.
func tearTail(dir string, n int) error {
	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil || len(segs) == 0 {
		return fmt.Errorf("chaos: no wal segment to tear (%v)", err)
	}
	last := segs[len(segs)-1]
	f, err := os.OpenFile(last, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	garbage := make([]byte, n)
	// Declared length far beyond what follows: the classic torn record.
	garbage[0] = 0xff
	for i := 1; i < n; i++ {
		garbage[i] = byte(i * 37)
	}
	_, err = f.Write(garbage)
	return err
}

// RunCrashRestart executes one seeded crash-restart episode. A nil error
// means the restored manager matched the reference exactly and both
// finished the episode audit-clean.
func RunCrashRestart(cfg CrashConfig) (*CrashResult, error) {
	base := Config{
		Seed: cfg.Seed, Events: cfg.Events, Nodes: cfg.Nodes,
		TopoSeed: cfg.TopoSeed, Manager: cfg.Manager, Spec: cfg.Spec,
	}.withDefaults()
	if cfg.Dir == "" {
		return nil, errors.New("chaos: CrashConfig.Dir is required")
	}
	if cfg.CrashAfter <= 0 || cfg.CrashAfter > base.Events {
		cfg.CrashAfter = base.Events / 2
	}
	if cfg.SnapshotEvery == 0 {
		cfg.SnapshotEvery = 16
	}
	if cfg.FsyncEvery == 0 {
		cfg.FsyncEvery = -1
	}
	if cfg.GroupCommit && cfg.UnackedWindow <= 0 {
		cfg.UnackedWindow = 6
	}

	ref, err := newRunner(base)
	if err != nil {
		return nil, err
	}
	jnl, rec0, err := journal.Open(cfg.Dir, journal.Options{
		FsyncEvery:         cfg.FsyncEvery,
		GroupCommit:        cfg.GroupCommit,
		GroupCommitMaxWait: 500 * time.Microsecond,
	})
	if err != nil {
		return nil, err
	}
	if rec0.LastSeq != 0 {
		jnl.Close()
		return nil, fmt.Errorf("chaos: data dir %s not empty (seq %d)", cfg.Dir, rec0.LastSeq)
	}

	res := &CrashResult{}
	src := rng.New(base.Seed)
	sinceSnap := 0
	for i := 0; i < cfg.CrashAfter; i++ {
		ev := ref.nextEvent(src)
		res.Generated++
		jev, ok := journalable(ref.m, ev, base.Spec)
		if !ok {
			continue
		}
		if _, err := jnl.Append(jev); err != nil {
			jnl.Close()
			return nil, err
		}
		res.Journaled++
		if err := ref.step(ev); err != nil {
			jnl.Close()
			return nil, fmt.Errorf("chaos: pre-crash event %d (%s): %w", i, ev, err)
		}
		sinceSnap++
		if cfg.SnapshotEvery > 0 && sinceSnap >= cfg.SnapshotEvery {
			if err := snapshotNow(jnl, ref.m); err != nil {
				jnl.Close()
				return nil, err
			}
			sinceSnap = 0
		}
	}

	// Crash: abandon the journal without Close (the OS page cache keeps the
	// un-synced writes, exactly like kill -9), optionally tear the tail.
	if cfg.GroupCommit {
		// Land the crash inside the group-commit window. Every pre-crash
		// Append above was acknowledged (Append waits for the batch fsync),
		// so the acknowledged prefix ends exactly at LastSeq here. Then a
		// burst of establishes is framed into the active segment with
		// AppendAsync — no caller ever waited for durability — and the power
		// dies before the committer's fsync: Abandon stops the committer
		// without syncing and the segment is truncated back to its pre-burst
		// size, losing the batch deterministically whatever the background
		// committer managed first. The burst comes from a separate rng stream
		// so the acknowledged prefix is identical with or without the window,
		// and it is never applied to the reference manager.
		ackedSeq := jnl.LastSeq()
		if ackedSeq != uint64(res.Journaled) {
			jnl.Abandon()
			return nil, fmt.Errorf("chaos: acked seq %d, journaled %d events", ackedSeq, res.Journaled)
		}
		segPath, ackedSize, err := activeSegment(cfg.Dir)
		if err != nil {
			jnl.Abandon()
			return nil, err
		}
		nodes := ref.m.Graph().NumNodes()
		wsrc := rng.New(base.Seed ^ 0x9e3779b97f4a7c15)
		for i := 0; i < cfg.UnackedWindow; i++ {
			a := wsrc.Intn(nodes)
			b := wsrc.Intn(nodes - 1)
			if b >= a {
				b++
			}
			jev := journal.Event{
				Kind: journal.KindEstablish,
				Src:  int32(a), Dst: int32(b),
				MinKbps: int64(base.Spec.Min), MaxKbps: int64(base.Spec.Max),
				IncKbps: int64(base.Spec.Increment), Utility: base.Spec.Utility,
			}
			if _, err := jnl.AppendAsync(jev); err != nil {
				jnl.Abandon()
				return nil, fmt.Errorf("chaos: unacked window append: %w", err)
			}
			res.UnackedLost++
		}
		if err := jnl.Abandon(); err != nil {
			return nil, fmt.Errorf("chaos: abandon journal: %w", err)
		}
		if err := os.Truncate(segPath, ackedSize); err != nil {
			return nil, fmt.Errorf("chaos: lose unsynced batch: %w", err)
		}
	}
	if cfg.TornTailBytes > 0 {
		if err := tearTail(cfg.Dir, cfg.TornTailBytes); err != nil {
			return nil, err
		}
	}

	// Restart from disk.
	jnl2, rec, err := journal.Open(cfg.Dir, journal.Options{FsyncEvery: cfg.FsyncEvery})
	if err != nil {
		return nil, fmt.Errorf("chaos: reopen after crash: %w", err)
	}
	defer jnl2.Close()
	res.SnapshotSeq = rec.SnapshotSeq
	res.TornBytes = rec.TornBytes
	if cfg.TornTailBytes > 0 && rec.TornBytes == 0 {
		return nil, errors.New("chaos: torn tail was injected but not detected")
	}
	if rec.LastSeq != uint64(res.Journaled) {
		return nil, fmt.Errorf("chaos: recovered seq %d, journaled %d events", rec.LastSeq, res.Journaled)
	}
	restored, err := server.Rebuild(ref.m.Graph(), ref.m.Config(), rec)
	if err != nil {
		return nil, fmt.Errorf("chaos: rebuild after crash: %w", err)
	}
	if err := CompareManagers(ref.m, restored); err != nil {
		return nil, fmt.Errorf("chaos: restored state diverges from never-crashed reference: %w", err)
	}

	// Post-restart: the same remaining events drive both managers; they
	// must stay in lockstep. Pre-validation consults the reference, but the
	// managers are identical so validity agrees.
	rest := &runner{cfg: base, m: restored}
	for i := cfg.CrashAfter; i < base.Events; i++ {
		ev := ref.nextEvent(src)
		res.Generated++
		if _, ok := journalable(ref.m, ev, base.Spec); !ok {
			continue
		}
		if err := ref.step(ev); err != nil {
			return nil, fmt.Errorf("chaos: post-crash event %d (%s) on reference: %w", i, ev, err)
		}
		if err := rest.step(ev); err != nil {
			return nil, fmt.Errorf("chaos: post-crash event %d (%s) on restored: %w", i, ev, err)
		}
	}
	if err := CompareManagers(ref.m, restored); err != nil {
		return nil, fmt.Errorf("chaos: managers diverged after post-crash events: %w", err)
	}
	res.Fingerprint = ref.m.ExportState().Fingerprint()
	return res, nil
}

// CompareManagers checks two managers for observable state equality:
// population and counters, per-connection levels and routes, per-directed-
// link ledger aggregates, and finally the canonical state fingerprint. The
// first difference is reported with enough context to debug it.
func CompareManagers(want, got *manager.Manager) error {
	if w, g := want.AliveCount(), got.AliveCount(); w != g {
		return fmt.Errorf("alive count %d, want %d", g, w)
	}
	if want.Requests() != got.Requests() || want.Rejects() != got.Rejects() {
		return fmt.Errorf("counters %d/%d, want %d/%d",
			got.Requests(), got.Rejects(), want.Requests(), want.Rejects())
	}
	wh, gh := want.LevelHistogram(nil), got.LevelHistogram(nil)
	if len(wh) != len(gh) {
		return fmt.Errorf("level histogram %v, want %v", gh, wh)
	}
	for i := range wh {
		if wh[i] != gh[i] {
			return fmt.Errorf("level histogram %v, want %v", gh, wh)
		}
	}
	wantIDs, gotIDs := want.AliveIDs(), got.AliveIDs()
	for i, id := range wantIDs {
		if gotIDs[i] != id {
			return fmt.Errorf("alive[%d] = %d, want %d", i, gotIDs[i], id)
		}
		wc, gc := want.Conn(id), got.Conn(id)
		if wc.Level != gc.Level {
			return fmt.Errorf("conn %d level %d, want %d", id, gc.Level, wc.Level)
		}
		if wc.State() != gc.State() {
			return fmt.Errorf("conn %d state %v, want %v", id, gc.State(), wc.State())
		}
		if !wc.Primary.Equal(gc.Primary) {
			return fmt.Errorf("conn %d primary %v, want %v", id, gc.Primary, wc.Primary)
		}
		if wc.HasBackup != gc.HasBackup {
			return fmt.Errorf("conn %d HasBackup %v, want %v", id, gc.HasBackup, wc.HasBackup)
		}
		if wc.HasBackup && !wc.Backup.Equal(gc.Backup) {
			return fmt.Errorf("conn %d backup %v, want %v", id, gc.Backup, wc.Backup)
		}
	}
	g := want.Graph()
	for d := 0; d < g.NumDirLinks(); d++ {
		dd := topology.DirLinkID(d)
		if w, got2 := want.Network().GrantSum(dd), got.Network().GrantSum(dd); w != got2 {
			return fmt.Errorf("dir link %d grant sum %v, want %v", d, got2, w)
		}
		if w, got2 := want.Network().MinSum(dd), got.Network().MinSum(dd); w != got2 {
			return fmt.Errorf("dir link %d min sum %v, want %v", d, got2, w)
		}
		if w, got2 := want.Network().Spare(dd), got.Network().Spare(dd); w != got2 {
			return fmt.Errorf("dir link %d spare %v, want %v", d, got2, w)
		}
	}
	for l := 0; l < g.NumLinks(); l++ {
		ll := topology.LinkID(l)
		if w, got2 := want.Network().Failed(ll), got.Network().Failed(ll); w != got2 {
			return fmt.Errorf("link %d failed=%v, want %v", l, got2, w)
		}
	}
	if w, got2 := want.ExportState().Fingerprint(), got.ExportState().Fingerprint(); w != got2 {
		return fmt.Errorf("state fingerprint %s, want %s", got2, w)
	}
	return nil
}
