package chaos

import "testing"

// TestRunPartition runs one full partition episode: lease-fenced replica
// pair under a seeded network fault plus a sharded plane with a
// partitioned 2PC participant.
func TestRunPartition(t *testing.T) {
	res, err := RunPartition(PartitionConfig{Seed: 1, Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if res.AckedPrePartition == 0 || res.CrossTimeouts == 0 {
		t.Fatalf("degenerate episode: %+v", res)
	}
	t.Logf("mode=%s acked=%d fence=%s promotion=%s | shard mode=%s victim=%d timeouts=%d fast_fail=%s pending=%d",
		res.Mode, res.AckedPrePartition, res.FenceLatency, res.PromotionLatency,
		res.ShardMode, res.Victim, res.CrossTimeouts, res.FastFail, res.PendingPeak)
}

// TestRunPartitionShapes sweeps seeds covering every partition shape:
// symmetric, request-drop and response-drop on the replica pair, crossed
// with request- and response-drop on the 2PC victim.
func TestRunPartitionShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("shape sweep is not short")
	}
	seen := map[string]bool{}
	for seed := uint64(2); seed <= 7; seed++ {
		res, err := RunPartition(PartitionConfig{Seed: seed, Dir: t.TempDir()})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		seen[res.Mode] = true
		seen["shard-"+res.ShardMode] = true
		t.Logf("seed %d: mode=%s shard=%s promotion=%s", seed, res.Mode, res.ShardMode, res.PromotionLatency)
	}
	for _, shape := range []string{"symmetric", "request-drop", "response-drop", "shard-request-drop", "shard-response-drop"} {
		if !seen[shape] {
			t.Fatalf("seed sweep never exercised shape %q (saw %v)", shape, seen)
		}
	}
}
