// Package chaos is a deterministic fault-injection harness for the
// DR-connection manager and the admission server wrapping it.
//
// A seeded episode drives a random interleaving of Establish / Terminate /
// FailLink / RepairLink events against a fresh manager.Manager and runs the
// full invariant audit (Manager.CheckInvariants) after every single event,
// so the exact event that corrupts the ledger is caught red-handed, not
// thousands of events later. Identical configs replay identical episodes —
// the trace is a list of concrete events, so a failure shrinks (Shrink) to
// a minimal reproducer and prints (FormatTrace) as a Go literal ready to
// paste into a regression test.
//
// RunServer drives the same op mix through server.Server from many client
// goroutines, with an optional mid-burst Shutdown, to expose actor-loop
// races under the race detector; see server.go.
package chaos

import (
	"errors"
	"fmt"

	"drqos/internal/channel"
	"drqos/internal/manager"
	"drqos/internal/qos"
	"drqos/internal/rng"
	"drqos/internal/topology"
)

// Kind enumerates the event types a chaos trace can contain.
type Kind int

// The four manager events. Shutdown interleavings are exercised by
// RunServer, not by manager traces (a single-threaded manager has no
// shutdown).
const (
	KindEstablish Kind = iota
	KindTerminate
	KindFailLink
	KindRepairLink
)

func (k Kind) String() string {
	switch k {
	case KindEstablish:
		return "establish"
	case KindTerminate:
		return "terminate"
	case KindFailLink:
		return "fail_link"
	case KindRepairLink:
		return "repair_link"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Event is one replayable step of a chaos trace. Fields irrelevant to the
// kind are zero. Events reference concrete IDs (not random draws), so a
// recorded trace replays against a fresh manager without the generator.
type Event struct {
	Kind     Kind
	Src, Dst int   // Establish endpoints
	Conn     int64 // Terminate target
	Link     int   // FailLink / RepairLink target
}

func (e Event) String() string {
	switch e.Kind {
	case KindEstablish:
		return fmt.Sprintf("establish %d->%d", e.Src, e.Dst)
	case KindTerminate:
		return fmt.Sprintf("terminate conn %d", e.Conn)
	case KindFailLink:
		return fmt.Sprintf("fail link %d", e.Link)
	case KindRepairLink:
		return fmt.Sprintf("repair link %d", e.Link)
	default:
		return e.Kind.String()
	}
}

// Config seeds one episode. The zero value of every field selects a
// sensible default, so Config{Seed: n} is a complete episode spec.
type Config struct {
	// Seed drives the event mix. Distinct seeds explore distinct
	// interleavings.
	Seed uint64
	// Events is the episode length (default 200).
	Events int
	// Nodes is the Waxman topology size (default 24).
	Nodes int
	// TopoSeed seeds topology generation (default: derived from Seed, so
	// different episodes also explore different graphs).
	TopoSeed uint64
	// Manager configures admission; a zero Capacity selects 10_000 Kbps.
	// Low capacity relative to the spec is deliberate: contention is what
	// exercises squeeze/redistribute/failover.
	Manager manager.Config
	// Spec is the elastic QoS of every generated connection (default
	// qos.DefaultSpec, the paper's 100..500 Kb/s, Δ=50).
	Spec qos.ElasticSpec
	// Hook, when non-nil, runs after every applied event with the live
	// manager. Fault-injection tests use it to deliberately corrupt state
	// and prove the audit, the degraded mode, and the shrinker catch it.
	Hook func(ev Event, m *manager.Manager)
}

func (c Config) withDefaults() Config {
	if c.Events <= 0 {
		c.Events = 200
	}
	if c.Nodes <= 0 {
		c.Nodes = 24
	}
	if c.TopoSeed == 0 {
		c.TopoSeed = c.Seed + 0x9e3779b97f4a7c15
	}
	if c.Manager.Capacity <= 0 {
		c.Manager.Capacity = 10_000
	}
	if c.Spec == (qos.ElasticSpec{}) {
		c.Spec = qos.DefaultSpec()
	}
	return c
}

// Failure describes an episode that broke an invariant (or returned an
// unexpected event error).
type Failure struct {
	// Index is the position of the failing event within Trace.
	Index int
	// Trace is the event sequence up to and including the failing event;
	// replaying it under the same Config reproduces Err.
	Trace []Event
	// Err is the audit failure or event error.
	Err error
}

func (f *Failure) Error() string {
	return fmt.Sprintf("chaos: event %d (%s): %v", f.Index, f.Trace[f.Index], f.Err)
}

// Unwrap exposes the underlying violation to errors.Is / errors.As.
func (f *Failure) Unwrap() error { return f.Err }

// runner executes events against one manager instance.
type runner struct {
	cfg Config
	m   *manager.Manager
}

func newRunner(cfg Config) (*runner, error) {
	g, err := topology.Waxman(topology.WaxmanConfig{
		Nodes: cfg.Nodes, Alpha: 0.33, Beta: 0.25, EnsureConnected: true,
	}, rng.New(cfg.TopoSeed))
	if err != nil {
		return nil, fmt.Errorf("chaos: topology: %w", err)
	}
	m, err := manager.New(g, cfg.Manager)
	if err != nil {
		return nil, fmt.Errorf("chaos: manager: %w", err)
	}
	return &runner{cfg: cfg, m: m}, nil
}

// apply runs one event. Usage errors — admission rejections, unknown
// connections, double faults — are expected parts of a random interleaving
// (and of a shrunk trace, where the establishing event may have been
// deleted) and are swallowed; anything else, in particular an
// InvariantViolation, is returned.
func (r *runner) apply(ev Event) error {
	switch ev.Kind {
	case KindEstablish:
		_, err := r.m.Establish(topology.NodeID(ev.Src), topology.NodeID(ev.Dst), r.cfg.Spec)
		if err != nil && !errors.Is(err, manager.ErrRejected) {
			return err
		}
	case KindTerminate:
		c := r.m.Conn(channel.ConnID(ev.Conn))
		if c == nil || !c.Alive() {
			return nil
		}
		if _, err := r.m.Terminate(channel.ConnID(ev.Conn)); err != nil {
			return err
		}
	case KindFailLink:
		if ev.Link < 0 || ev.Link >= r.m.Graph().NumLinks() || r.m.Network().Failed(topology.LinkID(ev.Link)) {
			return nil
		}
		if _, err := r.m.FailLink(topology.LinkID(ev.Link)); err != nil {
			return err
		}
	case KindRepairLink:
		if ev.Link < 0 || ev.Link >= r.m.Graph().NumLinks() || !r.m.Network().Failed(topology.LinkID(ev.Link)) {
			return nil
		}
		if _, err := r.m.RepairLink(topology.LinkID(ev.Link)); err != nil {
			return err
		}
	default:
		return fmt.Errorf("chaos: unknown event kind %d", int(ev.Kind))
	}
	return nil
}

// step applies one event, runs the hook, and audits the full ledger.
func (r *runner) step(ev Event) error {
	if err := r.apply(ev); err != nil {
		return err
	}
	if r.cfg.Hook != nil {
		r.cfg.Hook(ev, r.m)
	}
	return r.m.CheckInvariants()
}

// nextEvent draws one event from the configured mix: mostly arrivals and
// terminations, with a steady trickle of link faults and repairs so the
// failover and reprotection paths stay hot.
func (r *runner) nextEvent(src *rng.Source) Event {
	nodes := r.m.Graph().NumNodes()
	links := r.m.Graph().NumLinks()
	draw := src.Float64()
	switch {
	case draw < 0.30 && r.m.AliveCount() > 0:
		id := r.m.AliveIDAt(src.Intn(r.m.AliveCount()))
		return Event{Kind: KindTerminate, Conn: int64(id)}
	case draw >= 0.88 && draw < 0.96:
		if l, ok := r.randomLink(src, links, false); ok {
			return Event{Kind: KindFailLink, Link: l}
		}
	case draw >= 0.96:
		if l, ok := r.randomLink(src, links, true); ok {
			return Event{Kind: KindRepairLink, Link: l}
		}
	}
	a := src.Intn(nodes)
	b := src.Intn(nodes - 1)
	if b >= a {
		b++
	}
	return Event{Kind: KindEstablish, Src: a, Dst: b}
}

// randomLink draws a uniformly random link in the wanted failure state.
func (r *runner) randomLink(src *rng.Source, links int, failed bool) (int, bool) {
	var pool []int
	for l := 0; l < links; l++ {
		if r.m.Network().Failed(topology.LinkID(l)) == failed {
			pool = append(pool, l)
		}
	}
	if len(pool) == 0 {
		return 0, false
	}
	return pool[src.Intn(len(pool))], true
}

// Run generates and executes one seeded episode, auditing after every
// event. It returns the full generated trace; fail is non-nil when an event
// or audit broke an invariant (shrink it with Shrink). A non-nil err
// reports setup problems only (bad topology or manager config).
func Run(cfg Config) (trace []Event, fail *Failure, err error) {
	cfg = cfg.withDefaults()
	r, err := newRunner(cfg)
	if err != nil {
		return nil, nil, err
	}
	src := rng.New(cfg.Seed)
	for i := 0; i < cfg.Events; i++ {
		ev := r.nextEvent(src)
		trace = append(trace, ev)
		if err := r.step(ev); err != nil {
			return trace, &Failure{
				Index: len(trace) - 1,
				Trace: append([]Event(nil), trace...),
				Err:   err,
			}, nil
		}
	}
	return trace, nil, nil
}

// Replay applies a recorded trace against a fresh manager built from cfg,
// auditing after every event exactly like Run. It returns nil when the
// trace completes cleanly; the error reports setup problems only.
func Replay(cfg Config, trace []Event) (*Failure, error) {
	cfg = cfg.withDefaults()
	r, err := newRunner(cfg)
	if err != nil {
		return nil, err
	}
	for i, ev := range trace {
		if err := r.step(ev); err != nil {
			return &Failure{
				Index: i,
				Trace: append([]Event(nil), trace[:i+1]...),
				Err:   err,
			}, nil
		}
	}
	return nil, nil
}
