package chaos

import (
	"fmt"
	"strings"
)

// Shrink reduces a failing trace to a locally-minimal reproducer using
// ddmin-style chunk halving: repeatedly delete windows of events and keep
// any deletion after which Replay still fails. The oracle is "Replay
// reports a failure" — not "the same failure" — so the shrunk trace may
// surface an earlier manifestation of the same corruption, which is
// exactly what a reproducer wants. Because apply swallows usage errors,
// deleting an event another event depends on (say, the establish before a
// terminate) degrades that later event to a no-op instead of aborting the
// replay, which is what lets the window deletion be so aggressive.
//
// Shrink returns the minimized trace and the failure it reproduces. If the
// input trace does not fail on replay (flaky setup, wrong config), it
// returns (nil, nil, error).
func Shrink(cfg Config, trace []Event) ([]Event, *Failure, error) {
	fail, err := Replay(cfg, trace)
	if err != nil {
		return nil, nil, err
	}
	if fail == nil {
		return nil, nil, fmt.Errorf("chaos: trace does not fail on replay; nothing to shrink")
	}
	// The failure index bounds the relevant prefix: events after it were
	// never executed.
	cur := append([]Event(nil), trace[:fail.Index+1]...)

	for chunk := (len(cur) + 1) / 2; chunk >= 1; chunk /= 2 {
		for start := 0; start < len(cur); {
			end := start + chunk
			if end > len(cur) {
				end = len(cur)
			}
			cand := make([]Event, 0, len(cur)-(end-start))
			cand = append(cand, cur[:start]...)
			cand = append(cand, cur[end:]...)
			if len(cand) == 0 {
				start += chunk
				continue
			}
			f, err := Replay(cfg, cand)
			if err != nil {
				return nil, nil, err
			}
			if f != nil {
				// Deletion kept the failure: adopt the candidate and retry
				// the same window position (new events slid into it).
				cur = cand
				fail = f
				continue
			}
			start += chunk
		}
	}
	return cur, fail, nil
}

// FormatTrace renders a trace as a Go composite literal, ready to paste
// into a regression test and feed back through Replay.
func FormatTrace(trace []Event) string {
	var b strings.Builder
	b.WriteString("[]chaos.Event{\n")
	for _, ev := range trace {
		b.WriteString("\t{Kind: ")
		switch ev.Kind {
		case KindEstablish:
			fmt.Fprintf(&b, "chaos.KindEstablish, Src: %d, Dst: %d", ev.Src, ev.Dst)
		case KindTerminate:
			fmt.Fprintf(&b, "chaos.KindTerminate, Conn: %d", ev.Conn)
		case KindFailLink:
			fmt.Fprintf(&b, "chaos.KindFailLink, Link: %d", ev.Link)
		case KindRepairLink:
			fmt.Fprintf(&b, "chaos.KindRepairLink, Link: %d", ev.Link)
		default:
			fmt.Fprintf(&b, "chaos.Kind(%d)", int(ev.Kind))
		}
		b.WriteString("},\n")
	}
	b.WriteString("}")
	return b.String()
}
