package chaos

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"drqos/internal/manager"
)

// TestEpisodesClean runs a spread of seeded episodes and expects the
// audited manager to survive every interleaving. This is the standing
// regression net: any future ledger bug that random traffic can reach
// shows up here as a concrete, shrinkable trace.
func TestEpisodesClean(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		trace, fail, err := Run(Config{Seed: seed, Events: 150})
		if err != nil {
			t.Fatalf("seed %d: setup: %v", seed, err)
		}
		if fail != nil {
			min, mf, serr := Shrink(Config{Seed: seed, Events: 150}, trace)
			if serr != nil {
				t.Fatalf("seed %d: %v (shrink failed: %v)", seed, fail, serr)
			}
			t.Fatalf("seed %d: %v\nshrunk reproducer (%d events, %v):\n%s",
				seed, fail, len(min), mf.Err, FormatTrace(min))
		}
	}
}

// TestDeterminism: identical configs must generate identical traces, or
// recorded reproducers are worthless.
func TestDeterminism(t *testing.T) {
	cfg := Config{Seed: 42, Events: 120}
	t1, f1, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t2, f2, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(t1, t2) {
		t.Fatalf("same seed produced different traces:\n%s\nvs\n%s", FormatTrace(t1), FormatTrace(t2))
	}
	if (f1 == nil) != (f2 == nil) {
		t.Fatalf("same seed disagreed on failure: %v vs %v", f1, f2)
	}
}

// TestReplayToleratesUsageErrors: a replayed trace may reference
// connections and link states that no longer exist after shrinking;
// those events must degrade to no-ops, not abort the replay.
func TestReplayToleratesUsageErrors(t *testing.T) {
	fail, err := Replay(Config{Seed: 1}, []Event{
		{Kind: KindTerminate, Conn: 999}, // never established
		{Kind: KindRepairLink, Link: 0},  // not failed
		{Kind: KindFailLink, Link: -1},   // out of range
		{Kind: KindFailLink, Link: 1 << 20},
		{Kind: KindEstablish, Src: 0, Dst: 1},
		{Kind: KindFailLink, Link: 0},
		{Kind: KindFailLink, Link: 0}, // double fault
	})
	if err != nil {
		t.Fatal(err)
	}
	if fail != nil {
		t.Fatalf("usage-error trace should replay clean, got: %v", fail)
	}
}

// TestShrinkInjectedBug plants a deliberate corruption (the aggregate
// bandwidth ledger drifts by one on every link failure) and requires the
// harness to (a) catch it at the offending event, and (b) shrink the
// trace to a tiny reproducer — the ISSUE acceptance bound is ≤10 events.
func TestShrinkInjectedBug(t *testing.T) {
	cfg := Config{
		Seed:   7,
		Events: 200,
		Hook: func(ev Event, m *manager.Manager) {
			if ev.Kind == KindFailLink {
				m.CorruptAggregatesForTesting()
			}
		},
	}
	trace, fail, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if fail == nil {
		t.Fatal("injected corruption was not detected in 200 events")
	}
	if !manager.IsInvariantViolation(fail.Err) {
		t.Fatalf("want InvariantViolation, got %v", fail.Err)
	}
	if fail.Trace[fail.Index].Kind != KindFailLink {
		t.Fatalf("violation should surface at the corrupting fail_link event, got %s", fail.Trace[fail.Index])
	}

	min, mf, err := Shrink(cfg, trace)
	if err != nil {
		t.Fatal(err)
	}
	if len(min) > 10 {
		t.Fatalf("shrunk reproducer has %d events, want <= 10:\n%s", len(min), FormatTrace(min))
	}
	if !manager.IsInvariantViolation(mf.Err) {
		t.Fatalf("shrunk failure lost the violation: %v", mf.Err)
	}
	// The minimized trace must itself be a working reproducer.
	again, err := Replay(cfg, min)
	if err != nil {
		t.Fatal(err)
	}
	if again == nil {
		t.Fatal("shrunk trace no longer reproduces the failure")
	}
	t.Logf("shrunk to %d event(s):\n%s", len(min), FormatTrace(min))
}

// TestShrinkRejectsHealthyTrace: shrinking a passing trace is an error,
// not a silent empty result.
func TestShrinkRejectsHealthyTrace(t *testing.T) {
	trace, fail, err := Run(Config{Seed: 3, Events: 50})
	if err != nil {
		t.Fatal(err)
	}
	if fail != nil {
		t.Fatalf("seed 3 unexpectedly failed: %v", fail)
	}
	if _, _, err := Shrink(Config{Seed: 3, Events: 50}, trace); err == nil {
		t.Fatal("Shrink accepted a non-failing trace")
	}
}

// TestFormatTrace checks the Go-literal rendering round-trips the four
// event kinds with their significant fields.
func TestFormatTrace(t *testing.T) {
	got := FormatTrace([]Event{
		{Kind: KindEstablish, Src: 3, Dst: 7},
		{Kind: KindTerminate, Conn: 12},
		{Kind: KindFailLink, Link: 5},
		{Kind: KindRepairLink, Link: 5},
	})
	for _, want := range []string{
		"{Kind: chaos.KindEstablish, Src: 3, Dst: 7},",
		"{Kind: chaos.KindTerminate, Conn: 12},",
		"{Kind: chaos.KindFailLink, Link: 5},",
		"{Kind: chaos.KindRepairLink, Link: 5},",
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("FormatTrace output missing %q:\n%s", want, got)
		}
	}
}

// TestRunServer drives the concurrent server harness, including a
// mid-burst Shutdown racing the workers. Run under -race this is the
// actor-loop torture test.
func TestRunServer(t *testing.T) {
	if err := RunServer(ServerConfig{Seed: 1, Workers: 6, Ops: 60}); err != nil {
		t.Fatalf("steady burst: %v", err)
	}
	if err := RunServer(ServerConfig{Seed: 2, Workers: 6, Ops: 80, ShutdownAfter: 150}); err != nil {
		t.Fatalf("mid-burst shutdown: %v", err)
	}
}

// TestFailureUnwrap: errors.As must reach the InvariantViolation through
// the Failure wrapper, so callers can route on it.
func TestFailureUnwrap(t *testing.T) {
	f := &Failure{
		Index: 0,
		Trace: []Event{{Kind: KindFailLink, Link: 1}},
		Err:   &manager.InvariantViolation{Op: "fail_link", Detail: "synthetic"},
	}
	if !manager.IsInvariantViolation(f) {
		t.Fatal("Failure did not unwrap to InvariantViolation")
	}
	var iv *manager.InvariantViolation
	if !errors.As(f, &iv) {
		t.Fatal("errors.As failed through Failure")
	}
}
