// Partition chaos: the network-fault analogue of the kill-based episodes
// in failover.go and shard.go. Nothing dies here — every process stays up
// and healthy — the NETWORK lies, which is the harder failure mode: a
// partitioned primary keeps running and would happily keep acknowledging
// writes its standby will never see.
//
// One episode drives two drills over seeded netchaos fault injection:
//
// Replica half — a live primary/standby pair with lease fencing on. The
// standby's HTTP client routes through a netchaos transport; the episode
// picks one of three partition shapes from the seed (symmetric, request
// drop — the standby's polls never arrive — or response drop — polls
// arrive and renew the primary's lease, but answers never come back) and
// asserts the split-brain invariants:
//
//   - at most one node ever acknowledges: the old primary's last ack
//     strictly precedes the promoted standby's first, in every shape;
//   - with its polls cut, the old primary stops acking within one lease
//     interval; with only responses cut it stops within the sync timeout
//     (fenced, never falling back to async);
//   - the standby promotes within budget — after quiescing its polls long
//     enough that an asymmetric partition cannot leave both sides acking;
//   - no acknowledged establish is lost: every ack lands on the promoted
//     standby;
//   - after the partition heals, the un-polled ex-primary stays fenced,
//     and both nodes' invariant audits come back clean.
//
// Shard half — a sharded plane whose 2PC phase calls route through a
// second netchaos network. The episode partitions the last participant of
// a known cross-shard route (requests or responses, per seed), drives a
// doomed establish into it, and asserts the timeout machinery:
//
//   - the establish fails within the retry budget (phase timeouts, capped
//     jittered retries, presumed abort) and the unreachable participant's
//     unresolved abort is queued for resolution;
//   - the next establish through the suspected shard fast-fails with
//     ErrShardUnavailable instead of burning another prepare timeout;
//   - after the heal, ResolvePending drains the queue, no shard holds an
//     uncommitted transaction (no leaked reservations), a fresh cross
//     establish succeeds, and every shard's invariant audit is clean.
package chaos

import (
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"time"

	"drqos/internal/journal"
	"drqos/internal/manager"
	"drqos/internal/netchaos"
	"drqos/internal/qos"
	"drqos/internal/replica"
	"drqos/internal/rng"
	"drqos/internal/server"
	"drqos/internal/shard"
	"drqos/internal/topology"
)

// PartitionConfig seeds one network-partition episode.
type PartitionConfig struct {
	Seed     uint64
	Nodes    int    // Waxman topology size for the replica half (default 24)
	TopoSeed uint64 // default: derived from Seed
	Manager  manager.Config
	Spec     qos.ElasticSpec

	// Dir is the episode's data root (required).
	Dir string
	// Burst is the number of acknowledged establishes before the partition
	// (default 24).
	Burst int
	// Lease is the primary's acknowledgment lease (default 100ms).
	Lease time.Duration
	// FailoverTimeout is the standby's detection window (default 300ms;
	// must exceed Lease).
	FailoverTimeout time.Duration
	// SyncTimeout bounds one acknowledgment's wait for standby
	// confirmation (default 300ms); under a lease it fences instead of
	// falling back to async.
	SyncTimeout time.Duration
	// PromotionBudget bounds partition→promoted, including the standby's
	// pre-promotion quiesce (default 2.5s).
	PromotionBudget time.Duration
	// Shards sizes the sharded half (default 4).
	Shards int
	// PrepareTimeout bounds each 2PC phase call (default 100ms).
	PrepareTimeout time.Duration
}

func (c PartitionConfig) withDefaults() PartitionConfig {
	if c.Nodes <= 0 {
		c.Nodes = 24
	}
	if c.TopoSeed == 0 {
		c.TopoSeed = c.Seed + 0x9e3779b97f4a7c15
	}
	if c.Manager.Capacity <= 0 {
		c.Manager.Capacity = 10_000
	}
	if c.Spec == (qos.ElasticSpec{}) {
		c.Spec = qos.DefaultSpec()
	}
	if c.Burst <= 0 {
		c.Burst = 24
	}
	if c.Lease <= 0 {
		c.Lease = 100 * time.Millisecond
	}
	if c.FailoverTimeout <= 0 {
		c.FailoverTimeout = 300 * time.Millisecond
	}
	if c.SyncTimeout <= 0 {
		c.SyncTimeout = 300 * time.Millisecond
	}
	if c.PromotionBudget <= 0 {
		c.PromotionBudget = 2500 * time.Millisecond
	}
	if c.Shards <= 0 {
		c.Shards = 4
	}
	if c.PrepareTimeout <= 0 {
		c.PrepareTimeout = 100 * time.Millisecond
	}
	return c
}

// PartitionResult summarizes a clean episode.
type PartitionResult struct {
	// Mode is the replica-half partition shape: "symmetric",
	// "request-drop" or "response-drop".
	Mode string
	// ShardMode is the shard-half shape: "request-drop" or "response-drop".
	ShardMode string
	// AckedPrePartition counts establishes acknowledged before the cut;
	// all of them survived onto the promoted standby.
	AckedPrePartition int
	// FenceLatency is how long past the cut the old primary's last
	// acknowledgment landed.
	FenceLatency time.Duration
	// PromotionLatency is cut→promoted, including the standby's quiesce.
	PromotionLatency time.Duration
	// Victim is the partitioned shard of the sharded half.
	Victim int
	// CrossTimeouts is the sharded plane's phase-timeout count.
	CrossTimeouts int64
	// FastFail is the latency of the post-timeout establish that
	// ErrShardUnavailable rejected without touching the victim.
	FastFail time.Duration
	// PendingPeak is the resolution-queue depth right after the doomed
	// transaction; it drains to zero after the heal.
	PendingPeak int
}

// bootPartitionNode is bootFailoverNode plus the lease/partition knobs:
// lease fencing, a bounded sync timeout, and a netchaos transport on the
// follower's client.
func bootPartitionNode(g *topology.Graph, cfg PartitionConfig, dir, primaryURL string, failover time.Duration, rt *netchaos.Network, src, dst string) (*failoverNode, error) {
	jnl, rec, err := journal.Open(dir, journal.Options{
		FsyncEvery:         1,
		GroupCommit:        true,
		GroupCommitMaxWait: 500 * time.Microsecond,
	})
	if err != nil {
		return nil, err
	}
	mgr, err := server.Rebuild(g, cfg.Manager, rec)
	if err != nil {
		jnl.Close()
		return nil, err
	}
	n := &failoverNode{jnl: jnl}
	opt := server.Options{
		Journal:       jnl,
		Follower:      primaryURL != "",
		Term:          rec.Term,
		SnapshotEvery: -1,
	}
	opt.WaitReplicated = func(ctx context.Context, seq uint64) error {
		return n.node.WaitReplicated(ctx, seq)
	}
	opt.ReplicaStats = func() *server.ReplicaStats { return n.node.StatsBlock() }
	n.srv, err = server.NewFromManager(g, mgr, opt)
	if err != nil {
		jnl.Close()
		return nil, err
	}
	rcfg := replica.Config{
		PrimaryURL:      primaryURL,
		FailoverTimeout: failover,
		PollWait:        20 * time.Millisecond,
		Lease:           cfg.Lease,
		SyncTimeout:     cfg.SyncTimeout,
	}
	if rt != nil {
		rcfg.Transport = rt.Transport(src, dst, nil)
	}
	n.node = replica.NewNode(n.srv, jnl, rcfg)
	n.http = httptest.NewServer(n.node.FrontHandler(server.NewHandler(n.srv)))
	return n, nil
}

// RunPartition executes one seeded partition episode. A nil error means
// every assertion in the package comment held.
func RunPartition(cfg PartitionConfig) (*PartitionResult, error) {
	cfg = cfg.withDefaults()
	if cfg.Dir == "" {
		return nil, errors.New("chaos: PartitionConfig.Dir is required")
	}
	res := &PartitionResult{}
	if err := runReplicaPartition(cfg, res); err != nil {
		return nil, fmt.Errorf("replica half (%s): %w", res.Mode, err)
	}
	if err := runShardPartition(cfg, res); err != nil {
		return nil, fmt.Errorf("shard half (%s): %w", res.ShardMode, err)
	}
	return res, nil
}

// runReplicaPartition is the lease-fencing half of the episode.
func runReplicaPartition(cfg PartitionConfig, res *PartitionResult) error {
	g, err := topology.Waxman(topology.WaxmanConfig{
		Nodes: cfg.Nodes, Alpha: 0.33, Beta: 0.25, EnsureConnected: true,
	}, rng.New(cfg.TopoSeed))
	if err != nil {
		return err
	}
	for _, sub := range []string{"primary", "standby"} {
		if err := os.MkdirAll(filepath.Join(cfg.Dir, sub), 0o755); err != nil {
			return err
		}
	}
	net := netchaos.New(cfg.Seed ^ 0x5bf03635)

	primary, err := bootPartitionNode(g, cfg, filepath.Join(cfg.Dir, "primary"), "", 0, nil, "", "")
	if err != nil {
		return fmt.Errorf("booting primary: %w", err)
	}
	defer primary.shutdown()
	// All protocol traffic is follower-initiated, so every shape is a rule
	// on the standby→primary edge.
	standby, err := bootPartitionNode(g, cfg, filepath.Join(cfg.Dir, "standby"),
		primary.http.URL, cfg.FailoverTimeout, net, "standby", "primary")
	if err != nil {
		return fmt.Errorf("booting standby: %w", err)
	}
	defer standby.shutdown()
	runDone := make(chan error, 1)
	go func() { runDone <- standby.node.Run(context.Background()) }()

	ctx := context.Background()
	src := rng.New(cfg.Seed)
	pair := func() (topology.NodeID, topology.NodeID) {
		a := src.Intn(cfg.Nodes)
		b := src.Intn(cfg.Nodes - 1)
		if b >= a {
			b++
		}
		return topology.NodeID(a), topology.NodeID(b)
	}

	// Pre-partition burst: every ack is lease-gated on the standby's
	// confirming poll, so "acked" means "replicated".
	var (
		mu    sync.Mutex
		acked []int64
	)
	for tries := 0; len(acked) < cfg.Burst; tries++ {
		if tries > cfg.Burst*50 {
			return errors.New("pre-partition burst made no progress (all establishes rejected)")
		}
		a, b := pair()
		rep, err := primary.srv.Establish(ctx, a, b, cfg.Spec)
		if errors.Is(err, manager.ErrRejected) {
			continue
		}
		if err != nil {
			return fmt.Errorf("pre-partition establish: %w", err)
		}
		acked = append(acked, int64(rep.Conn.ID))
	}
	res.AckedPrePartition = len(acked)

	// Keep a mutation stream alive across the cut so the fence is caught
	// in the act: anything acked after t0 would be a split-brain candidate.
	stopBurst := make(chan struct{})
	burstDone := make(chan struct{})
	bsrc := rng.New(cfg.Seed ^ 0x1234)
	var lastOldAck time.Time
	go func() {
		defer close(burstDone)
		for {
			select {
			case <-stopBurst:
				return
			default:
			}
			a := topology.NodeID(bsrc.Intn(cfg.Nodes))
			b := topology.NodeID(bsrc.Intn(cfg.Nodes - 1))
			if b >= a {
				b++
			}
			rep, err := primary.srv.Establish(ctx, a, b, cfg.Spec)
			if err != nil {
				if !errors.Is(err, manager.ErrRejected) {
					// Fenced (or shutting down): back off a little and keep
					// probing — a buggy fence that re-opens must be caught.
					time.Sleep(5 * time.Millisecond)
				}
				continue
			}
			mu.Lock()
			lastOldAck = time.Now()
			acked = append(acked, int64(rep.Conn.ID))
			mu.Unlock()
		}
	}()
	time.Sleep(25 * time.Millisecond) // let the stream overlap the cut

	// The cut. Three shapes, chosen by seed.
	var fenceBound time.Duration
	switch cfg.Seed % 3 {
	case 0:
		res.Mode = "symmetric"
		net.Partition("standby", "primary")
		fenceBound = cfg.Lease
	case 1:
		res.Mode = "request-drop"
		net.SetRule("standby", "primary", netchaos.Rule{DropRequest: 1})
		fenceBound = cfg.Lease
	default:
		res.Mode = "response-drop"
		net.SetRule("standby", "primary", netchaos.Rule{DropResponse: 1})
		// Polls still arrive and renew the lease; the fence comes from the
		// sync timeout refusing to fall back to async.
		fenceBound = cfg.SyncTimeout
	}
	t0 := time.Now()

	// Promotion within budget (the budget covers detection + quiesce).
	for standby.srv.Role() != "primary" {
		if time.Since(t0) > cfg.PromotionBudget+2*time.Second {
			return fmt.Errorf("standby still %q %s after the cut", standby.srv.Role(), time.Since(t0))
		}
		time.Sleep(2 * time.Millisecond)
	}
	res.PromotionLatency = time.Since(t0)
	if res.PromotionLatency > cfg.PromotionBudget {
		return fmt.Errorf("promotion took %s, budget %s", res.PromotionLatency, cfg.PromotionBudget)
	}
	select {
	case err := <-runDone:
		if err != nil {
			return fmt.Errorf("follower loop: %w", err)
		}
	case <-time.After(2 * time.Second):
		return errors.New("follower loop did not exit after promotion")
	}

	// First ack on the new primary, while the old one is still being
	// hammered — the at-most-one-acking ordering is checked against it.
	var firstNewAck time.Time
	for i := 0; ; i++ {
		if i >= 200 {
			return errors.New("promoted standby refused 200 establishes")
		}
		a, b := pair()
		if _, err := standby.srv.Establish(ctx, a, b, cfg.Spec); err == nil {
			firstNewAck = time.Now()
			break
		} else if !errors.Is(err, manager.ErrRejected) {
			return fmt.Errorf("promoted standby establish: %w", err)
		}
	}
	close(stopBurst)
	<-burstDone

	// Split-brain invariants.
	mu.Lock()
	oldLast := lastOldAck
	ackedAll := append([]int64(nil), acked...)
	mu.Unlock()
	if !oldLast.IsZero() && !oldLast.Before(firstNewAck) {
		return fmt.Errorf("split brain: old primary acked %s after the new primary's first ack", oldLast.Sub(firstNewAck))
	}
	if over := oldLast.Sub(t0); over > fenceBound+250*time.Millisecond {
		return fmt.Errorf("old primary still acking %s past the cut (fence bound %s)", over, fenceBound)
	}
	res.FenceLatency = oldLast.Sub(t0)
	if res.FenceLatency < 0 {
		res.FenceLatency = 0
	}

	// No acked establish lost: everything either side acknowledged is
	// replicated state the promoted standby must hold.
	snaps, err := standby.srv.Snapshot(ctx)
	if err != nil {
		return err
	}
	if snaps.Alive < len(ackedAll) {
		return fmt.Errorf("%d establishes acked, only %d alive on promoted standby", len(ackedAll), snaps.Alive)
	}

	// Heal. Nobody polls the ex-primary, so its lease stays lapsed and it
	// must refuse mutations — forever, not just for the partition.
	net.Heal()
	time.Sleep(2 * cfg.Lease)
	if _, err := primary.srv.Establish(ctx, 0, 1, cfg.Spec); !errors.Is(err, server.ErrFenced) {
		return fmt.Errorf("healed ex-primary answered a mutation with %v, want ErrFenced", err)
	}

	// Clean audits on both sides.
	if err := primary.srv.CheckInvariants(ctx); err != nil {
		return fmt.Errorf("ex-primary invariants: %w", err)
	}
	if err := standby.srv.CheckInvariants(ctx); err != nil {
		return fmt.Errorf("promoted standby invariants: %w", err)
	}
	return nil
}

// runShardPartition is the 2PC-timeout half of the episode.
func runShardPartition(cfg PartitionConfig, res *PartitionResult) error {
	g, err := topology.TransitStub(topology.DefaultTransitStub(), rng.New(cfg.TopoSeed))
	if err != nil {
		return err
	}
	net := netchaos.New(cfg.Seed ^ 0x2545f491)
	opt := shard.Options{
		Shards:         cfg.Shards,
		Dir:            filepath.Join(cfg.Dir, "shards"),
		Manager:        cfg.Manager,
		Journal:        journal.Options{FsyncEvery: -1},
		PrepareTimeout: cfg.PrepareTimeout,
		SuspectWindow:  4 * cfg.PrepareTimeout,
		Invoke: func(ctx context.Context, s int, phase string, call func(context.Context) error) error {
			return net.Do(ctx, "coord", fmt.Sprintf("shard-%d", s), call)
		},
	}
	c, err := shard.New(g, opt)
	if err != nil {
		return err
	}
	ctx := context.Background()
	defer c.Shutdown(ctx)

	// Seed a little mixed load.
	src := rng.New(cfg.Seed ^ 0x9f)
	seeded := 0
	for tries := 0; seeded < 12 && tries < 600; tries++ {
		a := topology.NodeID(src.Intn(g.NumNodes()))
		b := topology.NodeID(src.Intn(g.NumNodes()))
		if a == b {
			continue
		}
		if _, err := c.Establish(ctx, a, b, qos.DefaultSpec()); err == nil {
			seeded++
		} else if !errors.Is(err, manager.ErrRejected) && !errors.Is(err, shard.ErrNoRoute) {
			return fmt.Errorf("seed establish: %w", err)
		}
	}

	// Probe a guaranteed cross-shard pair once to learn the participant
	// order (routing is deterministic, so the doomed establish repeats it),
	// then tear the probe down.
	var cs, cd topology.NodeID = -1, -1
	for n := 0; n < g.NumNodes() && cd == -1; n++ {
		if g.Tag(topology.NodeID(n)) != "stub" {
			continue
		}
		if cs == -1 {
			cs = topology.NodeID(n)
		} else if c.Plan().NodeShard[n] != c.Plan().NodeShard[cs] {
			cd = topology.NodeID(n)
		}
	}
	var participants []int
	c.SetTestHookAfterPrepare(func(s int, txn uint64) error {
		participants = append(participants, s)
		return nil
	})
	probe, err := c.Establish(ctx, cs, cd, qos.DefaultSpec())
	if err != nil {
		return fmt.Errorf("probe cross establish %d→%d: %w", cs, cd, err)
	}
	if !probe.Cross || len(participants) < 2 {
		return fmt.Errorf("probe was not a multi-participant cross establish (cross=%v, participants=%v)", probe.Cross, participants)
	}
	if err := c.Terminate(ctx, probe.ID); err != nil {
		return fmt.Errorf("probe terminate: %w", err)
	}
	c.SetTestHookAfterPrepare(nil)
	victim := participants[len(participants)-1]
	res.Victim = victim

	// Partition the last participant, per seed: request drop (it never
	// hears the prepare) or response drop (it applies every retried
	// prepare — the idempotent-retry case — but its answers are lost).
	victimAddr := fmt.Sprintf("shard-%d", victim)
	if (cfg.Seed>>2)%2 == 0 {
		res.ShardMode = "request-drop"
		net.SetRule("coord", victimAddr, netchaos.Rule{DropRequest: 1})
	} else {
		res.ShardMode = "response-drop"
		net.SetRule("coord", victimAddr, netchaos.Rule{DropResponse: 1})
	}

	// The doomed establish: phase timeouts + retries + presumed abort,
	// bounded end to end.
	doomedStart := time.Now()
	if _, err := c.Establish(ctx, cs, cd, qos.DefaultSpec()); err == nil {
		return errors.New("cross establish through a partitioned shard succeeded")
	}
	if elapsed := time.Since(doomedStart); elapsed > 10*cfg.PrepareTimeout+2*time.Second {
		return fmt.Errorf("doomed establish took %s, expected bounded by timeouts+retries", elapsed)
	}
	if res.CrossTimeouts = c.CrossTimeouts(); res.CrossTimeouts == 0 {
		return errors.New("no 2PC phase timeout was counted")
	}
	if reasons := c.AbortReasons(); reasons["timeout"] == 0 {
		return fmt.Errorf("no timeout-reason abort counted (reasons: %v)", reasons)
	}
	if res.PendingPeak = c.PendingResolutions(); res.PendingPeak == 0 {
		return errors.New("unreachable participant left nothing in the resolution queue")
	}

	// While the victim is suspected, the plane fails fast instead of
	// burning another prepare timeout per request.
	fastStart := time.Now()
	_, err = c.Establish(ctx, cs, cd, qos.DefaultSpec())
	res.FastFail = time.Since(fastStart)
	if !errors.Is(err, shard.ErrShardUnavailable) {
		return fmt.Errorf("establish during suspicion: %v, want ErrShardUnavailable", err)
	}
	if res.FastFail > cfg.PrepareTimeout/2 {
		return fmt.Errorf("suspected-shard establish took %s, want a fast refusal", res.FastFail)
	}

	// Heal, outwait the suspicion window, drain the resolution queue.
	net.Heal()
	deadline := time.Now().Add(5 * time.Second)
	for c.PendingResolutions() > 0 {
		if time.Now().After(deadline) {
			return fmt.Errorf("%d transactions still pending resolution after heal", c.PendingResolutions())
		}
		c.ResolvePending(ctx)
		time.Sleep(10 * time.Millisecond)
	}

	// No leaked reservations: every surviving transaction on every shard
	// is committed, and the plane takes new cross work.
	for i := 0; i < c.NumShards(); i++ {
		txns, err := c.Shard(i).Txns(ctx)
		if err != nil {
			return fmt.Errorf("shard %d txns: %w", i, err)
		}
		for _, tx := range txns {
			if !tx.Committed {
				return fmt.Errorf("shard %d leaked uncommitted txn %d after heal", i, tx.Txn)
			}
		}
		if err := c.Shard(i).CheckInvariants(ctx); err != nil {
			return fmt.Errorf("shard %d invariants: %w", i, err)
		}
	}
	if _, err := c.Establish(ctx, cs, cd, qos.DefaultSpec()); err != nil {
		return fmt.Errorf("post-heal cross establish: %w", err)
	}
	return nil
}
