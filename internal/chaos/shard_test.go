package chaos

import "testing"

func TestShardCrashEpisode(t *testing.T) {
	res, err := RunShardCrash(ShardCrashConfig{
		Seed: 1, TopoSeed: 7, Dir: t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Victim < 0 || res.Victim >= res.Shards {
		t.Fatalf("victim %d out of range", res.Victim)
	}
	if res.Established == 0 {
		t.Fatal("episode established nothing before the kill")
	}
	if len(res.Fingerprints) != res.Shards {
		t.Fatalf("got %d fingerprints for %d shards", len(res.Fingerprints), res.Shards)
	}
}

func TestShardCrashEpisodeSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed sweep in -short mode")
	}
	for seed := uint64(2); seed < 5; seed++ {
		if _, err := RunShardCrash(ShardCrashConfig{
			Seed: seed, TopoSeed: seed + 10, Dir: t.TempDir(),
		}); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}
