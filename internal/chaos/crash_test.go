package chaos

import (
	"strings"
	"testing"
)

func TestCrashRestartEpisodes(t *testing.T) {
	// A spread of seeds, crash points, snapshot cadences and tail damage.
	cases := []CrashConfig{
		{Seed: 1, Events: 120, CrashAfter: 60, SnapshotEvery: 16},
		{Seed: 2, Events: 120, CrashAfter: 17, SnapshotEvery: 4},
		{Seed: 3, Events: 120, CrashAfter: 90, SnapshotEvery: -1}, // full-log replay
		{Seed: 4, Events: 150, CrashAfter: 75, SnapshotEvery: 8, TornTailBytes: 23},
		{Seed: 5, Events: 100, CrashAfter: 99, SnapshotEvery: 16, TornTailBytes: 200},
		{Seed: 6, Events: 80, CrashAfter: 1, SnapshotEvery: 16}, // crash almost immediately
		// Group-commit mode: the crash lands inside the commit window — a
		// burst of framed-but-unacknowledged appends dies with the batch
		// fsync; replay must be bit-identical to the acknowledged prefix.
		{Seed: 7, Events: 120, CrashAfter: 60, SnapshotEvery: 16, GroupCommit: true},
		{Seed: 8, Events: 120, CrashAfter: 90, SnapshotEvery: -1, GroupCommit: true, UnackedWindow: 12},
		{Seed: 9, Events: 100, CrashAfter: 50, SnapshotEvery: 8, GroupCommit: true, TornTailBytes: 23},
	}
	for _, cfg := range cases {
		cfg := cfg
		cfg.Dir = t.TempDir()
		res, err := RunCrashRestart(cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", cfg.Seed, err)
		}
		if res.Journaled == 0 || res.Fingerprint == "" {
			t.Fatalf("seed %d: empty result %+v", cfg.Seed, res)
		}
		if cfg.TornTailBytes > 0 && res.TornBytes == 0 {
			t.Fatalf("seed %d: torn tail not detected", cfg.Seed)
		}
		if cfg.SnapshotEvery > 0 && cfg.CrashAfter > 2*cfg.SnapshotEvery && res.SnapshotSeq == 0 {
			t.Fatalf("seed %d: no snapshot despite cadence %d over %d events",
				cfg.Seed, cfg.SnapshotEvery, cfg.CrashAfter)
		}
		if cfg.GroupCommit && res.UnackedLost == 0 {
			t.Fatalf("seed %d: group-commit episode lost no unacked appends", cfg.Seed)
		}
		if !cfg.GroupCommit && res.UnackedLost != 0 {
			t.Fatalf("seed %d: non-group episode reports %d unacked lost", cfg.Seed, res.UnackedLost)
		}
	}
}

func TestCrashRestartDeterministicFingerprint(t *testing.T) {
	// Same seed, different crash points: the final state must not depend on
	// where the crash happened.
	// Group-commit episodes must land on the same fingerprint too: the
	// unacknowledged window comes from a separate rng stream, so the
	// acknowledged history is identical with or without it.
	var fp string
	for _, crashAt := range []int{10, 50, 95} {
		for _, gc := range []bool{false, true} {
			res, err := RunCrashRestart(CrashConfig{
				Seed: 42, Events: 100, CrashAfter: crashAt, SnapshotEvery: 8,
				GroupCommit: gc, Dir: t.TempDir(),
			})
			if err != nil {
				t.Fatalf("crash at %d (group=%v): %v", crashAt, gc, err)
			}
			if fp == "" {
				fp = res.Fingerprint
			} else if res.Fingerprint != fp {
				t.Fatalf("crash at %d (group=%v): fingerprint %s, want %s", crashAt, gc, res.Fingerprint, fp)
			}
		}
	}
}

func TestCrashRestartRequiresDir(t *testing.T) {
	if _, err := RunCrashRestart(CrashConfig{Seed: 1}); err == nil || !strings.Contains(err.Error(), "Dir") {
		t.Fatalf("missing dir: %v", err)
	}
}
