package chaos

import (
	"testing"
	"time"
)

// TestRunOverload runs seeded overload episodes and relies on RunOverload's
// internal contract gates: real pressure (expired deadlines), real shedding
// (unexecuted commands), a latched overload state, live terminations, and a
// clean recovery with no degradation.
func TestRunOverload(t *testing.T) {
	if testing.Short() {
		t.Skip("overload episodes run real backlogs; skipped in -short")
	}
	for _, seed := range []uint64{1, 7} {
		res, err := RunOverload(OverloadConfig{
			Seed:    seed,
			Workers: 8,
			Ops:     80,
			// 1ms service vs 2ms caller deadlines keeps the episode quick
			// while still drowning the consuming lane.
			ExecDelay: time.Millisecond,
			Deadline:  2 * time.Millisecond,
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		t.Logf("seed %d: ok=%d expired=%d terminated=%d shed=%d+%d episodes=%d recovered_in=%s forecast_reads=%d forecast_solves=%d",
			seed, res.EstablishOK, res.EstablishExpired, res.Terminated,
			res.ShedExpired, res.ShedCanceled, res.Episodes, res.RecoveredIn,
			res.ForecastReads, res.ForecastSolves)
		if res.ForecastReads == 0 || res.ForecastSolves == 0 {
			t.Fatalf("seed %d: forecast control plane made no progress through the episode: %+v", seed, res)
		}
	}
}

// TestRunOverloadWithoutForecast pins the overload contract down without
// the forecaster riding along (the opt-out used to bisect failures).
func TestRunOverloadWithoutForecast(t *testing.T) {
	if testing.Short() {
		t.Skip("overload episodes run real backlogs; skipped in -short")
	}
	res, err := RunOverload(OverloadConfig{
		Seed:            3,
		Workers:         8,
		Ops:             80,
		ExecDelay:       time.Millisecond,
		Deadline:        2 * time.Millisecond,
		DisableForecast: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.ForecastReads != 0 || res.ForecastSolves != 0 {
		t.Fatalf("forecast probe ran despite DisableForecast: %+v", res)
	}
}
