// Failover chaos: the replication analogue of the crash-restart episodes
// in crash.go. An episode boots a two-node primary/standby cluster fully
// in-process (real journals on disk, real HTTP between the nodes), streams
// a mutation burst through the primary with semi-synchronous replication
// gating the acknowledgments, kills the primary mid-burst (listener torn
// down, journal abandoned without Close — a kill -9), and asserts:
//
//   - the standby promotes itself within the sub-second failover budget;
//   - the promoted state is bit-identical to a reference rebuilt by
//     replaying the dead primary's surviving journal up to the standby's
//     replicated prefix (same fingerprint — journal streaming is replay);
//   - no acknowledged establish is lost: every connection acked before the
//     kill and never terminated is alive on the new primary;
//   - the new primary serves mutations under its bumped, journaled term;
//   - the rejoining ex-primary comes back as a follower, refuses to
//     originate mutations, re-syncs (bootstrapping away its divergent
//     unreplicated suffix when it has one), and converges on the new
//     primary's fingerprint.
package chaos

import (
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"time"

	"drqos/internal/journal"
	"drqos/internal/manager"
	"drqos/internal/qos"
	"drqos/internal/replica"
	"drqos/internal/rng"
	"drqos/internal/server"
	"drqos/internal/topology"
)

// FailoverConfig seeds one primary-kill failover episode.
type FailoverConfig struct {
	Seed     uint64
	Nodes    int    // Waxman topology size (default 24)
	TopoSeed uint64 // default: derived from Seed
	Manager  manager.Config
	Spec     qos.ElasticSpec

	// Dir is the episode's data root (required; journals live in
	// Dir/primary and Dir/standby).
	Dir string
	// Burst is the number of mutation attempts before and after the kill
	// (default 120; the kill lands halfway).
	Burst int
	// KillAfter is how many acknowledged establishes precede the kill
	// (default Burst/4).
	KillAfter int
	// FailoverTimeout is the standby's detection window (default 300ms,
	// well inside the 1s promotion budget).
	FailoverTimeout time.Duration
	// PromotionBudget bounds kill→promoted (default 1s).
	PromotionBudget time.Duration
}

func (c FailoverConfig) withDefaults() FailoverConfig {
	if c.Nodes <= 0 {
		c.Nodes = 24
	}
	if c.TopoSeed == 0 {
		c.TopoSeed = c.Seed + 0x9e3779b97f4a7c15
	}
	if c.Manager.Capacity <= 0 {
		c.Manager.Capacity = 10_000
	}
	if c.Spec == (qos.ElasticSpec{}) {
		c.Spec = qos.DefaultSpec()
	}
	if c.Burst <= 0 {
		c.Burst = 120
	}
	if c.KillAfter <= 0 || c.KillAfter >= c.Burst {
		c.KillAfter = c.Burst / 4
	}
	if c.FailoverTimeout <= 0 {
		c.FailoverTimeout = 300 * time.Millisecond
	}
	if c.PromotionBudget <= 0 {
		c.PromotionBudget = time.Second
	}
	return c
}

// FailoverResult summarizes a clean episode.
type FailoverResult struct {
	// AckedPreKill counts establishes acknowledged before the kill; all of
	// them survived onto the promoted standby.
	AckedPreKill int
	// ReplicatedPrefix is the standby's replicated journal prefix at
	// promotion — the sequence the bit-identity assertion replayed to.
	ReplicatedPrefix uint64
	// PromotionLatency is kill→promoted.
	PromotionLatency time.Duration
	// NewTerm is the promoted node's term (old term + 1).
	NewTerm uint64
	// Fingerprint is the matched state digest (promoted standby vs the
	// dead primary's replayed journal prefix).
	Fingerprint string
	// RejoinDiverged reports whether the ex-primary's journal held an
	// unreplicated suffix, forcing a snapshot re-bootstrap on rejoin.
	RejoinDiverged bool
}

// failoverNode is one in-process cluster member.
type failoverNode struct {
	srv  *server.Server
	jnl  *journal.Journal
	node *replica.Node
	http *httptest.Server
}

// bootFailoverNode opens (or reopens) dir and builds a full member on it.
func bootFailoverNode(g *topology.Graph, mcfg manager.Config, dir, primaryURL string, failover time.Duration) (*failoverNode, *journal.Recovered, error) {
	jnl, rec, err := journal.Open(dir, journal.Options{
		FsyncEvery:         1,
		GroupCommit:        true,
		GroupCommitMaxWait: 500 * time.Microsecond,
	})
	if err != nil {
		return nil, nil, err
	}
	mgr, err := server.Rebuild(g, mcfg, rec)
	if err != nil {
		jnl.Close()
		return nil, nil, err
	}
	n := &failoverNode{jnl: jnl}
	opt := server.Options{
		Journal:  jnl,
		Follower: primaryURL != "",
		Term:     rec.Term,
		// Manual snapshots only: the bit-identity assertion replays the
		// surviving journal from seq 1.
		SnapshotEvery: -1,
	}
	opt.WaitReplicated = func(ctx context.Context, seq uint64) error {
		return n.node.WaitReplicated(ctx, seq)
	}
	opt.ReplicaStats = func() *server.ReplicaStats { return n.node.StatsBlock() }
	n.srv, err = server.NewFromManager(g, mgr, opt)
	if err != nil {
		jnl.Close()
		return nil, nil, err
	}
	n.node = replica.NewNode(n.srv, jnl, replica.Config{
		PrimaryURL:      primaryURL,
		FailoverTimeout: failover,
		PollWait:        20 * time.Millisecond,
	})
	n.http = httptest.NewServer(n.node.FrontHandler(server.NewHandler(n.srv)))
	return n, rec, nil
}

func (n *failoverNode) shutdown() {
	n.node.Stop()
	n.http.Close()
	_ = n.srv.Shutdown(context.Background())
	_ = n.jnl.Close()
}

// kill tears the member down the way kill -9 does: connections severed,
// listener gone, journal abandoned without a final sync.
func (n *failoverNode) kill() {
	n.http.CloseClientConnections()
	n.http.Close()
	_ = n.srv.Shutdown(context.Background())
	_ = n.jnl.Abandon()
}

// replayPrefix rebuilds a manager from rec truncated to seq — the durable
// prefix the standby replicated — and returns its fingerprint.
func replayPrefix(g *topology.Graph, mcfg manager.Config, rec *journal.Recovered, seq uint64) (string, error) {
	trunc := &journal.Recovered{
		SnapshotSeq:    rec.SnapshotSeq,
		SnapshotHeader: rec.SnapshotHeader,
		SnapshotBody:   rec.SnapshotBody,
		LastSeq:        rec.SnapshotSeq,
	}
	for _, ev := range rec.Events {
		if ev.Seq > seq {
			break
		}
		trunc.Events = append(trunc.Events, ev)
		trunc.LastSeq = ev.Seq
	}
	if trunc.LastSeq != seq {
		return "", fmt.Errorf("chaos: primary journal holds seqs to %d, cannot replay prefix %d", trunc.LastSeq, seq)
	}
	m, err := server.Rebuild(g, mcfg, trunc)
	if err != nil {
		return "", fmt.Errorf("chaos: replaying acked prefix: %w", err)
	}
	return m.ExportState().Fingerprint(), nil
}

// RunFailover executes one seeded primary-kill episode. A nil error means
// every assertion in the package comment held.
func RunFailover(cfg FailoverConfig) (*FailoverResult, error) {
	cfg = cfg.withDefaults()
	if cfg.Dir == "" {
		return nil, errors.New("chaos: FailoverConfig.Dir is required")
	}
	g, err := topology.Waxman(topology.WaxmanConfig{
		Nodes: cfg.Nodes, Alpha: 0.33, Beta: 0.25, EnsureConnected: true,
	}, rng.New(cfg.TopoSeed))
	if err != nil {
		return nil, err
	}
	for _, sub := range []string{"primary", "standby"} {
		if err := os.MkdirAll(filepath.Join(cfg.Dir, sub), 0o755); err != nil {
			return nil, err
		}
	}

	primary, _, err := bootFailoverNode(g, cfg.Manager, filepath.Join(cfg.Dir, "primary"), "", 0)
	if err != nil {
		return nil, fmt.Errorf("chaos: booting primary: %w", err)
	}
	standby, _, err := bootFailoverNode(g, cfg.Manager, filepath.Join(cfg.Dir, "standby"),
		primary.http.URL, cfg.FailoverTimeout)
	if err != nil {
		primary.shutdown()
		return nil, fmt.Errorf("chaos: booting standby: %w", err)
	}
	defer standby.shutdown()
	runDone := make(chan error, 1)
	go func() { runDone <- standby.node.Run(context.Background()) }()

	// Mutation burst straight into the primary's API, recording every
	// acknowledged establish. Acks are gated on the standby's confirming
	// poll by the semi-sync hook, so "acked" means "replicated". The killed
	// flag is flipped before the kill starts; anything acknowledged after
	// it is outside the no-loss assertion (its WaitReplicated may have
	// fallen back to async against a dead standby link).
	ctx := context.Background()
	src := rng.New(cfg.Seed)
	var (
		mu     sync.Mutex
		acked  []int64
		killed bool
	)
	burst := func(n int) error {
		for i := 0; i < n; i++ {
			a := src.Intn(cfg.Nodes)
			b := src.Intn(cfg.Nodes - 1)
			if b >= a {
				b++
			}
			rep, err := primary.srv.Establish(ctx, topology.NodeID(a), topology.NodeID(b), cfg.Spec)
			if errors.Is(err, manager.ErrRejected) {
				continue
			}
			if err != nil {
				return err
			}
			mu.Lock()
			if !killed {
				acked = append(acked, int64(rep.Conn.ID))
			}
			mu.Unlock()
		}
		return nil
	}
	for len(acked) < cfg.KillAfter {
		before := len(acked)
		if err := burst(cfg.KillAfter - len(acked)); err != nil {
			primary.kill()
			return nil, fmt.Errorf("chaos: pre-kill burst: %w", err)
		}
		if len(acked) == before {
			primary.kill()
			return nil, errors.New("chaos: burst made no progress (all establishes rejected)")
		}
	}
	res := &FailoverResult{AckedPreKill: len(acked)}

	// Wait until the standby's confirmed prefix covers every ack — the
	// semi-sync gate guarantees this is already true or within one poll.
	ackTip := primary.jnl.LastSeq()
	deadline := time.Now().Add(5 * time.Second)
	for standby.jnl.LastSeq() < ackTip {
		if time.Now().After(deadline) {
			primary.kill()
			return nil, fmt.Errorf("chaos: standby stuck at seq %d, acked tip %d", standby.jnl.LastSeq(), ackTip)
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Kill the primary mid-burst: a goroutine keeps mutating while the
	// listener and journal die under it.
	mu.Lock()
	killed = true
	mu.Unlock()
	burstDone := make(chan struct{})
	go func() {
		defer close(burstDone)
		_ = burst(cfg.Burst - cfg.KillAfter) // errors expected: the server is dying
	}()
	killAt := time.Now()
	primary.kill()
	<-burstDone

	// Promotion within budget.
	for standby.srv.Role() != "primary" {
		if time.Since(killAt) > cfg.PromotionBudget+2*time.Second {
			return nil, fmt.Errorf("chaos: standby still %q %s after the kill", standby.srv.Role(), time.Since(killAt))
		}
		time.Sleep(2 * time.Millisecond)
	}
	res.PromotionLatency = time.Since(killAt)
	if res.PromotionLatency > cfg.PromotionBudget {
		return nil, fmt.Errorf("chaos: promotion took %s, budget %s", res.PromotionLatency, cfg.PromotionBudget)
	}
	select {
	case err := <-runDone:
		if err != nil {
			return nil, fmt.Errorf("chaos: follower loop: %w", err)
		}
	case <-time.After(2 * time.Second):
		return nil, errors.New("chaos: follower loop did not exit after promotion")
	}
	res.NewTerm = standby.srv.Term()
	if res.NewTerm == 0 {
		return nil, errors.New("chaos: promotion did not bump the term")
	}

	// Bit-identity: the promoted state must equal a replay of the dead
	// primary's surviving journal up to the standby's replicated prefix.
	// The standby's journal is that prefix plus its own KindTerm record(s).
	sevs, err := standby.jnl.ReadFrom(1, int(standby.jnl.LastSeq())+1)
	if err != nil {
		return nil, fmt.Errorf("chaos: reading standby journal: %w", err)
	}
	var prefix uint64
	for _, ev := range sevs {
		if ev.Kind != journal.KindTerm {
			prefix = ev.Seq
		}
	}
	res.ReplicatedPrefix = prefix
	deadJnl, deadRec, err := journal.Open(filepath.Join(cfg.Dir, "primary"), journal.Options{FsyncEvery: -1})
	if err != nil {
		return nil, fmt.Errorf("chaos: recovering dead primary journal: %w", err)
	}
	if err := deadJnl.Close(); err != nil {
		return nil, err
	}
	wantFP, err := replayPrefix(g, cfg.Manager, deadRec, prefix)
	if err != nil {
		return nil, err
	}
	gotFP, err := standby.srv.StateFingerprint(ctx)
	if err != nil {
		return nil, err
	}
	if wantFP != gotFP {
		return nil, fmt.Errorf("chaos: promoted fingerprint %s != replayed acked prefix %s", gotFP, wantFP)
	}
	res.Fingerprint = gotFP

	// No acked establish lost: every pre-kill ack is alive on the new
	// primary (the burst never terminates, so all of them must be).
	snaps, err := standby.srv.Snapshot(ctx)
	if err != nil {
		return nil, err
	}
	aliveOnStandby := snaps.Alive
	if aliveOnStandby < len(acked) {
		return nil, fmt.Errorf("chaos: %d establishes acked pre-kill, only %d alive on promoted standby", len(acked), aliveOnStandby)
	}

	// The new primary serves mutations under the new term.
	if err := burstOne(standby.srv, cfg, src); err != nil {
		return nil, fmt.Errorf("chaos: promoted standby refuses mutations: %w", err)
	}

	// Rejoin: reopen the ex-primary's directory as a follower of the new
	// primary. Its journal may hold acked-but-unreplicated (or framed-but-
	// unacked) records past the standby's prefix — a divergent suffix the
	// rejoin must discard via snapshot re-bootstrap, never serve.
	res.RejoinDiverged = deadRec.LastSeq > prefix
	rejoin, rec, err := bootFailoverNode(g, cfg.Manager, filepath.Join(cfg.Dir, "primary"),
		standby.http.URL, 0) // no auto-failover: it must follow, not seize
	if err != nil {
		return nil, fmt.Errorf("chaos: rejoining ex-primary: %w", err)
	}
	defer rejoin.shutdown()
	if rec.LastSeq != deadRec.LastSeq {
		return nil, fmt.Errorf("chaos: rejoin recovered seq %d, expected %d", rec.LastSeq, deadRec.LastSeq)
	}
	go func() { _ = rejoin.node.Run(context.Background()) }()
	if _, err := rejoin.srv.Establish(ctx, 0, 1, cfg.Spec); !errors.Is(err, server.ErrNotPrimary) {
		return nil, fmt.Errorf("chaos: rejoined ex-primary served a mutation (err=%v), want ErrNotPrimary", err)
	}
	newTip := standby.jnl.LastSeq()
	deadline = time.Now().Add(5 * time.Second)
	for {
		if rejoin.jnl.LastSeq() >= newTip && rejoin.srv.Term() >= res.NewTerm {
			break
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("chaos: rejoined ex-primary stuck at seq %d term %d (want seq %d term %d)",
				rejoin.jnl.LastSeq(), rejoin.srv.Term(), newTip, res.NewTerm)
		}
		time.Sleep(2 * time.Millisecond)
	}
	newFP, err := standby.srv.StateFingerprint(ctx)
	if err != nil {
		return nil, err
	}
	rejFP, err := rejoin.srv.StateFingerprint(ctx)
	if err != nil {
		return nil, err
	}
	if newFP != rejFP {
		return nil, fmt.Errorf("chaos: rejoined follower fingerprint %s != new primary %s", rejFP, newFP)
	}
	if rejoin.srv.Role() != "follower" {
		return nil, fmt.Errorf("chaos: rejoined ex-primary role %q, want follower", rejoin.srv.Role())
	}
	return res, nil
}

// burstOne issues establishes until one is acknowledged (admission may
// reject individual pairs on a loaded topology).
func burstOne(s *server.Server, cfg FailoverConfig, src *rng.Source) error {
	for i := 0; i < 50; i++ {
		a := src.Intn(cfg.Nodes)
		b := src.Intn(cfg.Nodes - 1)
		if b >= a {
			b++
		}
		_, err := s.Establish(context.Background(), topology.NodeID(a), topology.NodeID(b), cfg.Spec)
		if err == nil {
			return nil
		}
		if !errors.Is(err, manager.ErrRejected) {
			return err
		}
	}
	return errors.New("50 establishes all rejected")
}
