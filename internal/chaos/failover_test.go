package chaos

import "testing"

// TestRunFailover runs the full primary-kill episode: mid-burst kill,
// sub-second promotion, bit-identical acked prefix, no acked establish
// lost, fenced rejoin.
func TestRunFailover(t *testing.T) {
	res, err := RunFailover(FailoverConfig{Seed: 1, Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if res.AckedPreKill == 0 || res.ReplicatedPrefix == 0 {
		t.Fatalf("degenerate episode: %+v", res)
	}
	if res.NewTerm != 1 {
		t.Fatalf("new term %d, want 1", res.NewTerm)
	}
	t.Logf("acked=%d prefix=%d promotion=%s diverged_rejoin=%v fp=%.12s",
		res.AckedPreKill, res.ReplicatedPrefix, res.PromotionLatency, res.RejoinDiverged, res.Fingerprint)
}

// TestRunFailoverSeeds sweeps a few seeds so the kill lands at varied
// points of the replication pipeline.
func TestRunFailoverSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("seed sweep is not short")
	}
	for seed := uint64(2); seed <= 4; seed++ {
		res, err := RunFailover(FailoverConfig{Seed: seed, Dir: t.TempDir(), Burst: 80, KillAfter: 10 * int(seed)})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		t.Logf("seed %d: acked=%d prefix=%d promotion=%s", seed, res.AckedPreKill, res.ReplicatedPrefix, res.PromotionLatency)
	}
}
