// Package rng provides a small, deterministic pseudo-random number
// generator suite used by every stochastic component of the library
// (topology generation, workload generation, failure injection).
//
// The generator is xoshiro256**, seeded through splitmix64 so that any
// 64-bit seed, including 0, produces a well-mixed state. Determinism is a
// hard requirement: the simulator promises bit-identical trajectories for
// identical seeds, which the standard library's global rand cannot provide
// once goroutines interleave. Each component therefore owns its own *Source,
// and Split derives independent child streams for sub-components.
package rng

import "math"

// Source is a deterministic xoshiro256** pseudo-random number generator.
// The zero value is NOT ready for use; construct with New or Split.
type Source struct {
	s [4]uint64
}

// New returns a Source seeded from the given 64-bit seed. Distinct seeds
// yield statistically independent streams; the same seed always yields the
// same stream.
func New(seed uint64) *Source {
	var src Source
	src.reseed(seed)
	return &src
}

func (s *Source) reseed(seed uint64) {
	// splitmix64 expansion of the seed into 256 bits of state. xoshiro256**
	// requires a state that is not all-zero; splitmix64 guarantees that for
	// any input.
	x := seed
	for i := range s.s {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		s.s[i] = z ^ (z >> 31)
	}
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next 64 uniformly distributed bits.
func (s *Source) Uint64() uint64 {
	result := rotl(s.s[1]*5, 7) * 9
	t := s.s[1] << 17

	s.s[2] ^= s.s[0]
	s.s[3] ^= s.s[1]
	s.s[1] ^= s.s[2]
	s.s[0] ^= s.s[3]
	s.s[2] ^= t
	s.s[3] = rotl(s.s[3], 45)
	return result
}

// Split returns a new Source whose stream is independent of the receiver's
// future output. It consumes one value from the receiver.
func (s *Source) Split() *Source {
	child := &Source{}
	child.reseed(s.Uint64())
	return child
}

// Float64 returns a uniform float64 in [0, 1).
func (s *Source) Float64() float64 {
	// 53 high bits scaled by 2^-53, the canonical conversion.
	return float64(s.Uint64()>>11) * (1.0 / (1 << 53))
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded sampling with rejection to avoid
	// modulo bias.
	bound := uint64(n)
	for {
		v := s.Uint64()
		hi, lo := mul64(v, bound)
		if lo >= bound || lo >= -bound%bound {
			return int(hi)
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 1<<32 - 1
	aLo, aHi := a&mask, a>>32
	bLo, bHi := b&mask, b>>32
	t := aHi*bLo + (aLo*bLo)>>32
	hi = aHi*bHi + t>>32 + (t&mask+aLo*bHi)>>32
	lo = a * b
	return hi, lo
}

// Exp returns an exponentially distributed variate with the given rate
// (mean 1/rate). It panics if rate <= 0.
func (s *Source) Exp(rate float64) float64 {
	if rate <= 0 {
		panic("rng: Exp with non-positive rate")
	}
	// Inverse-CDF sampling; 1-Float64() is in (0,1], avoiding log(0).
	return -math.Log(1-s.Float64()) / rate
}

// Perm returns a uniformly random permutation of [0, n) using the
// Fisher-Yates shuffle.
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes the first n elements using swap, Fisher-Yates style.
func (s *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}

// Pick returns a uniformly chosen index into a slice of length n, or -1 if
// n == 0.
func (s *Source) Pick(n int) int {
	if n == 0 {
		return -1
	}
	return s.Intn(n)
}

// Bernoulli returns true with probability p (clamped to [0,1]).
func (s *Source) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return s.Float64() < p
}
