package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if got, want := a.Uint64(), b.Uint64(); got != want {
			t.Fatalf("stream diverged at %d: %d != %d", i, got, want)
		}
	}
}

func TestDistinctSeedsDiverge(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 produced %d identical values in 100 draws", same)
	}
}

func TestZeroSeedUsable(t *testing.T) {
	s := New(0)
	var nonzero bool
	for i := 0; i < 10; i++ {
		if s.Uint64() != 0 {
			nonzero = true
		}
	}
	if !nonzero {
		t.Fatal("seed 0 produced an all-zero stream")
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	child := parent.Split()
	// The child's stream must differ from the parent's continuation.
	diverged := false
	for i := 0; i < 50; i++ {
		if parent.Uint64() != child.Uint64() {
			diverged = true
			break
		}
	}
	if !diverged {
		t.Fatal("split child mirrors parent stream")
	}
}

func TestSplitDeterministic(t *testing.T) {
	c1 := New(9).Split()
	c2 := New(9).Split()
	for i := 0; i < 100; i++ {
		if c1.Uint64() != c2.Uint64() {
			t.Fatal("split is not deterministic")
		}
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(3)
	for i := 0; i < 10000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(4)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("Float64 mean %v too far from 0.5", mean)
	}
}

func TestIntnRange(t *testing.T) {
	s := New(5)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 1000; i++ {
			v := s.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnUniform(t *testing.T) {
	s := New(6)
	const buckets, draws = 10, 100000
	counts := make([]int, buckets)
	for i := 0; i < draws; i++ {
		counts[s.Intn(buckets)]++
	}
	want := float64(draws) / buckets
	for b, c := range counts {
		if math.Abs(float64(c)-want) > 0.05*want {
			t.Fatalf("bucket %d count %d deviates >5%% from %v", b, c, want)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestExpMean(t *testing.T) {
	s := New(8)
	for _, rate := range []float64{0.001, 0.5, 1, 10} {
		const n = 100000
		var sum float64
		for i := 0; i < n; i++ {
			sum += s.Exp(rate)
		}
		mean := sum / n
		want := 1 / rate
		if math.Abs(mean-want)/want > 0.03 {
			t.Fatalf("Exp(%v) mean %v, want ~%v", rate, mean, want)
		}
	}
}

func TestExpPositive(t *testing.T) {
	s := New(11)
	for i := 0; i < 10000; i++ {
		if v := s.Exp(2.5); v < 0 || math.IsInf(v, 0) || math.IsNaN(v) {
			t.Fatalf("Exp produced invalid variate %v", v)
		}
	}
}

func TestExpPanicsOnNonPositiveRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Exp(0) did not panic")
		}
	}()
	New(1).Exp(0)
}

func TestPermIsPermutation(t *testing.T) {
	s := New(12)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := s.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShuffleIsPermutation(t *testing.T) {
	s := New(13)
	data := []int{0, 1, 2, 3, 4, 5, 6, 7}
	s.Shuffle(len(data), func(i, j int) { data[i], data[j] = data[j], data[i] })
	seen := make(map[int]bool, len(data))
	for _, v := range data {
		if seen[v] {
			t.Fatalf("shuffle duplicated %d: %v", v, data)
		}
		seen[v] = true
	}
	if len(seen) != 8 {
		t.Fatalf("shuffle lost elements: %v", data)
	}
}

func TestPickEmpty(t *testing.T) {
	if got := New(1).Pick(0); got != -1 {
		t.Fatalf("Pick(0) = %d, want -1", got)
	}
}

func TestBernoulliExtremes(t *testing.T) {
	s := New(14)
	for i := 0; i < 100; i++ {
		if s.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !s.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
}

func TestBernoulliFrequency(t *testing.T) {
	s := New(15)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if s.Bernoulli(0.3) {
			hits++
		}
	}
	got := float64(hits) / n
	if math.Abs(got-0.3) > 0.01 {
		t.Fatalf("Bernoulli(0.3) frequency %v", got)
	}
}

// Property: Intn(n) is always within bounds for arbitrary seeds and sizes.
func TestQuickIntnBounds(t *testing.T) {
	f := func(seed uint64, nRaw uint16) bool {
		n := int(nRaw%1000) + 1
		s := New(seed)
		for i := 0; i < 50; i++ {
			v := s.Intn(n)
			if v < 0 || v >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: identical seeds give identical Float64 prefixes.
func TestQuickDeterministicFloats(t *testing.T) {
	f := func(seed uint64) bool {
		a, b := New(seed), New(seed)
		for i := 0; i < 20; i++ {
			if a.Float64() != b.Float64() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Uint64()
	}
}

func BenchmarkExp(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Exp(0.001)
	}
}
