// Package sim is the detailed connection-level discrete-event simulator the
// reproduction uses in place of the authors' unpublished simulator (§3.3,
// §4): it loads a topology with DR-connections, drives Poisson arrivals,
// terminations and link failures through the network manager, measures the
// paper's model parameters (Pf, Ps, A, B, T) online, and reports the
// time-weighted average reserved bandwidth that Figures 2-4 and Table 1
// plot.
package sim

import "container/heap"

// eventKind enumerates the simulator's event types.
type eventKind int

const (
	evArrival eventKind = iota + 1
	evTermination
	evFailure
	evRepair
)

func (k eventKind) String() string {
	switch k {
	case evArrival:
		return "arrival"
	case evTermination:
		return "termination"
	case evFailure:
		return "failure"
	case evRepair:
		return "repair"
	default:
		return "unknown"
	}
}

// event is one scheduled occurrence. seq breaks time ties deterministically
// in insertion order.
type event struct {
	at   float64
	seq  int64
	kind eventKind
	// link carries the target link for repair events.
	link int
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// queue wraps the heap with a sequence counter.
type queue struct {
	h   eventHeap
	seq int64
}

func (q *queue) push(at float64, kind eventKind, link int) {
	q.seq++
	heap.Push(&q.h, event{at: at, seq: q.seq, kind: kind, link: link})
}

func (q *queue) pop() (event, bool) {
	if len(q.h) == 0 {
		return event{}, false
	}
	return heap.Pop(&q.h).(event), true
}

func (q *queue) empty() bool { return len(q.h) == 0 }
