package sim

import (
	"encoding/json"
	"fmt"
	"io"

	"drqos/internal/channel"
	"drqos/internal/topology"
)

// TraceEvent is one line of the simulator's JSONL event trace: enough to
// replay what happened to every DR-connection without re-running the
// simulation. The trace is an observability feature of this reproduction
// (the paper's simulator is a black box).
type TraceEvent struct {
	// T is the simulated time of the event.
	T float64 `json:"t"`
	// Kind is "arrival", "reject", "termination", "failure" or "repair".
	Kind string `json:"kind"`
	// Conn is the affected connection (arrival/termination), if any.
	Conn channel.ConnID `json:"conn,omitempty"`
	// Src/Dst are the endpoints of an arrival.
	Src topology.NodeID `json:"src,omitempty"`
	Dst topology.NodeID `json:"dst,omitempty"`
	// Link is the failed/repaired physical link.
	Link topology.LinkID `json:"link,omitempty"`
	// Activated/Dropped count failover outcomes of a failure event.
	Activated int `json:"activated,omitempty"`
	Dropped   int `json:"dropped,omitempty"`
	// Alive and AvgBandwidth snapshot the population after the event.
	Alive        int     `json:"alive"`
	AvgBandwidth float64 `json:"avg_bw"`
}

// tracer serializes events to a writer; a nil tracer is a no-op. The first
// write failure is sticky: it aborts the run through the event loop instead
// of panicking or silently dropping observability.
type tracer struct {
	enc *json.Encoder
	err error
}

func newTracer(w io.Writer) *tracer {
	if w == nil {
		return nil
	}
	return &tracer{enc: json.NewEncoder(w)}
}

func (t *tracer) emit(ev TraceEvent) error {
	if t == nil {
		return nil
	}
	if t.err != nil {
		return t.err
	}
	if err := t.enc.Encode(ev); err != nil {
		t.err = fmt.Errorf("sim: trace write failed: %w", err)
	}
	return t.err
}

// snapshot fills the population fields.
func (s *Sim) traceSnapshot(ev TraceEvent) TraceEvent {
	ev.T = s.clock
	ev.Alive = s.mgr.AliveCount()
	ev.AvgBandwidth = s.mgr.AverageBandwidth()
	return ev
}
