package sim

import (
	"bufio"
	"bytes"
	"encoding/json"
	"testing"
)

func TestTraceJSONL(t *testing.T) {
	g := paperGraph(t, 31)
	cfg := baseConfig(43)
	cfg.InitialConns = 100
	cfg.ChurnEvents = 200
	cfg.WarmupEvents = 50
	cfg.Gamma = 0.0005
	cfg.RepairRate = 0.05
	var buf bytes.Buffer
	cfg.Trace = &buf
	s, err := New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}

	var (
		events                                             int
		arrivals, rejects, terminations, failures, repairs int64
		lastT                                              float64
	)
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var ev TraceEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("line %d: %v", events+1, err)
		}
		events++
		if ev.T < lastT {
			t.Fatalf("trace time went backwards: %v after %v", ev.T, lastT)
		}
		lastT = ev.T
		if ev.Alive < 0 {
			t.Fatalf("negative population in %+v", ev)
		}
		switch ev.Kind {
		case "arrival":
			arrivals++
			if ev.Conn == 0 {
				t.Fatalf("arrival without conn: %+v", ev)
			}
		case "reject":
			rejects++
		case "termination":
			terminations++
		case "failure":
			failures++
		case "repair":
			repairs++
		default:
			t.Fatalf("unknown kind %q", ev.Kind)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	// The trace is complete: counts match the result exactly.
	if arrivals != res.Established {
		t.Fatalf("trace arrivals %d vs result %d", arrivals, res.Established)
	}
	if rejects != res.Rejected {
		t.Fatalf("trace rejects %d vs result %d", rejects, res.Rejected)
	}
	if terminations != res.Terminated {
		t.Fatalf("trace terminations %d vs result %d", terminations, res.Terminated)
	}
	if failures != res.Failures || repairs != res.Repairs {
		t.Fatalf("trace failures/repairs %d/%d vs result %d/%d",
			failures, repairs, res.Failures, res.Repairs)
	}
	if events == 0 {
		t.Fatal("empty trace")
	}
}

func TestTraceDisabledByDefault(t *testing.T) {
	g := paperGraph(t, 31)
	cfg := baseConfig(44)
	cfg.InitialConns = 20
	cfg.ChurnEvents = 20
	cfg.WarmupEvents = 5
	s, err := New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err) // nil tracer must be a safe no-op
	}
}
