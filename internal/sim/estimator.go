package sim

import "drqos/internal/estimator"

// Estimator is the online model-parameter estimator, now shared with the
// live forecast control plane. See internal/estimator for the measurement
// semantics; this alias keeps the simulator's historical API intact.
type Estimator = estimator.Estimator

// NewEstimator returns an estimator over n bandwidth states.
func NewEstimator(n int) *Estimator { return estimator.New(n) }
