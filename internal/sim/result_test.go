package sim

import (
	"math"
	"testing"

	"drqos/internal/markov"
)

func TestResultNewFields(t *testing.T) {
	g := paperGraph(t, 21)
	cfg := baseConfig(31)
	s, err := New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Birth distribution is a distribution.
	var sum float64
	for _, p := range res.BirthDist {
		if p < 0 || p > 1 {
			t.Fatalf("birth dist %v", res.BirthDist)
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("birth dist sums to %v", sum)
	}
	if res.AvgAlive <= 0 {
		t.Fatalf("avg alive %v", res.AvgAlive)
	}
	// Effective rates are positive and near the configured ones at light
	// load (few rejections).
	if res.EffectiveLambda <= 0 || res.EffectiveMu <= 0 {
		t.Fatalf("effective rates %v/%v", res.EffectiveLambda, res.EffectiveMu)
	}
	if res.EffectiveLambda > 3*cfg.Lambda || res.EffectiveLambda < cfg.Lambda/3 {
		t.Fatalf("effective lambda %v far from configured %v", res.EffectiveLambda, cfg.Lambda)
	}
	if res.EffectiveGamma != 0 {
		t.Fatalf("effective gamma %v with no failures", res.EffectiveGamma)
	}
	// General terms build a solvable chain.
	if len(res.GeneralTerms) != 4 {
		t.Fatalf("terms = %d", len(res.GeneralTerms))
	}
	chain, err := markov.BuildGeneral(cfg.Spec.States(), res.GeneralTerms)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := chain.SteadyStateFrom(res.BirthDist); err != nil {
		t.Fatal(err)
	}
}

func TestLightLoadOccupancyMatchesModel(t *testing.T) {
	// At light load the empirical occupancy concentrates near Bmax and
	// the restart model reproduces it closely (the validation in §4).
	g := paperGraph(t, 23)
	cfg := baseConfig(37)
	cfg.InitialConns = 200
	cfg.ChurnEvents = 800
	cfg.WarmupEvents = 200
	s, err := New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	top := cfg.Spec.States() - 1
	if res.EmpiricalPi[top] < 0.5 {
		t.Fatalf("light load should concentrate at Bmax: %v", res.EmpiricalPi)
	}
	chain, err := markov.Build(res.Params)
	if err != nil {
		t.Fatal(err)
	}
	delta := res.EffectiveMu / res.AvgAlive
	rchain, err := chain.WithRestart(res.BirthDist, delta)
	if err != nil {
		t.Fatal(err)
	}
	pi, err := rchain.SteadyStateFrom(res.BirthDist)
	if err != nil {
		t.Fatal(err)
	}
	// Top-state occupancy agreement within 10 percentage points.
	if math.Abs(pi[top]-res.EmpiricalPi[top]) > 0.10 {
		t.Fatalf("model top-state %v vs empirical %v", pi[top], res.EmpiricalPi[top])
	}
}

func TestRepairsHappen(t *testing.T) {
	g := paperGraph(t, 29)
	cfg := baseConfig(41)
	cfg.Gamma = 0.001
	cfg.RepairRate = 0.1 // fast repair relative to failures
	cfg.InitialConns = 150
	cfg.ChurnEvents = 600
	cfg.WarmupEvents = 100
	s, err := New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Failures == 0 {
		t.Fatal("no failures")
	}
	if res.Repairs == 0 {
		t.Fatal("no repairs despite repair rate")
	}
	if res.EffectiveGamma <= 0 {
		t.Fatalf("effective gamma %v", res.EffectiveGamma)
	}
}

func TestAvgBandwidthCI(t *testing.T) {
	g := paperGraph(t, 51)
	cfg := baseConfig(53)
	cfg.InitialConns = 800
	cfg.ChurnEvents = 600
	cfg.WarmupEvents = 100
	s, err := New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.AvgBandwidthCI95 <= 0 {
		t.Fatalf("no CI computed: %v", res.AvgBandwidthCI95)
	}
	// The CI must be small relative to the mean on a run this long.
	if res.AvgBandwidthCI95 > 0.25*res.AvgBandwidth {
		t.Fatalf("CI %v implausibly wide for mean %v", res.AvgBandwidthCI95, res.AvgBandwidth)
	}
}
