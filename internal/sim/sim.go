package sim

import (
	"errors"
	"fmt"
	"io"

	"drqos/internal/manager"
	"drqos/internal/markov"
	"drqos/internal/qos"
	"drqos/internal/rng"
	"drqos/internal/stats"
	"drqos/internal/topology"
)

// Config parameterizes one simulation run. All stochastic behaviour derives
// from Seed, so identical configs replay identical trajectories.
type Config struct {
	// Seed drives every random choice in the run.
	Seed uint64
	// Spec is the elastic QoS requested by every DR-connection (the paper
	// uses a homogeneous population; heterogeneous workloads can be built
	// with the manager API directly).
	Spec qos.ElasticSpec
	// Manager configures admission and adaptation.
	Manager manager.Config
	// Lambda is the system-level DR-connection request arrival rate (the
	// paper's λ = 0.001).
	Lambda float64
	// Mu is the system-level termination rate: terminations of a uniformly
	// random alive connection occur as a Poisson stream with this rate,
	// which keeps the population near its initial level as in §4.
	Mu float64
	// Gamma is the link failure rate. Zero disables failures.
	Gamma float64
	// RepairRate is the repair rate of a failed link (mean outage 1/rate).
	// Zero leaves failed links down for the rest of the run.
	RepairRate float64
	// InitialConns is the number of DR-connection requests issued while
	// loading the network before the measured churn phase. Rejected
	// requests count as issued, matching Table 1's note that the "tier"
	// column counts attempts.
	InitialConns int
	// ChurnEvents is the number of measured arrival/termination/failure
	// events to simulate after loading.
	ChurnEvents int
	// WarmupEvents is the number of churn events discarded before
	// measurement starts.
	WarmupEvents int
	// Trace, when non-nil, receives one JSON line per simulation event
	// (see TraceEvent). Tracing covers the whole run including loading.
	Trace io.Writer
}

// Validate checks the configuration.
func (c *Config) Validate() error {
	if err := c.Spec.Validate(); err != nil {
		return err
	}
	switch {
	case c.Lambda <= 0:
		return fmt.Errorf("sim: non-positive lambda %v", c.Lambda)
	case c.Mu <= 0:
		return fmt.Errorf("sim: non-positive mu %v", c.Mu)
	case c.Gamma < 0:
		return fmt.Errorf("sim: negative gamma %v", c.Gamma)
	case c.RepairRate < 0:
		return fmt.Errorf("sim: negative repair rate %v", c.RepairRate)
	case c.InitialConns < 0:
		return fmt.Errorf("sim: negative initial connections %d", c.InitialConns)
	case c.ChurnEvents < 0:
		return fmt.Errorf("sim: negative churn events %d", c.ChurnEvents)
	case c.WarmupEvents < 0 || c.WarmupEvents >= c.ChurnEvents && c.ChurnEvents > 0:
		return fmt.Errorf("sim: warmup %d must be below churn events %d", c.WarmupEvents, c.ChurnEvents)
	}
	return nil
}

// Result summarizes one run.
type Result struct {
	// AvgBandwidth is the time-weighted mean of the per-connection average
	// reserved bandwidth during the measured phase (Kb/s) — the metric of
	// Figures 2-4 and Table 1.
	AvgBandwidth float64
	// AvgBandwidthCI95 is the half-width of the 95% confidence interval of
	// AvgBandwidth, estimated by the method of batch means (10 batches)
	// over the measurement window. Zero when the window is too short.
	AvgBandwidthCI95 float64
	// FinalAvgBandwidth is the instantaneous average at the end of the run.
	FinalAvgBandwidth float64
	// EmpiricalPi is the time-weighted occupancy of each bandwidth state —
	// directly comparable with the Markov chain's stationary distribution.
	EmpiricalPi []float64
	// Params are the measured model parameters ready for markov.Build,
	// with rates set to the EFFECTIVE event rates observed during the
	// measured phase (see EffectiveLambda): rejected arrivals perturb no
	// existing channel, so the chain must be driven by the accepted rate.
	Params markov.Params
	// GeneralTerms feeds markov.BuildGeneral: the extended model keeping
	// the jump directions the paper's structure discards.
	GeneralTerms []markov.Term
	// EffectiveLambda/Mu/Gamma are the measured event rates (accepted
	// arrivals, terminations, failures per unit time) during measurement.
	EffectiveLambda, EffectiveMu, EffectiveGamma float64
	// BirthDist is the distribution of post-establishment bandwidth levels
	// of newly accepted channels — the β of markov.Chain.WithRestart.
	BirthDist []float64
	// AvgAlive is the time-weighted average population during measurement;
	// the per-channel death rate is EffectiveMu / AvgAlive.
	AvgAlive float64
	// DiscardedA/B/T is the fraction of observed jumps pointing in the
	// direction the §3.2 model omits (diagnostics; small is good).
	DiscardedA, DiscardedB, DiscardedT float64
	// Offered/Established/Rejected/Terminated/Dropped are event counts over
	// the whole run (loading + churn).
	Offered, Established, Rejected, Terminated, Dropped int64
	// Failures and Repairs count injected link events.
	Failures, Repairs int64
	// Recovered counts reactive re-establishments (ReactiveRecovery mode).
	Recovered int64
	// UnprotectedFrac is the time-weighted fraction of alive connections
	// without a backup during measurement (dependability coverage).
	UnprotectedFrac float64
	// AliveAtEnd is the final population.
	AliveAtEnd int
	// AvgHops is the mean primary-route hop count at the end (feeds the
	// paper's ideal-bandwidth formula).
	AvgHops float64
	// Duration is the simulated time span of the measured phase.
	Duration float64
}

// Sim drives one simulation run.
type Sim struct {
	cfg   Config
	g     *topology.Graph
	mgr   *manager.Manager
	src   *rng.Source
	est   *Estimator
	q     queue
	clock float64

	measuring   bool
	trc         *tracer
	bw          stats.TimeWeighted
	occupancy   []stats.TimeWeighted
	counts      Result
	failedLinks map[topology.LinkID]bool

	// Event counts within the measured window, for effective rates.
	measAccepted, measTerminated, measFailures int64
	birthCounts                                []int64
	alive                                      stats.TimeWeighted
	unprot                                     stats.TimeWeighted
	histBuf                                    []int
	bwSeries                                   []sample
}

// sample is one (time, value) point of the bandwidth series, kept so the
// batch-means CI can be computed once the window length is known.
type sample struct{ t, v float64 }

// New builds a simulator over graph g.
func New(g *topology.Graph, cfg Config) (*Sim, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	mgr, err := manager.New(g, cfg.Manager)
	if err != nil {
		return nil, err
	}
	s := &Sim{
		cfg:         cfg,
		g:           g,
		mgr:         mgr,
		src:         rng.New(cfg.Seed),
		est:         NewEstimator(cfg.Spec.States()),
		occupancy:   make([]stats.TimeWeighted, cfg.Spec.States()),
		birthCounts: make([]int64, cfg.Spec.States()),
		failedLinks: make(map[topology.LinkID]bool),
		trc:         newTracer(cfg.Trace),
	}
	return s, nil
}

// Manager exposes the underlying manager (for inspection in tests and
// examples).
func (s *Sim) Manager() *manager.Manager { return s.mgr }

// Clock returns the current simulated time.
func (s *Sim) Clock() float64 { return s.clock }

// randomPair draws a uniform random (src, dst) pair of distinct nodes.
func (s *Sim) randomPair() (topology.NodeID, topology.NodeID) {
	n := s.g.NumNodes()
	a := topology.NodeID(s.src.Intn(n))
	b := topology.NodeID(s.src.Intn(n - 1))
	if b >= a {
		b++
	}
	return a, b
}

// arrive issues one DR-connection request and feeds the estimator when
// measurement is active. A non-rejection failure — in particular a
// manager.InvariantViolation — aborts the run instead of panicking, so the
// caller can report the trajectory that broke the ledger.
func (s *Sim) arrive() error {
	s.counts.Offered++
	alivePrior := s.mgr.AliveCount()
	src, dst := s.randomPair()
	rep, err := s.mgr.Establish(src, dst, s.cfg.Spec)
	if err != nil {
		if errors.Is(err, manager.ErrRejected) {
			s.counts.Rejected++
			return s.trc.emit(s.traceSnapshot(TraceEvent{Kind: "reject", Src: src, Dst: dst}))
		}
		// Establish only returns ErrRejected or spec errors; the spec was
		// validated, so anything else is a bug worth surfacing loudly.
		return fmt.Errorf("sim: establish failed unexpectedly: %w", err)
	}
	s.counts.Established++
	if err := s.trc.emit(s.traceSnapshot(TraceEvent{Kind: "arrival", Conn: rep.Conn.ID, Src: src, Dst: dst})); err != nil {
		return err
	}
	if s.measuring {
		s.measAccepted++
		s.birthCounts[rep.Conn.Level]++
		s.est.ObserveArrival(s.mgr, rep, alivePrior)
	}
	return nil
}

// terminateRandom terminates a uniformly random alive connection.
func (s *Sim) terminateRandom() error {
	n := s.mgr.AliveCount()
	if n == 0 {
		return nil
	}
	id := s.mgr.AliveIDAt(s.src.Intn(n))
	rep, err := s.mgr.Terminate(id)
	if err != nil {
		return fmt.Errorf("sim: terminate %d: %w", id, err)
	}
	s.counts.Terminated++
	if err := s.trc.emit(s.traceSnapshot(TraceEvent{Kind: "termination", Conn: id})); err != nil {
		return err
	}
	if s.measuring {
		s.measTerminated++
		s.est.ObserveTermination(s.mgr, rep)
	}
	return nil
}

// failRandomLink fails a uniformly random healthy link and schedules its
// repair.
func (s *Sim) failRandomLink() error {
	healthy := make([]topology.LinkID, 0, s.g.NumLinks())
	for i := 0; i < s.g.NumLinks(); i++ {
		if !s.failedLinks[topology.LinkID(i)] {
			healthy = append(healthy, topology.LinkID(i))
		}
	}
	if len(healthy) == 0 {
		return nil
	}
	l := healthy[s.src.Intn(len(healthy))]
	alivePrior := s.mgr.AliveCount()
	rep, err := s.mgr.FailLink(l)
	if err != nil {
		return fmt.Errorf("sim: fail link %d: %w", l, err)
	}
	s.failedLinks[l] = true
	s.counts.Failures++
	s.counts.Dropped += int64(len(rep.Dropped))
	s.counts.Recovered += int64(len(rep.Recovered))
	if err := s.trc.emit(s.traceSnapshot(TraceEvent{
		Kind: "failure", Link: l,
		Activated: len(rep.Activated), Dropped: len(rep.Dropped),
	})); err != nil {
		return err
	}
	if s.measuring {
		s.measFailures++
		s.est.ObserveFailure(s.mgr, rep, alivePrior)
	}
	if s.cfg.RepairRate > 0 {
		s.q.push(s.clock+s.src.Exp(s.cfg.RepairRate), evRepair, int(l))
	}
	return nil
}

// repairLink repairs a previously failed link.
func (s *Sim) repairLink(l topology.LinkID) error {
	if !s.failedLinks[l] {
		return nil
	}
	if _, err := s.mgr.RepairLink(l); err != nil {
		return fmt.Errorf("sim: repair link %d: %w", l, err)
	}
	delete(s.failedLinks, l)
	s.counts.Repairs++
	return s.trc.emit(s.traceSnapshot(TraceEvent{Kind: "repair", Link: l}))
}

// sample records the instantaneous average bandwidth and state occupancy
// into the time-weighted accumulators.
func (s *Sim) sample() {
	if !s.measuring {
		return
	}
	avgBW := s.mgr.AverageBandwidth()
	s.bw.Observe(s.clock, avgBW)
	s.bwSeries = append(s.bwSeries, sample{t: s.clock, v: avgBW})
	total := s.mgr.AliveCount()
	s.alive.Observe(s.clock, float64(total))
	frac := 0.0
	if total > 0 {
		frac = float64(s.mgr.UnprotectedCount()) / float64(total)
	}
	s.unprot.Observe(s.clock, frac)
	s.histBuf = s.mgr.LevelHistogram(s.histBuf)
	for i := range s.occupancy {
		frac := 0.0
		if total > 0 && i < len(s.histBuf) {
			frac = float64(s.histBuf[i]) / float64(total)
		}
		s.occupancy[i].Observe(s.clock, frac)
	}
}

// Run executes the full simulation: loading phase, warmup, measured churn.
// It returns the aggregated result.
func (s *Sim) Run() (*Result, error) {
	// Loading phase: issue the initial requests back to back (time does
	// not advance; the paper measures steady state, not the loading
	// transient).
	for i := 0; i < s.cfg.InitialConns; i++ {
		if err := s.arrive(); err != nil {
			return nil, err
		}
	}

	// Churn phase: three Poisson streams. Each processed event draws the
	// next event of its own stream.
	s.q.push(s.clock+s.src.Exp(s.cfg.Lambda), evArrival, -1)
	s.q.push(s.clock+s.src.Exp(s.cfg.Mu), evTermination, -1)
	if s.cfg.Gamma > 0 {
		s.q.push(s.clock+s.src.Exp(s.cfg.Gamma), evFailure, -1)
	}

	processed := 0
	measureStart := 0.0
	for processed < s.cfg.ChurnEvents {
		ev, ok := s.q.pop()
		if !ok {
			return nil, errors.New("sim: event queue drained unexpectedly")
		}
		s.clock = ev.at
		switch ev.kind {
		case evArrival:
			if err := s.arrive(); err != nil {
				return nil, err
			}
			s.q.push(s.clock+s.src.Exp(s.cfg.Lambda), evArrival, -1)
			processed++
		case evTermination:
			if err := s.terminateRandom(); err != nil {
				return nil, err
			}
			s.q.push(s.clock+s.src.Exp(s.cfg.Mu), evTermination, -1)
			processed++
		case evFailure:
			if err := s.failRandomLink(); err != nil {
				return nil, err
			}
			s.q.push(s.clock+s.src.Exp(s.cfg.Gamma), evFailure, -1)
			processed++
		case evRepair:
			if err := s.repairLink(topology.LinkID(ev.link)); err != nil {
				return nil, err
			}
			// Repairs do not count toward the churn budget: they are a
			// consequence, not offered load.
		}
		if !s.measuring && processed >= s.cfg.WarmupEvents {
			s.measuring = true
			measureStart = s.clock
			// Open the time-weighted accumulators at the current state.
			s.bw.Observe(s.clock, s.mgr.AverageBandwidth())
		}
		s.sample()
	}
	if s.measuring {
		s.bw.CloseAt(s.clock)
		s.alive.CloseAt(s.clock)
		s.unprot.CloseAt(s.clock)
		for i := range s.occupancy {
			s.occupancy[i].CloseAt(s.clock)
		}
	}

	res := s.counts
	res.AvgBandwidth = s.bw.Mean()
	if s.measuring && s.clock > measureStart && len(s.bwSeries) >= 2 {
		if bm, err := stats.NewBatchMeans(measureStart, s.clock, 10); err == nil {
			for _, p := range s.bwSeries {
				bm.Observe(p.t, p.v)
			}
			bm.CloseAt(s.clock)
			if _, hw, err := bm.Estimate(); err == nil {
				res.AvgBandwidthCI95 = hw
			}
		}
	}
	res.FinalAvgBandwidth = s.mgr.AverageBandwidth()
	res.EmpiricalPi = make([]float64, len(s.occupancy))
	for i := range s.occupancy {
		res.EmpiricalPi[i] = s.occupancy[i].Mean()
	}
	res.AliveAtEnd = s.mgr.AliveCount()
	res.Duration = s.clock - measureStart
	// Effective rates: the chain is driven by events that actually touch
	// existing channels. Rejected arrivals reserve nothing and squeeze
	// nobody, so at high load the accepted rate is well below the offered
	// λ. With zero duration (degenerate configs) fall back to configured
	// rates.
	res.EffectiveLambda, res.EffectiveMu, res.EffectiveGamma = s.cfg.Lambda, s.cfg.Mu, s.cfg.Gamma
	if res.Duration > 0 {
		res.EffectiveLambda = float64(s.measAccepted) / res.Duration
		res.EffectiveMu = float64(s.measTerminated) / res.Duration
		res.EffectiveGamma = float64(s.measFailures) / res.Duration
	}
	res.AvgAlive = s.alive.Mean()
	res.UnprotectedFrac = s.unprot.Mean()
	res.BirthDist = make([]float64, len(s.birthCounts))
	var births int64
	for _, c := range s.birthCounts {
		births += c
	}
	if births > 0 {
		for i, c := range s.birthCounts {
			res.BirthDist[i] = float64(c) / float64(births)
		}
	} else {
		// No accepted arrival during measurement: fall back to the final
		// empirical occupancy (or the minimum level on a cold start).
		copy(res.BirthDist, res.EmpiricalPi)
		var sum float64
		for _, v := range res.BirthDist {
			sum += v
		}
		if sum == 0 {
			res.BirthDist[0] = 1
		} else {
			for i := range res.BirthDist {
				res.BirthDist[i] /= sum
			}
		}
	}
	res.Params = s.est.Params(res.EffectiveLambda, res.EffectiveMu, res.EffectiveGamma)
	res.GeneralTerms = s.est.GeneralTerms(res.EffectiveLambda, res.EffectiveMu, res.EffectiveGamma)
	res.DiscardedA, res.DiscardedB, res.DiscardedT = s.est.Discarded()

	var hops, conns float64
	for _, id := range s.mgr.AliveIDs() {
		hops += float64(s.mgr.Conn(id).Primary.Hops())
		conns++
	}
	if conns > 0 {
		res.AvgHops = hops / conns
	}
	return &res, nil
}

// IdealAverageBandwidth computes the paper's dotted reference line for
// Figure 2:
//
//	BW · Edges / (NChan · avgHops)
//
// the bandwidth each channel would get if all network resources were used
// and divided equally. The result is clamped to the spec's [Min, Max]
// because a real channel cannot reserve outside its elastic range.
func IdealAverageBandwidth(capacity qos.Kbps, edges, nChan int, avgHops float64, spec qos.ElasticSpec) float64 {
	if nChan <= 0 || avgHops <= 0 {
		return float64(spec.Max)
	}
	ideal := float64(capacity) * float64(edges) / (float64(nChan) * avgHops)
	if ideal > float64(spec.Max) {
		return float64(spec.Max)
	}
	if ideal < float64(spec.Min) {
		return float64(spec.Min)
	}
	return ideal
}

// IdealAverageBandwidthUnclamped returns the raw formula value, as plotted
// in the paper's Figure 2 reference line.
func IdealAverageBandwidthUnclamped(capacity qos.Kbps, edges, nChan int, avgHops float64) float64 {
	if nChan <= 0 || avgHops <= 0 {
		return 0
	}
	return float64(capacity) * float64(edges) / (float64(nChan) * avgHops)
}
