package sim

import (
	"math"
	"testing"

	"drqos/internal/manager"
	"drqos/internal/markov"
	"drqos/internal/qos"
	"drqos/internal/rng"
	"drqos/internal/topology"
)

// paperGraph generates a 100-node Waxman topology close to the paper's
// instance (354 edges).
func paperGraph(t testing.TB, seed uint64) *topology.Graph {
	t.Helper()
	g, err := topology.Waxman(topology.WaxmanConfig{
		Nodes: 100, Alpha: 0.33, Beta: 0.088, EnsureConnected: true,
	}, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func baseConfig(seed uint64) Config {
	return Config{
		Seed: seed,
		Spec: qos.DefaultSpec(),
		Manager: manager.Config{
			Capacity:      10000, // 10 Mb/s links
			RequireBackup: true,
		},
		Lambda:       0.001,
		Mu:           0.001,
		Gamma:        0,
		InitialConns: 150,
		ChurnEvents:  300,
		WarmupEvents: 50,
	}
}

func TestConfigValidate(t *testing.T) {
	ok := baseConfig(1)
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []func(*Config){
		func(c *Config) { c.Lambda = 0 },
		func(c *Config) { c.Mu = 0 },
		func(c *Config) { c.Gamma = -1 },
		func(c *Config) { c.RepairRate = -1 },
		func(c *Config) { c.InitialConns = -1 },
		func(c *Config) { c.ChurnEvents = -1 },
		func(c *Config) { c.WarmupEvents = 400 },
		func(c *Config) { c.Spec.Min = 0 },
	}
	for i, mutate := range cases {
		c := baseConfig(1)
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Fatalf("case %d accepted", i)
		}
	}
}

func TestRunSmoke(t *testing.T) {
	g := paperGraph(t, 11)
	s, err := New(g, baseConfig(42))
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Established == 0 {
		t.Fatal("nothing established")
	}
	if res.AvgBandwidth < 100 || res.AvgBandwidth > 500 {
		t.Fatalf("avg bandwidth %v outside elastic range", res.AvgBandwidth)
	}
	if res.AliveAtEnd <= 0 {
		t.Fatal("no survivors")
	}
	if res.AvgHops <= 0 {
		t.Fatal("no hop statistics")
	}
	if res.Duration <= 0 {
		t.Fatal("no measured duration")
	}
	// Conservation: offered = established + rejected.
	if res.Offered != res.Established+res.Rejected {
		t.Fatalf("offered %d != established %d + rejected %d",
			res.Offered, res.Established, res.Rejected)
	}
	// Population conservation: established = alive + terminated + dropped.
	if res.Established != int64(res.AliveAtEnd)+res.Terminated+res.Dropped {
		t.Fatalf("established %d != alive %d + terminated %d + dropped %d",
			res.Established, res.AliveAtEnd, res.Terminated, res.Dropped)
	}
	// Occupancy fractions form a distribution.
	var sum float64
	for _, p := range res.EmpiricalPi {
		if p < 0 || p > 1 {
			t.Fatalf("occupancy %v", res.EmpiricalPi)
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Fatalf("occupancy sums to %v", sum)
	}
	// Manager invariants hold at the end.
	if err := s.Manager().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRunDeterministic(t *testing.T) {
	g1 := paperGraph(t, 11)
	g2 := paperGraph(t, 11)
	s1, err := New(g1, baseConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	s2, err := New(g2, baseConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	r1, err := s1.Run()
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s2.Run()
	if err != nil {
		t.Fatal(err)
	}
	if r1.AvgBandwidth != r2.AvgBandwidth || r1.Established != r2.Established ||
		r1.Params.Pf != r2.Params.Pf || r1.AliveAtEnd != r2.AliveAtEnd {
		t.Fatalf("nondeterministic: %+v vs %+v", r1, r2)
	}
}

func TestRunSeedsDiffer(t *testing.T) {
	g := paperGraph(t, 11)
	s1, _ := New(g, baseConfig(1))
	r1, err := s1.Run()
	if err != nil {
		t.Fatal(err)
	}
	g2 := paperGraph(t, 11)
	cfg := baseConfig(2)
	s2, _ := New(g2, cfg)
	r2, err := s2.Run()
	if err != nil {
		t.Fatal(err)
	}
	if r1.AvgBandwidth == r2.AvgBandwidth && r1.Params.Pf == r2.Params.Pf {
		t.Fatal("different seeds produced identical trajectories")
	}
}

func TestMeasuredParamsAreSane(t *testing.T) {
	g := paperGraph(t, 13)
	cfg := baseConfig(99)
	cfg.InitialConns = 400
	cfg.ChurnEvents = 600
	cfg.WarmupEvents = 100
	s, err := New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	p := res.Params
	if p.Pf <= 0 || p.Pf >= 1 {
		t.Fatalf("Pf = %v", p.Pf)
	}
	if p.Ps < 0 || p.Ps > 1 {
		t.Fatalf("Ps = %v", p.Ps)
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("measured params invalid: %v", err)
	}
	// The measured chain must be buildable and solvable.
	chain, err := markov.Build(p)
	if err != nil {
		t.Fatal(err)
	}
	pi, err := chain.SteadyState()
	if err != nil {
		t.Fatal(err)
	}
	mean, err := markov.MeanBandwidth(pi, cfg.Spec)
	if err != nil {
		t.Fatal(err)
	}
	if mean < 100 || mean > 500 {
		t.Fatalf("analytic mean %v outside elastic range", mean)
	}
}

func TestAnalyticTracksSimulation(t *testing.T) {
	// The headline validation of the paper: the Markov model's average
	// bandwidth is close to the simulated time-weighted average. We accept
	// a generous 20% relative band at this small scale; the experiment
	// harness demonstrates the tight match at paper scale.
	if testing.Short() {
		t.Skip("medium-load validation skipped in -short mode")
	}
	g := paperGraph(t, 17)
	cfg := baseConfig(5)
	cfg.InitialConns = 600
	cfg.ChurnEvents = 1200
	cfg.WarmupEvents = 200
	s, err := New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	chain, err := markov.Build(res.Params)
	if err != nil {
		t.Fatal(err)
	}
	pi, err := chain.SteadyState()
	if err != nil {
		t.Fatal(err)
	}
	analytic, err := markov.MeanBandwidth(pi, cfg.Spec)
	if err != nil {
		t.Fatal(err)
	}
	relErr := math.Abs(analytic-res.AvgBandwidth) / res.AvgBandwidth
	if relErr > 0.20 {
		t.Fatalf("analytic %v vs simulated %v: relative error %v",
			analytic, res.AvgBandwidth, relErr)
	}
}

func TestFailuresDropAndActivate(t *testing.T) {
	g := paperGraph(t, 19)
	cfg := baseConfig(3)
	cfg.Gamma = 0.0005 // frequent failures relative to churn
	cfg.RepairRate = 0.01
	cfg.InitialConns = 200
	cfg.ChurnEvents = 400
	cfg.WarmupEvents = 50
	s, err := New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Failures == 0 {
		t.Fatal("no failures injected despite gamma > 0")
	}
	if err := s.Manager().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Conservation still holds with drops.
	if res.Established != int64(res.AliveAtEnd)+res.Terminated+res.Dropped {
		t.Fatalf("conservation broken: %+v", res)
	}
}

func TestIdealAverageBandwidth(t *testing.T) {
	spec := qos.DefaultSpec()
	// Paper numbers: 10 Mb/s, 354 edges; at low load the ideal exceeds
	// Bmax and is clamped.
	if got := IdealAverageBandwidth(10000, 354, 1000, 4, spec); got != 500 {
		t.Fatalf("low load ideal = %v, want clamp at 500", got)
	}
	// High load: 10000*354/(5000*4) = 177.
	if got := IdealAverageBandwidth(10000, 354, 5000, 4, spec); math.Abs(got-177) > 0.1 {
		t.Fatalf("high load ideal = %v, want 177", got)
	}
	// Degenerate inputs.
	if got := IdealAverageBandwidth(10000, 354, 0, 4, spec); got != 500 {
		t.Fatalf("zero channels = %v", got)
	}
	if got := IdealAverageBandwidthUnclamped(10000, 354, 5000, 4); math.Abs(got-177) > 0.1 {
		t.Fatalf("unclamped = %v", got)
	}
	if got := IdealAverageBandwidthUnclamped(10000, 354, 0, 4); got != 0 {
		t.Fatalf("unclamped degenerate = %v", got)
	}
}

func BenchmarkSimChurnEvent(b *testing.B) {
	g := paperGraph(b, 11)
	cfg := baseConfig(1)
	cfg.InitialConns = 500
	cfg.ChurnEvents = b.N + 1
	cfg.WarmupEvents = 0
	s, err := New(g, cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	if _, err := s.Run(); err != nil {
		b.Fatal(err)
	}
}
