package shard_test

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"drqos/internal/netchaos"
	"drqos/internal/qos"
	"drqos/internal/shard"
)

// TestSuspectedShardFastFail503: once a participant times out a 2PC phase
// it is suspected, and until the suspicion lapses the plane refuses new
// cross establishes through it instantly — over HTTP as a 503 with
// Retry-After, never burning another prepare timeout per request. The
// unresolved abort it left behind drains after the heal.
func TestSuspectedShardFastFail503(t *testing.T) {
	g := tierGraph(t, 7)
	net := netchaos.New(11)
	c := newCoordinator(t, g, shard.Options{
		Shards:         4,
		PrepareTimeout: 50 * time.Millisecond,
		SuspectWindow:  time.Second,
		Invoke: func(ctx context.Context, s int, phase string, call func(context.Context) error) error {
			return net.Do(ctx, "coord", fmt.Sprintf("shard-%d", s), call)
		},
	})
	src, dst := crossPair(g, c.Plan())
	ctx := context.Background()

	// Learn the deterministic participant order, then release the probe.
	var participants []int
	c.SetTestHookAfterPrepare(func(s int, txn uint64) error {
		participants = append(participants, s)
		return nil
	})
	probe, err := c.Establish(ctx, src, dst, qos.DefaultSpec())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Terminate(ctx, probe.ID); err != nil {
		t.Fatal(err)
	}
	c.SetTestHookAfterPrepare(nil)
	if len(participants) < 2 {
		t.Fatalf("cross path touched %d shards, want >= 2", len(participants))
	}
	victim := participants[len(participants)-1]
	net.SetRule("coord", fmt.Sprintf("shard-%d", victim), netchaos.Rule{DropRequest: 1})

	// Doomed establish: prepare times out (after retries), presumed abort,
	// the unreachable victim's abort queues for resolution.
	if _, err := c.Establish(ctx, src, dst, qos.DefaultSpec()); err == nil {
		t.Fatal("establish through a partitioned shard succeeded")
	}
	if c.CrossTimeouts() == 0 {
		t.Fatal("no 2PC phase timeout counted")
	}
	if c.PendingResolutions() == 0 {
		t.Fatal("unreachable participant left nothing pending resolution")
	}

	// While suspected: instant 503 over HTTP, with Retry-After.
	srv := httptest.NewServer(shard.NewHandler(c))
	defer srv.Close()
	start := time.Now()
	resp, err := http.Post(srv.URL+"/v1/connections", "application/json",
		strings.NewReader(fmt.Sprintf(`{"src":%d,"dst":%d}`, src, dst)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if elapsed := time.Since(start); elapsed > 25*time.Millisecond {
		t.Fatalf("suspected-shard establish took %s over HTTP, want a fast refusal", elapsed)
	}
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("suspected-shard establish answered %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("fast-fail 503 carries no Retry-After")
	}
	if _, err := c.Establish(ctx, src, dst, qos.DefaultSpec()); !errors.Is(err, shard.ErrShardUnavailable) {
		t.Fatalf("direct establish during suspicion: %v, want ErrShardUnavailable", err)
	}

	// Heal and outwait the suspicion window (resolution skips suspected
	// shards); the queued abort then lands and the queue drains.
	net.Heal()
	deadline := time.Now().Add(5 * time.Second)
	for c.PendingResolutions() > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("%d transactions still pending after heal", c.PendingResolutions())
		}
		c.ResolvePending(ctx)
		time.Sleep(5 * time.Millisecond)
	}
	if reasons := c.AbortReasons(); reasons["timeout"] == 0 {
		t.Fatalf("abort reasons %v, want a timeout entry", reasons)
	}
	if _, err := c.Establish(ctx, src, dst, qos.DefaultSpec()); err != nil {
		t.Fatalf("post-heal cross establish: %v", err)
	}
	for i := 0; i < c.NumShards(); i++ {
		if err := c.Shard(i).CheckInvariants(ctx); err != nil {
			t.Fatalf("shard %d invariants after heal: %v", i, err)
		}
	}
}
