// HTTP/JSON front end for the sharded deployment. Same endpoints and
// status mapping as the single-shard API (internal/server/http.go), with
// connection IDs in the external encoding (low byte = shard index, 255 =
// cross-shard transaction), an extra GET /v1/shards describing the
// partition, and /v1/stats and /metrics aggregated across shards.
package shard

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"time"

	"drqos/internal/manager"
	"drqos/internal/overload"
	"drqos/internal/qos"
	"drqos/internal/server"
	"drqos/internal/topology"
)

// HandlerOption customizes NewHandler.
type HandlerOption func(*handlerConfig)

type handlerConfig struct {
	limiter      *overload.Limiter
	maxBodyBytes int64
}

// WithRateLimit adds per-client token-bucket rate limiting to the mutation
// endpoints, exactly as in the single-shard API. rate <= 0 disables it.
func WithRateLimit(rate, burst float64) HandlerOption {
	return func(c *handlerConfig) {
		if rate > 0 {
			c.limiter = overload.NewLimiter(rate, burst)
		}
	}
}

// WithMaxBodyBytes caps request-body size on the mutation endpoints.
func WithMaxBodyBytes(n int64) HandlerOption {
	return func(c *handlerConfig) {
		if n > 0 {
			c.maxBodyBytes = n
		}
	}
}

// EstablishResponse summarizes an admitted connection at the coordinator
// level. Intra-shard connections carry the full report fields; cross-shard
// ones report the rigid allocation and the global hop count.
type EstablishResponse struct {
	ID            int64 `json:"id"`
	Cross         bool  `json:"cross"`
	Shard         int   `json:"shard"`
	BandwidthKbps int64 `json:"bandwidth_kbps"`
	Level         int   `json:"level"`
	HasBackup     bool  `json:"has_backup"`
	PrimaryHops   int   `json:"primary_hops"`
}

// ShardsResponse describes the partition for shard-aware clients (drload
// uses it to steer intra- vs cross-shard traffic).
type ShardsResponse struct {
	Shards    int   `json:"shards"`
	Regions   int   `json:"regions"`
	NodeShard []int `json:"node_shard"`
}

// StatsResponse is the aggregated service view plus each shard's own Stats.
type StatsResponse struct {
	Shards         int          `json:"shards"`
	Aggregate      server.Stats `json:"aggregate"`
	CrossAttempts  int64        `json:"cross_attempts"`
	CrossCommitted int64        `json:"cross_committed"`
	CrossAborted   int64        `json:"cross_aborted"`
	CrossActive    int          `json:"cross_active"`
	// CrossTimeouts counts 2PC phase calls that hit their deadline;
	// CrossPending counts decided transactions still awaiting a
	// participant's acknowledgment; CrossAbortReasons tallies aborts by
	// cause.
	CrossTimeouts     int64            `json:"cross_timeouts"`
	CrossPending      int              `json:"cross_pending"`
	CrossAbortReasons map[string]int64 `json:"cross_abort_reasons,omitempty"`
	PerShard          []server.Stats   `json:"per_shard"`
}

type errorBody struct {
	Error             string `json:"error"`
	Rejected          bool   `json:"rejected,omitempty"`
	RetryAfterSeconds int64  `json:"retry_after_seconds,omitempty"`
}

// NewHandler returns the sharded HTTP/JSON API over c. Endpoints mirror
// server.NewHandler; see the package comment for the differences.
func NewHandler(c *Coordinator, opts ...HandlerOption) http.Handler {
	cfg := &handlerConfig{maxBodyBytes: 1 << 20}
	for _, o := range opts {
		o(cfg)
	}
	mux := http.NewServeMux()

	decodeBody := func(w http.ResponseWriter, r *http.Request, v any) bool {
		r.Body = http.MaxBytesReader(w, r.Body, cfg.maxBodyBytes)
		if err := json.NewDecoder(r.Body).Decode(v); err != nil {
			var tooBig *http.MaxBytesError
			if errors.As(err, &tooBig) {
				writeJSON(w, http.StatusRequestEntityTooLarge,
					errorBody{Error: fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit)})
				return false
			}
			writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad request body: " + err.Error()})
			return false
		}
		return true
	}

	admitClient := func(w http.ResponseWriter, r *http.Request) bool {
		if cfg.limiter == nil {
			return true
		}
		key := r.Header.Get("X-Client-ID")
		if key == "" {
			if host, _, err := net.SplitHostPort(r.RemoteAddr); err == nil {
				key = host
			} else {
				key = r.RemoteAddr
			}
		}
		ok, retry := cfg.limiter.Allow(key, time.Now())
		if ok {
			return true
		}
		writeShed(w, http.StatusTooManyRequests, retry,
			fmt.Sprintf("client %q over rate limit", key))
		return false
	}

	mux.HandleFunc("POST /v1/connections", func(w http.ResponseWriter, r *http.Request) {
		if !admitClient(w, r) {
			return
		}
		var req server.EstablishRequest
		if !decodeBody(w, r, &req) {
			return
		}
		res, err := c.Establish(r.Context(), topology.NodeID(req.Src), topology.NodeID(req.Dst), req.Spec())
		if err != nil {
			writeError(w, err)
			return
		}
		resp := EstablishResponse{
			ID: res.ID, Cross: res.Cross, Shard: res.Shard,
			BandwidthKbps: int64(res.AllocatedKbps),
		}
		if res.Report != nil && res.Report.Conn != nil {
			resp.Level = res.Report.Conn.Level
			resp.HasBackup = res.Report.Conn.HasBackup
			resp.PrimaryHops = res.Report.Conn.Primary.Hops()
		} else {
			resp.PrimaryHops = res.Hops
		}
		writeJSON(w, http.StatusCreated, resp)
	})
	mux.HandleFunc("DELETE /v1/connections/{id}", func(w http.ResponseWriter, r *http.Request) {
		if !admitClient(w, r) {
			return
		}
		id, err := strconv.ParseInt(r.PathValue("id"), 10, 64)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad connection id: " + err.Error()})
			return
		}
		if err := c.Terminate(r.Context(), id); err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"id": id})
	})
	mux.HandleFunc("POST /v1/faults/link", func(w http.ResponseWriter, r *http.Request) {
		if !admitClient(w, r) {
			return
		}
		var req server.FaultRequest
		if !decodeBody(w, r, &req) {
			return
		}
		switch req.Action {
		case "", "fail":
			rep, err := c.FailLink(r.Context(), topology.LinkID(req.Link))
			if err != nil {
				writeError(w, err)
				return
			}
			writeJSON(w, http.StatusOK, server.FaultResponse{
				Link: req.Link, Action: "fail",
				Squeezed: len(rep.Squeezed),
			})
		case "repair":
			restored, err := c.RepairLink(r.Context(), topology.LinkID(req.Link))
			if err != nil {
				writeError(w, err)
				return
			}
			writeJSON(w, http.StatusOK, server.FaultResponse{
				Link: req.Link, Action: "repair", Reprotected: restored,
			})
		default:
			writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("unknown action %q", req.Action)})
		}
	})
	mux.HandleFunc("GET /v1/shards", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, ShardsResponse{
			Shards:    c.plan.Shards,
			Regions:   c.plan.Regions,
			NodeShard: c.plan.NodeShard,
		})
	})
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, c.statsResponse())
	})
	mux.HandleFunc("GET /v1/invariants", func(w http.ResponseWriter, r *http.Request) {
		perShard := make([]map[string]any, len(c.shards))
		allOK := true
		for i, s := range c.shards {
			err := s.CheckInvariants(r.Context())
			degraded, reason := s.Degraded()
			entry := map[string]any{"ok": err == nil, "degraded": degraded}
			if err != nil {
				entry["error"] = err.Error()
				allOK = false
			}
			if reason != "" {
				entry["degraded_reason"] = reason
			}
			perShard[i] = entry
		}
		code := http.StatusOK
		if !allOK {
			code = http.StatusInternalServerError
		}
		writeJSON(w, code, map[string]any{"ok": allOK, "shards": perShard})
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		resp := c.statsResponse()
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		server.WriteMetrics(w, resp.Aggregate)
		gauge := func(name, help string, v any) {
			fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %v\n", name, help, name, name, v)
		}
		counter := func(name, help string, v int64) {
			fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
		}
		gauge("drqos_shards", "Region shards in this deployment.", resp.Shards)
		gauge("drqos_cross_connections_active", "Committed cross-shard connections currently alive.", resp.CrossActive)
		counter("drqos_cross_establish_total", "Cross-shard two-phase establishes attempted.", resp.CrossAttempts)
		counter("drqos_cross_commit_total", "Cross-shard transactions committed.", resp.CrossCommitted)
		counter("drqos_cross_abort_total", "Cross-shard transactions aborted.", resp.CrossAborted)
		counter("drqos_2pc_timeouts_total", "Cross-shard 2PC phase calls that hit their deadline.", resp.CrossTimeouts)
		gauge("drqos_2pc_pending_resolutions", "Decided cross-shard transactions still awaiting a participant acknowledgment.", resp.CrossPending)
		fmt.Fprintf(w, "# HELP drqos_2pc_aborts_total Cross-shard transactions aborted, by reason.\n# TYPE drqos_2pc_aborts_total counter\n")
		for _, reason := range []string{"timeout", "unreachable", "rejected", "overloaded", "degraded", "error"} {
			fmt.Fprintf(w, "drqos_2pc_aborts_total{reason=%q} %d\n", reason, resp.CrossAbortReasons[reason])
		}
		fmt.Fprintf(w, "# HELP drqos_shard_connections_alive Alive connections per shard.\n# TYPE drqos_shard_connections_alive gauge\n")
		for i, st := range resp.PerShard {
			fmt.Fprintf(w, "drqos_shard_connections_alive{shard=\"%d\"} %d\n", i, st.Alive)
		}
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"ok": true})
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		degraded, overloaded, recovering := false, false, false
		for _, s := range c.shards {
			if d, _ := s.Degraded(); d {
				degraded = true
			}
			if s.Overloaded() {
				overloaded = true
			}
			if rec, _, _, _ := s.RecoveryStatus(); rec {
				recovering = true
			}
		}
		body := map[string]any{
			"ready":      !degraded && !recovering && !overloaded,
			"degraded":   degraded,
			"recovering": recovering,
			"overloaded": overloaded,
		}
		if degraded || recovering || overloaded {
			w.Header().Set("Retry-After", "1")
			writeJSON(w, http.StatusServiceUnavailable, body)
			return
		}
		writeJSON(w, http.StatusOK, body)
	})
	return mux
}

// statsResponse aggregates every shard's epoch-view Stats. Counters and
// populations sum; boolean health flags OR; the level histogram merges
// element-wise. Lane delay digests are per-shard detail and stay in
// PerShard only.
func (c *Coordinator) statsResponse() StatsResponse {
	resp := StatsResponse{Shards: len(c.shards)}
	agg := server.Stats{
		Nodes: c.g.NumNodes(),
		Links: c.g.NumLinks(),
	}
	var bwWeighted float64
	for _, s := range c.shards {
		st := s.StatsView()
		resp.PerShard = append(resp.PerShard, st)
		agg.CapacityKbps = st.CapacityKbps
		agg.Alive += st.Alive
		agg.Unprotected += st.Unprotected
		bwWeighted += st.AvgBandwidthKbps * float64(st.Alive)
		for len(agg.LevelHistogram) < len(st.LevelHistogram) {
			agg.LevelHistogram = append(agg.LevelHistogram, 0)
		}
		for i, n := range st.LevelHistogram {
			agg.LevelHistogram[i] += n
		}
		agg.Requests += st.Requests
		agg.Rejects += st.Rejects
		if st.Degraded {
			agg.Degraded = true
		}
		if st.Overloaded {
			agg.Overloaded = true
		}
		if st.Recovering {
			agg.Recovering = true
		}
		agg.InvariantViolations += st.InvariantViolations
		agg.OverloadEpisodes += st.OverloadEpisodes
		agg.ShedExpired += st.ShedExpired
		agg.ShedCanceled += st.ShedCanceled
		agg.Journaled = agg.Journaled || st.Journaled
		agg.JournalErrors += st.JournalErrors
		agg.Recoveries += st.Recoveries
		agg.RecoveryFailures += st.RecoveryFailures
		agg.QueueDepth += st.QueueDepth
		agg.Commands.Processed += st.Commands.Processed
		agg.Commands.Establishes += st.Commands.Establishes
		agg.Commands.Terminates += st.Commands.Terminates
		agg.Commands.Failures += st.Commands.Failures
		agg.Commands.Repairs += st.Commands.Repairs
		agg.Commands.Snapshots += st.Commands.Snapshots
	}
	if agg.Alive > 0 {
		agg.AvgBandwidthKbps = bwWeighted / float64(agg.Alive)
	}
	if agg.Requests > 0 {
		agg.RejectRate = float64(agg.Rejects) / float64(agg.Requests)
	}
	c.mu.Lock()
	for l := range c.failed {
		agg.FailedLinks = append(agg.FailedLinks, int(l))
	}
	resp.CrossActive = len(c.cross)
	c.mu.Unlock()
	resp.CrossAttempts, resp.CrossCommitted, resp.CrossAborted = c.CrossStats()
	resp.CrossTimeouts = c.CrossTimeouts()
	resp.CrossPending = c.PendingResolutions()
	resp.CrossAbortReasons = c.AbortReasons()
	resp.Aggregate = agg
	return resp
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeShed(w http.ResponseWriter, code int, retryAfter time.Duration, msg string) {
	secs := int64((retryAfter + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	writeJSON(w, code, errorBody{Error: msg, RetryAfterSeconds: secs})
}

// writeError mirrors the single-shard status mapping. ErrNoRoute — a
// cross-shard path does not exist — maps like a rejection: the request was
// well-formed, the network cannot carry it.
func writeError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, manager.ErrRejected), errors.Is(err, ErrNoRoute):
		writeJSON(w, http.StatusConflict, errorBody{Error: err.Error(), Rejected: true})
	case errors.Is(err, qos.ErrInvalidSpec):
		writeJSON(w, http.StatusUnprocessableEntity, errorBody{Error: err.Error()})
	case errors.Is(err, server.ErrNotFound):
		writeJSON(w, http.StatusNotFound, errorBody{Error: err.Error()})
	case errors.Is(err, server.ErrConflict):
		writeJSON(w, http.StatusConflict, errorBody{Error: err.Error()})
	case errors.Is(err, server.ErrOverloaded), errors.Is(err, ErrShardUnavailable):
		writeShed(w, http.StatusServiceUnavailable, time.Second, err.Error())
	case errors.Is(err, server.ErrDegraded), errors.Is(err, server.ErrServerClosed):
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: err.Error()})
	default:
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
	}
}
