package shard_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"drqos/internal/channel"
	"drqos/internal/journal"
	"drqos/internal/manager"
	"drqos/internal/qos"
	"drqos/internal/rng"
	"drqos/internal/server"
	"drqos/internal/shard"
	"drqos/internal/topology"
)

func tierGraph(t *testing.T, seed uint64) *topology.Graph {
	t.Helper()
	g, err := topology.TransitStub(topology.DefaultTransitStub(), rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func waxmanGraph(t *testing.T, nodes int, seed uint64) *topology.Graph {
	t.Helper()
	g, err := topology.Waxman(topology.WaxmanConfig{
		Nodes: nodes, Alpha: 0.33, Beta: 0.25, EnsureConnected: true,
	}, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func newCoordinator(t *testing.T, g *topology.Graph, opt shard.Options) *shard.Coordinator {
	t.Helper()
	if opt.Manager.Capacity == 0 {
		opt.Manager.Capacity = 10000
	}
	c, err := shard.New(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Shutdown(context.Background()) })
	return c
}

// crossPair finds two stub nodes owned by different shards: their path
// crosses at least one stub run per side plus the transit core, so the 2PC
// always has >= 2 participants.
func crossPair(g *topology.Graph, p *shard.Plan) (src, dst topology.NodeID) {
	src, dst = -1, -1
	for n, s := range p.NodeShard {
		if g.Tag(topology.NodeID(n)) != "stub" {
			continue
		}
		if src == -1 {
			src = topology.NodeID(n)
			continue
		}
		if s != p.NodeShard[src] {
			return src, topology.NodeID(n)
		}
	}
	panic("no cross pair")
}

// intraPair finds a distinct node pair owned by the same shard.
func intraPair(p *shard.Plan) (src, dst topology.NodeID) {
	for n, s := range p.NodeShard {
		if n != 0 && s == p.NodeShard[0] {
			return 0, topology.NodeID(n)
		}
	}
	panic("no intra pair")
}

func fingerprints(t *testing.T, c *shard.Coordinator) []string {
	t.Helper()
	out := make([]string, c.NumShards())
	for i := range out {
		fp, err := c.Shard(i).StateFingerprint(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		out[i] = fp
	}
	return out
}

// population is the reservation-visible state of one shard: what a leaked
// or lingering pinned connection would change. Unlike the full fingerprint
// it excludes the monotonic request counters, which an aborted prepare
// legitimately bumps.
type population struct {
	Alive       int
	Unprotected int
	Hist        []int
	AvgKbps     float64
}

func populations(t *testing.T, c *shard.Coordinator) []population {
	t.Helper()
	out := make([]population, c.NumShards())
	for i := range out {
		st, err := c.Shard(i).Snapshot(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		hist := st.LevelHistogram
		// Trim trailing zero levels: the histogram slice keeps its high-water
		// length after connections leave, which is not a population change.
		for len(hist) > 0 && hist[len(hist)-1] == 0 {
			hist = hist[:len(hist)-1]
		}
		if len(hist) == 0 {
			hist = nil
		}
		out[i] = population{
			Alive: st.Alive, Unprotected: st.Unprotected,
			Hist: hist, AvgKbps: st.AvgBandwidthKbps,
		}
	}
	return out
}

func TestPlanDeterministic(t *testing.T) {
	g := tierGraph(t, 7)
	p1, err := shard.BuildPlan(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := shard.BuildPlan(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p1.NodeShard, p2.NodeShard) || !reflect.DeepEqual(p1.LinkShard, p2.LinkShard) {
		t.Fatal("same topology and shard count produced different plans")
	}
	if p1.Regions != 4 {
		t.Fatalf("tier topology with 4 transit nodes split into %d regions, want 4", p1.Regions)
	}

	// Every node owned by exactly one shard, every link in exactly one sub.
	ownedNodes, ownedLinks := 0, 0
	for s := 0; s < 4; s++ {
		sub := p1.Subs[s]
		for n, sh := range p1.NodeShard {
			if sh == s {
				ownedNodes++
				if _, ok := sub.LocalNode[topology.NodeID(n)]; !ok {
					t.Fatalf("shard %d missing its own node %d", s, n)
				}
			}
		}
		ownedLinks += len(sub.GlobalLink)
		for gl, ll := range sub.LocalLink {
			if p1.LinkShard[gl] != s {
				t.Fatalf("shard %d holds link %d owned by shard %d", s, gl, p1.LinkShard[gl])
			}
			lk := sub.Graph.Link(ll)
			glk := g.Link(gl)
			if sub.GlobalNode[lk.A] != glk.A || sub.GlobalNode[lk.B] != glk.B {
				t.Fatalf("shard %d link %d endpoint mapping wrong", s, gl)
			}
		}
	}
	if ownedNodes != g.NumNodes() {
		t.Fatalf("shards own %d nodes, graph has %d", ownedNodes, g.NumNodes())
	}
	if ownedLinks != g.NumLinks() {
		t.Fatalf("shard subs hold %d links, graph has %d — capacity must be counted exactly once", ownedLinks, g.NumLinks())
	}

	// Untagged topologies fall back to contiguous node-ID ranges.
	w := waxmanGraph(t, 30, 3)
	pw, err := shard.BuildPlan(w, 3)
	if err != nil {
		t.Fatal(err)
	}
	for n := 1; n < len(pw.NodeShard); n++ {
		if pw.NodeShard[n] < pw.NodeShard[n-1] {
			t.Fatalf("fallback plan not contiguous at node %d", n)
		}
	}

	// Error cases: out-of-range counts and more shards than regions.
	if _, err := shard.BuildPlan(g, 0); err == nil {
		t.Fatal("BuildPlan accepted 0 shards")
	}
	if _, err := shard.BuildPlan(g, shard.MaxShards+1); err == nil {
		t.Fatal("BuildPlan accepted > MaxShards")
	}
	if _, err := shard.BuildPlan(g, 5); err == nil {
		t.Fatal("BuildPlan split a region: 5 shards over 4 regions")
	}
}

func TestIntraShardEstablish(t *testing.T) {
	g := tierGraph(t, 7)
	c := newCoordinator(t, g, shard.Options{Shards: 4})
	src, dst := intraPair(c.Plan())
	ctx := context.Background()

	res, err := c.Establish(ctx, src, dst, qos.DefaultSpec())
	if err != nil {
		t.Fatal(err)
	}
	if res.Cross || res.Shard != c.Plan().NodeShard[src] || res.Report == nil {
		t.Fatalf("intra-shard establish misrouted: %+v", res)
	}
	if res.ID%256 != int64(res.Shard) {
		t.Fatalf("external ID %d does not encode shard %d", res.ID, res.Shard)
	}
	if err := c.Terminate(ctx, res.ID); err != nil {
		t.Fatal(err)
	}
	if err := c.Terminate(ctx, res.ID); !errors.Is(err, server.ErrNotFound) {
		t.Fatalf("double terminate: got %v, want ErrNotFound", err)
	}
}

func TestCrossShardEstablishCommit(t *testing.T) {
	g := tierGraph(t, 7)
	c := newCoordinator(t, g, shard.Options{Shards: 4})
	src, dst := crossPair(g, c.Plan())
	ctx := context.Background()

	before := populations(t, c)
	res, err := c.Establish(ctx, src, dst, qos.DefaultSpec())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Cross || res.ID%256 != 255 {
		t.Fatalf("cross establish got %+v", res)
	}
	if res.AllocatedKbps != qos.DefaultSpec().Min {
		t.Fatalf("cross connection allocated %v, want rigid Min %v", res.AllocatedKbps, qos.DefaultSpec().Min)
	}
	if _, committed, aborted := c.CrossStats(); committed != 1 || aborted != 0 {
		t.Fatalf("cross stats committed=%d aborted=%d", committed, aborted)
	}
	pinned := 0
	for i := 0; i < c.NumShards(); i++ {
		st := c.Shard(i).StatsView()
		pinned += st.Alive
	}
	if pinned == 0 {
		t.Fatal("commit pinned no local connections")
	}

	if err := c.Terminate(ctx, res.ID); err != nil {
		t.Fatal(err)
	}
	after := populations(t, c)
	if !reflect.DeepEqual(before, after) {
		t.Fatal("terminate did not release every shard's pinned state")
	}
	if err := c.Terminate(ctx, res.ID); !errors.Is(err, server.ErrNotFound) {
		t.Fatalf("double terminate of cross conn: got %v, want ErrNotFound", err)
	}
}

func TestCrossAbortOnPrepareTimeout(t *testing.T) {
	g := tierGraph(t, 7)
	c := newCoordinator(t, g, shard.Options{Shards: 4, PrepareTimeout: time.Nanosecond})
	src, dst := crossPair(g, c.Plan())

	before := fingerprints(t, c)
	_, err := c.Establish(context.Background(), src, dst, qos.DefaultSpec())
	if err == nil {
		t.Fatal("establish succeeded despite unmeetable prepare timeout")
	}
	if _, committed, aborted := c.CrossStats(); committed != 0 || aborted != 1 {
		t.Fatalf("cross stats committed=%d aborted=%d, want 0/1", committed, aborted)
	}
	if after := fingerprints(t, c); !reflect.DeepEqual(before, after) {
		t.Fatal("timed-out prepare leaked pinned state")
	}
}

func TestCrossAbortOnDegradedShard(t *testing.T) {
	g := tierGraph(t, 7)
	c := newCoordinator(t, g, shard.Options{Shards: 4})
	src, dst := crossPair(g, c.Plan())
	ctx := context.Background()

	// Dry run to learn the deterministic participant set, then release it.
	res, err := c.Establish(ctx, src, dst, qos.DefaultSpec())
	if err != nil {
		t.Fatal(err)
	}
	participants := make([]int, 0, 4)
	for i := 0; i < c.NumShards(); i++ {
		if c.Shard(i).StatsView().Alive > 0 {
			participants = append(participants, i)
		}
	}
	if err := c.Terminate(ctx, res.ID); err != nil {
		t.Fatal(err)
	}
	if len(participants) < 2 {
		t.Fatalf("cross path touched %d shards, want >= 2", len(participants))
	}

	// Latch the LAST participant degraded: earlier prepares succeed, its
	// prepare refuses, the coordinator must abort the earlier ones.
	victim := participants[len(participants)-1]
	if err := c.Shard(victim).CorruptForTesting(ctx); err == nil {
		t.Fatal("CorruptForTesting reported clean state")
	}
	if deg, _ := c.Shard(victim).Degraded(); !deg {
		t.Fatal("victim shard not degraded")
	}

	before := populations(t, c)
	if _, err := c.Establish(ctx, src, dst, qos.DefaultSpec()); !errors.Is(err, server.ErrDegraded) {
		t.Fatalf("establish through degraded shard: got %v, want ErrDegraded", err)
	}
	if after := populations(t, c); !reflect.DeepEqual(before, after) {
		t.Fatal("aborted 2PC leaked pinned state on surviving shards")
	}
	if _, _, aborted := c.CrossStats(); aborted != 1 {
		t.Fatalf("aborted=%d, want 1", aborted)
	}
}

// TestCrashBetweenPrepareAndCommit kills the first participant right after
// its prepare is durable, shuts the whole deployment down (no commit was
// journaled anywhere), and restarts it: boot reconciliation must abort the
// in-flight transaction, leaving every shard bit-identical to its
// acknowledged pre-transaction state.
func TestCrashBetweenPrepareAndCommit(t *testing.T) {
	g := tierGraph(t, 7)
	dir := t.TempDir()
	jopt := journal.Options{FsyncEvery: -1}
	var victim int
	opt := shard.Options{
		Shards: 4, Dir: dir, Journal: jopt,
		Manager: manager.Config{Capacity: 10000},
	}
	c, err := shard.New(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// Acknowledged pre-transaction load: a few intra-shard connections.
	src, dst := intraPair(c.Plan())
	if _, err := c.Establish(ctx, src, dst, qos.DefaultSpec()); err != nil {
		t.Fatal(err)
	}
	cs, cd := crossPair(g, c.Plan())
	res, err := c.Establish(ctx, cs, cd, qos.DefaultSpec())
	if err != nil {
		t.Fatal(err)
	}
	committedCross := res.ID
	beforePop := populations(t, c)

	// Kill the first participant inside the 2PC, after its prepare landed.
	killed := false
	c2 := c // closure target; the hook fires on the same coordinator
	opt.TestHookAfterPrepare = func(s int, txn uint64) error {
		if killed {
			return nil
		}
		killed = true
		victim = s
		if err := c2.Shard(s).Shutdown(context.Background()); err != nil {
			t.Errorf("victim shutdown: %v", err)
		}
		return fmt.Errorf("chaos: shard %d killed mid-2PC", s)
	}
	// Options are copied at New; reach the hook through the test seam.
	c.SetTestHookAfterPrepare(opt.TestHookAfterPrepare)

	if _, err := c.Establish(ctx, cs, cd, qos.DefaultSpec()); err == nil {
		t.Fatal("doomed cross establish succeeded")
	}
	if !killed {
		t.Fatal("test hook never fired")
	}

	// Survivors must carry no trace of the doomed transaction. Capture
	// their live fingerprints — the replay ≡ live baseline for the restart.
	liveFPs := make([]string, c.NumShards())
	for i := 0; i < c.NumShards(); i++ {
		if i == victim {
			continue
		}
		fp, err := c.Shard(i).StateFingerprint(ctx)
		if err != nil {
			t.Fatal(err)
		}
		liveFPs[i] = fp
		st, err := c.Shard(i).Snapshot(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if st.Alive != beforePop[i].Alive {
			t.Fatalf("surviving shard %d holds %d connections after aborted 2PC, want %d",
				i, st.Alive, beforePop[i].Alive)
		}
	}

	// Full crash: down everything, restart on the same directories.
	if err := c.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	opt.TestHookAfterPrepare = nil
	c, err = shard.New(g, opt)
	if err != nil {
		t.Fatal(err)
	}

	// Survivors replay bit-identically to their live state; the victim's
	// orphaned prepare is reconciled away, so every shard's reservation
	// population matches the acknowledged prefix.
	afterFPs := fingerprints(t, c)
	for i := 0; i < c.NumShards(); i++ {
		if i != victim && afterFPs[i] != liveFPs[i] {
			t.Fatalf("surviving shard %d replayed to a different state than it served live", i)
		}
	}
	if afterPop := populations(t, c); !reflect.DeepEqual(beforePop, afterPop) {
		t.Fatalf("replayed populations diverged from acknowledged prefix:\n before %+v\n after  %+v", beforePop, afterPop)
	}

	// A second restart is a fixed point: reconciliation already resolved
	// everything, so replay is deterministic down to the last bit.
	if err := c.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	c, err = shard.New(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown(ctx)
	if again := fingerprints(t, c); !reflect.DeepEqual(afterFPs, again) {
		t.Fatalf("second restart changed state:\n first  %v\n second %v", afterFPs, again)
	}
	// The committed cross connection survived the crash and terminates.
	if err := c.Terminate(ctx, committedCross); err != nil {
		t.Fatalf("committed cross connection lost in crash: %v", err)
	}
	// And the plane still admits new work, intra and cross.
	if _, err := c.Establish(ctx, cs, cd, qos.DefaultSpec()); err != nil {
		t.Fatalf("post-recovery cross establish: %v", err)
	}
}

// TestSingleShardBitIdentical drives the same operation sequence through a
// 1-shard coordinator and a standalone server and requires bit-identical
// journals and state fingerprints: -shards 1 IS the old plane.
func TestSingleShardBitIdentical(t *testing.T) {
	g := tierGraph(t, 7)
	jopt := journal.Options{FsyncEvery: -1}
	mcfg := manager.Config{Capacity: 10000}

	cdir := t.TempDir()
	c := newCoordinator(t, g, shard.Options{Shards: 1, Dir: cdir, Journal: jopt, Manager: mcfg})

	sdir := t.TempDir()
	jnl, _, err := journal.Open(sdir, jopt)
	if err != nil {
		t.Fatal(err)
	}
	defer jnl.Close()
	s, err := server.New(g, mcfg, server.Options{Journal: jnl})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown(context.Background())

	ctx := context.Background()
	r := rng.New(42)
	var ids []int64
	for i := 0; i < 40; i++ {
		src := topology.NodeID(r.Intn(g.NumNodes()))
		dst := topology.NodeID(r.Intn(g.NumNodes()))
		if src == dst {
			continue
		}
		cres, cerr := c.Establish(ctx, src, dst, qos.DefaultSpec())
		srep, serr := s.Establish(ctx, src, dst, qos.DefaultSpec())
		if (cerr == nil) != (serr == nil) {
			t.Fatalf("establish %d→%d: coordinator err %v, server err %v", src, dst, cerr, serr)
		}
		if cerr == nil {
			// With one shard the external ID is localID*256+0.
			if cres.ID != int64(srep.Conn.ID)*256 {
				t.Fatalf("ID drift: coordinator %d, server conn %d", cres.ID, srep.Conn.ID)
			}
			ids = append(ids, cres.ID)
		}
	}
	if len(ids) < 5 {
		t.Fatalf("only %d establishes landed", len(ids))
	}
	// Terminate before the fault injection: link 0's failure may legally
	// drop the connection, and a dropped ID answers ErrNotFound.
	if err := c.Terminate(ctx, ids[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Terminate(ctx, channel.ConnID(ids[0]/256)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.FailLink(ctx, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := s.FailLink(ctx, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := c.RepairLink(ctx, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := s.RepairLink(ctx, 0); err != nil {
		t.Fatal(err)
	}

	cfp, err := c.Shard(0).StateFingerprint(ctx)
	if err != nil {
		t.Fatal(err)
	}
	sfp, err := s.StateFingerprint(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if cfp != sfp {
		t.Fatalf("state fingerprints diverged:\n shard      %s\n standalone %s", cfp, sfp)
	}

	// Journal bytes must match record-for-record.
	if err := c.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if err := jnl.Sync(); err != nil {
		t.Fatal(err)
	}
	compareDirs(t, filepath.Join(cdir, "shard-000"), sdir)
}

func compareDirs(t *testing.T, a, b string) {
	t.Helper()
	ae, err := os.ReadDir(a)
	if err != nil {
		t.Fatal(err)
	}
	be, err := os.ReadDir(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(ae) != len(be) {
		t.Fatalf("journal dirs differ: %d vs %d files", len(ae), len(be))
	}
	for i := range ae {
		if ae[i].Name() != be[i].Name() {
			t.Fatalf("journal file name drift: %s vs %s", ae[i].Name(), be[i].Name())
		}
		ab, err := os.ReadFile(filepath.Join(a, ae[i].Name()))
		if err != nil {
			t.Fatal(err)
		}
		bb, err := os.ReadFile(filepath.Join(b, be[i].Name()))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ab, bb) {
			t.Fatalf("journal file %s not bit-identical (%d vs %d bytes)", ae[i].Name(), len(ab), len(bb))
		}
	}
}

// TestCrossCountersSurviveRestart drives committed and aborted cross-shard
// transactions, snapshots every shard, restarts the whole deployment from
// disk, and asserts the coordinator-level 2PC counters (the source of
// drqos_cross_{establish,commit,abort}_total) are preserved and keep
// counting from where they left off.
func TestCrossCountersSurviveRestart(t *testing.T) {
	g := tierGraph(t, 7)
	dir := t.TempDir()
	opt := shard.Options{
		Shards: 4, Dir: dir, Journal: journal.Options{FsyncEvery: 1},
		Manager: manager.Config{Capacity: 10000},
	}
	c, err := shard.New(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	src, dst := crossPair(g, c.Plan())

	for i := 0; i < 2; i++ {
		res, err := c.Establish(ctx, src, dst, qos.DefaultSpec())
		if err != nil {
			t.Fatal(err)
		}
		if !res.Cross {
			t.Fatalf("establish %d did not cross shards", i)
		}
	}
	c.SetTestHookAfterPrepare(func(int, uint64) error { return errors.New("injected prepare failure") })
	if _, err := c.Establish(ctx, src, dst, qos.DefaultSpec()); err == nil {
		t.Fatal("establish succeeded despite injected prepare failure")
	}
	c.SetTestHookAfterPrepare(nil)
	if att, com, abo := c.CrossStats(); att != 3 || com != 2 || abo != 1 {
		t.Fatalf("pre-restart cross stats %d/%d/%d, want 3/2/1", att, com, abo)
	}

	// The counters travel in snapshot headers, so force one per shard before
	// shutting down.
	for i := 0; i < c.NumShards(); i++ {
		if err := c.Shard(i).SnapshotNow(ctx); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	c2 := newCoordinator(t, g, opt)
	if att, com, abo := c2.CrossStats(); att != 3 || com != 2 || abo != 1 {
		t.Fatalf("post-restart cross stats %d/%d/%d, want 3/2/1", att, com, abo)
	}
	// And the restored baseline keeps counting.
	if _, err := c2.Establish(ctx, src, dst, qos.DefaultSpec()); err != nil {
		t.Fatal(err)
	}
	if att, com, abo := c2.CrossStats(); att != 4 || com != 3 || abo != 1 {
		t.Fatalf("post-restart establish cross stats %d/%d/%d, want 4/3/1", att, com, abo)
	}
}
