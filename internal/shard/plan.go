// Package shard partitions the admission plane by region: one
// manager.Manager + journal + overload detector + epoch snapshot per
// shard, each behind its own two-lane actor loop, with establishes routed
// to the shard owning the source node. Cross-shard connections reserve via
// a two-phase prepare/commit over the affected shards' command lanes
// (coordinator.go). The partition itself — which shard owns which nodes
// and links, and each shard's local subgraph — is the Plan built here.
//
// Regions come from the transit-stub generator's natural domains: every
// transit-tagged node seeds a region and the stub domains hanging off it
// join that region (multi-source BFS, deterministic tie-break by node ID).
// Topologies without transit tags fall back to contiguous node-ID ranges.
// Regions are grouped contiguously onto shards, a link is owned by the
// lower of its endpoints' shards, and each shard's subgraph contains its
// own nodes plus "border replicas" — foreign endpoints of the links it
// owns — so a shard can reserve its run of a cross-shard path entirely
// locally. Every global link lives in exactly one shard subgraph, so
// capacity is counted once.
package shard

import (
	"fmt"

	"drqos/internal/topology"
)

// MaxShards bounds a deployment: the journal's prepare records carry the
// participant set as a 32-bit shard bitmask.
const MaxShards = 32

// Plan is the deterministic node/link → shard assignment plus each shard's
// local subgraph with its global↔local ID maps. Same topology + same shard
// count → same plan, always (the chaos and recovery gates depend on it).
type Plan struct {
	Shards    int
	Regions   int
	NodeShard []int // global node ID → owning shard
	LinkShard []int // global link ID → owning shard
	Subs      []*Sub
}

// Sub is one shard's view of the topology: a standalone graph over the
// shard's own nodes plus the border replicas its owned cross-shard links
// reach, with maps between global and local IDs.
type Sub struct {
	Graph *topology.Graph
	// LocalNode maps global → local node IDs for nodes present in Graph.
	LocalNode map[topology.NodeID]topology.NodeID
	// GlobalNode maps local → global node IDs.
	GlobalNode []topology.NodeID
	// LocalLink / GlobalLink map link IDs the same way (owned links only).
	LocalLink  map[topology.LinkID]topology.LinkID
	GlobalLink []topology.LinkID
}

// BuildPlan partitions g into shards. shards must be in [1, MaxShards] and
// not exceed the region count (a region is never split).
func BuildPlan(g *topology.Graph, shards int) (*Plan, error) {
	if shards < 1 || shards > MaxShards {
		return nil, fmt.Errorf("shard: shard count %d out of range [1, %d]", shards, MaxShards)
	}
	region, regions := regionize(g, shards)
	if shards > regions {
		return nil, fmt.Errorf("shard: %d shards but only %d regions — a region is never split", shards, regions)
	}

	p := &Plan{
		Shards:    shards,
		Regions:   regions,
		NodeShard: make([]int, g.NumNodes()),
		LinkShard: make([]int, g.NumLinks()),
	}
	for n, r := range region {
		// Contiguous grouping: region r lands on shard r*shards/regions.
		p.NodeShard[n] = r * shards / regions
	}
	for l := 0; l < g.NumLinks(); l++ {
		lk := g.Link(topology.LinkID(l))
		sa, sb := p.NodeShard[lk.A], p.NodeShard[lk.B]
		if sb < sa {
			sa = sb
		}
		p.LinkShard[l] = sa
	}

	p.Subs = make([]*Sub, shards)
	for s := 0; s < shards; s++ {
		p.Subs[s] = buildSub(g, p, s)
	}
	return p, nil
}

// regionize assigns every node a region. With transit tags, each transit
// node seeds one region and a multi-source BFS floods the stub domains;
// without tags, fall back to `shards` contiguous node-ID ranges.
func regionize(g *topology.Graph, shards int) (region []int, regions int) {
	n := g.NumNodes()
	region = make([]int, n)
	var transit []topology.NodeID
	for i := 0; i < n; i++ {
		if g.Tag(topology.NodeID(i)) == "transit" {
			transit = append(transit, topology.NodeID(i))
		}
	}
	if len(transit) == 0 {
		for i := 0; i < n; i++ {
			region[i] = i * shards / n
		}
		return region, shards
	}
	for i := range region {
		region[i] = -1
	}
	queue := make([]topology.NodeID, 0, n)
	for r, t := range transit {
		region[t] = r
		queue = append(queue, t)
	}
	// BFS in deterministic order: the queue is seeded in transit-ID order
	// and ForEachNeighbor iterates links in insertion order, so equidistant
	// ties always break the same way.
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		g.ForEachNeighbor(u, func(v topology.NodeID, _ topology.LinkID) {
			if region[v] == -1 {
				region[v] = region[u]
				queue = append(queue, v)
			}
		})
	}
	// A disconnected stray (should not happen on generator output) joins
	// region 0 rather than crashing the plan.
	for i := range region {
		if region[i] == -1 {
			region[i] = 0
		}
	}
	return region, len(transit)
}

// buildSub assembles shard s's local graph: own nodes plus border
// replicas, then the owned links — both in global-ID order, so the local
// numbering is deterministic.
func buildSub(g *topology.Graph, p *Plan, s int) *Sub {
	include := make([]bool, g.NumNodes())
	for n, sh := range p.NodeShard {
		if sh == s {
			include[n] = true
		}
	}
	for l, sh := range p.LinkShard {
		if sh == s {
			lk := g.Link(topology.LinkID(l))
			include[lk.A] = true
			include[lk.B] = true
		}
	}
	sub := &Sub{
		LocalNode: make(map[topology.NodeID]topology.NodeID),
		LocalLink: make(map[topology.LinkID]topology.LinkID),
	}
	count := 0
	for n := range include {
		if include[n] {
			count++
		}
	}
	sub.Graph = topology.NewGraph(count)
	for n := 0; n < g.NumNodes(); n++ {
		if !include[n] {
			continue
		}
		gn := topology.NodeID(n)
		ln := sub.Graph.AddTaggedNode(g.Pos(gn), g.Tag(gn))
		sub.LocalNode[gn] = ln
		sub.GlobalNode = append(sub.GlobalNode, gn)
	}
	for l := 0; l < g.NumLinks(); l++ {
		if p.LinkShard[l] != s {
			continue
		}
		lk := g.Link(topology.LinkID(l))
		ll, err := sub.Graph.AddLink(sub.LocalNode[lk.A], sub.LocalNode[lk.B])
		if err != nil {
			// Both endpoints were just added and the global graph has no
			// duplicate links, so this cannot happen on a valid graph.
			panic(fmt.Sprintf("shard: sub graph link %d: %v", l, err))
		}
		sub.LocalLink[topology.LinkID(l)] = ll
		sub.GlobalLink = append(sub.GlobalLink, topology.LinkID(l))
	}
	return sub
}
