// The Coordinator owns one server.Server + journal per shard and fronts
// them with the global API the daemon exposes: establishes are routed to
// the shard owning the source node, and source/destination pairs living on
// different shards go through a two-phase establish — one PrepareTxn per
// contiguous same-owner run of the global path, then CommitTxn everywhere
// (or AbortTxn everywhere on any refusal). Each shard journals its own
// phases, so a crash mid-transaction leaves a prepare trail the next boot
// reconciles: a transaction committed on ANY shard is re-committed on the
// rest (the coordinator only starts committing after every prepare is
// durable), and a transaction committed NOWHERE is aborted (presumed
// abort — the coordinator never acknowledged it).
package shard

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"drqos/internal/channel"
	"drqos/internal/journal"
	"drqos/internal/manager"
	"drqos/internal/qos"
	"drqos/internal/rng"
	"drqos/internal/routing"
	"drqos/internal/server"
	"drqos/internal/topology"
)

// ErrNoRoute reports that no cross-shard path exists between the endpoints
// on the non-failed global topology.
var ErrNoRoute = errors.New("shard: no cross-shard route")

// ErrShardUnavailable reports that a participant shard is suspected
// unreachable (its last phase call timed out within the suspicion window),
// so a cross-shard establish through it is refused immediately instead of
// burning a prepare timeout per request. The HTTP layer maps it to 503
// with Retry-After.
var ErrShardUnavailable = errors.New("shard: participant suspected unreachable")

// crossMarker is the low-byte tag of an external connection ID that names
// a cross-shard transaction instead of a (shard, local conn) pair. Shard
// indices stop at MaxShards-1 = 31, far below it.
const crossMarker = 255

// Options configures a sharded deployment.
type Options struct {
	// Shards is the number of region shards (1..MaxShards, and at most the
	// topology's region count).
	Shards int
	// Dir is the durability root; each shard journals under
	// Dir/shard-NNN. Empty runs every shard in-memory (tests).
	Dir string
	// Manager is the per-shard admission config (applied to each sub
	// graph).
	Manager manager.Config
	// Server is the per-shard server template. Journal and Txns are
	// overwritten per shard; everything else is copied as-is.
	Server server.Options
	// Journal tunes each shard's journal. Ignored when Dir is empty.
	Journal journal.Options
	// PrepareTimeout bounds each 2PC phase call against a shard
	// (default 2s). A prepare that cannot answer in time is treated as a
	// refusal and the transaction aborts (presumed abort: the participant
	// may or may not hold the reservation, so the abort is also queued for
	// resolution until the shard answers again).
	PrepareTimeout time.Duration
	// PrepareRetries is how many extra times a timed-out prepare is
	// retried before the transaction aborts (default 2). Retries are safe:
	// prepares are idempotent per (txn, run), so a participant that
	// applied the original but lost the reply simply re-answers its pinned
	// connection. Only timeout-class failures retry; domain refusals
	// (rejection, overload, degraded) abort immediately.
	PrepareRetries int
	// SuspectWindow is how long a shard stays suspected unreachable after
	// a phase-call timeout (default PrepareTimeout). While suspected, new
	// cross establishes through the shard fail fast with
	// ErrShardUnavailable; any successful call clears the suspicion.
	SuspectWindow time.Duration
	// Invoke, when non-nil, wraps every 2PC phase call (phase is
	// "prepare", "commit" or "abort") against a participant shard. The
	// chaos harness injects netchaos here; production leaves it nil
	// (direct in-process call).
	Invoke func(ctx context.Context, shard int, phase string, call func(context.Context) error) error
	// TestHookAfterPrepare, when non-nil, runs after each successful
	// prepare with the participant's shard index and the transaction ID.
	// A non-nil error is treated as a prepare failure (the transaction
	// aborts). The chaos harness uses it to kill a shard mid-transaction.
	TestHookAfterPrepare func(shard int, txn uint64) error
}

// part is one pinned local connection of a cross-shard transaction.
type part struct {
	shard int
	conn  channel.ConnID
}

// crossConn is the coordinator's index entry for one committed cross-shard
// connection: the global links it crosses (for fail-link teardown) and the
// per-shard pinned connections (for terminate).
type crossConn struct {
	links []topology.LinkID
	parts []part
}

// Coordinator fronts the per-shard servers with the global admission API.
type Coordinator struct {
	g    *topology.Graph
	plan *Plan
	opt  Options

	shards []*server.Server
	jnls   []*journal.Journal // nil entries when Dir is empty

	// mu guards the cross-connection index, the failed-link view, the
	// transaction counter, the pending-resolution queue, the abort-reason
	// tallies and the retry jitter source. Shard calls are made outside it
	// whenever possible; 2PC holds it only to mutate the index.
	mu      sync.Mutex
	nextTxn uint64
	cross   map[uint64]*crossConn
	failed  map[topology.LinkID]bool
	// pending holds transactions whose outcome is decided but not yet
	// acknowledged by every participant (a commit or abort call failed —
	// typically a partitioned shard). The background resolver and
	// ResolvePending retry them until the participants answer; boot
	// reconciliation covers the same ground after a crash.
	pending      map[uint64]*pendingTxn
	abortReasons map[string]int64
	jitter       *rng.Source

	// suspect[i] is the UnixNano deadline until which shard i is presumed
	// unreachable (0 = trusted). Set on phase-call timeout, cleared by any
	// successful call.
	suspect []atomic.Int64

	crossAttempts  atomic.Int64
	crossCommitted atomic.Int64
	crossAborted   atomic.Int64
	crossTimeouts  atomic.Int64

	resolverStop chan struct{}
	resolverOnce sync.Once
	resolverDone chan struct{}
}

// pendingTxn is one decided-but-unacknowledged transaction: committed
// tells the resolver which phase to replay, shards which participants
// still owe an acknowledgment.
type pendingTxn struct {
	committed bool
	shards    map[int]bool
}

// EstablishResult is the coordinator-level answer to an establish: the
// external connection ID plus either the owning shard's arrival report
// (intra-shard) or the rigid allocation a committed 2PC pinned (cross).
type EstablishResult struct {
	ID    int64
	Cross bool
	// Shard is the owning shard for an intra-shard connection, -1 for
	// cross-shard.
	Shard int
	// Report is the owning shard's arrival report (local IDs) for an
	// intra-shard connection; nil for cross-shard.
	Report *manager.ArrivalReport
	// AllocatedKbps is the admitted bandwidth: the report's allocation
	// intra-shard, the rigid Min for cross-shard.
	AllocatedKbps qos.Kbps
	// Hops is the global path length (cross-shard only; 0 intra).
	Hops int
}

// New builds the plan, opens each shard's journal, rebuilds each shard's
// state, reconciles transactions a crash left in flight, and starts the
// per-shard servers.
func New(g *topology.Graph, opt Options) (*Coordinator, error) {
	plan, err := BuildPlan(g, opt.Shards)
	if err != nil {
		return nil, err
	}
	if opt.PrepareTimeout <= 0 {
		opt.PrepareTimeout = 2 * time.Second
	}
	if opt.PrepareRetries < 0 {
		opt.PrepareRetries = 0
	} else if opt.PrepareRetries == 0 {
		opt.PrepareRetries = 2
	}
	if opt.SuspectWindow <= 0 {
		opt.SuspectWindow = opt.PrepareTimeout
	}
	c := &Coordinator{
		g:            g,
		plan:         plan,
		opt:          opt,
		jnls:         make([]*journal.Journal, opt.Shards),
		nextTxn:      1,
		cross:        make(map[uint64]*crossConn),
		failed:       make(map[topology.LinkID]bool),
		pending:      make(map[uint64]*pendingTxn),
		abortReasons: make(map[string]int64),
		jitter:       rng.New(0xda3e39cb94b95bdb),
		suspect:      make([]atomic.Int64, opt.Shards),
		resolverStop: make(chan struct{}),
		resolverDone: make(chan struct{}),
	}

	mgrs := make([]*manager.Manager, opt.Shards)
	tables := make([]server.TxnTable, opt.Shards)
	for i := 0; i < opt.Shards; i++ {
		sub := plan.Subs[i]
		var rec *journal.Recovered
		if opt.Dir != "" {
			jnl, r, err := journal.Open(filepath.Join(opt.Dir, fmt.Sprintf("shard-%03d", i)), opt.Journal)
			if err != nil {
				c.closeJournals()
				return nil, fmt.Errorf("shard %d: %w", i, err)
			}
			c.jnls[i] = jnl
			rec = r
		} else {
			rec = &journal.Recovered{}
		}
		m, txns, err := server.RebuildWithTxns(sub.Graph, opt.Manager, rec)
		if err != nil {
			c.closeJournals()
			return nil, fmt.Errorf("shard %d: rebuild: %w", i, err)
		}
		mgrs[i] = m
		tables[i] = txns
		// Cross-shard counters ride the shard snapshot headers; a restart
		// seeds each from the newest view any shard captured (per-counter
		// max — shards snapshot at different times, so each header is a
		// valid lower bound).
		if h := rec.SnapshotHeader; h != nil {
			if h.CrossAttempts > c.crossAttempts.Load() {
				c.crossAttempts.Store(h.CrossAttempts)
			}
			if h.CrossCommitted > c.crossCommitted.Load() {
				c.crossCommitted.Store(h.CrossCommitted)
			}
			if h.CrossAborted > c.crossAborted.Load() {
				c.crossAborted.Store(h.CrossAborted)
			}
		}
	}

	if err := c.reconcile(mgrs, tables); err != nil {
		c.closeJournals()
		return nil, err
	}
	c.rebuildIndex(mgrs, tables)

	c.shards = make([]*server.Server, opt.Shards)
	for i := 0; i < opt.Shards; i++ {
		so := opt.Server
		so.Journal = c.jnls[i]
		so.Txns = tables[i]
		// Every shard snapshot stamps the coordinator's current cross-shard
		// counters into its header, making them restart-durable.
		so.AnnotateSnapshot = func(hdr *journal.SnapshotHeader) {
			hdr.CrossAttempts = c.crossAttempts.Load()
			hdr.CrossCommitted = c.crossCommitted.Load()
			hdr.CrossAborted = c.crossAborted.Load()
		}
		srv, err := server.NewFromManager(plan.Subs[i].Graph, mgrs[i], so)
		if err != nil {
			for j := 0; j < i; j++ {
				_ = c.shards[j].Shutdown(context.Background())
			}
			c.closeJournals()
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		c.shards[i] = srv
	}
	go c.resolveLoop()
	return c, nil
}

// resolveLoop retries decided-but-unacknowledged transactions in the
// background until Shutdown, so a healed partition drains its leftover
// 2PC reservations without waiting for a restart.
func (c *Coordinator) resolveLoop() {
	defer close(c.resolverDone)
	tick := time.NewTicker(500 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case <-c.resolverStop:
			return
		case <-tick.C:
			c.mu.Lock()
			n := len(c.pending)
			c.mu.Unlock()
			if n > 0 {
				c.ResolvePending(context.Background())
			}
		}
	}
}

func (c *Coordinator) closeJournals() {
	for _, j := range c.jnls {
		if j != nil {
			_ = j.Close()
		}
	}
}

// reconcile resolves transactions a crash left in flight, before the
// servers start (raw managers and journals, no concurrency). The rule is
// the classic presumed-abort coordinator recovery: the coordinator only
// starts committing once every participant's prepare is durable, so a
// commit record on ANY shard proves the whole transaction was fully
// prepared — re-commit it on the shards that lost theirs. A transaction
// committed nowhere was never acknowledged — abort it everywhere, with the
// same journaled-terminate trail a live abort writes.
func (c *Coordinator) reconcile(mgrs []*manager.Manager, tables []server.TxnTable) error {
	committed := make(map[uint64]bool)
	for _, t := range tables {
		for txn, tx := range t {
			if tx.Committed {
				committed[txn] = true
			}
			if txn >= c.nextTxn {
				c.nextTxn = txn + 1
			}
		}
	}
	for i, t := range tables {
		// Deterministic order keeps the reconciliation journal trail
		// reproducible across boots of the same directory.
		ids := make([]uint64, 0, len(t))
		for txn := range t {
			ids = append(ids, txn)
		}
		sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
		for _, txn := range ids {
			tx := t[txn]
			if tx.Committed {
				continue
			}
			if committed[txn] {
				if c.jnls[i] != nil {
					if _, err := c.jnls[i].Append(journal.Event{Kind: journal.KindCommit, Txn: txn}); err != nil {
						return fmt.Errorf("shard %d: reconcile commit txn %d: %w", i, txn, err)
					}
				}
				tx.Committed = true
				continue
			}
			for _, id := range tx.Conns {
				if cn := mgrs[i].Conn(id); cn == nil || !cn.Alive() {
					continue
				}
				if c.jnls[i] != nil {
					if _, err := c.jnls[i].Append(journal.Event{Kind: journal.KindTerminate, Conn: int64(id)}); err != nil {
						return fmt.Errorf("shard %d: reconcile abort txn %d: %w", i, txn, err)
					}
				}
				if _, err := mgrs[i].Terminate(id); err != nil {
					return fmt.Errorf("shard %d: reconcile abort txn %d conn %d: %w", i, txn, id, err)
				}
			}
			delete(t, txn)
		}
	}
	return nil
}

// rebuildIndex reconstructs the coordinator's in-memory views from the
// reconciled shard states: the cross-connection index from committed
// transactions (local link IDs mapped back to global) and the failed-link
// set from each shard's owned links.
func (c *Coordinator) rebuildIndex(mgrs []*manager.Manager, tables []server.TxnTable) {
	for i, t := range tables {
		sub := c.plan.Subs[i]
		for txn, tx := range t {
			for _, id := range tx.Conns {
				cn := mgrs[i].Conn(id)
				if cn == nil || !cn.Alive() {
					continue
				}
				cc := c.cross[txn]
				if cc == nil {
					cc = &crossConn{}
					c.cross[txn] = cc
				}
				cc.parts = append(cc.parts, part{shard: i, conn: id})
				for _, ll := range cn.Primary.Links {
					cc.links = append(cc.links, sub.GlobalLink[ll])
				}
			}
		}
		for li, owner := range c.plan.LinkShard {
			gl := topology.LinkID(li)
			if owner == i && mgrs[i].Network().Failed(sub.LocalLink[gl]) {
				c.failed[gl] = true
			}
		}
	}
}

// SetTestHookAfterPrepare installs the post-prepare hook after
// construction, for tests whose hook needs the coordinator in hand. Call
// only from the goroutine that will drive the next establish.
func (c *Coordinator) SetTestHookAfterPrepare(fn func(shard int, txn uint64) error) {
	c.opt.TestHookAfterPrepare = fn
}

// NumShards returns the shard count.
func (c *Coordinator) NumShards() int { return len(c.shards) }

// Shard returns shard i's server (tests and the HTTP aggregator).
func (c *Coordinator) Shard(i int) *server.Server { return c.shards[i] }

// Plan returns the partition.
func (c *Coordinator) Plan() *Plan { return c.plan }

// Graph returns the global topology.
func (c *Coordinator) Graph() *topology.Graph { return c.g }

// CrossStats returns the 2PC counters (attempted, committed, aborted).
func (c *Coordinator) CrossStats() (attempts, committed, aborted int64) {
	return c.crossAttempts.Load(), c.crossCommitted.Load(), c.crossAborted.Load()
}

// CrossTimeouts returns how many 2PC phase calls have timed out.
func (c *Coordinator) CrossTimeouts() int64 { return c.crossTimeouts.Load() }

// AbortReasons returns a copy of the per-reason abort tallies.
func (c *Coordinator) AbortReasons() map[string]int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]int64, len(c.abortReasons))
	for k, v := range c.abortReasons {
		out[k] = v
	}
	return out
}

// PendingResolutions returns how many decided transactions still await a
// participant's acknowledgment.
func (c *Coordinator) PendingResolutions() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.pending)
}

// suspected reports whether shard i is inside its unreachability window.
func (c *Coordinator) suspected(i int) bool {
	until := c.suspect[i].Load()
	return until > 0 && time.Now().UnixNano() < until
}

// invoke runs one 2PC phase call against a shard under the phase timeout,
// through the Invoke hook when one is installed. A timeout (the deadline
// this call set, not the caller's) marks the shard suspected and counts
// toward the timeout total; any success clears the suspicion.
func (c *Coordinator) invoke(ctx context.Context, shard int, phase string, call func(context.Context) error) error {
	pctx, cancel := context.WithTimeout(ctx, c.opt.PrepareTimeout)
	defer cancel()
	var err error
	if c.opt.Invoke != nil {
		err = c.opt.Invoke(pctx, shard, phase, call)
	} else {
		err = call(pctx)
	}
	if err == nil {
		c.suspect[shard].Store(0)
		return nil
	}
	if errors.Is(err, context.DeadlineExceeded) && ctx.Err() == nil {
		c.crossTimeouts.Add(1)
		c.suspect[shard].Store(time.Now().Add(c.opt.SuspectWindow).UnixNano())
		return fmt.Errorf("shard %d: %s timed out after %s: %w", shard, phase, c.opt.PrepareTimeout, err)
	}
	return err
}

// prepareRun prepares one participant with capped jittered retries.
// Prepares carry the run index as an idempotency tag, so a retry after a
// delivered-but-unanswered original is recognized and re-answered instead
// of double-pinning the path. Only timeout-class failures retry — a
// domain refusal (rejection, overload, degraded) is a real answer.
func (c *Coordinator) prepareRun(ctx context.Context, r *run, txn uint64, runIdx uint64, peers uint32, rigid qos.ElasticSpec) (*manager.ArrivalReport, error) {
	backoff := 25 * time.Millisecond
	for attempt := 0; ; attempt++ {
		var rep *manager.ArrivalReport
		err := c.invoke(ctx, r.shard, "prepare", func(ic context.Context) error {
			var perr error
			rep, perr = c.shards[r.shard].PrepareTxn(ic, txn, runIdx, peers, r.src, r.dst, rigid, r.path)
			return perr
		})
		if err == nil {
			return rep, nil
		}
		if attempt >= c.opt.PrepareRetries || !errors.Is(err, context.DeadlineExceeded) || ctx.Err() != nil {
			return nil, err
		}
		c.mu.Lock()
		f := c.jitter.Float64()
		c.mu.Unlock()
		sleep := backoff/2 + time.Duration(f*float64(backoff)/2)
		select {
		case <-time.After(sleep):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		if backoff < 250*time.Millisecond {
			backoff *= 2
		}
	}
}

// countAbort tallies one abort under its reason label.
func (c *Coordinator) countAbort(reason string) {
	c.crossAborted.Add(1)
	c.mu.Lock()
	c.abortReasons[reason]++
	c.mu.Unlock()
}

// abortReason classifies a failed phase call for the abort counter.
func abortReason(err error) string {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return "timeout"
	case errors.Is(err, ErrShardUnavailable):
		return "unreachable"
	case errors.Is(err, manager.ErrRejected):
		return "rejected"
	case errors.Is(err, server.ErrOverloaded):
		return "overloaded"
	case errors.Is(err, server.ErrDegraded):
		return "degraded"
	default:
		return "error"
	}
}

// addPending queues a decided transaction whose listed participants have
// not acknowledged the outcome yet.
func (c *Coordinator) addPending(txn uint64, committed bool, shards map[int]bool) {
	if len(shards) == 0 {
		return
	}
	c.mu.Lock()
	c.pending[txn] = &pendingTxn{committed: committed, shards: shards}
	c.mu.Unlock()
}

// ResolvePending replays the decided outcome of every pending transaction
// to the participants that have not acknowledged it, and returns how many
// transactions became fully resolved. Suspected shards are skipped (the
// next pass retries them); ErrNotFound and ErrConflict answers count as
// resolved — the participant already holds (or never held) the outcome.
func (c *Coordinator) ResolvePending(ctx context.Context) int {
	c.mu.Lock()
	work := make(map[uint64]pendingTxn, len(c.pending))
	for txn, p := range c.pending {
		shards := make(map[int]bool, len(p.shards))
		for s := range p.shards {
			shards[s] = true
		}
		work[txn] = pendingTxn{committed: p.committed, shards: shards}
	}
	c.mu.Unlock()

	resolved := 0
	for txn, p := range work {
		for s := range p.shards {
			if c.suspected(s) {
				continue
			}
			var err error
			if p.committed {
				err = c.invoke(ctx, s, "commit", func(ic context.Context) error {
					return c.shards[s].CommitTxn(ic, txn)
				})
			} else {
				err = c.invoke(ctx, s, "abort", func(ic context.Context) error {
					return c.shards[s].AbortTxn(ic, txn)
				})
			}
			if err == nil || errors.Is(err, server.ErrNotFound) || errors.Is(err, server.ErrConflict) {
				c.mu.Lock()
				if cur := c.pending[txn]; cur != nil {
					delete(cur.shards, s)
					if len(cur.shards) == 0 {
						delete(c.pending, txn)
						resolved++
					}
				}
				c.mu.Unlock()
			}
		}
	}
	return resolved
}

// extIntra encodes a shard-local connection as an external ID.
func extIntra(shard int, id channel.ConnID) int64 { return int64(id)*256 + int64(shard) }

// extCross encodes a cross-shard transaction as an external ID.
func extCross(txn uint64) int64 { return int64(txn)*256 + crossMarker }

// Establish admits a connection between global nodes. Same-shard pairs
// delegate to the owning shard's full elastic admission (routes, backups,
// squeezing — unchanged semantics); cross-shard pairs reserve a rigid
// Min-bandwidth path via two-phase prepare/commit.
func (c *Coordinator) Establish(ctx context.Context, src, dst topology.NodeID, spec qos.ElasticSpec) (*EstablishResult, error) {
	if int(src) < 0 || int(src) >= c.g.NumNodes() || int(dst) < 0 || int(dst) >= c.g.NumNodes() {
		return nil, fmt.Errorf("%w: node out of range", server.ErrNotFound)
	}
	ss, ds := c.plan.NodeShard[src], c.plan.NodeShard[dst]
	if ss == ds {
		sub := c.plan.Subs[ss]
		rep, err := c.shards[ss].Establish(ctx, sub.LocalNode[src], sub.LocalNode[dst], spec)
		if err != nil {
			return nil, err
		}
		res := &EstablishResult{Shard: ss, Report: rep}
		if rep != nil && rep.Conn != nil {
			res.ID = extIntra(ss, rep.Conn.ID)
			res.AllocatedKbps = rep.Conn.Spec.Bandwidth(rep.Conn.Level)
		}
		return res, nil
	}
	return c.establishCross(ctx, src, dst, spec)
}

// establishCross runs the two-phase establish: route on the global graph,
// split into per-owner runs, prepare each run as a rigid local connection,
// then commit everywhere. Any refusal — domain rejection, overload,
// degraded shard, timeout, or the test hook — aborts every prepared
// participant.
func (c *Coordinator) establishCross(ctx context.Context, src, dst topology.NodeID, spec qos.ElasticSpec) (*EstablishResult, error) {
	c.crossAttempts.Add(1)
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	path, err := c.routeGlobal(src, dst)
	if err != nil {
		return nil, err
	}
	// Cross-shard connections are rigid: the whole path is pinned at Min,
	// with no elastic range to renegotiate across shard boundaries and no
	// backup (dependability for cross connections is the coordinator's
	// re-establish, not a shard-local spare).
	rigid := qos.ElasticSpec{Min: spec.Min, Max: spec.Min, Increment: spec.Min, Utility: spec.Utility}
	runs := splitRuns(c.plan, path)

	var peers uint32
	for _, r := range runs {
		peers |= 1 << uint(r.shard)
	}
	// Fast-fail before touching anyone: a participant inside its
	// unreachability window would only burn a prepare timeout to learn
	// what the last call already taught us.
	for _, r := range runs {
		if c.suspected(r.shard) {
			c.countAbort("unreachable")
			return nil, fmt.Errorf("%w: shard %d", ErrShardUnavailable, r.shard)
		}
	}
	c.mu.Lock()
	txn := c.nextTxn
	c.nextTxn++
	c.mu.Unlock()

	// prepared are participants that answered a prepare; ambiguous are
	// ones whose prepare timed out — they may hold the reservation without
	// us knowing (delivered request, lost reply), so an abort must reach
	// them too.
	prepared := make(map[int]bool)
	ambiguous := make(map[int]bool)
	abort := func(reason string) {
		c.countAbort(reason)
		unresolved := make(map[int]bool)
		for s := range prepared {
			ambiguous[s] = true
		}
		for s := range ambiguous {
			if c.suspected(s) {
				unresolved[s] = true
				continue
			}
			// AbortTxn is idempotent (unknown txn is a no-op), so reaching
			// a participant that never saw the prepare is harmless.
			err := c.invoke(context.Background(), s, "abort", func(ic context.Context) error {
				return c.shards[s].AbortTxn(ic, txn)
			})
			if err != nil && !errors.Is(err, server.ErrNotFound) {
				unresolved[s] = true
			}
		}
		// Participants we could not reach keep the presumed-abort pending
		// until the resolver (or next boot's reconciliation) drains them.
		c.addPending(txn, false, unresolved)
	}
	for i, r := range runs {
		rep, perr := c.prepareRun(ctx, r, txn, uint64(i), peers, rigid)
		if perr != nil {
			if errors.Is(perr, context.DeadlineExceeded) {
				ambiguous[r.shard] = true
			}
			abort(abortReason(perr))
			return nil, perr
		}
		r.connID = rep.Conn.ID
		prepared[r.shard] = true
		if c.opt.TestHookAfterPrepare != nil {
			if herr := c.opt.TestHookAfterPrepare(r.shard, txn); herr != nil {
				abort("error")
				return nil, herr
			}
		}
	}
	// Every prepare is durable: the transaction commits. Per-shard commit
	// errors are tolerated — the first commit that lands makes the outcome
	// durable, and the resolver (or boot reconciliation) re-commits the
	// stragglers. Count the commit before issuing it so any snapshot a
	// commit event triggers already carries the final tally.
	c.crossCommitted.Add(1)
	parts := make([]part, 0, len(runs))
	uncommitted := make(map[int]bool)
	for _, r := range runs {
		err := c.invoke(context.Background(), r.shard, "commit", func(ic context.Context) error {
			return c.shards[r.shard].CommitTxn(ic, txn)
		})
		if err != nil && !errors.Is(err, server.ErrConflict) {
			uncommitted[r.shard] = true
		}
		parts = append(parts, part{shard: r.shard, conn: r.connID})
	}
	c.addPending(txn, true, uncommitted)
	cc := &crossConn{links: append([]topology.LinkID(nil), path.Links...), parts: parts}
	c.mu.Lock()
	c.cross[txn] = cc
	c.mu.Unlock()
	return &EstablishResult{
		ID: extCross(txn), Cross: true, Shard: -1,
		AllocatedKbps: rigid.Min, Hops: path.Hops(),
	}, nil
}

// run is one maximal same-owner stretch of a global path, with the owning
// shard's local coordinates. connID is filled in by the prepare.
type run struct {
	shard    int
	src, dst topology.NodeID // local node IDs
	path     routing.Path    // local node/link IDs
	connID   channel.ConnID
}

// splitRuns cuts a global path into maximal consecutive stretches of links
// with the same owning shard and translates each into that shard's local
// coordinates. Border replicas guarantee every endpoint of an owned link
// exists in the owner's sub graph.
func splitRuns(p *Plan, path routing.Path) []*run {
	var runs []*run
	i := 0
	for i < len(path.Links) {
		owner := p.LinkShard[path.Links[i]]
		j := i
		for j < len(path.Links) && p.LinkShard[path.Links[j]] == owner {
			j++
		}
		sub := p.Subs[owner]
		r := &run{shard: owner}
		for k := i; k <= j; k++ {
			r.path.Nodes = append(r.path.Nodes, sub.LocalNode[path.Nodes[k]])
		}
		for k := i; k < j; k++ {
			r.path.Links = append(r.path.Links, sub.LocalLink[path.Links[k]])
		}
		r.src, r.dst = r.path.Nodes[0], r.path.Nodes[len(r.path.Nodes)-1]
		runs = append(runs, r)
		i = j
	}
	return runs
}

// routeGlobal finds a shortest path on the global topology avoiding links
// the coordinator knows are failed. BFS with deterministic neighbor order
// (link insertion order), so the same topology and failure set always
// yield the same path.
func (c *Coordinator) routeGlobal(src, dst topology.NodeID) (routing.Path, error) {
	c.mu.Lock()
	failed := make(map[topology.LinkID]bool, len(c.failed))
	for l := range c.failed {
		failed[l] = true
	}
	c.mu.Unlock()

	n := c.g.NumNodes()
	prevNode := make([]topology.NodeID, n)
	prevLink := make([]topology.LinkID, n)
	seen := make([]bool, n)
	for i := range prevNode {
		prevNode[i] = -1
	}
	seen[src] = true
	queue := []topology.NodeID{src}
	for len(queue) > 0 && !seen[dst] {
		u := queue[0]
		queue = queue[1:]
		c.g.ForEachNeighbor(u, func(v topology.NodeID, l topology.LinkID) {
			if seen[v] || failed[l] {
				return
			}
			seen[v] = true
			prevNode[v] = u
			prevLink[v] = l
			queue = append(queue, v)
		})
	}
	if !seen[dst] {
		return routing.Path{}, fmt.Errorf("%w: %d -> %d", ErrNoRoute, src, dst)
	}
	var path routing.Path
	for v := dst; v != src; v = prevNode[v] {
		path.Nodes = append(path.Nodes, v)
		path.Links = append(path.Links, prevLink[v])
	}
	path.Nodes = append(path.Nodes, src)
	for i, j := 0, len(path.Nodes)-1; i < j; i, j = i+1, j-1 {
		path.Nodes[i], path.Nodes[j] = path.Nodes[j], path.Nodes[i]
	}
	for i, j := 0, len(path.Links)-1; i < j; i, j = i+1, j-1 {
		path.Links[i], path.Links[j] = path.Links[j], path.Links[i]
	}
	return path, nil
}

// Terminate releases an external connection ID: a (shard, local) pair for
// intra-shard connections, a transaction's every pinned part for
// cross-shard ones.
func (c *Coordinator) Terminate(ctx context.Context, ext int64) error {
	if ext < 0 {
		return fmt.Errorf("%w: connection %d", server.ErrNotFound, ext)
	}
	marker := int(ext % 256)
	if marker == crossMarker {
		txn := uint64(ext / 256)
		c.mu.Lock()
		cc := c.cross[txn]
		delete(c.cross, txn)
		c.mu.Unlock()
		if cc == nil {
			return fmt.Errorf("%w: connection %d", server.ErrNotFound, ext)
		}
		for _, p := range cc.parts {
			// A part may already be gone (dropped by a link failure that
			// raced the terminate); that is not the caller's problem.
			if _, err := c.shards[p.shard].Terminate(ctx, p.conn); err != nil && !errors.Is(err, server.ErrNotFound) {
				return err
			}
		}
		return nil
	}
	if marker >= len(c.shards) {
		return fmt.Errorf("%w: connection %d", server.ErrNotFound, ext)
	}
	_, err := c.shards[marker].Terminate(ctx, channel.ConnID(ext/256))
	return err
}

// FailLink injects a global link failure: the owning shard fails it
// locally (its elastic connections fail over or drop exactly as in the
// single-shard plane), and committed cross-shard connections crossing the
// link are torn down on their other shards — a rigid pinned path has no
// backup, so the failure drops it end-to-end.
func (c *Coordinator) FailLink(ctx context.Context, l topology.LinkID) (*manager.FailureReport, error) {
	if int(l) < 0 || int(l) >= c.g.NumLinks() {
		return nil, fmt.Errorf("%w: link %d", server.ErrNotFound, l)
	}
	owner := c.plan.LinkShard[l]
	rep, err := c.shards[owner].FailLink(ctx, c.plan.Subs[owner].LocalLink[l])
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.failed[l] = true
	var torn []*crossConn
	for txn, cc := range c.cross {
		for _, cl := range cc.links {
			if cl == l {
				torn = append(torn, cc)
				delete(c.cross, txn)
				break
			}
		}
	}
	c.mu.Unlock()
	for _, cc := range torn {
		for _, p := range cc.parts {
			// The owner shard's part died with the link; the others are
			// torn down explicitly. ErrNotFound just means it was already
			// gone.
			if _, terr := c.shards[p.shard].Terminate(ctx, p.conn); terr != nil && !errors.Is(terr, server.ErrNotFound) && err == nil {
				err = terr
			}
		}
	}
	return rep, err
}

// RepairLink marks a global link repaired on its owning shard.
func (c *Coordinator) RepairLink(ctx context.Context, l topology.LinkID) (int, error) {
	if int(l) < 0 || int(l) >= c.g.NumLinks() {
		return 0, fmt.Errorf("%w: link %d", server.ErrNotFound, l)
	}
	owner := c.plan.LinkShard[l]
	restored, err := c.shards[owner].RepairLink(ctx, c.plan.Subs[owner].LocalLink[l])
	if err != nil {
		return 0, err
	}
	c.mu.Lock()
	delete(c.failed, l)
	c.mu.Unlock()
	return restored, nil
}

// Shutdown stops the background resolver, every shard server, and every
// journal.
func (c *Coordinator) Shutdown(ctx context.Context) error {
	c.resolverOnce.Do(func() { close(c.resolverStop) })
	<-c.resolverDone
	var first error
	for _, s := range c.shards {
		if err := s.Shutdown(ctx); err != nil && first == nil {
			first = err
		}
	}
	for _, j := range c.jnls {
		if j != nil {
			if err := j.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}
