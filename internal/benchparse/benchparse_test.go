package benchparse

import (
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: drqos
cpu: AMD EPYC 7B13
BenchmarkFig2AvgBandwidthVsLoad-8   	       1	5321123456 ns/op	         0.031 model-relerr	       412.5 Kbps-drop	214748364 B/op	 1234567 allocs/op
BenchmarkMarkovSolve9State-8        	  500000	      2210 ns/op	     896 B/op	      14 allocs/op
PASS
ok  	drqos	12.345s
goos: linux
goarch: amd64
pkg: drqos/internal/routing
BenchmarkBoundedFlood/fresh-8       	    3000	    393576 ns/op	  114367 B/op	     576 allocs/op
BenchmarkBoundedFlood/scratch-8     	    9000	    244438 ns/op	    8694 B/op	     133 allocs/op
BenchmarkThroughput-8               	    1000	   1000000 ns/op	     256.00 MB/s
PASS
ok  	drqos/internal/routing	4.567s
`

func TestParse(t *testing.T) {
	rep, err := Parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 5 {
		t.Fatalf("got %d results, want 5: %+v", len(rep.Results), rep.Results)
	}

	fig2 := rep.Results[0]
	if fig2.Pkg != "drqos" || fig2.Name != "BenchmarkFig2AvgBandwidthVsLoad-8" {
		t.Fatalf("bad identity: %+v", fig2)
	}
	if fig2.Iterations != 1 || fig2.NsPerOp != 5321123456 {
		t.Fatalf("bad timing: %+v", fig2)
	}
	if fig2.Metrics["model-relerr"] != 0.031 || fig2.Metrics["Kbps-drop"] != 412.5 {
		t.Fatalf("custom metrics not captured: %+v", fig2.Metrics)
	}
	if fig2.BytesPerOp == nil || *fig2.BytesPerOp != 214748364 {
		t.Fatalf("bad B/op: %+v", fig2)
	}
	if fig2.AllocsPerOp == nil || *fig2.AllocsPerOp != 1234567 {
		t.Fatalf("bad allocs/op: %+v", fig2)
	}

	flood := rep.Results[3]
	if flood.Pkg != "drqos/internal/routing" || flood.Name != "BenchmarkBoundedFlood/scratch-8" {
		t.Fatalf("pkg header not tracked across packages: %+v", flood)
	}
	if flood.Key() != "drqos/internal/routing.BenchmarkBoundedFlood/scratch-8" {
		t.Fatalf("bad key: %q", flood.Key())
	}

	tput := rep.Results[4]
	if tput.MBPerSec == nil || *tput.MBPerSec != 256 {
		t.Fatalf("MB/s not captured: %+v", tput)
	}
}

func TestParseIgnoresNonResultLines(t *testing.T) {
	in := `BenchmarkVerbose
BenchmarkBroken 	--- FAIL
some test log line
BenchmarkReal-4	100	50.0 ns/op
`
	rep, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 1 || rep.Results[0].Name != "BenchmarkReal-4" {
		t.Fatalf("got %+v, want only BenchmarkReal-4", rep.Results)
	}
}

func TestParseRejectsMalformedValue(t *testing.T) {
	if _, err := Parse(strings.NewReader("BenchmarkBad-4	100	abc ns/op\n")); err == nil {
		t.Fatal("want error for unparseable value")
	}
}

func f(v float64) *float64 { return &v }

func TestCompare(t *testing.T) {
	old := &Report{Results: []Result{
		{Pkg: "p", Name: "BenchmarkA-8", NsPerOp: 1000, BytesPerOp: f(100), AllocsPerOp: f(10)},
		{Pkg: "p", Name: "BenchmarkB-8", NsPerOp: 1000},
		{Pkg: "p", Name: "BenchmarkGone-8", NsPerOp: 1000},
	}}
	now := &Report{Results: []Result{
		// ns/op +50% (regression), B/op -20% (improvement), allocs/op +5% (under threshold)
		{Pkg: "p", Name: "BenchmarkA-8", NsPerOp: 1500, BytesPerOp: f(80), AllocsPerOp: f(10.5)},
		// exactly at +10%: not a regression (strictly greater than threshold flags)
		{Pkg: "p", Name: "BenchmarkB-8", NsPerOp: 1100},
		{Pkg: "p", Name: "BenchmarkNew-8", NsPerOp: 9999},
	}}
	regs := Compare(old, now, 0.10)
	if len(regs) != 1 {
		t.Fatalf("got %d regressions %+v, want 1", len(regs), regs)
	}
	r := regs[0]
	if r.Key != "p.BenchmarkA-8" || r.Metric != "ns/op" || r.Old != 1000 || r.New != 1500 {
		t.Fatalf("bad regression: %+v", r)
	}
	if s := r.String(); !strings.Contains(s, "ns/op") || !strings.Contains(s, "+50.0%") {
		t.Fatalf("bad String(): %q", s)
	}
}

func TestCompareAllocRegression(t *testing.T) {
	old := &Report{Results: []Result{{Name: "BenchmarkA-8", NsPerOp: 100, AllocsPerOp: f(133)}}}
	now := &Report{Results: []Result{{Name: "BenchmarkA-8", NsPerOp: 100, AllocsPerOp: f(576)}}}
	regs := Compare(old, now, 0.10)
	if len(regs) != 1 || regs[0].Metric != "allocs/op" {
		t.Fatalf("got %+v, want one allocs/op regression", regs)
	}
}

func TestCompareIgnoresZeroBaseline(t *testing.T) {
	old := &Report{Results: []Result{{Name: "BenchmarkA-8", NsPerOp: 100, AllocsPerOp: f(0)}}}
	now := &Report{Results: []Result{{Name: "BenchmarkA-8", NsPerOp: 100, AllocsPerOp: f(5)}}}
	if regs := Compare(old, now, 0.10); len(regs) != 0 {
		t.Fatalf("zero baseline must not divide: %+v", regs)
	}
}
