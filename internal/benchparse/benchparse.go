// Package benchparse turns the text output of `go test -bench -benchmem`
// into a structured report and compares two reports for regressions. It is
// the core of scripts/bench.sh: the shell script pipes the benchmark run
// through cmd/benchjson, which uses this package to emit BENCH_<date>.json
// and to diff two such files.
//
// The parser understands the standard testing package format across multiple
// packages in one stream:
//
//	pkg: drqos/internal/routing
//	BenchmarkBoundedFlood/scratch-8   	    4096	    244438 ns/op	    8694 B/op	     133 allocs/op
//	BenchmarkFig2AvgBandwidthVsLoad-8 	       1	5321000000 ns/op	         0.031 model-relerr	...
//
// Standard units (ns/op, B/op, allocs/op, MB/s) get dedicated fields; any
// other `<value> <unit>` pair — the custom b.ReportMetric units like
// model-relerr — lands in the Metrics map.
package benchparse

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark line.
type Result struct {
	// Pkg is the import path from the most recent `pkg:` header line.
	Pkg string `json:"pkg,omitempty"`
	// Name is the benchmark name including sub-benchmark path and the
	// -cpu suffix, e.g. "BenchmarkBoundedFlood/scratch-8".
	Name string `json:"name"`
	// Iterations is the b.N the timing was measured at.
	Iterations int64 `json:"iterations"`
	// NsPerOp is wall time per iteration.
	NsPerOp float64 `json:"ns_per_op"`
	// BytesPerOp and AllocsPerOp come from -benchmem; nil when absent.
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
	// MBPerSec comes from b.SetBytes; nil when absent.
	MBPerSec *float64 `json:"mb_per_sec,omitempty"`
	// Metrics holds custom b.ReportMetric values keyed by unit.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Key identifies a benchmark across runs.
func (r Result) Key() string {
	if r.Pkg == "" {
		return r.Name
	}
	return r.Pkg + "." + r.Name
}

// Report is a full benchmark run.
type Report struct {
	// Date is the run date (YYYY-MM-DD), filled by the caller.
	Date string `json:"date,omitempty"`
	// GoVersion and Host describe the environment, filled by the caller.
	GoVersion string `json:"go_version,omitempty"`
	Host      string `json:"host,omitempty"`
	// Results are the parsed benchmark lines in input order.
	Results []Result `json:"results"`
}

// Parse reads `go test -bench` output. Lines that are not benchmark results
// or pkg headers (PASS, ok, test log output, goos/goarch banners) are
// ignored, so the full `go test` stream can be piped in unfiltered.
func Parse(r io.Reader) (*Report, error) {
	rep := &Report{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	pkg := ""
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg: "))
		case strings.HasPrefix(line, "Benchmark"):
			res, ok, err := parseLine(line)
			if err != nil {
				return nil, err
			}
			if ok {
				res.Pkg = pkg
				rep.Results = append(rep.Results, res)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return rep, nil
}

// parseLine parses one benchmark result line. ok=false means the line looked
// like a benchmark but has no fields (e.g. the bare "BenchmarkFoo" name
// printed with -v before the result).
func parseLine(line string) (Result, bool, error) {
	fields := strings.Fields(line)
	if len(fields) < 3 {
		return Result{}, false, nil
	}
	var res Result
	res.Name = fields[0]
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false, nil // e.g. "BenchmarkFoo 	--- FAIL"
	}
	res.Iterations = iters
	// The rest is value/unit pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false, fmt.Errorf("benchparse: bad value %q in %q", fields[i], line)
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			res.NsPerOp = val
		case "B/op":
			v := val
			res.BytesPerOp = &v
		case "allocs/op":
			v := val
			res.AllocsPerOp = &v
		case "MB/s":
			v := val
			res.MBPerSec = &v
		default:
			if res.Metrics == nil {
				res.Metrics = make(map[string]float64)
			}
			res.Metrics[unit] = val
		}
	}
	return res, true, nil
}

// Regression is one metric of one benchmark that got worse.
type Regression struct {
	Key    string  // benchmark key (pkg.name)
	Metric string  // "ns/op", "B/op", "allocs/op"
	Old    float64 `json:"old"`
	New    float64 `json:"new"`
	// Ratio is new/old; always > 1+threshold for a reported regression.
	Ratio float64
}

func (r Regression) String() string {
	return fmt.Sprintf("%s %s: %.6g -> %.6g (%+.1f%%)", r.Key, r.Metric, r.Old, r.New, (r.Ratio-1)*100)
}

// Compare flags every benchmark present in both reports whose ns/op, B/op,
// or allocs/op grew by more than threshold (0.10 = 10%). Custom metrics are
// quality numbers, not costs, so they are not compared — a higher
// model-relerr is a correctness question for the tests, not a perf
// regression. Benchmarks that appear in only one report are ignored.
func Compare(old, new *Report, threshold float64) []Regression {
	oldByKey := make(map[string]Result, len(old.Results))
	for _, r := range old.Results {
		oldByKey[r.Key()] = r
	}
	var regs []Regression
	for _, nr := range new.Results {
		or, ok := oldByKey[nr.Key()]
		if !ok {
			continue
		}
		check := func(metric string, oldV, newV float64) {
			if oldV <= 0 {
				return // nothing meaningful to compare against
			}
			ratio := newV / oldV
			if ratio > 1+threshold {
				regs = append(regs, Regression{Key: nr.Key(), Metric: metric, Old: oldV, New: newV, Ratio: ratio})
			}
		}
		check("ns/op", or.NsPerOp, nr.NsPerOp)
		if or.BytesPerOp != nil && nr.BytesPerOp != nil {
			check("B/op", *or.BytesPerOp, *nr.BytesPerOp)
		}
		if or.AllocsPerOp != nil && nr.AllocsPerOp != nil {
			check("allocs/op", *or.AllocsPerOp, *nr.AllocsPerOp)
		}
	}
	sort.Slice(regs, func(i, j int) bool {
		if regs[i].Key != regs[j].Key {
			return regs[i].Key < regs[j].Key
		}
		return regs[i].Metric < regs[j].Metric
	})
	return regs
}
