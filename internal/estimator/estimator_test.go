package estimator

import (
	"math"
	"testing"
)

func TestEstimatorProjection(t *testing.T) {
	// Directly feed the estimator counters via a tiny crafted scenario is
	// cumbersome; instead unit-test the projection helpers through a
	// Params round trip with synthetic counts.
	e := New(3)
	// Simulate: direct arrivals from state 2 go down twice, stay once, and
	// once (anomalously) go up — the upward jump must be projected away.
	e.arrDirect.Record(2, 0)
	e.arrDirect.Record(2, 1)
	e.arrDirect.Record(2, 2)
	e.arrDirect.Record(0, 1) // anomalous upward for a direct channel
	e.term.Record(0, 2)
	e.arrIndirect.Record(0, 1)
	e.pf.ObserveN(1, 2)
	e.ps.ObserveN(1, 4)

	p := e.Params(0.001, 0.001, 0)
	if err := p.Validate(); err != nil {
		t.Fatalf("projected params invalid: %v", err)
	}
	if p.Pf != 0.5 || p.Ps != 0.25 {
		t.Fatalf("Pf=%v Ps=%v", p.Pf, p.Ps)
	}
	// Row 2 of A: 3 events (2 moved down, 1 stayed) → activity 2/3 split
	// evenly between the two downward targets.
	if math.Abs(p.A[2][0]-1.0/3) > 1e-12 || math.Abs(p.A[2][1]-1.0/3) > 1e-12 {
		t.Fatalf("A row 2 = %v", p.A[2])
	}
	// Row 0 of A: its only jump was upward → fully discarded → zero row.
	if p.A[0][1] != 0 && p.A[0][2] != 0 {
		t.Fatalf("A row 0 = %v", p.A[0])
	}
	da, db, dt := e.Discarded()
	if da <= 0 {
		t.Fatalf("discardedA = %v, want > 0", da)
	}
	if db != 0 || dt != 0 {
		t.Fatalf("discarded B/T = %v/%v", db, dt)
	}
	if p.T[0][2] != 1 {
		t.Fatalf("T = %v", p.T)
	}
	if p.B[0][1] != 1 {
		t.Fatalf("B = %v", p.B)
	}
}

func TestEstimatorIgnoresOutOfRangeChanges(t *testing.T) {
	// A live server can carry channels with more levels than the modeled
	// state count; their transitions must be skipped, not panic the
	// underlying TransitionCounter.
	e := New(3)
	if e.N() != 3 {
		t.Fatalf("N = %d", e.N())
	}
	out := e.clampTransitions([][2]int{{2, 0}, {5, 2}, {1, 4}, {-1, 0}})
	if len(out) != 1 || out[0] != [2]int{2, 0} {
		t.Fatalf("clamped = %v", out)
	}
	if e.Ignored() != 3 {
		t.Fatalf("Ignored = %d, want 3", e.Ignored())
	}
}
