// Package estimator measures the paper's model parameters online (§3.3):
// the link-sharing probability Pf, the indirect-chaining probability Ps, and
// the conditional jump matrices A (arrivals/failures, downward), B
// (indirectly chained arrivals, upward) and T (terminations, upward).
//
// The estimator is shared between two consumers: the batch simulator
// (internal/sim) feeds it from simulated event reports, and the live
// forecast control plane (internal/forecast) feeds it from the admission
// server's real event stream. Both hand it the same manager reports, so a
// live daemon and an offline experiment measure parameters through the
// identical code path — the model-vs-measured comparison never has to
// wonder whether the two estimators disagree.
//
// The mechanics of a real network occasionally move a channel in the
// direction the §3.2 model does not represent (e.g. a directly chained
// channel that ends HIGHER after the squeeze-and-redistribute cycle because
// the policy rebalanced in its favour). Those jumps are counted, reported as
// discarded mass, and projected away when building markov.Params, exactly
// because the paper's chain only has downward A and upward B/T transitions.
package estimator

import (
	"drqos/internal/channel"
	"drqos/internal/manager"
	"drqos/internal/markov"
	"drqos/internal/stats"
)

// Estimator accumulates event observations over n bandwidth states.
// It is NOT safe for concurrent use; callers that feed it from multiple
// goroutines (the forecast collector) must serialize access themselves.
type Estimator struct {
	n  int
	pf stats.Ratio
	ps stats.Ratio
	// pfFail is the per-failure involvement probability: the fraction of
	// alive channels squeezed by one failure event. The paper reuses Pf
	// here; measuring it separately shows Pf overstates failure impact
	// when γ approaches λ (see EXPERIMENTS.md, Figure 4).
	pfFail stats.Ratio

	arrDirect   *stats.TransitionCounter
	arrIndirect *stats.TransitionCounter
	term        *stats.TransitionCounter
	fail        *stats.TransitionCounter

	// ignored counts observed transitions whose endpoints fall outside
	// [0, n) — channels with a heterogeneous spec wider than the modeled
	// one. The simulator's homogeneous population never produces these;
	// a live server can.
	ignored int64
}

// New returns an estimator over n bandwidth states.
func New(n int) *Estimator {
	return &Estimator{
		n:           n,
		arrDirect:   stats.NewTransitionCounter(n),
		arrIndirect: stats.NewTransitionCounter(n),
		term:        stats.NewTransitionCounter(n),
		fail:        stats.NewTransitionCounter(n),
	}
}

// N returns the number of modeled bandwidth states.
func (e *Estimator) N() int { return e.n }

// Ignored returns how many observed transitions were dropped because a
// channel's level fell outside the modeled state range.
func (e *Estimator) Ignored() int64 { return e.ignored }

// transitionsOf extracts (from → to) for each listed connection: changed
// connections come from the report's change list, unchanged ones sit at
// their current level. Levels outside the modeled range are dropped and
// counted in Ignored.
func (e *Estimator) transitionsOf(m *manager.Manager, ids []channel.ConnID, changes []manager.LevelChange) [][2]int {
	changed := make(map[channel.ConnID][2]int, len(changes))
	for _, ch := range changes {
		changed[ch.ID] = [2]int{ch.From, ch.To}
	}
	out := make([][2]int, 0, len(ids))
	for _, id := range ids {
		ft, ok := changed[id]
		if !ok {
			c := m.Conn(id)
			if c == nil || !c.Alive() {
				continue // the channel died during the event (e.g. dropped)
			}
			ft = [2]int{c.Level, c.Level}
		}
		out = append(out, ft)
	}
	return e.clampTransitions(out)
}

// clampTransitions filters out transitions whose endpoints fall outside the
// modeled [0, n) range, counting them in Ignored.
func (e *Estimator) clampTransitions(fts [][2]int) [][2]int {
	out := fts[:0]
	for _, ft := range fts {
		if ft[0] < 0 || ft[0] >= e.n || ft[1] < 0 || ft[1] >= e.n {
			e.ignored++
			continue
		}
		out = append(out, ft)
	}
	return out
}

// ObserveArrival folds one accepted arrival into the estimate. alivePrior
// is the number of alive connections before the arrival (the Pf/Ps
// denominator).
func (e *Estimator) ObserveArrival(m *manager.Manager, rep *manager.ArrivalReport, alivePrior int) {
	e.pf.ObserveN(int64(len(rep.DirectlyChained)), int64(alivePrior))
	e.ps.ObserveN(int64(len(rep.IndirectlyChained)), int64(alivePrior))
	for _, ft := range e.transitionsOf(m, rep.DirectlyChained, rep.Changes) {
		e.arrDirect.Record(ft[0], ft[1])
	}
	for _, ft := range e.transitionsOf(m, rep.IndirectlyChained, rep.Changes) {
		e.arrIndirect.Record(ft[0], ft[1])
	}
}

// ObserveTermination folds one termination into the estimate.
func (e *Estimator) ObserveTermination(m *manager.Manager, rep *manager.TerminationReport) {
	for _, ft := range e.transitionsOf(m, rep.Affected, rep.Changes) {
		e.term.Record(ft[0], ft[1])
	}
}

// ObserveFailure folds one link failure into the estimate: the squeezed
// population (primaries sharing links with activated backups) drives the
// γ-scaled downward transitions. alivePrior is the population before the
// failure (the involvement denominator).
func (e *Estimator) ObserveFailure(m *manager.Manager, rep *manager.FailureReport, alivePrior int) {
	e.pfFail.ObserveN(int64(len(rep.Squeezed)), int64(alivePrior))
	for _, ft := range e.transitionsOf(m, rep.Squeezed, rep.Changes) {
		e.fail.Record(ft[0], ft[1])
	}
}

// Pf returns the measured link-sharing probability.
func (e *Estimator) Pf() float64 { return e.pf.Value() }

// Ps returns the measured indirect-chaining probability.
func (e *Estimator) Ps() float64 { return e.ps.Value() }

// PfFail returns the measured per-failure involvement probability (the
// fraction of channels squeezed by one failure). Zero when no failure was
// observed.
func (e *Estimator) PfFail() float64 { return e.pfFail.Value() }

// Discarded reports the fraction of observed jumps that pointed in the
// direction the §3.2 model does not represent, per matrix.
func (e *Estimator) Discarded() (a, b, t float64) {
	a = discardedFraction(merge(e.arrDirect, e.fail), true)
	b = discardedFraction(e.arrIndirect, false)
	t = discardedFraction(e.term, false)
	return a, b, t
}

func merge(x, y *stats.TransitionCounter) *stats.TransitionCounter {
	m := stats.NewTransitionCounter(x.N())
	if err := m.Merge(x); err != nil {
		panic(err)
	}
	if err := m.Merge(y); err != nil {
		panic(err)
	}
	return m
}

// discardedFraction returns the share of jumps on the wrong side of the
// diagonal (above for a downward matrix, below for an upward one).
func discardedFraction(c *stats.TransitionCounter, downward bool) float64 {
	var wrong, total int
	for i := 0; i < c.N(); i++ {
		for j := 0; j < c.N(); j++ {
			if i == j {
				continue
			}
			n := c.Count(i, j)
			total += n
			if downward && j > i {
				wrong += n
			}
			if !downward && j < i {
				wrong += n
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(wrong) / float64(total)
}

// project keeps only the allowed triangle of the empirical jump matrix and
// renormalizes each row.
func project(c *stats.TransitionCounter, downward bool) [][]float64 {
	n := c.N()
	out := make([][]float64, n)
	for i := range out {
		out[i] = make([]float64, n)
		var rowSum float64
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			if downward && j >= i {
				continue
			}
			if !downward && j <= i {
				continue
			}
			rowSum += float64(c.Count(i, j))
		}
		if rowSum == 0 {
			continue
		}
		for j := 0; j < n; j++ {
			if i == j || (downward && j >= i) || (!downward && j <= i) {
				continue
			}
			out[i][j] = float64(c.Count(i, j)) / rowSum
		}
	}
	return out
}

// jumpProb returns, per state, P(event moves the channel at all), i.e. the
// conditional activity that scales each row's contribution.
func jumpProb(c *stats.TransitionCounter, downward bool) []float64 {
	n := c.N()
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		var moved, total int
		for j := 0; j < n; j++ {
			cnt := c.Count(i, j)
			total += cnt
			if i == j {
				continue
			}
			if downward && j < i || !downward && j > i {
				moved += cnt
			}
		}
		if total > 0 {
			out[i] = float64(moved) / float64(total)
		}
	}
	return out
}

// fullJump converts raw counts into the unrestricted conditional jump
// matrix: P(land in j | event observed in state i), for i ≠ j. The diagonal
// remainder is the no-change probability.
func fullJump(c *stats.TransitionCounter) [][]float64 {
	n := c.N()
	out := make([][]float64, n)
	for i := range out {
		out[i] = make([]float64, n)
		ev := c.Events(i)
		if ev == 0 {
			continue
		}
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			out[i][j] = float64(c.Count(i, j)) / float64(ev)
		}
	}
	return out
}

// GeneralTerms returns the four empirical event streams for
// markov.BuildGeneral — the "extended" model that keeps the jumps the
// paper's triangular structure discards. Rates should be the EFFECTIVE
// rates observed during measurement (accepted arrivals, terminations,
// failures per unit time).
func (e *Estimator) GeneralTerms(lambda, mu, gamma float64) []markov.Term {
	return []markov.Term{
		{Name: "arrival-direct", Rate: lambda, Weight: e.Pf(), Jump: fullJump(e.arrDirect)},
		{Name: "arrival-indirect", Rate: lambda, Weight: e.Ps(), Jump: fullJump(e.arrIndirect)},
		{Name: "termination", Rate: mu, Weight: e.Pf(), Jump: fullJump(e.term)},
		{Name: "failure", Rate: gamma, Weight: e.PfFail(), Jump: fullJump(e.fail)},
	}
}

// Params assembles markov.Params from the measurements. The A matrix merges
// the arrival-direct and failure observations (the paper uses the same A
// for both the λ and γ terms). Each projected row is additionally scaled by
// the per-state movement probability, because the §3.2 rates are "event
// happened AND state changed" rates: A_ij in the paper's rate Pf·A_ij·λ is
// the probability that a directly chained channel in S_i moves to S_j given
// an arrival, including the possibility of not moving (rows may sum to <1).
func (e *Estimator) Params(lambda, mu, gamma float64) markov.Params {
	aCounts := merge(e.arrDirect, e.fail)
	scale := func(m [][]float64, act []float64) [][]float64 {
		for i := range m {
			for j := range m[i] {
				m[i][j] *= act[i]
			}
		}
		return m
	}
	return markov.Params{
		N:      e.n,
		Lambda: lambda,
		Mu:     mu,
		Gamma:  gamma,
		Pf:     e.Pf(),
		Ps:     e.Ps(),
		A:      scale(project(aCounts, true), jumpProb(aCounts, true)),
		B:      scale(project(e.arrIndirect, false), jumpProb(e.arrIndirect, false)),
		T:      scale(project(e.term, false), jumpProb(e.term, false)),
	}
}
