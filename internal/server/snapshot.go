package server

import (
	"context"
	"math"
	"time"

	"drqos/internal/manager"
	"drqos/internal/stats"
	"drqos/internal/topology"
)

// Stats is a consistent point-in-time snapshot of the admission service,
// taken inside the command loop so no event is half-applied.
type Stats struct {
	// Topology.
	Nodes        int   `json:"nodes"`
	Links        int   `json:"links"`
	CapacityKbps int64 `json:"capacity_kbps"`

	// Connection population.
	Alive            int     `json:"alive"`
	Unprotected      int     `json:"unprotected"`
	AvgBandwidthKbps float64 `json:"avg_bandwidth_kbps"`
	// LevelHistogram counts alive connections per bandwidth level (index 0
	// is the minimum level).
	LevelHistogram []int `json:"level_histogram"`

	// Admission counters (cumulative).
	Requests   int64   `json:"requests"`
	Rejects    int64   `json:"rejects"`
	RejectRate float64 `json:"reject_rate"`

	// Fault state.
	FailedLinks []int `json:"failed_links"`

	// Degraded mode: set after the first detected invariant violation;
	// mutating commands answer 503 until a recovery succeeds (journaled
	// servers) or the operator restarts the daemon.
	Degraded            bool   `json:"degraded"`
	DegradedReason      string `json:"degraded_reason,omitempty"`
	InvariantViolations int64  `json:"invariant_violations"`

	// Overload control plane: the overloaded state (sustained consuming-
	// lane queue delay above target), cumulative shed counters by reason,
	// and per-lane queueing-delay digests.
	Overloaded       bool                 `json:"overloaded"`
	OverloadEpisodes int64                `json:"overload_episodes"`
	ShedExpired      int64                `json:"shed_expired"`
	ShedCanceled     int64                `json:"shed_canceled"`
	Lanes            map[string]LaneStats `json:"lanes"`

	// Durability and recovery state (all zero for in-memory servers).
	Journaled         bool   `json:"journaled"`
	JournalSeq        uint64 `json:"journal_seq,omitempty"`
	JournalSnapshot   uint64 `json:"journal_snapshot_seq,omitempty"`
	JournalErrors     int64  `json:"journal_errors,omitempty"`
	Recovering        bool   `json:"recovering"`
	Recoveries        int64  `json:"recoveries"`
	RecoveryFailures  int64  `json:"recovery_failures"`
	LastRecoveryError string `json:"last_recovery_error,omitempty"`

	// Group-commit durability (zero unless the journal batches fsyncs):
	// JournalSynced is the highest sequence known durable — acknowledged
	// mutations are always <= it; FsyncBatches/BatchedAppends expose the
	// realized amortization.
	GroupCommit    bool   `json:"group_commit,omitempty"`
	JournalSynced  uint64 `json:"journal_synced_seq,omitempty"`
	FsyncBatches   int64  `json:"fsync_batches,omitempty"`
	BatchedAppends int64  `json:"batched_appends,omitempty"`

	// Epoch describes the published read-path snapshot this Stats was (or
	// could have been) served from: its sequence number, its age — the
	// staleness bound — and the cumulative publish count. Nil only for a
	// Stats built before the epoch layer existed.
	Epoch *EpochStats `json:"epoch,omitempty"`

	// Command-loop counters (cumulative) and instantaneous queue depth
	// (both lanes combined; per-lane depths live in Lanes).
	Commands   CommandStats `json:"commands"`
	QueueDepth int          `json:"queue_depth"`

	// Forecast summarizes the live analytic control plane (estimated
	// parameters, solve health, predictive latch); nil when disabled. The
	// full distribution lives on GET /v1/forecast.
	Forecast *ForecastStats `json:"forecast,omitempty"`

	// Replica summarizes the replication plane (role, fencing term, stream
	// lag); nil on a server that has never replicated, so non-HA payloads
	// are unchanged.
	Replica *ReplicaStats `json:"replica,omitempty"`
}

// CommandStats counts processed commands by kind.
type CommandStats struct {
	Processed   int64 `json:"processed"`
	Establishes int64 `json:"establishes"`
	Terminates  int64 `json:"terminates"`
	Failures    int64 `json:"failures"`
	Repairs     int64 `json:"repairs"`
	Snapshots   int64 `json:"snapshots"`
}

// LaneStats describes one priority lane: its instantaneous backlog and the
// streaming queueing-delay distribution of everything it has dequeued.
type LaneStats struct {
	Depth        int     `json:"depth"`
	DelayCount   int     `json:"delay_count"`
	DelayP50Sec  float64 `json:"delay_p50_seconds"`
	DelayP90Sec  float64 `json:"delay_p90_seconds"`
	DelayP99Sec  float64 `json:"delay_p99_seconds"`
	DelayMaxSec  float64 `json:"delay_max_seconds"`
	DelayMeanSec float64 `json:"delay_mean_seconds"`
}

// laneStats renders a delay digest, guarding the empty case: JSON cannot
// encode NaN, so an unobserved lane reports zeros with DelayCount 0.
func laneStats(depth int, d *stats.Digest) LaneStats {
	ls := LaneStats{Depth: depth, DelayCount: d.N()}
	if d.N() == 0 {
		return ls
	}
	clean := func(v float64) float64 {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return 0
		}
		return v
	}
	ls.DelayP50Sec = clean(d.P50())
	ls.DelayP90Sec = clean(d.P90())
	ls.DelayP99Sec = clean(d.P99())
	ls.DelayMaxSec = clean(d.Max())
	ls.DelayMeanSec = clean(d.Mean())
	return ls
}

// Snapshot captures the current service state through the command loop.
func (s *Server) Snapshot(ctx context.Context) (Stats, error) {
	ch := make(chan Stats, 1)
	if err := s.submit(ctx, laneFreeing, false, func(m *manager.Manager) {
		s.snapshots.Add(1)
		st := Stats{
			Nodes:            m.Graph().NumNodes(),
			Links:            m.Graph().NumLinks(),
			CapacityKbps:     int64(m.Network().Capacity()),
			Alive:            m.AliveCount(),
			Unprotected:      m.UnprotectedCount(),
			AvgBandwidthKbps: m.AverageBandwidth(),
			LevelHistogram:   m.LevelHistogram(nil),
			Requests:         m.Requests(),
			Rejects:          m.Rejects(),
		}
		if st.Requests > 0 {
			st.RejectRate = float64(st.Rejects) / float64(st.Requests)
		}
		for l := 0; l < m.Graph().NumLinks(); l++ {
			if m.Network().Failed(topology.LinkID(l)) {
				st.FailedLinks = append(st.FailedLinks, l)
			}
		}
		st.Degraded, st.DegradedReason = s.Degraded()
		st.InvariantViolations = s.invariantViolations.Load()
		st.Overloaded = s.Overloaded()
		st.OverloadEpisodes = s.OverloadEpisodes()
		st.ShedExpired, st.ShedCanceled = s.Sheds()
		// The digests are loop-owned; this closure runs in the loop, so
		// reading them here is race-free.
		st.Lanes = map[string]LaneStats{
			laneFreeing.String():   laneStats(len(s.freeing), s.delayFreeing),
			laneConsuming.String(): laneStats(len(s.consuming), s.delayConsuming),
		}
		if s.jnl != nil {
			st.Journaled = true
			st.JournalSeq = s.jnl.LastSeq()
			st.JournalSnapshot = s.jnl.SnapshotSeq()
			st.JournalErrors = s.journalErrors.Load()
			if s.jnl.GroupCommit() {
				st.GroupCommit = true
				st.JournalSynced = s.jnl.SyncedSeq()
				st.FsyncBatches, st.BatchedAppends = s.jnl.GroupCommitStats()
			}
		}
		if v := s.View(); v != nil {
			st.Epoch = &EpochStats{
				Seq:        v.Seq,
				AgeSeconds: time.Since(v.PublishedAt).Seconds(),
				Publishes:  s.epochPublishes.Load(),
				Frozen:     s.degraded.Load(),
			}
		}
		st.Recovering, st.Recoveries, st.RecoveryFailures, st.LastRecoveryError = s.RecoveryStatus()
		st.Commands = CommandStats{
			Processed:   s.processed.Load(),
			Establishes: s.establishes.Load(),
			Terminates:  s.terminates.Load(),
			Failures:    s.failures.Load(),
			Repairs:     s.repairs.Load(),
			Snapshots:   s.snapshots.Load(),
		}
		st.QueueDepth = s.QueueDepth()
		st.Forecast = forecastStats(s.fc)
		st.Replica = s.replicaBlock()
		ch <- st
	}); err != nil {
		return Stats{}, err
	}
	return await(ctx, ch)
}
