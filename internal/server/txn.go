// Cross-shard two-phase commit, shard side. A cross-shard establish is
// coordinated by internal/shard: the coordinator splits the global path
// into per-shard runs and drives each participating shard through
// PrepareTxn (pin the local sub-path as a rigid fixed connection) and then
// CommitTxn (finalize) or AbortTxn (terminate the pinned connections).
// Each phase is journaled on the shard's own journal before it applies —
// the same write-ahead discipline as every other mutation — so replay
// reproduces the shard's exact acknowledged state, and the coordinator's
// boot-time reconciliation resolves transactions a crash left in flight
// (commit anywhere → re-commit; committed nowhere → abort).
package server

import (
	"context"
	"fmt"

	"drqos/internal/channel"
	"drqos/internal/journal"
	"drqos/internal/manager"
	"drqos/internal/qos"
	"drqos/internal/routing"
	"drqos/internal/topology"
)

// TxnTable maps transaction IDs to their shard-local state. Loop-owned
// (like the manager): mutated only by loop commands and journal replay.
type TxnTable map[uint64]*TxnState

// TxnState is one cross-shard transaction as this shard sees it: which
// shards participate (bitmask of shard indices, from the prepare record),
// the local fixed connections the prepares pinned, and whether the commit
// arrived. A transaction disappears from the table on abort.
type TxnState struct {
	Peers     uint32
	Conns     []channel.ConnID
	Committed bool
	// runs maps the coordinator's per-run idempotency tag to the pinned
	// connection, so a prepare retried after a phase timeout returns the
	// existing pin instead of reserving twice. In-memory only: a crash
	// clears it along with the coordinator's retry state, and boot
	// reconciliation resolves whatever was in flight.
	runs map[uint64]channel.ConnID
}

// TxnInfo is a read-only view of one transaction, with enough per-
// connection detail (local primary links) for the coordinator to rebuild
// its global cross-connection index at boot.
type TxnInfo struct {
	Txn       uint64
	Peers     uint32
	Committed bool
	Conns     []TxnConnInfo
}

// TxnConnInfo describes one pinned local connection of a transaction.
type TxnConnInfo struct {
	ID    channel.ConnID
	Alive bool
	Links []topology.LinkID
}

// PrepareTxn is phase one: journal the prepare and pin the shard-local
// sub-path as a rigid (Min==Max, no-backup) connection at spec.Min. The
// spec must be rigid. A transaction may receive several prepares on the
// same shard (one per contiguous run of locally-owned links); each appends
// another pinned connection, keyed by run — the coordinator's per-run
// idempotency tag. A retried prepare carrying a run this shard already
// pinned (the first attempt applied but its reply was lost) answers the
// existing pin instead of reserving the capacity twice. Prepares ride the
// consuming lane — they reserve capacity — and obey the same
// degraded/journal guards as Establish. On a domain rejection (no
// capacity, failed link) nothing is pinned and the coordinator aborts the
// transaction.
func (s *Server) PrepareTxn(ctx context.Context, txn, run uint64, peers uint32, src, dst topology.NodeID, spec qos.ElasticSpec, path routing.Path) (*manager.ArrivalReport, error) {
	type out struct {
		rep *manager.ArrivalReport
		err error
		seq uint64
	}
	ch := make(chan out, 1)
	if err := s.submit(ctx, laneConsuming, false, func(m *manager.Manager) {
		s.establishes.Add(1)
		if err := s.refuseIfDegraded(); err != nil {
			ch <- out{nil, err, 0}
			return
		}
		if err := s.refuseIfNotPrimary(); err != nil {
			ch <- out{nil, err, 0}
			return
		}
		if err := s.refuseIfOverloadedLoop(); err != nil {
			ch <- out{nil, err, 0}
			return
		}
		if !validNode(m.Graph(), src) || !validNode(m.Graph(), dst) {
			ch <- out{nil, fmt.Errorf("%w: node out of range", ErrNotFound), 0}
			return
		}
		if tx := s.txns[txn]; tx != nil {
			if tx.Committed {
				ch <- out{nil, fmt.Errorf("%w: txn %d already committed", ErrConflict, txn), 0}
				return
			}
			if id, ok := tx.runs[run]; ok {
				// Retried prepare: the first attempt pinned this run and the
				// coordinator lost the reply. Answer the existing pin.
				if c := m.Conn(id); c != nil && c.Alive() {
					ch <- out{&manager.ArrivalReport{Conn: c}, nil, 0}
					return
				}
			}
		}
		ev := journal.Event{
			Kind: journal.KindPrepare,
			Txn:  txn, Peers: peers,
			Src: int32(src), Dst: int32(dst),
			MinKbps: int64(spec.Min), MaxKbps: int64(spec.Max),
			IncKbps: int64(spec.Increment), Utility: spec.Utility,
		}
		for _, n := range path.Nodes {
			ev.PathNodes = append(ev.PathNodes, int32(n))
		}
		for _, l := range path.Links {
			ev.PathLinks = append(ev.PathLinks, int32(l))
		}
		seq, err := s.journalAppend(ev)
		if err != nil {
			ch <- out{nil, err, 0}
			return
		}
		rep, err := m.EstablishFixed(src, dst, spec, path)
		s.noteViolation(err)
		if err == nil && rep != nil && rep.Conn != nil {
			tx := s.txns[txn]
			if tx == nil {
				tx = &TxnState{Peers: peers}
				s.txns[txn] = tx
			}
			tx.Conns = append(tx.Conns, rep.Conn.ID)
			if tx.runs == nil {
				tx.runs = make(map[uint64]channel.ConnID)
			}
			tx.runs[run] = rep.Conn.ID
		}
		s.maybeSnapshot(m)
		s.markEpochDirty()
		s.publishEpochIfDue(m)
		ch <- out{rep, err, seq}
	}); err != nil {
		return nil, err
	}
	o, err := await(ctx, ch)
	if err != nil {
		return nil, err
	}
	if derr := s.waitDurable(ctx, o.seq); derr != nil {
		return nil, derr
	}
	return o.rep, o.err
}

// CommitTxn is phase two: journal the commit and mark the transaction
// final. No manager state changes — the prepares already reserved
// everything — so commit rides the freeing lane and is never refused for
// overload (an overloaded shard must still be able to finish transactions
// it already accepted resources for). Committing an unknown transaction is
// ErrNotFound (the coordinator's bug, or an abort raced it).
func (s *Server) CommitTxn(ctx context.Context, txn uint64) error {
	type out struct {
		err error
		seq uint64
	}
	ch := make(chan out, 1)
	if err := s.submit(ctx, laneFreeing, false, func(m *manager.Manager) {
		if err := s.refuseIfDegraded(); err != nil {
			ch <- out{err, 0}
			return
		}
		if err := s.refuseIfNotPrimary(); err != nil {
			ch <- out{err, 0}
			return
		}
		tx := s.txns[txn]
		if tx == nil {
			ch <- out{fmt.Errorf("%w: txn %d", ErrNotFound, txn), 0}
			return
		}
		if tx.Committed {
			ch <- out{fmt.Errorf("%w: txn %d already committed", ErrConflict, txn), 0}
			return
		}
		seq, err := s.journalAppend(journal.Event{Kind: journal.KindCommit, Txn: txn})
		if err != nil {
			ch <- out{err, 0}
			return
		}
		tx.Committed = true
		s.maybeSnapshot(m)
		s.markEpochDirty()
		s.publishEpochIfDue(m)
		ch <- out{nil, seq}
	}); err != nil {
		return err
	}
	o, err := await(ctx, ch)
	if err != nil {
		return err
	}
	if derr := s.waitDurable(ctx, o.seq); derr != nil {
		return derr
	}
	return o.err
}

// AbortTxn releases a transaction's pinned connections: one journaled
// terminate per still-alive connection (replay-identical to any other
// terminate), then the table entry is dropped. Aborting an unknown
// transaction is a no-op — aborts must be idempotent, because the
// coordinator retries them against shards that may have already lost the
// prepare (crash before the append). Rides the freeing lane.
func (s *Server) AbortTxn(ctx context.Context, txn uint64) error {
	type out struct {
		err error
		seq uint64
	}
	ch := make(chan out, 1)
	if err := s.submit(ctx, laneFreeing, false, func(m *manager.Manager) {
		if err := s.refuseIfDegraded(); err != nil {
			ch <- out{err, 0}
			return
		}
		if err := s.refuseIfNotPrimary(); err != nil {
			ch <- out{err, 0}
			return
		}
		tx := s.txns[txn]
		if tx == nil {
			ch <- out{nil, 0}
			return
		}
		if tx.Committed {
			ch <- out{fmt.Errorf("%w: txn %d already committed", ErrConflict, txn), 0}
			return
		}
		var lastSeq uint64
		for _, id := range tx.Conns {
			if c := m.Conn(id); c == nil || !c.Alive() {
				continue // already dropped by a link failure
			}
			seq, err := s.journalAppend(journal.Event{Kind: journal.KindTerminate, Conn: int64(id)})
			if err != nil {
				ch <- out{err, lastSeq}
				return
			}
			lastSeq = seq
			_, err = m.Terminate(id)
			s.noteViolation(err)
			if err != nil {
				ch <- out{err, lastSeq}
				return
			}
		}
		delete(s.txns, txn)
		s.maybeSnapshot(m)
		s.markEpochDirty()
		s.publishEpochIfDue(m)
		ch <- out{nil, lastSeq}
	}); err != nil {
		return err
	}
	o, err := await(ctx, ch)
	if err != nil {
		return err
	}
	if derr := s.waitDurable(ctx, o.seq); derr != nil {
		return derr
	}
	return o.err
}

// Txns reads the transaction table — a loop read, consistent with the
// manager state at the instant it runs. The coordinator uses it at boot to
// reconcile in-flight transactions across shards and rebuild its global
// cross-connection index.
func (s *Server) Txns(ctx context.Context) ([]TxnInfo, error) {
	ch := make(chan []TxnInfo, 1)
	if err := s.submit(ctx, laneFreeing, false, func(m *manager.Manager) {
		infos := make([]TxnInfo, 0, len(s.txns))
		for id, tx := range s.txns {
			info := TxnInfo{Txn: id, Peers: tx.Peers, Committed: tx.Committed}
			for _, cid := range tx.Conns {
				ci := TxnConnInfo{ID: cid}
				if c := m.Conn(cid); c != nil && c.Alive() {
					ci.Alive = true
					ci.Links = append([]topology.LinkID(nil), c.Primary.Links...)
				}
				info.Conns = append(info.Conns, ci)
			}
			infos = append(infos, info)
		}
		ch <- infos
	}); err != nil {
		return nil, err
	}
	return await(ctx, ch)
}

// ConnStatus is the point-lookup view of one connection
// (GET /v1/connections/{id}).
type ConnStatus struct {
	ID            int64 `json:"id"`
	Alive         bool  `json:"alive"`
	Level         int   `json:"level"`
	BandwidthKbps int64 `json:"bandwidth_kbps"`
	HasBackup     bool  `json:"has_backup"`
}

// ConnStatus looks up one connection in the loop. Unknown IDs answer
// ErrNotFound; terminated or failure-dropped connections answer with
// Alive=false.
func (s *Server) ConnStatus(ctx context.Context, id channel.ConnID) (*ConnStatus, error) {
	ch := make(chan *ConnStatus, 1)
	if err := s.submit(ctx, laneFreeing, false, func(m *manager.Manager) {
		c := m.Conn(id)
		if c == nil {
			ch <- nil
			return
		}
		st := &ConnStatus{ID: int64(id), Alive: c.Alive()}
		if c.Alive() {
			st.Level = c.Level
			st.BandwidthKbps = int64(c.Bandwidth())
			st.HasBackup = c.HasBackup
		}
		ch <- st
	}); err != nil {
		return nil, err
	}
	st, err := await(ctx, ch)
	if err != nil {
		return nil, err
	}
	if st == nil {
		return nil, fmt.Errorf("%w: connection %d", ErrNotFound, id)
	}
	return st, nil
}

// StateFingerprint exports the manager state in the loop and returns its
// canonical hex digest — the bit-identity probe the sharded chaos harness
// compares across crash/replay.
func (s *Server) StateFingerprint(ctx context.Context) (string, error) {
	ch := make(chan string, 1)
	if err := s.submit(ctx, laneFreeing, false, func(m *manager.Manager) {
		ch <- m.ExportState().Fingerprint()
	}); err != nil {
		return "", err
	}
	return await(ctx, ch)
}

// CorruptForTesting plants an aggregate-ledger corruption in the loop and
// runs the audit so the server latches degraded deterministically. It
// exists for fault drills — the sharded 2PC abort tests latch one
// participant degraded mid-transaction with it — and has no production
// caller.
func (s *Server) CorruptForTesting(ctx context.Context) error {
	ch := make(chan error, 1)
	if err := s.submit(ctx, laneFreeing, false, func(m *manager.Manager) {
		m.CorruptAggregatesForTesting()
		err := m.CheckInvariants()
		s.noteViolation(err)
		ch <- err
	}); err != nil {
		return err
	}
	return unwrapAwait(await(ctx, ch))
}

// refuseIfOverloadedLoop mirrors the HTTP layer's establish shedding for
// loop-internal callers (the 2PC coordinator bypasses HTTP): an overloaded
// shard refuses new prepares with a retry hint, exactly as it refuses new
// establishes.
func (s *Server) refuseIfOverloadedLoop() error {
	if s.Overloaded() {
		return ErrOverloaded
	}
	return nil
}
