package server_test

import (
	"context"
	"errors"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"drqos/internal/channel"
	"drqos/internal/forecast"
	"drqos/internal/manager"
	"drqos/internal/qos"
	"drqos/internal/rng"
	"drqos/internal/server"
	"drqos/internal/topology"
)

func newForecastServer(t *testing.T, fcfg forecast.Config) *server.Server {
	t.Helper()
	g, err := topology.Waxman(topology.WaxmanConfig{
		Nodes: 40, Alpha: 0.33, Beta: 0.25, EnsureConnected: true,
	}, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	s, err := server.New(g, manager.Config{Capacity: 10000}, server.Options{
		QueueDepth: 64, Forecast: &fcfg,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// churnServer drives a closed-loop mix of establishes and terminations
// through the server API (so the forecaster taps fire exactly as in
// production) and returns how many arrivals were accepted.
func churnServer(t *testing.T, s *server.Server, seed uint64, ops int, terminateFrac float64) int {
	t.Helper()
	ctx := context.Background()
	src := rng.New(seed)
	nodes := s.Graph().NumNodes()
	spec := qos.DefaultSpec()
	var alive []channel.ConnID
	accepted := 0
	for i := 0; i < ops; i++ {
		if len(alive) > 0 && src.Float64() < terminateFrac {
			last := len(alive) - 1
			id := alive[last]
			alive = alive[:last]
			if _, err := s.Terminate(ctx, id); err != nil {
				t.Fatalf("terminate: %v", err)
			}
			continue
		}
		a, b := src.Intn(nodes), src.Intn(nodes)
		if a == b {
			b = (b + 1) % nodes
		}
		rep, err := s.Establish(ctx, topology.NodeID(a), topology.NodeID(b), spec)
		switch {
		case err == nil:
			alive = append(alive, rep.Conn.ID)
			accepted++
		case errors.Is(err, manager.ErrRejected):
		default:
			t.Fatalf("establish: %v", err)
		}
	}
	return accepted
}

func TestForecastHTTPDisabled(t *testing.T) {
	s := newTestServer(t, 64)
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(server.NewHandler(s))
	defer ts.Close()
	c := ts.Client()

	code, raw := doJSON(t, c, "GET", ts.URL+"/v1/forecast", nil, nil)
	if code != http.StatusNotFound {
		t.Errorf("GET /v1/forecast without forecasting: %d %s, want 404", code, raw)
	}
	code, raw = doJSON(t, c, "POST", ts.URL+"/v1/forecast/whatif", forecast.WhatIfRequest{}, nil)
	if code != http.StatusNotFound {
		t.Errorf("whatif without forecasting: %d %s, want 404", code, raw)
	}
}

// TestForecastHTTPRoundTrip walks the full HTTP surface: unavailable before
// data, available after a solve, what-if counterfactuals, the stats block
// and the Prometheus gauges.
func TestForecastHTTPRoundTrip(t *testing.T) {
	// A one-hour interval keeps the ticker out of the way; the test drives
	// solves explicitly for determinism.
	s := newForecastServer(t, forecast.Config{Interval: time.Hour, MinEvents: 10})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(server.NewHandler(s))
	defer ts.Close()
	c := ts.Client()

	// Before any events: reachable, but explicitly unavailable.
	var env server.ForecastEnvelope
	code, raw := doJSON(t, c, "GET", ts.URL+"/v1/forecast", nil, &env)
	if code != http.StatusOK || env.Available || env.Reason == "" {
		t.Fatalf("pre-data forecast: %d %s", code, raw)
	}
	code, raw = doJSON(t, c, "POST", ts.URL+"/v1/forecast/whatif", forecast.WhatIfRequest{}, nil)
	if code != http.StatusConflict {
		t.Fatalf("whatif before first solve: %d %s, want 409", code, raw)
	}

	churnServer(t, s, 17, 300, 0.3)
	if _, err := s.Forecaster().SolveNow(); err != nil {
		t.Fatal(err)
	}

	code, raw = doJSON(t, c, "GET", ts.URL+"/v1/forecast", nil, &env)
	if code != http.StatusOK || !env.Available || env.Forecast == nil {
		t.Fatalf("post-solve forecast: %d %s", code, raw)
	}
	f := env.Forecast
	if f.Seq < 1 || f.Stale || f.MeanBandwidthKbps < 100 || f.MeanBandwidthKbps > 500 {
		t.Errorf("forecast body: %+v", f)
	}
	if f.Lambda <= 0 || f.AvgAlive <= 0 || len(f.Pi) != f.States {
		t.Errorf("forecast parameters: λ=%g avgAlive=%g |π|=%d states=%d", f.Lambda, f.AvgAlive, len(f.Pi), f.States)
	}

	var wi forecast.WhatIfResponse
	code, raw = doJSON(t, c, "POST", ts.URL+"/v1/forecast/whatif", forecast.WhatIfRequest{Count: 5}, &wi)
	if code != http.StatusOK {
		t.Fatalf("whatif: %d %s", code, raw)
	}
	if wi.Count != 5 || wi.MeanKbps <= 0 || wi.Reason == "" || wi.DeltaTuning == nil {
		t.Errorf("whatif body: %+v", wi)
	}
	code, raw = doJSON(t, c, "POST", ts.URL+"/v1/forecast/whatif",
		forecast.WhatIfRequest{MinKbps: 300, MaxKbps: 100, IncrementKbps: 50}, nil)
	if code != http.StatusUnprocessableEntity {
		t.Fatalf("invalid whatif spec: %d %s, want 422", code, raw)
	}

	// Stats carry the live estimator block.
	var st server.Stats
	code, raw = doJSON(t, c, "GET", ts.URL+"/v1/stats", nil, &st)
	if code != http.StatusOK || st.Forecast == nil {
		t.Fatalf("stats forecast block: %d %s", code, raw)
	}
	if !st.Forecast.Available || st.Forecast.Lambda <= 0 || st.Forecast.Solves < 1 {
		t.Errorf("stats forecast block: %+v", st.Forecast)
	}

	// Prometheus surface.
	resp, err := c.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw2, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	metrics := string(raw2)
	for _, want := range []string{
		"drqos_forecast_available 1",
		"drqos_forecast_mean_bandwidth_kbps",
		"drqos_forecast_lambda_per_sec",
		"drqos_forecast_solves_total",
		"drqos_forecast_discarded_mass{matrix=\"A\"}",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestForecastClosedLoopAgreement is the sim-vs-forecast agreement check:
// on a steady closed-loop workload the model solved from live-estimated
// parameters must land near the measured average bandwidth (the acceptance
// bound for the CI smoke is 10%; the in-test bound is looser because the
// workload here is much shorter).
func TestForecastClosedLoopAgreement(t *testing.T) {
	s := newForecastServer(t, forecast.Config{Interval: time.Hour, MinEvents: 10})
	defer s.Shutdown(context.Background())

	churnServer(t, s, 23, 4000, 0.35)
	fc, err := s.Forecaster().SolveNow()
	if err != nil {
		t.Fatal(err)
	}
	st, err := s.Snapshot(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.AvgBandwidthKbps <= 0 {
		t.Fatalf("no standing population to measure against: %+v", st)
	}
	rel := math.Abs(fc.MeanBandwidthKbps-st.AvgBandwidthKbps) / st.AvgBandwidthKbps
	t.Logf("predicted %.1f Kb/s, measured %.1f Kb/s, rel err %.1f%% (λ=%.1f μ=%.1f Pf=%.3f N̄=%.1f)",
		fc.MeanBandwidthKbps, st.AvgBandwidthKbps, 100*rel, fc.Lambda, fc.Mu, fc.Pf, fc.AvgAlive)
	if rel > 0.20 {
		t.Errorf("forecast disagrees with measurement by %.1f%% (> 20%%)", 100*rel)
	}
}

// TestForecastLiveWhileOverloaded: the forecast read path never touches
// the actor loop, so it keeps serving while the overload control plane is
// shedding capacity-consuming work.
func TestForecastLiveWhileOverloaded(t *testing.T) {
	s := newForecastServer(t, forecast.Config{Interval: time.Hour, MinEvents: 10})
	defer s.Shutdown(context.Background())

	churnServer(t, s, 29, 300, 0.3)
	if _, err := s.Forecaster().SolveNow(); err != nil {
		t.Fatal(err)
	}
	s.ForceOverloaded(true)

	ts := httptest.NewServer(server.NewHandler(s))
	defer ts.Close()
	c := ts.Client()

	// Establishes are shed with 503 while overloaded...
	code, raw := doJSON(t, c, "POST", ts.URL+"/v1/connections", server.EstablishRequest{Src: 0, Dst: 5}, nil)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("establish while overloaded: %d %s, want 503", code, raw)
	}
	// ...but the forecast stays readable.
	var env server.ForecastEnvelope
	code, raw = doJSON(t, c, "GET", ts.URL+"/v1/forecast", nil, &env)
	if code != http.StatusOK || !env.Available {
		t.Fatalf("forecast while overloaded: %d %s", code, raw)
	}
}
