// Package server turns the single-threaded manager.Manager into a
// long-running concurrent admission service. The manager is not safe for
// concurrent use, so the Server runs it behind an actor-style command loop:
// exactly one goroutine owns the manager and executes commands submitted
// over buffered channels, while any number of client goroutines call
// Establish / Terminate / FailLink / RepairLink / Snapshot concurrently.
//
// The command queue is the server's own overload control plane, applying
// the paper's elastic-QoS discipline to the request stream itself:
//
//   - Priority lanes: commands are split into capacity-FREEING work
//     (terminate, repair, recovery swaps, reads) and capacity-CONSUMING
//     work (establish, fail injection), drained strictly freeing-first.
//     Releasing bandwidth is what lets degraded connections climb back
//     toward Bmax, so under pressure the work that frees capacity — and
//     the reads that let operators see what is happening — never queues
//     behind a backlog of new admissions.
//   - Deadline propagation: every command carries its caller's context and
//     enqueue time. The loop sheds commands whose caller has already given
//     up instead of executing dead work (counted per reason in
//     drqos_shed_total), so a wedged burst cannot force the manager to
//     churn through requests nobody is waiting for.
//   - Adaptive shedding: per-command queueing delay feeds a CoDel-style
//     detector (internal/overload); sustained delay above target latches
//     an "overloaded" state that the HTTP layer uses to refuse new
//     capacity-consuming work with 503 + Retry-After while reads and
//     terminations stay live.
//
// Command semantics: a call that returns a nil or domain error was applied
// to the manager exactly once. A call that returns the context's error was
// NOT applied if the loop shed it before execution; in the unavoidable race
// where the deadline expires at execution time, it may have been applied
// with the result discarded — the same ambiguity any timed-out RPC has.
// ErrServerClosed means the command was never accepted. Shutdown stops
// admission, drains every accepted command (shedding the expired ones), and
// only then stops the loop.
//
// With Options.Journal set the server follows write-ahead discipline: every
// mutating command is appended to the journal — after its validity
// pre-checks, before the manager mutates — and a snapshot of the manager's
// durable state is written every SnapshotEvery journaled events to bound
// replay. recovery.go adds the supervised exit from degraded mode: a
// rebuilt-and-audited manager is atomically swapped into the command loop.
//
// The HTTP layer in http.go exposes the same operations as a JSON API plus
// Prometheus-style /metrics and /healthz + /readyz probes; cmd/drserverd
// wires it to a listener and cmd/drload exercises it under concurrent load.
package server

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"drqos/internal/channel"
	"drqos/internal/forecast"
	"drqos/internal/journal"
	"drqos/internal/manager"
	"drqos/internal/overload"
	"drqos/internal/qos"
	"drqos/internal/stats"
	"drqos/internal/topology"
)

// ErrServerClosed reports that the command loop no longer accepts commands.
var ErrServerClosed = errors.New("server: closed")

// ErrDegraded reports that the service detected a manager invariant
// violation and now refuses mutating commands (Establish / Terminate /
// FailLink / RepairLink). Reads — Snapshot, CheckInvariants, the HTTP GET
// endpoints — keep working, so operators can inspect the corrupted state:
// the daemon degrades instead of dying. Mapped to HTTP 503. A journaled
// server can leave degraded mode through Recover (POST /v1/admin/recover).
var ErrDegraded = errors.New("server: degraded after invariant violation, mutations refused")

// ErrOverloaded reports that sustained actor-queue delay latched the
// overloaded state: new capacity-consuming work (establish, fail injection)
// is refused with a retry hint while reads and capacity-freeing work stay
// live. Mapped to HTTP 503 + Retry-After.
var ErrOverloaded = errors.New("server: overloaded, retry later")

// ErrNotFound reports an operation against an unknown connection or link.
var ErrNotFound = errors.New("server: not found")

// ErrConflict reports an operation that contradicts current state, e.g.
// failing an already-failed link.
var ErrConflict = errors.New("server: conflict")

// ErrNotPrimary reports a mutation against a replica running in the
// follower role: followers serve reads and apply the primary's stream, but
// never originate mutations — a fenced ex-primary answering this instead
// of silently accepting writes is what keeps split-brain off the table.
// Mapped to HTTP 503 (the daemon's front layer additionally answers 307
// with the primary's address when it knows one).
var ErrNotPrimary = errors.New("server: not primary, mutations refused in follower role")

// ErrFenced reports a mutation the primary could not safely acknowledge
// because its standby-granted replication lease lapsed (a partition, or a
// standby that stopped confirming): the write may not reach a standby that
// is about to promote, so acking it would lose it across the failover.
// Unlike ErrNotPrimary this is a primary-side refusal — the node keeps its
// role and resumes the moment a standby confirms again. Mapped to HTTP 503
// + Retry-After (retryable: the client's next attempt lands after the
// lease renews or on the promoted standby).
var ErrFenced = errors.New("server: replication lease lost, mutation not acknowledged")

// lane identifies which priority queue a command rides.
type lane int

const (
	// laneFreeing carries capacity-freeing and observability work:
	// terminate, repair, recovery swaps, snapshots, audits. Always drained
	// before laneConsuming.
	laneFreeing lane = iota
	// laneConsuming carries capacity-consuming work: establish and fail
	// injection.
	laneConsuming
)

func (l lane) String() string {
	if l == laneFreeing {
		return "freeing"
	}
	return "consuming"
}

// command is one unit of actor-loop work: the closure plus the caller's
// context (for expired-work shedding) and enqueue time (for queue-delay
// accounting).
type command struct {
	ctx      context.Context
	fn       func(*manager.Manager)
	enqueued time.Time
}

// Options tunes the command loop.
type Options struct {
	// QueueDepth is the per-lane command-channel buffer (default 256). A
	// deeper queue absorbs burstier arrivals at the cost of tail latency.
	QueueDepth int
	// Overload tunes the sustained-queue-delay detector that latches the
	// overloaded state. Zero selects the defaults (100ms target, 1s
	// interval); Target < 0 disables detection entirely.
	Overload overload.DetectorConfig
	// OnOverload, when non-nil, is called from the command loop goroutine
	// each time the overloaded state flips (true = latched, false =
	// cleared by a good sample). Daemons use it to log transitions.
	OnOverload func(overloaded bool)
	// ExecDelay adds an artificial pause before each executed command.
	// Zero in production; overload drills and the chaos harness use it to
	// make queueing delay — and therefore shedding — deterministic.
	ExecDelay time.Duration
	// OnDegrade, when non-nil, is called exactly once per degrade episode —
	// from the command loop goroutine — when an invariant violation flips
	// the server into degraded mode. Daemons use it to log the event.
	OnDegrade func(reason string)
	// Journal, when non-nil, makes every mutation durable: commands are
	// appended (write-ahead) before the manager applies them. The server
	// takes ownership of snapshot writing but NOT of Close — the daemon
	// closes the journal after Shutdown has drained the loop.
	Journal *journal.Journal
	// SnapshotEvery writes a state snapshot after this many journaled
	// events (default 1024; negative disables snapshots).
	SnapshotEvery int
	// Recover configures automatic recovery from degraded mode; zero value
	// means manual-only (POST /v1/admin/recover).
	Recover RecoverPolicy
	// OnRecover, when non-nil, is called after each successful recovery
	// with the journal sequence the rebuilt manager reached. It mirrors
	// OnDegrade; daemons use it to log the event.
	OnRecover func(seq uint64)
	// EpochInterval caps the staleness of the published epoch view under
	// sustained load (default 25ms; see epoch.go). When the command lanes
	// are idle a new epoch is published immediately after each mutation, so
	// the cap only bites while a backlog keeps the loop busy.
	EpochInterval time.Duration
	// Txns seeds the cross-shard transaction table — typically the one a
	// journal rebuild recovered (RebuildWithTxns). Nil starts empty. Only
	// the sharded deployment uses it; a standalone server's table stays
	// empty forever.
	Txns TxnTable
	// Follower starts the server in the follower role: every mutating
	// command answers ErrNotPrimary, and state advances only through
	// ApplyReplicated (the primary's journal stream) until Promote flips
	// the role. The zero value starts a primary, which is every
	// non-replicated deployment.
	Follower bool
	// Term seeds the replication term — typically journal.Recovered.Term,
	// so a restarted replica resumes fencing where its journal left off.
	Term uint64
	// WaitReplicated, when non-nil, is called after a mutation's journal
	// record became locally durable and before the client is acknowledged,
	// with the record's sequence number. The replication shipper uses it
	// for semi-synchronous mode: block (bounded) until a standby has
	// fetched the record, so an acknowledged mutation survives losing the
	// primary. Zero-cost when replication is off (nil hook).
	WaitReplicated func(ctx context.Context, seq uint64) error
	// AnnotateSnapshot, when non-nil, runs on every snapshot header just
	// before it is written, so outer planes can persist their own crash-safe
	// counters (the shard coordinator journals its cross-shard txn counters
	// this way).
	AnnotateSnapshot func(hdr *journal.SnapshotHeader)
	// ReplicaStats, when non-nil, supplies the replication block served
	// under /v1/stats and /metrics (lag, peer liveness). The server fills
	// the role/term/promotion fields itself.
	ReplicaStats func() *ReplicaStats
	// Forecast, when non-nil, runs the live analytic control plane
	// (internal/forecast): every applied establish / terminate / fail-link
	// event feeds the online parameter estimator, the Markov chain is
	// re-solved on Forecast.Interval off the actor loop, and the HTTP
	// layer serves /v1/forecast and /v1/forecast/whatif. With
	// Forecast.Predictive the solved model additionally drives the
	// overload detector's predictive latch (the server chains the
	// detector update in front of any caller-supplied OnPredict).
	Forecast *forecast.Config
}

// Server owns a manager.Manager behind a single-goroutine command loop.
type Server struct {
	graph *topology.Graph
	cfg   manager.Config // defaults-applied; recovery rebuilds from it

	mu       sync.Mutex
	closed   bool
	inflight sync.WaitGroup // submits past the closed-check, not yet enqueued

	freeing   chan command // terminate / repair / admin / reads
	consuming chan command // establish / fail injection
	loopDone  chan struct{}
	stop      chan struct{} // closed on Shutdown; halts the recovery supervisor

	// mgr is owned by the loop goroutine: it is written at construction
	// (before the loop starts) and by the recovery swap command (which runs
	// in the loop), and read only by the loop.
	mgr *manager.Manager

	// txns is the cross-shard transaction table (txn.go). Loop-owned, like
	// mgr: written at construction and by loop commands only.
	txns TxnTable

	// Overload control plane. detector is internally synchronized; the
	// delay digests are loop-owned and only read from inside loop commands
	// (Snapshot).
	detector       *overload.Detector
	onOverload     func(bool)
	execDelay      time.Duration
	delayFreeing   *stats.Digest
	delayConsuming *stats.Digest
	shedExpired    atomic.Int64
	shedCanceled   atomic.Int64

	// Durability. jnl is nil for an in-memory server. eventsSinceSnap is
	// loop-owned.
	jnl             *journal.Journal
	snapshotEvery   int
	eventsSinceSnap int
	journalErrors   atomic.Int64

	// Epoch view (epoch.go): the published pointer is read by anyone;
	// epochSeq / epochDirty / lastPublish are loop-owned. capacityKbps is
	// immutable after construction so StatsView can report it off-loop.
	view           atomic.Pointer[EpochView]
	epochSeq       uint64
	epochDirty     bool
	lastPublish    time.Time
	epochInterval  time.Duration
	epochPublishes atomic.Int64
	capacityKbps   int64

	// Degraded mode: set by the loop goroutine on the first detected
	// invariant violation, read by anyone. The reason is written under
	// degradedMu strictly before the flag flips, so any reader that
	// observes degraded==true sees a populated reason.
	degraded            atomic.Bool
	degradedMu          sync.Mutex
	degradedReason      string
	invariantViolations atomic.Int64
	onDegrade           func(string)

	// Live analytic control plane (forecast.go); nil when disabled. The
	// loop goroutine feeds it, its own goroutine solves, readers are
	// lock-free.
	fc *forecast.Forecaster

	// Replication role state (replication.go). follower and term are read
	// on every mutation's guard and flipped only by loop commands (Promote /
	// Demote / ApplyReplicated observing a KindTerm record); the hooks are
	// immutable after construction.
	follower         atomic.Bool
	term             atomic.Uint64
	promotions       atomic.Int64
	waitReplicated   func(ctx context.Context, seq uint64) error
	annotateSnapshot func(hdr *journal.SnapshotHeader)
	replicaStats     func() *ReplicaStats

	// Recovery state (recovery.go).
	recoverPolicy    RecoverPolicy
	onRecover        func(uint64)
	recovering       atomic.Bool
	recoveries       atomic.Int64
	recoveryFailures atomic.Int64
	lastRecoveryMu   sync.Mutex
	lastRecoveryErr  string

	// Counters, written by the loop goroutine, read by anyone.
	processed   atomic.Int64
	establishes atomic.Int64
	terminates  atomic.Int64
	failures    atomic.Int64
	repairs     atomic.Int64
	snapshots   atomic.Int64
}

// New builds a Server over a fresh manager for graph g and starts its
// command loop.
func New(g *topology.Graph, cfg manager.Config, opt Options) (*Server, error) {
	mgr, err := manager.New(g, cfg)
	if err != nil {
		return nil, err
	}
	return NewFromManager(g, mgr, opt)
}

// NewFromManager builds a Server around an existing manager — typically one
// rebuilt from a journal by Rebuild — and starts its command loop. The
// manager must not be touched by the caller afterwards.
func NewFromManager(g *topology.Graph, mgr *manager.Manager, opt Options) (*Server, error) {
	depth := opt.QueueDepth
	if depth <= 0 {
		depth = 256
	}
	snapEvery := opt.SnapshotEvery
	if snapEvery == 0 {
		snapEvery = 1024
	}
	s := &Server{
		graph:          g,
		cfg:            mgr.Config(),
		freeing:        make(chan command, depth),
		consuming:      make(chan command, depth),
		loopDone:       make(chan struct{}),
		stop:           make(chan struct{}),
		mgr:            mgr,
		txns:           opt.Txns,
		detector:       overload.NewDetector(opt.Overload, nil),
		onOverload:     opt.OnOverload,
		execDelay:      opt.ExecDelay,
		delayFreeing:   stats.NewDigest(),
		delayConsuming: stats.NewDigest(),
		jnl:            opt.Journal,
		snapshotEvery:  snapEvery,
		onDegrade:      opt.OnDegrade,
		recoverPolicy:  opt.Recover.withDefaults(),
		onRecover:      opt.OnRecover,
		epochInterval:  opt.EpochInterval,
		capacityKbps:   int64(mgr.Network().Capacity()),

		waitReplicated:   opt.WaitReplicated,
		annotateSnapshot: opt.AnnotateSnapshot,
		replicaStats:     opt.ReplicaStats,
	}
	s.follower.Store(opt.Follower)
	s.term.Store(opt.Term)
	if s.epochInterval <= 0 {
		s.epochInterval = 25 * time.Millisecond
	}
	if s.txns == nil {
		s.txns = TxnTable{}
	}
	// Epoch 1 is published before the loop starts, so View never returns
	// nil and a freshly booted (or journal-recovered) server serves its
	// state without waiting for the first mutation.
	s.publishEpoch(mgr)
	if opt.Forecast != nil {
		fcfg := *opt.Forecast
		if fcfg.CapacityKbps <= 0 {
			fcfg.CapacityKbps = mgr.Network().Capacity()
		}
		if fcfg.DirectedLinks <= 0 {
			fcfg.DirectedLinks = g.NumDirLinks()
		}
		if fcfg.Predictive {
			// The detector update must run even when the caller also wants
			// the flip for logging: chain, detector first.
			userPredict := fcfg.OnPredict
			fcfg.OnPredict = func(saturated bool) {
				s.detector.SetPredicted(saturated)
				if userPredict != nil {
					userPredict(saturated)
				}
			}
		}
		fc, err := forecast.New(fcfg)
		if err != nil {
			return nil, err
		}
		s.fc = fc
		fc.Start()
	}
	go s.loop()
	return s, nil
}

// loop is the only goroutine that ever touches the manager. Freeing-lane
// commands are drained strictly before consuming-lane ones: each iteration
// first polls the freeing lane without blocking, and only when it is empty
// waits on both. The loop re-reads s.mgr every command so a recovery swap
// (which assigns s.mgr from inside a command) takes effect immediately.
func (s *Server) loop() {
	defer close(s.loopDone)
	freeing, consuming := s.freeing, s.consuming
	for freeing != nil || consuming != nil {
		select {
		case cmd, ok := <-freeing:
			if !ok {
				freeing = nil
				continue
			}
			s.run(cmd, laneFreeing)
			continue
		default:
		}
		select {
		case cmd, ok := <-freeing:
			if !ok {
				freeing = nil
				continue
			}
			s.run(cmd, laneFreeing)
		case cmd, ok := <-consuming:
			if !ok {
				consuming = nil
				continue
			}
			s.run(cmd, laneConsuming)
		}
	}
}

// run executes one dequeued command: account its queueing delay, shed it if
// the caller has already given up, otherwise apply it to the manager.
func (s *Server) run(cmd command, l lane) {
	delay := time.Since(cmd.enqueued)
	if l == laneFreeing {
		s.delayFreeing.Observe(delay.Seconds())
	} else {
		s.delayConsuming.Observe(delay.Seconds())
		// Only consuming-lane delay drives the overload detector: freeing
		// work jumps the queue by design, so its (always small) delay says
		// nothing about the backlog admission control must react to.
		if over, changed := s.detector.Observe(delay); changed && s.onOverload != nil {
			s.onOverload(over)
		}
	}
	if err := cmd.ctx.Err(); err != nil {
		// The caller gave up while the command sat in the queue: executing
		// it now would mutate state nobody is waiting for (and, journaled,
		// persist it). Drop it, counted per reason.
		if errors.Is(err, context.DeadlineExceeded) {
			s.shedExpired.Add(1)
		} else {
			s.shedCanceled.Add(1)
		}
		s.publishEpochIfDue(s.mgr)
		return
	}
	if s.execDelay > 0 {
		time.Sleep(s.execDelay)
	}
	cmd.fn(s.mgr)
	s.processed.Add(1)
	// Backstop for a publish deferred mid-burst: once the burst drains (or
	// the staleness cap expires) the next command of any kind — including a
	// read — flushes the pending epoch. No-op when the epoch is clean.
	s.publishEpochIfDue(s.mgr)
}

// Graph returns the (immutable after construction) topology.
func (s *Server) Graph() *topology.Graph { return s.graph }

// QueueDepth returns the number of commands currently buffered across both
// lanes.
func (s *Server) QueueDepth() int { return len(s.freeing) + len(s.consuming) }

// Processed returns the number of commands the loop has executed (shed
// commands are counted separately — see Sheds).
func (s *Server) Processed() int64 { return s.processed.Load() }

// Sheds returns how many queued commands the loop dropped without executing
// because their caller's context had expired (deadline) or been canceled.
func (s *Server) Sheds() (expired, canceled int64) {
	return s.shedExpired.Load(), s.shedCanceled.Load()
}

// Overloaded reports whether sustained consuming-lane queue delay has
// latched the overloaded state. The HTTP layer refuses new capacity-
// consuming work while it holds. The latch self-clears once the consuming
// lane has fully drained and stayed silent for a detector interval.
func (s *Server) Overloaded() bool { return s.detector.Overloaded(len(s.consuming)) }

// OverloadEpisodes returns how many times the overloaded state has latched.
func (s *Server) OverloadEpisodes() int64 { return s.detector.Episodes() }

// RetryAfterHint is the wait the server suggests to shed clients, derived
// from the detector interval (whole seconds, minimum 1).
func (s *Server) RetryAfterHint() time.Duration { return s.detector.RetryAfter() }

// Journaled reports whether mutations are written to a durable journal.
func (s *Server) Journaled() bool { return s.jnl != nil }

// Degraded reports whether the service is refusing mutations after an
// invariant violation, and the first violation's description.
func (s *Server) Degraded() (bool, string) {
	if !s.degraded.Load() {
		return false, ""
	}
	s.degradedMu.Lock()
	defer s.degradedMu.Unlock()
	return true, s.degradedReason
}

// InvariantViolations returns how many invariant violations the loop has
// detected (mid-event or by audit).
func (s *Server) InvariantViolations() int64 { return s.invariantViolations.Load() }

// noteViolation inspects an event handler's error for an invariant
// violation and, on the first one, flips the server into degraded mode.
// Only the loop goroutine calls it. When an automatic recovery policy is
// configured, flipping also starts the background recovery supervisor.
func (s *Server) noteViolation(err error) {
	var iv *manager.InvariantViolation
	if err == nil || !errors.As(err, &iv) {
		return
	}
	s.invariantViolations.Add(1)
	s.degradedMu.Lock()
	if s.degradedReason == "" {
		s.degradedReason = iv.Error()
	}
	s.degradedMu.Unlock()
	if s.degraded.CompareAndSwap(false, true) {
		if s.onDegrade != nil {
			s.onDegrade(iv.Error())
		}
		if s.recoverPolicy.Auto && s.jnl != nil {
			go s.superviseRecovery()
		}
	}
}

// refuseIfDegraded is the guard every mutating command runs first: once the
// manager's state is untrusted, no further event may touch it.
func (s *Server) refuseIfDegraded() error {
	if ok, reason := s.Degraded(); ok {
		return fmt.Errorf("%w: %s", ErrDegraded, reason)
	}
	return nil
}

// journalAppend persists ev before the mutation it describes (write-ahead
// discipline). A nil journal is a no-op (seq 0). On an append error the
// caller must NOT apply the mutation: the command fails with ErrJournal
// instead of executing undurably.
//
// The write is asynchronous with respect to durability: in group-commit
// mode the record is on disk but possibly not yet fsynced when this
// returns. The loop may apply the mutation and move on — streaming writes
// while the committer batches fsyncs — but the caller's acknowledgment is
// gated on waitDurable(seq), so no client ever observes success for a
// mutation whose record could still be lost.
func (s *Server) journalAppend(ev journal.Event) (uint64, error) {
	if s.jnl == nil {
		return 0, nil
	}
	seq, err := s.jnl.AppendAsync(ev)
	if err != nil {
		s.journalErrors.Add(1)
		return 0, fmt.Errorf("%w: %v", ErrJournal, err)
	}
	s.eventsSinceSnap++
	return seq, nil
}

// waitDurable blocks the calling (per-request) goroutine until the
// journaled record seq is durable. Runs outside the loop: the actor keeps
// executing commands while acknowledgments wait on the committer's next
// fsync batch. No-op for unjournaled servers, seq 0, or non-group-commit
// journals (Append was already durable inline there).
func (s *Server) waitDurable(ctx context.Context, seq uint64) error {
	if s.jnl == nil || seq == 0 {
		return nil
	}
	if err := s.jnl.WaitDurable(ctx, seq); err != nil {
		if ctx.Err() != nil {
			// The caller gave up first; the mutation may or may not have
			// become durable — the usual timed-out-RPC ambiguity.
			return ctx.Err()
		}
		s.journalErrors.Add(1)
		return fmt.Errorf("%w: %v", ErrJournal, err)
	}
	// Semi-synchronous replication rides behind local durability: the
	// shipper's hook blocks (bounded) until a live standby fetched the
	// record, so losing the primary right after this acknowledgment still
	// cannot lose the mutation. The hook itself degrades to async when no
	// standby is polling.
	if s.waitReplicated != nil && !s.follower.Load() {
		if err := s.waitReplicated(ctx, seq); err != nil {
			return err
		}
	}
	return nil
}

// maybeSnapshot writes a durable snapshot once enough events accumulated
// since the last one. Runs in the loop after a journaled command applied.
// Degraded state is never snapshotted: the journal must keep describing the
// last trusted state so recovery can rebuild it.
func (s *Server) maybeSnapshot(m *manager.Manager) {
	if s.jnl == nil || s.snapshotEvery <= 0 || s.eventsSinceSnap < s.snapshotEvery {
		return
	}
	if s.degraded.Load() {
		return
	}
	// Never snapshot while a cross-shard transaction is pending: a prepare
	// and its commit must land on the same side of the snapshot boundary,
	// so replay of a KindCommit always finds its transaction (either live
	// in the journal suffix or committed in the snapshot header).
	for _, tx := range s.txns {
		if !tx.Committed {
			return
		}
	}
	if err := s.writeSnapshot(m); err != nil {
		// The WAL is still intact and replay still works — a failed
		// snapshot costs replay time, not correctness. Counted, retried on
		// the next journaled event.
		s.journalErrors.Add(1)
		return
	}
	s.eventsSinceSnap = 0
}

// writeSnapshot exports the manager's durable state and hands it to the
// journal, with the aggregate cross-check fields the restore path verifies.
func (s *Server) writeSnapshot(m *manager.Manager) error {
	st := m.ExportState()
	hdr := journal.SnapshotHeader{
		Alive:          m.AliveCount(),
		Unprotected:    m.UnprotectedCount(),
		LevelHistogram: m.LevelHistogram(nil),
		Requests:       m.Requests(),
		Rejects:        m.Rejects(),
	}
	for _, l := range st.FailedLinks {
		hdr.FailedLinks = append(hdr.FailedLinks, int(l))
	}
	// Committed transactions ride the header so replay from this snapshot
	// rebuilds the table (the prepare/commit records are behind the
	// boundary). Built only when non-empty: single-shard snapshots stay
	// byte-identical to the pre-shard format.
	if len(s.txns) > 0 {
		txns := make([]journal.TxnSnapshot, 0, len(s.txns))
		for id, tx := range s.txns {
			ts := journal.TxnSnapshot{Txn: id, Peers: tx.Peers}
			for _, c := range tx.Conns {
				ts.Conns = append(ts.Conns, int64(c))
			}
			txns = append(txns, ts)
		}
		sort.Slice(txns, func(i, j int) bool { return txns[i].Txn < txns[j].Txn })
		hdr.Txns = txns
	}
	// The current fencing term rides every snapshot so a replica restarted
	// from compacted history still knows which term it last observed.
	hdr.Term = s.term.Load()
	if s.annotateSnapshot != nil {
		s.annotateSnapshot(&hdr)
	}
	return s.jnl.WriteSnapshot(hdr, st.MarshalBinary())
}

// submit enqueues fn on lane l. The context governs both the enqueue wait
// and — unless critical — the command's life in the queue: the loop sheds
// it unexecuted if ctx dies first. Critical commands (the recovery swap)
// carry a background context so an accepted swap always runs. It returns
// ErrServerClosed after Shutdown began, or ctx's error if the queue stays
// full past the caller's deadline.
func (s *Server) submit(ctx context.Context, l lane, critical bool, fn func(*manager.Manager)) error {
	// A dead context must never mutate the manager: when both cases of the
	// select below are ready, Go picks uniformly at random, so an already-
	// cancelled caller could still enqueue. Check cancellation first.
	if err := ctx.Err(); err != nil {
		return err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrServerClosed
	}
	s.inflight.Add(1)
	s.mu.Unlock()
	defer s.inflight.Done()
	cmdCtx := ctx
	if critical {
		cmdCtx = context.Background()
	}
	cmd := command{ctx: cmdCtx, fn: fn, enqueued: time.Now()}
	ch := s.freeing
	if l == laneConsuming {
		ch = s.consuming
	}
	select {
	case ch <- cmd:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Shutdown stops accepting commands, waits for every accepted command to
// execute (or be shed, if its caller's context expired), and stops the
// loop. It is safe to call multiple times; calls after the first wait for
// the same drain. The context bounds the wait. The journal (if any) is NOT
// closed — the daemon owns that, after the drain guarantees no more
// appends.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	first := !s.closed
	s.closed = true
	s.mu.Unlock()
	if first {
		close(s.stop)
		// In-flight submits have either enqueued or aborted once Wait
		// returns; no new submit can start, so closing the lanes is safe
		// and the loop drains the remaining buffers before exiting.
		s.inflight.Wait()
		close(s.freeing)
		close(s.consuming)
		if s.fc != nil {
			// Stop the solve loop after admission stopped; the last
			// forecast stays readable for post-shutdown inspection.
			s.fc.Stop()
		}
	}
	select {
	case <-s.loopDone:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// await collects the command's answer, or gives up when the caller's
// context dies first (in which case the loop sheds the command, or — if
// execution had already begun — discards its result).
func await[T any](ctx context.Context, ch <-chan T) (T, error) {
	select {
	case v := <-ch:
		return v, nil
	case <-ctx.Done():
		var zero T
		return zero, ctx.Err()
	}
}

// Establish admits a DR-connection from src to dst with the given elastic
// spec (§3.1 arrival handling) and returns the manager's arrival report.
// Establish rides the capacity-consuming lane.
func (s *Server) Establish(ctx context.Context, src, dst topology.NodeID, spec qos.ElasticSpec) (*manager.ArrivalReport, error) {
	type out struct {
		rep *manager.ArrivalReport
		err error
		seq uint64
	}
	ch := make(chan out, 1)
	if err := s.submit(ctx, laneConsuming, false, func(m *manager.Manager) {
		s.establishes.Add(1)
		if err := s.refuseIfDegraded(); err != nil {
			ch <- out{nil, err, 0}
			return
		}
		if err := s.refuseIfNotPrimary(); err != nil {
			ch <- out{nil, err, 0}
			return
		}
		// Range-check endpoints before journaling: a journaled establish
		// must be safe to replay against the same topology.
		if !validNode(m.Graph(), src) || !validNode(m.Graph(), dst) {
			ch <- out{nil, fmt.Errorf("%w: node out of range", ErrNotFound), 0}
			return
		}
		seq, err := s.journalAppend(journal.Event{
			Kind: journal.KindEstablish,
			Src:  int32(src), Dst: int32(dst),
			MinKbps: int64(spec.Min), MaxKbps: int64(spec.Max),
			IncKbps: int64(spec.Increment), Utility: spec.Utility,
		})
		if err != nil {
			ch <- out{nil, err, 0}
			return
		}
		alivePrior := m.AliveCount()
		rep, err := m.Establish(src, dst, spec)
		s.noteViolation(err)
		s.maybeSnapshot(m)
		if s.fc != nil {
			if err == nil && rep != nil && rep.Conn != nil {
				s.fc.ObserveArrival(m, rep, alivePrior)
			} else if errors.Is(err, manager.ErrRejected) {
				s.fc.ObserveReject()
			}
		}
		// The manager executed (a rejection still bumped its counters):
		// the published epoch is stale now.
		s.markEpochDirty()
		s.publishEpochIfDue(m)
		ch <- out{rep, err, seq}
	}); err != nil {
		return nil, err
	}
	o, err := await(ctx, ch)
	if err != nil {
		return nil, err
	}
	// Even a domain error (rejection) was journaled and mutated counters:
	// the acknowledgment — success or not — waits for durability.
	if derr := s.waitDurable(ctx, o.seq); derr != nil {
		return nil, derr
	}
	return o.rep, o.err
}

func validNode(g *topology.Graph, n topology.NodeID) bool {
	return int(n) >= 0 && int(n) < g.NumNodes()
}

// Terminate releases connection id and returns the termination report.
// Terminate rides the capacity-freeing lane and is never refused for
// overload: releasing bandwidth is what ends an overload.
func (s *Server) Terminate(ctx context.Context, id channel.ConnID) (*manager.TerminationReport, error) {
	type out struct {
		rep *manager.TerminationReport
		err error
		seq uint64
	}
	ch := make(chan out, 1)
	if err := s.submit(ctx, laneFreeing, false, func(m *manager.Manager) {
		s.terminates.Add(1)
		if err := s.refuseIfDegraded(); err != nil {
			ch <- out{nil, err, 0}
			return
		}
		if err := s.refuseIfNotPrimary(); err != nil {
			ch <- out{nil, err, 0}
			return
		}
		if c := m.Conn(id); c == nil || !c.Alive() {
			ch <- out{nil, ErrNotFound, 0}
			return
		}
		seq, err := s.journalAppend(journal.Event{Kind: journal.KindTerminate, Conn: int64(id)})
		if err != nil {
			ch <- out{nil, err, 0}
			return
		}
		rep, err := m.Terminate(id)
		s.noteViolation(err)
		s.maybeSnapshot(m)
		if s.fc != nil && err == nil && rep != nil {
			s.fc.ObserveTermination(m, rep)
		}
		s.markEpochDirty()
		s.publishEpochIfDue(m)
		ch <- out{rep, err, seq}
	}); err != nil {
		return nil, err
	}
	o, err := await(ctx, ch)
	if err != nil {
		return nil, err
	}
	if derr := s.waitDurable(ctx, o.seq); derr != nil {
		return nil, derr
	}
	return o.rep, o.err
}

// FailLink injects a failure of link l and returns the failure report.
// Fault injection consumes capacity (backup activation, squeezing), so it
// rides the consuming lane.
func (s *Server) FailLink(ctx context.Context, l topology.LinkID) (*manager.FailureReport, error) {
	type out struct {
		rep *manager.FailureReport
		err error
		seq uint64
	}
	ch := make(chan out, 1)
	if err := s.submit(ctx, laneConsuming, false, func(m *manager.Manager) {
		s.failures.Add(1)
		if err := s.refuseIfDegraded(); err != nil {
			ch <- out{nil, err, 0}
			return
		}
		if err := s.refuseIfNotPrimary(); err != nil {
			ch <- out{nil, err, 0}
			return
		}
		if int(l) < 0 || int(l) >= m.Graph().NumLinks() {
			ch <- out{nil, ErrNotFound, 0}
			return
		}
		if m.Network().Failed(l) {
			ch <- out{nil, ErrConflict, 0}
			return
		}
		seq, err := s.journalAppend(journal.Event{Kind: journal.KindFailLink, Link: int32(l)})
		if err != nil {
			ch <- out{nil, err, 0}
			return
		}
		alivePrior := m.AliveCount()
		rep, err := m.FailLink(l)
		s.noteViolation(err)
		s.maybeSnapshot(m)
		if s.fc != nil && err == nil && rep != nil {
			s.fc.ObserveFailure(m, rep, alivePrior)
		}
		s.markEpochDirty()
		s.publishEpochIfDue(m)
		ch <- out{rep, err, seq}
	}); err != nil {
		return nil, err
	}
	o, err := await(ctx, ch)
	if err != nil {
		return nil, err
	}
	if derr := s.waitDurable(ctx, o.seq); derr != nil {
		return nil, derr
	}
	return o.rep, o.err
}

// RepairLink marks link l repaired and returns how many connections were
// re-protected. Repair frees capacity, so it rides the freeing lane.
func (s *Server) RepairLink(ctx context.Context, l topology.LinkID) (int, error) {
	type out struct {
		restored int
		err      error
		seq      uint64
	}
	ch := make(chan out, 1)
	if err := s.submit(ctx, laneFreeing, false, func(m *manager.Manager) {
		s.repairs.Add(1)
		if err := s.refuseIfDegraded(); err != nil {
			ch <- out{0, err, 0}
			return
		}
		if err := s.refuseIfNotPrimary(); err != nil {
			ch <- out{0, err, 0}
			return
		}
		if int(l) < 0 || int(l) >= m.Graph().NumLinks() {
			ch <- out{0, ErrNotFound, 0}
			return
		}
		if !m.Network().Failed(l) {
			ch <- out{0, ErrConflict, 0}
			return
		}
		seq, err := s.journalAppend(journal.Event{Kind: journal.KindRepairLink, Link: int32(l)})
		if err != nil {
			ch <- out{0, err, 0}
			return
		}
		restored, err := m.RepairLink(l)
		s.noteViolation(err)
		s.maybeSnapshot(m)
		s.markEpochDirty()
		s.publishEpochIfDue(m)
		ch <- out{restored, err, seq}
	}); err != nil {
		return 0, err
	}
	o, err := await(ctx, ch)
	if err != nil {
		return 0, err
	}
	if derr := s.waitDurable(ctx, o.seq); derr != nil {
		return 0, derr
	}
	return o.restored, o.err
}

// CheckInvariants runs the manager's full consistency audit in the loop.
// It stays available in degraded mode (it is a read), and a dirty audit
// itself flips the server to degraded: discovering corruption is as
// disqualifying as causing it.
func (s *Server) CheckInvariants(ctx context.Context) error {
	ch := make(chan error, 1)
	if err := s.submit(ctx, laneFreeing, false, func(m *manager.Manager) {
		err := m.CheckInvariants()
		s.noteViolation(err)
		ch <- err
	}); err != nil {
		return err
	}
	return unwrapAwait(await(ctx, ch))
}

// unwrapAwait folds await's two errors (the command's own answer and the
// context giving up first) into one.
func unwrapAwait(inner, outer error) error {
	if outer != nil {
		return outer
	}
	return inner
}
