// Package server turns the single-threaded manager.Manager into a
// long-running concurrent admission service. The manager is not safe for
// concurrent use, so the Server runs it behind an actor-style command loop:
// exactly one goroutine owns the manager and executes commands submitted
// over a buffered channel, while any number of client goroutines call
// Establish / Terminate / FailLink / RepairLink / Snapshot concurrently.
//
// Command semantics: a call that returns anything other than
// ErrServerClosed (or a submit-time context error) was applied to the
// manager exactly once. Shutdown stops admission of new commands, drains
// every command already accepted, and only then stops the loop — no
// accepted command is dropped or double-applied.
//
// The HTTP layer in http.go exposes the same operations as a JSON API plus
// Prometheus-style /metrics; cmd/drserverd wires it to a listener and
// cmd/drload exercises it under concurrent load.
package server

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"drqos/internal/channel"
	"drqos/internal/manager"
	"drqos/internal/qos"
	"drqos/internal/topology"
)

// ErrServerClosed reports that the command loop no longer accepts commands.
var ErrServerClosed = errors.New("server: closed")

// ErrDegraded reports that the service detected a manager invariant
// violation and now refuses mutating commands (Establish / Terminate /
// FailLink / RepairLink). Reads — Snapshot, CheckInvariants, the HTTP GET
// endpoints — keep working, so operators can inspect the corrupted state:
// the daemon degrades instead of dying. Mapped to HTTP 503.
var ErrDegraded = errors.New("server: degraded after invariant violation, mutations refused")

// ErrNotFound reports an operation against an unknown connection or link.
var ErrNotFound = errors.New("server: not found")

// ErrConflict reports an operation that contradicts current state, e.g.
// failing an already-failed link.
var ErrConflict = errors.New("server: conflict")

// Options tunes the command loop.
type Options struct {
	// QueueDepth is the command-channel buffer (default 256). A deeper
	// queue absorbs burstier arrivals at the cost of tail latency.
	QueueDepth int
	// OnDegrade, when non-nil, is called exactly once — from the command
	// loop goroutine — when the first invariant violation flips the server
	// into degraded mode. Daemons use it to log the event.
	OnDegrade func(reason string)
}

// Server owns a manager.Manager behind a single-goroutine command loop.
type Server struct {
	graph *topology.Graph

	mu       sync.Mutex
	closed   bool
	inflight sync.WaitGroup // submits past the closed-check, not yet enqueued

	cmds     chan func(*manager.Manager)
	loopDone chan struct{}

	// Degraded mode: set by the loop goroutine on the first detected
	// invariant violation, read by anyone. The reason is written under
	// degradedMu strictly before the flag flips, so any reader that
	// observes degraded==true sees a populated reason.
	degraded            atomic.Bool
	degradedMu          sync.Mutex
	degradedReason      string
	invariantViolations atomic.Int64
	onDegrade           func(string)

	// Counters, written by the loop goroutine, read by anyone.
	processed   atomic.Int64
	establishes atomic.Int64
	terminates  atomic.Int64
	failures    atomic.Int64
	repairs     atomic.Int64
	snapshots   atomic.Int64
}

// New builds a Server over graph g and starts its command loop.
func New(g *topology.Graph, cfg manager.Config, opt Options) (*Server, error) {
	mgr, err := manager.New(g, cfg)
	if err != nil {
		return nil, err
	}
	depth := opt.QueueDepth
	if depth <= 0 {
		depth = 256
	}
	s := &Server{
		graph:     g,
		cmds:      make(chan func(*manager.Manager), depth),
		loopDone:  make(chan struct{}),
		onDegrade: opt.OnDegrade,
	}
	go s.loop(mgr)
	return s, nil
}

// loop is the only goroutine that ever touches the manager.
func (s *Server) loop(mgr *manager.Manager) {
	defer close(s.loopDone)
	for fn := range s.cmds {
		fn(mgr)
		s.processed.Add(1)
	}
}

// Graph returns the (immutable after construction) topology.
func (s *Server) Graph() *topology.Graph { return s.graph }

// QueueDepth returns the number of commands currently buffered.
func (s *Server) QueueDepth() int { return len(s.cmds) }

// Processed returns the number of commands the loop has executed.
func (s *Server) Processed() int64 { return s.processed.Load() }

// Degraded reports whether the service is refusing mutations after an
// invariant violation, and the first violation's description.
func (s *Server) Degraded() (bool, string) {
	if !s.degraded.Load() {
		return false, ""
	}
	s.degradedMu.Lock()
	defer s.degradedMu.Unlock()
	return true, s.degradedReason
}

// InvariantViolations returns how many invariant violations the loop has
// detected (mid-event or by audit).
func (s *Server) InvariantViolations() int64 { return s.invariantViolations.Load() }

// noteViolation inspects an event handler's error for an invariant
// violation and, on the first one, flips the server into degraded mode.
// Only the loop goroutine calls it.
func (s *Server) noteViolation(err error) {
	var iv *manager.InvariantViolation
	if err == nil || !errors.As(err, &iv) {
		return
	}
	s.invariantViolations.Add(1)
	s.degradedMu.Lock()
	if s.degradedReason == "" {
		s.degradedReason = iv.Error()
	}
	s.degradedMu.Unlock()
	if s.degraded.CompareAndSwap(false, true) && s.onDegrade != nil {
		s.onDegrade(iv.Error())
	}
}

// refuseIfDegraded is the guard every mutating command runs first: once the
// manager's state is untrusted, no further event may touch it.
func (s *Server) refuseIfDegraded() error {
	if ok, reason := s.Degraded(); ok {
		return fmt.Errorf("%w: %s", ErrDegraded, reason)
	}
	return nil
}

// submit enqueues fn for the loop. It returns ErrServerClosed after
// Shutdown began, or ctx's error if the queue stays full past the caller's
// deadline. A nil return means fn will run exactly once.
func (s *Server) submit(ctx context.Context, fn func(*manager.Manager)) error {
	// A dead context must never mutate the manager: when both cases of the
	// select below are ready, Go picks uniformly at random, so an already-
	// cancelled caller could still enqueue. Check cancellation first.
	if err := ctx.Err(); err != nil {
		return err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrServerClosed
	}
	s.inflight.Add(1)
	s.mu.Unlock()
	defer s.inflight.Done()
	select {
	case s.cmds <- fn:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Shutdown stops accepting commands, waits for every accepted command to
// execute, and stops the loop. It is safe to call multiple times; calls
// after the first wait for the same drain. The context bounds the wait.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	first := !s.closed
	s.closed = true
	s.mu.Unlock()
	if first {
		// In-flight submits have either enqueued or aborted once Wait
		// returns; no new submit can start, so closing cmds is safe and
		// the loop drains the remaining buffer before exiting.
		s.inflight.Wait()
		close(s.cmds)
	}
	select {
	case <-s.loopDone:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Establish admits a DR-connection from src to dst with the given elastic
// spec (§3.1 arrival handling) and returns the manager's arrival report.
func (s *Server) Establish(ctx context.Context, src, dst topology.NodeID, spec qos.ElasticSpec) (*manager.ArrivalReport, error) {
	type out struct {
		rep *manager.ArrivalReport
		err error
	}
	ch := make(chan out, 1)
	if err := s.submit(ctx, func(m *manager.Manager) {
		s.establishes.Add(1)
		if err := s.refuseIfDegraded(); err != nil {
			ch <- out{nil, err}
			return
		}
		rep, err := m.Establish(src, dst, spec)
		s.noteViolation(err)
		ch <- out{rep, err}
	}); err != nil {
		return nil, err
	}
	o := <-ch
	return o.rep, o.err
}

// Terminate releases connection id and returns the termination report.
func (s *Server) Terminate(ctx context.Context, id channel.ConnID) (*manager.TerminationReport, error) {
	type out struct {
		rep *manager.TerminationReport
		err error
	}
	ch := make(chan out, 1)
	if err := s.submit(ctx, func(m *manager.Manager) {
		s.terminates.Add(1)
		if err := s.refuseIfDegraded(); err != nil {
			ch <- out{nil, err}
			return
		}
		if c := m.Conn(id); c == nil || !c.Alive() {
			ch <- out{nil, ErrNotFound}
			return
		}
		rep, err := m.Terminate(id)
		s.noteViolation(err)
		ch <- out{rep, err}
	}); err != nil {
		return nil, err
	}
	o := <-ch
	return o.rep, o.err
}

// FailLink injects a failure of link l and returns the failure report.
func (s *Server) FailLink(ctx context.Context, l topology.LinkID) (*manager.FailureReport, error) {
	type out struct {
		rep *manager.FailureReport
		err error
	}
	ch := make(chan out, 1)
	if err := s.submit(ctx, func(m *manager.Manager) {
		s.failures.Add(1)
		if err := s.refuseIfDegraded(); err != nil {
			ch <- out{nil, err}
			return
		}
		if int(l) < 0 || int(l) >= m.Graph().NumLinks() {
			ch <- out{nil, ErrNotFound}
			return
		}
		if m.Network().Failed(l) {
			ch <- out{nil, ErrConflict}
			return
		}
		rep, err := m.FailLink(l)
		s.noteViolation(err)
		ch <- out{rep, err}
	}); err != nil {
		return nil, err
	}
	o := <-ch
	return o.rep, o.err
}

// RepairLink marks link l repaired and returns how many connections were
// re-protected.
func (s *Server) RepairLink(ctx context.Context, l topology.LinkID) (int, error) {
	type out struct {
		restored int
		err      error
	}
	ch := make(chan out, 1)
	if err := s.submit(ctx, func(m *manager.Manager) {
		s.repairs.Add(1)
		if err := s.refuseIfDegraded(); err != nil {
			ch <- out{0, err}
			return
		}
		if int(l) < 0 || int(l) >= m.Graph().NumLinks() {
			ch <- out{0, ErrNotFound}
			return
		}
		if !m.Network().Failed(l) {
			ch <- out{0, ErrConflict}
			return
		}
		restored, err := m.RepairLink(l)
		s.noteViolation(err)
		ch <- out{restored, err}
	}); err != nil {
		return 0, err
	}
	o := <-ch
	return o.restored, o.err
}

// CheckInvariants runs the manager's full consistency audit in the loop.
// It stays available in degraded mode (it is a read), and a dirty audit
// itself flips the server to degraded: discovering corruption is as
// disqualifying as causing it.
func (s *Server) CheckInvariants(ctx context.Context) error {
	ch := make(chan error, 1)
	if err := s.submit(ctx, func(m *manager.Manager) {
		err := m.CheckInvariants()
		s.noteViolation(err)
		ch <- err
	}); err != nil {
		return err
	}
	return <-ch
}
