package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"drqos/internal/server"
)

func doJSON(t *testing.T, client *http.Client, method, url string, body any, out any) (int, string) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("unmarshal %q: %v", raw, err)
		}
	}
	return resp.StatusCode, string(raw)
}

func TestHTTPAPI(t *testing.T) {
	s := newTestServer(t, 64)
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(server.NewHandler(s))
	defer ts.Close()
	c := ts.Client()

	// Establish with the default paper spec.
	var est server.EstablishResponse
	code, raw := doJSON(t, c, "POST", ts.URL+"/v1/connections", server.EstablishRequest{Src: 0, Dst: 5}, &est)
	if code != http.StatusCreated {
		t.Fatalf("establish: %d %s", code, raw)
	}
	if est.ID == 0 || est.BandwidthKbps < 100 {
		t.Errorf("establish response: %+v", est)
	}

	// Invalid spec: 422.
	code, _ = doJSON(t, c, "POST", ts.URL+"/v1/connections",
		server.EstablishRequest{Src: 0, Dst: 5, MinKbps: 300, MaxKbps: 100, IncrementKbps: 50}, nil)
	if code != http.StatusUnprocessableEntity {
		t.Errorf("invalid spec: code %d, want 422", code)
	}

	// src == dst is a rejection: 409.
	code, raw = doJSON(t, c, "POST", ts.URL+"/v1/connections", server.EstablishRequest{Src: 2, Dst: 2}, nil)
	if code != http.StatusConflict {
		t.Errorf("src==dst: code %d (%s), want 409", code, raw)
	}

	// Stats reflect the admitted connection.
	var st server.Stats
	code, raw = doJSON(t, c, "GET", ts.URL+"/v1/stats", nil, &st)
	if code != http.StatusOK || st.Alive != 1 || st.Requests != 3 {
		t.Errorf("stats: code %d, %+v (%s)", code, st, raw)
	}

	// Terminate, then terminate again: 200 then 404.
	url := fmt.Sprintf("%s/v1/connections/%d", ts.URL, est.ID)
	var tr server.TerminateResponse
	code, raw = doJSON(t, c, "DELETE", url, nil, &tr)
	if code != http.StatusOK || tr.ID != est.ID {
		t.Errorf("terminate: code %d %s", code, raw)
	}
	code, _ = doJSON(t, c, "DELETE", url, nil, nil)
	if code != http.StatusNotFound {
		t.Errorf("double terminate: code %d, want 404", code)
	}
	code, _ = doJSON(t, c, "DELETE", ts.URL+"/v1/connections/garbage", nil, nil)
	if code != http.StatusBadRequest {
		t.Errorf("garbage id: code %d, want 400", code)
	}

	// Fault injection round trip (run after the terminates so the failure
	// cannot drop the connection under test).
	var fr server.FaultResponse
	code, raw = doJSON(t, c, "POST", ts.URL+"/v1/faults/link", server.FaultRequest{Link: 0}, &fr)
	if code != http.StatusOK || fr.Action != "fail" {
		t.Fatalf("fail link: code %d %s", code, raw)
	}
	code, raw = doJSON(t, c, "POST", ts.URL+"/v1/faults/link", server.FaultRequest{Link: 0}, nil)
	if code != http.StatusConflict {
		t.Errorf("double fail: code %d (%s), want 409", code, raw)
	}
	code, raw = doJSON(t, c, "POST", ts.URL+"/v1/faults/link", server.FaultRequest{Link: 0, Action: "repair"}, &fr)
	if code != http.StatusOK {
		t.Errorf("repair: code %d (%s)", code, raw)
	}
	code, _ = doJSON(t, c, "POST", ts.URL+"/v1/faults/link", server.FaultRequest{Link: 1 << 30}, nil)
	if code != http.StatusNotFound {
		t.Errorf("fail unknown link: code %d, want 404", code)
	}

	// Invariants endpoint.
	code, raw = doJSON(t, c, "GET", ts.URL+"/v1/invariants", nil, nil)
	if code != http.StatusOK || !strings.Contains(raw, "true") {
		t.Errorf("invariants: code %d %s", code, raw)
	}

	// Prometheus metrics.
	resp, err := c.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	mb, _ := io.ReadAll(resp.Body)
	for _, want := range []string{
		"drqos_connections_alive 0",
		"drqos_establish_requests_total 3",
		"drqos_commands_total{kind=\"establish\"} 3",
		"drqos_connections_level{level=\"0\"}",
	} {
		if !strings.Contains(string(mb), want) {
			t.Errorf("metrics missing %q in:\n%s", want, mb)
		}
	}
}
