package server

import (
	"context"

	"drqos/internal/manager"
)

// Submit exposes the raw command-loop enqueue (freeing lane) to tests so
// they can wedge the loop and exercise queue-full, shedding and drain
// behavior. The command carries ctx, so the loop sheds it if ctx dies
// before execution.
func (s *Server) Submit(ctx context.Context, fn func(*manager.Manager)) error {
	return s.submit(ctx, laneFreeing, false, fn)
}

// SubmitConsuming is Submit for the capacity-consuming lane, so tests can
// assert strict freeing-first drain ordering.
func (s *Server) SubmitConsuming(ctx context.Context, fn func(*manager.Manager)) error {
	return s.submit(ctx, laneConsuming, false, fn)
}

// ForceOverloaded latches or clears the overload detector directly, for
// readiness-probe and HTTP shedding tests.
func (s *Server) ForceOverloaded(v bool) { s.detector.Force(v) }

// Establishes exposes the executed-establish counter so shedding tests can
// assert abandoned commands never ran.
func (s *Server) Establishes() int64 { return s.establishes.Load() }
