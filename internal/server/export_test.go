package server

import (
	"context"

	"drqos/internal/manager"
)

// Submit exposes the raw command-loop enqueue to tests so they can wedge
// the loop and exercise queue-full and drain behavior.
func (s *Server) Submit(ctx context.Context, fn func(*manager.Manager)) error {
	return s.submit(ctx, fn)
}
