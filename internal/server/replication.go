// Replication role state machine: the server-side half of primary/backup
// replication (the network half lives in internal/replica).
//
// A server is either the primary — it originates mutations, journals them,
// and lets a shipper stream the journal to standbys — or a follower, whose
// state advances exclusively through ApplyReplicated: each shipped record
// is appended to the local journal under the primary's own sequence number
// (write-ahead, exactly like a native mutation) and replayed into the live
// manager, so the standby is a continuously-warm copy, not a cold journal.
// Mutating commands on a follower answer ErrNotPrimary.
//
// Failover is a term change. Promote journals a KindTerm record carrying
// the next monotonic term, flips the role, and publishes a fresh epoch —
// one loop command, reusing the same atomicity the recovery swap relies
// on. The term is the fence: it rides every snapshot header and survives
// restarts (journal.Recovered.Term), a poll from a higher-term replica
// demotes a stale primary (Demote), and a follower refuses stream batches
// from a lower term, so a rejoining ex-primary can never push or serve
// stale mutations.
//
// Divergence safety: the shipper attaches verify points — (journal seq,
// state fingerprint) pairs taken from the primary's published epochs — and
// the follower recomputes the SHA-256 state fingerprint the moment its
// applied prefix reaches a verify point's seq. Any mismatch latches the
// follower degraded (alarm, promotion refused) instead of letting a
// silently-diverged copy take over.
package server

import (
	"context"
	"errors"
	"fmt"

	"drqos/internal/journal"
	"drqos/internal/manager"
)

// ErrDiverged reports that a follower's replayed state no longer matches
// the primary's fingerprint at the same journal prefix. The follower is
// latched degraded and must re-bootstrap from a primary snapshot before it
// may serve or promote.
var ErrDiverged = errors.New("server: replica state diverged from primary fingerprint")

// VerifyPoint pins the primary's state fingerprint at an exact journal
// prefix: after applying the record with Seq, a correct follower's manager
// exports a state whose Fingerprint() equals Fingerprint.
type VerifyPoint struct {
	Seq         uint64 `json:"seq"`
	Fingerprint string `json:"fingerprint"`
}

// ReplicaStats is the replication block of Stats (/v1/stats "replica").
// The server fills Role/Term/Promotions; the shipper or follower loop in
// internal/replica supplies the rest through Options.ReplicaStats.
type ReplicaStats struct {
	Role       string `json:"role"`
	Term       uint64 `json:"term"`
	Promotions int64  `json:"promotions"`

	// Follower side.
	PrimaryURL      string  `json:"primary_url,omitempty"`
	AppliedSeq      uint64  `json:"applied_seq,omitempty"`
	LastVerifiedSeq uint64  `json:"last_verified_seq,omitempty"`
	LagSeq          int64   `json:"lag_seq"`
	LagSeconds      float64 `json:"lag_seconds"`
	Diverged        bool    `json:"diverged,omitempty"`

	// Primary side.
	Followers     int    `json:"followers,omitempty"`
	ReplicatedSeq uint64 `json:"replicated_seq,omitempty"`
	// LeaseEnabled reports that this primary gates acknowledgments on a
	// standby-granted lease; LeaseLost that the lease has lapsed and the
	// node is fenced (mutations answer 503 until a standby confirms again).
	LeaseEnabled bool `json:"lease_enabled,omitempty"`
	LeaseLost    bool `json:"lease_lost,omitempty"`
}

// Role reports the replication role: "primary" or "follower".
func (s *Server) Role() string {
	if s.follower.Load() {
		return "follower"
	}
	return "primary"
}

// IsFollower reports whether the server is in the follower role.
func (s *Server) IsFollower() bool { return s.follower.Load() }

// Term returns the current replication term (0 on a never-replicated
// server).
func (s *Server) Term() uint64 { return s.term.Load() }

// Promotions returns how many times this server promoted to primary.
func (s *Server) Promotions() int64 { return s.promotions.Load() }

// refuseIfNotPrimary is the role guard every originating mutation runs
// right after the degraded guard: a follower's state may only advance
// through the primary's stream.
func (s *Server) refuseIfNotPrimary() error {
	if s.follower.Load() {
		return ErrNotPrimary
	}
	return nil
}

// latchDiverged flips the server into degraded mode over a replication
// divergence — same latch the invariant checker uses, so promotion,
// mutations and epoch publishing all refuse through the one mechanism.
// Loop goroutine only.
func (s *Server) latchDiverged(reason string) {
	s.invariantViolations.Add(1)
	s.degradedMu.Lock()
	if s.degradedReason == "" {
		s.degradedReason = reason
	}
	s.degradedMu.Unlock()
	if s.degraded.CompareAndSwap(false, true) && s.onDegrade != nil {
		s.onDegrade(reason)
	}
	// No superviseRecovery here: local replay reproduces the divergent
	// state, so only a snapshot re-bootstrap from the primary (the replica
	// layer's job) can clear it.
}

// ApplyReplicated applies a batch of journal records shipped from the
// primary: each record is appended to the local journal under the
// primary's sequence number and replayed into the live manager, KindTerm
// records advance the fencing term, and verify points are checked the
// moment the applied prefix reaches them. It returns the highest sequence
// applied AND locally durable — the value the follower reports back as its
// resume/ack position.
//
// The batch stops at the first error; records before it are applied and
// kept (they extend the primary's history, a prefix is always safe).
// Records that do not extend the local tip exactly are refused by the
// journal, so re-delivered duplicates fail fast instead of forking state.
func (s *Server) ApplyReplicated(ctx context.Context, evs []journal.Event, verify []VerifyPoint) (uint64, error) {
	if s.jnl == nil {
		return 0, fmt.Errorf("%w: replication requires a journal", ErrJournal)
	}
	if len(evs) == 0 {
		return s.jnl.DurableSeq(), nil
	}
	type out struct {
		seq uint64 // last appended seq; durability is awaited outside
		err error
	}
	ch := make(chan out, 1)
	if err := s.submit(ctx, laneFreeing, false, func(m *manager.Manager) {
		if err := s.refuseIfDegraded(); err != nil {
			ch <- out{0, err}
			return
		}
		if !s.follower.Load() {
			ch <- out{0, fmt.Errorf("%w: primary does not accept a replication stream", ErrConflict)}
			return
		}
		vi := 0
		for len(verify) > vi && verify[vi].Seq <= s.jnl.LastSeq() {
			vi++ // verify points already behind our tip were checked earlier
		}
		var last uint64
		for _, ev := range evs {
			seq, err := s.jnl.AppendReplicated(ev)
			if err != nil {
				s.journalErrors.Add(1)
				ch <- out{last, fmt.Errorf("%w: %v", ErrJournal, err)}
				return
			}
			s.eventsSinceSnap++
			if ev.Kind == journal.KindTerm {
				// The primary's own promotion history; adopt the term so a
				// later local promotion fences above it.
				if ev.Term > s.term.Load() {
					s.term.Store(ev.Term)
				}
			} else if err := applyJournaled(m, ev, s.txns); err != nil {
				// The journal holds a record the state machine rejects: this
				// copy can no longer vouch for the primary's history.
				reason := fmt.Sprintf("replicated apply failed: %v", err)
				s.latchDiverged(reason)
				ch <- out{last, fmt.Errorf("%w: %s", ErrDiverged, reason)}
				return
			}
			last = seq
			if vi < len(verify) && verify[vi].Seq == seq {
				if fp := m.ExportState().Fingerprint(); fp != verify[vi].Fingerprint {
					reason := fmt.Sprintf("fingerprint mismatch at seq %d: local %s, primary %s",
						seq, fp, verify[vi].Fingerprint)
					s.latchDiverged(reason)
					ch <- out{last, fmt.Errorf("%w: %s", ErrDiverged, reason)}
					return
				}
				vi++
			}
		}
		s.maybeSnapshot(m)
		s.markEpochDirty()
		s.publishEpochIfDue(m)
		ch <- out{last, nil}
	}); err != nil {
		return 0, err
	}
	o, err := await(ctx, ch)
	if err != nil {
		return 0, err
	}
	// Ack only what is durable: the primary treats the reported position as
	// replicated, so a crash-lost suffix must never be covered by it.
	if o.seq != 0 {
		if derr := s.waitDurable(ctx, o.seq); derr != nil {
			return 0, derr
		}
	}
	return o.seq, o.err
}

// Promote flips a follower into the primary role. Inside one loop command
// it journals a KindTerm record carrying the next monotonic term (the
// fence a rejoining ex-primary will trip over), flips the role, and
// publishes a fresh epoch so /readyz and /v1/stats report "primary"
// immediately; the caller is only acknowledged once the term record is
// durable. A degraded (e.g. diverged) follower refuses promotion, and
// promoting a primary is a conflict.
func (s *Server) Promote(ctx context.Context) (uint64, error) {
	type out struct {
		term uint64
		seq  uint64
		err  error
	}
	ch := make(chan out, 1)
	// Critical, freeing lane: the promotion that un-wedges a cluster must
	// not queue behind consuming work or be shed by its caller's deadline
	// half-way through.
	done := make(chan struct{})
	if err := s.submit(ctx, laneFreeing, true, func(m *manager.Manager) {
		defer close(done)
		if err := s.refuseIfDegraded(); err != nil {
			ch <- out{0, 0, fmt.Errorf("promotion refused: %w", err)}
			return
		}
		if !s.follower.Load() {
			ch <- out{s.term.Load(), 0, fmt.Errorf("%w: already primary", ErrConflict)}
			return
		}
		newTerm := s.term.Load() + 1
		seq, err := s.journalAppend(journal.Event{Kind: journal.KindTerm, Term: newTerm})
		if err != nil {
			ch <- out{0, 0, err}
			return
		}
		s.term.Store(newTerm)
		s.follower.Store(false)
		s.promotions.Add(1)
		s.markEpochDirty()
		s.publishEpoch(m)
		ch <- out{newTerm, seq, nil}
	}); err != nil {
		return 0, err
	}
	<-done
	o, err := await(context.Background(), ch)
	if err != nil {
		return 0, err
	}
	if o.err != nil {
		return o.term, o.err
	}
	// The new term must be durable before this node serves mutations under
	// it — otherwise a crash-restart could resurrect the old term and
	// un-fence the ex-primary.
	if derr := s.waitDurable(ctx, o.seq); derr != nil {
		return 0, derr
	}
	return o.term, nil
}

// Demote steps a stale primary down after evidence of a higher term — a
// poll or admin call from a replica that promoted while this node was
// partitioned. The higher term is journaled and adopted and the role flips
// to follower, so in-flight and future mutations refuse with ErrNotPrimary
// and the node re-syncs from the new primary instead of serving stale
// writes. A term not above the current one is ignored (nil): stale
// demotion requests must not bounce a healthy primary.
func (s *Server) Demote(ctx context.Context, term uint64) error {
	if term <= s.term.Load() {
		return nil
	}
	ch := make(chan error, 1)
	done := make(chan struct{})
	if err := s.submit(ctx, laneFreeing, true, func(m *manager.Manager) {
		defer close(done)
		if term <= s.term.Load() {
			ch <- nil
			return
		}
		wasPrimary := !s.follower.Load()
		if _, err := s.journalAppend(journal.Event{Kind: journal.KindTerm, Term: term}); err != nil {
			// Journaling the fence failed; flip the role anyway — refusing
			// mutations matters more than remembering why across a restart
			// (the next stream batch re-delivers the term record).
			s.journalErrors.Add(1)
		}
		s.term.Store(term)
		s.follower.Store(true)
		if wasPrimary {
			s.markEpochDirty()
			s.publishEpoch(m)
		}
		ch <- nil
	}); err != nil {
		return err
	}
	<-done
	return unwrapAwait(await(context.Background(), ch))
}

// Reseed rebuilds the manager from the journal and swaps it into the loop
// regardless of degraded state — the follower's re-bootstrap path after
// InstallSnapshot replaced the journal's contents with a primary snapshot
// (where Recover would refuse with ErrNotDegraded on a healthy follower).
// The swap also clears a divergence latch: the installed snapshot IS the
// primary's state, so the local copy is trustworthy again.
func (s *Server) Reseed(ctx context.Context) (uint64, error) {
	if s.jnl == nil {
		return 0, ErrNoJournal
	}
	if !s.recovering.CompareAndSwap(false, true) {
		return 0, ErrRecoveryInProgress
	}
	defer s.recovering.Store(false)
	seq, err := s.recoverOnce(ctx)
	if err != nil {
		s.recoveryFailures.Add(1)
		s.setLastRecoveryErr(err.Error())
		return 0, err
	}
	s.recoveries.Add(1)
	s.setLastRecoveryErr("")
	return seq, nil
}

// SnapshotNow writes a durable state snapshot immediately (same rules as
// the automatic cadence: refused while degraded or while a cross-shard
// transaction is pending). The shipper uses it to produce a bootstrap
// image on demand when a standby needs one and no snapshot exists yet.
func (s *Server) SnapshotNow(ctx context.Context) error {
	if s.jnl == nil {
		return ErrNoJournal
	}
	ch := make(chan error, 1)
	if err := s.submit(ctx, laneFreeing, false, func(m *manager.Manager) {
		if err := s.refuseIfDegraded(); err != nil {
			ch <- err
			return
		}
		for _, tx := range s.txns {
			if !tx.Committed {
				ch <- fmt.Errorf("%w: cross-shard transaction pending", ErrConflict)
				return
			}
		}
		if err := s.writeSnapshot(m); err != nil {
			s.journalErrors.Add(1)
			ch <- fmt.Errorf("%w: %v", ErrJournal, err)
			return
		}
		s.eventsSinceSnap = 0
		ch <- nil
	}); err != nil {
		return err
	}
	return unwrapAwait(await(ctx, ch))
}

// replicaBlock assembles the Stats replication block: nil for the common
// non-replicated server (its /v1/stats payload stays byte-identical to the
// pre-replication format), populated as soon as any replication state
// exists — a stats hook, the follower role, or a nonzero term.
func (s *Server) replicaBlock() *ReplicaStats {
	var rs *ReplicaStats
	if s.replicaStats != nil {
		rs = s.replicaStats()
	}
	if rs == nil {
		if !s.follower.Load() && s.term.Load() == 0 && s.promotions.Load() == 0 {
			return nil
		}
		rs = &ReplicaStats{}
	}
	rs.Role = s.Role()
	rs.Term = s.term.Load()
	rs.Promotions = s.promotions.Load()
	return rs
}
