package server

import (
	"fmt"
	"io"
)

// writeMetrics renders a Stats snapshot in the Prometheus text exposition
// format (hand-rolled; the repo deliberately has no external dependencies).
func writeMetrics(w io.Writer, st Stats) {
	gauge := func(name, help string, v any) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %v\n", name, help, name, name, v)
	}
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}

	gauge("drqos_connections_alive", "Alive DR-connections.", st.Alive)
	gauge("drqos_connections_unprotected", "Alive DR-connections without a backup channel.", st.Unprotected)
	gauge("drqos_bandwidth_avg_kbps", "Average reserved bandwidth over alive primaries (Kb/s).", st.AvgBandwidthKbps)
	gauge("drqos_reject_rate", "Cumulative fraction of establish requests rejected.", st.RejectRate)
	gauge("drqos_links_failed", "Currently failed links.", len(st.FailedLinks))
	gauge("drqos_command_queue_depth", "Commands buffered in the actor queue.", st.QueueDepth)
	degraded := 0
	if st.Degraded {
		degraded = 1
	}
	gauge("drqos_degraded", "1 when the service refuses mutations after an invariant violation.", degraded)
	overloaded := 0
	if st.Overloaded {
		overloaded = 1
	}
	gauge("drqos_overloaded", "1 while sustained actor-queue delay makes the service shed new capacity-consuming work.", overloaded)
	journaled := 0
	if st.Journaled {
		journaled = 1
	}
	gauge("drqos_journaled", "1 when mutations are persisted to a write-ahead journal.", journaled)
	gauge("drqos_journal_seq", "Sequence number of the last journaled event.", st.JournalSeq)
	gauge("drqos_journal_snapshot_seq", "Sequence number covered by the newest durable snapshot.", st.JournalSnapshot)
	recovering := 0
	if st.Recovering {
		recovering = 1
	}
	gauge("drqos_recovering", "1 while a journal-replay recovery from degraded mode is running.", recovering)

	counter("drqos_establish_requests_total", "Establish requests offered to admission control.", st.Requests)
	counter("drqos_establish_rejects_total", "Establish requests rejected.", st.Rejects)
	counter("drqos_invariant_violations_total", "Manager invariant violations detected mid-event or by audit.", st.InvariantViolations)
	counter("drqos_journal_errors_total", "Journal append or snapshot failures.", st.JournalErrors)
	counter("drqos_recoveries_total", "Successful recoveries from degraded mode.", st.Recoveries)
	counter("drqos_recovery_failures_total", "Failed recovery attempts.", st.RecoveryFailures)
	counter("drqos_overload_episodes_total", "Times the overloaded state latched.", st.OverloadEpisodes)

	fmt.Fprintf(w, "# HELP drqos_shed_total Queued commands dropped unexecuted because their caller gave up, by reason.\n# TYPE drqos_shed_total counter\n")
	fmt.Fprintf(w, "drqos_shed_total{reason=\"expired\"} %d\n", st.ShedExpired)
	fmt.Fprintf(w, "drqos_shed_total{reason=\"canceled\"} %d\n", st.ShedCanceled)

	fmt.Fprintf(w, "# HELP drqos_queue_depth Commands buffered per priority lane.\n# TYPE drqos_queue_depth gauge\n")
	for _, q := range []string{"freeing", "consuming"} {
		fmt.Fprintf(w, "drqos_queue_depth{q=%q} %d\n", q, st.Lanes[q].Depth)
	}
	fmt.Fprintf(w, "# HELP drqos_queue_delay_seconds Actor-loop queueing delay per priority lane (streaming P2 quantiles).\n# TYPE drqos_queue_delay_seconds summary\n")
	for _, q := range []string{"freeing", "consuming"} {
		ls := st.Lanes[q]
		if ls.DelayCount > 0 {
			fmt.Fprintf(w, "drqos_queue_delay_seconds{q=%q,quantile=\"0.5\"} %g\n", q, ls.DelayP50Sec)
			fmt.Fprintf(w, "drqos_queue_delay_seconds{q=%q,quantile=\"0.9\"} %g\n", q, ls.DelayP90Sec)
			fmt.Fprintf(w, "drqos_queue_delay_seconds{q=%q,quantile=\"0.99\"} %g\n", q, ls.DelayP99Sec)
		}
		fmt.Fprintf(w, "drqos_queue_delay_seconds_count{q=%q} %d\n", q, ls.DelayCount)
	}

	fmt.Fprintf(w, "# HELP drqos_connections_level Alive DR-connections per bandwidth level.\n# TYPE drqos_connections_level gauge\n")
	for lvl, n := range st.LevelHistogram {
		fmt.Fprintf(w, "drqos_connections_level{level=\"%d\"} %d\n", lvl, n)
	}

	fmt.Fprintf(w, "# HELP drqos_commands_total Commands executed by the actor loop, by kind.\n# TYPE drqos_commands_total counter\n")
	for _, kv := range []struct {
		kind string
		n    int64
	}{
		{"establish", st.Commands.Establishes},
		{"terminate", st.Commands.Terminates},
		{"fail_link", st.Commands.Failures},
		{"repair_link", st.Commands.Repairs},
		{"snapshot", st.Commands.Snapshots},
	} {
		fmt.Fprintf(w, "drqos_commands_total{kind=%q} %d\n", kv.kind, kv.n)
	}
}
