package server

import (
	"fmt"
	"io"
)

// WriteMetrics renders a Stats snapshot in the Prometheus text exposition
// format. Exported for the sharded front end (internal/shard), which
// aggregates per-shard Stats and serves them under the same metric names.
func WriteMetrics(w io.Writer, st Stats) { writeMetrics(w, st) }

// writeMetrics renders a Stats snapshot in the Prometheus text exposition
// format (hand-rolled; the repo deliberately has no external dependencies).
func writeMetrics(w io.Writer, st Stats) {
	gauge := func(name, help string, v any) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %v\n", name, help, name, name, v)
	}
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}

	gauge("drqos_connections_alive", "Alive DR-connections.", st.Alive)
	gauge("drqos_connections_unprotected", "Alive DR-connections without a backup channel.", st.Unprotected)
	gauge("drqos_bandwidth_avg_kbps", "Average reserved bandwidth over alive primaries (Kb/s).", st.AvgBandwidthKbps)
	gauge("drqos_reject_rate", "Cumulative fraction of establish requests rejected.", st.RejectRate)
	gauge("drqos_links_failed", "Currently failed links.", len(st.FailedLinks))
	gauge("drqos_command_queue_depth", "Commands buffered in the actor queue.", st.QueueDepth)
	degraded := 0
	if st.Degraded {
		degraded = 1
	}
	gauge("drqos_degraded", "1 when the service refuses mutations after an invariant violation.", degraded)
	overloaded := 0
	if st.Overloaded {
		overloaded = 1
	}
	gauge("drqos_overloaded", "1 while sustained actor-queue delay makes the service shed new capacity-consuming work.", overloaded)
	journaled := 0
	if st.Journaled {
		journaled = 1
	}
	gauge("drqos_journaled", "1 when mutations are persisted to a write-ahead journal.", journaled)
	gauge("drqos_journal_seq", "Sequence number of the last journaled event.", st.JournalSeq)
	gauge("drqos_journal_snapshot_seq", "Sequence number covered by the newest durable snapshot.", st.JournalSnapshot)
	recovering := 0
	if st.Recovering {
		recovering = 1
	}
	gauge("drqos_recovering", "1 while a journal-replay recovery from degraded mode is running.", recovering)
	if st.Epoch != nil {
		gauge("drqos_snapshot_seq", "Sequence number of the published epoch state snapshot serving the read path.", st.Epoch.Seq)
		gauge("drqos_snapshot_age_seconds", "Age of the published epoch snapshot — the read path's staleness bound.", st.Epoch.AgeSeconds)
		counter("drqos_snapshot_publishes_total", "Epoch snapshots published by the actor loop.", st.Epoch.Publishes)
		frozen := 0
		if st.Epoch.Frozen {
			frozen = 1
		}
		gauge("drqos_snapshot_frozen", "1 while epoch publishing is deliberately suspended (degraded mode); exclude snapshot age from staleness alarms while set.", frozen)
	}
	if st.GroupCommit {
		gauge("drqos_journal_synced_seq", "Highest journal sequence known durable (acknowledged mutations are always <= this).", st.JournalSynced)
		counter("drqos_journal_fsync_batches_total", "Group-commit fsync batches issued.", st.FsyncBatches)
		counter("drqos_journal_batched_appends_total", "Journal records made durable by group-commit batches.", st.BatchedAppends)
	}

	counter("drqos_establish_requests_total", "Establish requests offered to admission control.", st.Requests)
	counter("drqos_establish_rejects_total", "Establish requests rejected.", st.Rejects)
	counter("drqos_invariant_violations_total", "Manager invariant violations detected mid-event or by audit.", st.InvariantViolations)
	counter("drqos_journal_errors_total", "Journal append or snapshot failures.", st.JournalErrors)
	counter("drqos_recoveries_total", "Successful recoveries from degraded mode.", st.Recoveries)
	counter("drqos_recovery_failures_total", "Failed recovery attempts.", st.RecoveryFailures)
	counter("drqos_overload_episodes_total", "Times the overloaded state latched.", st.OverloadEpisodes)

	fmt.Fprintf(w, "# HELP drqos_shed_total Queued commands dropped unexecuted because their caller gave up, by reason.\n# TYPE drqos_shed_total counter\n")
	fmt.Fprintf(w, "drqos_shed_total{reason=\"expired\"} %d\n", st.ShedExpired)
	fmt.Fprintf(w, "drqos_shed_total{reason=\"canceled\"} %d\n", st.ShedCanceled)

	fmt.Fprintf(w, "# HELP drqos_queue_depth Commands buffered per priority lane.\n# TYPE drqos_queue_depth gauge\n")
	for _, q := range []string{"freeing", "consuming"} {
		fmt.Fprintf(w, "drqos_queue_depth{q=%q} %d\n", q, st.Lanes[q].Depth)
	}
	fmt.Fprintf(w, "# HELP drqos_queue_delay_seconds Actor-loop queueing delay per priority lane (streaming P2 quantiles).\n# TYPE drqos_queue_delay_seconds summary\n")
	for _, q := range []string{"freeing", "consuming"} {
		ls := st.Lanes[q]
		if ls.DelayCount > 0 {
			fmt.Fprintf(w, "drqos_queue_delay_seconds{q=%q,quantile=\"0.5\"} %g\n", q, ls.DelayP50Sec)
			fmt.Fprintf(w, "drqos_queue_delay_seconds{q=%q,quantile=\"0.9\"} %g\n", q, ls.DelayP90Sec)
			fmt.Fprintf(w, "drqos_queue_delay_seconds{q=%q,quantile=\"0.99\"} %g\n", q, ls.DelayP99Sec)
		}
		fmt.Fprintf(w, "drqos_queue_delay_seconds_count{q=%q} %d\n", q, ls.DelayCount)
	}

	fmt.Fprintf(w, "# HELP drqos_connections_level Alive DR-connections per bandwidth level.\n# TYPE drqos_connections_level gauge\n")
	for lvl, n := range st.LevelHistogram {
		fmt.Fprintf(w, "drqos_connections_level{level=\"%d\"} %d\n", lvl, n)
	}

	if f := st.Forecast; f != nil {
		available := 0
		if f.Available {
			available = 1
		}
		gauge("drqos_forecast_available", "1 once the live Markov forecast has solved at least once.", available)
		stale := 0
		if f.Stale {
			stale = 1
		}
		gauge("drqos_forecast_stale", "1 while the served forecast is an old result republished after a solve failure.", stale)
		predicted := 0
		if f.PredictedOverload {
			predicted = 1
		}
		gauge("drqos_forecast_predicted_overload", "1 while the solved model predicts saturation and pre-latches shedding.", predicted)
		gauge("drqos_forecast_mean_bandwidth_kbps", "Model-predicted steady-state mean bandwidth (Kb/s).", f.MeanBandwidthKbps)
		gauge("drqos_forecast_lambda_per_sec", "Live-estimated effective arrival rate λ.", f.Lambda)
		gauge("drqos_forecast_mu_per_sec", "Live-estimated effective termination rate μ.", f.Mu)
		gauge("drqos_forecast_gamma_per_sec", "Live-estimated effective link-failure rate γ.", f.Gamma)
		gauge("drqos_forecast_delta_per_sec", "Per-channel death rate δ = μ/N̄ of the restart model.", f.Delta)
		gauge("drqos_forecast_pf", "Live-estimated link-sharing probability Pf.", f.Pf)
		gauge("drqos_forecast_ps", "Live-estimated indirect-chaining probability Ps.", f.Ps)
		gauge("drqos_forecast_avg_alive", "Time-weighted mean standing population behind the forecast.", f.AvgAlive)
		gauge("drqos_forecast_age_seconds", "Age of the served forecast solution.", f.AgeSeconds)
		gauge("drqos_forecast_solve_duration_seconds", "Duration of the last successful solve.", f.SolveDurationSeconds)
		fmt.Fprintf(w, "# HELP drqos_forecast_discarded_mass Fraction of observed jumps outside the model's triangular structure, per matrix.\n# TYPE drqos_forecast_discarded_mass gauge\n")
		fmt.Fprintf(w, "drqos_forecast_discarded_mass{matrix=\"A\"} %g\n", f.DiscardedA)
		fmt.Fprintf(w, "drqos_forecast_discarded_mass{matrix=\"B\"} %g\n", f.DiscardedB)
		fmt.Fprintf(w, "drqos_forecast_discarded_mass{matrix=\"T\"} %g\n", f.DiscardedT)
		counter("drqos_forecast_solves_total", "Successful Markov solves.", f.Solves)
		counter("drqos_forecast_solve_errors_total", "Failed or timed-out Markov solves (stale fallback served).", f.SolveErrors)
		counter("drqos_forecast_ignored_transitions_total", "Observed transitions outside the modeled state grid.", f.IgnoredTransitions)
	}

	if r := st.Replica; r != nil {
		fmt.Fprintf(w, "# HELP drqos_role Replication role of this node (1 on the active label).\n# TYPE drqos_role gauge\ndrqos_role{role=%q} 1\n", r.Role)
		gauge("drqos_replica_term", "Current replication fencing term.", r.Term)
		counter("drqos_promotions_total", "Times this node promoted from follower to primary.", r.Promotions)
		if r.Role == "primary" && r.LeaseEnabled {
			lost := 0
			if r.LeaseLost {
				lost = 1
			}
			gauge("drqos_replica_lease_lost", "1 while the primary's standby-granted replication lease has lapsed and mutations are fenced.", lost)
		}
		if r.Role == "follower" {
			gauge("drqos_replica_lag_seq", "Journal records the primary has durably written that this follower has not yet applied.", r.LagSeq)
			gauge("drqos_replica_lag_seconds", "Time since this follower last successfully fetched from the primary.", r.LagSeconds)
			diverged := 0
			if r.Diverged {
				diverged = 1
			}
			gauge("drqos_replica_diverged", "1 after a fingerprint cross-check failed; the follower refuses promotion until re-bootstrapped.", diverged)
		}
	}

	fmt.Fprintf(w, "# HELP drqos_commands_total Commands executed by the actor loop, by kind.\n# TYPE drqos_commands_total counter\n")
	for _, kv := range []struct {
		kind string
		n    int64
	}{
		{"establish", st.Commands.Establishes},
		{"terminate", st.Commands.Terminates},
		{"fail_link", st.Commands.Failures},
		{"repair_link", st.Commands.Repairs},
		{"snapshot", st.Commands.Snapshots},
	} {
		fmt.Fprintf(w, "drqos_commands_total{kind=%q} %d\n", kv.kind, kv.n)
	}
}
