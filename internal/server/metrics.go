package server

import (
	"fmt"
	"io"
)

// writeMetrics renders a Stats snapshot in the Prometheus text exposition
// format (hand-rolled; the repo deliberately has no external dependencies).
func writeMetrics(w io.Writer, st Stats) {
	gauge := func(name, help string, v any) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %v\n", name, help, name, name, v)
	}
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}

	gauge("drqos_connections_alive", "Alive DR-connections.", st.Alive)
	gauge("drqos_connections_unprotected", "Alive DR-connections without a backup channel.", st.Unprotected)
	gauge("drqos_bandwidth_avg_kbps", "Average reserved bandwidth over alive primaries (Kb/s).", st.AvgBandwidthKbps)
	gauge("drqos_reject_rate", "Cumulative fraction of establish requests rejected.", st.RejectRate)
	gauge("drqos_links_failed", "Currently failed links.", len(st.FailedLinks))
	gauge("drqos_command_queue_depth", "Commands buffered in the actor queue.", st.QueueDepth)
	degraded := 0
	if st.Degraded {
		degraded = 1
	}
	gauge("drqos_degraded", "1 when the service refuses mutations after an invariant violation.", degraded)
	journaled := 0
	if st.Journaled {
		journaled = 1
	}
	gauge("drqos_journaled", "1 when mutations are persisted to a write-ahead journal.", journaled)
	gauge("drqos_journal_seq", "Sequence number of the last journaled event.", st.JournalSeq)
	gauge("drqos_journal_snapshot_seq", "Sequence number covered by the newest durable snapshot.", st.JournalSnapshot)
	recovering := 0
	if st.Recovering {
		recovering = 1
	}
	gauge("drqos_recovering", "1 while a journal-replay recovery from degraded mode is running.", recovering)

	counter("drqos_establish_requests_total", "Establish requests offered to admission control.", st.Requests)
	counter("drqos_establish_rejects_total", "Establish requests rejected.", st.Rejects)
	counter("drqos_invariant_violations_total", "Manager invariant violations detected mid-event or by audit.", st.InvariantViolations)
	counter("drqos_journal_errors_total", "Journal append or snapshot failures.", st.JournalErrors)
	counter("drqos_recoveries_total", "Successful recoveries from degraded mode.", st.Recoveries)
	counter("drqos_recovery_failures_total", "Failed recovery attempts.", st.RecoveryFailures)

	fmt.Fprintf(w, "# HELP drqos_connections_level Alive DR-connections per bandwidth level.\n# TYPE drqos_connections_level gauge\n")
	for lvl, n := range st.LevelHistogram {
		fmt.Fprintf(w, "drqos_connections_level{level=\"%d\"} %d\n", lvl, n)
	}

	fmt.Fprintf(w, "# HELP drqos_commands_total Commands executed by the actor loop, by kind.\n# TYPE drqos_commands_total counter\n")
	for _, kv := range []struct {
		kind string
		n    int64
	}{
		{"establish", st.Commands.Establishes},
		{"terminate", st.Commands.Terminates},
		{"fail_link", st.Commands.Failures},
		{"repair_link", st.Commands.Repairs},
		{"snapshot", st.Commands.Snapshots},
	} {
		fmt.Fprintf(w, "drqos_commands_total{kind=%q} %d\n", kv.kind, kv.n)
	}
}
