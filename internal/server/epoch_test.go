package server_test

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"drqos/internal/channel"
	"drqos/internal/journal"
	"drqos/internal/manager"
	"drqos/internal/qos"
	"drqos/internal/rng"
	"drqos/internal/server"
	"drqos/internal/topology"
)

// checkEpochInternal asserts that one observed EpochView is internally
// consistent: every aggregate it carries is derivable from the State it
// carries, so no reader can see a half-applied mutation.
func checkEpochInternal(t *testing.T, v *server.EpochView) {
	t.Helper()
	if v == nil {
		t.Fatal("nil epoch view")
	}
	if v.State == nil || v.PublishedAt.IsZero() || v.Seq == 0 {
		t.Fatalf("malformed epoch: seq %d, state %v, published %v", v.Seq, v.State != nil, v.PublishedAt)
	}
	if age := time.Since(v.PublishedAt); age < 0 || age > time.Minute {
		t.Fatalf("epoch %d age %v out of bounds", v.Seq, age)
	}
	if v.Requests != v.State.Requests || v.Rejects != v.State.Rejects {
		t.Fatalf("epoch %d: aggregate counters %d/%d disagree with state %d/%d",
			v.Seq, v.Requests, v.Rejects, v.State.Requests, v.State.Rejects)
	}
	// State holds exactly the alive connections, so the population
	// aggregates must match it.
	if v.Alive != len(v.State.Conns) {
		t.Fatalf("epoch %d: alive %d but state carries %d connections", v.Seq, v.Alive, len(v.State.Conns))
	}
	histSum := 0
	for _, n := range v.LevelHistogram {
		histSum += n
	}
	if histSum != v.Alive {
		t.Fatalf("epoch %d: level histogram sums to %d, alive %d", v.Seq, histSum, v.Alive)
	}
	if len(v.FailedLinks) != len(v.State.FailedLinks) {
		t.Fatalf("epoch %d: %d failed links vs state's %d", v.Seq, len(v.FailedLinks), len(v.State.FailedLinks))
	}
}

// TestEpochViewConsistencyUnderChurn is the snapshot-consistency contract
// under -race: one sequential mutator drives the server while a shadow
// manager replays the identical acknowledged prefix; concurrent pollers
// grab epoch views the whole time. Every observed view must have a
// monotonically non-decreasing seq, bounded age, internally consistent
// aggregates, and a State fingerprint equal to the shadow's state after
// some acknowledged prefix — i.e. each epoch IS a real point in history,
// never a blend of two mutations.
func TestEpochViewConsistencyUnderChurn(t *testing.T) {
	g, err := topology.Waxman(topology.WaxmanConfig{
		Nodes: 40, Alpha: 0.33, Beta: 0.25, EnsureConnected: true,
	}, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	cfg := manager.Config{Capacity: 10000}
	s, err := server.New(g, cfg, server.Options{QueueDepth: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown(context.Background())
	shadow, err := manager.New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}

	var prefixMu sync.Mutex
	prefixes := map[string]int{shadow.ExportState().Fingerprint(): 0}
	recordPrefix := func(i int) {
		fp := shadow.ExportState().Fingerprint()
		prefixMu.Lock()
		prefixes[fp] = i
		prefixMu.Unlock()
	}

	type observed struct {
		seq uint64
		fp  string
	}
	done := make(chan struct{})
	const pollers = 3
	obs := make([][]observed, pollers)
	var pollWg sync.WaitGroup
	for p := 0; p < pollers; p++ {
		pollWg.Add(1)
		go func(p int) {
			defer pollWg.Done()
			var lastSeq uint64
			for {
				select {
				case <-done:
					return
				default:
				}
				v := s.View()
				checkEpochInternal(t, v)
				if v.Seq < lastSeq {
					t.Errorf("poller %d: epoch seq went backwards %d -> %d", p, lastSeq, v.Seq)
					return
				}
				if v.Seq != lastSeq {
					lastSeq = v.Seq
					obs[p] = append(obs[p], observed{v.Seq, v.State.Fingerprint()})
				}
			}
		}(p)
	}

	ctx := context.Background()
	src := rng.New(99)
	spec := qos.DefaultSpec()
	var alive []channel.ConnID
	const ops = 200
	for i := 1; i <= ops; i++ {
		if len(alive) > 0 && src.Float64() < 0.35 {
			id := alive[len(alive)-1]
			alive = alive[:len(alive)-1]
			if _, err := s.Terminate(ctx, id); err != nil {
				t.Fatalf("terminate %d: %v", id, err)
			}
			if _, err := shadow.Terminate(id); err != nil {
				t.Fatalf("shadow terminate %d: %v", id, err)
			}
		} else {
			a, b := src.Intn(g.NumNodes()), src.Intn(g.NumNodes())
			if a == b {
				b = (b + 1) % g.NumNodes()
			}
			rep, err := s.Establish(ctx, topology.NodeID(a), topology.NodeID(b), spec)
			_, shadowErr := shadow.Establish(topology.NodeID(a), topology.NodeID(b), spec)
			if (err == nil) != (shadowErr == nil) {
				t.Fatalf("op %d: server err %v, shadow err %v — divergence", i, err, shadowErr)
			}
			if err != nil && !errors.Is(err, manager.ErrRejected) {
				t.Fatalf("establish: %v", err)
			}
			if err == nil {
				alive = append(alive, rep.Conn.ID)
			}
		}
		recordPrefix(i)
	}
	close(done)
	pollWg.Wait()
	if t.Failed() {
		return
	}

	total := 0
	for p := 0; p < pollers; p++ {
		total += len(obs[p])
		for _, o := range obs[p] {
			prefixMu.Lock()
			idx, ok := prefixes[o.fp]
			prefixMu.Unlock()
			if !ok {
				t.Fatalf("poller %d observed epoch %d with fingerprint %s matching NO acknowledged prefix",
					p, o.seq, o.fp[:16])
			}
			_ = idx
		}
	}
	if total == 0 {
		t.Fatal("pollers observed no epochs at all")
	}
	t.Logf("pollers matched %d distinct epoch observations against %d prefixes", total, ops+1)
}

// TestEpochViewMultiMutatorInternalConsistency: with many concurrent
// mutators there is no single acknowledged order to fingerprint against,
// but every published epoch must STILL be internally consistent and its
// seq monotonic — a torn export would show up here under -race.
func TestEpochViewMultiMutatorInternalConsistency(t *testing.T) {
	s := newTestServer(t, 64)
	defer s.Shutdown(context.Background())
	ctx := context.Background()
	nodes := s.Graph().NumNodes()
	spec := qos.DefaultSpec()

	done := make(chan struct{})
	var pollWg sync.WaitGroup
	for p := 0; p < 2; p++ {
		pollWg.Add(1)
		go func() {
			defer pollWg.Done()
			var lastSeq uint64
			for {
				select {
				case <-done:
					return
				default:
				}
				v := s.View()
				checkEpochInternal(t, v)
				if v.Seq < lastSeq {
					t.Errorf("epoch seq went backwards %d -> %d", lastSeq, v.Seq)
					return
				}
				lastSeq = v.Seq
			}
		}()
	}

	var mutWg sync.WaitGroup
	for w := 0; w < 4; w++ {
		mutWg.Add(1)
		go func(w int) {
			defer mutWg.Done()
			src := rng.New(uint64(500 + w))
			var mine []channel.ConnID
			for i := 0; i < 80; i++ {
				if len(mine) > 0 && src.Float64() < 0.4 {
					id := mine[len(mine)-1]
					mine = mine[:len(mine)-1]
					if _, err := s.Terminate(ctx, id); err != nil && !errors.Is(err, server.ErrNotFound) {
						t.Errorf("terminate: %v", err)
						return
					}
					continue
				}
				a, b := src.Intn(nodes), src.Intn(nodes)
				if a == b {
					b = (b + 1) % nodes
				}
				rep, err := s.Establish(ctx, topology.NodeID(a), topology.NodeID(b), spec)
				if err == nil {
					mine = append(mine, rep.Conn.ID)
				} else if !errors.Is(err, manager.ErrRejected) {
					t.Errorf("establish: %v", err)
					return
				}
			}
		}(w)
	}
	mutWg.Wait()
	close(done)
	pollWg.Wait()
}

// TestStatsServedFromEpochDuringSaturatedLane is the acceptance read-path
// proof: with the consuming lane saturated by slow commands, GET /v1/stats
// answers immediately from the published epoch — without queueing a
// command — and reports the backlog it did not have to wait behind.
func TestStatsServedFromEpochDuringSaturatedLane(t *testing.T) {
	g, err := topology.Waxman(topology.WaxmanConfig{
		Nodes: 40, Alpha: 0.33, Beta: 0.25, EnsureConnected: true,
	}, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	const execDelay = 30 * time.Millisecond
	s, err := server.New(g, manager.Config{Capacity: 10000}, server.Options{
		QueueDepth: 32, ExecDelay: execDelay,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(server.NewHandler(s))
	defer ts.Close()

	// Saturate the consuming lane: each no-op command still pays ExecDelay
	// in the loop, so the backlog drains at ~33 commands/second.
	const backlog = 16
	for i := 0; i < backlog; i++ {
		if err := s.SubmitConsuming(context.Background(), func(*manager.Manager) {}); err != nil {
			t.Fatal(err)
		}
	}

	start := time.Now()
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	elapsed := time.Since(start)
	var st server.Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	// A queued read would wait behind the remaining backlog (hundreds of
	// ms). The epoch read must come back in a fraction of that.
	if budget := execDelay * backlog / 4; elapsed > budget {
		t.Fatalf("GET /v1/stats took %v with a saturated lane (budget %v) — did it queue a command?", elapsed, budget)
	}
	if st.Commands.Snapshots != 0 {
		t.Fatalf("stats read queued %d snapshot command(s); epoch reads must queue none", st.Commands.Snapshots)
	}
	if st.Epoch == nil || st.Epoch.Seq == 0 {
		t.Fatal("stats response carries no epoch staleness block")
	}
	if depth := st.Lanes["consuming"].Depth; depth == 0 {
		t.Fatalf("expected a visible consuming backlog in the stats response; lane depth 0 after %v", elapsed)
	}
	// /metrics rides the same path.
	mStart := time.Now()
	mResp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mResp.Body.Close()
	if elapsed := time.Since(mStart); elapsed > execDelay*backlog/4 {
		t.Fatalf("GET /metrics took %v with a saturated lane", elapsed)
	}
}

// TestEpochReadYourWrites pins the idle-publish contract: a sequential
// caller's acknowledged mutation is visible in the very next StatsView.
func TestEpochReadYourWrites(t *testing.T) {
	s := newTestServer(t, 16)
	defer s.Shutdown(context.Background())
	ctx := context.Background()
	if _, err := s.Establish(ctx, 0, 1, qos.DefaultSpec()); err != nil {
		t.Fatal(err)
	}
	st := s.StatsView()
	if st.Requests != 1 || st.Alive != 1 {
		t.Fatalf("read-your-writes broken: requests %d alive %d after acknowledged establish", st.Requests, st.Alive)
	}
	if st.Epoch == nil || st.Epoch.Seq < 2 {
		t.Fatalf("expected a post-mutation epoch, got %+v", st.Epoch)
	}
}

// TestAuditEpoch: the off-loop audit rebuilds a manager from the published
// State and runs the full invariant check; on a healthy server it must
// pass, and the HTTP variant must answer without touching the loop.
func TestAuditEpoch(t *testing.T) {
	s := newTestServer(t, 16)
	defer s.Shutdown(context.Background())
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if _, err := s.Establish(ctx, topology.NodeID(i), topology.NodeID(i+5), qos.DefaultSpec()); err != nil {
			t.Fatal(err)
		}
	}
	seq, err := s.AuditEpoch()
	if err != nil {
		t.Fatalf("epoch audit of healthy state: %v", err)
	}
	if seq == 0 {
		t.Fatal("audit reported epoch seq 0")
	}
	ts := httptest.NewServer(server.NewHandler(s))
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/v1/invariants?source=epoch")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("epoch-source invariants: status %d", resp.StatusCode)
	}
	var body map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if ok, _ := body["ok"].(bool); !ok {
		t.Fatalf("epoch audit not ok: %v", body)
	}
	if src, _ := body["source"].(string); src != "epoch" {
		t.Fatalf("audit source %q", src)
	}
}

// TestServerGroupCommitAckDurability: on a group-commit journaled server,
// every acknowledged mutation's record is durable by the time the caller
// sees the ack — SyncedSeq always covers the full acknowledged history.
func TestServerGroupCommitAckDurability(t *testing.T) {
	g, err := topology.Waxman(topology.WaxmanConfig{
		Nodes: 40, Alpha: 0.33, Beta: 0.25, EnsureConnected: true,
	}, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	jnl, _, err := journal.Open(dir, journal.Options{GroupCommit: true, GroupCommitMaxWait: 500 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	cfg := manager.Config{Capacity: 10000}
	s, err := server.New(g, cfg, server.Options{QueueDepth: 64, Journal: jnl})
	if err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	const workers, perWorker = 8, 12
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			src := rng.New(uint64(7000 + w))
			for i := 0; i < perWorker; i++ {
				a, b := src.Intn(g.NumNodes()), src.Intn(g.NumNodes())
				if a == b {
					b = (b + 1) % g.NumNodes()
				}
				_, err := s.Establish(ctx, topology.NodeID(a), topology.NodeID(b), qos.DefaultSpec())
				if err != nil && !errors.Is(err, manager.ErrRejected) {
					errs <- fmt.Errorf("establish: %w", err)
					return
				}
				// The ack we just received must already be durable.
				if last, synced := jnl.LastSeq(), jnl.SyncedSeq(); synced == 0 || synced > last {
					errs <- fmt.Errorf("nonsensical durability ledger: last %d synced %d", last, synced)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Quiescent now: everything acknowledged, so everything is durable.
	if last, synced := jnl.LastSeq(), jnl.SyncedSeq(); synced != last {
		t.Fatalf("after quiescence SyncedSeq %d != LastSeq %d", synced, last)
	}
	if last := jnl.LastSeq(); last != workers*perWorker {
		t.Fatalf("journaled %d events, want %d", jnl.LastSeq(), workers*perWorker)
	}
	st := s.StatsView()
	if !st.GroupCommit || st.JournalSynced != st.JournalSeq {
		t.Fatalf("stats durability block wrong: %+v", st)
	}

	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if err := jnl.Close(); err != nil {
		t.Fatal(err)
	}
	// The acknowledged history replays audit-clean.
	jnl2, rec, err := journal.Open(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer jnl2.Close()
	if rec.LastSeq != workers*perWorker {
		t.Fatalf("reopen recovered seq %d, want %d", rec.LastSeq, workers*perWorker)
	}
	if _, err := server.Rebuild(g, cfg, rec); err != nil {
		t.Fatalf("rebuild of acknowledged history: %v", err)
	}
}
