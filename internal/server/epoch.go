// Epoch state snapshots: an RCU-style read path that takes /v1/stats and
// /metrics off the actor loop entirely.
//
// The command loop — the only goroutine that ever touches the manager —
// publishes an immutable EpochView after mutations: a full ExportState plus
// the aggregates the read endpoints serve, swapped behind an atomic pointer.
// Readers load the pointer and never enqueue a command, so observability
// stays O(1) and contention-free no matter how deep the consuming lane is.
//
// Publish cadence is change-driven with a staleness cap: a mutation marks
// the epoch dirty, and the loop publishes immediately when its queues are
// empty (sequential callers read their own writes) or after EpochInterval
// under sustained load (export cost is amortized across the burst). The
// bound is explicit in the payload — epoch seq, published-at age — and as
// drqos_snapshot_age_seconds, so consumers can reject data older than they
// tolerate. Degraded state is never published: the view keeps describing
// the last trusted state while live overlays (degraded flag, counters)
// tell the truth about the present.
package server

import (
	"sync"
	"time"

	"drqos/internal/manager"
)

// EpochView is one immutable published epoch. Everything in it describes
// the same instant of manager state — no field is newer than another.
// Readers must not mutate it (State and the slices are shared by every
// reader of this epoch).
type EpochView struct {
	// Seq increments on every publish; it is unrelated to journal sequence
	// numbers. PublishedAt anchors the staleness bound.
	Seq         uint64
	PublishedAt time.Time

	// State is the manager's full exported state at publish time;
	// State.Fingerprint() identifies the exact mutation prefix it reflects.
	State *manager.State

	// JournalSeq is the last journaled event covered by this epoch (0 when
	// not journaled).
	JournalSeq uint64

	// Aggregates, computed in-loop at publish time.
	Alive            int
	Unprotected      int
	AvgBandwidthKbps float64
	LevelHistogram   []int
	Requests         int64
	Rejects          int64
	FailedLinks      []int

	// Lane delay digests rendered at publish time. The digests themselves
	// are loop-owned; freezing them into the epoch is what lets StatsView
	// report them without entering the loop. Depths are overlaid live.
	Lanes map[string]LaneStats

	// fp memoizes State.Fingerprint() — see Fingerprint.
	fpOnce sync.Once
	fp     string
}

// Fingerprint returns State.Fingerprint() (the SHA-256 identity of the
// exact mutation prefix this epoch reflects), computed at most once per
// epoch no matter how many readers ask. The replication shipper calls it
// per published epoch to build verify points, so the hash never costs the
// actor loop anything and never repeats across polls of the same epoch.
func (v *EpochView) Fingerprint() string {
	v.fpOnce.Do(func() { v.fp = v.State.Fingerprint() })
	return v.fp
}

// EpochStats is the staleness contract surfaced in Stats. Frozen reports
// that publishing is deliberately suspended (degraded mode): the age keeps
// climbing by design, and staleness alarms must key off Frozen before
// treating a high age as a wedged loop.
type EpochStats struct {
	Seq        uint64  `json:"seq"`
	AgeSeconds float64 `json:"age_seconds"`
	Publishes  int64   `json:"publishes"`
	Frozen     bool    `json:"frozen,omitempty"`
}

// View returns the current published epoch. Never nil after construction
// (the constructor publishes epoch 1 before the loop starts) and never
// blocks: this is the whole point of the epoch layer.
func (s *Server) View() *EpochView { return s.view.Load() }

// EpochPublishes returns how many epochs have been published.
func (s *Server) EpochPublishes() int64 { return s.epochPublishes.Load() }

// markEpochDirty records — loop goroutine only — that manager state or its
// counters changed since the last publish.
func (s *Server) markEpochDirty() { s.epochDirty = true }

// publishEpochIfDue publishes a new epoch when one is owed: state changed,
// the server is not degraded, and either the lanes are idle (publish now,
// so a sequential caller's next read sees this write) or the staleness cap
// expired (publish at most once per EpochInterval under sustained load).
// Loop goroutine only.
func (s *Server) publishEpochIfDue(m *manager.Manager) {
	if !s.epochDirty || s.degraded.Load() {
		return
	}
	if s.QueueDepth() > 0 && time.Since(s.lastPublish) < s.epochInterval {
		return
	}
	s.publishEpoch(m)
}

// publishEpoch unconditionally exports the manager and swaps in a fresh
// epoch. Loop goroutine only (or before the loop starts / inside a loop
// command, which is the same ownership).
func (s *Server) publishEpoch(m *manager.Manager) {
	v := &EpochView{
		Seq:              s.epochSeq + 1,
		PublishedAt:      time.Now(),
		State:            m.ExportState(),
		Alive:            m.AliveCount(),
		Unprotected:      m.UnprotectedCount(),
		AvgBandwidthKbps: m.AverageBandwidth(),
		LevelHistogram:   m.LevelHistogram(nil),
		Requests:         m.Requests(),
		Rejects:          m.Rejects(),
		Lanes: map[string]LaneStats{
			laneFreeing.String():   laneStats(len(s.freeing), s.delayFreeing),
			laneConsuming.String(): laneStats(len(s.consuming), s.delayConsuming),
		},
	}
	for _, l := range v.State.FailedLinks {
		v.FailedLinks = append(v.FailedLinks, int(l))
	}
	if s.jnl != nil {
		v.JournalSeq = s.jnl.LastSeq()
	}
	s.view.Store(v)
	s.epochSeq = v.Seq
	s.epochDirty = false
	s.lastPublish = v.PublishedAt
	s.epochPublishes.Add(1)
}

// StatsView assembles a Stats answer from the published epoch plus live
// overlays (flags, counters, instantaneous depths) — everything /v1/stats
// reports, without entering the command lanes. The manager-derived fields
// are up to one EpochInterval stale under load (see Stats.Epoch for the
// exact bound); the overlays are current.
func (s *Server) StatsView() Stats {
	v := s.View()
	st := Stats{
		Nodes:            s.graph.NumNodes(),
		Links:            s.graph.NumLinks(),
		CapacityKbps:     s.capacityKbps,
		Alive:            v.Alive,
		Unprotected:      v.Unprotected,
		AvgBandwidthKbps: v.AvgBandwidthKbps,
		LevelHistogram:   v.LevelHistogram,
		Requests:         v.Requests,
		Rejects:          v.Rejects,
		FailedLinks:      v.FailedLinks,
		Epoch: &EpochStats{
			Seq:        v.Seq,
			AgeSeconds: time.Since(v.PublishedAt).Seconds(),
			Publishes:  s.epochPublishes.Load(),
			Frozen:     s.degraded.Load(),
		},
	}
	if st.Requests > 0 {
		st.RejectRate = float64(st.Rejects) / float64(st.Requests)
	}
	// Frozen delay digests from the epoch, live depths from the channels.
	st.Lanes = map[string]LaneStats{}
	for name, ls := range v.Lanes {
		st.Lanes[name] = ls
	}
	if ls, ok := st.Lanes[laneFreeing.String()]; ok {
		ls.Depth = len(s.freeing)
		st.Lanes[laneFreeing.String()] = ls
	}
	if ls, ok := st.Lanes[laneConsuming.String()]; ok {
		ls.Depth = len(s.consuming)
		st.Lanes[laneConsuming.String()] = ls
	}
	st.Degraded, st.DegradedReason = s.Degraded()
	st.InvariantViolations = s.invariantViolations.Load()
	st.Overloaded = s.Overloaded()
	st.OverloadEpisodes = s.OverloadEpisodes()
	st.ShedExpired, st.ShedCanceled = s.Sheds()
	if s.jnl != nil {
		st.Journaled = true
		st.JournalSeq = s.jnl.LastSeq()
		st.JournalSnapshot = s.jnl.SnapshotSeq()
		st.JournalErrors = s.journalErrors.Load()
		if s.jnl.GroupCommit() {
			st.GroupCommit = true
			st.JournalSynced = s.jnl.SyncedSeq()
			st.FsyncBatches, st.BatchedAppends = s.jnl.GroupCommitStats()
		}
	}
	st.Recovering, st.Recoveries, st.RecoveryFailures, st.LastRecoveryError = s.RecoveryStatus()
	st.Commands = CommandStats{
		Processed:   s.processed.Load(),
		Establishes: s.establishes.Load(),
		Terminates:  s.terminates.Load(),
		Failures:    s.failures.Load(),
		Repairs:     s.repairs.Load(),
		Snapshots:   s.snapshots.Load(),
	}
	st.QueueDepth = s.QueueDepth()
	st.Forecast = forecastStats(s.fc)
	st.Replica = s.replicaBlock()
	return st
}

// AuditEpoch runs the full invariant audit against the published epoch —
// off the actor loop, against a manager rebuilt from the epoch's State.
// It reports the epoch's seq and the audit verdict. Unlike CheckInvariants
// it cannot discover corruption newer than the epoch and never flips the
// live server degraded; it exists so operators can audit without queueing
// behind a backlog.
func (s *Server) AuditEpoch() (uint64, error) {
	v := s.View()
	m, err := manager.Restore(s.graph, s.cfg, v.State)
	if err != nil {
		return v.Seq, err
	}
	return v.Seq, m.CheckInvariants()
}
