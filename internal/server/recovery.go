// Supervised recovery: rebuilding a trusted manager from the durable
// journal and swapping it into the command loop, so a degraded server
// returns to service without a restart.
//
// The state machine is degraded → recovering → healthy:
//
//   - degraded: an invariant violation latched; mutations answer 503; no
//     events are journaled (so the journal keeps describing the last
//     trusted state).
//   - recovering: Recover reloads the journal, rebuilds a fresh manager
//     (snapshot restore + strict event replay), audits it with the full
//     invariant check, and — only if everything passes — swaps it in.
//   - healthy: the swap command (running inside the loop) installs the new
//     manager and un-latches degraded in one atomic step; the next command
//     sees a clean manager.
//
// Recovery is refused (the server stays degraded) when the journal itself
// is damaged, the rebuilt state fails its audit, or the snapshot header's
// aggregates disagree with the rebuilt manager. Those cases mean replaying
// the history reproduces the corruption — i.e. the bad state was caused by
// a journaled event, not by out-of-band damage — and serving it would be
// lying about dependability.
package server

import (
	"context"
	"errors"
	"fmt"
	"time"

	"drqos/internal/channel"
	"drqos/internal/journal"
	"drqos/internal/manager"
	"drqos/internal/qos"
	"drqos/internal/routing"
	"drqos/internal/topology"
)

// ErrJournal reports a journal append, reload or rebuild failure. Mutations
// that cannot be journaled are refused (write-ahead discipline).
var ErrJournal = errors.New("server: journal error")

// ErrNoJournal reports a recovery request against a server that runs
// without a journal — there is nothing to rebuild from.
var ErrNoJournal = errors.New("server: no journal configured")

// ErrNotDegraded reports a recovery request while the server is healthy.
var ErrNotDegraded = errors.New("server: not degraded, nothing to recover")

// ErrRecoveryInProgress reports a recovery request while another recovery
// is already running.
var ErrRecoveryInProgress = errors.New("server: recovery already in progress")

// RecoverPolicy configures automatic recovery from degraded mode.
type RecoverPolicy struct {
	// Auto starts a background supervisor when the server degrades, which
	// retries Recover with capped exponential backoff until it succeeds,
	// attempts run out, or the server shuts down.
	Auto bool
	// InitialBackoff is the delay after the first failed attempt
	// (default 100ms).
	InitialBackoff time.Duration
	// MaxBackoff caps the exponential growth (default 5s).
	MaxBackoff time.Duration
	// MaxAttempts bounds the supervisor's tries (0 = unlimited).
	MaxAttempts int
}

func (p RecoverPolicy) withDefaults() RecoverPolicy {
	if p.InitialBackoff <= 0 {
		p.InitialBackoff = 100 * time.Millisecond
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = 5 * time.Second
	}
	return p
}

// RecoveryStatus reports the recovery counters for stats and metrics.
func (s *Server) RecoveryStatus() (recovering bool, recoveries, failures int64, lastErr string) {
	s.lastRecoveryMu.Lock()
	lastErr = s.lastRecoveryErr
	s.lastRecoveryMu.Unlock()
	return s.recovering.Load(), s.recoveries.Load(), s.recoveryFailures.Load(), lastErr
}

func (s *Server) setLastRecoveryErr(msg string) {
	s.lastRecoveryMu.Lock()
	s.lastRecoveryErr = msg
	s.lastRecoveryMu.Unlock()
}

// Recover rebuilds a manager from the journal and, if it passes the full
// invariant audit, swaps it into the command loop and un-latches degraded
// mode. It returns the journal sequence number the rebuilt manager covers.
// Only one recovery runs at a time; concurrent calls get
// ErrRecoveryInProgress.
//
// Recovery can only succeed when the corruption was out-of-band (a cosmic-
// ray bit flip, a bug in an aggregate cache): replaying the journal then
// reproduces the correct state. If a journaled event itself corrupts the
// manager deterministically, replay reproduces the corruption, the audit
// fails, and Recover refuses — the honest outcome.
func (s *Server) Recover(ctx context.Context) (uint64, error) {
	if s.jnl == nil {
		return 0, ErrNoJournal
	}
	if ok, _ := s.Degraded(); !ok {
		return 0, ErrNotDegraded
	}
	if !s.recovering.CompareAndSwap(false, true) {
		return 0, ErrRecoveryInProgress
	}
	defer s.recovering.Store(false)
	seq, err := s.recoverOnce(ctx)
	if err != nil {
		s.recoveryFailures.Add(1)
		s.setLastRecoveryErr(err.Error())
		return 0, err
	}
	s.recoveries.Add(1)
	s.setLastRecoveryErr("")
	if s.onRecover != nil {
		s.onRecover(seq)
	}
	return seq, nil
}

func (s *Server) recoverOnce(ctx context.Context) (uint64, error) {
	// Degraded mode guarantees append quiescence: every mutating command is
	// refused before it journals, so the reload sees the complete history.
	rec, err := s.jnl.Reload()
	if err != nil {
		return 0, fmt.Errorf("%w: reload: %v", ErrJournal, err)
	}
	fresh, txns, err := RebuildWithTxns(s.graph, s.cfg, rec)
	if err != nil {
		return 0, err
	}
	// Swap inside the loop: installing the manager and un-latching degraded
	// happen in one command, so every other command sees either (degraded,
	// old manager) or (healthy, new manager) — never a mix. The swap rides
	// the freeing lane (it is what un-wedges the service, so it must not
	// queue behind backlogged establishes) and is critical: once accepted
	// it always executes, even if ctx dies, because the <-done wait below
	// must terminate.
	done := make(chan struct{})
	if err := s.submit(ctx, laneFreeing, true, func(*manager.Manager) {
		// The journal is the durable term authority: adopt whatever fencing
		// term the reload surfaced (snapshot header or KindTerm records), so
		// a rebuilt replica resumes fencing where its history left off.
		if rec.Term > s.term.Load() {
			s.term.Store(rec.Term)
		}
		s.mgr = fresh
		// The transaction table is rebuilt alongside the manager it
		// indexes into. In-flight (uncommitted) transactions stay pending:
		// resolving them is the coordinator's call, not this shard's.
		s.txns = txns
		s.eventsSinceSnap = 0
		s.degradedMu.Lock()
		s.degradedReason = ""
		s.degradedMu.Unlock()
		s.degraded.Store(false)
		// Degraded mode froze epoch publishing at the last trusted state;
		// the rebuilt manager IS the trusted state now, so publish it
		// unconditionally before anyone reads post-recovery stats.
		s.publishEpoch(fresh)
		close(done)
	}); err != nil {
		return 0, err
	}
	// An accepted command runs exactly once even through Shutdown's drain,
	// so this wait always terminates.
	<-done
	return rec.LastSeq, nil
}

// superviseRecovery is the automatic-recovery loop, spawned by
// noteViolation when the policy asks for it. Capped exponential backoff;
// stops on success, on exhausted attempts, or at shutdown.
func (s *Server) superviseRecovery() {
	p := s.recoverPolicy
	backoff := p.InitialBackoff
	for attempt := 1; ; attempt++ {
		_, err := s.Recover(context.Background())
		switch {
		case err == nil, errors.Is(err, ErrNotDegraded), errors.Is(err, ErrNoJournal):
			return // recovered (possibly by a concurrent manual call)
		case errors.Is(err, ErrServerClosed):
			return
		}
		if p.MaxAttempts > 0 && attempt >= p.MaxAttempts {
			return
		}
		select {
		case <-s.stop:
			return
		case <-time.After(backoff):
		}
		backoff *= 2
		if backoff > p.MaxBackoff {
			backoff = p.MaxBackoff
		}
	}
}

// Rebuild reconstructs a manager from recovered journal state: restore the
// snapshot (if any), cross-check it against the snapshot header's
// aggregates, strictly replay the event tail, and run the full invariant
// audit. Any disagreement is an error — callers must refuse to serve a
// state that replay cannot vouch for. Single-shard convenience wrapper
// around RebuildWithTxns (a standalone journal never has transactions).
func Rebuild(g *topology.Graph, cfg manager.Config, rec *journal.Recovered) (*manager.Manager, error) {
	m, _, err := RebuildWithTxns(g, cfg, rec)
	return m, err
}

// RebuildWithTxns is Rebuild plus the cross-shard transaction table: the
// snapshot header seeds the committed transactions, prepare/commit records
// in the tail mutate the table exactly as the live path did, and pending
// transactions whose pinned connections were all terminated (an abort's
// trace) are dropped. The returned table seeds Options.Txns.
func RebuildWithTxns(g *topology.Graph, cfg manager.Config, rec *journal.Recovered) (*manager.Manager, TxnTable, error) {
	var m *manager.Manager
	var err error
	txns := TxnTable{}
	if rec.SnapshotHeader != nil {
		st, uerr := manager.UnmarshalState(rec.SnapshotBody)
		if uerr != nil {
			return nil, nil, fmt.Errorf("%w: snapshot seq %d: %v", ErrJournal, rec.SnapshotSeq, uerr)
		}
		m, err = manager.Restore(g, cfg, st)
		if err != nil {
			return nil, nil, fmt.Errorf("%w: snapshot seq %d: %v", ErrJournal, rec.SnapshotSeq, err)
		}
		if err := crossCheckSnapshot(m, rec.SnapshotHeader); err != nil {
			return nil, nil, fmt.Errorf("%w: snapshot seq %d: %v", ErrJournal, rec.SnapshotSeq, err)
		}
		for _, ts := range rec.SnapshotHeader.Txns {
			tx := &TxnState{Peers: ts.Peers, Committed: true}
			for _, c := range ts.Conns {
				tx.Conns = append(tx.Conns, channel.ConnID(c))
			}
			txns[ts.Txn] = tx
		}
	} else {
		m, err = manager.New(g, cfg)
		if err != nil {
			return nil, nil, err
		}
	}
	for _, ev := range rec.Events {
		if err := applyJournaled(m, ev, txns); err != nil {
			return nil, nil, fmt.Errorf("%w: %v", ErrJournal, err)
		}
	}
	// A pending transaction with no alive connection is an abort that
	// finished (every pinned connection was journal-terminated) — the live
	// path deleted the entry, replay reproduces that.
	for id, tx := range txns {
		if tx.Committed {
			continue
		}
		alive := false
		for _, cid := range tx.Conns {
			if c := m.Conn(cid); c != nil && c.Alive() {
				alive = true
				break
			}
		}
		if !alive {
			delete(txns, id)
		}
	}
	if err := m.CheckInvariants(); err != nil {
		return nil, nil, fmt.Errorf("%w: replayed state fails audit: %v", ErrJournal, err)
	}
	return m, txns, nil
}

// crossCheckSnapshot compares the restored manager against the aggregates
// the snapshot header recorded at write time. A mismatch means the restore
// machinery (not the disk — the body already passed its CRC) disagrees with
// the state it was handed.
func crossCheckSnapshot(m *manager.Manager, hdr *journal.SnapshotHeader) error {
	if m.AliveCount() != hdr.Alive {
		return fmt.Errorf("restored %d alive connections, header says %d", m.AliveCount(), hdr.Alive)
	}
	if m.UnprotectedCount() != hdr.Unprotected {
		return fmt.Errorf("restored %d unprotected, header says %d", m.UnprotectedCount(), hdr.Unprotected)
	}
	if m.Requests() != hdr.Requests || m.Rejects() != hdr.Rejects {
		return fmt.Errorf("restored counters %d/%d, header says %d/%d",
			m.Requests(), m.Rejects(), hdr.Requests, hdr.Rejects)
	}
	hist := m.LevelHistogram(nil)
	for l := 0; l < len(hist) || l < len(hdr.LevelHistogram); l++ {
		var got, want int
		if l < len(hist) {
			got = hist[l]
		}
		if l < len(hdr.LevelHistogram) {
			want = hdr.LevelHistogram[l]
		}
		if got != want {
			return fmt.Errorf("restored level histogram [%d]=%d, header says %d", l, got, want)
		}
	}
	failed := 0
	for l := 0; l < m.Graph().NumLinks(); l++ {
		if m.Network().Failed(topology.LinkID(l)) {
			failed++
		}
	}
	if failed != len(hdr.FailedLinks) {
		return fmt.Errorf("restored %d failed links, header says %d", failed, len(hdr.FailedLinks))
	}
	return nil
}

// applyJournaled replays one event. Deterministic rejections (admission
// refusal, invalid spec) are tolerated for establishes and prepares — they
// happened identically in the original run and bumped the same counters.
// Everything else must succeed: the server pre-validated
// terminate/fail/repair events before journaling them, so a replay error
// means the journal and the state machine disagree. txns receives the
// prepare/commit trail exactly as the live path recorded it.
func applyJournaled(m *manager.Manager, ev journal.Event, txns TxnTable) error {
	switch ev.Kind {
	case journal.KindEstablish:
		if !validNode(m.Graph(), topology.NodeID(ev.Src)) || !validNode(m.Graph(), topology.NodeID(ev.Dst)) {
			return fmt.Errorf("replay seq %d: establish endpoints %d→%d out of range — journal from a different topology?",
				ev.Seq, ev.Src, ev.Dst)
		}
		spec := qos.ElasticSpec{
			Min:       qos.Kbps(ev.MinKbps),
			Max:       qos.Kbps(ev.MaxKbps),
			Increment: qos.Kbps(ev.IncKbps),
			Utility:   ev.Utility,
		}
		_, err := m.Establish(topology.NodeID(ev.Src), topology.NodeID(ev.Dst), spec)
		if err != nil && !errors.Is(err, manager.ErrRejected) && !errors.Is(err, qos.ErrInvalidSpec) {
			return fmt.Errorf("replay seq %d (establish %d→%d): %w", ev.Seq, ev.Src, ev.Dst, err)
		}
		return nil
	case journal.KindTerminate:
		if _, err := m.Terminate(channel.ConnID(ev.Conn)); err != nil {
			return fmt.Errorf("replay seq %d (terminate %d): %w", ev.Seq, ev.Conn, err)
		}
		return nil
	case journal.KindFailLink:
		if _, err := m.FailLink(topology.LinkID(ev.Link)); err != nil {
			return fmt.Errorf("replay seq %d (fail link %d): %w", ev.Seq, ev.Link, err)
		}
		return nil
	case journal.KindRepairLink:
		if _, err := m.RepairLink(topology.LinkID(ev.Link)); err != nil {
			return fmt.Errorf("replay seq %d (repair link %d): %w", ev.Seq, ev.Link, err)
		}
		return nil
	case journal.KindPrepare:
		spec := qos.ElasticSpec{
			Min:       qos.Kbps(ev.MinKbps),
			Max:       qos.Kbps(ev.MaxKbps),
			Increment: qos.Kbps(ev.IncKbps),
			Utility:   ev.Utility,
		}
		path := routing.Path{
			Nodes: make([]topology.NodeID, len(ev.PathNodes)),
			Links: make([]topology.LinkID, len(ev.PathLinks)),
		}
		for i, n := range ev.PathNodes {
			path.Nodes[i] = topology.NodeID(n)
		}
		for i, l := range ev.PathLinks {
			path.Links[i] = topology.LinkID(l)
		}
		rep, err := m.EstablishFixed(topology.NodeID(ev.Src), topology.NodeID(ev.Dst), spec, path)
		if err != nil {
			if errors.Is(err, manager.ErrRejected) || errors.Is(err, qos.ErrInvalidSpec) {
				return nil // rejected identically in the original run
			}
			return fmt.Errorf("replay seq %d (prepare txn %d): %w", ev.Seq, ev.Txn, err)
		}
		tx := txns[ev.Txn]
		if tx == nil {
			tx = &TxnState{Peers: ev.Peers}
			txns[ev.Txn] = tx
		}
		tx.Conns = append(tx.Conns, rep.Conn.ID)
		return nil
	case journal.KindTerm:
		// Replication fence marker: no manager state changes. The journal
		// layer already folded the highest term into Recovered.Term.
		return nil
	case journal.KindCommit:
		tx := txns[ev.Txn]
		if tx == nil {
			// Snapshots are refused while a transaction is pending, so a
			// commit's prepare is always on this side of the boundary; a
			// missing transaction means the journal is inconsistent.
			return fmt.Errorf("replay seq %d: commit for unknown txn %d", ev.Seq, ev.Txn)
		}
		tx.Committed = true
		return nil
	default:
		return fmt.Errorf("replay seq %d: unknown event kind %d", ev.Seq, uint8(ev.Kind))
	}
}
