package server

import (
	"time"

	"drqos/internal/forecast"
)

// Forecaster returns the live analytic control plane, or nil when the
// server was built without Options.Forecast.
func (s *Server) Forecaster() *forecast.Forecaster { return s.fc }

// ForecastEnvelope wraps GET /v1/forecast: availability (no solve has
// succeeded yet → available:false with the blocking reason), the age of the
// served solution, the predictive-overload latch, and the forecast itself.
type ForecastEnvelope struct {
	Available         bool               `json:"available"`
	Reason            string             `json:"reason,omitempty"`
	AgeSeconds        float64            `json:"age_seconds,omitempty"`
	PredictedOverload bool               `json:"predicted_overload"`
	Forecast          *forecast.Forecast `json:"forecast,omitempty"`
}

// ForecastStats is the forecast section of GET /v1/stats: the live
// estimator parameters and solve-loop health, without the full
// distribution (that lives on /v1/forecast).
type ForecastStats struct {
	Available            bool    `json:"available"`
	Stale                bool    `json:"stale"`
	PredictedOverload    bool    `json:"predicted_overload"`
	Seq                  int64   `json:"seq"`
	Solves               int64   `json:"solves"`
	SolveErrors          int64   `json:"solve_errors"`
	LastError            string  `json:"last_error,omitempty"`
	AgeSeconds           float64 `json:"age_seconds"`
	SolveDurationSeconds float64 `json:"solve_duration_seconds"`
	MeanBandwidthKbps    float64 `json:"mean_bandwidth_kbps"`
	Lambda               float64 `json:"lambda_per_sec"`
	Mu                   float64 `json:"mu_per_sec"`
	Gamma                float64 `json:"gamma_per_sec"`
	Delta                float64 `json:"delta_per_sec"`
	Pf                   float64 `json:"pf"`
	Ps                   float64 `json:"ps"`
	PfFail               float64 `json:"pf_fail"`
	DiscardedA           float64 `json:"discarded_a"`
	DiscardedB           float64 `json:"discarded_b"`
	DiscardedT           float64 `json:"discarded_t"`
	AvgAlive             float64 `json:"avg_alive"`
	Saturated            bool    `json:"saturated"`
	IgnoredTransitions   int64   `json:"ignored_transitions"`
}

// forecastStats summarizes the forecaster for /v1/stats and /metrics. Nil
// when forecasting is disabled.
func forecastStats(fc *forecast.Forecaster) *ForecastStats {
	if fc == nil {
		return nil
	}
	solves, solveErrors, lastErr := fc.Status()
	fs := &ForecastStats{
		PredictedOverload: fc.Predicted(),
		Solves:            solves,
		SolveErrors:       solveErrors,
		LastError:         lastErr,
	}
	cur := fc.Current()
	if cur == nil {
		return fs
	}
	fs.Available = true
	fs.Stale = cur.Stale
	fs.Seq = cur.Seq
	fs.AgeSeconds = time.Since(cur.SolvedAt).Seconds()
	fs.SolveDurationSeconds = cur.SolveDurationSeconds
	fs.MeanBandwidthKbps = cur.MeanBandwidthKbps
	fs.Lambda, fs.Mu, fs.Gamma, fs.Delta = cur.Lambda, cur.Mu, cur.Gamma, cur.Delta
	fs.Pf, fs.Ps, fs.PfFail = cur.Pf, cur.Ps, cur.PfFail
	fs.DiscardedA, fs.DiscardedB, fs.DiscardedT = cur.DiscardedA, cur.DiscardedB, cur.DiscardedT
	fs.AvgAlive = cur.AvgAlive
	fs.Saturated = cur.Saturated
	fs.IgnoredTransitions = cur.IgnoredTransitions
	return fs
}
