package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync/atomic"
	"time"

	"drqos/internal/channel"
	"drqos/internal/forecast"
	"drqos/internal/manager"
	"drqos/internal/overload"
	"drqos/internal/qos"
	"drqos/internal/topology"
)

// EstablishRequest is the JSON body of POST /v1/connections. A fully zero
// QoS block selects qos.DefaultSpec (the paper's 100..500 Kb/s, Δ=50).
type EstablishRequest struct {
	Src           int     `json:"src"`
	Dst           int     `json:"dst"`
	MinKbps       int64   `json:"min_kbps"`
	MaxKbps       int64   `json:"max_kbps"`
	IncrementKbps int64   `json:"increment_kbps"`
	Utility       float64 `json:"utility"`
}

// Spec materializes the request's elastic QoS.
func (r EstablishRequest) Spec() qos.ElasticSpec {
	if r.MinKbps == 0 && r.MaxKbps == 0 && r.IncrementKbps == 0 {
		s := qos.DefaultSpec()
		if r.Utility > 0 {
			s.Utility = r.Utility
		}
		return s
	}
	return qos.ElasticSpec{
		Min:       qos.Kbps(r.MinKbps),
		Max:       qos.Kbps(r.MaxKbps),
		Increment: qos.Kbps(r.IncrementKbps),
		Utility:   r.Utility,
	}
}

// EstablishResponse summarizes an admitted connection.
type EstablishResponse struct {
	ID                int64 `json:"id"`
	Level             int   `json:"level"`
	BandwidthKbps     int64 `json:"bandwidth_kbps"`
	HasBackup         bool  `json:"has_backup"`
	PrimaryHops       int   `json:"primary_hops"`
	DirectlyChained   int   `json:"directly_chained"`
	IndirectlyChained int   `json:"indirectly_chained"`
	LevelChanges      int   `json:"level_changes"`
}

// TerminateResponse summarizes a released connection.
type TerminateResponse struct {
	ID           int64 `json:"id"`
	Affected     int   `json:"affected"`
	LevelChanges int   `json:"level_changes"`
}

// FaultRequest is the JSON body of POST /v1/faults/link. Action is "fail"
// (default) or "repair".
type FaultRequest struct {
	Link   int    `json:"link"`
	Action string `json:"action"`
}

// FaultResponse summarizes a fault-injection event.
type FaultResponse struct {
	Link        int     `json:"link"`
	Action      string  `json:"action"`
	Activated   []int64 `json:"activated,omitempty"`
	Dropped     []int64 `json:"dropped,omitempty"`
	Recovered   []int64 `json:"recovered,omitempty"`
	BackupsLost []int64 `json:"backups_lost,omitempty"`
	Squeezed    int     `json:"squeezed"`
	Reprotected int     `json:"reprotected"`
}

// errorBody is the JSON error envelope. RetryAfterSeconds mirrors the
// Retry-After header on 429/503 shed responses.
type errorBody struct {
	Error             string `json:"error"`
	Rejected          bool   `json:"rejected,omitempty"`
	RetryAfterSeconds int64  `json:"retry_after_seconds,omitempty"`
}

// HandlerOption customizes NewHandler.
type HandlerOption func(*handlerConfig)

type handlerConfig struct {
	limiter      *overload.Limiter
	maxBodyBytes int64
	pprof        bool
	rateLimited  atomic.Int64
}

// WithRateLimit adds per-client token-bucket rate limiting to the mutation
// endpoints: each client (X-Client-ID header, else remote host) gets rate
// requests/second with bursts of burst; beyond that, 429 + Retry-After.
// rate <= 0 disables limiting.
func WithRateLimit(rate, burst float64) HandlerOption {
	return func(c *handlerConfig) {
		if rate > 0 {
			c.limiter = overload.NewLimiter(rate, burst)
		}
	}
}

// WithMaxBodyBytes caps request-body size on the mutation endpoints;
// oversized bodies answer 413. n <= 0 keeps the default (1 MiB).
func WithMaxBodyBytes(n int64) HandlerOption {
	return func(c *handlerConfig) {
		if n > 0 {
			c.maxBodyBytes = n
		}
	}
}

// WithPprof mounts net/http/pprof under /debug/pprof/ so overload
// investigations can pull CPU/heap/goroutine profiles from a live daemon.
func WithPprof() HandlerOption {
	return func(c *handlerConfig) { c.pprof = true }
}

// NewHandler returns the HTTP/JSON API over s:
//
//	POST   /v1/connections        admit a DR-connection
//	DELETE /v1/connections/{id}   terminate a DR-connection
//	POST   /v1/faults/link        fail or repair a link
//	POST   /v1/admin/recover      rebuild from the journal, exit degraded mode
//	GET    /v1/stats              consistent service snapshot
//	GET    /v1/invariants         run the manager's consistency audit
//	GET    /metrics               Prometheus text metrics
//	GET    /healthz               liveness: 200 while the process serves
//	GET    /readyz                readiness: 503 while degraded, recovering
//	                              or overloaded
//
// Overload semantics: while the server's sustained-queue-delay detector is
// latched, new capacity-consuming work (establish, link fail) answers 503
// with a Retry-After hint; terminations, repairs and every read stay live.
// With WithRateLimit, each client is additionally token-bucket limited on
// the mutation endpoints (429 + Retry-After).
func NewHandler(s *Server, opts ...HandlerOption) http.Handler {
	cfg := &handlerConfig{maxBodyBytes: 1 << 20}
	for _, o := range opts {
		o(cfg)
	}
	mux := http.NewServeMux()

	// decodeBody reads a JSON body under the size cap; a limit overrun
	// answers 413, malformed JSON 400. Returns false when a response was
	// already written.
	decodeBody := func(w http.ResponseWriter, r *http.Request, v any) bool {
		r.Body = http.MaxBytesReader(w, r.Body, cfg.maxBodyBytes)
		if err := json.NewDecoder(r.Body).Decode(v); err != nil {
			var tooBig *http.MaxBytesError
			if errors.As(err, &tooBig) {
				writeJSON(w, http.StatusRequestEntityTooLarge,
					errorBody{Error: fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit)})
				return false
			}
			writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad request body: " + err.Error()})
			return false
		}
		return true
	}

	// admitClient enforces the per-client token bucket on mutating
	// endpoints. Returns false when the request was already answered 429.
	admitClient := func(w http.ResponseWriter, r *http.Request) bool {
		if cfg.limiter == nil {
			return true
		}
		key := r.Header.Get("X-Client-ID")
		if key == "" {
			if host, _, err := net.SplitHostPort(r.RemoteAddr); err == nil {
				key = host
			} else {
				key = r.RemoteAddr
			}
		}
		ok, retry := cfg.limiter.Allow(key, time.Now())
		if ok {
			return true
		}
		cfg.rateLimited.Add(1)
		writeShed(w, http.StatusTooManyRequests, retry,
			fmt.Sprintf("client %q over rate limit", key))
		return false
	}

	// shedIfOverloaded refuses new capacity-consuming work while the
	// overloaded state holds. Returns false when already answered 503.
	shedIfOverloaded := func(w http.ResponseWriter) bool {
		if !s.Overloaded() {
			return true
		}
		writeShed(w, http.StatusServiceUnavailable, s.RetryAfterHint(), ErrOverloaded.Error())
		return false
	}

	mux.HandleFunc("POST /v1/connections", func(w http.ResponseWriter, r *http.Request) {
		if !admitClient(w, r) || !shedIfOverloaded(w) {
			return
		}
		var req EstablishRequest
		if !decodeBody(w, r, &req) {
			return
		}
		rep, err := s.Establish(r.Context(), topology.NodeID(req.Src), topology.NodeID(req.Dst), req.Spec())
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusCreated, EstablishResponse{
			ID:                int64(rep.Conn.ID),
			Level:             rep.Conn.Level,
			BandwidthKbps:     int64(rep.Conn.Bandwidth()),
			HasBackup:         rep.Conn.HasBackup,
			PrimaryHops:       rep.Conn.Primary.Hops(),
			DirectlyChained:   len(rep.DirectlyChained),
			IndirectlyChained: len(rep.IndirectlyChained),
			LevelChanges:      len(rep.Changes),
		})
	})
	mux.HandleFunc("DELETE /v1/connections/{id}", func(w http.ResponseWriter, r *http.Request) {
		// Terminations stay admitted under overload: freeing capacity is
		// the way out. Only the per-client limiter applies.
		if !admitClient(w, r) {
			return
		}
		id, err := strconv.ParseInt(r.PathValue("id"), 10, 64)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad connection id: " + err.Error()})
			return
		}
		rep, err := s.Terminate(r.Context(), channel.ConnID(id))
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, TerminateResponse{
			ID:           id,
			Affected:     len(rep.Affected),
			LevelChanges: len(rep.Changes),
		})
	})
	mux.HandleFunc("GET /v1/connections/{id}", func(w http.ResponseWriter, r *http.Request) {
		// Point lookup for one connection — the probe drload's acked-write
		// ledger uses after a failover to verify every acknowledged
		// connection survived onto the promoted primary.
		id, err := strconv.ParseInt(r.PathValue("id"), 10, 64)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad connection id: " + err.Error()})
			return
		}
		st, err := s.ConnStatus(r.Context(), channel.ConnID(id))
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, st)
	})
	mux.HandleFunc("POST /v1/faults/link", func(w http.ResponseWriter, r *http.Request) {
		if !admitClient(w, r) {
			return
		}
		var req FaultRequest
		if !decodeBody(w, r, &req) {
			return
		}
		switch req.Action {
		case "", "fail":
			// Fail injection activates backups and squeezes peers —
			// capacity-consuming — so it is shed while overloaded.
			if !shedIfOverloaded(w) {
				return
			}
			rep, err := s.FailLink(r.Context(), topology.LinkID(req.Link))
			if err != nil {
				writeError(w, err)
				return
			}
			writeJSON(w, http.StatusOK, FaultResponse{
				Link:        req.Link,
				Action:      "fail",
				Activated:   connIDs(rep.Activated),
				Dropped:     connIDs(rep.Dropped),
				Recovered:   connIDs(rep.Recovered),
				BackupsLost: connIDs(rep.BackupsLost),
				Squeezed:    len(rep.Squeezed),
			})
		case "repair":
			restored, err := s.RepairLink(r.Context(), topology.LinkID(req.Link))
			if err != nil {
				writeError(w, err)
				return
			}
			writeJSON(w, http.StatusOK, FaultResponse{
				Link: req.Link, Action: "repair", Reprotected: restored,
			})
		default:
			writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("unknown action %q", req.Action)})
		}
	})
	mux.HandleFunc("GET /v1/forecast", func(w http.ResponseWriter, r *http.Request) {
		fc := s.Forecaster()
		if fc == nil {
			writeJSON(w, http.StatusNotFound,
				errorBody{Error: "forecasting disabled (start the daemon with -forecast-interval > 0)"})
			return
		}
		// Reads the lock-free published pointer — never touches the actor
		// loop, so the forecast stays available under overload, degraded
		// mode and even after shutdown.
		cur := fc.Current()
		if cur == nil {
			_, _, lastErr := fc.Status()
			if lastErr == "" {
				lastErr = "no solve attempted yet"
			}
			writeJSON(w, http.StatusOK, ForecastEnvelope{Available: false, Reason: lastErr})
			return
		}
		writeJSON(w, http.StatusOK, ForecastEnvelope{
			Available:         true,
			AgeSeconds:        time.Since(cur.SolvedAt).Seconds(),
			PredictedOverload: fc.Predicted(),
			Forecast:          cur,
		})
	})
	mux.HandleFunc("POST /v1/forecast/whatif", func(w http.ResponseWriter, r *http.Request) {
		fc := s.Forecaster()
		if fc == nil {
			writeJSON(w, http.StatusNotFound,
				errorBody{Error: "forecasting disabled (start the daemon with -forecast-interval > 0)"})
			return
		}
		var req forecast.WhatIfRequest
		if !decodeBody(w, r, &req) {
			return
		}
		resp, err := fc.WhatIf(req)
		if err != nil {
			switch {
			case errors.Is(err, forecast.ErrNoForecast):
				writeJSON(w, http.StatusConflict, errorBody{Error: err.Error()})
			default:
				writeJSON(w, http.StatusUnprocessableEntity, errorBody{Error: err.Error()})
			}
			return
		}
		writeJSON(w, http.StatusOK, resp)
	})
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		// Served from the published epoch view plus live overlays — no
		// command is queued, so stats stay fast (and available) no matter
		// how deep the consuming-lane backlog is. The staleness bound is
		// explicit in the payload's "epoch" block. ?source=loop forces the
		// legacy in-loop snapshot for exact point-in-time debugging.
		if r.URL.Query().Get("source") == "loop" {
			st, err := s.Snapshot(r.Context())
			if err != nil {
				writeError(w, err)
				return
			}
			writeJSON(w, http.StatusOK, st)
			return
		}
		writeJSON(w, http.StatusOK, s.StatsView())
	})
	mux.HandleFunc("GET /v1/invariants", func(w http.ResponseWriter, r *http.Request) {
		// ?source=epoch audits the published epoch off the actor loop: it
		// cannot see corruption newer than the epoch and never flips the
		// live server degraded, but it also never queues behind a backlog.
		if r.URL.Query().Get("source") == "epoch" {
			seq, err := s.AuditEpoch()
			degraded, reason := s.Degraded()
			body := map[string]any{
				"ok": err == nil, "source": "epoch", "epoch_seq": seq,
				"degraded": degraded, "degraded_reason": reason,
			}
			if err != nil {
				body["error"] = err.Error()
				writeJSON(w, http.StatusInternalServerError, body)
				return
			}
			writeJSON(w, http.StatusOK, body)
			return
		}
		err := s.CheckInvariants(r.Context())
		degraded, reason := s.Degraded()
		if err != nil {
			if errors.Is(err, ErrServerClosed) {
				writeError(w, err)
				return
			}
			writeJSON(w, http.StatusInternalServerError, map[string]any{
				"ok": false, "error": err.Error(),
				"degraded": degraded, "degraded_reason": reason,
			})
			return
		}
		// Degraded is sticky: a clean audit now does not un-corrupt the
		// event that tripped it, so the flag is reported either way.
		// The state fingerprint rides along so an operator (or the failover
		// smoke) can compare two quiescent replicas bit-for-bit with one
		// request per node; it is a second trip into the loop, so under
		// concurrent mutation it may postdate the audit it accompanies.
		body := map[string]any{"ok": true, "degraded": degraded, "degraded_reason": reason}
		if fp, ferr := s.StateFingerprint(r.Context()); ferr == nil {
			body["fingerprint"] = fp
		}
		writeJSON(w, http.StatusOK, body)
	})
	mux.HandleFunc("POST /v1/admin/recover", func(w http.ResponseWriter, r *http.Request) {
		seq, err := s.Recover(r.Context())
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"recovered": true, "journal_seq": seq})
	})
	mux.HandleFunc("POST /v1/admin/promote", func(w http.ResponseWriter, r *http.Request) {
		// Manual failover: flip this follower to primary under a new fencing
		// term. The replica failover controller calls the same method on
		// sustained primary health-check failure.
		term, err := s.Promote(r.Context())
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"promoted": true, "term": term, "role": s.Role()})
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		// Scrapes ride the epoch view: a wedged or saturated actor loop can
		// no longer take monitoring down with it.
		st := s.StatsView()
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		writeMetrics(w, st)
		if cfg.limiter != nil {
			fmt.Fprintf(w, "# HELP drqos_rate_limited_total Requests refused by the per-client token bucket.\n# TYPE drqos_rate_limited_total counter\ndrqos_rate_limited_total %d\n",
				cfg.rateLimited.Load())
			fmt.Fprintf(w, "# HELP drqos_rate_limit_clients Client buckets currently tracked.\n# TYPE drqos_rate_limit_clients gauge\ndrqos_rate_limit_clients %d\n",
				cfg.limiter.Clients())
		}
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		// Liveness: the process is up and the mux is answering. Degraded
		// and overloaded servers are still alive — restarting them would
		// only lose state, so this never goes red while serving.
		writeJSON(w, http.StatusOK, map[string]any{"ok": true})
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		degraded, reason := s.Degraded()
		recovering, _, _, _ := s.RecoveryStatus()
		overloaded := s.Overloaded()
		// A primary whose replication lease lapsed is fenced: it refuses
		// mutations, so a load balancer must stop routing writes to it.
		leaseLost := false
		if rb := s.replicaBlock(); rb != nil && rb.LeaseLost {
			leaseLost = true
		}
		// Role rides readiness so a load balancer (and the failover drill)
		// can tell a ready read-only follower from the mutation-serving
		// primary without a second request.
		body := map[string]any{
			"ready":      !degraded && !recovering && !overloaded && !leaseLost,
			"degraded":   degraded,
			"recovering": recovering,
			"overloaded": overloaded,
			"role":       s.Role(),
		}
		if leaseLost {
			body["lease_lost"] = true
		}
		if reason != "" {
			body["degraded_reason"] = reason
		}
		if degraded || recovering || overloaded || leaseLost {
			w.Header().Set("Retry-After", strconv.FormatInt(int64(s.RetryAfterHint()/time.Second), 10))
			writeJSON(w, http.StatusServiceUnavailable, body)
			return
		}
		writeJSON(w, http.StatusOK, body)
	})
	if cfg.pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

func connIDs(ids []channel.ConnID) []int64 {
	if len(ids) == 0 {
		return nil
	}
	out := make([]int64, len(ids))
	for i, id := range ids {
		out[i] = int64(id)
	}
	return out
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeShed answers a load-shedding refusal (429 rate limit, 503 overload)
// with a Retry-After header and a matching JSON hint, so clients back off
// for the right amount of time instead of guessing.
func writeShed(w http.ResponseWriter, code int, retryAfter time.Duration, msg string) {
	secs := int64((retryAfter + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	writeJSON(w, code, errorBody{Error: msg, RetryAfterSeconds: secs})
}

// writeError maps typed service errors onto HTTP status codes.
func writeError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, manager.ErrRejected):
		writeJSON(w, http.StatusConflict, errorBody{Error: err.Error(), Rejected: true})
	case errors.Is(err, qos.ErrInvalidSpec):
		writeJSON(w, http.StatusUnprocessableEntity, errorBody{Error: err.Error()})
	case errors.Is(err, ErrNotFound):
		writeJSON(w, http.StatusNotFound, errorBody{Error: err.Error()})
	case errors.Is(err, ErrConflict):
		writeJSON(w, http.StatusConflict, errorBody{Error: err.Error()})
	case errors.Is(err, ErrNotPrimary), errors.Is(err, ErrFenced):
		// Retryable: during failover the client's next attempt (after the
		// hint, or via the front layer's 307) lands on the new primary —
		// or back here once a fenced primary's lease renews.
		writeShed(w, http.StatusServiceUnavailable, time.Second, err.Error())
	case errors.Is(err, ErrOverloaded):
		writeShed(w, http.StatusServiceUnavailable, time.Second, err.Error())
	case errors.Is(err, ErrDegraded):
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: err.Error()})
	case errors.Is(err, ErrNotDegraded), errors.Is(err, ErrRecoveryInProgress), errors.Is(err, ErrNoJournal):
		writeJSON(w, http.StatusConflict, errorBody{Error: err.Error()})
	case errors.Is(err, ErrServerClosed):
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: err.Error()})
	default:
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
	}
}
